// Randomized chaos-soak campaign (EXPERIMENTS.md "Chaos soak", DESIGN.md
// "Chaos-soak fuzzing").
//
// Samples `soakcases=` random configurations from the full supported knob
// space (controller x backend x cubes x topology x traffic shape x fault
// plan x execution plan), runs each in a forked isolation cell through the
// differential oracle battery (naive vs fast-forward, serial vs threaded,
// checkpoint+restore, all under verify=full), delta-minimizes every
// failure, and writes self-contained reproducer files that replay under
// `repro=<file>`.
//
// For a fixed soakseed=/soakcases= (and no wall-clock soakbudget=) the
// campaign - sampled cases, verdicts, summary table, JSON artifact - is
// bit-reproducible. The exit code is nonzero iff any case failed.
//
// Knobs:
//   soakseed=N       campaign seed (default 1)
//   soakcases=N      cases to run (default 100)
//   soakbudget=SECS  wall-clock budget; remaining cases are skipped, not
//                    failed (default 0 = unlimited; breaks reproducibility)
//   soaktimeout=SECS per-case wall watchdog (default 120)
//   soakmem=MB       per-case RLIMIT_AS (default 8192, 0 = unlimited;
//                    ignored in sanitizer builds)
//   jobs=N           parallel isolation cells (default: hardware)
//   minimize=0|1     delta-minimize failures (default 1)
//   minevals=N       minimizer predicate budget per failure (default 48)
//   maxminim=N       failures to minimize (default 4)
//   reprodir=DIR     where reproducers land (default results/soak-repros)
//   jsondir=DIR      JSON campaign report (schema v10 "soak" block)
//   quick            CI smoke domains (smaller traces)
//   repro=FILE       replay one reproducer in-process (verbose) and exit
//                    nonzero iff it still fails
//   soakplant=ffovershoot|skipclamp
//                    plant a deliberate run-loop bug in every sampled case
//                    (acceptance harness for the oracles themselves)
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "exp/thread_pool.hpp"
#include "fuzz/case_isolator.hpp"
#include "fuzz/config_sampler.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/oracle_runner.hpp"
#include "fuzz/soak_case.hpp"
#include "sim/report.hpp"

using namespace pacsim;
using namespace pacsim::fuzz;

namespace {

namespace fs = std::filesystem;

struct Outcome {
  SoakCase c;
  Verdict v;
  bool skipped = false;  ///< wall-budget exhausted before this case ran
  std::string stderr_tail;
  double wall_seconds = 0.0;
};

/// Replace every occurrence of `from` (host-specific scratch paths) so the
/// campaign's stdout/JSON stay bit-reproducible across machines and runs.
std::string scrub(std::string s, const std::string& from) {
  if (from.empty()) return s;
  std::size_t at = 0;
  while ((at = s.find(from, at)) != std::string::npos) {
    s.replace(at, from.size(), "<scratch>");
    at += 9;
  }
  return s;
}

/// One isolated oracle run: fork, rlimit, watchdog; the child ships its
/// verdict back over the report pipe, and child death without a verdict is
/// classified from the exit status.
Verdict run_isolated(const SoakCase& c, const std::string& workbase,
                     const IsolateLimits& limits, std::string* stderr_tail,
                     double* wall_seconds) {
  const CaseIsolator iso(limits);
  const std::string workdir =
      workbase + "/case-" + std::to_string(c.id);
  const IsolateResult res = iso.run([&](std::string& report) {
    OracleOptions opts;
    opts.workdir = workdir;
    const Verdict v = OracleRunner(opts).run(c);
    report = v.text();
    return v.failed() ? 20 + static_cast<int>(v.cls) : 0;
  });
  if (stderr_tail != nullptr) *stderr_tail = res.stderr_tail;
  if (wall_seconds != nullptr) *wall_seconds = res.wall_seconds;

  Verdict v;
  if (res.status == IsolateResult::Status::kTimedOut) {
    v.cls = SoakClass::kHang;
    v.oracle = "isolator";
    v.detail = "wall-clock watchdog expired after " +
               std::to_string(static_cast<unsigned>(limits.wall_seconds)) +
               "s (SIGKILL)";
    return v;
  }
  if (res.status == IsolateResult::Status::kSignaled) {
    v.cls = res.term_signal == SIGXCPU ? SoakClass::kHang : SoakClass::kCrash;
    v.oracle = "isolator";
    v.detail = "child killed by signal " + std::to_string(res.term_signal);
    return v;
  }
  try {
    return Verdict::parse(res.report);
  } catch (const std::exception&) {
    if (res.exit_code == 0) {
      v.cls = SoakClass::kClean;  // clean exit, report lost: trust the code
      return v;
    }
    v.cls = SoakClass::kCrash;
    v.oracle = "isolator";
    v.detail = "child exited " + std::to_string(res.exit_code) +
               " without a verdict";
    return v;
  }
}

int replay_repro(const Cli& cli, const std::string& path) {
  const SoakCase c = load_repro(path);
  OracleOptions opts;
  opts.workdir =
      (fs::temp_directory_path() / "pacsim-soak-replay").string();
  opts.verbose = !cli.has("terse");
  opts.keep_artifacts = cli.has("keep");
  std::printf("replaying %s\n", path.c_str());
  for (const std::string& knob : to_knobs(c)) {
    std::printf("  %s\n", knob.c_str());
  }
  const Verdict v = OracleRunner(opts).run(c);
  std::printf("verdict: %s", to_string(v.cls));
  if (v.failed()) {
    std::printf(" (%s): %s", v.oracle.c_str(), v.detail.c_str());
  }
  std::printf(" [%u oracle(s) checked, %u skipped]\n", v.oracles_checked,
              v.oracles_skipped);
  return v.failed() ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  const std::string repro_path = cli.get("repro", "");
  if (!repro_path.empty()) {
    try {
      return replay_repro(cli, repro_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[soak] repro replay failed: %s\n", e.what());
      return 2;
    }
  }

  const std::uint64_t seed = cli.get_u64("soakseed", 1);
  const std::uint64_t cases = cli.get_u64("soakcases", 100);
  const double budget_seconds =
      static_cast<double>(cli.get_u64("soakbudget", 0));
  const bool quick = cli.has("quick");

  IsolateLimits limits;
  limits.wall_seconds = static_cast<double>(cli.get_u64("soaktimeout", 120));
  limits.cpu_seconds = static_cast<unsigned>(2.0 * limits.wall_seconds);
  limits.address_space_bytes = cli.get_u64("soakmem", 8192) << 20;

  PerturbPlan plant;
  const std::string plant_name = cli.get("soakplant", "");
  if (plant_name == "ffovershoot") {
    plant.ff_overshoot = cli.get_u64("ffovershoot", 64);
  } else if (plant_name == "skipclamp") {
    plant.skip_timeline_clamp = true;
  } else if (!plant_name.empty()) {
    std::fprintf(stderr,
                 "[soak] unknown soakplant=%s (ffovershoot, skipclamp)\n",
                 plant_name.c_str());
    return 2;
  }

  const ConfigSampler sampler(
      seed, quick ? KnobDomains::quick() : KnobDomains::defaults(), plant);
  const unsigned jobs =
      static_cast<unsigned>(cli.get_u64("jobs", exp::default_jobs()));
  const std::string workbase =
      cli.get("workdir", (fs::temp_directory_path() /
                          ("pacsim-soak-" + std::to_string(::getpid())))
                             .string());
  const std::string reprodir = cli.get("reprodir", "results/soak-repros");

  std::fprintf(stderr,
               "[soak] seed=%llu cases=%llu jobs=%u timeout=%.0fs "
               "scratch=%s\n",
               static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(cases), jobs,
               limits.wall_seconds, workbase.c_str());

  std::vector<Outcome> outcomes(cases);
  std::atomic<bool> out_of_budget{false};
  const auto campaign_start = std::chrono::steady_clock::now();
  exp::parallel_for(jobs, cases, [&](std::size_t i) {
    Outcome& out = outcomes[i];
    out.c = sampler.sample(i);
    if (budget_seconds > 0.0) {
      const double elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() -
                                 campaign_start)
                                 .count();
      if (elapsed > budget_seconds) out_of_budget.store(true);
    }
    if (out_of_budget.load()) {
      out.skipped = true;
      return;
    }
    out.v = run_isolated(out.c, workbase, limits, &out.stderr_tail,
                         &out.wall_seconds);
    std::fprintf(stderr, "[soak] case %zu: %s%s%s (%.1fs)\n", i,
                 to_string(out.v.cls),
                 out.v.failed() ? " via " : "",
                 out.v.failed() ? out.v.oracle.c_str() : "",
                 out.wall_seconds);
  });

  // Deterministic summary (campaign order, scratch paths scrubbed).
  std::uint64_t counts[5] = {0, 0, 0, 0, 0};
  std::uint64_t skipped = 0;
  std::vector<std::size_t> failing;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].skipped) {
      ++skipped;
      continue;
    }
    ++counts[static_cast<int>(outcomes[i].v.cls)];
    if (outcomes[i].v.failed()) failing.push_back(i);
  }
  std::printf("bench_soak: seed=%llu cases=%llu\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(cases));
  std::printf(
      "  clean=%llu divergences=%llu violations=%llu crashes=%llu "
      "hangs=%llu skipped=%llu\n",
      static_cast<unsigned long long>(counts[0]),
      static_cast<unsigned long long>(counts[1]),
      static_cast<unsigned long long>(counts[2]),
      static_cast<unsigned long long>(counts[3]),
      static_cast<unsigned long long>(counts[4]),
      static_cast<unsigned long long>(skipped));

  // Minimize the first maxminim failures (serially: deterministic budget
  // spend), then persist every failure as a reproducer.
  const bool do_minimize = cli.get_u64("minimize", 1) != 0;
  const std::uint64_t max_minimized = cli.get_u64("maxminim", 4);
  MinimizeOptions min_opts;
  min_opts.max_evals = static_cast<unsigned>(cli.get_u64("minevals", 48));
  std::uint64_t minimized = 0;
  std::vector<std::string> repro_files;
  if (!failing.empty()) {
    fs::create_directories(reprodir);
  }
  for (const std::size_t i : failing) {
    Outcome& out = outcomes[i];
    if (do_minimize && minimized < max_minimized) {
      ++minimized;
      const SoakClass want = out.v.cls;
      const Minimizer mini(
          [&](const SoakCase& cand) {
            return run_isolated(cand, workbase, limits, nullptr, nullptr)
                       .cls == want;
          },
          min_opts);
      const MinimizeResult m = mini.minimize(out.c);
      std::fprintf(stderr,
                   "[soak] case %zu minimized: %u eval(s), %u shrink(s)\n", i,
                   m.evals, m.shrinks);
      out.c = m.best;
      // Re-derive the verdict on the minimized case so the repro header
      // quotes what the file actually reproduces.
      out.v = run_isolated(out.c, workbase, limits, nullptr, nullptr);
    }
    const std::string verdict_line =
        std::string(to_string(out.v.cls)) + " (" + out.v.oracle +
        "): " + scrub(out.v.detail, workbase);
    const std::string file =
        (fs::path(reprodir) / ("repro-case" + std::to_string(out.c.id) +
                               ".txt"))
            .string();
    write_repro(file, out.c, verdict_line);
    repro_files.push_back(file);
    std::printf("  case %llu: %s\n    repro: %s\n",
                static_cast<unsigned long long>(out.c.id),
                verdict_line.c_str(), file.c_str());
    if (!out.stderr_tail.empty()) {
      std::fprintf(stderr, "[soak] case %llu stderr tail:\n%s\n",
                   static_cast<unsigned long long>(out.c.id),
                   scrub(out.stderr_tail, workbase).c_str());
    }
  }

  // JSON artifact: schema v10 "soak" envelope block plus one structured
  // failure entry per failing case. wall_seconds is reported as 0 so the
  // artifact stays bit-reproducible.
  SweepReport report("bench_soak");
  std::string soak = "{\"seed\": " + std::to_string(seed) +
                     ", \"cases\": " + std::to_string(cases) +
                     ", \"clean\": " + std::to_string(counts[0]) +
                     ", \"divergences\": " + std::to_string(counts[1]) +
                     ", \"violations\": " + std::to_string(counts[2]) +
                     ", \"crashes\": " + std::to_string(counts[3]) +
                     ", \"hangs\": " + std::to_string(counts[4]) +
                     ", \"skipped\": " + std::to_string(skipped) +
                     ", \"minimized\": " + std::to_string(minimized) +
                     ", \"repro_files\": [";
  for (std::size_t i = 0; i < repro_files.size(); ++i) {
    soak += (i == 0 ? "\"" : ", \"") + repro_files[i] + "\"";
  }
  soak += "]}";
  report.set_extra("soak", soak);
  for (const std::size_t i : failing) {
    const Outcome& out = outcomes[i];
    report.add_failure("case-" + std::to_string(out.c.id) + "/" +
                           std::string(to_string(out.c.coalescer)) + "/" +
                           std::string(to_string(out.c.backend)),
                       to_string(out.v.cls),
                       out.v.oracle + ": " + scrub(out.v.detail, workbase),
                       /*wall_seconds=*/0.0);
  }
  if (cli.has("jsondir")) {
    const std::string path = report.write(cli.get("jsondir", "results"));
    std::fprintf(stderr, "[soak] wrote %s\n", path.c_str());
  }

  if (failing.empty()) {
    std::error_code ec;
    fs::remove_all(workbase, ec);  // nothing worth keeping
    std::printf("OK\n");
    return 0;
  }
  std::fprintf(stderr, "[soak] failure artifacts kept under %s\n",
               workbase.c_str());
  std::printf("FAIL: %zu failing case(s), reproducers in %s\n",
              failing.size(), reprodir.c_str());
  return 1;
}
