// google-benchmark microbenchmarks for the PAC building blocks (not a paper
// figure; used to track the simulator's own performance).
#include <benchmark/benchmark.h>

#include "analysis/dbscan.hpp"
#include "baseline/sorting_network.hpp"
#include "common/rng.hpp"
#include "mem/page_table.hpp"
#include "pac/block_map.hpp"
#include "pac/coalescing_table.hpp"
#include "pac/pac.hpp"
#include "pac/request_aggregator.hpp"

namespace {

using namespace pacsim;

void BM_BlockMapSetAndChunk(benchmark::State& state) {
  BlockMap map;
  Rng rng(7);
  for (auto _ : state) {
    map.set(static_cast<unsigned>(rng.below(64)));
    benchmark::DoNotOptimize(map.chunk(static_cast<unsigned>(rng.below(16)), 4));
  }
}
BENCHMARK(BM_BlockMapSetAndChunk);

void BM_CoalescingTableSegments(benchmark::State& state) {
  const CoalescingTable table(CoalescingProtocol::hmc2());
  std::uint16_t pattern = 0;
  for (auto _ : state) {
    pattern = static_cast<std::uint16_t>((pattern + 1) & 0xF);
    benchmark::DoNotOptimize(table.segments(pattern));
  }
}
BENCHMARK(BM_CoalescingTableSegments);

void BM_CoalescingTableWide(benchmark::State& state) {
  const CoalescingTable table(CoalescingProtocol::hbm());
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.segments(static_cast<std::uint16_t>(rng.next())));
  }
}
BENCHMARK(BM_CoalescingTableWide);

void BM_AggregatorInsert(benchmark::State& state) {
  PacConfig cfg;
  PacStats stats;
  RequestAggregator agg(cfg, &stats);
  Rng rng(3);
  std::uint64_t id = 1;
  Cycle now = 0;
  for (auto _ : state) {
    MemRequest req;
    req.id = id++;
    req.paddr = (rng.below(32) << kPageShift) | (rng.below(64) << 6);
    req.op = MemOp::kLoad;
    if (agg.insert(req, now) == RequestAggregator::InsertResult::kNoStream) {
      while (auto s = agg.take_flushable(now + 100)) benchmark::DoNotOptimize(s);
      now += 100;
    }
    ++now;
  }
}
BENCHMARK(BM_AggregatorInsert);

void BM_SortingNetworkApply(benchmark::State& state) {
  const auto net = SortingNetwork::bitonic(
      static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::uint64_t> values(net.inputs());
  Rng rng(5);
  for (auto _ : state) {
    for (auto& v : values) v = rng.next();
    net.apply(std::span<std::uint64_t>(values));
    benchmark::DoNotOptimize(values.front());
  }
}
BENCHMARK(BM_SortingNetworkApply)->Arg(16)->Arg(64);

void BM_Dbscan(benchmark::State& state) {
  Rng rng(9);
  std::vector<Addr> points(static_cast<std::size_t>(state.range(0)));
  for (auto& p : points) p = rng.below(1ULL << 30);
  const DbscanConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dbscan_addresses(points, cfg));
  }
}
BENCHMARK(BM_Dbscan)->Arg(1000)->Arg(10000);

void BM_PageTableTranslate(benchmark::State& state) {
  PageTable pt(1 << 20, 17);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pt.translate(0, rng.below(1ULL << 30)));
  }
}
BENCHMARK(BM_PageTableTranslate);

}  // namespace

BENCHMARK_MAIN();
