// Shared driver for the figure-reproduction benches: runs every suite under
// the requested coalescers, generating each suite's traces exactly once.
#pragma once

#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/fault_injector.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/verifier.hpp"
#include "exp/interrupt.hpp"
#include "exp/sweep_runner.hpp"
#include "exp/thread_pool.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace pacsim::bench {

struct SuiteResults {
  std::string name;
  std::map<CoalescerKind, RunResult> runs;

  [[nodiscard]] const RunResult& at(CoalescerKind k) const {
    return runs.at(k);
  }
};

class EvalContext {
 public:
  explicit EvalContext(const Cli& cli) {
    wcfg.max_ops_per_core = cli.get_u64("ops", cli.has("quick") ? 40'000
                                                                : 150'000);
    wcfg.scale = cli.get_double("scale", cli.has("quick") ? 0.5 : 1.0);
    wcfg.seed = cli.get_u64("seed", 42);
    wcfg.compute_scale = cli.get_double("cscale", wcfg.compute_scale);
    only = cli.get("suite", "");

    // backend=hmc|hbm|ddr: which memory substrate the system drives (the
    // coalescers are substrate-agnostic; see DESIGN.md "MemoryBackend").
    scfg.backend = parse_backend_kind(cli.get("backend", "hmc"));
    scfg.max_outstanding_loads = static_cast<std::uint32_t>(
        cli.get_u64("mlp", scfg.max_outstanding_loads));
    scfg.prefetch.degree = static_cast<std::uint32_t>(
        cli.get_u64("pfdegree", scfg.prefetch.degree));
    scfg.prefetch.refill_threshold = static_cast<std::uint32_t>(
        cli.get_u64("pfrefill", scfg.prefetch.refill_threshold));
    scfg.pac.timeout = static_cast<std::uint32_t>(
        cli.get_u64("timeout", scfg.pac.timeout));
    scfg.pac.num_streams = static_cast<std::uint32_t>(
        cli.get_u64("streams", scfg.pac.num_streams));
    if (cli.has("nobypass")) scfg.pac.enable_bypass_controller = false;
    if (cli.has("noprefetch")) scfg.enable_prefetch = false;
    // Fault injection (all rates default 0 = injection fully disabled):
    //   faultrate=<p>   per-packet link CRC error probability
    //   faultdrop=<p>   response drop probability (recovered via timeout)
    //   faultstall=<p>  transient vault stall probability
    //   faultseed=<n>   fault RNG seed (independent of workload seed)
    scfg.fault.link_error_rate = cli.get_double("faultrate", 0.0);
    scfg.fault.response_drop_rate = cli.get_double("faultdrop", 0.0);
    scfg.fault.vault_stall_rate = cli.get_double("faultstall", 0.0);
    scfg.fault.seed = cli.get_u64("faultseed", scfg.fault.seed);
    // Hard-failure timeline (EXPERIMENTS.md "Hard failures and graceful
    // degradation"):
    //   burstlen=<n>           consecutive faults per stochastic hit (>= 1)
    //   faultplan=<file>       scheduled events, one per line
    //   linkdown=C:A-B[,...]   link between cubes A and B dies at cycle C
    //   linkup=C:A-B[,...]     that link is repaired at cycle C
    //   vaultdown=C:CU.V[,...] vault V of cube CU dies at cycle C
    //   cubedown=C:CU[,...]    cube CU dies at cycle C
    //   failpolicy=abort|contain  undeliverable-request policy
    //   sparepages=<n>         spare frames for the page remap (0 disables)
    //   migratecycles=<c>      per-page migration stall, cycles
    scfg.fault.burst_length = static_cast<std::uint32_t>(
        cli.get_u64("burstlen", scfg.fault.burst_length));
    const std::string plan_path = cli.get("faultplan", "");
    if (!plan_path.empty()) {
      std::ifstream plan(plan_path);
      if (!plan) {
        throw std::invalid_argument("faultplan= cannot read file '" +
                                    plan_path + "'");
      }
      std::ostringstream body;
      body << plan.rdbuf();
      const auto events = parse_fault_plan(body.str());
      scfg.fault.timeline.insert(scfg.fault.timeline.end(), events.begin(),
                                 events.end());
    }
    const auto append_events = [&](const char* knob, FaultEventKind kind) {
      const std::string spec = cli.get(knob, "");
      if (spec.empty()) return;
      const auto events = parse_fault_events(knob, kind, spec);
      scfg.fault.timeline.insert(scfg.fault.timeline.end(), events.begin(),
                                 events.end());
    };
    append_events("linkdown", FaultEventKind::kLinkDown);
    append_events("linkup", FaultEventKind::kLinkUp);
    append_events("vaultdown", FaultEventKind::kVaultDown);
    append_events("cubedown", FaultEventKind::kCubeDown);
    scfg.fault.fail_policy = parse_fail_policy(cli.get("failpolicy", "abort"));
    scfg.fault.spare_pages =
        cli.get_u64("sparepages", scfg.fault.spare_pages);
    scfg.fault.page_migrate_cycles =
        cli.get_u64("migratecycles", scfg.fault.page_migrate_cycles);
    // Strict validation up front: a malformed rate, burst length or
    // timeline entry is a one-line error naming the knob, not a crash (or
    // silent misconfiguration) mid-sweep.
    validate_fault_config(scfg.fault);
    // Multi-cube sharding (EXPERIMENTS.md "Multi-cube interconnect"):
    //   cubes=<n>        shard the address space across n cube backends
    //   topology=chain|mesh  inter-cube wiring (chain is the HMC default)
    //   linkhop=<cycles> per-hop router + SERDES latency
    //   linkbw=<bytes>   link serialization bandwidth, bytes/cycle
    scfg.noc.cubes = static_cast<std::uint32_t>(
        cli.get_u64("cubes", scfg.noc.cubes));
    scfg.noc.topology = parse_topology(cli.get("topology", "chain"));
    scfg.noc.hop_cycles = static_cast<std::uint32_t>(
        cli.get_u64("linkhop", scfg.noc.hop_cycles));
    scfg.noc.link_bytes_per_cycle = static_cast<std::uint32_t>(
        cli.get_u64("linkbw", scfg.noc.link_bytes_per_cycle));
    // The page pool must cover the whole sharded space, or the shuffled
    // frame pool would alias every cube back onto the first ones.
    scfg.phys_pages *= scfg.noc.cubes;
    // Requester-side retry: retrytimeout=<cycles>, retrymax=<n>.
    scfg.retry.response_timeout = cli.get_u64("retrytimeout",
                                              scfg.retry.response_timeout);
    scfg.retry.max_retries = static_cast<std::uint32_t>(
        cli.get_u64("retrymax", scfg.retry.max_retries));
    // jobtimeout=<seconds>: per-job wall-clock watchdog (0 disables). An
    // over-budget job is cancelled and reported, not aborted on.
    job_timeout_seconds = cli.get_double("jobtimeout", 0.0);
    // Sharded execution + checkpoint/restore (EXPERIMENTS.md):
    //   threads=<m>        intra-run worker threads (epoch scheduler)
    //   shards=<s>         execution domains (0 = derive from threads)
    //   epochlen=<cycles>  epoch-barrier grid
    //   checkpoint=<dir>   write snapshots at quiescent epoch boundaries
    //   checkpointevery=<cycles>  snapshot cadence (0 = every epoch)
    //   restore=<path>     resume from a snapshot
    scfg.exec.threads = static_cast<unsigned>(
        cli.get_u64("threads", scfg.exec.threads));
    scfg.exec.shards = static_cast<unsigned>(
        cli.get_u64("shards", scfg.exec.shards));
    scfg.exec.epoch_cycles = cli.get_u64("epochlen", scfg.exec.epoch_cycles);
    scfg.exec.checkpoint_dir = cli.get("checkpoint", "");
    scfg.exec.checkpoint_every = cli.get_u64("checkpointevery", 0);
    scfg.exec.restore_path = cli.get("restore", "");
    // Runtime verification (see README "Runtime verification"):
    //   verify=off|counters|full   lifecycle checking level (default off)
    //   watchdog=<cycles>          no-progress watchdog period
    //   verifyage=<cycles>         per-request latency budget (full only)
    //   verifydir=<dir>            where forensics dumps land
    //   diagnose                   re-run failed cells once at verify=full
    scfg.verify.level = parse_verify_level(cli.get("verify", "off"));
    scfg.verify.watchdog_cycles =
        cli.get_u64("watchdog", scfg.verify.watchdog_cycles);
    scfg.verify.max_request_age =
        cli.get_u64("verifyage", scfg.verify.max_request_age);
    scfg.verify.forensics_dir =
        cli.get("verifydir", scfg.verify.forensics_dir);
    diagnose_failures = cli.has("diagnose");
    // Ctrl-C / SIGTERM flushes a partial JSON report instead of losing the
    // sweep: unfinished cells are reported with status "interrupted".
    install_interrupt_handler();
    // jobs=<n>: simulation threads (default: hardware concurrency;
    // jobs=1 runs serially in the calling thread).
    jobs = static_cast<unsigned>(cli.get_u64("jobs", exp::default_jobs()));
    // csvdir=<dir>: mirror every printed table as a CSV artifact.
    Table::set_csv_dir(cli.get("csvdir", ""));
    // jsondir=<dir>: where the per-bench JSON report lands ("" disables).
    report_dir = cli.get("jsondir", "results");
    // tracecache=<dir>: on-disk warm tier for generated traces; repeated
    // bench invocations with the same workload knobs skip generation.
    // tracemem=<MB>: LRU cap on traces held in memory (0 = unlimited).
    TraceStore::Options store_opts;
    store_opts.warm_dir = cli.get("tracecache", "");
    store_opts.max_resident_bytes = cli.get_u64("tracemem", 0) << 20;
    store = std::make_unique<TraceStore>(store_opts);
  }

  /// One non-ok job from run_all (isolated, not fatal to the bench).
  struct Failure {
    std::string label;
    std::string status;  ///< "failed", "timeout" or "interrupted"
    std::string error;
    double wall_seconds = 0.0;
    std::string forensics;  ///< verifier dump path, when one was written
    std::string diagnosis;  ///< verdict of the diagnose= re-run, if any
  };

  WorkloadConfig wcfg;
  SystemConfig scfg;
  std::string only;        ///< restrict to one suite (suite=name)
  unsigned jobs = 1;       ///< simulation threads (jobs=<n>)
  std::string report_dir;  ///< JSON report directory (jsondir=<dir>)
  double job_timeout_seconds = 0.0;  ///< watchdog budget (jobtimeout=<s>)
  bool diagnose_failures = false;    ///< diagnose: verify=full re-runs
  /// Failures accumulated by run_all; mutable because collecting them is a
  /// side channel of the logically-const sweep. write_report serializes
  /// them as structured "failed"/"timeout" entries instead of runs.
  mutable std::vector<Failure> failures;
  /// Shared by every sweep and direct run_suite/run_multiprocess call of
  /// the bench: each distinct (suite, WorkloadConfig) trace set is
  /// generated at most once per process, and at most once per machine when
  /// tracecache=<dir> enables the warm tier.
  std::unique_ptr<TraceStore> store;

  [[nodiscard]] TraceStore* trace_store() const { return store.get(); }

  /// Run all 14 suites (or the selected one) under each kind. Independent
  /// (suite, kind) runs fan out across `jobs` threads; results come back
  /// in deterministic job order, so the tables match a serial run exactly.
  std::vector<SuiteResults> run_all(std::vector<CoalescerKind> kinds) const {
    std::vector<const Workload*> suites;
    for (const Workload* suite : all_workloads()) {
      if (!only.empty() && only != suite->name()) continue;
      suites.push_back(suite);
    }

    std::vector<exp::SweepJob> sweep;
    sweep.reserve(suites.size() * kinds.size());
    for (const Workload* suite : suites) {
      std::fprintf(stderr, "[bench] %s ...\n",
                   std::string(suite->name()).c_str());
      for (CoalescerKind kind : kinds) {
        exp::SweepJob job;
        job.suite = suite;
        job.cfg = scfg;
        job.cfg.coalescer = kind;
        job.label =
            std::string(suite->name()) + "/" + std::string(to_string(kind));
        sweep.push_back(std::move(job));
      }
    }

    const exp::SweepRunner runner(jobs);
    exp::SweepOptions opts;
    opts.job_timeout_seconds = job_timeout_seconds;
    opts.diagnose_failures = diagnose_failures;
    std::vector<exp::JobOutcome> outcomes =
        runner.run_isolated(sweep, wcfg, opts, trace_store());

    // A failed, timed-out or interrupted cell keeps its (zeroed) RunResult
    // slot so the tables stay rectangular; the failure is logged, recorded
    // for the JSON report, and never takes the rest of the sweep down.
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (outcomes[i].ok()) continue;
      std::fprintf(stderr, "[bench] %s: %s: %s\n", sweep[i].label.c_str(),
                   exp::to_string(outcomes[i].status),
                   outcomes[i].error.c_str());
      if (!outcomes[i].forensics.empty()) {
        std::fprintf(stderr, "[bench]   forensics: %s\n",
                     outcomes[i].forensics.c_str());
      }
      if (outcomes[i].diagnosed) {
        std::fprintf(stderr, "[bench]   diagnosis: %s\n",
                     outcomes[i].diagnosis.c_str());
      }
      failures.push_back({sweep[i].label,
                          std::string(exp::to_string(outcomes[i].status)),
                          outcomes[i].error, outcomes[i].wall_seconds,
                          outcomes[i].forensics, outcomes[i].diagnosis});
    }

    std::vector<SuiteResults> out;
    out.reserve(suites.size());
    std::size_t next = 0;
    for (const Workload* suite : suites) {
      SuiteResults sr;
      sr.name = std::string(suite->name());
      for (CoalescerKind kind : kinds) {
        sr.runs.emplace(kind, std::move(outcomes[next++].result));
      }
      out.push_back(std::move(sr));
    }
    return out;
  }

  /// Serialize every (suite, kind) run to `<jsondir>/<bench>.json`
  /// (jsondir="" disables the artifact).
  void write_report(const std::string& bench,
                    const std::vector<SuiteResults>& all) const {
    if (report_dir.empty()) return;
    std::set<std::string> failed;
    for (const Failure& f : failures) failed.insert(f.label);
    SweepReport report(bench);
    for (const auto& s : all) {
      for (const auto& [kind, r] : s.runs) {
        const std::string label =
            s.name + "/" + std::string(to_string(kind));
        if (failed.count(label) != 0) continue;  // serialized below
        report.add(label, kind, r);
      }
    }
    for (const Failure& f : failures) {
      report.add_failure(f.label, f.status, f.error, f.wall_seconds,
                         f.forensics, f.diagnosis);
    }
    report.set_trace_store(store->stats());
    const std::string path = report.write(report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
};

/// Mean of a metric over suites.
template <typename Fn>
double average(const std::vector<SuiteResults>& all, Fn&& metric) {
  if (all.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : all) sum += metric(s);
  return sum / static_cast<double>(all.size());
}

}  // namespace pacsim::bench
