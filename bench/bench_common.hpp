// Shared driver for the figure-reproduction benches: runs every suite under
// the requested coalescers, generating each suite's traces exactly once.
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace pacsim::bench {

struct SuiteResults {
  std::string name;
  std::map<CoalescerKind, RunResult> runs;

  [[nodiscard]] const RunResult& at(CoalescerKind k) const {
    return runs.at(k);
  }
};

class EvalContext {
 public:
  explicit EvalContext(const Cli& cli) {
    wcfg.max_ops_per_core = cli.get_u64("ops", cli.has("quick") ? 40'000
                                                                : 150'000);
    wcfg.scale = cli.get_double("scale", cli.has("quick") ? 0.5 : 1.0);
    wcfg.seed = cli.get_u64("seed", 42);
    wcfg.compute_scale = cli.get_double("cscale", wcfg.compute_scale);
    only = cli.get("suite", "");

    scfg.max_outstanding_loads = static_cast<std::uint32_t>(
        cli.get_u64("mlp", scfg.max_outstanding_loads));
    scfg.prefetch.degree = static_cast<std::uint32_t>(
        cli.get_u64("pfdegree", scfg.prefetch.degree));
    scfg.prefetch.refill_threshold = static_cast<std::uint32_t>(
        cli.get_u64("pfrefill", scfg.prefetch.refill_threshold));
    scfg.pac.timeout = static_cast<std::uint32_t>(
        cli.get_u64("timeout", scfg.pac.timeout));
    scfg.pac.num_streams = static_cast<std::uint32_t>(
        cli.get_u64("streams", scfg.pac.num_streams));
    if (cli.has("nobypass")) scfg.pac.enable_bypass_controller = false;
    if (cli.has("noprefetch")) scfg.enable_prefetch = false;
    // csvdir=<dir>: mirror every printed table as a CSV artifact.
    Table::set_csv_dir(cli.get("csvdir", ""));
  }

  WorkloadConfig wcfg;
  SystemConfig scfg;
  std::string only;  ///< restrict to one suite (suite=name)

  /// Run all 14 suites (or the selected one) under each kind.
  std::vector<SuiteResults> run_all(std::vector<CoalescerKind> kinds) const {
    std::vector<SuiteResults> out;
    for (const Workload* suite : all_workloads()) {
      if (!only.empty() && only != suite->name()) continue;
      SuiteResults results;
      results.name = std::string(suite->name());
      std::fprintf(stderr, "[bench] %s ...\n", results.name.c_str());
      const std::vector<Trace> traces = suite->generate(wcfg);
      for (CoalescerKind kind : kinds) {
        SystemConfig cfg = scfg;
        cfg.coalescer = kind;
        cfg.num_cores = wcfg.num_cores;
        results.runs.emplace(kind, simulate(cfg, traces));
      }
      out.push_back(std::move(results));
    }
    return out;
  }
};

/// Mean of a metric over suites.
template <typename Fn>
double average(const std::vector<SuiteResults>& all, Fn&& metric) {
  if (all.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : all) sum += metric(s);
  return sum / static_cast<double>(all.size());
}

}  // namespace pacsim::bench
