// Reproduces paper Figure 10: (a) transaction efficiency of raw vs PAC
// request streams, (b) the coalesced request-size distribution of HPCG in
// fine-grained (16 B granule) mode, and (c) bandwidth savings.
//
// Paper reference: (a) raw 66.66% vs PAC 73.76% average; (b) 81.62% of
// HPCG's fine-grained requests are 16 B; (c) 26.96 GB average saving, SP
// largest at 139.47 GB (absolute GB scale with trace length - we report
// both our absolute bytes and the relative saving).
#include "bench_common.hpp"
#include "hmc/hmc_device.hpp"
#include "mem/packet.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

void fig10a_and_10c(const EvalContext& ctx) {
  const auto all =
      ctx.run_all({CoalescerKind::kDirect, CoalescerKind::kPac});
  ctx.write_report("bench_fig10_bandwidth", all);

  Table t({"suite", "raw txn eff", "PAC txn eff", "link bytes saved (MB)",
           "saving"});
  double eff_raw = 0.0, eff_pac = 0.0, saved_sum = 0.0, rel_sum = 0.0;
  for (const auto& s : all) {
    const RunResult& base = s.at(CoalescerKind::kDirect);
    const RunResult& pac = s.at(CoalescerKind::kPac);
    const double saved_mb =
        (static_cast<double>(base.link_bytes()) -
         static_cast<double>(pac.link_bytes())) /
        1e6;
    const double rel = percent_reduction(
        static_cast<double>(base.link_bytes()),
        static_cast<double>(pac.link_bytes()));
    eff_raw += base.transaction_eff();
    eff_pac += pac.transaction_eff();
    saved_sum += saved_mb;
    rel_sum += rel;
    t.add_row({s.name, Table::pct(base.transaction_eff() * 100.0),
               Table::pct(pac.transaction_eff() * 100.0),
               Table::num(saved_mb), Table::pct(rel)});
  }
  const double n = static_cast<double>(all.size());
  t.add_row({"AVERAGE", Table::pct(eff_raw / n * 100.0),
             Table::pct(eff_pac / n * 100.0), Table::num(saved_sum / n),
             Table::pct(rel_sum / n)});
  t.print(
      "Fig 10a/10c - transaction efficiency & bandwidth saving "
      "(paper: 66.66% -> 73.76% avg; SP saves the most data)");
}

// Fig. 10b: force PAC to coalesce at the 16 B FLIT granularity using the
// actual data sizes requested by the CPU (1-8 B), bypassing the cache -
// exactly the experiment the paper describes for HPCG.
void fig10b(const EvalContext& ctx) {
  const Workload* suite = find_workload("hpcg");
  WorkloadConfig wcfg = ctx.wcfg;
  const std::vector<Trace> traces = suite->generate(wcfg);

  PacConfig pac_cfg = ctx.scfg.pac;
  pac_cfg.protocol = CoalescingProtocol::hmc_fine();

  PowerModel power;
  HmcDevice device(ctx.scfg.hmc, &power);
  DevicePort port(&device, RetryConfig{}, /*tracking=*/false);
  Pac pac(pac_cfg, &port);

  // Feed the raw CPU accesses (not cache lines) directly, one per cycle.
  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::size_t cursor = 0;
  std::vector<std::size_t> pcs(traces.size(), 0);
  bool work_left = true;
  while (work_left || !pac.idle()) {
    work_left = false;
    // Round-robin one access per cycle over the cores' traces.
    for (std::size_t attempt = 0; attempt < traces.size(); ++attempt) {
      const std::size_t core = (cursor + attempt) % traces.size();
      std::size_t& pc = pcs[core];
      while (pc < traces[core].size() &&
             traces[core][pc].kind == OpKind::kCompute) {
        ++pc;  // compute gaps are irrelevant to the size distribution
      }
      if (pc >= traces[core].size()) continue;
      work_left = true;
      const TraceOp& op = traces[core][pc];
      MemRequest req;
      req.id = next_id++;
      req.paddr = op.vaddr;  // identity mapping: sizes are what matter here
      req.bytes = std::max<std::uint32_t>(op.arg, 1);
      req.op = op.kind == OpKind::kStore ? MemOp::kStore : MemOp::kLoad;
      req.created_at = now;
      if (op.kind == OpKind::kAtomic || op.kind == OpKind::kFence) {
        ++pc;
        continue;
      }
      if (pac.accept(req, now)) ++pc;
      break;
    }
    ++cursor;
    device.tick(now);
    for (const DeviceResponse& rsp : device.drain_completed()) {
      pac.complete(rsp, now);
    }
    pac.tick(now);
    (void)pac.drain_satisfied();
    ++now;
    if (now > 80'000'000) break;  // safety bound
  }

  const Histogram& sizes = pac.stats().request_size_bytes;
  Table t({"request size", "count", "share"});
  for (const auto& [bytes, count] : sizes.buckets()) {
    t.add_row({std::to_string(bytes) + "B", std::to_string(count),
               Table::pct(sizes.fraction(bytes) * 100.0)});
  }
  t.print(
      "Fig 10b - HPCG coalesced request sizes at 16B granularity "
      "(paper: 81.62% of requests are 16B)");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  EvalContext ctx(cli);
  fig10a_and_10c(ctx);
  fig10b(ctx);
  return 0;
}
