// Chaos campaigns: hard-failure timelines driven through every controller
// on both multi-cube topologies (EXPERIMENTS.md "Hard failures and graceful
// degradation"). Each cell runs the same open-loop uniform traffic as
// bench_multicube while a scheduled fault campaign fires mid-run under
// failpolicy=contain:
//
//   baseline     no scheduled events (reference bandwidth / availability 1)
//   cubedown     cube 3 dies; its submissions become poisoned completions
//                and the availability integral must match the lost quarter
//                of vault capacity exactly
//   routearound  (mesh) a redundant link dies; the fabric recomputes routes
//                and every request still completes - no poisons, no lost
//                capacity, the dead link reports up=false
//   chaincut     (chain) a mid-chain link dies; the tail shards go
//                unreachable, their capacity counts as lost, and the run
//                still completes under contain
//   linkflap     a link dies and repairs; repairs == 1 and the measured
//                MTTR equals the scheduled outage exactly
//
// The bench exits non-zero when any cell aborts or any campaign gate fails.
//
// Knobs: topology=chain|mesh (default: both), cubes=<n> (default 4),
// downcycle=/upcycle= (event schedule), ops=/cores=/seed=, mlp=/mshrs=,
// threads=/shards= (sharded epoch scheduler), verify=off|counters|full,
// faultrate=/faultdrop=/faultstall= (transient noise on top of the
// timeline), faultplan=<file> (adds a user-scheduled campaign cell from a
// CYCLE-kind-operands plan file, gated on completion under contain),
// jsondir=<dir>, quick (fewer controllers and ops - the CI
// thread-sanitizer cell).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/fault_injector.hpp"
#include "noc/traffic_gen.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

namespace {

struct Cell {
  std::string label;
  std::string campaign;
  std::string topology;
  CoalescerKind kind = CoalescerKind::kPac;
  bool completed = false;
  RunResult result;
};

double bytes_per_cycle(const RunResult& r) {
  return r.cycles > 0 ? static_cast<double>(r.coal.issued_payload_bytes) /
                            static_cast<double>(r.cycles)
                      : 0.0;
}

bool all_links_up(const RunResult& r) {
  return std::all_of(r.noc.links.begin(), r.noc.links.end(),
                     [](const LinkStats& l) { return l.up; });
}

bool any_link_down(const RunResult& r) {
  return std::any_of(r.noc.links.begin(), r.noc.links.end(),
                     [](const LinkStats& l) { return !l.up; });
}

/// Integrated end cycle implied by the exact capacity integral (equals the
/// per-shard mean final cycle, so the expected-loss algebra below holds for
/// sharded runs too).
double integral_end_cycle(const DegradationStats& d) {
  return d.capacity_units > 0
             ? static_cast<double>(d.unit_cycles_total) /
                   static_cast<double>(d.capacity_units)
             : 0.0;
}

/// Expected unit_cycles_lost when `dead_frac` of capacity is out from
/// `from` to `until` (kNeverCycle: the end of the run).
double expected_lost(const DegradationStats& d, double dead_frac, Cycle from,
                     Cycle until) {
  const double end = until == kNeverCycle
                         ? integral_end_cycle(d)
                         : static_cast<double>(until);
  if (end <= static_cast<double>(from)) return 0.0;
  return static_cast<double>(d.capacity_units) * dead_frac *
         (end - static_cast<double>(from));
}

bool near(double got, double want, double rel_tol, double abs_slack) {
  return std::fabs(got - want) <= std::max(rel_tol * want, abs_slack);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.has("quick");

  TrafficConfig tcfg;
  tcfg.num_cores = static_cast<std::uint32_t>(cli.get_u64("cores", 8));
  tcfg.ops_per_core = static_cast<std::uint32_t>(
      cli.get_u64("ops", quick ? 4'000 : 12'000));
  tcfg.seed = cli.get_u64("seed", tcfg.seed);

  const auto cubes =
      static_cast<std::uint32_t>(cli.get_u64("cubes", 4));
  if (cubes < 4) {
    std::fprintf(stderr,
                 "[bench] chaos campaigns need cubes>=4 (got %u)\n", cubes);
    return 1;
  }
  // Early enough that every shard of a sharded run (whose per-shard clocks
  // cover fewer cycles than the merged total) still lives through the full
  // campaign; the gates below diagnose a schedule that outruns the run.
  const Cycle down = cli.get_u64("downcycle", 8'000);
  const Cycle up = cli.get_u64("upcycle", 16'000);

  SystemConfig base;
  base.num_cores = tcfg.num_cores;
  base.identity_paging = true;
  base.max_outstanding_loads =
      static_cast<std::uint32_t>(cli.get_u64("mlp", 32));
  base.backend = BackendKind::kHmc;
  base.noc.cubes = cubes;
  base.exec.threads =
      static_cast<unsigned>(cli.get_u64("threads", base.exec.threads));
  base.exec.shards =
      static_cast<unsigned>(cli.get_u64("shards", base.exec.shards));
  base.verify.level = parse_verify_level(cli.get("verify", "off"));
  // Transient noise rides on top of the scheduled timeline: the chaos
  // gates must hold with the stochastic model active too (the CI cell
  // passes faultrate=).
  base.fault.link_error_rate = cli.get_double("faultrate", 0.0);
  base.fault.response_drop_rate = cli.get_double("faultdrop", 0.0);
  base.fault.vault_stall_rate = cli.get_double("faultstall", 0.0);
  base.fault.fail_policy = FailPolicy::kContain;
  tcfg.cube_capacity_bytes = base.hmc.map.capacity_bytes;

  const auto conc =
      static_cast<std::uint32_t>(cli.get_u64("mshrs", 16ULL * cubes));

  // A user-scheduled campaign from a plan file rides along as one more
  // cell per (topology, controller): arbitrary events, gated only on
  // surviving under contain with the schedule actually firing.
  std::vector<FaultEvent> user_plan;
  const std::string plan_path = cli.get("faultplan", "");
  if (!plan_path.empty()) {
    std::ifstream in(plan_path);
    if (!in) {
      std::fprintf(stderr, "[bench] cannot read faultplan=%s\n",
                   plan_path.c_str());
      return 1;
    }
    std::ostringstream body;
    body << in.rdbuf();
    user_plan = parse_fault_plan(body.str());
    if (user_plan.empty()) {
      std::fprintf(stderr, "[bench] faultplan=%s holds no events\n",
                   plan_path.c_str());
      return 1;
    }
  }

  std::vector<std::string> topologies{"chain", "mesh"};
  if (cli.has("topology")) topologies = {cli.get("topology", "chain")};
  const std::vector<CoalescerKind> kinds =
      quick ? std::vector<CoalescerKind>{CoalescerKind::kDirect,
                                         CoalescerKind::kPac}
            : std::vector<CoalescerKind>{
                  CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
                  CoalescerKind::kPac, CoalescerKind::kSortingDmc};

  // Campaign timelines. Cube `cubes - 1` dies in cubedown; chaincut severs
  // the chain between cubes 1 and 2 (the tail half goes unreachable);
  // routearound kills the mesh's redundant 1-3 edge (cube 3 stays
  // reachable via 0->2->3); linkflap cuts and repairs the host-adjacent
  // 0-1 link for an exact MTTR of up - down cycles.
  const auto campaigns_for = [&](const std::string& topo) {
    std::vector<std::pair<std::string, std::vector<FaultEvent>>> c;
    c.emplace_back("baseline", std::vector<FaultEvent>{});
    c.emplace_back("cubedown",
                   std::vector<FaultEvent>{
                       {down, FaultEventKind::kCubeDown, cubes - 1, 0}});
    if (topo == "mesh") {
      c.emplace_back("routearound",
                     std::vector<FaultEvent>{
                         {down, FaultEventKind::kLinkDown, 1, 3}});
    } else {
      c.emplace_back("chaincut",
                     std::vector<FaultEvent>{
                         {down, FaultEventKind::kLinkDown, 1, 2}});
    }
    c.emplace_back("linkflap",
                   std::vector<FaultEvent>{
                       {down, FaultEventKind::kLinkDown, 0, 1},
                       {up, FaultEventKind::kLinkUp, 0, 1}});
    if (!user_plan.empty()) c.emplace_back("faultplan", user_plan);
    return c;
  };

  SweepReport report("bench_chaos");
  std::vector<Cell> cells;
  bool ok = true;
  for (const std::string& topo : topologies) {
    for (const CoalescerKind kind : kinds) {
      for (auto& [name, events] : campaigns_for(topo)) {
        Cell cell;
        cell.campaign = name;
        cell.topology = topo;
        cell.kind = kind;
        cell.label = std::string(to_string(kind)) + "/" + topo + "/" + name;
        std::fprintf(stderr, "[bench] %s ...\n", cell.label.c_str());

        TrafficConfig t = tcfg;
        t.cubes = cubes;
        SystemConfig cfg = base;
        cfg.coalescer = kind;
        cfg.noc.topology = parse_topology(topo);
        cfg.fault.timeline = events;
        cfg.pac.maq_entries = conc;
        cfg.pac.num_mshrs = conc;
        cfg.mshr_dmc.num_mshrs = conc;
        cfg.direct.max_outstanding = conc;
        cfg.sorting_dmc.max_outstanding = conc;
        cfg.miss_queue_entries = std::max(cfg.miss_queue_entries, conc);
        try {
          cell.result = simulate(cfg, generate_traffic(t));
          cell.completed = true;
          report.add(cell.label, kind, cell.result);
        } catch (const std::exception& e) {
          ok = false;
          std::fprintf(stderr, "[bench] FAIL: %s aborted under contain: %s\n",
                       cell.label.c_str(), e.what());
          report.add_failure(cell.label, "failed", e.what(), 0.0);
        }
        cells.push_back(std::move(cell));
      }
    }
  }

  Table table({"cell", "sim cycles", "B/cyc", "events", "poisoned raws",
               "availability", "repairs", "MTTR", "reroutes", "migrated"});
  for (const Cell& c : cells) {
    if (!c.completed) continue;
    const RunResult& r = c.result;
    const DegradationStats& d = r.degradation;
    table.add_row({c.label, std::to_string(r.cycles),
                   Table::num(bytes_per_cycle(r)),
                   std::to_string(d.events_fired),
                   std::to_string(d.poisoned_raws),
                   Table::num(d.availability()),
                   std::to_string(d.repairs), Table::num(d.mttr_cycles()),
                   std::to_string(r.noc.route_recomputes),
                   std::to_string(d.pages_migrated)});
  }
  table.print("Chaos campaigns - hard failures under failpolicy=contain");

  // -------------------------------------------------------------------
  // Campaign gates.
  const auto fail = [&ok](const Cell& c, const std::string& why) {
    ok = false;
    std::fprintf(stderr, "[bench] FAIL: %s %s\n", c.label.c_str(),
                 why.c_str());
  };
  const Cycle flap_mttr = up - down;
  for (const Cell& c : cells) {
    if (!c.completed) continue;  // already failed the abort gate
    const RunResult& r = c.result;
    const DegradationStats& d = r.degradation;
    // Sharded runs fold per-shard injectors together: every shard fires
    // the timeline in its own clock, so event/repair tallies scale by the
    // shard count while the ratio metrics (availability, MTTR) stay exact.
    const std::uint64_t shards = std::max(1u, r.exec.shards);
    if (c.campaign == "baseline") {
      if (d.events_fired != 0 || d.unit_cycles_lost != 0) {
        fail(c, "clean run reported degradation");
      }
      continue;
    }
    if (c.campaign == "faultplan") {
      // User-scheduled events: the only universal claims are that the run
      // survived contain (the abort gate above) and the plan fired.
      if (d.events_fired == 0) {
        fail(c, "no plan event fired (schedule beyond the run end?)");
      }
      continue;
    }
    if (r.cycles <= up) {
      fail(c, "run ended before the scheduled campaign (cycles=" +
                  std::to_string(r.cycles) + " <= upcycle=" +
                  std::to_string(up) + "; raise ops= or lower downcycle=)");
      continue;
    }
    if (d.events_fired == 0 || d.first_failure_cycle != down) {
      fail(c, "timeline did not fire at the scheduled cycle (fired=" +
                  std::to_string(d.events_fired) + ", first=" +
                  std::to_string(d.first_failure_cycle) + ")");
      continue;
    }
    if (c.campaign == "cubedown") {
      // The dead cube is 1/cubes of vault capacity, lost from `down` to
      // the end of the run; the exact integral must agree.
      const double want =
          expected_lost(d, 1.0 / cubes, down, kNeverCycle);
      if (!near(static_cast<double>(d.unit_cycles_lost), want, 0.02,
                static_cast<double>(d.capacity_units))) {
        fail(c, "availability does not match the lost capacity (lost=" +
                    std::to_string(d.unit_cycles_lost) + " expected~" +
                    std::to_string(static_cast<std::uint64_t>(want)) + ")");
      }
      if (d.poisoned_raws == 0) {
        fail(c, "no poisoned completions for the dead cube's traffic");
      }
      if (d.availability() >= 1.0) fail(c, "availability did not degrade");
    } else if (c.campaign == "routearound") {
      if (r.noc.route_recomputes < 1) {
        fail(c, "link-down did not trigger a route recompute");
      }
      if (d.poisoned_raws != 0) {
        fail(c, "route-around still poisoned " +
                    std::to_string(d.poisoned_raws) + " raws");
      }
      if (d.unit_cycles_lost != 0) {
        fail(c, "redundant link loss must not cost vault capacity");
      }
      if (!any_link_down(r)) {
        fail(c, "dead link still reports up in the link stats");
      }
    } else if (c.campaign == "chaincut") {
      if (r.noc.route_recomputes < 1) {
        fail(c, "chain cut did not trigger a route recompute");
      }
      if (d.poisoned_raws == 0) {
        fail(c, "unreachable tail produced no poisoned completions");
      }
      // Cubes 2..cubes-1 go unreachable: their capacity is lost.
      const double want = expected_lost(
          d, static_cast<double>(cubes - 2) / cubes, down, kNeverCycle);
      if (!near(static_cast<double>(d.unit_cycles_lost), want, 0.02,
                static_cast<double>(d.capacity_units))) {
        fail(c, "unreachable capacity not accounted (lost=" +
                    std::to_string(d.unit_cycles_lost) + " expected~" +
                    std::to_string(static_cast<std::uint64_t>(want)) + ")");
      }
    } else if (c.campaign == "linkflap") {
      if (d.repairs != shards) {
        fail(c, "expected one repair per shard (" + std::to_string(shards) +
                    "), got " + std::to_string(d.repairs));
      } else if (d.repair_cycles_total != flap_mttr * shards) {
        fail(c, "MTTR is not the scheduled outage (got " +
                    std::to_string(d.repair_cycles_total) + " over " +
                    std::to_string(shards) + " repairs, want " +
                    std::to_string(flap_mttr) + " each)");
      }
      if (!all_links_up(r)) {
        fail(c, "repaired link still reports down");
      }
      if (c.topology == "chain") {
        // The outage severs everything behind cube 0; the loss window is
        // exactly [down, up).
        const double want = expected_lost(
            d, static_cast<double>(cubes - 1) / cubes, down, up);
        if (!near(static_cast<double>(d.unit_cycles_lost), want, 0.02,
                  static_cast<double>(d.capacity_units))) {
          fail(c, "outage-window capacity loss mismatch (lost=" +
                      std::to_string(d.unit_cycles_lost) + " expected~" +
                      std::to_string(static_cast<std::uint64_t>(want)) +
                      ")");
        }
      } else if (d.unit_cycles_lost != 0) {
        fail(c, "mesh flap must route around without losing capacity");
      }
    }
  }

  // Degraded service: after the death the port poisons the dead cube's
  // traffic instead of submitting it, so the fabric's per-cube submission
  // count for that cube must fall visibly short of the baseline's. (Raw
  // B/cyc is NOT a valid gate here - poisoned completions retire
  // instantly, so the surviving traffic can finish faster per cycle.)
  for (const std::string& topo : topologies) {
    for (const CoalescerKind kind : kinds) {
      const Cell* bl = nullptr;
      const Cell* cd = nullptr;
      for (const Cell& c : cells) {
        if (c.topology != topo || c.kind != kind || !c.completed) continue;
        if (c.campaign == "baseline") bl = &c;
        if (c.campaign == "cubedown") cd = &c;
      }
      if (bl == nullptr || cd == nullptr) continue;
      const std::uint32_t dead = cubes - 1;
      const std::uint64_t clean = bl->result.noc.cube_requests[dead];
      const std::uint64_t degraded = cd->result.noc.cube_requests[dead];
      if (degraded >= clean) {
        ok = false;
        std::fprintf(stderr,
                     "[bench] FAIL: %s/%s/cubedown kept feeding dead cube "
                     "%u (%llu submissions vs %llu clean)\n",
                     to_string(kind).data(), topo.c_str(), dead,
                     static_cast<unsigned long long>(degraded),
                     static_cast<unsigned long long>(clean));
      }
    }
  }

  const std::string report_dir = cli.get("jsondir", "results");
  if (!report_dir.empty()) {
    const std::string path = report.write(report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  std::fprintf(stderr, "[bench] chaos gates: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
