// Reproduces paper Figure 12: (a) PAC pipeline stage latencies, (b) the
// latency of filling the MAQ, and (c) the proportion of requests bypassing
// stages 2-3 of the coalescing network.
//
// Paper reference: (a) stage 2 averages 6.66 cycles and stage 3 11.47; the
// overall PAC latency is pinned to the 16-cycle stage-1 timeout. (b) the
// MAQ refills in 20.76 ns on average (BFS lowest, 8.62 ns). (c) 25.04% of
// requests bypass stages 2-3 on average; BFS highest at 45.09%.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  const auto all = ctx.run_all({CoalescerKind::kPac});

  Table t({"suite", "stage2 (cyc)", "stage3 (cyc)", "timeout (cyc)",
           "MAQ fill (ns)", "bypass stages 2-3"});
  double s2 = 0.0, s3 = 0.0, fill = 0.0, bypass = 0.0;
  for (const auto& s : all) {
    const RunResult& r = s.at(CoalescerKind::kPac);
    const PacStats& p = r.pac;
    const double fill_ns = p.maq_fill_latency.mean() * r.ns_per_cycle;
    const double bypass_frac =
        p.base.raw_requests == 0
            ? 0.0
            : static_cast<double>(p.c0_bypass_requests) /
                  static_cast<double>(p.base.raw_requests);
    s2 += p.stage2_latency.mean();
    s3 += p.stage3_latency.mean();
    fill += fill_ns;
    bypass += bypass_frac;
    t.add_row({s.name, Table::num(p.stage2_latency.mean()),
               Table::num(p.stage3_latency.mean()),
               std::to_string(ctx.scfg.pac.timeout), Table::num(fill_ns),
               Table::pct(bypass_frac * 100.0)});
  }
  const double n = static_cast<double>(all.size());
  t.add_row({"AVERAGE", Table::num(s2 / n), Table::num(s3 / n),
             std::to_string(ctx.scfg.pac.timeout), Table::num(fill / n),
             Table::pct(bypass / n * 100.0)});
  t.print(
      "Fig 12a/12b/12c - PAC latency analyses "
      "(paper: stage2 6.66 cyc, stage3 11.47 cyc, MAQ fill 20.76 ns, "
      "bypass 25.04%)");
  return 0;
}
