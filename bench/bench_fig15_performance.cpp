// Reproduces paper Figure 15: runtime improvement of the MSHR-based DMC and
// PAC over the standard (no-coalescing) HMC controller.
//
// Paper reference: DMC improves runtime by 8.91% on average and PAC by
// 14.35%; GS peaks at 26.06% and SPARSELU at 22.21%; STREAM gains little
// because the multilevel cache satisfies most of its accesses.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  const auto all = ctx.run_all(
      {CoalescerKind::kDirect, CoalescerKind::kMshrDmc, CoalescerKind::kPac});

  Table t({"suite", "cycles (none)", "DMC improvement", "PAC improvement"});
  double dmc_sum = 0.0, pac_sum = 0.0;
  for (const auto& s : all) {
    const double base = static_cast<double>(s.at(CoalescerKind::kDirect).cycles);
    const double dmc = percent_improvement(
        base, static_cast<double>(s.at(CoalescerKind::kMshrDmc).cycles));
    const double pac = percent_improvement(
        base, static_cast<double>(s.at(CoalescerKind::kPac).cycles));
    dmc_sum += dmc;
    pac_sum += pac;
    t.add_row({s.name,
               std::to_string(s.at(CoalescerKind::kDirect).cycles),
               Table::pct(dmc), Table::pct(pac)});
  }
  const double n = static_cast<double>(all.size());
  t.add_row({"AVERAGE", "", Table::pct(dmc_sum / n), Table::pct(pac_sum / n)});
  t.print(
      "Fig 15 - performance improvement over the standard HMC controller "
      "(paper: DMC 8.91%, PAC 14.35% avg; GS 26.06% peak)");
  return 0;
}
