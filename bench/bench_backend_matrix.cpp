// Backend matrix: every coalescer organization on every memory substrate.
// Demonstrates that the coalescers are substrate-agnostic (they speak only
// DevicePort / MemoryBackend) and quantifies how much of PAC's win survives
// the move from the closed-page HMC cube to an open-page HBM stack
// (paper section 4.1: 16-bit block sequence, 32 B granularity, 1 KB rows)
// and to a conservative single-rank DDR-lite part.
//
// Grid: {hmc, hbm, ddr} x {direct, mshr-dmc, sorting-dmc, pac} x suites.
// Knobs: the usual EvalContext set; `suite=<name>` restricts the suite
// axis, the backend= knob is ignored here (this bench owns that axis).
#include <iterator>

#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

constexpr BackendKind kBackends[] = {BackendKind::kHmc, BackendKind::kHbm,
                                     BackendKind::kDdr};
constexpr CoalescerKind kKinds[] = {
    CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
    CoalescerKind::kSortingDmc, CoalescerKind::kPac};

/// The matrix cell's SystemConfig: the backend axis also retunes PAC's
/// coalescing protocol to the substrate it targets (HBM coalesces toward
/// the 1 KB row with 32 B granules; HMC/DDR keep the HMC 2.1 default).
SystemConfig cell_config(const EvalContext& ctx, BackendKind backend,
                         CoalescerKind kind) {
  SystemConfig cfg = ctx.scfg;
  cfg.backend = backend;
  cfg.coalescer = kind;
  if (backend == BackendKind::kHbm) {
    cfg.pac.protocol = CoalescingProtocol::hbm();
  }
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);

  std::vector<const Workload*> suites;
  for (const Workload* suite : all_workloads()) {
    if (!ctx.only.empty() && ctx.only != suite->name()) continue;
    // Default to the three reference suites so the full 36-cell matrix
    // stays cheap; suite=<name> swaps in any other workload.
    if (ctx.only.empty() && suite->name() != "gs" &&
        suite->name() != "hpcg" && suite->name() != "sort") {
      continue;
    }
    suites.push_back(suite);
  }

  std::vector<exp::SweepJob> sweep;
  sweep.reserve(suites.size() * std::size(kBackends) * std::size(kKinds));
  for (BackendKind backend : kBackends) {
    for (const Workload* suite : suites) {
      std::fprintf(stderr, "[matrix] %s / %s ...\n",
                   std::string(to_string(backend)).c_str(),
                   std::string(suite->name()).c_str());
      for (CoalescerKind kind : kKinds) {
        exp::SweepJob job;
        job.suite = suite;
        job.cfg = cell_config(ctx, backend, kind);
        job.label = std::string(suite->name()) + "/" +
                    std::string(to_string(kind)) + "@" +
                    std::string(to_string(backend));
        sweep.push_back(std::move(job));
      }
    }
  }

  const exp::SweepRunner runner(ctx.jobs);
  exp::SweepOptions opts;
  opts.job_timeout_seconds = ctx.job_timeout_seconds;
  opts.diagnose_failures = ctx.diagnose_failures;
  const std::vector<exp::JobOutcome> outcomes =
      runner.run_isolated(sweep, ctx.wcfg, opts, ctx.trace_store());

  SweepReport report("bench_backend_matrix");
  Table t({"backend", "suite", "coalescer", "coal.eff", "txn.eff", "cycles",
           "row hit%", "conflicts"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const exp::JobOutcome& o = outcomes[i];
    if (!o.ok()) {
      std::fprintf(stderr, "[matrix] %s: %s: %s\n", sweep[i].label.c_str(),
                   exp::to_string(o.status), o.error.c_str());
      report.add_failure(sweep[i].label,
                         std::string(exp::to_string(o.status)), o.error,
                         o.wall_seconds, o.forensics, o.diagnosis);
      continue;
    }
    const RunResult& r = o.result;
    const std::uint64_t opened = r.hmc.row_hits + r.hmc.row_misses;
    t.add_row({std::string(to_string(sweep[i].cfg.backend)),
               std::string(sweep[i].suite->name()),
               std::string(to_string(sweep[i].cfg.coalescer)),
               Table::pct(r.coalescing_efficiency() * 100.0),
               Table::pct(r.transaction_eff() * 100.0),
               std::to_string(r.cycles),
               opened > 0 ? Table::pct(100.0 *
                                       static_cast<double>(r.hmc.row_hits) /
                                       static_cast<double>(opened))
                          : std::string("-"),
               std::to_string(r.hmc.bank_conflicts)});
    report.add(sweep[i].label, sweep[i].cfg.coalescer, r);
  }
  t.print("Backend matrix - coalescers x substrates");

  // Headline per-backend summary: geometric-mean-free average of PAC's
  // runtime win over the direct controller, plus the coalescing lift.
  Table s({"backend", "avg PAC speedup vs direct", "avg PAC coal.eff",
           "avg direct coal.eff"});
  const std::size_t per_suite = std::size(kKinds);
  const std::size_t per_backend = suites.size() * per_suite;
  for (std::size_t b = 0; b < std::size(kBackends); ++b) {
    double speedup = 0.0, pac_eff = 0.0, direct_eff = 0.0;
    std::size_t cells = 0;
    for (std::size_t su = 0; su < suites.size(); ++su) {
      const std::size_t base = b * per_backend + su * per_suite;
      const exp::JobOutcome& direct = outcomes[base + 0];  // kDirect
      const exp::JobOutcome& pac = outcomes[base + 3];     // kPac
      if (!direct.ok() || !pac.ok() || pac.result.cycles == 0) continue;
      speedup += static_cast<double>(direct.result.cycles) /
                 static_cast<double>(pac.result.cycles);
      pac_eff += pac.result.coalescing_efficiency();
      direct_eff += direct.result.coalescing_efficiency();
      ++cells;
    }
    const double n = cells > 0 ? static_cast<double>(cells) : 1.0;
    s.add_row({std::string(to_string(kBackends[b])),
               Table::num(speedup / n) + "x", Table::pct(pac_eff / n * 100.0),
               Table::pct(direct_eff / n * 100.0)});
  }
  s.print("Backend matrix - PAC win per substrate");

  if (!ctx.report_dir.empty()) {
    report.set_trace_store(ctx.trace_store()->stats());
    std::fprintf(stderr, "[bench] wrote %s\n",
                 report.write(ctx.report_dir).c_str());
  }
  return 0;
}
