// Reproduces paper Table 1: the simulation environment configuration.
#include <cstdio>

#include "bench_common.hpp"

using namespace pacsim;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bench::EvalContext ctx(cli);
  const SystemConfig& c = ctx.scfg;

  Table t({"Parameter", "Value"});
  t.add_row({"ISA (modelled)", "RV64IMAFDC-class trace-driven cores"});
  t.add_row({"Core #", std::to_string(c.num_cores)});
  t.add_row({"CPU Frequency", Table::num(c.cpu_ghz, 1) + " GHz"});
  t.add_row({"Cache", "8-way, " + std::to_string(c.l1.size_bytes / 1024) +
                          "K L1, " +
                          std::to_string(c.l2.size_bytes >> 20) + "MB L2"});
  t.add_row({"Coalescing Streams", std::to_string(c.pac.num_streams)});
  t.add_row({"Timeout", std::to_string(c.pac.timeout) + " cycles"});
  t.add_row({"MAQ Entries & MSHRs",
             std::to_string(c.pac.maq_entries) + " & " +
                 std::to_string(c.pac.num_mshrs)});
  t.add_row({"HMC", std::to_string(c.hmc.num_links) + " links, " +
                        std::to_string(c.hmc.map.capacity_bytes >> 30) +
                        "GB, " + std::to_string(c.hmc.map.row_bytes) +
                        "B-block"});
  t.add_row({"HMC vaults x banks",
             std::to_string(c.hmc.map.num_vaults) + " x " +
                 std::to_string(c.hmc.map.banks_per_vault)});
  t.print("Table 1 - simulation environment configuration");

  // Measure the average loaded HMC access latency the configuration yields
  // (paper Table 1 lists 93 ns) using a representative mixed workload.
  const Workload* suite = find_workload("hpcg");
  WorkloadConfig wcfg = ctx.wcfg;
  wcfg.max_ops_per_core = std::min<std::size_t>(wcfg.max_ops_per_core, 60'000);
  const RunResult r =
      run_suite(*suite, CoalescerKind::kDirect, wcfg, ctx.scfg,
                ctx.trace_store());
  std::printf("Measured avg HMC access latency (hpcg, no coalescing): "
              "%.1f ns (paper: 93 ns)\n",
              r.avg_hmc_latency_ns());
  return 0;
}
