// Multi-cube interconnect sweep: aggregate bandwidth scaling 1 -> 8 cubes
// under uniform open-loop traffic, and hot-shard link saturation under
// Zipf-skewed traffic (EXPERIMENTS.md "Multi-cube interconnect").
//
// Every cell drives the same Zipf traffic front-end (src/noc/traffic_gen)
// through one of the four controllers into a MultiCubeBackend; runs use
// identity paging so an address's cube bits survive translation. The bench
// exits non-zero when the headline claims fail: uniform traffic must gain
// aggregate bandwidth going from 1 cube to the largest swept count, and the
// skewed sweep must saturate the hot shard's ingress link (the final hop
// into the hot cube) relative to the uniform sweep at the same cube count.
//
// Knobs: cubes=<n> (sweep only that count), topology=chain|mesh,
// zipf=<skew> (skewed leg, default 1.2), linkhop=/linkbw=, ops=/cores=/
// seed=, threads=/shards= (sharded epoch scheduler), verify=, faultrate=/
// faultdrop=/faultstall=, jsondir=<dir>, quick.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/verifier.hpp"
#include "noc/traffic_gen.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

using namespace pacsim;

namespace {

struct Cell {
  std::string label;
  CoalescerKind kind = CoalescerKind::kPac;
  std::uint32_t cubes = 1;
  double zipf = 0.0;
  RunResult result;
};

double bytes_per_cycle(const RunResult& r) {
  return r.cycles > 0 ? static_cast<double>(r.coal.issued_payload_bytes) /
                            static_cast<double>(r.cycles)
                      : 0.0;
}

double gbytes_per_sec(const RunResult& r) {
  const double ns = r.runtime_ns();
  return ns > 0.0
             ? static_cast<double>(r.coal.issued_payload_bytes) / ns
             : 0.0;  // bytes/ns == GB/s
}

double max_link_occupancy(const RunResult& r) {
  double occ = 0.0;
  for (const LinkStats& l : r.noc.links) {
    if (r.cycles > 0) {
      occ = std::max(occ, static_cast<double>(l.busy_cycles) /
                              static_cast<double>(r.cycles));
    }
  }
  return occ;
}

const LinkStats* hottest_link(const RunResult& r) {
  const LinkStats* hot = nullptr;
  for (const LinkStats& l : r.noc.links) {
    if (hot == nullptr || l.busy_cycles > hot->busy_cycles) hot = &l;
  }
  return hot;
}

// Occupancy of the hot shard's ingress link (the final request hop into the
// hot cube, labelled "...->{hot}"). Under uniform traffic this edge link
// carries ~1/N of the load; under skew it is where saturation shows up -
// unlike the host-adjacent link, which funnels all remote traffic and is
// busy under any pattern.
double hot_ingress_occupancy(const RunResult& r, std::uint32_t hot_cube) {
  const std::string suffix = "->" + std::to_string(hot_cube);
  for (const LinkStats& l : r.noc.links) {
    if (l.label.size() >= suffix.size() &&
        l.label.compare(l.label.size() - suffix.size(), suffix.size(),
                        suffix) == 0 &&
        r.cycles > 0) {
      return static_cast<double>(l.busy_cycles) /
             static_cast<double>(r.cycles);
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool quick = cli.has("quick");

  TrafficConfig tcfg;
  tcfg.num_cores = static_cast<std::uint32_t>(cli.get_u64("cores", 8));
  tcfg.ops_per_core = static_cast<std::uint32_t>(
      cli.get_u64("ops", quick ? 6'000 : 20'000));
  tcfg.seed = cli.get_u64("seed", tcfg.seed);
  const double skew = cli.get_double("zipf", 1.2);

  SystemConfig base;
  base.num_cores = tcfg.num_cores;
  base.identity_paging = true;
  // Bandwidth-bound host profile: the sweep measures the memory substrate,
  // so the cores must expose enough memory-level parallelism to saturate a
  // single cube - otherwise every cube count is latency-bound and scaling
  // is invisible. Override with mlp=<n>.
  base.max_outstanding_loads =
      static_cast<std::uint32_t>(cli.get_u64("mlp", 32));
  base.noc.topology = parse_topology(cli.get("topology", "chain"));
  base.noc.hop_cycles = static_cast<std::uint32_t>(
      cli.get_u64("linkhop", base.noc.hop_cycles));
  base.noc.link_bytes_per_cycle = static_cast<std::uint32_t>(
      cli.get_u64("linkbw", base.noc.link_bytes_per_cycle));
  base.backend = parse_backend_kind(cli.get("backend", "hmc"));
  base.exec.threads =
      static_cast<unsigned>(cli.get_u64("threads", base.exec.threads));
  base.exec.shards =
      static_cast<unsigned>(cli.get_u64("shards", base.exec.shards));
  base.fault.link_error_rate = cli.get_double("faultrate", 0.0);
  base.fault.response_drop_rate = cli.get_double("faultdrop", 0.0);
  base.fault.vault_stall_rate = cli.get_double("faultstall", 0.0);
  base.verify.level = parse_verify_level(cli.get("verify", "off"));
  switch (base.backend) {
    case BackendKind::kHmc: tcfg.cube_capacity_bytes =
        base.hmc.map.capacity_bytes; break;
    case BackendKind::kHbm: tcfg.cube_capacity_bytes =
        base.hbm.map.capacity_bytes; break;
    case BackendKind::kDdr: tcfg.cube_capacity_bytes =
        base.ddr.map.capacity_bytes; break;
  }

  std::vector<std::uint32_t> cube_counts{1, 2, 4, 8};
  if (cli.has("cubes")) {
    cube_counts = {static_cast<std::uint32_t>(cli.get_u64("cubes", 1))};
  }
  const std::vector<CoalescerKind> kinds{
      CoalescerKind::kDirect, CoalescerKind::kMshrDmc, CoalescerKind::kPac,
      CoalescerKind::kSortingDmc};

  SweepReport report("bench_multicube");
  std::vector<Cell> cells;
  for (const double zipf : {0.0, skew}) {
    for (const CoalescerKind kind : kinds) {
      for (const std::uint32_t cubes : cube_counts) {
        Cell cell;
        cell.kind = kind;
        cell.cubes = cubes;
        cell.zipf = zipf;
        cell.label = std::string(to_string(kind)) + "/cubes=" +
                     std::to_string(cubes) +
                     (zipf == 0.0 ? "/uniform"
                                  : "/zipf=" + Table::num(zipf));
        std::fprintf(stderr, "[bench] %s ...\n", cell.label.c_str());

        TrafficConfig t = tcfg;
        t.cubes = cubes;
        t.zipf = zipf;
        SystemConfig cfg = base;
        cfg.coalescer = kind;
        cfg.noc.cubes = cubes;
        // Weak scaling: a host driving an N-cube pool provisions N times
        // the request concurrency (MSHRs / outstanding transactions), so
        // the sweep measures the substrate and fabric rather than a fixed
        // 16-entry host MSHR file. Override with mshrs=<n>.
        const auto conc = static_cast<std::uint32_t>(
            cli.get_u64("mshrs", 16ULL * cubes));
        cfg.pac.maq_entries = conc;
        cfg.pac.num_mshrs = conc;
        cfg.mshr_dmc.num_mshrs = conc;
        cfg.direct.max_outstanding = conc;
        cfg.sorting_dmc.max_outstanding = conc;
        cfg.miss_queue_entries = std::max(cfg.miss_queue_entries, conc);
        cell.result = simulate(cfg, generate_traffic(t));
        report.add(cell.label, kind, cell.result);
        cells.push_back(std::move(cell));
      }
    }
  }

  bool ok = true;
  const auto find_cell = [&](CoalescerKind kind, std::uint32_t cubes,
                             double zipf) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.kind == kind && c.cubes == cubes && c.zipf == zipf) return &c;
    }
    return nullptr;
  };

  for (const double zipf : {0.0, skew}) {
    Table t({"controller", "cubes", "sim cycles", "agg B/cyc", "GB/s",
             "vs 1 cube", "max link occ", "hot link", "hot-shard occ",
             "ingress retries"});
    for (const CoalescerKind kind : kinds) {
      const Cell* base_cell = find_cell(kind, cube_counts.front(), zipf);
      for (const std::uint32_t cubes : cube_counts) {
        const Cell* c = find_cell(kind, cubes, zipf);
        if (c == nullptr) continue;
        const RunResult& r = c->result;
        const double scale =
            base_cell != nullptr && bytes_per_cycle(base_cell->result) > 0.0
                ? bytes_per_cycle(r) / bytes_per_cycle(base_cell->result)
                : 0.0;
        const LinkStats* hot = hottest_link(r);
        t.add_row({std::string(to_string(kind)), std::to_string(cubes),
                   std::to_string(r.cycles), Table::num(bytes_per_cycle(r)),
                   Table::num(gbytes_per_sec(r)), Table::num(scale) + "x",
                   Table::pct(max_link_occupancy(r) * 100.0),
                   hot != nullptr ? hot->label : "-",
                   Table::pct(hot_ingress_occupancy(r, cubes - 1) * 100.0),
                   std::to_string(r.noc.ingress_retries)});
      }
    }
    t.print(zipf == 0.0
                ? "Multi-cube scaling - uniform traffic (aggregate payload "
                  "bandwidth vs cube count)"
                : "Multi-cube scaling - Zipf-skewed traffic (hot shard "
                  "saturates its ingress links)");
  }

  // Headline gates. Uniform traffic must scale: more cubes means more
  // aggregate bandwidth for every controller. Skewed traffic must
  // concentrate: the hottest link outruns its uniform counterpart.
  if (cube_counts.size() > 1) {
    for (const CoalescerKind kind : kinds) {
      const Cell* lo = find_cell(kind, cube_counts.front(), 0.0);
      const Cell* hi = find_cell(kind, cube_counts.back(), 0.0);
      if (lo == nullptr || hi == nullptr) continue;
      const double b1 = bytes_per_cycle(lo->result);
      const double bn = bytes_per_cycle(hi->result);
      if (bn <= b1) {
        ok = false;
        std::fprintf(stderr,
                     "[bench] FAIL: %s uniform bandwidth did not scale "
                     "(%.3f B/cyc at %u cubes vs %.3f at %u)\n",
                     to_string(kind).data(), bn, cube_counts.back(), b1,
                     cube_counts.front());
      }
    }
  }
  for (const CoalescerKind kind : kinds) {
    const std::uint32_t cubes = cube_counts.back();
    if (cubes < 2) break;
    const std::uint32_t hot_cube = cubes - 1;
    const Cell* uni = find_cell(kind, cubes, 0.0);
    const Cell* hotc = find_cell(kind, cubes, skew);
    if (uni == nullptr || hotc == nullptr || skew <= 0.0) continue;
    if (hot_ingress_occupancy(hotc->result, hot_cube) <=
        hot_ingress_occupancy(uni->result, hot_cube)) {
      ok = false;
      std::fprintf(stderr,
                   "[bench] FAIL: %s zipf=%.2f hot-shard ingress link "
                   "(%.1f%%) not hotter than uniform (%.1f%%) at %u cubes\n",
                   to_string(kind).data(), skew,
                   hot_ingress_occupancy(hotc->result, hot_cube) * 100.0,
                   hot_ingress_occupancy(uni->result, hot_cube) * 100.0,
                   cubes);
    }
  }

  const std::string report_dir = cli.get("jsondir", "results");
  if (!report_dir.empty()) {
    const std::string path = report.write(report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  std::fprintf(stderr, "[bench] multicube gates: %s\n",
               ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
