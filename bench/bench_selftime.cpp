// Simulator self-time: how fast the simulator itself runs, with and
// without event-horizon fast-forwarding (SystemConfig::enable_fast_forward),
// the sharded-execution scaling of the threads= epoch scheduler (serial vs
// 2 and 4 worker threads over the same 4-shard run, bit-identical results),
// the multi-cube fabric's self-time (cubes=1/2/4, with the wrapped-vs-bare
// passthrough gate), plus the generation time the shared TraceStore saves
// per suite.
//
// Runs a latency-bound suite mix (the Fig. 12 latency-analysis workloads)
// under the no-coalescing controller and PAC, timing each run twice -
// naive per-cycle loop vs. fast-forward - and reporting the wall-clock
// speedup. Both runs must report identical simulated cycle counts; any
// divergence is flagged loudly since it would mean the event-horizon
// bounds are unsound (tests/test_fastforward.cpp proves full bit-identity
// per field). The TraceStore section acquires each suite cold (miss:
// generates) and warm (hit: shared handle) and byte-compares the store's
// traces against a fresh generate(); any divergence also exits non-zero.
#include <chrono>

#include "bench_common.hpp"
#include "noc/traffic_gen.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Cold-vs-warm TraceStore acquisition per suite. Returns false on any
/// trace-content divergence between the store and fresh generation.
bool report_trace_store(const std::vector<const Workload*>& suites,
                        const WorkloadConfig& wcfg) {
  TraceStore store;
  Table t({"suite", "cold gen (ms)", "warm hit (ms)", "saved (ms)",
           "content"});
  bool identical = true;
  double total_saved = 0.0;
  for (const Workload* suite : suites) {
    const auto t0 = std::chrono::steady_clock::now();
    const TraceStore::Acquired cold = acquire_traces(&store, *suite, wcfg);
    const auto t1 = std::chrono::steady_clock::now();
    const TraceStore::Acquired warm = acquire_traces(&store, *suite, wcfg);
    const auto t2 = std::chrono::steady_clock::now();

    const bool shared = cold.traces.get() == warm.traces.get() &&
                        warm.source == TraceStore::Source::kMemory;
    const bool content_ok = *cold.traces == suite->generate(wcfg);
    identical = identical && shared && content_ok;

    const double cold_ms = ms_between(t0, t1);
    const double warm_ms = ms_between(t1, t2);
    total_saved += cold_ms - warm_ms;
    t.add_row({std::string(suite->name()), Table::num(cold_ms),
               Table::num(warm_ms), Table::num(cold_ms - warm_ms),
               shared && content_ok ? "identical" : "DIVERGED"});
  }
  const TraceStoreStats stats = store.stats();
  if (stats.misses != suites.size() || stats.hits != suites.size()) {
    std::fprintf(stderr,
                 "[bench] trace store mis-memoized: %llu misses / %llu hits "
                 "for %zu suites\n",
                 static_cast<unsigned long long>(stats.misses),
                 static_cast<unsigned long long>(stats.hits), suites.size());
    identical = false;
  }
  t.print(
      "TraceStore cold vs warm - generation time saved per suite "
      "(warm acquisitions share one immutable trace set)");
  std::fprintf(stderr,
               "[bench] trace store saved %.1f ms generation across %zu "
               "suites, %s\n",
               total_saved, suites.size(),
               identical ? "contents identical" : "contents DIVERGED");
  return identical;
}

/// Runtime-verifier overhead: the same fast-forwarded run at verify=off /
/// counters / full. All three must report identical simulated cycles (the
/// verifier is observational); returns false on divergence. The counters
/// level is the always-on candidate, so its overhead is the headline.
bool report_verify_overhead(const std::vector<const Workload*>& suites,
                            const WorkloadConfig& wcfg,
                            const SystemConfig& base, TraceStore* store) {
  Table t({"suite", "off Mcyc/s", "counters Mcyc/s", "full Mcyc/s",
           "counters ovh", "full ovh", "results"});
  bool identical = true;
  double off_total = 0.0, counters_total = 0.0, full_total = 0.0;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind :
         {CoalescerKind::kDirect, CoalescerKind::kPac}) {
      const std::string label =
          std::string(suite->name()) + "/" + std::string(to_string(kind));
      std::fprintf(stderr, "[bench] verify overhead: %s ...\n",
                   label.c_str());
      RunResult runs[3];
      const VerifyLevel levels[3] = {VerifyLevel::kOff,
                                     VerifyLevel::kCounters,
                                     VerifyLevel::kFull};
      for (int i = 0; i < 3; ++i) {
        SystemConfig cfg = base;
        cfg.enable_fast_forward = true;
        cfg.verify.level = levels[i];
        runs[i] = run_suite(*suite, kind, wcfg, cfg, store);
      }
      const bool same = runs[1].cycles == runs[0].cycles &&
                        runs[2].cycles == runs[0].cycles;
      identical = identical && same;
      off_total += runs[0].throughput.wall_seconds;
      counters_total += runs[1].throughput.wall_seconds;
      full_total += runs[2].throughput.wall_seconds;
      const auto overhead = [&](const RunResult& r) {
        return runs[0].throughput.wall_seconds > 0.0
                   ? (r.throughput.wall_seconds /
                          runs[0].throughput.wall_seconds -
                      1.0) * 100.0
                   : 0.0;
      };
      t.add_row({label, Table::num(runs[0].throughput.mcycles_per_sec()),
                 Table::num(runs[1].throughput.mcycles_per_sec()),
                 Table::num(runs[2].throughput.mcycles_per_sec()),
                 Table::pct(overhead(runs[1])), Table::pct(overhead(runs[2])),
                 same ? "identical" : "DIVERGED"});
    }
  }
  t.print(
      "Runtime verification overhead - verify=off vs counters vs full "
      "(identical simulated results, wall-clock only)");
  std::fprintf(
      stderr,
      "[bench] verify overhead: counters %+.1f%%, full %+.1f%%, results %s\n",
      off_total > 0.0 ? (counters_total / off_total - 1.0) * 100.0 : 0.0,
      off_total > 0.0 ? (full_total / off_total - 1.0) * 100.0 : 0.0,
      identical ? "identical" : "DIVERGED");
  return identical;
}

/// Sharded-execution scaling: the same 4-shard run advanced by 1, 2 and 4
/// worker threads (threads= epoch scheduler). All thread counts simulate
/// the identical sharded topology, so every simulated metric must be
/// bit-identical - only wall-clock may differ. Returns false on divergence.
bool report_thread_scaling(const WorkloadConfig& base_wcfg,
                           const SystemConfig& base, TraceStore* store,
                           SweepReport& report) {
  // Bandwidth-bound multi-core profile so each shard carries real work.
  WorkloadConfig wcfg = base_wcfg;
  wcfg.num_cores = 8;
  SystemConfig cfg = base;
  cfg.max_outstanding_loads = 8;
  cfg.exec.shards = 4;

  Table t({"suite", "threads", "sim cycles", "Mcyc/s", "speedup",
           "results"});
  bool identical = true;
  for (const char* name : {"stream", "gs"}) {
    const Workload* suite = find_workload(name);
    RunResult serial;
    for (unsigned threads : {1u, 2u, 4u}) {
      const std::string label = std::string(name) + "/pac/shards=4/threads=" +
                                std::to_string(threads);
      std::fprintf(stderr, "[bench] scaling: %s ...\n", label.c_str());
      cfg.exec.threads = threads;
      const RunResult r =
          run_suite(*suite, CoalescerKind::kPac, wcfg, cfg, store);

      bool same = true;
      if (threads == 1) {
        serial = r;
      } else {
        // Full simulated-metric identity against the serial run; wall-clock
        // (and the host-side exec/throughput blocks) are the only allowed
        // difference.
        same = r.cycles == serial.cycles &&
               r.coal.raw_requests == serial.coal.raw_requests &&
               r.coal.issued_requests == serial.coal.issued_requests &&
               r.coal.issued_payload_bytes ==
                   serial.coal.issued_payload_bytes &&
               r.l1_hits == serial.l1_hits &&
               r.l1_misses == serial.l1_misses &&
               r.llc_hits == serial.llc_hits &&
               r.llc_misses == serial.llc_misses &&
               r.core_stall_cycles == serial.core_stall_cycles &&
               r.total_energy == serial.total_energy &&
               r.hmc.requests == serial.hmc.requests;
        if (!same) {
          std::fprintf(stderr,
                       "[bench] DIVERGENCE in %s vs threads=1 (e.g. %llu vs "
                       "%llu cycles)\n",
                       label.c_str(),
                       static_cast<unsigned long long>(r.cycles),
                       static_cast<unsigned long long>(serial.cycles));
          identical = false;
        }
      }
      const double speedup =
          r.throughput.wall_seconds > 0.0
              ? serial.throughput.wall_seconds / r.throughput.wall_seconds
              : 0.0;
      t.add_row({name, std::to_string(r.exec.threads),
                 std::to_string(r.cycles),
                 Table::num(r.throughput.mcycles_per_sec()),
                 Table::num(speedup) + "x", same ? "identical" : "DIVERGED"});
      report.add(label, CoalescerKind::kPac, r);
    }
  }
  t.print(
      "Sharded-execution scaling - 4 shards on 1/2/4 worker threads "
      "(bit-identical simulated results, wall-clock only)");
  return identical;
}

/// Multi-cube self-time: simulator speed as the fabric grows (cubes=1/2/4
/// over the Zipf traffic front-end), plus the passthrough gate - wrapping a
/// single cube in the MultiCubeBackend must not change any simulated result
/// vs the bare backend. Returns false on passthrough divergence.
bool report_cube_scaling(bool quick, SweepReport& report) {
  TrafficConfig tcfg;
  tcfg.num_cores = 4;
  tcfg.ops_per_core = quick ? 4'000 : 12'000;
  tcfg.zipf = 0.8;

  Table t({"cubes", "sim cycles", "Mcyc/s", "links", "results"});
  bool identical = true;
  for (const std::uint32_t cubes : {1u, 2u, 4u}) {
    const std::string label = "traffic/pac/cubes=" + std::to_string(cubes);
    std::fprintf(stderr, "[bench] cube scaling: %s ...\n", label.c_str());
    TrafficConfig tc = tcfg;
    tc.cubes = cubes;
    SystemConfig cfg;
    cfg.coalescer = CoalescerKind::kPac;
    cfg.num_cores = tc.num_cores;
    cfg.identity_paging = true;
    cfg.noc.cubes = cubes;
    const TraceSet traces = generate_traffic(tc);
    const RunResult r = simulate(cfg, traces);

    std::string results = "-";
    if (cubes == 1) {
      // Passthrough gate: the wrapped single cube vs the bare backend.
      SystemConfig wrapped_cfg = cfg;
      wrapped_cfg.noc.wrap_single = true;
      const RunResult wrapped = simulate(wrapped_cfg, traces);
      const bool same = wrapped.cycles == r.cycles &&
                        wrapped.coal.issued_requests ==
                            r.coal.issued_requests &&
                        wrapped.coal.issued_payload_bytes ==
                            r.coal.issued_payload_bytes &&
                        wrapped.hmc.requests == r.hmc.requests &&
                        wrapped.total_energy == r.total_energy;
      if (!same) {
        std::fprintf(stderr,
                     "[bench] DIVERGENCE: wrapped cubes=1 (%llu cycles) vs "
                     "bare backend (%llu cycles)\n",
                     static_cast<unsigned long long>(wrapped.cycles),
                     static_cast<unsigned long long>(r.cycles));
        identical = false;
      }
      results = same ? "identical" : "DIVERGED";
    }
    t.add_row({std::to_string(cubes), std::to_string(r.cycles),
               Table::num(r.throughput.mcycles_per_sec()),
               std::to_string(r.noc.links.size()), results});
    report.add(label, CoalescerKind::kPac, r);
  }
  t.print(
      "Multi-cube self-time - simulator throughput vs fabric size "
      "(cubes=1 row gates wrapped-vs-bare passthrough identity)");
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.max_ops_per_core = cli.get_u64("ops", cli.has("quick") ? 15'000
                                                              : 40'000);
  wcfg.scale = cli.get_double("scale", 0.5);
  wcfg.seed = cli.get_u64("seed", 42);
  wcfg.num_cores =
      static_cast<std::uint32_t>(cli.get_u64("cores", 1));

  SystemConfig scfg;
  // Latency-bound profile (the regime fast-forwarding targets): few cores,
  // one outstanding load each and no prefetcher, so the machine spends most
  // cycles waiting out a handful of staggered memory round-trips. Override
  // with cores=<n> / mlp=<n> / prefetch to measure a bandwidth-bound mix.
  scfg.max_outstanding_loads =
      static_cast<std::uint32_t>(cli.get_u64("mlp", 1));
  scfg.enable_prefetch = cli.has("prefetch");
  const std::string only = cli.get("suite", "");

  std::vector<const Workload*> suites;
  for (const char* name : {"stream", "gs", "bfs"}) {
    if (!only.empty() && only != name) continue;
    suites.push_back(find_workload(name));
  }

  SweepReport report("bench_selftime");
  // One store for the whole mix: each suite's traces are generated once
  // and shared by the naive and fast-forward runs of both coalescers.
  TraceStore store;
  Table t({"suite", "sim cycles", "naive Mcyc/s", "FF Mcyc/s", "speedup",
           "jumps", "skipped"});
  double total_naive = 0.0, total_ff = 0.0;
  bool identical = true;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind :
         {CoalescerKind::kDirect, CoalescerKind::kPac}) {
      const std::string label =
          std::string(suite->name()) + "/" + std::string(to_string(kind));
      std::fprintf(stderr, "[bench] %s ...\n", label.c_str());

      SystemConfig naive_cfg = scfg;
      naive_cfg.enable_fast_forward = false;
      const RunResult naive =
          run_suite(*suite, kind, wcfg, naive_cfg, &store);

      SystemConfig ff_cfg = scfg;
      ff_cfg.enable_fast_forward = true;
      const RunResult ff = run_suite(*suite, kind, wcfg, ff_cfg, &store);

      if (ff.cycles != naive.cycles) {
        identical = false;
        std::fprintf(stderr,
                     "[bench] DIVERGENCE in %s: FF %llu cycles vs naive "
                     "%llu cycles\n",
                     label.c_str(),
                     static_cast<unsigned long long>(ff.cycles),
                     static_cast<unsigned long long>(naive.cycles));
      }

      const double speedup =
          ff.throughput.wall_seconds > 0.0
              ? naive.throughput.wall_seconds / ff.throughput.wall_seconds
              : 0.0;
      const double skipped_frac =
          ff.cycles == 0 ? 0.0
                         : static_cast<double>(ff.throughput.skipped_cycles) /
                               static_cast<double>(ff.cycles);
      total_naive += naive.throughput.wall_seconds;
      total_ff += ff.throughput.wall_seconds;
      t.add_row({label, std::to_string(ff.cycles),
                 Table::num(naive.throughput.mcycles_per_sec()),
                 Table::num(ff.throughput.mcycles_per_sec()),
                 Table::num(speedup) + "x",
                 std::to_string(ff.throughput.fast_forward_jumps),
                 Table::pct(skipped_frac * 100.0)});
      report.add(label, kind, ff);
    }
  }
  const double overall = total_ff > 0.0 ? total_naive / total_ff : 0.0;
  t.add_row({"OVERALL", "", Table::num(0.0), Table::num(0.0),
             Table::num(overall) + "x", "", ""});
  t.print(
      "Simulator self-time - event-horizon fast-forward vs naive loop "
      "(identical simulated results, wall-clock only)");
  std::fprintf(stderr, "[bench] overall speedup: %.2fx, results %s\n",
               overall, identical ? "identical" : "DIVERGED");

  const bool scaling_identical =
      report_thread_scaling(wcfg, scfg, &store, report);
  const bool cubes_identical = report_cube_scaling(cli.has("quick"), report);
  const bool verify_identical =
      report_verify_overhead(suites, wcfg, scfg, &store);
  const bool store_identical = report_trace_store(suites, wcfg);

  const std::string report_dir = cli.get("jsondir", "results");
  if (!report_dir.empty()) {
    report.set_trace_store(store.stats());
    const std::string path = report.write(report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  return identical && scaling_identical && cubes_identical &&
                 verify_identical && store_identical
             ? 0
             : 1;
}
