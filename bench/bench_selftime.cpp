// Simulator self-time: how fast the simulator itself runs, with and
// without event-horizon fast-forwarding (SystemConfig::enable_fast_forward).
//
// Runs a latency-bound suite mix (the Fig. 12 latency-analysis workloads)
// under the no-coalescing controller and PAC, timing each run twice -
// naive per-cycle loop vs. fast-forward - and reporting the wall-clock
// speedup. Both runs must report identical simulated cycle counts; any
// divergence is flagged loudly since it would mean the event-horizon
// bounds are unsound (tests/test_fastforward.cpp proves full bit-identity
// per field).
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  WorkloadConfig wcfg;
  wcfg.max_ops_per_core = cli.get_u64("ops", cli.has("quick") ? 15'000
                                                              : 40'000);
  wcfg.scale = cli.get_double("scale", 0.5);
  wcfg.seed = cli.get_u64("seed", 42);
  wcfg.num_cores =
      static_cast<std::uint32_t>(cli.get_u64("cores", 1));

  SystemConfig scfg;
  // Latency-bound profile (the regime fast-forwarding targets): few cores,
  // one outstanding load each and no prefetcher, so the machine spends most
  // cycles waiting out a handful of staggered memory round-trips. Override
  // with cores=<n> / mlp=<n> / prefetch to measure a bandwidth-bound mix.
  scfg.max_outstanding_loads =
      static_cast<std::uint32_t>(cli.get_u64("mlp", 1));
  scfg.enable_prefetch = cli.has("prefetch");
  const std::string only = cli.get("suite", "");

  std::vector<const Workload*> suites;
  for (const char* name : {"stream", "gs", "bfs"}) {
    if (!only.empty() && only != name) continue;
    suites.push_back(find_workload(name));
  }

  SweepReport report("bench_selftime");
  Table t({"suite", "sim cycles", "naive Mcyc/s", "FF Mcyc/s", "speedup",
           "jumps", "skipped"});
  double total_naive = 0.0, total_ff = 0.0;
  bool identical = true;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind :
         {CoalescerKind::kDirect, CoalescerKind::kPac}) {
      const std::string label =
          std::string(suite->name()) + "/" + std::string(to_string(kind));
      std::fprintf(stderr, "[bench] %s ...\n", label.c_str());

      SystemConfig naive_cfg = scfg;
      naive_cfg.enable_fast_forward = false;
      const RunResult naive = run_suite(*suite, kind, wcfg, naive_cfg);

      SystemConfig ff_cfg = scfg;
      ff_cfg.enable_fast_forward = true;
      const RunResult ff = run_suite(*suite, kind, wcfg, ff_cfg);

      if (ff.cycles != naive.cycles) {
        identical = false;
        std::fprintf(stderr,
                     "[bench] DIVERGENCE in %s: FF %llu cycles vs naive "
                     "%llu cycles\n",
                     label.c_str(),
                     static_cast<unsigned long long>(ff.cycles),
                     static_cast<unsigned long long>(naive.cycles));
      }

      const double speedup =
          ff.throughput.wall_seconds > 0.0
              ? naive.throughput.wall_seconds / ff.throughput.wall_seconds
              : 0.0;
      const double skipped_frac =
          ff.cycles == 0 ? 0.0
                         : static_cast<double>(ff.throughput.skipped_cycles) /
                               static_cast<double>(ff.cycles);
      total_naive += naive.throughput.wall_seconds;
      total_ff += ff.throughput.wall_seconds;
      t.add_row({label, std::to_string(ff.cycles),
                 Table::num(naive.throughput.mcycles_per_sec()),
                 Table::num(ff.throughput.mcycles_per_sec()),
                 Table::num(speedup) + "x",
                 std::to_string(ff.throughput.fast_forward_jumps),
                 Table::pct(skipped_frac * 100.0)});
      report.add(label, kind, ff);
    }
  }
  const double overall = total_ff > 0.0 ? total_naive / total_ff : 0.0;
  t.add_row({"OVERALL", "", Table::num(0.0), Table::num(0.0),
             Table::num(overall) + "x", "", ""});
  t.print(
      "Simulator self-time - event-horizon fast-forward vs naive loop "
      "(identical simulated results, wall-clock only)");
  std::fprintf(stderr, "[bench] overall speedup: %.2fx, results %s\n",
               overall, identical ? "identical" : "DIVERGED");

  const std::string report_dir = cli.get("jsondir", "results");
  if (!report_dir.empty()) {
    const std::string path = report.write(report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  return identical ? 0 : 1;
}
