// Reproduces paper Figure 6: (a) coalescing efficiency of PAC vs the
// conventional MSHR-based DMC per suite, (b) the multiprocessing variant,
// and (c) bank-conflict reduction of PAC over the no-coalescing controller.
//
// Paper reference values: (a) PAC 56.01% avg vs MSHR-DMC 33.25% avg, with
// EP/GS/LU/MG above 70%; (b) PAC 44.21% -> 38.93% and DMC 28.39% -> 14.43%
// when two processes share the socket; (c) 85.16% average bank-conflict
// reduction, EP/MG/SORT/SSCAv2 above 90%.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

void fig6a_and_6c(const EvalContext& ctx) {
  const auto all = ctx.run_all(
      {CoalescerKind::kDirect, CoalescerKind::kMshrDmc, CoalescerKind::kPac});

  Table t({"suite", "MSHR-DMC eff", "PAC eff", "bank-conflict reduction"});
  for (const auto& s : all) {
    const double base_conf =
        static_cast<double>(s.at(CoalescerKind::kDirect).hmc.bank_conflicts);
    const double pac_conf =
        static_cast<double>(s.at(CoalescerKind::kPac).hmc.bank_conflicts);
    t.add_row({s.name,
               Table::pct(s.at(CoalescerKind::kMshrDmc).coalescing_efficiency() *
                          100.0),
               Table::pct(s.at(CoalescerKind::kPac).coalescing_efficiency() *
                          100.0),
               Table::pct(percent_reduction(base_conf, pac_conf))});
  }
  t.add_row(
      {"AVERAGE",
       Table::pct(average(all,
                          [](const SuiteResults& s) {
                            return s.at(CoalescerKind::kMshrDmc)
                                .coalescing_efficiency();
                          }) *
                  100.0),
       Table::pct(average(all,
                          [](const SuiteResults& s) {
                            return s.at(CoalescerKind::kPac)
                                .coalescing_efficiency();
                          }) *
                  100.0),
       Table::pct(average(all, [](const SuiteResults& s) {
         return percent_reduction(
             static_cast<double>(
                 s.at(CoalescerKind::kDirect).hmc.bank_conflicts),
             static_cast<double>(s.at(CoalescerKind::kPac).hmc.bank_conflicts));
       }))});
  t.print(
      "Fig 6a/6c - coalescing efficiency & bank-conflict reduction "
      "(paper: DMC 33.25%, PAC 56.01%, conflicts -85.16%)");
}

void fig6b(const EvalContext& ctx) {
  // Paper Fig. 6b pairs suites with diverse patterns on one socket. We pair
  // each suite with a fixed irregular partner (SSCAv2), mirroring "two
  // processes bound to distinct cores running different tests".
  const Workload* partner = find_workload("sscav2");
  Table t({"suite pair", "DMC eff (multi)", "PAC eff (multi)"});
  double dmc_sum = 0.0, pac_sum = 0.0;
  int count = 0;
  for (const Workload* suite : all_workloads()) {
    if (!ctx.only.empty() && ctx.only != suite->name()) continue;
    if (suite->name() == partner->name()) continue;
    std::fprintf(stderr, "[bench] multi %s+sscav2 ...\n",
                 std::string(suite->name()).c_str());
    // The shared store generates each half-trace set once: the DMC and PAC
    // runs (and sscav2's half across every pairing) reuse the same traces.
    const RunResult dmc = run_multiprocess(*suite, *partner,
                                           CoalescerKind::kMshrDmc, ctx.wcfg,
                                           ctx.scfg, ctx.trace_store());
    const RunResult pac = run_multiprocess(*suite, *partner,
                                           CoalescerKind::kPac, ctx.wcfg,
                                           ctx.scfg, ctx.trace_store());
    t.add_row({std::string(suite->name()) + "+sscav2",
               Table::pct(dmc.coalescing_efficiency() * 100.0),
               Table::pct(pac.coalescing_efficiency() * 100.0)});
    dmc_sum += dmc.coalescing_efficiency();
    pac_sum += pac.coalescing_efficiency();
    ++count;
  }
  if (count > 0) {
    t.add_row({"AVERAGE", Table::pct(dmc_sum / count * 100.0),
               Table::pct(pac_sum / count * 100.0)});
  }
  t.print(
      "Fig 6b - multiprocessing coalescing efficiency "
      "(paper: DMC drops to 14.43%, PAC holds 38.93%)");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  fig6a_and_6c(ctx);
  if (!cli.has("skip6b")) fig6b(ctx);
  return 0;
}
