// Resilience sweep: every suite simulated under injected HMC link faults at
// increasing error rates, for both PAC and the MSHR-DMC baseline. Reports
// the injected-fault counts, the retry traffic they caused, the effective
// payload fraction (goodput after retransmission overhead) and the cycle
// slowdown relative to the fault-free run of the same (suite, coalescer).
//
// Knobs (on top of the common set):
//   faultrate=<p>   top of the swept error-rate ladder (default 1e-3);
//                   the sweep runs {0, p/100, p/10, p}
//   faultdrop=<p>   response drop rate at the top rung (scales down the
//                   ladder with the link rate; default faultrate/10)
//   jobtimeout=<s>  per-job watchdog - a hung cell becomes a structured
//                   "timeout" entry instead of wedging the bench
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

std::string rate_label(double rate) {
  if (rate <= 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0e", rate);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  EvalContext ctx(cli);

  const double top_rate =
      ctx.scfg.fault.link_error_rate > 0.0 ? ctx.scfg.fault.link_error_rate
                                           : 1e-3;
  const double top_drop = ctx.scfg.fault.response_drop_rate > 0.0
                              ? ctx.scfg.fault.response_drop_rate
                              : top_rate / 10.0;
  const double rates[] = {0.0, top_rate / 100.0, top_rate / 10.0, top_rate};
  const CoalescerKind kinds[] = {CoalescerKind::kMshrDmc,
                                 CoalescerKind::kPac};

  std::vector<const Workload*> suites;
  for (const Workload* suite : all_workloads()) {
    if (!ctx.only.empty() && ctx.only != suite->name()) continue;
    suites.push_back(suite);
  }

  std::vector<exp::SweepJob> sweep;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind : kinds) {
      for (double rate : rates) {
        exp::SweepJob job;
        job.suite = suite;
        job.cfg = ctx.scfg;
        job.cfg.coalescer = kind;
        job.cfg.fault.link_error_rate = rate;
        // Scale the drop/stall rates with the link rate so one ladder
        // exercises every recovery path (NACK, timeout, stall).
        job.cfg.fault.response_drop_rate = top_drop * (rate / top_rate);
        job.cfg.fault.vault_stall_rate = rate;
        job.label = std::string(suite->name()) + "/" +
                    std::string(to_string(kind)) + "@" + rate_label(rate);
        sweep.push_back(std::move(job));
      }
    }
  }

  const exp::SweepRunner runner(ctx.jobs);
  exp::SweepOptions opts;
  opts.job_timeout_seconds = ctx.job_timeout_seconds;
  const std::vector<exp::JobOutcome> outcomes =
      runner.run_isolated(sweep, ctx.wcfg, opts, ctx.trace_store());

  Table t({"suite", "coalescer", "rate", "link errs", "drops", "stalls",
           "retx", "timeouts", "eff payload", "slowdown"});
  std::size_t next = 0;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind : kinds) {
      const std::size_t base_idx = next;  // rate 0 comes first per (s, k)
      for (double rate : rates) {
        (void)rate;
        const exp::JobOutcome& oc = outcomes[next];
        const exp::SweepJob& job = sweep[next];
        ++next;
        if (!oc.ok()) {
          t.add_row({std::string(suite->name()),
                     std::string(to_string(kind)),
                     rate_label(job.cfg.fault.link_error_rate),
                     std::string(exp::to_string(oc.status)), "-", "-", "-",
                     "-", "-", "-"});
          continue;
        }
        const RunResult& r = oc.result;
        const ResilienceStats& res = r.resilience;
        const exp::JobOutcome& base = outcomes[base_idx];
        const double slowdown =
            base.ok() && base.result.cycles > 0
                ? static_cast<double>(r.cycles) /
                      static_cast<double>(base.result.cycles)
                : 0.0;
        t.add_row(
            {std::string(suite->name()), std::string(to_string(kind)),
             rate_label(job.cfg.fault.link_error_rate),
             std::to_string(res.fault.link_errors),
             std::to_string(res.fault.response_drops),
             std::to_string(res.fault.vault_stalls),
             std::to_string(res.retry.retransmissions),
             std::to_string(res.retry.timeout_fires),
             Table::pct(res.effective_payload_fraction(
                            r.coal.issued_payload_bytes) *
                        100.0),
             Table::num(slowdown)});
      }
    }
  }
  t.print(
      "fault resilience: injected link errors, retry traffic and slowdown "
      "(rate 0 = fault-free reference; all runs complete losslessly)");

  if (!ctx.report_dir.empty()) {
    SweepReport report("bench_fault_resilience");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      if (outcomes[i].ok()) {
        report.add(sweep[i].label, sweep[i].cfg.coalescer,
                   outcomes[i].result);
      } else {
        report.add_failure(sweep[i].label,
                           exp::to_string(outcomes[i].status),
                           outcomes[i].error, outcomes[i].wall_seconds);
      }
    }
    report.set_trace_store(ctx.trace_store()->stats());
    const std::string path = report.write(ctx.report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  return 0;
}
