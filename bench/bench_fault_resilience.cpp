// Resilience sweep: every suite simulated under injected HMC link faults at
// increasing error rates, for both PAC and the MSHR-DMC baseline. Reports
// the injected-fault counts, the retry traffic they caused, the effective
// payload fraction (goodput after retransmission overhead) and the cycle
// slowdown relative to the fault-free run of the same (suite, coalescer).
//
// Knobs (on top of the common set):
//   faultrate=<p>   top of the swept error-rate ladder (default 1e-3);
//                   the sweep runs {0, p/100, p/10, p}
//   faultdrop=<p>   response drop rate at the top rung (scales down the
//                   ladder with the link rate; default faultrate/10)
//   jobtimeout=<s>  per-job watchdog - a hung cell becomes a structured
//                   "timeout" entry instead of wedging the bench
//
// A second ladder sweeps burst_length {1, 2, 4, 8} at the top error rate
// on the first suite: correlated fault bursts stress the retry layer's
// exponential backoff far harder than independent draws at the same rate.
// The bench exits nonzero (regression gate) if any cell fails to complete
// losslessly or a fault-rung cell observes no injected faults.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

std::string rate_label(double rate) {
  if (rate <= 0.0) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0e", rate);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  EvalContext ctx(cli);

  const double top_rate =
      ctx.scfg.fault.link_error_rate > 0.0 ? ctx.scfg.fault.link_error_rate
                                           : 1e-3;
  const double top_drop = ctx.scfg.fault.response_drop_rate > 0.0
                              ? ctx.scfg.fault.response_drop_rate
                              : top_rate / 10.0;
  const double rates[] = {0.0, top_rate / 100.0, top_rate / 10.0, top_rate};
  const CoalescerKind kinds[] = {CoalescerKind::kMshrDmc,
                                 CoalescerKind::kPac};

  std::vector<const Workload*> suites;
  for (const Workload* suite : all_workloads()) {
    if (!ctx.only.empty() && ctx.only != suite->name()) continue;
    suites.push_back(suite);
  }

  std::vector<exp::SweepJob> sweep;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind : kinds) {
      for (double rate : rates) {
        exp::SweepJob job;
        job.suite = suite;
        job.cfg = ctx.scfg;
        job.cfg.coalescer = kind;
        job.cfg.fault.link_error_rate = rate;
        // Scale the drop/stall rates with the link rate so one ladder
        // exercises every recovery path (NACK, timeout, stall).
        job.cfg.fault.response_drop_rate = top_drop * (rate / top_rate);
        job.cfg.fault.vault_stall_rate = rate;
        job.label = std::string(suite->name()) + "/" +
                    std::string(to_string(kind)) + "@" + rate_label(rate);
        sweep.push_back(std::move(job));
      }
    }
  }

  // Burst ladder: fixed top-rung rates, correlated-burst window swept.
  const std::uint32_t bursts[] = {1, 2, 4, 8};
  const std::size_t burst_base = sweep.size();
  if (!suites.empty()) {
    const Workload* suite = suites.front();
    for (CoalescerKind kind : kinds) {
      for (std::uint32_t burst : bursts) {
        exp::SweepJob job;
        job.suite = suite;
        job.cfg = ctx.scfg;
        job.cfg.coalescer = kind;
        job.cfg.fault.link_error_rate = top_rate;
        job.cfg.fault.response_drop_rate = top_drop;
        job.cfg.fault.vault_stall_rate = top_rate;
        job.cfg.fault.burst_length = burst;
        job.label = std::string(suite->name()) + "/" +
                    std::string(to_string(kind)) + "@burst" +
                    std::to_string(burst);
        sweep.push_back(std::move(job));
      }
    }
  }

  const exp::SweepRunner runner(ctx.jobs);
  exp::SweepOptions opts;
  opts.job_timeout_seconds = ctx.job_timeout_seconds;
  const std::vector<exp::JobOutcome> outcomes =
      runner.run_isolated(sweep, ctx.wcfg, opts, ctx.trace_store());

  bool gates_ok = true;

  Table t({"suite", "coalescer", "rate", "link errs", "drops", "stalls",
           "retx", "timeouts", "eff payload", "slowdown"});
  std::size_t next = 0;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind : kinds) {
      const std::size_t base_idx = next;  // rate 0 comes first per (s, k)
      for (double rate : rates) {
        (void)rate;
        const exp::JobOutcome& oc = outcomes[next];
        const exp::SweepJob& job = sweep[next];
        ++next;
        if (!oc.ok()) {
          gates_ok = false;
          t.add_row({std::string(suite->name()),
                     std::string(to_string(kind)),
                     rate_label(job.cfg.fault.link_error_rate),
                     std::string(exp::to_string(oc.status)), "-", "-", "-",
                     "-", "-", "-"});
          continue;
        }
        const RunResult& r = oc.result;
        const ResilienceStats& res = r.resilience;
        const exp::JobOutcome& base = outcomes[base_idx];
        const double slowdown =
            base.ok() && base.result.cycles > 0
                ? static_cast<double>(r.cycles) /
                      static_cast<double>(base.result.cycles)
                : 0.0;
        t.add_row(
            {std::string(suite->name()), std::string(to_string(kind)),
             rate_label(job.cfg.fault.link_error_rate),
             std::to_string(res.fault.link_errors),
             std::to_string(res.fault.response_drops),
             std::to_string(res.fault.vault_stalls),
             std::to_string(res.retry.retransmissions),
             std::to_string(res.retry.timeout_fires),
             Table::pct(res.effective_payload_fraction(
                            r.coal.issued_payload_bytes) *
                        100.0),
             Table::num(slowdown)});
      }
    }
  }
  t.print(
      "fault resilience: injected link errors, retry traffic and slowdown "
      "(rate 0 = fault-free reference; all runs complete losslessly)");

  if (burst_base < sweep.size()) {
    Table bt({"suite", "coalescer", "burst", "link errs", "drops", "retx",
              "timeouts", "max depth", "eff payload", "slowdown"});
    // Slowdown is relative to the burst=1 cell of the same coalescer: the
    // ladder isolates the cost of correlation, not of the rate itself.
    for (std::size_t i = burst_base; i < sweep.size(); ++i) {
      const exp::SweepJob& job = sweep[i];
      const exp::JobOutcome& oc = outcomes[i];
      const std::size_t ref_idx =
          burst_base + ((i - burst_base) / std::size(bursts)) *
                           std::size(bursts);  // burst=1 of this coalescer
      if (!oc.ok()) {
        gates_ok = false;
        std::fprintf(stderr, "[bench] FAIL: %s did not complete (%s)\n",
                     job.label.c_str(), exp::to_string(oc.status));
        bt.add_row({std::string(job.suite->name()),
                    std::string(to_string(job.cfg.coalescer)),
                    std::to_string(job.cfg.fault.burst_length),
                    std::string(exp::to_string(oc.status)), "-", "-", "-",
                    "-", "-", "-"});
        continue;
      }
      const RunResult& r = oc.result;
      const ResilienceStats& res = r.resilience;
      if (res.fault.total() == 0) {
        gates_ok = false;
        std::fprintf(stderr, "[bench] FAIL: %s observed no faults\n",
                     job.label.c_str());
      }
      const exp::JobOutcome& ref = outcomes[ref_idx];
      const double slowdown =
          ref.ok() && ref.result.cycles > 0
              ? static_cast<double>(r.cycles) /
                    static_cast<double>(ref.result.cycles)
              : 0.0;
      bt.add_row({std::string(job.suite->name()),
                  std::string(to_string(job.cfg.coalescer)),
                  std::to_string(job.cfg.fault.burst_length),
                  std::to_string(res.fault.link_errors),
                  std::to_string(res.fault.response_drops),
                  std::to_string(res.retry.retransmissions),
                  std::to_string(res.retry.timeout_fires),
                  std::to_string(res.retry.max_retry_depth),
                  Table::pct(res.effective_payload_fraction(
                                 r.coal.issued_payload_bytes) *
                             100.0),
                  Table::num(slowdown)});
    }
    bt.print(
        "burst ladder: correlated fault windows at the top error rate "
        "(slowdown vs the burst=1 cell of the same coalescer)");
  }

  if (!ctx.report_dir.empty()) {
    SweepReport report("bench_fault_resilience");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      if (outcomes[i].ok()) {
        report.add(sweep[i].label, sweep[i].cfg.coalescer,
                   outcomes[i].result);
      } else {
        report.add_failure(sweep[i].label,
                           exp::to_string(outcomes[i].status),
                           outcomes[i].error, outcomes[i].wall_seconds);
      }
    }
    report.set_trace_store(ctx.trace_store()->stats());
    const std::string path = report.write(ctx.report_dir);
    std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
  }
  std::fprintf(stderr, "[bench] resilience gates: %s\n",
               gates_ok ? "PASS" : "FAIL");
  return gates_ok ? 0 : 1;
}
