// Reproduces paper Figures 8 and 9: DBSCAN clustering (epsilon = 4 KB, the
// physical page size) of raw-request physical addresses traced from a time
// segment of BFS (Fig. 8, sparsely scattered) and SPARSELU (Fig. 9, densely
// clustered).
//
// Paper reference: BFS requests scatter over distinct pages (mostly noise /
// tiny clusters); SPARSELU exhibits large dense clusters, explaining its
// far higher coalescing probability.
#include <algorithm>

#include "analysis/dbscan.hpp"
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

void cluster_suite(const EvalContext& ctx, const char* name,
                   const char* figure) {
  const Workload* suite = find_workload(name);
  SystemConfig cfg = ctx.scfg;
  cfg.coalescer = CoalescerKind::kPac;
  cfg.record_raw_trace = true;
  cfg.raw_trace_start = 50'000;  // a segment inside steady state
  cfg.raw_trace_limit = 10'000;  // paper: a 10,000-cycle segment

  WorkloadConfig wcfg = ctx.wcfg;
  const std::vector<Trace> traces = suite->generate(wcfg);
  const RunResult r = simulate(cfg, traces);

  DbscanConfig db;
  db.epsilon = 4096.0;  // one physical page, as in the paper
  db.min_points = 4;
  const DbscanResult res = dbscan_addresses(r.raw_trace, db);

  std::vector<DbscanCluster> clusters = res.clusters;
  std::sort(clusters.begin(), clusters.end(),
            [](const DbscanCluster& a, const DbscanCluster& b) {
              return a.size > b.size;
            });

  Table t({"cluster", "requests", "span (KB)", "centroid"});
  const std::size_t show = std::min<std::size_t>(clusters.size(), 10);
  for (std::size_t i = 0; i < show; ++i) {
    const DbscanCluster& c = clusters[i];
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(c.centroid));
    t.add_row({std::to_string(i), std::to_string(c.size),
               Table::num(static_cast<double>(c.max_addr - c.min_addr) /
                          1024.0),
               buf});
  }
  t.print(std::string(figure) + " - DBSCAN clusters of " + name +
          " request addresses (top 10 of " +
          std::to_string(res.num_clusters()) + ")");
  std::printf(
      "%s: %zu points, %zu clusters, %zu noise (%.1f%% clustered)\n",
      name, res.labels.size(), res.num_clusters(), res.noise_count,
      res.clustered_fraction() * 100.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  cluster_suite(ctx, "bfs", "Fig 8");
  cluster_suite(ctx, "sparselu", "Fig 9");
  return 0;
}
