// Reproduces paper Figures 13 and 14: per-operation HMC energy savings of
// PAC and the overall energy saving of PAC vs the MSHR-based DMC, both
// relative to the no-coalescing controller.
//
// Paper reference (Fig 13): VAULT-RQST-SLOT -59.35%, VAULT-RSP-SLOT
// -48.75%, VAULT-CTRL -57.09%, LINK-LOCAL-ROUTE -61.39%, LINK-REMOTE-ROUTE
// -53.22%. (Fig 14): PAC -59.21% overall vs DMC -39.57%.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  const auto all = ctx.run_all(
      {CoalescerKind::kDirect, CoalescerKind::kMshrDmc, CoalescerKind::kPac});

  // Fig 13: average per-operation saving of PAC across suites.
  constexpr HmcOp kOps[] = {HmcOp::kVaultRqstSlot, HmcOp::kVaultRspSlot,
                            HmcOp::kVaultCtrl, HmcOp::kLinkLocalRoute,
                            HmcOp::kLinkRemoteRoute, HmcOp::kDramAccess,
                            HmcOp::kDramData};
  Table t13({"HMC operation", "avg energy saving (PAC vs none)"});
  for (HmcOp op : kOps) {
    const double avg = average(all, [op](const SuiteResults& s) {
      const double base =
          s.at(CoalescerKind::kDirect).energy[static_cast<std::size_t>(op)];
      const double pac =
          s.at(CoalescerKind::kPac).energy[static_cast<std::size_t>(op)];
      return percent_reduction(base, pac);
    });
    t13.add_row({std::string(to_string(op)), Table::pct(avg)});
  }
  t13.print(
      "Fig 13 - energy saving per HMC operation "
      "(paper: RQST-SLOT 59.35%, RSP-SLOT 48.75%, CTRL 57.09%, "
      "LINK-LOCAL 61.39%, LINK-REMOTE 53.22%)");

  // Fig 14: overall energy saving per suite, PAC vs MSHR-based DMC.
  Table t14({"suite", "MSHR-DMC saving", "PAC saving"});
  double dmc_sum = 0.0, pac_sum = 0.0;
  for (const auto& s : all) {
    const double base = s.at(CoalescerKind::kDirect).total_energy;
    const double dmc = percent_reduction(
        base, s.at(CoalescerKind::kMshrDmc).total_energy);
    const double pac =
        percent_reduction(base, s.at(CoalescerKind::kPac).total_energy);
    dmc_sum += dmc;
    pac_sum += pac;
    t14.add_row({s.name, Table::pct(dmc), Table::pct(pac)});
  }
  const double n = static_cast<double>(all.size());
  t14.add_row({"AVERAGE", Table::pct(dmc_sum / n), Table::pct(pac_sum / n)});
  t14.print(
      "Fig 14 - overall energy saving (paper: DMC 39.57%, PAC 59.21%)");
  return 0;
}
