// Reproduces paper Figure 1: the motivating comparison of the ratio of
// coalesced requests between the conventional MSHR-based DMC and PAC.
//
// Paper reference: PAC coalesces 55.32% of raw requests on average, the
// conventional DMC 35.78%.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  const auto all =
      ctx.run_all({CoalescerKind::kMshrDmc, CoalescerKind::kPac});

  Table t({"suite", "conventional DMC", "PAC"});
  for (const auto& s : all) {
    t.add_row({s.name,
               Table::pct(s.at(CoalescerKind::kMshrDmc).coalescing_efficiency() *
                          100.0),
               Table::pct(s.at(CoalescerKind::kPac).coalescing_efficiency() *
                          100.0)});
  }
  t.add_row({"AVERAGE",
             Table::pct(average(all,
                                [](const SuiteResults& s) {
                                  return s.at(CoalescerKind::kMshrDmc)
                                      .coalescing_efficiency();
                                }) *
                        100.0),
             Table::pct(average(all, [](const SuiteResults& s) {
                          return s.at(CoalescerKind::kPac)
                              .coalescing_efficiency();
                        }) *
                        100.0)});
  t.print("Fig 1 - ratio of coalesced requests (paper: DMC 35.78%, PAC 55.32%)");
  return 0;
}
