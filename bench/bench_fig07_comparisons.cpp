// Reproduces paper Figure 7: reduction in comparator operations performed
// in "the sorting and coalescing procedures" under PAC.
//
// Baseline: the sorting-network DMC (Wang et al., ICPP'18) that the paper
// contrasts PAC with - every window sort fires the full bitonic network's
// comparators regardless of occupancy. PAC compares each raw request only
// against its active coalescing streams (plus MAQ-insertion comparisons).
// This reproduces the paper's inverse correlation: suites with sparse
// footprints under-fill the sorting window, waste comparators, and hence
// show the LARGEST reductions (paper: BFS 62.41%; average 29.84%).
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  const auto all = ctx.run_all({CoalescerKind::kSortingDmc,
                                CoalescerKind::kMshrDmc, CoalescerKind::kPac});

  Table t({"suite", "sorting-DMC cmp/raw", "MSHR-DMC cmp/raw", "PAC cmp/raw",
           "PAC reduction"});
  double sum = 0.0;
  auto per_raw = [](const CoalescerStats& s) {
    return s.raw_requests == 0 ? 0.0
                               : static_cast<double>(s.comparisons) /
                                     static_cast<double>(s.raw_requests);
  };
  for (const auto& s : all) {
    const double sorting = per_raw(s.at(CoalescerKind::kSortingDmc).coal);
    const double mshr = per_raw(s.at(CoalescerKind::kMshrDmc).coal);
    const double pac = per_raw(s.at(CoalescerKind::kPac).coal);
    const double red = percent_reduction(sorting, pac);
    sum += red;
    t.add_row({s.name, Table::num(sorting), Table::num(mshr),
               Table::num(pac), Table::pct(red)});
  }
  t.add_row({"AVERAGE", "", "", "",
             Table::pct(sum / static_cast<double>(all.size()))});
  t.print(
      "Fig 7 - comparator-operation reduction vs the sorting-network DMC "
      "(paper: 29.84% avg, BFS highest at 62.41%)");
  ctx.write_report("bench_fig07_comparisons", all);
  return 0;
}
