// Ablation studies of PAC's design choices (DESIGN.md section 5):
//   - the stage-1 timeout (paper fixes it at 16 cycles),
//   - the number of coalescing streams (paper: 16),
//   - the network-controller bypass optimization (paper section 3.2),
//   - the flush-on-full-chunk extension (ours, not in the paper),
//   - device protocols: HMC 1.0 (128 B), HMC 2.1 (256 B), HBM (1 KB row),
//   - power-of-two-only request sizes vs exact runs.
#include <iterator>

#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

struct Variant {
  std::string name;
  SystemConfig cfg;
};

void run_variants(const EvalContext& ctx, const std::vector<Variant>& variants,
                  const std::string& title, SweepReport* report) {
  const Workload* suites[] = {find_workload("gs"), find_workload("hpcg"),
                              find_workload("sort")};
  std::vector<exp::SweepJob> sweep;
  for (const Variant& v : variants) {
    for (const Workload* suite : suites) {
      std::fprintf(stderr, "[ablation] %s / %s ...\n", v.name.c_str(),
                   std::string(suite->name()).c_str());
      exp::SweepJob job;
      job.suite = suite;
      job.cfg = v.cfg;
      job.cfg.coalescer = CoalescerKind::kPac;
      job.label = v.name + "/" + std::string(suite->name());
      sweep.push_back(std::move(job));
    }
  }
  const exp::SweepRunner runner(ctx.jobs);
  const std::vector<RunResult> results =
      runner.run(sweep, ctx.wcfg, ctx.trace_store());

  Table t({"variant", "suite", "coal.eff", "txn.eff", "cycles",
           "energy (uJ)"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    const Variant& v = variants[i / std::size(suites)];
    t.add_row({v.name, std::string(sweep[i].suite->name()),
               Table::pct(r.coalescing_efficiency() * 100.0),
               Table::pct(r.transaction_eff() * 100.0),
               std::to_string(r.cycles), Table::num(r.total_energy / 1e6)});
    if (report != nullptr) {
      report->add(sweep[i].label, CoalescerKind::kPac, r);
    }
  }
  t.print(title);
}

/// Head-to-head of all four coalescer organizations on three suites.
void coalescer_shootout(const EvalContext& ctx, SweepReport* report) {
  const Workload* suites[] = {find_workload("gs"), find_workload("hpcg"),
                              find_workload("bfs")};
  constexpr CoalescerKind kinds[] = {
      CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
      CoalescerKind::kSortingDmc, CoalescerKind::kPac};
  std::vector<exp::SweepJob> sweep;
  for (const Workload* suite : suites) {
    for (CoalescerKind kind : kinds) {
      std::fprintf(stderr, "[shootout] %s / %s ...\n",
                   std::string(suite->name()).c_str(),
                   std::string(to_string(kind)).c_str());
      exp::SweepJob job;
      job.suite = suite;
      job.cfg = ctx.scfg;
      job.cfg.coalescer = kind;
      job.label = std::string(suite->name()) + "/" +
                  std::string(to_string(kind));
      sweep.push_back(std::move(job));
    }
  }
  const exp::SweepRunner runner(ctx.jobs);
  const std::vector<RunResult> results =
      runner.run(sweep, ctx.wcfg, ctx.trace_store());

  Table t({"suite", "coalescer", "coal.eff", "txn.eff", "cycles",
           "comparisons"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const RunResult& r = results[i];
    const CoalescerKind kind = sweep[i].cfg.coalescer;
    t.add_row({std::string(sweep[i].suite->name()),
               std::string(to_string(kind)),
               Table::pct(r.coalescing_efficiency() * 100.0),
               Table::pct(r.transaction_eff() * 100.0),
               std::to_string(r.cycles),
               std::to_string(r.coal.comparisons)});
    if (report != nullptr) report->add(sweep[i].label, kind, r);
  }
  t.print("Ablation - coalescer organizations head-to-head");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  SweepReport report("bench_ablation");

  coalescer_shootout(ctx, &report);
  {
    std::vector<Variant> v;
    for (std::uint32_t timeout : {4u, 8u, 16u, 32u, 64u}) {
      Variant var{"timeout=" + std::to_string(timeout), ctx.scfg};
      var.cfg.pac.timeout = timeout;
      v.push_back(var);
    }
    run_variants(ctx, v, "Ablation - stage-1 timeout (paper default: 16)",
                 &report);
  }
  {
    std::vector<Variant> v;
    for (std::uint32_t streams : {4u, 8u, 16u, 32u}) {
      Variant var{"streams=" + std::to_string(streams), ctx.scfg};
      var.cfg.pac.num_streams = streams;
      v.push_back(var);
    }
    run_variants(ctx, v, "Ablation - coalescing streams (paper default: 16)",
                 &report);
  }
  {
    std::vector<Variant> v;
    Variant on{"bypass=on", ctx.scfg};
    Variant off{"bypass=off", ctx.scfg};
    off.cfg.pac.enable_bypass_controller = false;
    Variant full{"flush-on-full-chunk", ctx.scfg};
    full.cfg.pac.flush_on_full_chunk = true;
    Variant nosec{"no-secondary-coalescing", ctx.scfg};
    nosec.cfg.pac.enable_secondary_coalescing = false;
    v = {on, off, full, nosec};
    run_variants(ctx, v,
                 "Ablation - controller bypass, flush-on-full-chunk, "
                 "secondary coalescing",
                 &report);
  }
  {
    std::vector<Variant> v;
    Variant hmc1{"protocol=hmc1(128B)", ctx.scfg};
    hmc1.cfg.pac.protocol = CoalescingProtocol::hmc1();
    Variant hmc2{"protocol=hmc2(256B)", ctx.scfg};
    Variant hbm{"protocol=hbm(1KB)", ctx.scfg};
    hbm.cfg.pac.protocol = CoalescingProtocol::hbm();
    hbm.cfg.hmc.map.row_bytes = 1024;  // HBM-style 1 KB rows
    Variant pow2{"hmc2,pow2-only", ctx.scfg};
    pow2.cfg.pac.protocol.pow2_sizes_only = true;
    v = {hmc1, hmc2, hbm, pow2};
    run_variants(ctx, v,
                 "Ablation - device protocols (paper section 4.1)", &report);
  }
  if (!ctx.report_dir.empty()) {
    report.set_trace_store(ctx.trace_store()->stats());
    std::fprintf(stderr, "[bench] wrote %s\n",
                 report.write(ctx.report_dir).c_str());
  }
  return 0;
}
