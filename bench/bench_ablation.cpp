// Ablation studies of PAC's design choices (DESIGN.md section 5):
//   - the stage-1 timeout (paper fixes it at 16 cycles),
//   - the number of coalescing streams (paper: 16),
//   - the network-controller bypass optimization (paper section 3.2),
//   - the flush-on-full-chunk extension (ours, not in the paper),
//   - device protocols: HMC 1.0 (128 B), HMC 2.1 (256 B), HBM (1 KB row),
//   - power-of-two-only request sizes vs exact runs.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

struct Variant {
  std::string name;
  SystemConfig cfg;
};

void run_variants(const EvalContext& ctx, const std::vector<Variant>& variants,
                  const std::string& title) {
  const Workload* suites[] = {find_workload("gs"), find_workload("hpcg"),
                              find_workload("sort")};
  Table t({"variant", "suite", "coal.eff", "txn.eff", "cycles",
           "energy (uJ)"});
  for (const Variant& v : variants) {
    for (const Workload* suite : suites) {
      std::fprintf(stderr, "[ablation] %s / %s ...\n", v.name.c_str(),
                   std::string(suite->name()).c_str());
      const RunResult r =
          run_suite(*suite, CoalescerKind::kPac, ctx.wcfg, v.cfg);
      t.add_row({v.name, std::string(suite->name()),
                 Table::pct(r.coalescing_efficiency() * 100.0),
                 Table::pct(r.transaction_eff() * 100.0),
                 std::to_string(r.cycles), Table::num(r.total_energy / 1e6)});
    }
  }
  t.print(title);
}

}  // namespace

namespace {

/// Head-to-head of all four coalescer organizations on three suites.
void coalescer_shootout(const EvalContext& ctx) {
  const Workload* suites[] = {find_workload("gs"), find_workload("hpcg"),
                              find_workload("bfs")};
  Table t({"suite", "coalescer", "coal.eff", "txn.eff", "cycles",
           "comparisons"});
  for (const Workload* suite : suites) {
    const std::vector<Trace> traces = suite->generate(ctx.wcfg);
    for (CoalescerKind kind :
         {CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
          CoalescerKind::kSortingDmc, CoalescerKind::kPac}) {
      std::fprintf(stderr, "[shootout] %s / %s ...\n",
                   std::string(suite->name()).c_str(),
                   std::string(to_string(kind)).c_str());
      SystemConfig cfg = ctx.scfg;
      cfg.coalescer = kind;
      const RunResult r = simulate(cfg, traces);
      t.add_row({std::string(suite->name()), std::string(to_string(kind)),
                 Table::pct(r.coalescing_efficiency() * 100.0),
                 Table::pct(r.transaction_eff() * 100.0),
                 std::to_string(r.cycles),
                 std::to_string(r.coal.comparisons)});
    }
  }
  t.print("Ablation - coalescer organizations head-to-head");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);

  coalescer_shootout(ctx);
  {
    std::vector<Variant> v;
    for (std::uint32_t timeout : {4u, 8u, 16u, 32u, 64u}) {
      Variant var{"timeout=" + std::to_string(timeout), ctx.scfg};
      var.cfg.pac.timeout = timeout;
      v.push_back(var);
    }
    run_variants(ctx, v, "Ablation - stage-1 timeout (paper default: 16)");
  }
  {
    std::vector<Variant> v;
    for (std::uint32_t streams : {4u, 8u, 16u, 32u}) {
      Variant var{"streams=" + std::to_string(streams), ctx.scfg};
      var.cfg.pac.num_streams = streams;
      v.push_back(var);
    }
    run_variants(ctx, v, "Ablation - coalescing streams (paper default: 16)");
  }
  {
    std::vector<Variant> v;
    Variant on{"bypass=on", ctx.scfg};
    Variant off{"bypass=off", ctx.scfg};
    off.cfg.pac.enable_bypass_controller = false;
    Variant full{"flush-on-full-chunk", ctx.scfg};
    full.cfg.pac.flush_on_full_chunk = true;
    Variant nosec{"no-secondary-coalescing", ctx.scfg};
    nosec.cfg.pac.enable_secondary_coalescing = false;
    v = {on, off, full, nosec};
    run_variants(ctx, v,
                 "Ablation - controller bypass, flush-on-full-chunk, "
                 "secondary coalescing");
  }
  {
    std::vector<Variant> v;
    Variant hmc1{"protocol=hmc1(128B)", ctx.scfg};
    hmc1.cfg.pac.protocol = CoalescingProtocol::hmc1();
    Variant hmc2{"protocol=hmc2(256B)", ctx.scfg};
    Variant hbm{"protocol=hbm(1KB)", ctx.scfg};
    hbm.cfg.pac.protocol = CoalescingProtocol::hbm();
    hbm.cfg.hmc.map.row_bytes = 1024;  // HBM-style 1 KB rows
    Variant pow2{"hmc2,pow2-only", ctx.scfg};
    pow2.cfg.pac.protocol.pow2_sizes_only = true;
    v = {hmc1, hmc2, hbm, pow2};
    run_variants(ctx, v,
                 "Ablation - device protocols (paper section 4.1)");
  }
  return 0;
}
