// Front-end cross-check (not a paper figure): the same memory stack driven
// by RV64 machine code on the interpreter must show the same qualitative
// PAC behaviour as the C++ trace kernels - sequential/gather kernels
// coalesce heavily, random-update kernels do not. This validates that the
// evaluation does not depend on the trace-generation front end.
#include "bench_common.hpp"
#include "riscv/kernels.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);

  WorkloadConfig wcfg = ctx.wcfg;
  wcfg.compute_scale = 1.0;  // the interpreter emits real instruction mixes

  Table t({"kernel", "coalescer", "coal.eff", "txn.eff",
           "bank-conflict red.", "speedup vs none"});
  for (const rv::RiscvProgramWorkload* kernel : rv::rv_workloads()) {
    std::fprintf(stderr, "[rv] %s ...\n",
                 std::string(kernel->name()).c_str());
    const std::vector<Trace> traces = kernel->generate(wcfg);

    SystemConfig base = ctx.scfg;
    base.coalescer = CoalescerKind::kDirect;
    const RunResult none = simulate(base, traces);

    for (CoalescerKind kind :
         {CoalescerKind::kMshrDmc, CoalescerKind::kPac}) {
      SystemConfig cfg = ctx.scfg;
      cfg.coalescer = kind;
      const RunResult r = simulate(cfg, traces);
      t.add_row({std::string(kernel->name()), std::string(to_string(kind)),
                 Table::pct(r.coalescing_efficiency() * 100.0),
                 Table::pct(r.transaction_eff() * 100.0),
                 Table::pct(percent_reduction(
                     static_cast<double>(none.hmc.bank_conflicts),
                     static_cast<double>(r.hmc.bank_conflicts))),
                 Table::pct(percent_improvement(
                     static_cast<double>(none.cycles),
                     static_cast<double>(r.cycles)))});
    }
  }
  t.print(
      "RV64 machine-code front end cross-check: PAC behaviour is "
      "front-end independent");
  return 0;
}
