// Reproduces paper Figure 2: the proportion of raw requests that could have
// been coalesced *across* physical page boundaries - the opportunity a
// cross-page coalescer would add over PAC's paged model.
//
// Paper reference: 0.04% on average, motivating the page-granular design.
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  const auto all = ctx.run_all({CoalescerKind::kPac});

  Table t({"suite", "cross-page adjacent", "raw requests", "proportion"});
  double sum = 0.0;
  for (const auto& s : all) {
    const PacStats& p = s.at(CoalescerKind::kPac).pac;
    const double prop =
        p.base.raw_requests == 0
            ? 0.0
            : static_cast<double>(p.cross_page_adjacent) /
                  static_cast<double>(p.base.raw_requests);
    sum += prop;
    t.add_row({s.name, std::to_string(p.cross_page_adjacent),
               std::to_string(p.base.raw_requests),
               Table::pct(prop * 100.0, 4)});
  }
  t.add_row({"AVERAGE", "", "",
             Table::pct(sum / static_cast<double>(all.size()) * 100.0, 4)});
  t.print("Fig 2 - cross-page coalescing opportunity (paper: 0.04% avg)");
  return 0;
}
