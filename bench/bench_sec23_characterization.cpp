// Reproduces the paper's section 2.3 motivation study ("Memory Request
// Distribution"): for every suite, how much block adjacency exists in the
// raw request stream reaching the coalescer, and how much of it falls
// within physical pages versus across page boundaries.
//
// Paper reference: the in-page share dominates; cross-page opportunity
// averages just 0.04% (Fig. 2), motivating the paged design.
#include "analysis/footprint.hpp"
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);

  Table t({"suite", "raw sampled", "distinct pages", "rq/page",
           "in-page adjacent", "cross-page adjacent", "same-chunk"});
  double in_sum = 0.0, cross_sum = 0.0;
  int count = 0;
  for (const Workload* suite : all_workloads()) {
    if (!ctx.only.empty() && ctx.only != suite->name()) continue;
    std::fprintf(stderr, "[sec2.3] %s ...\n",
                 std::string(suite->name()).c_str());
    SystemConfig cfg = ctx.scfg;
    cfg.coalescer = CoalescerKind::kDirect;  // observe the raw stream
    cfg.record_raw_trace = true;
    cfg.raw_trace_start = 0;
    cfg.raw_trace_limit = 60'000;
    const std::vector<Trace> traces = suite->generate(ctx.wcfg);
    const RunResult r = simulate(cfg, traces);

    const FootprintStats s = analyze_footprint(r.raw_trace, 16);
    in_sum += s.in_page_fraction();
    cross_sum += s.cross_page_fraction();
    ++count;
    t.add_row({std::string(suite->name()), std::to_string(s.requests),
               std::to_string(s.distinct_pages),
               Table::num(s.requests_per_page.mean()),
               Table::pct(s.in_page_fraction() * 100.0),
               Table::pct(s.cross_page_fraction() * 100.0, 4),
               Table::pct(s.requests == 0
                              ? 0.0
                              : 100.0 * static_cast<double>(s.same_chunk) /
                                    static_cast<double>(s.requests))});
  }
  if (count > 0) {
    t.add_row({"AVERAGE", "", "", "",
               Table::pct(in_sum / count * 100.0),
               Table::pct(cross_sum / count * 100.0, 4), ""});
  }
  t.print(
      "Section 2.3 - request adjacency: in-page dominates, cross-page is "
      "negligible (paper Fig. 2: 0.04%)");
  return 0;
}
