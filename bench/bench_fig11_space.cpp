// Reproduces paper Figure 11: (a) space overhead of PAC versus parallel
// bitonic and odd-even merge sorting networks, (b) the coalescing-stream
// occupancy distribution of HPCG, and (c) average stream utilization.
//
// Paper reference: (a) at N = 64 the bitonic sorter needs 672 comparators
// and the odd-even merge sorter 543, versus 64 for PAC; with 16 streams PAC
// needs 384 B of buffer (128 B block-maps + 256 B request buffers).
// (b) 35.33% of samples occupy <= 2 streams, 77.57% fall within 2-4.
// (c) 4.49 streams used on average; BFS highest at 9.99.
#include "baseline/sorting_network.hpp"
#include "bench_common.hpp"

using namespace pacsim;
using namespace pacsim::bench;

namespace {

void fig11a() {
  Table t({"N", "PAC comparators", "bitonic", "odd-even merge",
           "PAC buffer (B)", "bitonic buffer (B)", "odd-even buffer (B)"});
  for (std::uint32_t n = 4; n <= 64; n *= 2) {
    const SortingNetwork bitonic = SortingNetwork::bitonic(n);
    const SortingNetwork oem = SortingNetwork::odd_even_merge(n);
    const PacSpaceModel pac{n};
    t.add_row({std::to_string(n), std::to_string(pac.comparator_count()),
               std::to_string(bitonic.comparator_count()),
               std::to_string(oem.comparator_count()),
               std::to_string(pac.buffer_bytes()),
               std::to_string(bitonic.buffer_bytes()),
               std::to_string(oem.buffer_bytes())});
  }
  t.print(
      "Fig 11a - space overhead vs sorting networks "
      "(paper: 672/543 comparators at N=64 vs 64 for PAC; 384 B PAC buffer "
      "at 16 streams)");
}

void fig11b(const EvalContext& ctx) {
  const Workload* suite = find_workload("hpcg");
  // Through the shared store, fig11c's PAC sweep below reuses this HPCG
  // trace set instead of regenerating it.
  const RunResult r = run_suite(*suite, CoalescerKind::kPac, ctx.wcfg,
                                ctx.scfg, ctx.trace_store());
  const Histogram& occ = r.pac.stream_occupancy;
  Table t({"occupied streams", "samples", "share"});
  for (const auto& [streams, count] : occ.buckets()) {
    t.add_row({std::to_string(streams), std::to_string(count),
               Table::pct(occ.fraction(streams) * 100.0)});
  }
  t.print("Fig 11b - HPCG coalescing-stream occupancy per 16-cycle window");
  std::printf(
      "HPCG: <=2 streams: %.2f%% (paper 35.33%%), 2-4 streams: %.2f%% "
      "(paper 77.57%%)\n",
      occ.fraction_between(1, 2) * 100.0, occ.fraction_between(2, 4) * 100.0);
}

void fig11c(const EvalContext& ctx) {
  const auto all = ctx.run_all({CoalescerKind::kPac});
  Table t({"suite", "avg streams in use"});
  double sum = 0.0;
  for (const auto& s : all) {
    const double mean = s.at(CoalescerKind::kPac).pac.stream_occupancy.mean();
    sum += mean;
    t.add_row({s.name, Table::num(mean)});
  }
  t.add_row({"AVERAGE", Table::num(sum / static_cast<double>(all.size()))});
  t.print(
      "Fig 11c - average coalescing-stream utilization "
      "(paper: 4.49 avg, BFS highest at 9.99)");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const EvalContext ctx(cli);
  fig11a();
  fig11b(ctx);
  fig11c(ctx);
  return 0;
}
