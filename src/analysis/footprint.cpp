#include "analysis/footprint.hpp"

#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace pacsim {

FootprintStats analyze_footprint(const std::vector<Addr>& addresses,
                                 std::size_t window) {
  FootprintStats stats;
  stats.requests = addresses.size();

  std::unordered_map<std::uint64_t, std::uint64_t> per_page;
  std::unordered_set<std::uint64_t> blocks;

  // Sliding multiset of the last `window` block ids.
  std::unordered_map<std::uint64_t, std::uint32_t> recent;
  std::deque<std::uint64_t> order;
  auto in_window = [&](std::uint64_t block) {
    const auto it = recent.find(block);
    return it != recent.end() && it->second > 0;
  };

  for (Addr a : addresses) {
    const std::uint64_t block = a >> kCacheBlockShift;
    const std::uint64_t page = a >> kPageShift;
    ++per_page[page];
    blocks.insert(block);

    const bool left = block > 0 && in_window(block - 1);
    const bool right = in_window(block + 1);
    const bool left_same_page =
        left && ((block - 1) >> (kPageShift - kCacheBlockShift)) == page;
    const bool right_same_page =
        right && ((block + 1) >> (kPageShift - kCacheBlockShift)) == page;
    if (left_same_page || right_same_page) {
      ++stats.in_page_adjacent;
    } else if (left || right) {
      ++stats.cross_page_adjacent;
    }

    // Same 256 B chunk (4 blocks) neighbourhood.
    const std::uint64_t chunk = block >> 2;
    for (std::uint64_t b = chunk << 2; b < (chunk << 2) + 4; ++b) {
      if (b != block && in_window(b)) {
        ++stats.same_chunk;
        break;
      }
    }

    ++recent[block];
    order.push_back(block);
    if (order.size() > window) {
      const std::uint64_t old = order.front();
      order.pop_front();
      if (--recent[old] == 0) recent.erase(old);
    }
  }

  stats.distinct_pages = per_page.size();
  stats.distinct_blocks = blocks.size();
  for (const auto& [page, count] : per_page) {
    stats.requests_per_page.add(static_cast<std::int64_t>(count));
  }
  return stats;
}

}  // namespace pacsim
