// DBSCAN (Ester et al., KDD'96) over 1-D physical addresses.
//
// The paper clusters traced request addresses with epsilon = 4 KB (one
// physical page) to visualize spatial locality (Figs. 8-9). Addresses are
// one-dimensional, so epsilon-neighborhoods are contiguous ranges of the
// sorted point set and the full DBSCAN semantics run in O(n log n).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pacsim {

struct DbscanConfig {
  double epsilon = 4096.0;   ///< neighborhood radius in bytes
  std::size_t min_points = 4;  ///< core-point density threshold
};

struct DbscanCluster {
  std::size_t size = 0;
  Addr min_addr = 0;
  Addr max_addr = 0;
  double centroid = 0.0;
};

struct DbscanResult {
  /// Cluster id per input point (input order); -1 marks noise.
  std::vector<int> labels;
  std::vector<DbscanCluster> clusters;
  std::size_t noise_count = 0;

  [[nodiscard]] std::size_t num_clusters() const { return clusters.size(); }
  [[nodiscard]] double clustered_fraction() const {
    return labels.empty()
               ? 0.0
               : 1.0 - static_cast<double>(noise_count) /
                           static_cast<double>(labels.size());
  }
};

DbscanResult dbscan_addresses(const std::vector<Addr>& points,
                              const DbscanConfig& cfg);

}  // namespace pacsim
