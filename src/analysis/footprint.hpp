// Address-stream characterization: the measurement behind the paper's
// section 2.3 motivation - how much request adjacency exists, and whether
// it lies within physical pages (PAC's target) or across page boundaries
// (which Fig. 2 shows to be negligible).
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace pacsim {

struct FootprintStats {
  std::uint64_t requests = 0;
  std::uint64_t distinct_pages = 0;
  std::uint64_t distinct_blocks = 0;
  /// Requests with a block-adjacent partner in the same page within the
  /// coalescing window (the opportunity a paged coalescer can harvest).
  std::uint64_t in_page_adjacent = 0;
  /// Requests adjacent only across a page boundary within the window (the
  /// additional opportunity a cross-page design would add - paper Fig. 2).
  std::uint64_t cross_page_adjacent = 0;
  /// Requests whose 256 B chunk saw another request within the window.
  std::uint64_t same_chunk = 0;
  Histogram requests_per_page;  ///< footprint density distribution

  [[nodiscard]] double in_page_fraction() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(in_page_adjacent) /
                               static_cast<double>(requests);
  }
  [[nodiscard]] double cross_page_fraction() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(cross_page_adjacent) /
                               static_cast<double>(requests);
  }
};

/// Analyze a block-granular physical address stream. `window` is the number
/// of recent requests a hardware coalescer could hold concurrently (16 in
/// PAC's PRA at one request per cycle and a 16-cycle timeout).
FootprintStats analyze_footprint(const std::vector<Addr>& addresses,
                                 std::size_t window = 16);

}  // namespace pacsim
