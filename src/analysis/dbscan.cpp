#include "analysis/dbscan.hpp"

#include <algorithm>
#include <numeric>

namespace pacsim {

DbscanResult dbscan_addresses(const std::vector<Addr>& points,
                              const DbscanConfig& cfg) {
  DbscanResult result;
  const std::size_t n = points.size();
  result.labels.assign(n, -1);
  if (n == 0) return result;

  // Sort indices by address; epsilon-neighborhoods become index ranges.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return points[a] < points[b];
  });

  // For each sorted position, find its neighborhood [lo, hi) via two
  // pointers (both bounds are monotone in the position).
  std::vector<std::size_t> lo(n), hi(n);
  {
    std::size_t left = 0, right = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = static_cast<double>(points[order[i]]);
      while (static_cast<double>(points[order[left]]) < p - cfg.epsilon) {
        ++left;
      }
      if (right < i) right = i;
      while (right + 1 < n &&
             static_cast<double>(points[order[right + 1]]) <= p + cfg.epsilon) {
        ++right;
      }
      lo[i] = left;
      hi[i] = right + 1;
    }
  }

  auto is_core = [&](std::size_t pos) {
    return hi[pos] - lo[pos] >= cfg.min_points;
  };

  // Expand clusters in sorted order: classic DBSCAN with a worklist.
  std::vector<int> sorted_label(n, -1);
  int next_cluster = 0;
  std::vector<std::size_t> stack;
  for (std::size_t i = 0; i < n; ++i) {
    if (sorted_label[i] != -1 || !is_core(i)) continue;
    const int cluster = next_cluster++;
    stack.assign(1, i);
    sorted_label[i] = cluster;
    while (!stack.empty()) {
      const std::size_t pos = stack.back();
      stack.pop_back();
      if (!is_core(pos)) continue;  // border point: claimed, not expanded
      for (std::size_t nb = lo[pos]; nb < hi[pos]; ++nb) {
        if (sorted_label[nb] == -1) {
          sorted_label[nb] = cluster;
          stack.push_back(nb);
        }
      }
    }
  }

  // Collect cluster summaries and scatter labels back to input order.
  result.clusters.assign(static_cast<std::size_t>(next_cluster), {});
  for (std::size_t i = 0; i < n; ++i) {
    const int label = sorted_label[i];
    const std::size_t original = order[i];
    result.labels[original] = label;
    if (label < 0) {
      ++result.noise_count;
      continue;
    }
    DbscanCluster& c = result.clusters[static_cast<std::size_t>(label)];
    const Addr a = points[original];
    if (c.size == 0) {
      c.min_addr = c.max_addr = a;
    } else {
      c.min_addr = std::min(c.min_addr, a);
      c.max_addr = std::max(c.max_addr, a);
    }
    c.centroid += static_cast<double>(a);
    ++c.size;
  }
  for (DbscanCluster& c : result.clusters) {
    if (c.size > 0) c.centroid /= static_cast<double>(c.size);
  }
  return result;
}

}  // namespace pacsim
