// Lightweight statistics: counters, running means, and histograms.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/serialize.hpp"

namespace pacsim {

/// Running mean / min / max / count accumulator.
class RunningStat {
 public:
  void add(double v) {
    if (count_ == 0) {
      min_ = max_ = v;
    } else {
      min_ = std::min(min_, v);
      max_ = std::max(max_, v);
    }
    sum_ += v;
    ++count_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return count_ ? sum_ / count_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  void reset() { *this = RunningStat{}; }

  /// Fold another accumulator in, as if its samples had been added here.
  /// Note sum-order differs from interleaved adds, so merged means are only
  /// bit-exact when the merge order is itself deterministic (it is: shards
  /// merge in shard-index order).
  void merge(const RunningStat& o) {
    if (o.count_ == 0) return;
    if (count_ == 0) {
      min_ = o.min_;
      max_ = o.max_;
    } else {
      min_ = std::min(min_, o.min_);
      max_ = std::max(max_, o.max_);
    }
    sum_ += o.sum_;
    count_ += o.count_;
  }

  void checkpoint_save(BinWriter& w) const {
    w.u64(count_);
    w.f64(sum_);
    w.f64(min_);
    w.f64(max_);
  }
  void checkpoint_load(BinReader& r) {
    count_ = r.u64();
    sum_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Integer-bucketed histogram (exact buckets, sparse storage).
class Histogram {
 public:
  void add(std::int64_t bucket, std::uint64_t weight = 1) {
    buckets_[bucket] += weight;
    total_ += weight;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t at(std::int64_t bucket) const {
    auto it = buckets_.find(bucket);
    return it == buckets_.end() ? 0 : it->second;
  }
  /// Fraction of weight in the given bucket.
  [[nodiscard]] double fraction(std::int64_t bucket) const {
    return total_ ? static_cast<double>(at(bucket)) / total_ : 0.0;
  }
  /// Fraction of weight in buckets [lo, hi] inclusive.
  [[nodiscard]] double fraction_between(std::int64_t lo, std::int64_t hi) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] const std::map<std::int64_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  void reset() {
    buckets_.clear();
    total_ = 0;
  }

  /// Fold another histogram in (bucket-wise sum).
  void merge(const Histogram& o) {
    for (const auto& [bucket, weight] : o.buckets_) {
      buckets_[bucket] += weight;
    }
    total_ += o.total_;
  }

  void checkpoint_save(BinWriter& w) const {
    w.u64(buckets_.size());
    for (const auto& [bucket, weight] : buckets_) {
      w.i64(bucket);
      w.u64(weight);
    }
    w.u64(total_);
  }
  void checkpoint_load(BinReader& r) {
    buckets_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::int64_t bucket = r.i64();
      buckets_[bucket] = r.u64();
    }
    total_ = r.u64();
  }

 private:
  std::map<std::int64_t, std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Percent change helpers used throughout the evaluation benches.
/// Reduction of `now` relative to `base` in percent (positive = improvement).
double percent_reduction(double base, double now);
/// Speedup of `now` over `base` in percent (positive = faster).
double percent_improvement(double base_time, double now_time);

}  // namespace pacsim
