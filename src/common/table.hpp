// ASCII table printer used by the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pacsim {

/// Builds and prints an aligned ASCII table (one per paper table/figure).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; cells beyond the header count are dropped.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 2);

  /// Render the whole table to a string.
  [[nodiscard]] std::string to_string() const;

  /// Render as CSV (header row + data rows, RFC-4180 quoting).
  [[nodiscard]] std::string to_csv() const;

  /// Print to stdout with a title banner. When a CSV directory has been
  /// configured (set_csv_dir), also writes `<slug-of-title>.csv` there.
  void print(const std::string& title) const;

  /// Configure a directory for CSV artifacts; empty disables (default).
  static void set_csv_dir(std::string dir);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pacsim
