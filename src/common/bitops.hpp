// Bit-manipulation helpers used by the block-map machinery.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace pacsim {

/// One contiguous run of set bits inside a bit pattern.
struct BitRun {
  unsigned offset = 0;  ///< index of the first set bit in the run
  unsigned length = 0;  ///< number of consecutive set bits

  friend bool operator==(const BitRun&, const BitRun&) = default;
};

/// Decompose `bits` (valid within the low `width` bits) into its maximal
/// contiguous runs of set bits, in ascending offset order.
inline std::vector<BitRun> bit_runs(std::uint64_t bits, unsigned width = 64) {
  std::vector<BitRun> runs;
  if (width < 64) bits &= (std::uint64_t{1} << width) - 1;
  while (bits != 0) {
    const unsigned start = static_cast<unsigned>(std::countr_zero(bits));
    const std::uint64_t shifted = bits >> start;
    const unsigned len = static_cast<unsigned>(std::countr_one(shifted));
    runs.push_back({start, len});
    if (start + len >= 64) break;
    bits &= ~(((std::uint64_t{1} << len) - 1) << start);
  }
  return runs;
}

/// Number of set bits.
inline unsigned popcount64(std::uint64_t v) {
  return static_cast<unsigned>(std::popcount(v));
}

/// True when `v` is a power of two (v != 0).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Integer ceil division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
  unsigned s = 0;
  while ((std::uint64_t{1} << s) < v) ++s;
  return s;
}

}  // namespace pacsim
