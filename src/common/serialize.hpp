// Binary snapshot serialization for simulation-state checkpoints.
//
// A deliberately small, deterministic format: little-endian fixed-width
// integers, doubles as their IEEE-754 bit pattern, length-prefixed strings
// and vectors. Every checkpoint_save()/checkpoint_load() pair in the
// simulator speaks this dialect, so a snapshot taken by one build restores
// bit-identically in another build of the same snapshot version.
//
// Readers are strict: running off the end of the buffer, or a section tag
// mismatch, throws SnapshotError rather than silently misaligning the
// stream - a truncated or mismatched snapshot must never half-restore.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace pacsim {

/// Thrown on any malformed, truncated, or incompatible snapshot.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error("snapshot: " + what) {}
};

class BinWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    buf_.append(s);
  }
  /// Section tag: a 4-char marker the reader must match exactly. Cheap
  /// self-description that catches any save/load ordering drift.
  void tag(const char (&name)[5]) { buf_.append(name, 4); }

  [[nodiscard]] const std::string& buffer() const { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  template <typename T>
  void raw_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }
  std::string buf_;
};

class BinReader {
 public:
  explicit BinReader(std::string data) : data_(std::move(data)) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  bool b() { return u8() != 0; }
  std::uint32_t u32() { return raw_le<std::uint32_t>(); }
  std::uint64_t u64() { return raw_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  void tag(const char (&name)[5]) {
    need(4);
    if (data_.compare(pos_, 4, name, 4) != 0) {
      throw SnapshotError("expected section '" + std::string(name, 4) +
                          "', found '" + data_.substr(pos_, 4) + "'" +
                          context());
    }
    section_.assign(name, 4);
    pos_ += 4;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Byte offset of the next read; error messages quote it so a minimized
  /// checkpoint repro points at the exact failing position.
  [[nodiscard]] std::size_t offset() const { return pos_; }
  /// Tag of the most recently entered section ("" before the first tag).
  [[nodiscard]] const std::string& section() const { return section_; }

 private:
  template <typename T>
  T raw_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }
  void need(std::uint64_t n) const {
    // Subtract-form comparison: pos_ + n could wrap for an adversarial
    // string length decoded from the stream itself.
    if (n > data_.size() - pos_) {
      throw SnapshotError("truncated stream: need " + std::to_string(n) +
                          " byte(s), have " +
                          std::to_string(data_.size() - pos_) + context());
    }
  }
  [[nodiscard]] std::string context() const {
    std::string c = " at byte offset " + std::to_string(pos_) + " of " +
                    std::to_string(data_.size());
    c += section_.empty() ? " (before any section tag)"
                          : " in section '" + section_ + "'";
    return c;
  }

  std::string data_;
  std::string section_;
  std::size_t pos_ = 0;
};

/// FNV-1a over arbitrary bytes; the snapshot header fingerprints the loaded
/// traces with this so a restore against different workload data fails fast
/// instead of silently diverging.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t seed = 0xCBF29CE484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace pacsim
