#include "common/stats.hpp"

namespace pacsim {

double Histogram::fraction_between(std::int64_t lo, std::int64_t hi) const {
  if (total_ == 0) return 0.0;
  std::uint64_t acc = 0;
  for (auto it = buckets_.lower_bound(lo);
       it != buckets_.end() && it->first <= hi; ++it) {
    acc += it->second;
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::mean() const {
  if (total_ == 0) return 0.0;
  double acc = 0.0;
  for (const auto& [bucket, weight] : buckets_) {
    acc += static_cast<double>(bucket) * static_cast<double>(weight);
  }
  return acc / static_cast<double>(total_);
}

double percent_reduction(double base, double now) {
  if (base <= 0.0) return 0.0;
  return (base - now) / base * 100.0;
}

double percent_improvement(double base_time, double now_time) {
  if (base_time <= 0.0) return 0.0;
  return (base_time - now_time) / base_time * 100.0;
}

}  // namespace pacsim
