// Deterministic PRNG (xoshiro256**) so every experiment is reproducible.
#pragma once

#include <cstdint>

namespace pacsim {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
/// Used instead of std::mt19937 for speed and cross-platform determinism.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound) {
    return bound ? next() % bound : 0;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Approximately geometric with the given mean (>= 1).
  std::uint64_t geometric(double mean) {
    if (mean <= 1.0) return 1;
    std::uint64_t n = 1;
    const double p = 1.0 / mean;
    while (uniform() > p && n < 64 * static_cast<std::uint64_t>(mean)) ++n;
    return n;
  }

  /// Raw generator state, for checkpoint/restore of mid-stream position.
  struct State {
    std::uint64_t s[4];
  };
  [[nodiscard]] State state() const { return {{s_[0], s_[1], s_[2], s_[3]}}; }
  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace pacsim
