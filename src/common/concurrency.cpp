#include "common/concurrency.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace pacsim {

namespace {
std::atomic<unsigned> g_active_jobs{0};
std::atomic<bool> g_warned{false};
}  // namespace

unsigned hardware_threads() {
  if (const char* env = std::getenv("PACSIM_HW_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 && v < 1u << 16) {
      return static_cast<unsigned>(v);
    }
    std::fprintf(stderr,
                 "[pacsim] ignoring invalid PACSIM_HW_THREADS='%s'\n", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ActiveJobsGuard::ActiveJobsGuard(unsigned jobs) : jobs_(jobs) {
  g_active_jobs.fetch_add(jobs_, std::memory_order_relaxed);
}

ActiveJobsGuard::~ActiveJobsGuard() {
  g_active_jobs.fetch_sub(jobs_, std::memory_order_relaxed);
}

unsigned active_sweep_jobs() {
  return g_active_jobs.load(std::memory_order_relaxed);
}

unsigned clamp_intra_run_threads(unsigned requested) {
  if (requested <= 1) return requested == 0 ? 1 : requested;
  const unsigned jobs = std::max(1u, active_sweep_jobs());
  const unsigned hw = hardware_threads();
  const unsigned budget = std::max(1u, hw / jobs);
  const unsigned effective = std::min(requested, budget);
  if (effective < requested && !g_warned.exchange(true)) {
    std::fprintf(stderr,
                 "[pacsim] threads=%u with %u sweep job(s) would "
                 "oversubscribe %u hardware threads; clamping to "
                 "threads=%u\n",
                 requested, jobs, hw, effective);
  }
  return effective;
}

}  // namespace pacsim
