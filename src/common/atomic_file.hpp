// Crash-safe file writes: write to a temp file in the target directory,
// fsync it, rename over the destination, then fsync the directory. A reader
// never observes a truncated or half-written file, a killed writer leaves at
// most a stray *.tmp, and a completed write survives power loss.
#pragma once

#include <string>

namespace pacsim {

/// Write `content` to `path` atomically and durably (temp file + fsync +
/// rename + directory fsync, same directory so the rename cannot cross
/// filesystems). Throws std::runtime_error on any I/O failure; the temp
/// file is removed on the error paths that can still reach it.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace pacsim
