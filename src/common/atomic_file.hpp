// Crash-safe file writes: write to a temp file in the target directory,
// then rename over the destination. A reader never observes a truncated or
// half-written file, and a killed writer leaves at most a stray *.tmp.
#pragma once

#include <string>

namespace pacsim {

/// Write `content` to `path` atomically (temp file + rename, same
/// directory so the rename cannot cross filesystems). Throws
/// std::runtime_error on any I/O failure; the temp file is removed on the
/// error paths that can still reach it.
void write_file_atomic(const std::string& path, const std::string& content);

}  // namespace pacsim
