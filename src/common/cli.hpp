// Minimal key=value command line parsing for bench/example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pacsim {

/// Parses `key=value` arguments plus bare flags (`--quick` -> quick=1).
class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace pacsim
