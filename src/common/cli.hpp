// Minimal key=value command line parsing for bench/example binaries.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace pacsim {

/// Parses `key=value` arguments plus bare flags (`--quick` -> quick=1).
///
/// Numeric accessors are strict: a value that does not parse completely
/// (e.g. `ops=12x`, `faultrate=0.1.2`) throws std::invalid_argument naming
/// the offending `key=value` - a typoed knob must never silently become 0
/// or a truncated prefix. The destructor warns on stderr about keys that
/// were given but never queried, which catches misspelled knob names.
class Cli {
 public:
  Cli(int argc, char** argv);
  /// Same parsing rules as the argv form, for programmatic construction
  /// (repro files, tests). Every element is one argument.
  explicit Cli(const std::vector<std::string>& args);
  ~Cli();

  /// Loads one argument per line from a knob file ('#' comments and blank
  /// lines ignored, surrounding whitespace trimmed) - the on-disk format of
  /// soak reproducers. Throws std::invalid_argument if the file is
  /// unreadable.
  static Cli from_file(const std::string& path);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;

 private:
  void add_arg(const std::string& raw);

  std::map<std::string, std::string> kv_;
  /// Keys some accessor has looked up; `mutable` because querying is
  /// logically const but still registers the key as known.
  mutable std::set<std::string> queried_;
};

}  // namespace pacsim
