// Bounded FIFO used for hardware queues (MAQ, vault slots, link buffers).
#pragma once

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <utility>

namespace pacsim {

/// A FIFO with a fixed capacity; push fails (returns false) when full.
/// Models hardware queue structures where back-pressure matters.
template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool push(T value) {
    if (full()) return false;
    items_.push_back(std::move(value));
    return true;
  }

  /// Pop the head; aborts when empty. The check stays on in release
  /// builds: an empty-pop here means a protocol bug upstream (a coalescer
  /// double-draining, a vault retiring a phantom slot), and returning a
  /// moved-from T would corrupt the simulation silently.
  T pop() {
    check_nonempty("pop");
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  [[nodiscard]] const T& front() const {
    check_nonempty("front");
    return items_.front();
  }
  [[nodiscard]] T& front() {
    check_nonempty("front");
    return items_.front();
  }

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] bool full() const { return items_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t free_slots() const {
    return capacity_ - items_.size();
  }

  void clear() { items_.clear(); }

  /// Remove every element matching `pred`; returns the number removed.
  /// (Hardware analogue: associative invalidation of queue slots.)
  template <typename Pred>
  std::size_t erase_if(Pred pred) {
    std::size_t removed = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (pred(*it)) {
        it = items_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }
  auto begin() { return items_.begin(); }
  auto end() { return items_.end(); }

 private:
  void check_nonempty(const char* op) const {
    if (items_.empty()) [[unlikely]] {
      std::fprintf(stderr, "FixedQueue::%s on empty queue (capacity %zu)\n",
                   op, capacity_);
      std::abort();
    }
  }

  std::size_t capacity_;
  std::deque<T> items_;
};

}  // namespace pacsim
