#include "common/cli.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

namespace pacsim {
namespace {

[[noreturn]] void bad_value(const char* want, const std::string& key,
                            const std::string& value) {
  throw std::invalid_argument("Cli: expected " + std::string(want) +
                              " for argument '" + key + "=" + value + "'");
}

}  // namespace

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) add_arg(argv[i]);
}

Cli::Cli(const std::vector<std::string>& args) {
  for (const std::string& a : args) add_arg(a);
}

Cli Cli::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("Cli: cannot open knob file '" + path + "'");
  }
  std::vector<std::string> args;
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const auto last = line.find_last_not_of(" \t\r");
    args.push_back(line.substr(first, last - first + 1));
  }
  return Cli(args);
}

void Cli::add_arg(const std::string& raw) {
  const auto start = raw.find_first_not_of('-');
  if (start == std::string::npos) return;
  std::string arg = raw.substr(start);
  const auto eq = arg.find('=');
  if (eq == std::string::npos) {
    kv_.insert_or_assign(std::move(arg), std::string("1"));
  } else {
    kv_.insert_or_assign(arg.substr(0, eq), arg.substr(eq + 1));
  }
}

Cli::~Cli() {
  for (const auto& [key, value] : kv_) {
    if (queried_.count(key) == 0) {
      std::fprintf(stderr,
                   "[pacsim] warning: unknown command-line knob '%s=%s' "
                   "(never queried; possible typo)\n",
                   key.c_str(), value.c_str());
    }
  }
}

bool Cli::has(const std::string& key) const {
  queried_.insert(key);
  return kv_.count(key) != 0;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  queried_.insert(key);
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::uint64_t Cli::get_u64(const std::string& key, std::uint64_t fallback) const {
  queried_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& value = it->second;
  // strtoull accepts a leading '-' (wrapping modulo 2^64); reject it -
  // no knob in this codebase means anything by a negative count.
  if (value.empty() || value.front() == '-' || std::isspace(
          static_cast<unsigned char>(value.front()))) {
    bad_value("an unsigned integer", key, value);
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(value.c_str(), &end, 0);
  if (errno == ERANGE) bad_value("an in-range unsigned integer", key, value);
  if (end == value.c_str() || *end != '\0') {
    bad_value("an unsigned integer", key, value);
  }
  return parsed;
}

double Cli::get_double(const std::string& key, double fallback) const {
  queried_.insert(key);
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& value = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (errno == ERANGE) bad_value("an in-range number", key, value);
  if (end == value.c_str() || *end != '\0') {
    bad_value("a number", key, value);
  }
  return parsed;
}

}  // namespace pacsim
