#include "common/cli.hpp"

#include <cstdlib>

namespace pacsim {

Cli::Cli(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string raw = argv[i];
    const auto start = raw.find_first_not_of('-');
    if (start == std::string::npos) continue;
    std::string arg = raw.substr(start);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      kv_.insert_or_assign(std::move(arg), std::string("1"));
    } else {
      kv_.insert_or_assign(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

std::uint64_t Cli::get_u64(const std::string& key, std::uint64_t fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 0);
}

double Cli::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

}  // namespace pacsim
