// Fundamental types shared across the PAC simulation stack.
#pragma once

#include <cstdint>
#include <string_view>

namespace pacsim {

/// Physical or virtual byte address.
using Addr = std::uint64_t;

/// CPU clock cycle count (2 GHz reference clock unless stated otherwise).
using Cycle = std::uint64_t;

/// Picojoules, the unit of the HMC power model.
using PicoJoule = double;

/// Sentinel cycle for "no scheduled event": components with nothing pending
/// report this from next_event_cycle() so min-folds ignore them.
inline constexpr Cycle kNeverCycle = ~Cycle{0};

inline constexpr unsigned kPageShift = 12;            ///< 4 KB OS pages
inline constexpr Addr kPageSize = Addr{1} << kPageShift;
inline constexpr unsigned kCacheBlockShift = 6;       ///< 64 B cache lines
inline constexpr Addr kCacheBlockSize = Addr{1} << kCacheBlockShift;
inline constexpr unsigned kBlocksPerPage =
    static_cast<unsigned>(kPageSize / kCacheBlockSize);  // 64

/// Memory operation kinds as seen below the LLC.
enum class MemOp : std::uint8_t {
  kLoad = 0,   ///< read miss / prefetch fill
  kStore = 1,  ///< write-back or write miss
  kAtomic = 2, ///< AMO; never coalesced, routed straight to the controller
  kFence = 3,  ///< ordering barrier; flushes the coalescing network
};

/// Physical page number of an address.
constexpr Addr page_number(Addr a) { return a >> kPageShift; }
/// Byte offset within the 4 KB page.
constexpr Addr page_offset(Addr a) { return a & (kPageSize - 1); }
/// 64 B block index within the page (bits 6..11), as in paper Fig. 5(a).
constexpr unsigned block_in_page(Addr a) {
  return static_cast<unsigned>(page_offset(a) >> kCacheBlockShift);
}
/// Address rounded down to its cache-block base.
constexpr Addr block_base(Addr a) { return a & ~(kCacheBlockSize - 1); }

constexpr std::string_view to_string(MemOp op) {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kAtomic: return "atomic";
    case MemOp::kFence: return "fence";
  }
  return "?";
}

}  // namespace pacsim
