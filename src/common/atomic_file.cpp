#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace pacsim {

namespace {

// fsync an already-open descriptor, retrying on EINTR.
bool fsync_fd(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc == 0;
}

}  // namespace

void write_file_atomic(const std::string& path, const std::string& content) {
  // Unique per process and per call: concurrent writers to the same target
  // (e.g. parallel sweep jobs dumping forensics) must not share a temp file.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for writing: " + tmp);
    out << content;
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + tmp);
    }
  }
  // Flush file data to stable storage before the rename makes it visible:
  // otherwise a power loss can leave the *renamed* file empty or truncated,
  // which for checkpoint snapshots is worse than having no file at all.
  {
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0 || !fsync_fd(fd)) {
      if (fd >= 0) ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error("cannot fsync " + tmp);
    }
    ::close(fd);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " -> " + path + ": " +
                             ec.message());
  }
  // Persist the rename itself: the directory entry lives in the directory's
  // data blocks, so the containing directory must be fsynced too. A failure
  // here is reported (the caller may rely on durability) but the rename has
  // already happened, so there is no temp file left to clean up.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    throw std::runtime_error("cannot open directory for fsync: " +
                             (dir.empty() ? std::string(".") : dir));
  }
  const bool dir_ok = fsync_fd(dfd);
  ::close(dfd);
  if (!dir_ok) {
    throw std::runtime_error("cannot fsync directory: " +
                             (dir.empty() ? std::string(".") : dir));
  }
}

}  // namespace pacsim
