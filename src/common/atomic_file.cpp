#include "common/atomic_file.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace pacsim {

void write_file_atomic(const std::string& path, const std::string& content) {
  // Unique per process and per call: concurrent writers to the same target
  // (e.g. parallel sweep jobs dumping forensics) must not share a temp file.
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." +
                          std::to_string(static_cast<long>(::getpid())) + "." +
                          std::to_string(counter.fetch_add(1));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for writing: " + tmp);
    out << content;
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " -> " + path + ": " +
                             ec.message());
  }
}

}  // namespace pacsim
