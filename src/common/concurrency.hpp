// Process-wide parallelism accounting.
//
// Two layers can each spawn threads: the sweep harness (`jobs=N` parallel
// simulate() calls) and the sharded run loop inside one simulation
// (`threads=M` workers). Composed naively that is N*M runnable threads;
// on a machine with fewer hardware threads the result is silent context-
// switch thrash that can easily be slower than serial. This header gives
// both layers one place to coordinate: the sweep layer registers how many
// jobs are in flight, and the intra-run layer clamps its worker count so
// the product stays within hardware concurrency (with a one-line warning
// the first time a clamp actually bites).
#pragma once

namespace pacsim {

/// Hardware concurrency, never less than 1 (hardware_concurrency may
/// legally return 0). The PACSIM_HW_THREADS environment variable, when set
/// to a positive integer, overrides the detected value — for containers
/// whose visible CPU count misrepresents the actual budget, and for tests
/// that must drive the threaded epoch-scheduler path on single-CPU hosts
/// (thread-sanitizer coverage is only meaningful when threads really run).
unsigned hardware_threads();

/// RAII registration of `jobs` concurrently-running sweep jobs. The sweep
/// runner holds one of these for the duration of a sweep; nesting adds.
class ActiveJobsGuard {
 public:
  explicit ActiveJobsGuard(unsigned jobs);
  ~ActiveJobsGuard();
  ActiveJobsGuard(const ActiveJobsGuard&) = delete;
  ActiveJobsGuard& operator=(const ActiveJobsGuard&) = delete;

 private:
  unsigned jobs_;
};

/// Sweep jobs currently registered as running (0 when no sweep is active).
unsigned active_sweep_jobs();

/// Clamp an intra-run `threads=` request so that
/// `active_sweep_jobs() * threads <= hardware_threads()`. Returns the
/// effective worker count (at least 1). The first time a request is
/// actually reduced, a one-line warning goes to stderr; after that the
/// clamp is silent (a wide sweep would otherwise print it per job).
unsigned clamp_intra_run_threads(unsigned requested);

}  // namespace pacsim
