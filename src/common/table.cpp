#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <cstdarg>

namespace pacsim {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };

  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + emit_row(headers_) + sep;
  for (const auto& row : rows_) out += emit_row(row);
  out += sep;
  return out;
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    return out + "\"";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) line += ',';
      line += quote(c < row.size() ? row[c] : std::string{});
    }
    return line + "\n";
  };
  std::string out = emit(headers_);
  for (const auto& row : rows_) out += emit(row);
  return out;
}

namespace {
std::string& csv_dir() {
  static std::string dir;
  return dir;
}
}  // namespace

void Table::set_csv_dir(std::string dir) { csv_dir() = std::move(dir); }

void Table::print(const std::string& title) const {
  std::printf("\n== %s ==\n%s", title.c_str(), to_string().c_str());
  std::fflush(stdout);
  if (csv_dir().empty()) return;
  std::string slug;
  for (char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!slug.empty() && slug.back() != '-') {
      slug += '-';
    }
    if (slug.size() >= 60) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  const std::string path = csv_dir() + "/" + slug + ".csv";
  if (std::FILE* f = std::fopen(path.c_str(), "w")) {
    const std::string csv = to_csv();
    std::fwrite(csv.data(), 1, csv.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
  }
}

}  // namespace pacsim
