// Adapter: run an assembled RV64 program on every core to produce the
// per-core traces the System consumes - the closest equivalent of the
// paper's Spike-based trace collection.
//
// Convention for kernels: on entry a0 = core id, a1 = core count,
// sp = a per-core stack top; the program partitions its own data by core id
// and exits with `ecall`. If the per-core op budget fills first, the trace
// simply ends there (exactly like the C++ workloads).
#pragma once

#include <string>

#include "riscv/assembler.hpp"
#include "riscv/interpreter.hpp"
#include "workloads/workload.hpp"

namespace pacsim::rv {

class RiscvProgramWorkload final : public Workload {
 public:
  RiscvProgramWorkload(std::string name, std::string description,
                       std::string source, Addr load_base = 0x1000,
                       std::uint64_t max_steps = 50'000'000)
      : name_(std::move(name)),
        description_(std::move(description)),
        source_(std::move(source)),
        load_base_(load_base),
        max_steps_(max_steps) {}

  [[nodiscard]] std::string_view name() const override { return name_; }
  [[nodiscard]] std::string_view description() const override {
    return description_;
  }

  [[nodiscard]] std::vector<Trace> generate(
      const WorkloadConfig& cfg) const override;

  /// The halt condition of the most recent per-core run (diagnostics).
  [[nodiscard]] Halt last_halt() const { return last_halt_; }

 private:
  std::string name_;
  std::string description_;
  std::string source_;
  Addr load_base_;
  std::uint64_t max_steps_;
  mutable Halt last_halt_ = Halt::kRunning;
};

}  // namespace pacsim::rv
