#include "riscv/assembler.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <cctype>
#include <sstream>

#include "riscv/interpreter.hpp"

namespace pacsim::rv {
namespace {

// ---------------------------------------------------------------- lexing --

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Split an operand list on commas (whitespace-insensitive).
std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = strip(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// ------------------------------------------------------------- encodings --

std::uint32_t r_type(std::uint32_t f7, unsigned rs2, unsigned rs1,
                     std::uint32_t f3, unsigned rd, std::uint32_t opcode) {
  return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) |
         opcode;
}

std::uint32_t i_type(std::int64_t imm, unsigned rs1, std::uint32_t f3,
                     unsigned rd, std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm & 0xFFF) << 20) | (rs1 << 15) |
         (f3 << 12) | (rd << 7) | opcode;
}

std::uint32_t s_type(std::int64_t imm, unsigned rs2, unsigned rs1,
                     std::uint32_t f3) {
  const std::uint32_t v = static_cast<std::uint32_t>(imm & 0xFFF);
  return ((v >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) |
         ((v & 0x1F) << 7) | 0x23;
}

std::uint32_t b_type(std::int64_t imm, unsigned rs2, unsigned rs1,
                     std::uint32_t f3) {
  const std::uint32_t v = static_cast<std::uint32_t>(imm & 0x1FFF);
  return (((v >> 12) & 1) << 31) | (((v >> 5) & 0x3F) << 25) | (rs2 << 20) |
         (rs1 << 15) | (f3 << 12) | (((v >> 1) & 0xF) << 8) |
         (((v >> 11) & 1) << 7) | 0x63;
}

std::uint32_t u_type(std::int64_t imm20, unsigned rd, std::uint32_t opcode) {
  return (static_cast<std::uint32_t>(imm20 & 0xFFFFF) << 12) | (rd << 7) |
         opcode;
}

std::uint32_t j_type(std::int64_t imm, unsigned rd) {
  const std::uint32_t v = static_cast<std::uint32_t>(imm & 0x1FFFFF);
  return (((v >> 20) & 1) << 31) | (((v >> 1) & 0x3FF) << 21) |
         (((v >> 11) & 1) << 20) | (((v >> 12) & 0xFF) << 12) | (rd << 7) |
         0x6F;
}

struct OpDesc {
  enum Kind {
    kR, kRW,      // register-register (64 / 32-bit form)
    kI, kIW,      // immediate arithmetic
    kShift, kShiftW,
    kLoad, kStore,
    kBranch, kLui, kAuipc, kJal, kJalr,
    kAmo, kFence, kEcall, kEbreak,
  } kind;
  std::uint32_t opcode = 0;
  std::uint32_t f3 = 0;
  std::uint32_t f7 = 0;
};

const std::unordered_map<std::string, OpDesc>& op_table() {
  static const std::unordered_map<std::string, OpDesc> table = {
      // RV64I register-register
      {"add", {OpDesc::kR, 0x33, 0, 0x00}},
      {"sub", {OpDesc::kR, 0x33, 0, 0x20}},
      {"sll", {OpDesc::kR, 0x33, 1, 0x00}},
      {"slt", {OpDesc::kR, 0x33, 2, 0x00}},
      {"sltu", {OpDesc::kR, 0x33, 3, 0x00}},
      {"xor", {OpDesc::kR, 0x33, 4, 0x00}},
      {"srl", {OpDesc::kR, 0x33, 5, 0x00}},
      {"sra", {OpDesc::kR, 0x33, 5, 0x20}},
      {"or", {OpDesc::kR, 0x33, 6, 0x00}},
      {"and", {OpDesc::kR, 0x33, 7, 0x00}},
      {"addw", {OpDesc::kR, 0x3B, 0, 0x00}},
      {"subw", {OpDesc::kR, 0x3B, 0, 0x20}},
      {"sllw", {OpDesc::kR, 0x3B, 1, 0x00}},
      {"srlw", {OpDesc::kR, 0x3B, 5, 0x00}},
      {"sraw", {OpDesc::kR, 0x3B, 5, 0x20}},
      // RV64M
      {"mul", {OpDesc::kR, 0x33, 0, 0x01}},
      {"mulh", {OpDesc::kR, 0x33, 1, 0x01}},
      {"mulhsu", {OpDesc::kR, 0x33, 2, 0x01}},
      {"mulhu", {OpDesc::kR, 0x33, 3, 0x01}},
      {"div", {OpDesc::kR, 0x33, 4, 0x01}},
      {"divu", {OpDesc::kR, 0x33, 5, 0x01}},
      {"rem", {OpDesc::kR, 0x33, 6, 0x01}},
      {"remu", {OpDesc::kR, 0x33, 7, 0x01}},
      {"mulw", {OpDesc::kR, 0x3B, 0, 0x01}},
      {"divw", {OpDesc::kR, 0x3B, 4, 0x01}},
      {"divuw", {OpDesc::kR, 0x3B, 5, 0x01}},
      {"remw", {OpDesc::kR, 0x3B, 6, 0x01}},
      {"remuw", {OpDesc::kR, 0x3B, 7, 0x01}},
      // OP-IMM
      {"addi", {OpDesc::kI, 0x13, 0}},
      {"slti", {OpDesc::kI, 0x13, 2}},
      {"sltiu", {OpDesc::kI, 0x13, 3}},
      {"xori", {OpDesc::kI, 0x13, 4}},
      {"ori", {OpDesc::kI, 0x13, 6}},
      {"andi", {OpDesc::kI, 0x13, 7}},
      {"addiw", {OpDesc::kIW, 0x1B, 0}},
      {"slli", {OpDesc::kShift, 0x13, 1, 0x00}},
      {"srli", {OpDesc::kShift, 0x13, 5, 0x00}},
      {"srai", {OpDesc::kShift, 0x13, 5, 0x10}},
      {"slliw", {OpDesc::kShiftW, 0x1B, 1, 0x00}},
      {"srliw", {OpDesc::kShiftW, 0x1B, 5, 0x00}},
      {"sraiw", {OpDesc::kShiftW, 0x1B, 5, 0x20}},
      // loads / stores
      {"lb", {OpDesc::kLoad, 0x03, 0}},
      {"lh", {OpDesc::kLoad, 0x03, 1}},
      {"lw", {OpDesc::kLoad, 0x03, 2}},
      {"ld", {OpDesc::kLoad, 0x03, 3}},
      {"lbu", {OpDesc::kLoad, 0x03, 4}},
      {"lhu", {OpDesc::kLoad, 0x03, 5}},
      {"lwu", {OpDesc::kLoad, 0x03, 6}},
      {"sb", {OpDesc::kStore, 0x23, 0}},
      {"sh", {OpDesc::kStore, 0x23, 1}},
      {"sw", {OpDesc::kStore, 0x23, 2}},
      {"sd", {OpDesc::kStore, 0x23, 3}},
      // control
      {"beq", {OpDesc::kBranch, 0x63, 0}},
      {"bne", {OpDesc::kBranch, 0x63, 1}},
      {"blt", {OpDesc::kBranch, 0x63, 4}},
      {"bge", {OpDesc::kBranch, 0x63, 5}},
      {"bltu", {OpDesc::kBranch, 0x63, 6}},
      {"bgeu", {OpDesc::kBranch, 0x63, 7}},
      {"lui", {OpDesc::kLui, 0x37}},
      {"auipc", {OpDesc::kAuipc, 0x17}},
      {"jal", {OpDesc::kJal, 0x6F}},
      {"jalr", {OpDesc::kJalr, 0x67, 0}},
      // AMO (f7 holds funct5 << 2)
      {"amoswap.w", {OpDesc::kAmo, 0x2F, 2, 0x01 << 2}},
      {"amoswap.d", {OpDesc::kAmo, 0x2F, 3, 0x01 << 2}},
      {"amoadd.w", {OpDesc::kAmo, 0x2F, 2, 0x00 << 2}},
      {"amoadd.d", {OpDesc::kAmo, 0x2F, 3, 0x00 << 2}},
      {"amoxor.w", {OpDesc::kAmo, 0x2F, 2, 0x04 << 2}},
      {"amoxor.d", {OpDesc::kAmo, 0x2F, 3, 0x04 << 2}},
      {"amoand.d", {OpDesc::kAmo, 0x2F, 3, 0x0C << 2}},
      {"amoor.d", {OpDesc::kAmo, 0x2F, 3, 0x08 << 2}},
      // system
      {"fence", {OpDesc::kFence, 0x0F}},
      {"ecall", {OpDesc::kEcall, 0x73}},
      {"ebreak", {OpDesc::kEbreak, 0x73}},
  };
  return table;
}

// -------------------------------------------------------------- assembler --

struct Line {
  std::size_t number = 0;
  std::string mnemonic;
  std::vector<std::string> operands;
  Addr addr = 0;
};

class Assembler {
 public:
  Program run(const std::string& source, Addr base) {
    program_.base = base;
    first_pass(source, base);
    for (const Line& line : lines_) encode(line);
    return std::move(program_);
  }

 private:
  [[noreturn]] static void fail(const Line& line, const std::string& msg) {
    throw AsmError(line.number, msg + " ('" + line.mnemonic + "')");
  }

  unsigned parse_reg(const Line& line, const std::string& name) const {
    const int r = reg_index(name);
    if (r < 0) fail(line, "bad register '" + name + "'");
    return static_cast<unsigned>(r);
  }

  std::int64_t parse_imm(const Line& line, const std::string& text) const {
    // Either a number (dec/hex, optionally negative) or a label.
    if (!text.empty() &&
        (std::isdigit(static_cast<unsigned char>(text[0])) ||
         text[0] == '-' || text[0] == '+')) {
      try {
        return static_cast<std::int64_t>(std::stoll(text, nullptr, 0));
      } catch (const std::exception&) {
        fail(line, "bad immediate '" + text + "'");
      }
    }
    const auto it = program_.labels.find(text);
    if (it == program_.labels.end()) fail(line, "unknown label '" + text + "'");
    return static_cast<std::int64_t>(it->second);
  }

  /// Parse "imm(reg)".
  std::pair<std::int64_t, unsigned> parse_mem(const Line& line,
                                              const std::string& text) const {
    const auto open = text.find('(');
    const auto close = text.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
      fail(line, "expected imm(reg), got '" + text + "'");
    }
    const std::string imm_text = strip(text.substr(0, open));
    const std::int64_t imm =
        imm_text.empty() ? 0 : parse_imm(line, imm_text);
    const unsigned reg =
        parse_reg(line, strip(text.substr(open + 1, close - open - 1)));
    return {imm, reg};
  }

  void emit32(std::uint32_t word) {
    for (int i = 0; i < 4; ++i) {
      program_.bytes.push_back(static_cast<std::uint8_t>(word >> (8 * i)));
    }
  }

  /// First pass: strip comments, expand pseudo-instructions into their
  /// concrete forms (so addresses are exact), record label addresses.
  void first_pass(const std::string& source, Addr base) {
    std::istringstream in(source);
    std::string raw;
    std::size_t number = 0;
    Addr cursor = base;
    while (std::getline(in, raw)) {
      ++number;
      const auto hash = raw.find('#');
      if (hash != std::string::npos) raw.erase(hash);
      std::string text = strip(raw);
      while (!text.empty()) {
        const auto colon = text.find(':');
        // Leading label(s).
        if (colon != std::string::npos &&
            text.find_first_of(" \t") > colon) {
          const std::string label = strip(text.substr(0, colon));
          if (label.empty()) throw AsmError(number, "empty label");
          program_.labels[label] = cursor;
          text = strip(text.substr(colon + 1));
          continue;
        }
        break;
      }
      if (text.empty()) continue;

      Line line;
      line.number = number;
      const auto space = text.find_first_of(" \t");
      line.mnemonic = text.substr(0, space);
      std::transform(line.mnemonic.begin(), line.mnemonic.end(),
                     line.mnemonic.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (space != std::string::npos) {
        line.operands = split_operands(strip(text.substr(space)));
      }
      line.addr = cursor;

      cursor += size_of(line);
      lines_.push_back(std::move(line));
    }
  }

  /// Bytes the (possibly pseudo) line expands to.
  Addr size_of(const Line& line) {
    const std::string& m = line.mnemonic;
    if (m == ".dword") return 8 * line.operands.size();
    if (m == ".word") return 4 * line.operands.size();
    if (m == ".space") {
      return static_cast<Addr>(std::stoll(line.operands.at(0), nullptr, 0));
    }
    if (m == ".align") return 0;  // handled as padding during pass 1? no-op
    if (m == "li") return 8;      // worst case lui+addiw (fixed for layout)
    if (m == "call") return 4;
    return 4;  // every real instruction and 1-instruction pseudo
  }

  void encode(const Line& line) {
    const std::string& m = line.mnemonic;
    const auto& ops = line.operands;
    auto need = [&](std::size_t n) {
      if (ops.size() != n) fail(line, "expected " + std::to_string(n) +
                                          " operands");
    };

    // Directives.
    if (m == ".dword") {
      for (const auto& op : ops) {
        const std::uint64_t v =
            static_cast<std::uint64_t>(parse_imm(line, op));
        emit32(static_cast<std::uint32_t>(v));
        emit32(static_cast<std::uint32_t>(v >> 32));
      }
      return;
    }
    if (m == ".word") {
      for (const auto& op : ops) {
        emit32(static_cast<std::uint32_t>(parse_imm(line, op)));
      }
      return;
    }
    if (m == ".space") {
      const auto n = static_cast<std::size_t>(parse_imm(line, ops.at(0)));
      program_.bytes.insert(program_.bytes.end(), n, 0);
      return;
    }
    if (m == ".align") return;

    // Pseudo-instructions.
    if (m == "nop") {
      emit32(i_type(0, 0, 0, 0, 0x13));
      return;
    }
    if (m == "mv") {
      need(2);
      emit32(i_type(0, parse_reg(line, ops[1]), 0, parse_reg(line, ops[0]),
                    0x13));
      return;
    }
    if (m == "not") {
      need(2);
      emit32(i_type(-1, parse_reg(line, ops[1]), 4, parse_reg(line, ops[0]),
                    0x13));
      return;
    }
    if (m == "neg") {
      need(2);
      emit32(r_type(0x20, parse_reg(line, ops[1]), 0, 0,
                    parse_reg(line, ops[0]), 0x33));
      return;
    }
    if (m == "li") {
      need(2);
      const unsigned rd = parse_reg(line, ops[0]);
      const std::int64_t v = parse_imm(line, ops[1]);
      if (v < std::numeric_limits<std::int32_t>::min() ||
          v > std::numeric_limits<std::int32_t>::max()) {
        fail(line, "li immediate out of 32-bit range (use shifts)");
      }
      // Fixed two-instruction expansion keeps pass-1 layout exact.
      const std::int64_t hi = (v + 0x800) >> 12;
      const std::int64_t lo = v - (hi << 12);
      emit32(u_type(hi, rd, 0x37));               // lui rd, hi
      emit32(i_type(lo, rd, 0, rd, 0x1B));        // addiw rd, rd, lo
      return;
    }
    if (m == "j") {
      need(1);
      emit32(j_type(parse_imm(line, ops[0]) -
                        static_cast<std::int64_t>(line.addr),
                    0));
      return;
    }
    if (m == "call") {
      need(1);
      emit32(j_type(parse_imm(line, ops[0]) -
                        static_cast<std::int64_t>(line.addr),
                    1));
      return;
    }
    if (m == "ret") {
      emit32(i_type(0, 1, 0, 0, 0x67));
      return;
    }
    if (m == "beqz" || m == "bnez") {
      need(2);
      const std::int64_t off =
          parse_imm(line, ops[1]) - static_cast<std::int64_t>(line.addr);
      emit32(b_type(off, 0, parse_reg(line, ops[0]), m == "beqz" ? 0 : 1));
      return;
    }
    if (m == "bgt" || m == "ble") {
      need(3);
      // Swap operands: bgt a,b,L == blt b,a,L.
      const std::int64_t off =
          parse_imm(line, ops[2]) - static_cast<std::int64_t>(line.addr);
      emit32(b_type(off, parse_reg(line, ops[0]), parse_reg(line, ops[1]),
                    m == "bgt" ? 4 : 5));
      return;
    }

    const auto it = op_table().find(m);
    if (it == op_table().end()) fail(line, "unknown mnemonic");
    const OpDesc& d = it->second;

    switch (d.kind) {
      case OpDesc::kR:
      case OpDesc::kRW: {
        need(3);
        emit32(r_type(d.f7, parse_reg(line, ops[2]), parse_reg(line, ops[1]),
                      d.f3, parse_reg(line, ops[0]), d.opcode));
        break;
      }
      case OpDesc::kI:
      case OpDesc::kIW: {
        need(3);
        const std::int64_t imm = parse_imm(line, ops[2]);
        if (imm < -2048 || imm > 2047) fail(line, "immediate out of range");
        emit32(i_type(imm, parse_reg(line, ops[1]), d.f3,
                      parse_reg(line, ops[0]), d.opcode));
        break;
      }
      case OpDesc::kShift:
      case OpDesc::kShiftW: {
        need(3);
        const std::int64_t shamt = parse_imm(line, ops[2]);
        const bool wide = d.kind == OpDesc::kShift;
        const std::int64_t limit = wide ? 63 : 31;
        if (shamt < 0 || shamt > limit) fail(line, "shift amount out of range");
        // RV64 shifts use a 6-bit shamt (top field imm[11:6]); the W forms
        // keep the 5-bit shamt with a 7-bit top field imm[11:5].
        const std::int64_t top = static_cast<std::int64_t>(d.f7)
                                 << (wide ? 6 : 5);
        emit32(i_type(shamt | top, parse_reg(line, ops[1]), d.f3,
                      parse_reg(line, ops[0]), d.opcode));
        break;
      }
      case OpDesc::kLoad: {
        need(2);
        const auto [imm, rs1] = parse_mem(line, ops[1]);
        if (imm < -2048 || imm > 2047) fail(line, "offset out of range");
        emit32(i_type(imm, rs1, d.f3, parse_reg(line, ops[0]), d.opcode));
        break;
      }
      case OpDesc::kStore: {
        need(2);
        const auto [imm, rs1] = parse_mem(line, ops[1]);
        if (imm < -2048 || imm > 2047) fail(line, "offset out of range");
        emit32(s_type(imm, parse_reg(line, ops[0]), rs1, d.f3));
        break;
      }
      case OpDesc::kBranch: {
        need(3);
        const std::int64_t off =
            parse_imm(line, ops[2]) - static_cast<std::int64_t>(line.addr);
        if (off < -4096 || off > 4095) fail(line, "branch out of range");
        emit32(b_type(off, parse_reg(line, ops[1]), parse_reg(line, ops[0]),
                      d.f3));
        break;
      }
      case OpDesc::kLui:
      case OpDesc::kAuipc: {
        need(2);
        emit32(u_type(parse_imm(line, ops[1]), parse_reg(line, ops[0]),
                      d.opcode));
        break;
      }
      case OpDesc::kJal: {
        need(2);
        const std::int64_t off =
            parse_imm(line, ops[1]) - static_cast<std::int64_t>(line.addr);
        emit32(j_type(off, parse_reg(line, ops[0])));
        break;
      }
      case OpDesc::kJalr: {
        need(2);
        const auto [imm, rs1] = parse_mem(line, ops[1]);
        emit32(i_type(imm, rs1, 0, parse_reg(line, ops[0]), 0x67));
        break;
      }
      case OpDesc::kAmo: {
        need(3);
        const auto [imm, rs1] = parse_mem(line, ops[2]);
        if (imm != 0) fail(line, "AMO address must be (reg) with no offset");
        emit32(r_type(d.f7, parse_reg(line, ops[1]), rs1, d.f3,
                      parse_reg(line, ops[0]), d.opcode));
        break;
      }
      case OpDesc::kFence:
        emit32(0x0000000F);
        break;
      case OpDesc::kEcall:
        emit32(0x00000073);
        break;
      case OpDesc::kEbreak:
        emit32(0x00100073);
        break;
    }
  }

  Program program_;
  std::vector<Line> lines_;
};

}  // namespace

Program assemble(const std::string& source, Addr base) {
  Assembler assembler;
  return assembler.run(source, base);
}

}  // namespace pacsim::rv
