#include "riscv/interpreter.hpp"

#include <limits>

namespace pacsim::rv {
namespace {

std::int64_t sext(std::uint64_t value, unsigned bits) {
  const unsigned shift = 64 - bits;
  return static_cast<std::int64_t>(value << shift) >> shift;
}

std::uint32_t bits(std::uint32_t inst, unsigned hi, unsigned lo) {
  return (inst >> lo) & ((1u << (hi - lo + 1)) - 1);
}

std::int64_t imm_i(std::uint32_t inst) { return sext(inst >> 20, 12); }
std::int64_t imm_s(std::uint32_t inst) {
  return sext((bits(inst, 31, 25) << 5) | bits(inst, 11, 7), 12);
}
std::int64_t imm_b(std::uint32_t inst) {
  const std::uint32_t v = (bits(inst, 31, 31) << 12) |
                          (bits(inst, 7, 7) << 11) |
                          (bits(inst, 30, 25) << 5) | (bits(inst, 11, 8) << 1);
  return sext(v, 13);
}
std::int64_t imm_u(std::uint32_t inst) {
  return sext(inst & 0xFFFFF000u, 32);
}
std::int64_t imm_j(std::uint32_t inst) {
  const std::uint32_t v = (bits(inst, 31, 31) << 20) |
                          (bits(inst, 19, 12) << 12) |
                          (bits(inst, 20, 20) << 11) |
                          (bits(inst, 30, 21) << 1);
  return sext(v, 21);
}

std::int64_t as_s(std::uint64_t v) { return static_cast<std::int64_t>(v); }
std::uint64_t sext32(std::uint64_t v) {
  return static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

std::uint64_t mulh_signed(std::int64_t a, std::int64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<__int128>(a) * static_cast<__int128>(b)) >> 64);
}
std::uint64_t mulh_unsigned(std::uint64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<unsigned __int128>(a) * b) >> 64);
}
std::uint64_t mulh_su(std::int64_t a, std::uint64_t b) {
  return static_cast<std::uint64_t>(
      (static_cast<__int128>(a) * static_cast<unsigned __int128>(b)) >> 64);
}

std::uint64_t div_signed(std::int64_t a, std::int64_t b) {
  if (b == 0) return ~std::uint64_t{0};
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
    return static_cast<std::uint64_t>(a);
  }
  return static_cast<std::uint64_t>(a / b);
}
std::uint64_t rem_signed(std::int64_t a, std::int64_t b) {
  if (b == 0) return static_cast<std::uint64_t>(a);
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) return 0;
  return static_cast<std::uint64_t>(a % b);
}

}  // namespace

int reg_index(const std::string& name) {
  static const char* kAbi[32] = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  for (int i = 0; i < 32; ++i) {
    if (name == kAbi[i]) return i;
  }
  if (name == "fp") return 8;
  if (name.size() >= 2 && name[0] == 'x') {
    int idx = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return -1;
      idx = idx * 10 + (name[i] - '0');
    }
    return idx < 32 ? idx : -1;
  }
  return -1;
}

std::uint64_t Interpreter::mem_load(Addr addr, unsigned bytes,
                                    bool sign_extend) {
  ++stats_.loads;
  if (rec_ != nullptr) rec_->load(addr, bytes);
  const std::uint64_t raw = mem_->load(addr, bytes);
  return sign_extend ? static_cast<std::uint64_t>(sext(raw, bytes * 8)) : raw;
}

void Interpreter::mem_store(Addr addr, std::uint64_t value, unsigned bytes) {
  ++stats_.stores;
  if (rec_ != nullptr) rec_->store(addr, bytes);
  mem_->store(addr, value, bytes);
}

Halt Interpreter::run(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    const Halt h = step();
    if (h != Halt::kRunning) return h;
  }
  return Halt::kMaxSteps;
}

Halt Interpreter::step() {
  const std::uint32_t inst =
      static_cast<std::uint32_t>(mem_->load(pc_, 4));
  last_inst_ = inst;
  ++stats_.instructions;
  const std::uint32_t opcode = inst & 0x7F;
  const unsigned rd = bits(inst, 11, 7);
  const unsigned rs1 = bits(inst, 19, 15);
  const unsigned rs2 = bits(inst, 24, 20);
  const std::uint32_t f3 = bits(inst, 14, 12);
  const std::uint32_t f7 = bits(inst, 31, 25);
  Addr next_pc = pc_ + 4;

  auto wr = [&](std::uint64_t v) {
    if (rd != 0) x_[rd] = v;
  };
  auto compute1 = [&] {
    if (rec_ != nullptr) rec_->compute(1);
  };

  try {
    switch (opcode) {
      case 0x37:  // LUI
        wr(static_cast<std::uint64_t>(imm_u(inst)));
        compute1();
        break;
      case 0x17:  // AUIPC
        wr(pc_ + static_cast<std::uint64_t>(imm_u(inst)));
        compute1();
        break;
      case 0x6F:  // JAL
        wr(pc_ + 4);
        next_pc = pc_ + static_cast<std::uint64_t>(imm_j(inst));
        compute1();
        break;
      case 0x67: {  // JALR
        const Addr target =
            (x_[rs1] + static_cast<std::uint64_t>(imm_i(inst))) & ~Addr{1};
        wr(pc_ + 4);
        next_pc = target;
        compute1();
        break;
      }
      case 0x63: {  // branches
        bool taken = false;
        switch (f3) {
          case 0: taken = x_[rs1] == x_[rs2]; break;
          case 1: taken = x_[rs1] != x_[rs2]; break;
          case 4: taken = as_s(x_[rs1]) < as_s(x_[rs2]); break;
          case 5: taken = as_s(x_[rs1]) >= as_s(x_[rs2]); break;
          case 6: taken = x_[rs1] < x_[rs2]; break;
          case 7: taken = x_[rs1] >= x_[rs2]; break;
          default: return Halt::kIllegal;
        }
        if (taken) {
          next_pc = pc_ + static_cast<std::uint64_t>(imm_b(inst));
          ++stats_.branches_taken;
        }
        compute1();
        break;
      }
      case 0x03: {  // loads
        const Addr addr = x_[rs1] + static_cast<std::uint64_t>(imm_i(inst));
        switch (f3) {
          case 0: wr(mem_load(addr, 1, true)); break;   // LB
          case 1: wr(mem_load(addr, 2, true)); break;   // LH
          case 2: wr(mem_load(addr, 4, true)); break;   // LW
          case 3: wr(mem_load(addr, 8, false)); break;  // LD
          case 4: wr(mem_load(addr, 1, false)); break;  // LBU
          case 5: wr(mem_load(addr, 2, false)); break;  // LHU
          case 6: wr(mem_load(addr, 4, false)); break;  // LWU
          default: return Halt::kIllegal;
        }
        break;
      }
      case 0x23: {  // stores
        const Addr addr = x_[rs1] + static_cast<std::uint64_t>(imm_s(inst));
        switch (f3) {
          case 0: mem_store(addr, x_[rs2], 1); break;
          case 1: mem_store(addr, x_[rs2], 2); break;
          case 2: mem_store(addr, x_[rs2], 4); break;
          case 3: mem_store(addr, x_[rs2], 8); break;
          default: return Halt::kIllegal;
        }
        break;
      }
      case 0x13: {  // OP-IMM
        const std::uint64_t imm = static_cast<std::uint64_t>(imm_i(inst));
        const unsigned shamt = bits(inst, 25, 20);
        switch (f3) {
          case 0: wr(x_[rs1] + imm); break;                      // ADDI
          case 2: wr(as_s(x_[rs1]) < as_s(imm) ? 1 : 0); break;  // SLTI
          case 3: wr(x_[rs1] < imm ? 1 : 0); break;              // SLTIU
          case 4: wr(x_[rs1] ^ imm); break;
          case 6: wr(x_[rs1] | imm); break;
          case 7: wr(x_[rs1] & imm); break;
          case 1: wr(x_[rs1] << shamt); break;  // SLLI
          case 5:
            wr(bits(inst, 30, 30) ? static_cast<std::uint64_t>(
                                        as_s(x_[rs1]) >> shamt)  // SRAI
                                  : x_[rs1] >> shamt);           // SRLI
            break;
          default: return Halt::kIllegal;
        }
        compute1();
        break;
      }
      case 0x1B: {  // OP-IMM-32
        const std::uint64_t imm = static_cast<std::uint64_t>(imm_i(inst));
        const unsigned shamt = bits(inst, 24, 20);
        const std::uint32_t w = static_cast<std::uint32_t>(x_[rs1]);
        switch (f3) {
          case 0: wr(sext32(w + static_cast<std::uint32_t>(imm))); break;
          case 1: wr(sext32(w << shamt)); break;  // SLLIW
          case 5:
            wr(bits(inst, 30, 30)
                   ? sext32(static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(w) >> shamt))  // SRAIW
                   : sext32(w >> shamt));                         // SRLIW
            break;
          default: return Halt::kIllegal;
        }
        compute1();
        break;
      }
      case 0x33: {  // OP
        if (f7 == 0x01) {  // RV64M
          switch (f3) {
            case 0: wr(x_[rs1] * x_[rs2]); break;  // MUL
            case 1: wr(mulh_signed(as_s(x_[rs1]), as_s(x_[rs2]))); break;
            case 2: wr(mulh_su(as_s(x_[rs1]), x_[rs2])); break;
            case 3: wr(mulh_unsigned(x_[rs1], x_[rs2])); break;
            case 4: wr(div_signed(as_s(x_[rs1]), as_s(x_[rs2]))); break;
            case 5:  // DIVU
              wr(x_[rs2] == 0 ? ~std::uint64_t{0} : x_[rs1] / x_[rs2]);
              break;
            case 6: wr(rem_signed(as_s(x_[rs1]), as_s(x_[rs2]))); break;
            case 7:  // REMU
              wr(x_[rs2] == 0 ? x_[rs1] : x_[rs1] % x_[rs2]);
              break;
          }
          compute1();
          break;
        }
        const unsigned shamt = static_cast<unsigned>(x_[rs2] & 63);
        switch (f3) {
          case 0:
            wr(f7 == 0x20 ? x_[rs1] - x_[rs2] : x_[rs1] + x_[rs2]);
            break;
          case 1: wr(x_[rs1] << shamt); break;
          case 2: wr(as_s(x_[rs1]) < as_s(x_[rs2]) ? 1 : 0); break;
          case 3: wr(x_[rs1] < x_[rs2] ? 1 : 0); break;
          case 4: wr(x_[rs1] ^ x_[rs2]); break;
          case 5:
            wr(f7 == 0x20
                   ? static_cast<std::uint64_t>(as_s(x_[rs1]) >> shamt)
                   : x_[rs1] >> shamt);
            break;
          case 6: wr(x_[rs1] | x_[rs2]); break;
          case 7: wr(x_[rs1] & x_[rs2]); break;
        }
        compute1();
        break;
      }
      case 0x3B: {  // OP-32
        const std::uint32_t a = static_cast<std::uint32_t>(x_[rs1]);
        const std::uint32_t b = static_cast<std::uint32_t>(x_[rs2]);
        if (f7 == 0x01) {  // RV64M W-forms
          const std::int32_t sa = static_cast<std::int32_t>(a);
          const std::int32_t sb = static_cast<std::int32_t>(b);
          switch (f3) {
            case 0: wr(sext32(a * b)); break;  // MULW
            case 4:                            // DIVW
              wr(sb == 0 ? ~std::uint64_t{0}
                         : (sa == std::numeric_limits<std::int32_t>::min() &&
                                    sb == -1
                                ? sext32(static_cast<std::uint32_t>(sa))
                                : sext32(static_cast<std::uint32_t>(sa / sb))));
              break;
            case 5: wr(sb == 0 ? sext32(a) : sext32(a / b)); break;  // DIVUW
            case 6:                                                  // REMW
              wr(sb == 0 ? sext32(a)
                         : (sa == std::numeric_limits<std::int32_t>::min() &&
                                    sb == -1
                                ? 0
                                : sext32(static_cast<std::uint32_t>(sa % sb))));
              break;
            case 7: wr(sb == 0 ? sext32(a) : sext32(a % b)); break;  // REMUW
            default: return Halt::kIllegal;
          }
          compute1();
          break;
        }
        const unsigned shamt = static_cast<unsigned>(x_[rs2] & 31);
        switch (f3) {
          case 0: wr(f7 == 0x20 ? sext32(a - b) : sext32(a + b)); break;
          case 1: wr(sext32(a << shamt)); break;
          case 5:
            wr(f7 == 0x20 ? sext32(static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(a) >> shamt))
                          : sext32(a >> shamt));
            break;
          default: return Halt::kIllegal;
        }
        compute1();
        break;
      }
      case 0x0F:  // FENCE
        if (rec_ != nullptr) rec_->fence();
        break;
      case 0x73:  // SYSTEM
        if (inst == 0x00000073) return Halt::kEcall;
        if (inst == 0x00100073) return Halt::kEbreak;
        return Halt::kIllegal;
      case 0x2F: {  // AMO (RV64A subset)
        const std::uint32_t f5 = bits(inst, 31, 27);
        const unsigned bytes = f3 == 2 ? 4 : (f3 == 3 ? 8 : 0);
        if (bytes == 0) return Halt::kIllegal;
        const Addr addr = x_[rs1];
        ++stats_.amos;
        if (rec_ != nullptr) rec_->atomic(addr, bytes);
        const std::uint64_t old = bytes == 4
                                      ? sext32(mem_->load(addr, 4))
                                      : mem_->load(addr, 8);
        std::uint64_t result = 0;
        switch (f5) {
          case 0x01: result = x_[rs2]; break;        // AMOSWAP
          case 0x00: result = old + x_[rs2]; break;  // AMOADD
          case 0x04: result = old ^ x_[rs2]; break;  // AMOXOR
          case 0x0C: result = old & x_[rs2]; break;  // AMOAND
          case 0x08: result = old | x_[rs2]; break;  // AMOOR
          default: return Halt::kIllegal;
        }
        mem_->store(addr, result, bytes);
        wr(old);
        break;
      }
      default:
        return Halt::kIllegal;
    }
  } catch (const TraceRecorder::TraceFull&) {
    return Halt::kTraceFull;
  }

  pc_ = next_pc;
  return Halt::kRunning;
}

}  // namespace pacsim::rv
