#include "riscv/kernels.hpp"

namespace pacsim::rv {
namespace {

// STREAM triad: a[i] = b[i] + s * c[i] over per-core 512 KB slices.
constexpr const char* kStream = R"(
    li   t0, 0x10000000      # a
    li   t1, 0x14000000      # b
    li   t2, 0x18000000      # c
    li   t3, 65536           # doubles per core
    mul  t4, a0, t3
    slli t4, t4, 3
    add  t0, t0, t4
    add  t1, t1, t4
    add  t2, t2, t4
    li   t5, 0
    li   t6, 3
stream_loop:
    ld   a2, 0(t1)
    ld   a3, 0(t2)
    mul  a3, a3, t6
    add  a2, a2, a3
    sd   a2, 0(t0)
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, 8
    addi t5, t5, 1
    blt  t5, t3, stream_loop
    ecall
)";

// Page-clustered gather bursts (the GS pattern) + per-burst sequential
// scatter; page bases from a per-core xorshift stream.
constexpr const char* kGather = R"(
    li   s0, 0x20000000      # 64 MB table
    li   s1, 0x40000000      # output
    li   t0, 4096
    mul  t1, a0, t0
    slli t1, t1, 3
    add  s1, s1, t1
    li   s2, 0
    li   s3, 4096            # bursts per core (budget will cut earlier)
    addi s4, a0, 99          # xorshift seed
gs_burst:
    slli t2, s4, 13
    xor  s4, s4, t2
    srli t2, s4, 7
    xor  s4, s4, t2
    slli t2, s4, 17
    xor  s4, s4, t2
    li   t3, 16383
    and  t2, s4, t3
    slli t2, t2, 12
    add  t2, t2, s0
    li   t4, 0
    li   t5, 32
gs_inner:
    ld   a2, 0(t2)
    sd   a2, 0(s1)
    addi t2, t2, 8
    addi s1, s1, 8
    addi t4, t4, 1
    blt  t4, t5, gs_inner
    addi s2, s2, 1
    blt  s2, s3, gs_burst
    ecall
)";

// GUPS-style random updates over a 128 MB table: load, xor, store at
// xorshift addresses - the scattered pattern that defeats coalescing.
constexpr const char* kRandom = R"(
    li   s0, 0x20000000
    addi s4, a0, 7           # seed
    li   s2, 0
    li   s3, 1000000
rand_loop:
    slli t2, s4, 13
    xor  s4, s4, t2
    srli t2, s4, 7
    xor  s4, s4, t2
    slli t2, s4, 17
    xor  s4, s4, t2
    li   t3, 0x00FFFFF8      # 16M-aligned-8 mask inside 128 MB
    and  t2, s4, t3
    add  t2, t2, s0
    ld   a2, 0(t2)
    xor  a2, a2, s4
    sd   a2, 0(t2)
    addi s2, s2, 1
    blt  s2, s3, rand_loop
    ecall
)";

// 1-D three-point stencil sweep: out[i] = in[i-1] + in[i] + in[i+1] over
// per-core 1 MB slices (the MG/SP access class).
constexpr const char* kStencil = R"(
    li   t0, 0x30000000      # in
    li   t1, 0x38000000      # out
    li   t3, 131072          # doubles per core
    mul  t4, a0, t3
    slli t4, t4, 3
    add  t0, t0, t4
    add  t1, t1, t4
    li   t5, 1
    addi t6, t3, -1
stencil_loop:
    slli a4, t5, 3
    add  a5, t0, a4
    ld   a2, -8(a5)
    ld   a3, 0(a5)
    ld   a6, 8(a5)
    add  a2, a2, a3
    add  a2, a2, a6
    add  a5, t1, a4
    sd   a2, 0(a5)
    addi t5, t5, 1
    blt  t5, t6, stencil_loop
    ecall
)";

// Histogram: sequential key scan + atomic increments into a shared 2 MB
// bucket table (the IS class, exercising the AMO bypass path).
constexpr const char* kHistogram = R"(
    li   s0, 0x50000000      # keys (sequential reads)
    li   s1, 0x58000000      # shared buckets
    li   t3, 262144          # keys per core
    mul  t4, a0, t3
    slli t4, t4, 3
    add  s0, s0, t4
    li   t5, 0
    addi s4, a0, 31          # xorshift for synthetic key values
hist_loop:
    ld   a2, 0(s0)
    slli t2, s4, 13
    xor  s4, s4, t2
    srli t2, s4, 7
    xor  s4, s4, t2
    li   t6, 0x1FFFF8
    and  a3, s4, t6
    add  a3, a3, s1
    li   a4, 1
    amoadd.d a5, a4, (a3)
    addi s0, s0, 8
    addi t5, t5, 1
    blt  t5, t3, hist_loop
    ecall
)";

}  // namespace

const std::vector<const RiscvProgramWorkload*>& rv_workloads() {
  static const RiscvProgramWorkload kKernels[] = {
      {"rv-stream", "STREAM triad in RV64 assembly", kStream},
      {"rv-gs", "page-clustered gather/scatter in RV64 assembly", kGather},
      {"rv-rand", "GUPS-style random updates in RV64 assembly", kRandom},
      {"rv-stencil", "1-D stencil sweep in RV64 assembly", kStencil},
      {"rv-hist", "histogram with AMO increments in RV64 assembly",
       kHistogram},
  };
  static const std::vector<const RiscvProgramWorkload*> all = {
      &kKernels[0], &kKernels[1], &kKernels[2], &kKernels[3], &kKernels[4]};
  return all;
}

const RiscvProgramWorkload* find_rv_workload(std::string_view name) {
  for (const RiscvProgramWorkload* w : rv_workloads()) {
    if (w->name() == name) return w;
  }
  return nullptr;
}

}  // namespace pacsim::rv
