// A small two-pass RV64IMA assembler producing real machine code for the
// interpreter. Supports the instruction subset the interpreter executes,
// labels, common pseudo-instructions (li, mv, j, ret, beqz, ...) and the
// data directives .dword/.word/.space/.align.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace pacsim::rv {

struct Program {
  Addr base = 0;
  std::vector<std::uint8_t> bytes;
  std::unordered_map<std::string, Addr> labels;

  [[nodiscard]] Addr label(const std::string& name) const {
    const auto it = labels.find(name);
    if (it == labels.end()) {
      throw std::runtime_error("unknown label: " + name);
    }
    return it->second;
  }
  [[nodiscard]] Addr end() const { return base + bytes.size(); }
};

/// Assembly error with the offending 1-based source line.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message)
      : std::runtime_error("asm line " + std::to_string(line) + ": " +
                           message),
        line_(line) {}
  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Assemble `source` at `base`; throws AsmError on malformed input.
Program assemble(const std::string& source, Addr base = 0x1000);

}  // namespace pacsim::rv
