// A library of RV64 assembly kernels, exposed as regular Workloads: the
// same memory stack can be driven either by the C++ mini-suites or by real
// machine code running on the interpreter (Spike-equivalent methodology).
//
// Kernel convention: a0 = core id, a1 = core count, sp = per-core stack;
// kernels partition data by core id and halt with `ecall` (or run until the
// per-core trace budget fills).
#pragma once

#include <vector>

#include "riscv/riscv_workload.hpp"

namespace pacsim::rv {

/// All built-in assembly kernels (rv-stream, rv-gs, rv-rand, rv-stencil,
/// rv-hist).
const std::vector<const RiscvProgramWorkload*>& rv_workloads();

/// Look up one kernel by name; nullptr when unknown.
const RiscvProgramWorkload* find_rv_workload(std::string_view name);

}  // namespace pacsim::rv
