#include "riscv/riscv_workload.hpp"

#include "core/trace_recorder.hpp"
#include "riscv/interpreter.hpp"
#include "riscv/memory.hpp"

namespace pacsim::rv {

std::vector<Trace> RiscvProgramWorkload::generate(
    const WorkloadConfig& cfg) const {
  const Program program = assemble(source_, load_base_);

  std::vector<Trace> traces(cfg.num_cores);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    Memory memory;
    memory.write_block(program.base, program.bytes.data(),
                       program.bytes.size());

    Interpreter cpu(&memory);
    cpu.set_pc(program.base);
    cpu.set_reg(static_cast<unsigned>(reg_index("a0")), core);
    cpu.set_reg(static_cast<unsigned>(reg_index("a1")), cfg.num_cores);
    // Per-core stacks above the image, page-aligned and disjoint.
    const Addr stack_top =
        ((program.end() + kPageSize) & ~Addr{kPageSize - 1}) +
        (core + 1) * 64 * kPageSize;
    cpu.set_reg(static_cast<unsigned>(reg_index("sp")), stack_top);

    TraceRecorder recorder(&traces[core], cfg.max_ops_per_core);
    recorder.set_compute_scale(cfg.compute_scale);
    cpu.attach_recorder(&recorder);

    last_halt_ = cpu.run(max_steps_);
    if (last_halt_ == Halt::kIllegal) {
      throw std::runtime_error(
          name_ + ": illegal instruction at pc=" + std::to_string(cpu.pc()));
    }
  }
  return traces;
}

}  // namespace pacsim::rv
