// Sparse flat memory for the RV64 interpreter: page-backed, zero-initialized.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace pacsim::rv {

class Memory {
 public:
  std::uint64_t load(Addr addr, unsigned bytes) const {
    std::uint64_t value = 0;
    for (unsigned i = 0; i < bytes; ++i) {
      value |= static_cast<std::uint64_t>(peek(addr + i)) << (8 * i);
    }
    return value;
  }

  void store(Addr addr, std::uint64_t value, unsigned bytes) {
    for (unsigned i = 0; i < bytes; ++i) {
      poke(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  /// Bulk copy used by the loader.
  void write_block(Addr addr, const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) poke(addr + i, bytes[i]);
  }

  [[nodiscard]] std::size_t pages_touched() const { return pages_.size(); }

 private:
  static constexpr std::size_t kPageBytes = 4096;

  std::uint8_t peek(Addr addr) const {
    const auto it = pages_.find(addr / kPageBytes);
    if (it == pages_.end()) return 0;
    return it->second[addr % kPageBytes];
  }

  void poke(Addr addr, std::uint8_t value) {
    auto& page = pages_[addr / kPageBytes];
    if (page.empty()) page.resize(kPageBytes, 0);
    page[addr % kPageBytes] = value;
  }

  mutable std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> pages_;
};

}  // namespace pacsim::rv
