// Functional RV64IMA-subset interpreter - the "Spike-lite" front end.
//
// Executes real RV64 machine code (as produced by rv::Assembler) over the
// sparse Memory, optionally recording every memory access and instruction
// into a TraceRecorder so that assembly kernels can drive the same
// simulated memory stack as the built-in C++ workloads.
//
// Supported: RV64I (full integer subset incl. W-forms), RV64M, FENCE,
// ECALL/EBREAK (halt), and the AMO instructions AMOSWAP/AMOADD/AMOXOR/
// AMOAND/AMOOR (W and D forms). Not modelled: CSRs, interrupts, paging,
// compressed instructions, floating point.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/trace_recorder.hpp"
#include "riscv/memory.hpp"

namespace pacsim::rv {

enum class Halt : std::uint8_t {
  kRunning = 0,
  kEcall,       ///< environment call: programs use this to exit
  kEbreak,
  kIllegal,     ///< undecodable instruction
  kMaxSteps,    ///< step budget exhausted
  kTraceFull,   ///< the attached TraceRecorder reached its budget
};

struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t amos = 0;
  std::uint64_t branches_taken = 0;
};

class Interpreter {
 public:
  explicit Interpreter(Memory* memory) : mem_(memory) {}

  /// Attach a recorder: loads/stores/AMOs/fences are recorded, and every
  /// non-memory instruction contributes one compute cycle.
  void attach_recorder(TraceRecorder* recorder) { rec_ = recorder; }

  void set_pc(Addr pc) { pc_ = pc; }
  [[nodiscard]] Addr pc() const { return pc_; }

  [[nodiscard]] std::uint64_t reg(unsigned index) const { return x_[index]; }
  void set_reg(unsigned index, std::uint64_t value) {
    if (index != 0) x_[index] = value;
  }

  /// Execute one instruction; returns the halt condition (kRunning if the
  /// program continues).
  Halt step();

  /// Run until halt or `max_steps` instructions.
  Halt run(std::uint64_t max_steps);

  [[nodiscard]] const ExecStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t last_instruction() const { return last_inst_; }

 private:
  std::uint64_t mem_load(Addr addr, unsigned bytes, bool sign_extend);
  void mem_store(Addr addr, std::uint64_t value, unsigned bytes);

  Memory* mem_;
  TraceRecorder* rec_ = nullptr;
  std::array<std::uint64_t, 32> x_{};
  Addr pc_ = 0;
  ExecStats stats_;
  std::uint32_t last_inst_ = 0;
};

/// Register ABI names ("a0", "t3", "sp", ...) -> index; returns -1 when
/// unknown. Shared by the assembler and tests.
int reg_index(const std::string& name);

}  // namespace pacsim::rv
