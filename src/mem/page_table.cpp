#include "mem/page_table.hpp"

#include <stdexcept>

namespace pacsim {

PageTable::PageTable(std::uint64_t phys_pages, std::uint64_t seed,
                     bool identity)
    : identity_(identity) {
  if (identity_) return;  // passthrough: no frame pool to build
  frames_.resize(phys_pages);
  for (std::uint64_t i = 0; i < phys_pages; ++i) frames_[i] = i;
  // Fisher-Yates with the deterministic xoshiro stream.
  Rng rng(seed);
  for (std::uint64_t i = phys_pages; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(frames_[i - 1], frames_[j]);
  }
}

Addr PageTable::translate(std::uint8_t process, Addr vaddr) {
  if (identity_) return vaddr;
  const std::uint64_t vpn = page_number(vaddr);
  // Processes get disjoint key spaces; 2^48 pages per process is ample.
  const std::uint64_t key = (static_cast<std::uint64_t>(process) << 48) | vpn;
  auto [it, inserted] = map_.try_emplace(key, 0);
  if (inserted) {
    if (next_free_ >= frames_.size()) {
      throw std::runtime_error("PageTable: out of physical frames");
    }
    it->second = frames_[next_free_++];
  }
  return (it->second << kPageShift) | page_offset(vaddr);
}

std::optional<Addr> PageTable::lookup(std::uint8_t process, Addr vaddr) const {
  if (identity_) return vaddr;
  const std::uint64_t vpn = page_number(vaddr);
  const std::uint64_t key = (static_cast<std::uint64_t>(process) << 48) | vpn;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return (it->second << kPageShift) | page_offset(vaddr);
}

}  // namespace pacsim
