#include "mem/page_table.hpp"

#include <stdexcept>
#include <utility>

namespace pacsim {

PageTable::PageTable(std::uint64_t phys_pages, std::uint64_t seed,
                     bool identity)
    : phys_pages_(phys_pages), identity_(identity) {
  if (identity_) return;  // passthrough: no frame pool to build
  frames_.resize(phys_pages);
  for (std::uint64_t i = 0; i < phys_pages; ++i) frames_[i] = i;
  // Fisher-Yates with the deterministic xoshiro stream.
  Rng rng(seed);
  for (std::uint64_t i = phys_pages; i > 1; --i) {
    const std::uint64_t j = rng.below(i);
    std::swap(frames_[i - 1], frames_[j]);
  }
}

void PageTable::enable_sparing(std::uint64_t spare_pages,
                               std::function<bool(std::uint64_t)> dead_frame) {
  if (spare_pages >= phys_pages_) {
    throw std::invalid_argument(
        "PageTable: spare_pages must leave usable capacity");
  }
  if (next_free_ != 0 || !map_.empty()) {
    throw std::logic_error("PageTable: enable_sparing after first touch");
  }
  sparing_ = true;
  spare_pages_ = spare_pages;
  dead_frame_ = std::move(dead_frame);
}

std::uint64_t PageTable::spare_pfn(std::uint64_t k) const {
  // Identity mode has no shuffled pool: the spare region is the literal top
  // of the physical capacity. Otherwise the pool's reserved tail (already
  // scattered by the shuffle) supplies the spares.
  if (identity_) return phys_pages_ - spare_pages_ + k;
  return frames_[frames_.size() - spare_pages_ + k];
}

std::optional<std::uint64_t> PageTable::take_spare() {
  while (spare_next_ < spare_pages_) {
    const std::uint64_t pfn = spare_pfn(spare_next_);
    ++spare_next_;
    if (!dead_frame_(pfn)) return pfn;  // dead spares are skipped for good
  }
  return std::nullopt;
}

Addr PageTable::translate(std::uint8_t process, Addr vaddr) {
  if (identity_) {
    if (!sparing_) return vaddr;
    const std::uint64_t vpn = page_number(vaddr);
    const auto it = map_.find(vpn);
    if (it != map_.end()) {
      return (it->second << kPageShift) | page_offset(vaddr);
    }
    if (dead_frame_(vpn)) {
      if (const auto spare = take_spare()) {
        map_[vpn] = *spare;
        ++pages_migrated_;
        migration_pending_ = true;
        return (*spare << kPageShift) | page_offset(vaddr);
      }
    }
    return vaddr;  // live frame, or spare pool dry (port will poison)
  }
  const std::uint64_t vpn = page_number(vaddr);
  // Processes get disjoint key spaces; 2^48 pages per process is ample.
  const std::uint64_t key = (static_cast<std::uint64_t>(process) << 48) | vpn;
  auto [it, inserted] = map_.try_emplace(key, 0);
  if (inserted) {
    const std::uint64_t usable = frames_.size() - spare_pages_;
    if (next_free_ >= usable) {
      throw std::runtime_error("PageTable: out of physical frames");
    }
    it->second = frames_[next_free_++];
    if (sparing_ && dead_frame_(it->second)) {
      // Fresh touch on a dead frame: allocate straight from the spare pool,
      // no migration penalty - there is no resident data to move yet.
      if (const auto spare = take_spare()) it->second = *spare;
    }
  } else if (sparing_ && dead_frame_(it->second)) {
    if (const auto spare = take_spare()) {
      it->second = *spare;
      ++pages_migrated_;
      migration_pending_ = true;
    }
  }
  return (it->second << kPageShift) | page_offset(vaddr);
}

std::optional<Addr> PageTable::lookup(std::uint8_t process, Addr vaddr) const {
  if (identity_) {
    if (!sparing_) return vaddr;
    const std::uint64_t vpn = page_number(vaddr);
    const auto it = map_.find(vpn);
    const std::uint64_t pfn = it != map_.end() ? it->second : vpn;
    if (dead_frame_(pfn)) return std::nullopt;  // migration pending
    return (pfn << kPageShift) | page_offset(vaddr);
  }
  const std::uint64_t vpn = page_number(vaddr);
  const std::uint64_t key = (static_cast<std::uint64_t>(process) << 48) | vpn;
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  if (sparing_ && dead_frame_(it->second)) return std::nullopt;
  return (it->second << kPageShift) | page_offset(vaddr);
}

}  // namespace pacsim
