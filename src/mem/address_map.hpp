// Physical address -> (vault, bank, row) decomposition for the HMC device.
//
// HMC interleaves consecutive 256 B DRAM rows across vaults first, then
// across the banks within a vault (paper section 4.2: "HMC employs vault and
// traditional bank interleaving ... to further reduce the potential for bank
// conflicts").
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace pacsim {

struct AddressMapConfig {
  std::uint32_t num_vaults = 32;
  std::uint32_t banks_per_vault = 16;
  std::uint32_t row_bytes = 256;           ///< HMC block (row) size
  std::uint64_t capacity_bytes = 8ULL << 30;  ///< 8 GB device
};

/// Decoded location of an address inside the cube.
struct DramLocation {
  std::uint32_t vault = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;

  friend bool operator==(const DramLocation&, const DramLocation&) = default;
};

class AddressMap {
 public:
  /// Throws std::invalid_argument when `capacity_bytes` is smaller than one
  /// row per bank (rows_per_bank() would be zero).
  explicit AddressMap(const AddressMapConfig& cfg);

  [[nodiscard]] DramLocation decode(Addr a) const;
  /// Inverse of decode for the row base address (offset zero). An
  /// out-of-range `loc.row` wraps modulo rows_per_bank(), staying inside
  /// the same (vault, bank) — mirroring decode's capacity wrap.
  [[nodiscard]] Addr encode(const DramLocation& loc) const;

  [[nodiscard]] std::uint32_t num_vaults() const { return cfg_.num_vaults; }
  [[nodiscard]] std::uint32_t banks_per_vault() const {
    return cfg_.banks_per_vault;
  }
  [[nodiscard]] std::uint32_t row_bytes() const { return cfg_.row_bytes; }
  [[nodiscard]] std::uint64_t rows_per_bank() const { return rows_per_bank_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return cfg_.capacity_bytes;
  }

 private:
  AddressMapConfig cfg_;
  unsigned row_shift_;
  unsigned vault_shift_;
  unsigned bank_shift_;
  std::uint64_t rows_per_bank_;
};

}  // namespace pacsim
