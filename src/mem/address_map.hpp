// Physical address -> (vault, bank, row) decomposition for the HMC device.
//
// HMC interleaves consecutive 256 B DRAM rows across vaults first, then
// across the banks within a vault (paper section 4.2: "HMC employs vault and
// traditional bank interleaving ... to further reduce the potential for bank
// conflicts").
#pragma once

#include <cstdint>

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace pacsim {

struct AddressMapConfig {
  std::uint32_t num_vaults = 32;
  std::uint32_t banks_per_vault = 16;
  std::uint32_t row_bytes = 256;           ///< HMC block (row) size
  std::uint64_t capacity_bytes = 8ULL << 30;  ///< 8 GB device (per cube)
  /// Cubes the physical address space is sharded across (multi-cube
  /// chaining; see src/noc/). The cube index lives in the bits directly
  /// above the per-cube capacity, so a child device handed the full address
  /// sees its cube-local offset after decode()'s capacity wrap.
  std::uint32_t num_cubes = 1;
};

/// Decoded location of an address inside the cube.
struct DramLocation {
  std::uint32_t vault = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;

  friend bool operator==(const DramLocation&, const DramLocation&) = default;
};

class AddressMap {
 public:
  /// Throws std::invalid_argument when `capacity_bytes` is smaller than one
  /// row per bank (rows_per_bank() would be zero).
  explicit AddressMap(const AddressMapConfig& cfg);

  [[nodiscard]] DramLocation decode(Addr a) const;
  /// Inverse of decode for the row base address (offset zero). An
  /// out-of-range `loc.row` wraps modulo rows_per_bank(), staying inside
  /// the same (vault, bank) — mirroring decode's capacity wrap.
  [[nodiscard]] Addr encode(const DramLocation& loc) const;

  [[nodiscard]] std::uint32_t num_vaults() const { return cfg_.num_vaults; }
  [[nodiscard]] std::uint32_t banks_per_vault() const {
    return cfg_.banks_per_vault;
  }
  [[nodiscard]] std::uint32_t row_bytes() const { return cfg_.row_bytes; }
  [[nodiscard]] std::uint64_t rows_per_bank() const { return rows_per_bank_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return cfg_.capacity_bytes;
  }
  [[nodiscard]] std::uint32_t num_cubes() const { return cfg_.num_cubes; }
  /// Whole sharded address space (all cubes).
  [[nodiscard]] std::uint64_t total_capacity_bytes() const {
    return cfg_.capacity_bytes * cfg_.num_cubes;
  }
  /// Cube owning `a`: the bits directly above the per-cube capacity,
  /// modulo num_cubes (addresses beyond the last cube wrap, mirroring
  /// decode()'s capacity wrap).
  [[nodiscard]] std::uint32_t cube_of(Addr a) const {
    return static_cast<std::uint32_t>((a >> cube_shift_) % cfg_.num_cubes);
  }

 private:
  AddressMapConfig cfg_;
  unsigned row_shift_;
  unsigned vault_shift_;
  unsigned bank_shift_;
  unsigned cube_shift_;
  std::uint64_t rows_per_bank_;
};

}  // namespace pacsim
