// Abstract interface over the simulated memory substrate.
//
// The coalescers, the retry port and the full system drive the device
// exclusively through this interface, so the same PAC pipeline can be
// evaluated on an HMC cube, an HBM stack or a conventional DDR channel by
// swapping only the backend (paper section 4.1's portability claim).
//
// Contract every implementation must honor (DESIGN.md "MemoryBackend"):
//   - tick(now) is called with monotonically non-decreasing cycles and may
//     be skipped across cycle ranges where next_event_cycle() proves the
//     device has nothing to do.
//   - next_event_cycle(now) returns the EARLIEST cycle >= now at which
//     tick() could change any state or statistic (including per-cycle
//     conflict-wait accounting), or kNeverCycle when fully drained. It must
//     never be late: System::run()'s event-horizon fast-forward jumps to
//     the minimum of these bounds and results must stay bit-identical to
//     the naive per-cycle loop.
//   - Fault hooks: when constructed with a FaultInjector, a corrupted
//     request surfaces as a DeviceNack (drain_nacks_into) after occupying
//     the ingress path, and a dropped response retires device-side
//     bookkeeping but never surfaces a DeviceResponse.
//   - Verifier hooks: an injected response drop is reported through
//     Verifier::on_response_dropped so a full ledger can tell a lost
//     response apart from a request that never completed.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/backend_stats.hpp"
#include "mem/request.hpp"

namespace pacsim {

class Verifier;

/// Which memory substrate a System simulates (backend=hmc|hbm|ddr).
enum class BackendKind : std::uint8_t {
  kHmc = 0,  ///< packetized HMC cube: SERDES links, crossbar, closed-page
  kHbm,      ///< on-interposer HBM stack: wide channels, open-page, 1 KB rows
  kDdr,      ///< conventional DDR channel: FR-FCFS, open-page, 2 KB rows
};

constexpr std::string_view to_string(BackendKind k) {
  switch (k) {
    case BackendKind::kHmc: return "hmc";
    case BackendKind::kHbm: return "hbm";
    case BackendKind::kDdr: return "ddr";
  }
  return "?";
}

/// Parse a backend= CLI value; throws std::invalid_argument on anything
/// other than "hmc", "hbm" or "ddr".
inline BackendKind parse_backend_kind(const std::string& name) {
  if (name == "hmc") return BackendKind::kHmc;
  if (name == "hbm") return BackendKind::kHbm;
  if (name == "ddr") return BackendKind::kDdr;
  throw std::invalid_argument("unknown backend '" + name +
                              "' (expected hmc, hbm or ddr)");
}

class MemoryBackend {
 public:
  virtual ~MemoryBackend() = default;

  [[nodiscard]] virtual BackendKind kind() const = 0;

  /// True when the device can admit another request this cycle.
  [[nodiscard]] virtual bool can_accept() const = 0;

  /// Admit a request at `now`. Pre: can_accept().
  virtual void submit(DeviceRequest req, Cycle now) = 0;

  /// Advance device state to cycle `now` (monotonically increasing).
  virtual void tick(Cycle now) = 0;

  /// Earliest cycle >= `now` at which tick() can change any state or
  /// statistic; kNeverCycle when fully drained. See the contract above.
  [[nodiscard]] virtual Cycle next_event_cycle(Cycle now) const = 0;

  /// Move the responses completed since the last drain into `out` (cleared
  /// first). Buffer-based so the per-cycle loop reuses one allocation.
  virtual void drain_completed_into(std::vector<DeviceResponse>& out) = 0;

  /// Move the NACKs raised since the last drain into `out` (cleared first).
  /// Only fault-injected runs ever produce NACKs.
  virtual void drain_nacks_into(std::vector<DeviceNack>& out) = 0;

  /// True while `id` is still being serviced inside the device. The retry
  /// port uses this to tell a slow response apart from a dropped one.
  [[nodiscard]] virtual bool in_flight(std::uint64_t id) const = 0;

  /// Abandon any residual bookkeeping for `id`. The retry port calls this
  /// when it declares a request lost (failpolicy=contain poisoning): the
  /// request is, by the poison paths' preconditions, no longer physically
  /// in flight anywhere, but a routing layer may still hold a tracking
  /// entry for it (e.g. the multi-cube fabric after a child retired a
  /// dropped response internally) that would otherwise pin idle() false
  /// forever. Default: nothing to forget.
  virtual void forget(std::uint64_t id) { (void)id; }

  [[nodiscard]] virtual bool idle() const = 0;
  [[nodiscard]] virtual std::uint32_t outstanding() const = 0;
  [[nodiscard]] virtual const BackendStats& stats() const = 0;
  [[nodiscard]] virtual const AddressMap& address_map() const = 0;

  /// Install the runtime verifier (nullptr = off).
  virtual void set_verifier(Verifier* verifier) = 0;

  /// One-line JSON object describing device occupancy, for forensics.
  [[nodiscard]] virtual std::string debug_json() const = 0;

  /// Persist / restore quiescent-point state (idle() true: no request in
  /// flight, all queues drained). What survives idleness is statistics,
  /// id/sequence allocators, bank busy/row state, and refresh timer grids.
  virtual void checkpoint_save(BinWriter& w) const = 0;
  virtual void checkpoint_load(BinReader& r) = 0;

  /// Convenience wrapper for tests and examples (allocates per call).
  std::vector<DeviceResponse> drain_completed() {
    std::vector<DeviceResponse> out;
    drain_completed_into(out);
    return out;
  }
};

}  // namespace pacsim
