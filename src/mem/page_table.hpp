// Per-process virtual-to-physical translation with randomized frame
// allocation.
//
// Frame scatter is the key OS effect PAC's design rests on: virtually
// contiguous pages land in arbitrary physical frames, so cross-page
// coalescing is almost never possible (paper Fig. 2: 0.04%), while in-page
// adjacency is fully preserved.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

class PageTable {
 public:
  /// `phys_pages` frames are shuffled with `seed`; allocation walks the
  /// shuffled free list, modelling a long-running OS with a fragmented
  /// free-frame pool. `identity` bypasses translation entirely (vaddr ==
  /// paddr, no frame pool): the multi-cube traffic front-end uses it so a
  /// generated address's cube bits survive to the memory device instead of
  /// being scattered by the frame shuffle. Identity mode is single-address-
  /// space - process tags are ignored.
  PageTable(std::uint64_t phys_pages, std::uint64_t seed,
            bool identity = false);

  /// Translate a virtual address of `process`; allocates the frame on first
  /// touch (demand paging).
  Addr translate(std::uint8_t process, Addr vaddr);

  /// Side-effect-free probe: the physical address iff the page is already
  /// mapped. The fast-forward stall re-check uses this because it must not
  /// demand-page.
  [[nodiscard]] std::optional<Addr> lookup(std::uint8_t process,
                                           Addr vaddr) const;

  /// Number of frames currently allocated.
  [[nodiscard]] std::uint64_t allocated() const { return next_free_; }
  [[nodiscard]] std::uint64_t capacity() const { return frames_.size(); }

  /// The shuffled frame pool is rebuilt from the seed by the constructor,
  /// so a snapshot only carries the allocation cursor and the mappings
  /// (saved in sorted key order for deterministic snapshot bytes).
  void checkpoint_save(BinWriter& w) const {
    w.tag("PGTB");
    w.u64(next_free_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(
        map_.begin(), map_.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto& [key, pfn] : entries) {
      w.u64(key);
      w.u64(pfn);
    }
  }
  void checkpoint_load(BinReader& r) {
    r.tag("PGTB");
    next_free_ = r.u64();
    map_.clear();
    const std::uint64_t n = r.u64();
    map_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t key = r.u64();
      map_[key] = r.u64();
    }
  }

 private:
  std::vector<std::uint64_t> frames_;  ///< shuffled physical frame numbers
  std::uint64_t next_free_ = 0;
  bool identity_ = false;              ///< vaddr == paddr passthrough
  std::unordered_map<std::uint64_t, std::uint64_t> map_;  ///< (proc,vpn)->pfn
};

}  // namespace pacsim
