// Per-process virtual-to-physical translation with randomized frame
// allocation.
//
// Frame scatter is the key OS effect PAC's design rests on: virtually
// contiguous pages land in arbitrary physical frames, so cross-page
// coalescing is almost never possible (paper Fig. 2: 0.04%), while in-page
// adjacency is fully preserved.
//
// Sparing (hard-failure timelines): enable_sparing() reserves the top
// `spare_pages` frames as a spare pool and installs a dead-frame predicate.
// When a touch lands on a page whose frame sits on dead hardware (vault or
// cube), the mapping migrates to the next live spare frame; the System
// charges the touching core a configurable migration latency. In identity
// mode (no frame pool) the spare region sits at the top of the physical
// capacity and migrated pages live in an overlay map consulted before the
// vaddr == paddr passthrough. A spare pool that runs dry stops migrating -
// accesses to the dead frames then resolve as poisoned completions at the
// DevicePort instead.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

class PageTable {
 public:
  /// `phys_pages` frames are shuffled with `seed`; allocation walks the
  /// shuffled free list, modelling a long-running OS with a fragmented
  /// free-frame pool. `identity` bypasses translation entirely (vaddr ==
  /// paddr, no frame pool): the multi-cube traffic front-end uses it so a
  /// generated address's cube bits survive to the memory device instead of
  /// being scattered by the frame shuffle. Identity mode is single-address-
  /// space - process tags are ignored.
  PageTable(std::uint64_t phys_pages, std::uint64_t seed,
            bool identity = false);

  /// Reserve the top `spare_pages` frames as the sparing pool and install
  /// the dead-frame predicate (true when the frame sits on failed
  /// hardware). Call before the first translate: the reserved frames must
  /// not have been handed to normal allocations.
  void enable_sparing(std::uint64_t spare_pages,
                      std::function<bool(std::uint64_t)> dead_frame);

  /// Translate a virtual address of `process`; allocates the frame on first
  /// touch (demand paging). With sparing enabled, a touch on a dead-framed
  /// page migrates it to a live spare and sets the migration-pending flag
  /// (see consume_migration()).
  Addr translate(std::uint8_t process, Addr vaddr);

  /// Side-effect-free probe: the physical address iff the page is already
  /// mapped. The fast-forward stall re-check uses this because it must not
  /// demand-page. A mapping whose frame is currently dead reports
  /// std::nullopt - "not steadily translatable" - so fast-forward never
  /// reasons past a migration the next real step would perform.
  [[nodiscard]] std::optional<Addr> lookup(std::uint8_t process,
                                           Addr vaddr) const;

  /// True exactly once after a translate() that migrated a page (cleared by
  /// the call). The System turns it into the configured migration stall.
  [[nodiscard]] bool consume_migration() {
    const bool m = migration_pending_;
    migration_pending_ = false;
    return m;
  }

  /// Number of frames currently allocated.
  [[nodiscard]] std::uint64_t allocated() const { return next_free_; }
  [[nodiscard]] std::uint64_t capacity() const { return frames_.size(); }
  [[nodiscard]] std::uint64_t pages_migrated() const {
    return pages_migrated_;
  }
  [[nodiscard]] std::uint64_t spares_used() const { return spare_next_; }

  /// The shuffled frame pool is rebuilt from the seed by the constructor,
  /// so a snapshot only carries the allocation cursor, the mappings (saved
  /// in sorted key order for deterministic snapshot bytes), and the sparing
  /// cursors. The dead-frame predicate is reinstalled by the owner.
  void checkpoint_save(BinWriter& w) const {
    w.tag("PGTB");
    w.u64(next_free_);
    w.u64(spare_next_);
    w.u64(pages_migrated_);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries(
        map_.begin(), map_.end());
    std::sort(entries.begin(), entries.end());
    w.u64(entries.size());
    for (const auto& [key, pfn] : entries) {
      w.u64(key);
      w.u64(pfn);
    }
  }
  void checkpoint_load(BinReader& r) {
    r.tag("PGTB");
    next_free_ = r.u64();
    spare_next_ = r.u64();
    pages_migrated_ = r.u64();
    migration_pending_ = false;
    map_.clear();
    const std::uint64_t n = r.u64();
    map_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t key = r.u64();
      map_[key] = r.u64();
    }
  }

 private:
  /// Physical frame number of the k-th spare (top of the pool/capacity).
  [[nodiscard]] std::uint64_t spare_pfn(std::uint64_t k) const;
  /// Next live spare frame, or nullopt when the pool ran dry (dead spares
  /// are consumed and skipped deterministically).
  std::optional<std::uint64_t> take_spare();

  std::vector<std::uint64_t> frames_;  ///< shuffled physical frame numbers
  std::uint64_t phys_pages_ = 0;       ///< capacity (identity has no pool)
  std::uint64_t next_free_ = 0;
  bool identity_ = false;              ///< vaddr == paddr passthrough
  std::unordered_map<std::uint64_t, std::uint64_t> map_;  ///< (proc,vpn)->pfn

  bool sparing_ = false;
  std::uint64_t spare_pages_ = 0;
  std::uint64_t spare_next_ = 0;       ///< spares consumed (incl. dead ones)
  std::uint64_t pages_migrated_ = 0;
  bool migration_pending_ = false;
  std::function<bool(std::uint64_t)> dead_frame_;
};

}  // namespace pacsim
