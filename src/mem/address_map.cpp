#include "mem/address_map.hpp"

#include <cassert>

namespace pacsim {

AddressMap::AddressMap(const AddressMapConfig& cfg) : cfg_(cfg) {
  assert(is_pow2(cfg_.row_bytes));
  assert(is_pow2(cfg_.num_vaults));
  assert(is_pow2(cfg_.banks_per_vault));
  assert(is_pow2(cfg_.capacity_bytes));
  row_shift_ = log2_exact(cfg_.row_bytes);
  vault_shift_ = log2_exact(cfg_.num_vaults);
  bank_shift_ = log2_exact(cfg_.banks_per_vault);
  rows_per_bank_ = cfg_.capacity_bytes >> (row_shift_ + vault_shift_ + bank_shift_);
}

DramLocation AddressMap::decode(Addr a) const {
  a &= cfg_.capacity_bytes - 1;  // wrap into the device
  const std::uint64_t row_index = a >> row_shift_;
  DramLocation loc;
  loc.vault = static_cast<std::uint32_t>(row_index & (cfg_.num_vaults - 1));
  loc.bank = static_cast<std::uint32_t>((row_index >> vault_shift_) &
                                        (cfg_.banks_per_vault - 1));
  loc.row = row_index >> (vault_shift_ + bank_shift_);
  return loc;
}

Addr AddressMap::encode(const DramLocation& loc) const {
  const std::uint64_t row_index =
      (loc.row << (vault_shift_ + bank_shift_)) |
      (static_cast<std::uint64_t>(loc.bank) << vault_shift_) | loc.vault;
  return row_index << row_shift_;
}

}  // namespace pacsim
