#include "mem/address_map.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

namespace pacsim {

AddressMap::AddressMap(const AddressMapConfig& cfg) : cfg_(cfg) {
  assert(is_pow2(cfg_.row_bytes));
  assert(is_pow2(cfg_.num_vaults));
  assert(is_pow2(cfg_.banks_per_vault));
  assert(is_pow2(cfg_.capacity_bytes));
  row_shift_ = log2_exact(cfg_.row_bytes);
  vault_shift_ = log2_exact(cfg_.num_vaults);
  bank_shift_ = log2_exact(cfg_.banks_per_vault);
  cube_shift_ = log2_exact(cfg_.capacity_bytes);
  if (cfg_.num_cubes == 0) {
    throw std::invalid_argument("AddressMap: num_cubes must be >= 1");
  }
  // A capacity smaller than one row per bank would leave rows_per_bank_ at
  // zero and make every encode/decode alias onto row 0 of bank 0; fail the
  // construction loudly instead of silently producing a degenerate map.
  const std::uint64_t min_capacity = static_cast<std::uint64_t>(cfg_.row_bytes) *
                                     cfg_.num_vaults * cfg_.banks_per_vault;
  if (cfg_.capacity_bytes < min_capacity) {
    throw std::invalid_argument(
        "AddressMap: capacity_bytes=" + std::to_string(cfg_.capacity_bytes) +
        " < row_bytes*num_vaults*banks_per_vault=" +
        std::to_string(min_capacity) + " (zero rows per bank)");
  }
  rows_per_bank_ = cfg_.capacity_bytes >> (row_shift_ + vault_shift_ + bank_shift_);
}

DramLocation AddressMap::decode(Addr a) const {
  a &= cfg_.capacity_bytes - 1;  // wrap into the device
  const std::uint64_t row_index = a >> row_shift_;
  DramLocation loc;
  loc.vault = static_cast<std::uint32_t>(row_index & (cfg_.num_vaults - 1));
  loc.bank = static_cast<std::uint32_t>((row_index >> vault_shift_) &
                                        (cfg_.banks_per_vault - 1));
  loc.row = row_index >> (vault_shift_ + bank_shift_);
  return loc;
}

Addr AddressMap::encode(const DramLocation& loc) const {
  // Wrap the row into the bank (mirror of decode's capacity wrap): an
  // out-of-range row must alias onto another row of the SAME (vault, bank),
  // never shift bits into the bank/vault fields and silently land the
  // access in a different bank.
  const std::uint64_t row = loc.row & (rows_per_bank_ - 1);
  const std::uint64_t row_index =
      (row << (vault_shift_ + bank_shift_)) |
      (static_cast<std::uint64_t>(loc.bank) << vault_shift_) | loc.vault;
  return row_index << row_shift_;
}

}  // namespace pacsim
