// FLIT math for the packetized HMC interface (HMC 2.1 spec behaviours).
//
// Every HMC transaction consists of a request packet and a response packet,
// each carrying a 16 B control message (one FLIT of header+tail). A read
// request is a single control FLIT; the data rides in the response. A write
// carries its payload in the request and receives a single-FLIT response.
#pragma once

#include <cstdint>

#include "common/bitops.hpp"

namespace pacsim {

inline constexpr std::uint32_t kFlitBytes = 16;
/// Control overhead per HMC transaction: 16 B in the request packet plus
/// 16 B in the response packet (paper section 5.3.2).
inline constexpr std::uint32_t kControlBytesPerTransaction = 32;

/// FLITs in the request packet.
constexpr std::uint32_t request_flits(std::uint32_t payload_bytes, bool store) {
  const std::uint32_t data =
      store ? static_cast<std::uint32_t>(ceil_div(payload_bytes, kFlitBytes))
            : 0;
  return 1 + data;  // 1 control FLIT + data FLITs
}

/// FLITs in the response packet.
constexpr std::uint32_t response_flits(std::uint32_t payload_bytes, bool store) {
  const std::uint32_t data =
      store ? 0
            : static_cast<std::uint32_t>(ceil_div(payload_bytes, kFlitBytes));
  return 1 + data;
}

/// Total bytes moved on the links for one transaction (both directions).
constexpr std::uint32_t transaction_bytes(std::uint32_t payload_bytes,
                                          bool store) {
  return (request_flits(payload_bytes, store) +
          response_flits(payload_bytes, store)) *
         kFlitBytes;
}

/// Transaction efficiency as defined by paper Eq. (2):
///   payload / (payload + control overhead).
constexpr double transaction_efficiency(std::uint64_t payload_bytes,
                                        std::uint64_t transactions) {
  const std::uint64_t total =
      payload_bytes + transactions * kControlBytesPerTransaction;
  return total == 0
             ? 0.0
             : static_cast<double>(payload_bytes) / static_cast<double>(total);
}

}  // namespace pacsim
