// Memory request types exchanged between the LLC, the coalescers, and the
// 3D-stacked memory device.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pacsim {

/// A raw request as flushed from the last-level cache: a 64 B cache-block
/// miss, a write-back, an atomic, or a fence marker.
struct MemRequest {
  std::uint64_t id = 0;     ///< unique per simulation
  Addr paddr = 0;           ///< physical address (block-aligned for misses)
  std::uint32_t bytes = kCacheBlockSize;  ///< data size requested by the CPU
  MemOp op = MemOp::kLoad;
  std::uint8_t core = 0;    ///< originating core
  std::uint8_t process = 0; ///< owning process (multiprocessing experiments)
  Cycle created_at = 0;     ///< cycle the request left the LLC

  [[nodiscard]] Addr ppn() const { return page_number(paddr); }
  [[nodiscard]] unsigned block() const { return block_in_page(paddr); }
  [[nodiscard]] bool is_store() const { return op == MemOp::kStore; }
};

/// A (possibly coalesced) request as dispatched to the memory device.
/// `raw_ids` lists every raw MemRequest serviced by this packet, which is
/// what lets tests assert conservation (each raw id serviced exactly once).
struct DeviceRequest {
  std::uint64_t id = 0;
  Addr base = 0;            ///< base physical address, granule-aligned
  std::uint32_t bytes = 0;  ///< payload size (64..256 B for HMC 2.1)
  bool store = false;
  bool atomic = false;
  std::vector<std::uint64_t> raw_ids;
  Cycle created_at = 0;     ///< cycle the device request was assembled

  [[nodiscard]] Addr ppn() const { return page_number(base); }
};

/// Completion record returned by the memory device.
struct DeviceResponse {
  std::uint64_t request_id = 0;
  Cycle completed_at = 0;
  std::vector<std::uint64_t> raw_ids;
};

}  // namespace pacsim
