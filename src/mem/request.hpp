// Memory request types exchanged between the LLC, the coalescers, and the
// 3D-stacked memory device.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pacsim {

/// A raw request as flushed from the last-level cache: a 64 B cache-block
/// miss, a write-back, an atomic, or a fence marker.
struct MemRequest {
  std::uint64_t id = 0;     ///< unique per simulation
  Addr paddr = 0;           ///< physical address (block-aligned for misses)
  std::uint32_t bytes = kCacheBlockSize;  ///< data size requested by the CPU
  MemOp op = MemOp::kLoad;
  std::uint8_t core = 0;    ///< originating core
  std::uint8_t process = 0; ///< owning process (multiprocessing experiments)
  Cycle created_at = 0;     ///< cycle the request left the LLC

  [[nodiscard]] Addr ppn() const { return page_number(paddr); }
  [[nodiscard]] unsigned block() const { return block_in_page(paddr); }
  [[nodiscard]] bool is_store() const { return op == MemOp::kStore; }
};

/// A (possibly coalesced) request as dispatched to the memory device.
/// `raw_ids` lists every raw MemRequest serviced by this packet, which is
/// what lets tests assert conservation (each raw id serviced exactly once).
struct DeviceRequest {
  std::uint64_t id = 0;
  Addr base = 0;            ///< base physical address, granule-aligned
  std::uint32_t bytes = 0;  ///< payload size (64..256 B for HMC 2.1)
  bool store = false;
  bool atomic = false;
  std::vector<std::uint64_t> raw_ids;
  /// Granule-block offset of each raw within this request, parallel to
  /// `raw_ids`: raw i starts at `base + raw_blocks[i] * granule`. Secondary
  /// coalescing uses these to stamp MSHR subentries with the data slice the
  /// raw actually waits on. May be shorter than `raw_ids` (baselines issue
  /// single-block packets where every offset is 0) — read via raw_block().
  std::vector<std::uint16_t> raw_blocks;
  Cycle created_at = 0;     ///< cycle the device request was assembled

  [[nodiscard]] Addr ppn() const { return page_number(base); }

  /// Append one raw with its granule-block offset from `base`.
  void add_raw(std::uint64_t raw_id, std::uint16_t block_offset = 0) {
    raw_ids.push_back(raw_id);
    raw_blocks.push_back(block_offset);
  }
  /// Block offset of raw i (0 when the packet carries no offset vector).
  [[nodiscard]] std::uint16_t raw_block(std::size_t i) const {
    return i < raw_blocks.size() ? raw_blocks[i] : 0;
  }
};

/// Completion record returned by the memory device.
struct DeviceResponse {
  std::uint64_t request_id = 0;
  Cycle completed_at = 0;
  std::vector<std::uint64_t> raw_ids;
  /// Under failpolicy=contain, an undeliverable request (retry exhaustion,
  /// dead vault/cube, unreachable destination) completes as a structured
  /// per-request failure instead of wedging the run: the raws it carried
  /// are declared lost and counted, not silently retired.
  bool poisoned = false;
};

/// Link-level negative acknowledgement: the device detected a CRC error on
/// the request packet after its link traversal. The packet never reached a
/// vault; the requester-side retry port must retransmit it.
struct DeviceNack {
  std::uint64_t request_id = 0;
  Cycle nacked_at = 0;
};

}  // namespace pacsim
