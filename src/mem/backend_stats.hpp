// Aggregate statistics reported by every memory-backend model.
//
// One shared struct keeps RunResult and the JSON reports backend-agnostic:
// fields that a given substrate does not model simply stay zero (e.g. the
// HMC closed-page device never counts row hits, a DDR channel never routes
// packets across an HMC crossbar).
#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace pacsim {

struct BackendStats {
  std::uint64_t requests = 0;         ///< device requests accepted
  std::uint64_t row_accesses = 0;     ///< per-row DRAM accesses performed
  std::uint64_t bank_conflicts = 0;   ///< accesses that found their bank busy
  std::uint64_t conflict_wait_cycles = 0;
  std::uint64_t refreshes = 0;        ///< refresh events performed
  std::uint64_t local_routes = 0;     ///< HMC: packets to quadrant-local vaults
  std::uint64_t remote_routes = 0;    ///< HMC: packets to remote vaults
  std::uint64_t request_flits = 0;
  std::uint64_t response_flits = 0;
  std::uint64_t payload_bytes = 0;
  /// Open-page policies only (HBM/DDR): column accesses that found their
  /// row already open vs. ones that needed an activate. Both zero for the
  /// closed-page HMC device.
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  RunningStat access_latency;         ///< submit -> completion, cycles
};

}  // namespace pacsim
