// Aggregate statistics reported by every memory-backend model.
//
// One shared struct keeps RunResult and the JSON reports backend-agnostic:
// fields that a given substrate does not model simply stay zero (e.g. the
// HMC closed-page device never counts row hits, a DDR channel never routes
// packets across an HMC crossbar).
#pragma once

#include <cstdint>

#include "common/serialize.hpp"
#include "common/stats.hpp"

namespace pacsim {

struct BackendStats {
  std::uint64_t requests = 0;         ///< device requests accepted
  std::uint64_t row_accesses = 0;     ///< per-row DRAM accesses performed
  std::uint64_t bank_conflicts = 0;   ///< accesses that found their bank busy
  std::uint64_t conflict_wait_cycles = 0;
  std::uint64_t refreshes = 0;        ///< refresh events performed
  std::uint64_t local_routes = 0;     ///< HMC: packets to quadrant-local vaults
  std::uint64_t remote_routes = 0;    ///< HMC: packets to remote vaults
  std::uint64_t request_flits = 0;
  std::uint64_t response_flits = 0;
  std::uint64_t payload_bytes = 0;
  /// Open-page policies only (HBM/DDR): column accesses that found their
  /// row already open vs. ones that needed an activate. Both zero for the
  /// closed-page HMC device.
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  RunningStat access_latency;         ///< submit -> completion, cycles

  /// Fold another backend's counters in. Deterministic when callers fold in
  /// a fixed order (cube order, shard order), keeping merged doubles
  /// bit-reproducible.
  void merge(const BackendStats& o) {
    requests += o.requests;
    row_accesses += o.row_accesses;
    bank_conflicts += o.bank_conflicts;
    conflict_wait_cycles += o.conflict_wait_cycles;
    refreshes += o.refreshes;
    local_routes += o.local_routes;
    remote_routes += o.remote_routes;
    request_flits += o.request_flits;
    response_flits += o.response_flits;
    payload_bytes += o.payload_bytes;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
    access_latency.merge(o.access_latency);
  }

  void checkpoint_save(BinWriter& w) const {
    w.u64(requests);
    w.u64(row_accesses);
    w.u64(bank_conflicts);
    w.u64(conflict_wait_cycles);
    w.u64(refreshes);
    w.u64(local_routes);
    w.u64(remote_routes);
    w.u64(request_flits);
    w.u64(response_flits);
    w.u64(payload_bytes);
    w.u64(row_hits);
    w.u64(row_misses);
    access_latency.checkpoint_save(w);
  }
  void checkpoint_load(BinReader& r) {
    requests = r.u64();
    row_accesses = r.u64();
    bank_conflicts = r.u64();
    conflict_wait_cycles = r.u64();
    refreshes = r.u64();
    local_routes = r.u64();
    remote_routes = r.u64();
    request_flits = r.u64();
    response_flits = r.u64();
    payload_bytes = r.u64();
    row_hits = r.u64();
    row_misses = r.u64();
    access_latency.checkpoint_load(r);
  }
};

}  // namespace pacsim
