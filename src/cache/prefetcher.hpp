// Per-core stream prefetcher attached to the LLC.
//
// The paper (section 4.2) points out that PAC coalesces prefetch requests
// issued at cache-line granularity; this prefetcher is the substrate that
// supplies them. It detects unit-stride (and small-stride) miss streams per
// core and emits `degree` block-granular prefetch candidates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

struct PrefetcherConfig {
  std::uint32_t streams_per_core = 8;  ///< tracked miss streams
  std::uint32_t degree = 8;            ///< lookahead depth in blocks
  /// Top the stream back up to `degree` blocks ahead once fewer than this
  /// many prefetched blocks remain. Refilling in batches (rather than one
  /// line per trigger) is what hands the coalescer groups of adjacent
  /// requests in the same cycle.
  std::uint32_t refill_threshold = 4;
  std::uint32_t train_threshold = 2;   ///< consecutive hits to trust a stream
  std::int64_t max_stride_blocks = 2;  ///< |stride| accepted, in blocks
};

class StreamPrefetcher {
 public:
  StreamPrefetcher(std::uint32_t num_cores, const PrefetcherConfig& cfg);

  /// Observe an LLC demand miss from `core`; returns the block base
  /// addresses worth prefetching (possibly empty).
  std::vector<Addr> on_miss(std::uint32_t core, Addr block_addr);

  [[nodiscard]] std::uint64_t issued() const { return issued_; }

  void checkpoint_save(BinWriter& w) const {
    w.tag("PREF");
    w.u64(tables_.size());
    for (const auto& core_table : tables_) {
      w.u64(core_table.size());
      for (const Stream& s : core_table) {
        w.u64(s.last_block);
        w.i64(s.stride);
        w.i64(s.issued_ahead);
        w.u32(s.confidence);
        w.b(s.valid);
        w.u64(s.lru);
      }
    }
    w.u64(stamp_);
    w.u64(issued_);
  }
  void checkpoint_load(BinReader& r) {
    r.tag("PREF");
    if (r.u64() != tables_.size()) {
      throw SnapshotError("prefetcher geometry mismatch");
    }
    for (auto& core_table : tables_) {
      if (r.u64() != core_table.size()) {
        throw SnapshotError("prefetcher geometry mismatch");
      }
      for (Stream& s : core_table) {
        s.last_block = r.u64();
        s.stride = r.i64();
        s.issued_ahead = r.i64();
        s.confidence = r.u32();
        s.valid = r.b();
        s.lru = r.u64();
      }
    }
    stamp_ = r.u64();
    issued_ = r.u64();
  }

 private:
  struct Stream {
    Addr last_block = 0;   ///< block index (addr >> 6)
    std::int64_t stride = 0;
    std::int64_t issued_ahead = 0;  ///< strides already prefetched past last
    std::uint32_t confidence = 0;
    bool valid = false;
    std::uint64_t lru = 0;
  };

  PrefetcherConfig cfg_;
  std::vector<std::vector<Stream>> tables_;  ///< [core][stream]
  std::uint64_t stamp_ = 0;
  std::uint64_t issued_ = 0;
};

}  // namespace pacsim
