#include "cache/cache.hpp"

#include <cassert>

namespace pacsim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg) {
  assert(is_pow2(cfg_.line_bytes));
  line_shift_ = log2_exact(cfg_.line_bytes);
  num_sets_ = static_cast<std::uint32_t>(cfg_.size_bytes /
                                         (cfg_.line_bytes * cfg_.ways));
  assert(num_sets_ > 0 && is_pow2(num_sets_));
  lines_.resize(static_cast<std::size_t>(num_sets_) * cfg_.ways);
}

bool Cache::probe(Addr addr) const {
  const Addr block = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(block & (num_sets_ - 1));
  const Addr tag = block >> log2_exact(num_sets_);
  const Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

CacheAccess Cache::access(Addr addr, bool store) {
  return access_internal(addr, store, false);
}

CacheAccess Cache::access_internal(Addr addr, bool store, bool is_fill) {
  const Addr block = addr >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(block & (num_sets_ - 1));
  const Addr tag = block >> log2_exact(num_sets_);
  Line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];

  ++stamp_;
  Line* victim = &base[0];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Line& line = base[w];
    if (line.valid && line.tag == tag) {
      line.lru = stamp_;
      line.dirty = line.dirty || store;
      CacheAccess result{true, false, false, 0};
      if (!is_fill) {
        ++hits_;
        result.prefetched_hit = line.prefetched;
        line.prefetched = false;
      }
      return result;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  ++misses_;
  CacheAccess result{false, false, false, 0};
  if (victim->valid && victim->dirty) {
    ++writebacks_;
    result.writeback = true;
    const Addr victim_block =
        (victim->tag << log2_exact(num_sets_)) | set;
    result.victim_addr = victim_block << line_shift_;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->dirty = store;
  victim->prefetched = is_fill;
  victim->lru = stamp_;
  return result;
}

}  // namespace pacsim
