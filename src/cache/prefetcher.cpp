#include "cache/prefetcher.hpp"

#include <cstdlib>

namespace pacsim {

StreamPrefetcher::StreamPrefetcher(std::uint32_t num_cores,
                                   const PrefetcherConfig& cfg)
    : cfg_(cfg) {
  tables_.resize(num_cores);
  for (auto& t : tables_) t.resize(cfg_.streams_per_core);
}

std::vector<Addr> StreamPrefetcher::on_miss(std::uint32_t core,
                                            Addr block_addr) {
  const std::int64_t block =
      static_cast<std::int64_t>(block_addr >> kCacheBlockShift);
  auto& table = tables_[core];
  ++stamp_;

  // Find the stream this miss continues: the new block must be one stride
  // beyond the stream's last block.
  Stream* lru_entry = &table[0];
  for (auto& s : table) {
    if (!s.valid) {
      lru_entry = &s;
      continue;
    }
    if (s.lru < lru_entry->lru || !lru_entry->valid) {
      if (!lru_entry->valid && s.valid) {
        // keep the invalid entry as the allocation target
      } else {
        lru_entry = &s;
      }
    }
    const std::int64_t delta = block - static_cast<std::int64_t>(s.last_block);
    if (delta != 0 && std::llabs(delta) <= cfg_.max_stride_blocks &&
        (s.confidence == 0 || delta == s.stride)) {
      s.issued_ahead -= delta / (s.stride == 0 ? delta : s.stride);
      if (s.issued_ahead < 0) s.issued_ahead = 0;
      s.stride = delta;
      s.last_block = static_cast<Addr>(block);
      s.lru = stamp_;
      if (s.confidence < cfg_.train_threshold) {
        ++s.confidence;
        return {};
      }
      // Batch refill: once fewer than refill_threshold prefetched blocks
      // remain ahead of the demand stream, top back up to `degree` in one
      // burst of adjacent blocks.
      if (s.issued_ahead >= static_cast<std::int64_t>(cfg_.refill_threshold)) {
        return {};
      }
      std::vector<Addr> out;
      out.reserve(cfg_.degree);
      for (std::int64_t i = s.issued_ahead + 1;
           i <= static_cast<std::int64_t>(cfg_.degree); ++i) {
        const std::int64_t target = block + s.stride * i;
        if (target < 0) break;
        out.push_back(static_cast<Addr>(target) << kCacheBlockShift);
      }
      s.issued_ahead = cfg_.degree;
      issued_ += out.size();
      return out;
    }
  }

  // No stream matched: (re)allocate the LRU entry.
  lru_entry->valid = true;
  lru_entry->last_block = static_cast<Addr>(block);
  lru_entry->stride = 0;
  lru_entry->confidence = 0;
  lru_entry->lru = stamp_;
  return {};
}

}  // namespace pacsim
