// Set-associative write-back cache with LRU replacement.
//
// The model is functional-plus-latency: tags and dirty bits are exact, data
// values are not stored (the coalescer stack only needs the address stream).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

struct CacheConfig {
  std::uint64_t size_bytes = 8ULL << 20;  ///< 8 MB LLC by default
  std::uint32_t ways = 8;
  std::uint32_t line_bytes = 64;
  std::uint32_t hit_latency = 12;  ///< cycles
};

/// Outcome of a cache access.
struct CacheAccess {
  bool hit = false;
  bool writeback = false;  ///< a dirty victim was evicted
  bool prefetched_hit = false;  ///< first demand hit on a prefetched line
  Addr victim_addr = 0;    ///< block base of the evicted dirty victim
};

class Cache {
 public:
  explicit Cache(const CacheConfig& cfg);

  /// Access `addr`; on miss the line is allocated (write-allocate) and the
  /// victim, if dirty, is reported for write-back.
  CacheAccess access(Addr addr, bool store);

  /// Tag check without side effects.
  [[nodiscard]] bool probe(Addr addr) const;

  /// Allocate a line without demand semantics (prefetch fill). The line is
  /// tagged with a prefetched bit; the first demand hit reports it, which
  /// keeps the stream prefetcher trained. Returns the same victim
  /// information as access().
  CacheAccess fill(Addr addr) { return access_internal(addr, false, true); }

  [[nodiscard]] const CacheConfig& config() const { return cfg_; }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }

  void checkpoint_save(BinWriter& w) const {
    w.tag("CACH");
    w.u64(lines_.size());
    for (const Line& l : lines_) {
      w.u64(l.tag);
      w.b(l.valid);
      w.b(l.dirty);
      w.b(l.prefetched);
      w.u64(l.lru);
    }
    w.u64(stamp_);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(writebacks_);
  }
  void checkpoint_load(BinReader& r) {
    r.tag("CACH");
    if (r.u64() != lines_.size()) {
      throw SnapshotError("cache geometry mismatch");
    }
    for (Line& l : lines_) {
      l.tag = r.u64();
      l.valid = r.b();
      l.dirty = r.b();
      l.prefetched = r.b();
      l.lru = r.u64();
    }
    stamp_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
    writebacks_ = r.u64();
  }

 private:
  struct Line {
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;  ///< filled by prefetch, no demand hit yet
    std::uint64_t lru = 0;    ///< last-use stamp
  };

  CacheAccess access_internal(Addr addr, bool store, bool is_fill);

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  unsigned line_shift_;
  std::vector<Line> lines_;  ///< num_sets_ x ways, row-major
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace pacsim
