// Fork-based case isolation: one wedged, crashing, or memory-hogging soak
// case must never take the campaign down with it.
//
// Each case runs in a forked child under resource limits (CPU seconds,
// address space) with a parent-side wall-clock watchdog; the child reports
// its verdict back over a pipe and its stderr is redirected to an unlinked
// temp file whose tail the parent harvests into the case record. A child
// that outlives the watchdog is SIGKILLed and classified as a hang; a child
// that dies on a signal (SIGSEGV, SIGABRT, sanitizer abort) is captured as
// exactly that, with the signal number and stderr tail preserved.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace pacsim::fuzz {

struct IsolateLimits {
  /// Parent-side watchdog; the child is SIGKILLed past this.
  double wall_seconds = 120.0;
  /// RLIMIT_CPU for the child (0 = unlimited). A CPU-bound wedge dies on
  /// SIGXCPU even if the parent goes away.
  unsigned cpu_seconds = 0;
  /// RLIMIT_AS for the child (0 = unlimited). Ignored in sanitizer builds:
  /// ASan/TSan reserve terabytes of shadow address space by design.
  std::uint64_t address_space_bytes = 0;
  /// Bytes of the child's stderr tail to keep.
  std::size_t stderr_tail_bytes = 4096;
};

struct IsolateResult {
  enum class Status : std::uint8_t {
    kExited = 0,   ///< normal _exit; see exit_code
    kSignaled,     ///< killed by a signal; see term_signal
    kTimedOut,     ///< wall-clock watchdog fired (SIGKILL)
  };
  Status status = Status::kExited;
  int exit_code = 0;
  int term_signal = 0;
  std::string report;       ///< bytes the child body wrote for the parent
  std::string stderr_tail;  ///< last stderr_tail_bytes of the child's stderr
  double wall_seconds = 0.0;
};

class CaseIsolator {
 public:
  explicit CaseIsolator(IsolateLimits limits = {});

  /// Fork and run `body` in the child. The body's return value becomes the
  /// child exit code; whatever it appends to `report` is shipped back to
  /// the parent verbatim (keep it under the pipe capacity, ~64 KB). Throws
  /// std::runtime_error only on harness failures (fork/pipe).
  [[nodiscard]] IsolateResult run(
      const std::function<int(std::string& report)>& body) const;

 private:
  IsolateLimits limits_;
};

}  // namespace pacsim::fuzz
