// One chaos-soak case: the complete knob tuple the fuzzer draws, runs,
// shrinks, and persists (DESIGN.md "Chaos-soak fuzzing").
//
// A SoakCase is self-contained: every knob needed to rebuild the traffic,
// the SystemConfig, and the execution plan round-trips through the
// `key=value` text format shared with the bench CLI, so a reproducer file
// written by one campaign replays byte-identically under `bench_soak
// repro=<file>` (or inside a gtest) with no other state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/fault_injector.hpp"
#include "noc/noc_config.hpp"
#include "noc/traffic_gen.hpp"
#include "sim/system_config.hpp"

namespace pacsim::fuzz {

struct SoakCase {
  std::uint64_t id = 0;  ///< campaign ordinal; informational only

  // Topology / controller.
  CoalescerKind coalescer = CoalescerKind::kPac;
  BackendKind backend = BackendKind::kHmc;
  std::uint32_t cubes = 1;
  Topology topology = Topology::kChain;

  // Trace recipe (deterministic from these knobs alone).
  std::uint32_t cores = 4;
  std::uint32_t ops = 1000;        ///< per core
  std::uint64_t seed = 0x70AFF1CULL;
  double zipf = 0.0;
  std::uint32_t store_percent = 20;
  std::uint32_t gap_max = 8;
  /// Every Nth burst gap becomes a long drain window (0 = never). Nonzero
  /// values give the checkpoint-restore oracle quiescent epoch boundaries
  /// to snapshot at; 0 keeps the open-loop pressure unbroken.
  std::uint32_t quiesce_bursts = 0;

  // Host-side concurrency shape.
  std::uint32_t mlp = 8;           ///< per-core outstanding loads
  std::uint32_t conc = 16;         ///< controller MSHR/MAQ depth

  // Fault plan: transient rates plus a scheduled hard-failure timeline.
  double fault_rate = 0.0;
  double drop_rate = 0.0;
  double stall_rate = 0.0;
  std::uint32_t burst_length = 1;
  std::uint64_t fault_seed = 0xFA017ULL;
  std::vector<FaultEvent> timeline;
  FailPolicy fail_policy = FailPolicy::kContain;
  std::uint64_t spare_pages = 4096;

  // Execution plan the threaded / checkpoint oracles exercise.
  unsigned threads = 1;
  unsigned shards = 1;
  Cycle epoch_cycles = 4096;

  // Perturbation schedule: deterministic planted-bug hooks (PerturbConfig).
  Cycle ff_overshoot = 0;
  bool skip_timeline_clamp = false;

  /// Canonical form: timeline sorted by (cycle, kind, a, b) so the knob
  /// round-trip is order-stable. Semantically free for sampler-generated
  /// plans (distinct cycles).
  void normalize();

  [[nodiscard]] bool operator==(const SoakCase& other) const;
};

/// Every knob as `key=value` arguments, in fixed order (timeline grouped
/// into the linkdown=/linkup=/vaultdown=/cubedown= CLI event syntax).
[[nodiscard]] std::vector<std::string> to_knobs(const SoakCase& c);

/// The on-disk reproducer: a '#'-comment header (carrying `verdict`
/// verbatim when non-empty) followed by one knob per line.
[[nodiscard]] std::string to_repro_text(const SoakCase& c,
                                        const std::string& verdict = "");

/// Rebuild a case from parsed knobs (defaults fill anything absent); the
/// exact inverse of to_knobs(). Throws std::invalid_argument on malformed
/// values, like the bench CLI front-ends.
[[nodiscard]] SoakCase soak_case_from_cli(const Cli& cli);

/// write_repro: atomic temp+rename via common/atomic_file. load_repro:
/// Cli::from_file + soak_case_from_cli.
void write_repro(const std::string& path, const SoakCase& c,
                 const std::string& verdict = "");
[[nodiscard]] SoakCase load_repro(const std::string& path);

/// The traffic recipe of a case (identity-paged multi-cube front-end).
[[nodiscard]] TrafficConfig build_traffic_config(const SoakCase& c);

/// The simulator config of a case, verify=full always; the oracle runner
/// layers exec/checkpoint knobs and per-run fast-forward choices on top.
[[nodiscard]] SystemConfig build_system_config(const SoakCase& c);

}  // namespace pacsim::fuzz
