#include "fuzz/soak_case.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>
#include <tuple>

#include "common/atomic_file.hpp"

namespace pacsim::fuzz {
namespace {

/// Shortest string that parses back to exactly the same double (strtod and
/// to_chars are both correctly rounded), so repro files stay human-readable
/// without losing a single bit.
std::string fmt_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) throw std::runtime_error("fmt_double: to_chars");
  return std::string(buf, end);
}

CoalescerKind parse_coalescer_kind(const std::string& name) {
  if (name == "direct") return CoalescerKind::kDirect;
  if (name == "mshr-dmc") return CoalescerKind::kMshrDmc;
  if (name == "pac") return CoalescerKind::kPac;
  if (name == "sorting-dmc") return CoalescerKind::kSortingDmc;
  throw std::invalid_argument(
      "unknown controller '" + name +
      "' (expected direct, mshr-dmc, pac or sorting-dmc)");
}

/// One timeline event in the CLI spec syntax of its kind knob.
std::string event_spec(const FaultEvent& e) {
  std::string s = std::to_string(e.cycle) + ":" + std::to_string(e.a);
  switch (e.kind) {
    case FaultEventKind::kLinkDown:
    case FaultEventKind::kLinkUp:
      s += "-" + std::to_string(e.b);
      break;
    case FaultEventKind::kVaultDown:
      s += "." + std::to_string(e.b);
      break;
    case FaultEventKind::kCubeDown:
      break;
  }
  return s;
}

std::string event_knob(const SoakCase& c, const char* knob,
                       FaultEventKind kind) {
  std::string spec;
  for (const FaultEvent& e : c.timeline) {
    if (e.kind != kind) continue;
    if (!spec.empty()) spec += ",";
    spec += event_spec(e);
  }
  return spec.empty() ? std::string() : std::string(knob) + "=" + spec;
}

}  // namespace

void SoakCase::normalize() {
  std::sort(timeline.begin(), timeline.end(),
            [](const FaultEvent& x, const FaultEvent& y) {
              return std::tie(x.cycle, x.kind, x.a, x.b) <
                     std::tie(y.cycle, y.kind, y.a, y.b);
            });
}

bool SoakCase::operator==(const SoakCase& other) const {
  return to_knobs(*this) == to_knobs(other);
}

std::vector<std::string> to_knobs(const SoakCase& c) {
  std::vector<std::string> k;
  k.push_back("case=" + std::to_string(c.id));
  k.push_back("controller=" + std::string(to_string(c.coalescer)));
  k.push_back("backend=" + std::string(to_string(c.backend)));
  k.push_back("cubes=" + std::to_string(c.cubes));
  k.push_back("topology=" + std::string(to_string(c.topology)));
  k.push_back("cores=" + std::to_string(c.cores));
  k.push_back("ops=" + std::to_string(c.ops));
  k.push_back("seed=" + std::to_string(c.seed));
  k.push_back("zipf=" + fmt_double(c.zipf));
  k.push_back("storepct=" + std::to_string(c.store_percent));
  k.push_back("gapmax=" + std::to_string(c.gap_max));
  k.push_back("qbursts=" + std::to_string(c.quiesce_bursts));
  k.push_back("mlp=" + std::to_string(c.mlp));
  k.push_back("conc=" + std::to_string(c.conc));
  k.push_back("faultrate=" + fmt_double(c.fault_rate));
  k.push_back("faultdrop=" + fmt_double(c.drop_rate));
  k.push_back("faultstall=" + fmt_double(c.stall_rate));
  k.push_back("burstlen=" + std::to_string(c.burst_length));
  k.push_back("faultseed=" + std::to_string(c.fault_seed));
  for (const auto& [knob, kind] :
       {std::pair{"linkdown", FaultEventKind::kLinkDown},
        std::pair{"linkup", FaultEventKind::kLinkUp},
        std::pair{"vaultdown", FaultEventKind::kVaultDown},
        std::pair{"cubedown", FaultEventKind::kCubeDown}}) {
    const std::string knob_line = event_knob(c, knob, kind);
    if (!knob_line.empty()) k.push_back(knob_line);
  }
  k.push_back("failpolicy=" + std::string(to_string(c.fail_policy)));
  k.push_back("sparepages=" + std::to_string(c.spare_pages));
  k.push_back("threads=" + std::to_string(c.threads));
  k.push_back("shards=" + std::to_string(c.shards));
  k.push_back("epochlen=" + std::to_string(c.epoch_cycles));
  k.push_back("ffovershoot=" + std::to_string(c.ff_overshoot));
  k.push_back("skipclamp=" + std::to_string(c.skip_timeline_clamp ? 1 : 0));
  return k;
}

std::string to_repro_text(const SoakCase& c, const std::string& verdict) {
  std::string out =
      "# pacsim soak reproducer - replay with `bench_soak repro=<this "
      "file>`\n";
  if (!verdict.empty()) out += "# verdict: " + verdict + "\n";
  for (const std::string& knob : to_knobs(c)) out += knob + "\n";
  return out;
}

SoakCase soak_case_from_cli(const Cli& cli) {
  SoakCase c;
  c.id = cli.get_u64("case", c.id);
  c.coalescer = parse_coalescer_kind(
      cli.get("controller", std::string(to_string(c.coalescer))));
  c.backend =
      parse_backend_kind(cli.get("backend", std::string(to_string(c.backend))));
  c.cubes = static_cast<std::uint32_t>(cli.get_u64("cubes", c.cubes));
  c.topology =
      parse_topology(cli.get("topology", std::string(to_string(c.topology))));
  c.cores = static_cast<std::uint32_t>(cli.get_u64("cores", c.cores));
  c.ops = static_cast<std::uint32_t>(cli.get_u64("ops", c.ops));
  c.seed = cli.get_u64("seed", c.seed);
  c.zipf = cli.get_double("zipf", c.zipf);
  c.store_percent =
      static_cast<std::uint32_t>(cli.get_u64("storepct", c.store_percent));
  c.gap_max = static_cast<std::uint32_t>(cli.get_u64("gapmax", c.gap_max));
  c.quiesce_bursts =
      static_cast<std::uint32_t>(cli.get_u64("qbursts", c.quiesce_bursts));
  c.mlp = static_cast<std::uint32_t>(cli.get_u64("mlp", c.mlp));
  c.conc = static_cast<std::uint32_t>(cli.get_u64("conc", c.conc));
  c.fault_rate = cli.get_double("faultrate", c.fault_rate);
  c.drop_rate = cli.get_double("faultdrop", c.drop_rate);
  c.stall_rate = cli.get_double("faultstall", c.stall_rate);
  c.burst_length =
      static_cast<std::uint32_t>(cli.get_u64("burstlen", c.burst_length));
  c.fault_seed = cli.get_u64("faultseed", c.fault_seed);
  for (const auto& [knob, kind] :
       {std::pair{"linkdown", FaultEventKind::kLinkDown},
        std::pair{"linkup", FaultEventKind::kLinkUp},
        std::pair{"vaultdown", FaultEventKind::kVaultDown},
        std::pair{"cubedown", FaultEventKind::kCubeDown}}) {
    const std::string spec = cli.get(knob, "");
    if (spec.empty()) continue;
    const std::vector<FaultEvent> events = parse_fault_events(knob, kind, spec);
    c.timeline.insert(c.timeline.end(), events.begin(), events.end());
  }
  c.fail_policy = parse_fail_policy(
      cli.get("failpolicy", std::string(to_string(c.fail_policy))));
  c.spare_pages = cli.get_u64("sparepages", c.spare_pages);
  c.threads = static_cast<unsigned>(cli.get_u64("threads", c.threads));
  c.shards = static_cast<unsigned>(cli.get_u64("shards", c.shards));
  c.epoch_cycles = cli.get_u64("epochlen", c.epoch_cycles);
  c.ff_overshoot = cli.get_u64("ffovershoot", c.ff_overshoot);
  c.skip_timeline_clamp = cli.get_u64("skipclamp", 0) != 0;
  c.normalize();
  return c;
}

void write_repro(const std::string& path, const SoakCase& c,
                 const std::string& verdict) {
  write_file_atomic(path, to_repro_text(c, verdict));
}

SoakCase load_repro(const std::string& path) {
  return soak_case_from_cli(Cli::from_file(path));
}

TrafficConfig build_traffic_config(const SoakCase& c) {
  TrafficConfig t;
  t.cubes = c.cubes;
  t.zipf = c.zipf;
  t.seed = c.seed;
  t.num_cores = c.cores;
  t.ops_per_core = c.ops;
  t.store_percent = c.store_percent;
  t.gap_max_cycles = c.gap_max;
  t.quiesce_every_bursts = c.quiesce_bursts;
  // The cube address window must match the backend the case drives.
  const SystemConfig cfg = build_system_config(c);
  switch (c.backend) {
    case BackendKind::kHmc: t.cube_capacity_bytes = cfg.hmc.map.capacity_bytes;
      break;
    case BackendKind::kHbm: t.cube_capacity_bytes = cfg.hbm.map.capacity_bytes;
      break;
    case BackendKind::kDdr: t.cube_capacity_bytes = cfg.ddr.map.capacity_bytes;
      break;
  }
  return t;
}

SystemConfig build_system_config(const SoakCase& c) {
  SystemConfig cfg;
  cfg.coalescer = c.coalescer;
  cfg.backend = c.backend;
  cfg.num_cores = c.cores;
  cfg.identity_paging = true;  // cube bits must survive translation
  cfg.max_outstanding_loads = c.mlp;
  cfg.noc.cubes = c.cubes;
  cfg.noc.topology = c.topology;
  cfg.fault.link_error_rate = c.fault_rate;
  cfg.fault.response_drop_rate = c.drop_rate;
  cfg.fault.vault_stall_rate = c.stall_rate;
  cfg.fault.burst_length = c.burst_length;
  cfg.fault.seed = c.fault_seed;
  cfg.fault.timeline = c.timeline;
  cfg.fault.fail_policy = c.fail_policy;
  cfg.fault.spare_pages = c.spare_pages;
  cfg.pac.maq_entries = c.conc;
  cfg.pac.num_mshrs = c.conc;
  cfg.mshr_dmc.num_mshrs = c.conc;
  cfg.direct.max_outstanding = c.conc;
  cfg.sorting_dmc.max_outstanding = c.conc;
  cfg.miss_queue_entries = std::max(cfg.miss_queue_entries, c.conc);
  // Every oracle run is fully verified; violations surface as exceptions.
  cfg.verify.level = VerifyLevel::kFull;
  // Soak traces are small; anything that runs this long is a wedge, and the
  // watchdog turns it into a deterministic in-process hang verdict.
  cfg.max_cycles = 20'000'000;
  cfg.perturb.ff_overshoot = c.ff_overshoot;
  cfg.perturb.skip_timeline_clamp = c.skip_timeline_clamp;
  return cfg;
}

}  // namespace pacsim::fuzz
