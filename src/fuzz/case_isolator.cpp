#include "fuzz/case_isolator.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

// Sanitizers reserve huge virtual address ranges up front; an RLIMIT_AS cap
// would kill every child at startup, so the limit is compiled out.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PACSIM_SANITIZER_BUILD 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PACSIM_SANITIZER_BUILD 1
#endif
#endif

namespace pacsim::fuzz {
namespace {

void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // parent gone; nothing useful left to do in the child
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

void apply_limits(const IsolateLimits& limits) {
  if (limits.cpu_seconds > 0) {
    rlimit rl{limits.cpu_seconds, limits.cpu_seconds + 2};
    ::setrlimit(RLIMIT_CPU, &rl);
  }
#if !defined(PACSIM_SANITIZER_BUILD)
  if (limits.address_space_bytes > 0) {
    rlimit rl{static_cast<rlim_t>(limits.address_space_bytes),
              static_cast<rlim_t>(limits.address_space_bytes)};
    ::setrlimit(RLIMIT_AS, &rl);
  }
#endif
}

/// Drain whatever is currently readable from a nonblocking fd.
void drain_pipe(int fd, std::string* out) {
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out->append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // 0 = EOF, EAGAIN = nothing more right now
  }
}

}  // namespace

CaseIsolator::CaseIsolator(IsolateLimits limits) : limits_(limits) {}

IsolateResult CaseIsolator::run(
    const std::function<int(std::string& report)>& body) const {
  int report_pipe[2];
  if (::pipe(report_pipe) != 0) {
    throw std::runtime_error("CaseIsolator: pipe() failed: " +
                             std::string(std::strerror(errno)));
  }
  // Unlinked temp file shared by fd: the child's stderr lands here and the
  // parent reads the tail back after the child is gone.
  std::FILE* err_file = std::tmpfile();

  // Flush stdio before forking so buffered output is not emitted twice.
  std::fflush(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(report_pipe[0]);
    ::close(report_pipe[1]);
    if (err_file != nullptr) std::fclose(err_file);
    throw std::runtime_error("CaseIsolator: fork() failed: " +
                             std::string(std::strerror(errno)));
  }

  if (pid == 0) {
    // --- child ---
    ::close(report_pipe[0]);
    if (err_file != nullptr) ::dup2(::fileno(err_file), STDERR_FILENO);
    apply_limits(limits_);
    int code = 125;  // harness sentinel: body threw out of the child
    std::string report;
    try {
      code = body(report);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[isolator] child body threw: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "[isolator] child body threw (non-std)\n");
    }
    write_all(report_pipe[1], report.data(), report.size());
    ::close(report_pipe[1]);
    std::fflush(nullptr);
    ::_exit(code & 0xFF);
  }

  // --- parent ---
  ::close(report_pipe[1]);
  const int flags = ::fcntl(report_pipe[0], F_GETFL, 0);
  ::fcntl(report_pipe[0], F_SETFL, flags | O_NONBLOCK);

  IsolateResult res;
  const auto start = std::chrono::steady_clock::now();
  int status = 0;
  bool reaped = false;
  while (!reaped) {
    // Keep the pipe drained so a chatty child never blocks on a full pipe.
    drain_pipe(report_pipe[0], &res.report);
    const pid_t w = ::waitpid(pid, &status, WNOHANG);
    if (w == pid) {
      reaped = true;
      break;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (elapsed > limits_.wall_seconds) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, &status, 0);
      res.status = IsolateResult::Status::kTimedOut;
      reaped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  drain_pipe(report_pipe[0], &res.report);
  ::close(report_pipe[0]);
  res.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (res.status != IsolateResult::Status::kTimedOut) {
    if (WIFEXITED(status)) {
      res.status = IsolateResult::Status::kExited;
      res.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      res.status = IsolateResult::Status::kSignaled;
      res.term_signal = WTERMSIG(status);
    }
  }

  if (err_file != nullptr) {
    std::fflush(err_file);
    const long size = [&] {
      std::fseek(err_file, 0, SEEK_END);
      return std::ftell(err_file);
    }();
    const long tail = static_cast<long>(limits_.stderr_tail_bytes);
    const long from = size > tail ? size - tail : 0;
    if (size > 0) {
      std::fseek(err_file, from, SEEK_SET);
      res.stderr_tail.resize(static_cast<std::size_t>(size - from));
      const std::size_t got = std::fread(res.stderr_tail.data(), 1,
                                         res.stderr_tail.size(), err_file);
      res.stderr_tail.resize(got);
    }
    std::fclose(err_file);
  }
  return res;
}

}  // namespace pacsim::fuzz
