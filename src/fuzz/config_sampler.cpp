#include "fuzz/config_sampler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace pacsim::fuzz {
namespace {

template <typename T>
const T& pick(Rng& rng, const std::vector<T>& domain) {
  if (domain.empty()) throw std::logic_error("ConfigSampler: empty domain");
  return domain[rng.below(domain.size())];
}

constexpr std::uint32_t kHmcVaults = 32;  // AddressMapConfig::num_vaults

}  // namespace

ConfigSampler::ConfigSampler(std::uint64_t campaign_seed, KnobDomains domains,
                             PerturbPlan plant)
    : campaign_seed_(campaign_seed),
      domains_(std::move(domains)),
      plant_(plant) {}

SoakCase ConfigSampler::sample(std::uint64_t case_id) const {
  // Per-case stream: hash (campaign seed, id) so neighbouring ids do not
  // share xoshiro prefixes and sampling stays order-independent.
  Rng rng(fnv1a(&case_id, sizeof(case_id), campaign_seed_));
  const KnobDomains& d = domains_;

  SoakCase c;
  c.id = case_id;
  c.coalescer = pick(rng, d.controllers);
  c.backend = pick(rng, d.backends);
  c.cubes = pick(rng, d.cube_counts);
  c.topology = c.cubes >= 2 && rng.below(2) == 1 ? Topology::kMesh
                                                 : Topology::kChain;
  c.cores = pick(rng, d.core_counts);
  c.ops = pick(rng, d.ops_values);
  c.seed = rng.next();
  c.zipf = pick(rng, d.zipf_values);
  c.store_percent = pick(rng, d.store_pcts);
  c.gap_max = pick(rng, d.gap_maxes);
  c.quiesce_bursts = pick(rng, d.quiesce_burst_counts);
  c.mlp = pick(rng, d.mlps);
  c.conc = pick(rng, d.concs);

  c.fault_rate = pick(rng, d.rates);
  c.drop_rate = pick(rng, d.rates);
  c.stall_rate = pick(rng, d.rates);
  c.burst_length = pick(rng, d.burst_lengths);
  c.fault_seed = rng.next();

  // Scheduled hard failures only make sense on a multi-cube fabric; draw
  // distinct cycles so the plan stays canonical under normalize().
  if (c.cubes >= 2 && rng.uniform() < d.timeline_probability) {
    const std::uint32_t n =
        1 + static_cast<std::uint32_t>(rng.below(d.max_timeline_events));
    std::vector<Cycle> cycles;
    while (cycles.size() < n) {
      const Cycle span = d.timeline_max_cycle - d.timeline_min_cycle + 1;
      Cycle cyc = d.timeline_min_cycle + rng.below(span);
      while (std::find(cycles.begin(), cycles.end(), cyc) != cycles.end()) {
        ++cyc;  // nudge collisions: cycles must be distinct
      }
      cycles.push_back(cyc);
    }
    for (const Cycle cyc : cycles) {
      FaultEvent e;
      e.cycle = cyc;
      // Vault deaths are an HMC notion; the other kinds apply everywhere.
      const std::uint64_t kinds = c.backend == BackendKind::kHmc ? 4 : 3;
      switch (rng.below(kinds)) {
        case 0:
        case 1: {
          // Adjacent pair: always a real chain link, and on the mesh a
          // non-edge down/up is a legal no-op that still soaks the
          // timeline machinery.
          e.kind = rng.below(2) == 0 ? FaultEventKind::kLinkDown
                                     : FaultEventKind::kLinkUp;
          e.a = static_cast<std::uint32_t>(rng.below(c.cubes - 1));
          e.b = e.a + 1;
          break;
        }
        case 2:
          e.kind = FaultEventKind::kCubeDown;
          e.a = static_cast<std::uint32_t>(rng.below(c.cubes));
          break;
        default:
          e.kind = FaultEventKind::kVaultDown;
          e.a = static_cast<std::uint32_t>(rng.below(c.cubes));
          e.b = static_cast<std::uint32_t>(rng.below(kHmcVaults));
          break;
      }
      c.timeline.push_back(e);
    }
  }
  // Scheduled hardware death under abort would (correctly) kill the run -
  // a soak case must only abort when the simulator is actually broken.
  c.fail_policy = c.timeline.empty() && rng.below(2) == 0
                      ? FailPolicy::kAbort
                      : FailPolicy::kContain;

  // Execution plan: shards need at least one core each; extra threads
  // beyond the shard count add nothing.
  std::vector<unsigned> shard_domain;
  for (const unsigned s : d.shard_counts) {
    if (s <= c.cores) shard_domain.push_back(s);
  }
  c.shards = shard_domain.empty() ? 1 : pick(rng, shard_domain);
  std::vector<unsigned> thread_domain;
  for (const unsigned t : d.thread_counts) {
    if (t <= c.shards) thread_domain.push_back(t);
  }
  c.threads = thread_domain.empty() ? 1 : pick(rng, thread_domain);
  c.epoch_cycles = pick(rng, d.epoch_lens);

  c.ff_overshoot = plant_.ff_overshoot;
  c.skip_timeline_clamp = plant_.skip_timeline_clamp;

  c.normalize();
  return c;
}

}  // namespace pacsim::fuzz
