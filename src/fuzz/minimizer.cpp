#include "fuzz/minimizer.hpp"

#include <utility>

namespace pacsim::fuzz {
namespace {

/// True when every timeline event's operands stay valid with `cubes`.
bool timeline_fits(const SoakCase& c, std::uint32_t cubes) {
  for (const FaultEvent& e : c.timeline) {
    switch (e.kind) {
      case FaultEventKind::kLinkDown:
      case FaultEventKind::kLinkUp:
        if (e.a >= cubes || e.b >= cubes) return false;
        break;
      case FaultEventKind::kVaultDown:
      case FaultEventKind::kCubeDown:
        if (e.a >= cubes) return false;
        break;
    }
  }
  return true;
}

}  // namespace

Minimizer::Minimizer(std::function<bool(const SoakCase&)> still_fails,
                     MinimizeOptions opts)
    : still_fails_(std::move(still_fails)), opts_(opts) {}

MinimizeResult Minimizer::minimize(const SoakCase& failing) const {
  MinimizeResult r;
  r.best = failing;
  r.best.normalize();

  // Try one candidate; adopt it if it still fails. Returns true on adopt.
  const auto attempt = [&](SoakCase cand) {
    cand.normalize();
    if (cand == r.best) return false;
    if (r.evals >= opts_.max_evals) return false;
    ++r.evals;
    if (!still_fails_(cand)) return false;
    r.best = std::move(cand);
    ++r.shrinks;
    return true;
  };
  const auto budget_left = [&] { return r.evals < opts_.max_evals; };

  bool progress = true;
  while (progress && budget_left()) {
    progress = false;

    // Trace size dominates replay time: shrink it first, repeatedly.
    while (budget_left() && r.best.ops / 2 >= opts_.min_ops) {
      SoakCase cand = r.best;
      cand.ops /= 2;
      if (!attempt(std::move(cand))) break;
      progress = true;
    }
    while (budget_left() && r.best.cores > 1) {
      SoakCase cand = r.best;
      cand.cores /= 2;
      // Shrinking cores can invalidate the execution plan.
      if (cand.shards > cand.cores) cand.shards = cand.cores;
      if (cand.threads > cand.shards) cand.threads = cand.shards;
      if (!attempt(std::move(cand))) break;
      progress = true;
    }

    // Drop timeline events one at a time (classic ddmin granularity 1 -
    // plans here are at most a handful of events).
    for (std::size_t i = 0; budget_left() && i < r.best.timeline.size();) {
      SoakCase cand = r.best;
      cand.timeline.erase(cand.timeline.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (attempt(std::move(cand))) {
        progress = true;  // same index now names the next event
      } else {
        ++i;
      }
    }

    // Zero each transient-fault knob independently.
    for (double SoakCase::* rate :
         {&SoakCase::fault_rate, &SoakCase::drop_rate, &SoakCase::stall_rate}) {
      if (!budget_left() || r.best.*rate == 0.0) continue;
      SoakCase cand = r.best;
      cand.*rate = 0.0;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.burst_length != 1) {
      SoakCase cand = r.best;
      cand.burst_length = 1;
      progress |= attempt(std::move(cand));
    }

    // Collapse the execution plan toward the classic serial path.
    if (budget_left() && r.best.threads != 1) {
      SoakCase cand = r.best;
      cand.threads = 1;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.shards != 1) {
      SoakCase cand = r.best;
      cand.shards = 1;
      cand.threads = 1;
      progress |= attempt(std::move(cand));
    }

    // Step the fabric down; skip any shrink that orphans a timeline
    // operand.
    if (budget_left() && r.best.cubes > 1) {
      const std::uint32_t next = r.best.cubes / 2;
      if (timeline_fits(r.best, next)) {
        SoakCase cand = r.best;
        cand.cubes = next;
        if (next < 2) cand.topology = Topology::kChain;
        progress |= attempt(std::move(cand));
      }
    }
    if (budget_left() && r.best.topology == Topology::kMesh) {
      SoakCase cand = r.best;
      cand.topology = Topology::kChain;
      progress |= attempt(std::move(cand));
    }

    // Simplify the traffic shape and concurrency knobs.
    if (budget_left() && r.best.zipf != 0.0) {
      SoakCase cand = r.best;
      cand.zipf = 0.0;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.store_percent != 0) {
      SoakCase cand = r.best;
      cand.store_percent = 0;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.quiesce_bursts != 0) {
      SoakCase cand = r.best;
      cand.quiesce_bursts = 0;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.mlp != 8) {
      SoakCase cand = r.best;
      cand.mlp = 8;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.conc != 16) {
      SoakCase cand = r.best;
      cand.conc = 16;
      progress |= attempt(std::move(cand));
    }

    // Perturbation knobs last: if the failure survives without the planted
    // bug, the planted bug was not the cause.
    if (budget_left() && r.best.ff_overshoot != 0) {
      SoakCase cand = r.best;
      cand.ff_overshoot = 0;
      progress |= attempt(std::move(cand));
    }
    if (budget_left() && r.best.skip_timeline_clamp) {
      SoakCase cand = r.best;
      cand.skip_timeline_clamp = false;
      progress |= attempt(std::move(cand));
    }
  }
  return r;
}

}  // namespace pacsim::fuzz
