// Differential oracle execution for one soak case (DESIGN.md "Chaos-soak
// fuzzing", oracle matrix).
//
// A case is executed up to five ways, all under verify=full, and every pair
// that must agree is compared on the byte-identical run report (host-side
// wall-clock blocks excluded, the same idiom as the differential tests):
//
//   naive                fast-forward off, classic single-System path
//   ff                   fast-forward on                  == naive
//   sharded serial       shards=S threads=1 + checkpoints == ff (when S==1)
//   threaded             shards=S threads=T               == sharded serial
//   restored             resume from a mid-run snapshot   == sharded serial
//
// Outcomes classify as clean / divergence / invariant violation / crash /
// hang; in-process hangs surface deterministically via the max_cycles and
// verifier no-progress watchdogs (wall-clock wedges are the CaseIsolator's
// job).
#pragma once

#include <cstdint>
#include <string>

#include "fuzz/soak_case.hpp"

namespace pacsim::fuzz {

enum class SoakClass : std::uint8_t {
  kClean = 0,
  kDivergence,   ///< two execution modes disagree on the report
  kViolation,    ///< the verifier's invariant ledger fired
  kCrash,        ///< any other exception (or child death in the isolator)
  kHang,         ///< watchdog expiry (in-process or wall-clock)
};

[[nodiscard]] const char* to_string(SoakClass cls);
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] SoakClass parse_soak_class(const std::string& name);

struct Verdict {
  SoakClass cls = SoakClass::kClean;
  std::string oracle;  ///< which oracle flagged (e.g. "ff-vs-naive")
  std::string detail;  ///< first differing report line / exception text
  unsigned oracles_checked = 0;  ///< differential comparisons performed
  unsigned oracles_skipped = 0;  ///< e.g. no quiescent snapshot to restore

  [[nodiscard]] bool failed() const { return cls != SoakClass::kClean; }
  /// Line-oriented serialization for the isolator's report pipe.
  [[nodiscard]] std::string text() const;
  [[nodiscard]] static Verdict parse(const std::string& text);
};

struct OracleOptions {
  /// Scratch root for this case's checkpoints and verifier forensics;
  /// recreated fresh per run, removed again on a clean verdict.
  std::string workdir = "pacsim-soak-scratch";
  /// Keep the scratch directory even when the case is clean.
  bool keep_artifacts = false;
  /// Narrate each oracle run to stderr (repro replay mode).
  bool verbose = false;
};

class OracleRunner {
 public:
  explicit OracleRunner(OracleOptions opts);

  [[nodiscard]] Verdict run(const SoakCase& c) const;

 private:
  OracleOptions opts_;
};

}  // namespace pacsim::fuzz
