#include "fuzz/oracle_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/verifier.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace pacsim::fuzz {
namespace {

namespace fs = std::filesystem;

/// Classify an exception thrown by a run. Watchdog expiries (max_cycles,
/// verifier no-progress, sweep cancellation) are hangs; any other verifier
/// violation is an invariant failure; everything else is a crash.
SoakClass classify(const std::exception& e, bool is_violation) {
  const std::string what = e.what();
  if (what.find("watchdog") != std::string::npos ||
      what.find("no lifecycle event") != std::string::npos ||
      what.find("max_cycles") != std::string::npos ||
      what.find("cancelled") != std::string::npos) {
    return SoakClass::kHang;
  }
  return is_violation ? SoakClass::kViolation : SoakClass::kCrash;
}

/// First line where two reports disagree, quoted from both sides.
std::string first_diff(const std::string& a, const std::string& b) {
  std::istringstream sa(a);
  std::istringstream sb(b);
  std::string la;
  std::string lb;
  std::size_t line = 0;
  while (true) {
    ++line;
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "reports identical";  // caller compared unequal?
    if (!ga || !gb || la != lb) {
      auto trim = [](std::string s) {
        const auto f = s.find_first_not_of(" \t");
        return f == std::string::npos ? std::string("<eof>") : s.substr(f);
      };
      return "report line " + std::to_string(line) + ": '" +
             (ga ? trim(la) : "<eof>") + "' vs '" + (gb ? trim(lb) : "<eof>") +
             "'";
    }
  }
}

std::vector<std::string> snapshots_in(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".pacsnap") out.push_back(e.path().string());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    // ckpt-<cycle>.pacsnap: numeric cycle order, not lexicographic.
    auto cycle = [](const std::string& p) {
      const auto base = fs::path(p).stem().string();
      return std::stoull(base.substr(base.find('-') + 1));
    };
    return cycle(a) < cycle(b);
  });
  return out;
}

std::string escape_lines(const std::string& s) {
  std::string out;
  for (const char ch : s) {
    if (ch == '\n') {
      out += "\\n";
    } else if (ch != '\r') {
      out += ch;
    }
  }
  return out;
}

}  // namespace

const char* to_string(SoakClass cls) {
  switch (cls) {
    case SoakClass::kClean: return "clean";
    case SoakClass::kDivergence: return "divergence";
    case SoakClass::kViolation: return "violation";
    case SoakClass::kCrash: return "crash";
    case SoakClass::kHang: return "hang";
  }
  return "?";
}

SoakClass parse_soak_class(const std::string& name) {
  for (const SoakClass cls :
       {SoakClass::kClean, SoakClass::kDivergence, SoakClass::kViolation,
        SoakClass::kCrash, SoakClass::kHang}) {
    if (name == to_string(cls)) return cls;
  }
  throw std::invalid_argument("unknown soak class '" + name + "'");
}

std::string Verdict::text() const {
  std::string out;
  out += "class=" + std::string(to_string(cls)) + "\n";
  out += "oracle=" + escape_lines(oracle) + "\n";
  out += "detail=" + escape_lines(detail) + "\n";
  out += "checked=" + std::to_string(oracles_checked) + "\n";
  out += "skipped=" + std::to_string(oracles_skipped) + "\n";
  return out;
}

Verdict Verdict::parse(const std::string& text) {
  Verdict v;
  std::istringstream in(text);
  std::string line;
  bool saw_class = false;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "class") {
      v.cls = parse_soak_class(value);
      saw_class = true;
    } else if (key == "oracle") {
      v.oracle = value;
    } else if (key == "detail") {
      v.detail = value;
    } else if (key == "checked") {
      v.oracles_checked = static_cast<unsigned>(std::stoul(value));
    } else if (key == "skipped") {
      v.oracles_skipped = static_cast<unsigned>(std::stoul(value));
    }
  }
  if (!saw_class) {
    throw std::invalid_argument("Verdict::parse: no 'class=' line");
  }
  return v;
}

OracleRunner::OracleRunner(OracleOptions opts) : opts_(std::move(opts)) {}

Verdict OracleRunner::run(const SoakCase& c) const {
  Verdict v;
  const std::string workdir = opts_.workdir;
  // Fresh scratch: stale snapshots from a previous (differently-shaped)
  // case would poison the restore oracle's snapshot pick.
  fs::remove_all(workdir);
  fs::create_directories(workdir);

  SystemConfig base = build_system_config(c);
  base.verify.forensics_dir = workdir + "/forensics";

  const auto narrate = [&](const char* mode) {
    if (opts_.verbose) {
      std::fprintf(stderr, "[soak] case %llu: running %s ...\n",
                   static_cast<unsigned long long>(c.id), mode);
    }
  };

  // One execution mode; returns false (with the verdict filled in) when the
  // run itself fails. `digest` is the byte-comparable report.
  const auto attempt = [&](const char* mode, const SystemConfig& cfg,
                           const std::vector<Trace>& traces,
                           std::string* digest) {
    narrate(mode);
    try {
      const RunResult r = simulate(cfg, traces);
      *digest = run_report_json("soak", cfg.coalescer, r,
                                /*include_throughput=*/false);
      return true;
    } catch (const VerificationError& e) {
      v.cls = classify(e, /*is_violation=*/true);
      v.oracle = std::string("run:") + mode;
      v.detail = e.what();
      if (!e.forensics_path().empty()) {
        v.detail += " [forensics: " + e.forensics_path() + "]";
      }
    } catch (const std::exception& e) {
      v.cls = classify(e, /*is_violation=*/false);
      v.oracle = std::string("run:") + mode;
      v.detail = e.what();
    }
    return false;
  };

  std::vector<Trace> traces;
  try {
    traces = generate_traffic(build_traffic_config(c));
  } catch (const std::exception& e) {
    v.cls = SoakClass::kCrash;
    v.oracle = "traffic-gen";
    v.detail = e.what();
    return v;
  }

  const auto diverged = [&](const char* oracle, const std::string& got,
                            const std::string& want) {
    ++v.oracles_checked;
    if (got == want) return false;
    v.cls = SoakClass::kDivergence;
    v.oracle = oracle;
    v.detail = first_diff(got, want);
    return true;
  };

  // Reference: the naive per-cycle loop, classic single-System path.
  SystemConfig naive_cfg = base;
  naive_cfg.enable_fast_forward = false;
  std::string d_naive;
  if (!attempt("naive", naive_cfg, traces, &d_naive)) return v;

  // Oracle 1: event-horizon fast-forward must be bit-identical.
  SystemConfig ff_cfg = base;
  ff_cfg.enable_fast_forward = true;
  std::string d_ff;
  if (!attempt("ff", ff_cfg, traces, &d_ff)) return v;
  if (diverged("ff-vs-naive", d_ff, d_naive)) return v;

  // Sharded serial run, writing quiescent-point snapshots: the reference
  // side of the threaded and restore oracles (and, at shards=1, one more
  // differential against the classic path).
  SystemConfig shard_cfg = base;
  shard_cfg.exec.shards = c.shards;
  shard_cfg.exec.threads = 1;
  shard_cfg.exec.epoch_cycles = c.epoch_cycles;
  shard_cfg.exec.checkpoint_dir = workdir + "/ckpt";
  std::string d_shard;
  if (!attempt("sharded-serial", shard_cfg, traces, &d_shard)) return v;
  if (c.shards == 1 && diverged("sharded-vs-classic", d_shard, d_ff)) {
    return v;
  }

  // Oracle 2: worker-thread count must not change the merged report.
  if (c.threads > 1) {
    SystemConfig thr_cfg = shard_cfg;
    thr_cfg.exec.checkpoint_dir.clear();
    thr_cfg.exec.threads = c.threads;
    std::string d_thr;
    if (!attempt("threaded", thr_cfg, traces, &d_thr)) return v;
    if (diverged("threaded-vs-serial", d_thr, d_shard)) return v;
  }

  // Oracle 3: a split run through a mid-trace snapshot must land on the
  // byte-identical final report. Skipped (and counted) when no epoch
  // boundary was quiescent enough to snapshot.
  const std::vector<std::string> snaps = snapshots_in(shard_cfg.exec.checkpoint_dir);
  if (snaps.empty()) {
    ++v.oracles_skipped;
  } else {
    SystemConfig res_cfg = shard_cfg;
    res_cfg.exec.checkpoint_dir.clear();
    res_cfg.exec.restore_path = snaps[snaps.size() / 2];
    std::string d_res;
    if (!attempt("restored", res_cfg, traces, &d_res)) return v;
    if (diverged("checkpoint-restore", d_res, d_shard)) return v;
  }

  if (!opts_.keep_artifacts) fs::remove_all(workdir);
  return v;
}

}  // namespace pacsim::fuzz
