// Delta-debugging reproducer minimization (DESIGN.md "Chaos-soak
// fuzzing").
//
// Given a failing SoakCase and a `still_fails` predicate (in the campaign:
// an isolated oracle re-run that must reproduce the same failure class),
// the minimizer greedily applies shrinking transformations - halve the
// trace, drop timeline events one at a time, zero each transient rate,
// collapse the execution plan, step the fabric down - accepting any
// candidate that still fails, and repeats to a fixpoint or until the
// evaluation budget runs out. The result is the small, human-readable case
// that lands in the repro file.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/soak_case.hpp"

namespace pacsim::fuzz {

struct MinimizeOptions {
  /// Predicate-evaluation budget; each evaluation re-runs the oracles.
  unsigned max_evals = 64;
  /// Never shrink the per-core trace below this (a case needs enough ops
  /// to reach its interesting state at all).
  std::uint32_t min_ops = 100;
};

struct MinimizeResult {
  SoakCase best;
  unsigned evals = 0;    ///< predicate evaluations spent
  unsigned shrinks = 0;  ///< accepted (still-failing) candidates
};

class Minimizer {
 public:
  Minimizer(std::function<bool(const SoakCase&)> still_fails,
            MinimizeOptions opts = {});

  /// `failing` must satisfy the predicate already (it is not re-checked).
  [[nodiscard]] MinimizeResult minimize(const SoakCase& failing) const;

 private:
  std::function<bool(const SoakCase&)> still_fails_;
  MinimizeOptions opts_;
};

}  // namespace pacsim::fuzz
