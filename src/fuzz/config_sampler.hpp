// Seeded random sampling of valid SoakCases from a declarative knob-domain
// table (DESIGN.md "Chaos-soak fuzzing").
//
// The sampler is the campaign's only source of randomness, and it is
// stateless per case: case i is drawn from an RNG seeded by
// (campaign seed, i) alone, so sampling is order-independent - parallel
// campaigns, replays, and resumed sweeps all see the identical case list.
// Validity constraints (timeline operands inside the sampled cube count,
// shards bounded by cores, failpolicy=contain whenever scheduled hardware
// death is in play, vault events only on the backend that has vaults) are
// enforced here so every sampled case is a *legal* configuration - the
// fuzzer hunts simulator bugs, not CLI validation errors.
#pragma once

#include <cstdint>
#include <vector>

#include "fuzz/soak_case.hpp"

namespace pacsim::fuzz {

/// The per-knob value domains a campaign draws from. Defaults cover the
/// full supported cross-product at soak-friendly trace sizes; quick() is
/// the CI smoke variant (smaller traces, same shape coverage).
struct KnobDomains {
  std::vector<CoalescerKind> controllers{
      CoalescerKind::kDirect, CoalescerKind::kMshrDmc, CoalescerKind::kPac,
      CoalescerKind::kSortingDmc};
  std::vector<BackendKind> backends{BackendKind::kHmc, BackendKind::kHbm,
                                    BackendKind::kDdr};
  std::vector<std::uint32_t> cube_counts{1, 2, 4, 8};
  std::vector<std::uint32_t> core_counts{1, 2, 4, 8};
  std::vector<std::uint32_t> ops_values{200, 400, 800, 1500, 3000};
  std::vector<double> zipf_values{0.0, 0.6, 1.2};
  std::vector<std::uint32_t> store_pcts{0, 20, 50};
  std::vector<std::uint32_t> gap_maxes{2, 8, 32};
  /// Quiescent-window cadence (bursts between long drain gaps; 0 = none).
  /// Nonzero draws keep the checkpoint-restore oracle alive: without drain
  /// windows no epoch boundary is quiescent and restores are always
  /// skipped.
  std::vector<std::uint32_t> quiesce_burst_counts{0, 0, 4, 16};
  std::vector<std::uint32_t> mlps{4, 8, 32};
  std::vector<std::uint32_t> concs{8, 16, 32};
  /// Transient fault rates; 0 keeps the stochastic model off for the case.
  std::vector<double> rates{0.0, 0.0, 0.002, 0.01};
  std::vector<std::uint32_t> burst_lengths{1, 4};
  std::vector<unsigned> shard_counts{1, 2, 4};
  std::vector<unsigned> thread_counts{1, 2, 4};
  std::vector<Cycle> epoch_lens{1024, 4096, 32768};

  /// P(a multi-cube case gets a scheduled hard-failure timeline).
  double timeline_probability = 0.5;
  std::uint32_t max_timeline_events = 3;
  /// Scheduled cycles are drawn distinct in [min, max]; events past the
  /// end of a short run simply never fire (legal, still soaks the clamp).
  Cycle timeline_min_cycle = 1'000;
  Cycle timeline_max_cycle = 16'000;

  [[nodiscard]] static KnobDomains defaults() { return {}; }
  /// CI smoke cell: smaller traces, the rest of the space intact.
  [[nodiscard]] static KnobDomains quick() {
    KnobDomains d;
    d.ops_values = {200, 400, 800};
    return d;
  }
};

/// Deterministic perturbation schedule applied to every sampled case: the
/// planted-bug knobs the acceptance tests use to prove the oracles bite.
struct PerturbPlan {
  Cycle ff_overshoot = 0;
  bool skip_timeline_clamp = false;
};

class ConfigSampler {
 public:
  explicit ConfigSampler(std::uint64_t campaign_seed,
                         KnobDomains domains = KnobDomains::defaults(),
                         PerturbPlan plant = {});

  /// Draw case `case_id` (deterministic, order-independent).
  [[nodiscard]] SoakCase sample(std::uint64_t case_id) const;

 private:
  std::uint64_t campaign_seed_;
  KnobDomains domains_;
  PerturbPlan plant_;
};

}  // namespace pacsim::fuzz
