// The Paged Adaptive Coalescer: the paper's primary contribution.
//
// Sits between the LLC miss/write-back queues and the memory device and
// wires together the three-stage pipelined coalescing network, the memory
// access queue (MAQ), the adaptive MSHRs and the network-controller bypass
// (paper Fig. 3 / Fig. 4).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fixed_queue.hpp"
#include "hmc/device_port.hpp"
#include "pac/adaptive_mshr.hpp"
#include "pac/blockmap_decoder.hpp"
#include "pac/coalescer.hpp"
#include "pac/coalescing_table.hpp"
#include "pac/pac_config.hpp"
#include "pac/pac_stats.hpp"
#include "pac/request_aggregator.hpp"
#include "pac/request_assembler.hpp"

namespace pacsim {

class Pac final : public Coalescer, private MaqSink {
 public:
  Pac(const PacConfig& cfg, DevicePort* device);

  bool accept(const MemRequest& request, Cycle now) override;
  void tick(Cycle now) override;
  void complete(const DeviceResponse& response, Cycle now) override;
  void drain_satisfied_into(std::vector<std::uint64_t>& out) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  void fast_forward_to(Cycle target) override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] const CoalescerStats& stats() const override {
    return stats_.base;
  }
  [[nodiscard]] std::string debug_json() const override;

  /// Quiescent-point state: statistics, the device-id allocator, the MAQ
  /// fill-latency ring, and the occupancy-sample / tick clocks. All pipeline
  /// stages, the MAQ and the MSHRs are empty at a quiescent point (idle()).
  void checkpoint_save(BinWriter& w) const override;
  void checkpoint_load(BinReader& r) override;

  [[nodiscard]] const PacStats& pac_stats() const { return stats_; }
  [[nodiscard]] const PacConfig& config() const { return cfg_; }
  [[nodiscard]] const AdaptiveMshrFile& mshrs() const { return mshrs_; }
  [[nodiscard]] const RequestAggregator& aggregator() const {
    return aggregator_;
  }
  [[nodiscard]] bool bypass_active() const { return bypass_active_; }
  [[nodiscard]] bool fence_draining() const { return fence_draining_; }
  /// A C=0 single request parked waiting for MAQ space (tests/diagnostics).
  [[nodiscard]] bool has_pending_c0() const {
    return pending_c0_.has_value();
  }

 private:
  // MaqSink: merge-on-insertion against the adaptive MSHRs (section 3.2:
  // MAQ entries are "simultaneously compared with the existing MSHRs"),
  // then queue. Returns false only when the MAQ is full.
  [[nodiscard]] bool emit(DeviceRequest&& request) override;
  [[nodiscard]] bool maq_full() const override { return maq_.full(); }

  /// Re-compare waiting MAQ entries after a new MSHR entry appears.
  void sweep_maq_merges(AdaptiveMshrEntry& target);

  /// Submit one device request, recording the issue-side statistics.
  void submit_to_device(AdaptiveMshrEntry& entry, const DeviceRequest& req,
                        Cycle now);
  /// Allocate an MSHR entry for `req` and dispatch it if the device accepts.
  void allocate_and_dispatch(DeviceRequest req, Cycle now);
  /// Build the single-block device request for a C=0 / bypass / atomic raw.
  DeviceRequest make_single_request(const CoalescingStream& stream, Cycle now);
  [[nodiscard]] bool network_empty() const;
  void track_maq_push(Cycle now);

  PacConfig cfg_;
  DevicePort* device_;
  PacStats stats_;
  CoalescingTable table_;
  RequestAggregator aggregator_;
  BlockMapDecoder decoder_;
  RequestAssembler assembler_;
  FixedQueue<BlockSequence> seq_buffer_;
  FixedQueue<DeviceRequest> maq_;
  AdaptiveMshrFile mshrs_;

  std::uint64_t next_device_id_ = 1;
  Cycle last_tick_ = 0;  ///< most recent tick, used by accept-path pushes
  bool fence_draining_ = false;
  bool bypass_active_ = false;
  std::optional<DeviceRequest> pending_c0_;  ///< C=0 flush awaiting MAQ space
  std::vector<std::uint64_t> satisfied_;

  /// Ring of the last `maq_entries` MAQ-push timestamps: the Fig. 12b
  /// metric is the time to supply one full MAQ's worth of requests.
  std::vector<Cycle> maq_push_times_;
  std::uint64_t maq_pushes_ = 0;
  Cycle next_occupancy_sample_ = 0;
};

}  // namespace pacsim
