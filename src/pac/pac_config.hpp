// Configuration of the paged adaptive coalescer (paper Table 1 defaults).
#pragma once

#include <cstdint>

#include "pac/protocol.hpp"

namespace pacsim {

struct PacConfig {
  CoalescingProtocol protocol = CoalescingProtocol::hmc2();

  std::uint32_t num_streams = 16;   ///< parallel coalescing streams
  std::uint32_t timeout = 16;       ///< cycles a stream may aggregate
  std::uint32_t maq_entries = 16;   ///< MAQ depth == #MSHRs (section 3.1.2)
  std::uint32_t num_mshrs = 16;     ///< adaptive MSHR entries

  std::uint32_t seq_buffer_entries = 32;  ///< block sequence buffer depth

  // Pipeline timing (section 3.3): decode = 2 cycles, one table look-up per
  // sequence, one assembly cycle per emitted request.
  std::uint32_t decode_cycles = 2;
  std::uint32_t table_lookup_cycles = 1;
  std::uint32_t assemble_cycles_per_request = 1;

  /// Network-controller optimization (section 3.2): raw requests bypass the
  /// network while the MAQ is empty and MSHRs are available.
  bool enable_bypass_controller = true;

  /// Extension (not in the paper, ablation bench): flush a stream as soon as
  /// one of its 256 B chunks is completely populated.
  bool flush_on_full_chunk = false;

  /// Secondary coalescing: the associative duplicate checks against the
  /// in-flight MSHR entries, MAQ slots and stage-2 registers (Kroft-style;
  /// DESIGN.md section 5.0). Disable to measure their contribution - without
  /// them duplicate misses re-fetch their blocks.
  bool enable_secondary_coalescing = true;

  /// Sampling period for the coalescing-stream occupancy statistic
  /// (paper Fig. 11b accumulates occupancy every 16 cycles).
  std::uint32_t occupancy_sample_period = 16;
};

}  // namespace pacsim
