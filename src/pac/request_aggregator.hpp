// Stage 1: the paged request aggregator (PRA), paper section 3.3.1.
//
// Incoming raw requests are compared in parallel (hardware comparators)
// against every active coalescing stream on (PPN, T bit). Matching requests
// merge into the stream's block-map; otherwise a free stream is allocated.
// Streams are flushed downstream on timeout, fence, or (optional extension)
// when a maximal-request chunk fills completely.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/request.hpp"
#include "pac/coalescing_stream.hpp"
#include "pac/pac_config.hpp"
#include "pac/pac_stats.hpp"

namespace pacsim {

class RequestAggregator {
 public:
  RequestAggregator(const PacConfig& cfg, PacStats* stats);

  enum class InsertResult {
    kMerged,     ///< joined an existing stream
    kAllocated,  ///< started a new stream
    kNoStream,   ///< all streams busy with other pages: input stalls
  };

  /// Offer a raw load/store. Counts comparator work and the Fig. 2
  /// cross-page adjacency probe as side effects.
  InsertResult insert(const MemRequest& request, Cycle now);

  /// Parallel comparator pass only: the stream matching (PPN, T bit), or
  /// nullptr. Counts comparisons and runs the Fig. 2 cross-page probe.
  CoalescingStream* find_match(const MemRequest& request);
  /// Merge `request` into `stream` (must match on PPN and type).
  void merge(CoalescingStream& stream, const MemRequest& request);
  /// Allocate a fresh stream; false when every stream is busy.
  bool allocate(const MemRequest& request, Cycle now);

  /// Which flush-due streams to extract: single-request streams head for the
  /// MAQ (C bit = 0), coalescing streams head for stage 2.
  enum class FlushClass { kAny, kSingle, kCoalescing };

  /// True if some stream of `cls` is due to flush at `now`.
  [[nodiscard]] bool has_flushable(Cycle now,
                                   FlushClass cls = FlushClass::kAny) const;

  /// Extract the oldest flush-due stream of `cls` (timeout, fence or full
  /// chunk). Returns nullopt when none is due.
  std::optional<CoalescingStream> take_flushable(
      Cycle now, FlushClass cls = FlushClass::kAny);

  /// Memory fence: force every active stream to flush (section 3.3.1).
  void force_flush_all();

  /// Earliest cycle >= `now` at which some stream becomes flush-due: `now`
  /// for force-flushed or full-chunk streams, the timeout expiry of the
  /// oldest stream otherwise, kNeverCycle with no active streams. Feeds
  /// Pac::next_event_cycle().
  [[nodiscard]] Cycle next_flush_deadline(Cycle now) const;

  [[nodiscard]] unsigned active_streams() const;
  [[nodiscard]] bool empty() const { return active_streams() == 0; }
  [[nodiscard]] const std::vector<CoalescingStream>& streams() const {
    return streams_;
  }

 private:
  [[nodiscard]] bool flush_due(const CoalescingStream& s, Cycle now) const;

  PacConfig cfg_;
  PacStats* stats_;
  std::vector<CoalescingStream> streams_;
};

}  // namespace pacsim
