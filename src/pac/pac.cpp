#include "pac/pac.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "core/verifier.hpp"
#include "mem/packet.hpp"

namespace pacsim {
namespace {
/// Sentinel for "no MSHR entry owned this response" in Pac::complete.
constexpr Cycle kNoEntry = std::numeric_limits<Cycle>::max();
}  // namespace

Pac::Pac(const PacConfig& cfg, DevicePort* device)
    : cfg_(cfg),
      device_(device),
      table_(cfg.protocol),
      aggregator_(cfg, &stats_),
      decoder_(cfg, &stats_),
      assembler_(cfg, &stats_, &table_, &next_device_id_),
      seq_buffer_(cfg.seq_buffer_entries),
      maq_(cfg.maq_entries),
      mshrs_(cfg) {
  maq_push_times_.assign(cfg.maq_entries == 0 ? 1 : cfg.maq_entries, 0);
}

bool Pac::network_empty() const {
  return aggregator_.empty() && decoder_.idle() && seq_buffer_.empty() &&
         assembler_.idle() && !pending_c0_.has_value();
}

bool Pac::idle() const {
  return network_empty() && maq_.empty() && mshrs_.empty() &&
         !fence_draining_;
}

DeviceRequest Pac::make_single_request(const CoalescingStream& stream,
                                       Cycle now) {
  assert(stream.count == 1);
  const RawRef& raw = stream.raws.front();
  DeviceRequest req;
  req.id = next_device_id_++;
  req.base = (stream.ppn << kPageShift) +
             static_cast<Addr>(raw.first_block) * cfg_.protocol.granule;
  req.bytes = (raw.last_block - raw.first_block + 1) * cfg_.protocol.granule;
  req.store = stream.store;
  req.created_at = now;
  req.add_raw(raw.id);
  return req;
}

void Pac::submit_to_device(AdaptiveMshrEntry& entry, const DeviceRequest& req,
                           Cycle now) {
  device_->submit(req, now);
  entry.dispatched = true;
  ++stats_.base.issued_requests;
  stats_.base.issued_payload_bytes += req.bytes;
  stats_.base.request_size_bytes.add(req.bytes);
}

void Pac::allocate_and_dispatch(DeviceRequest req, Cycle now) {
  AdaptiveMshrEntry& entry = mshrs_.allocate(req);
  // Pending misses are flushed to the memory controller immediately once
  // stored in the MSHRs (section 3.2); if the device is saturated the entry
  // is retried each tick.
  if (device_->can_accept()) submit_to_device(entry, req, now);
  // A new entry is a new merge target for everything waiting in the MAQ.
  sweep_maq_merges(entry);
}

bool Pac::emit(DeviceRequest&& request) {
  // MSHR-side comparator work is not billed to the Fig. 7 statistic: that
  // metric counts the coalescing-procedure comparisons, and an MSHR lookup
  // exists identically in every miss-handling design.
  std::uint64_t unbilled = 0;
  if (cfg_.enable_secondary_coalescing && !request.atomic &&
      mshrs_.try_merge(request, &unbilled)) {
    ++stats_.mshr_merges;
    stats_.base.coalesced_away += request.raw_ids.size();
    if (verifier_ != nullptr) {
      for (std::uint64_t raw : request.raw_ids) {
        verifier_->on_merged(raw, last_tick_);
      }
    }
    return true;
  }
  if (maq_.full()) return false;  // leaves `request` intact for the caller
  const bool ok = maq_.push(std::move(request));
  assert(ok);
  track_maq_push(last_tick_);
  return ok;
}

void Pac::track_maq_push(Cycle now) {
  const std::size_t ring = maq_push_times_.size();
  const std::size_t slot = maq_pushes_ % ring;
  if (maq_pushes_ >= ring) {
    // Fig. 12b: cycles needed to supply one full MAQ of requests. Sparse
    // suites bypass stages 2-3 and push fastest (paper: BFS 8.62 ns).
    stats_.maq_fill_latency.add(static_cast<double>(now -
                                                    maq_push_times_[slot]));
  }
  maq_push_times_[slot] = now;
  ++maq_pushes_;
}

void Pac::sweep_maq_merges(AdaptiveMshrEntry& target) {
  if (!cfg_.enable_secondary_coalescing) return;
  maq_.erase_if([this, &target](DeviceRequest& req) {
    if (req.atomic) return false;
    if (!mshrs_.try_merge_into(target, req)) return false;
    ++stats_.mshr_merges;
    stats_.base.coalesced_away += req.raw_ids.size();
    if (verifier_ != nullptr) {
      for (std::uint64_t raw : req.raw_ids) {
        verifier_->on_merged(raw, last_tick_);
      }
    }
    return true;
  });
}

bool Pac::accept(const MemRequest& request, Cycle now) {
  if (fence_draining_) return false;

  if (request.op == MemOp::kFence) {
    ++stats_.base.fences;
    aggregator_.force_flush_all();
    fence_draining_ = true;
    if (verifier_ != nullptr) verifier_->on_fence_begin(request.id, now);
    return true;
  }

  if (request.op == MemOp::kAtomic) {
    // Atomics are routed straight to the memory controller to preserve
    // atomicity (section 3.3.1); they still need an MSHR for the response.
    if (!mshrs_.has_free() || !device_->can_accept()) return false;
    ++stats_.base.raw_requests;
    ++stats_.base.atomics;
    DeviceRequest req;
    req.id = next_device_id_++;
    req.base = request.paddr & ~Addr{kFlitBytes - 1};
    req.bytes = kFlitBytes;
    req.atomic = true;
    req.store = request.is_store();
    req.created_at = now;
    req.add_raw(request.id);
    allocate_and_dispatch(std::move(req), now);
    return true;
  }

  if (bypass_active_) {
    // Network controller has the coalescing network disabled: the raw
    // request enters the MSHRs directly (section 3.2).
    if (!mshrs_.has_free()) {
      bypass_active_ = false;  // re-enable coalescing
    } else {
      ++stats_.base.raw_requests;
      ++stats_.controller_bypass_requests;
      DeviceRequest req;
      req.id = next_device_id_++;
      const unsigned shift = cfg_.protocol.granule_shift();
      req.base = (request.paddr >> shift) << shift;
      const Addr end = request.paddr + request.bytes;
      req.bytes = static_cast<std::uint32_t>(
          (((end - 1) >> shift) + 1 - (req.base >> shift)) *
          cfg_.protocol.granule);
      req.store = request.is_store();
      req.created_at = now;
      req.add_raw(request.id);
      std::uint64_t unbilled = 0;
      if (!mshrs_.try_merge(req, &unbilled)) {
        allocate_and_dispatch(std::move(req), now);
      } else {
        ++stats_.mshr_merges;
        stats_.base.coalesced_away += 1;
        if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
      }
      return true;
    }
  }

  // Kroft MSHR check first: a miss whose block is already covered by an
  // in-flight adaptive-MSHR entry attaches as a subentry - the data is
  // already on its way, so re-aggregating it would fetch the block twice.
  if (request.op == MemOp::kLoad && cfg_.enable_secondary_coalescing) {
    const unsigned shift = cfg_.protocol.granule_shift();
    DeviceRequest probe;
    probe.base = (request.paddr >> shift) << shift;
    const Addr end = request.paddr + request.bytes;
    probe.bytes = static_cast<std::uint32_t>(
        (((end - 1) >> shift) + 1 - (probe.base >> shift)) *
        cfg_.protocol.granule);
    probe.add_raw(request.id);
    if (mshrs_.try_attach(probe)) {
      stats_.base.comparisons += aggregator_.active_streams();
      ++stats_.base.raw_requests;
      ++stats_.base.coalesced_away;
      ++stats_.mshr_merges;
      if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
      return true;
    }
    // The covering request may still be waiting in the MAQ; attach there
    // (the MAQ slots are compared associatively, like the MSHRs).
    const auto covers = [&probe](const DeviceRequest& waiting) {
      return !waiting.store && !waiting.atomic &&
             probe.base >= waiting.base &&
             probe.base + probe.bytes <= waiting.base + waiting.bytes;
    };
    const auto attach_to = [&](DeviceRequest& waiting) {
      waiting.add_raw(request.id,
                      static_cast<std::uint16_t>(
                          (probe.base - waiting.base) / cfg_.protocol.granule));
      stats_.base.comparisons += aggregator_.active_streams();
      ++stats_.base.raw_requests;
      ++stats_.base.coalesced_away;
      ++stats_.mshr_merges;
      if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
    };
    for (DeviceRequest& waiting : maq_) {
      if (!covers(waiting)) continue;
      attach_to(waiting);
      return true;
    }
    // ... or parked as the C=0 single request awaiting MAQ space: it sits
    // in front of the MAQ, so skipping it would re-aggregate and fetch the
    // covered block twice - exactly the double fetch this scan prevents.
    if (pending_c0_.has_value() && covers(*pending_c0_)) {
      attach_to(*pending_c0_);
      return true;
    }
    // ... or still inside stage 2 / the block sequence buffer.
    const unsigned shift2 = cfg_.protocol.granule_shift();
    const unsigned first_block =
        static_cast<unsigned>(page_offset(request.paddr) >> shift2);
    const unsigned last_block = static_cast<unsigned>(
        page_offset(request.paddr + request.bytes - 1) >> shift2);
    if (decoder_.try_attach(request.ppn(), false, first_block, last_block,
                            request.id)) {
      stats_.base.comparisons += aggregator_.active_streams();
      ++stats_.base.raw_requests;
      ++stats_.base.coalesced_away;
      ++stats_.mshr_merges;
      if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
      return true;
    }
    const unsigned width = cfg_.protocol.chunk_blocks();
    for (BlockSequence& seq : seq_buffer_) {
      if (seq.ppn != request.ppn() || seq.store) continue;
      const unsigned chunk_lo = seq.chunk_index * width;
      if (first_block < chunk_lo || last_block >= chunk_lo + width) continue;
      bool covered = true;
      for (unsigned b = first_block; b <= last_block && covered; ++b) {
        covered = (seq.bits >> (b - chunk_lo)) & 1;
      }
      if (!covered) continue;
      seq.raws.push_back(RawRef{static_cast<std::uint16_t>(first_block),
                                static_cast<std::uint16_t>(last_block),
                                request.id});
      stats_.base.comparisons += aggregator_.active_streams();
      ++stats_.base.raw_requests;
      ++stats_.base.coalesced_away;
      ++stats_.mshr_merges;
      if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
      return true;
    }
  }

  // Stage-1 comparator pass over the active streams. One pass is counted
  // per accepted request (a stalled input re-presents the same request;
  // the Fig. 7 metric counts the logical comparison, not the retry).
  if (CoalescingStream* match = aggregator_.find_match(request)) {
    stats_.base.comparisons += aggregator_.active_streams();
    aggregator_.merge(*match, request);
    ++stats_.base.raw_requests;
    if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
    return true;
  }

  if (!aggregator_.allocate(request, now)) return false;
  stats_.base.comparisons += aggregator_.active_streams();
  ++stats_.base.raw_requests;
  return true;
}

void Pac::tick(Cycle now) {
  last_tick_ = now;
  // --- Coalescing-stream occupancy sampling (Fig. 11b/c). ---
  if (now >= next_occupancy_sample_) {
    const unsigned active = aggregator_.active_streams();
    if (active > 0) stats_.stream_occupancy.add(active);
    next_occupancy_sample_ = now + cfg_.occupancy_sample_period;
  }

  // --- Retry MSHR entries the device previously refused. ---
  std::size_t retry_cursor = 0;
  while (AdaptiveMshrEntry* entry = mshrs_.next_undispatched(&retry_cursor)) {
    if (!device_->can_accept()) break;
    DeviceRequest req;
    req.id = entry->device_request_id;
    req.base = entry->base;
    req.bytes = entry->bytes;
    req.store = entry->store;
    req.atomic = entry->atomic;
    // Keep the original assembly cycle: the cycles the request spent
    // refused by a saturated device are back-pressure the Fig. 12 latency
    // statistics must include, not a new request.
    req.created_at = entry->created_at;
    for (const MshrSubentry& sub : entry->subentries) {
      req.add_raw(sub.raw_id, sub.block_index);
    }
    submit_to_device(*entry, req, now);
  }

  // --- MAQ -> adaptive MSHRs. Merging already happened when the request
  // entered the MAQ (emit) and re-fires whenever a new entry allocates
  // (sweep_maq_merges), so this stage only performs allocations. ---
  for (int moves = 0; moves < 2 && !maq_.empty() && mshrs_.has_free();
       ++moves) {
    allocate_and_dispatch(maq_.pop(), now);
  }

  // --- Stage 3: block sequences -> coalesced requests -> MAQ. ---
  assembler_.tick(now, seq_buffer_, *this);

  // --- Stage 2: flushed block-maps -> block sequence buffer. ---
  decoder_.tick(now, seq_buffer_);

  // --- Stage 1 flush policy. ---
  // Retry a C=0 request that found the MAQ full earlier.
  if (pending_c0_.has_value() && emit(std::move(*pending_c0_))) {
    pending_c0_.reset();
  }
  // One coalescing stream may enter stage 2 per cycle.
  if (decoder_.can_accept()) {
    if (auto stream = aggregator_.take_flushable(
            now, RequestAggregator::FlushClass::kCoalescing)) {
      decoder_.accept(std::move(*stream), now);
    }
  }
  // One single-request stream may bypass stages 2-3 per cycle (C bit = 0).
  if (!pending_c0_.has_value()) {
    if (auto stream = aggregator_.take_flushable(
            now, RequestAggregator::FlushClass::kSingle)) {
      ++stats_.c0_bypass_requests;
      DeviceRequest req = make_single_request(*stream, now);
      if (!emit(std::move(req))) pending_c0_ = std::move(req);
    }
  }

  // The Fig. 12b fill metric measures contiguous replenishment: an MAQ
  // that drained empty restarts the 16-push window (idle phases between
  // kernel bursts are not "filling latency").
  if (maq_.empty()) maq_pushes_ = 0;

  // --- Fence drain completes once nothing is buffered before the MSHRs. ---
  if (fence_draining_ && network_empty() && maq_.empty()) {
    fence_draining_ = false;
    if (verifier_ != nullptr) verifier_->on_fence_end(now);
  }

  // --- Network-controller bypass (section 3.2). ---
  if (cfg_.enable_bypass_controller) {
    if (bypass_active_) {
      if (mshrs_.all_occupied()) bypass_active_ = false;
    } else if (maq_.empty() && mshrs_.empty() && network_empty() &&
               !fence_draining_) {
      // The coalescing network is disabled only when the whole memory path
      // is idle (program start, I/O-bound phases - section 3.2); it is
      // re-enabled as soon as all MSHRs are occupied.
      bypass_active_ = true;
    }
  }
}

void Pac::complete(const DeviceResponse& response, Cycle now) {
  Cycle created_at = kNoEntry;
  std::vector<std::uint64_t> raws =
      mshrs_.on_response(response.request_id, &created_at);
  if (created_at != kNoEntry) {
    stats_.request_latency.add(static_cast<double>(now - created_at));
  }
  satisfied_.insert(satisfied_.end(), raws.begin(), raws.end());
}

void Pac::drain_satisfied_into(std::vector<std::uint64_t>& out) {
  out.clear();
  std::swap(out, satisfied_);
}

Cycle Pac::next_event_cycle(Cycle now) const {
  // Anything buffered past stage 1 moves through short per-cycle pipeline
  // stages: a conservative "tick every cycle" bound keeps the analysis
  // simple, and the latency-bound stretches this optimizes have an empty
  // network with only in-flight MSHR entries.
  if (!maq_.empty() || fence_draining_ || pending_c0_.has_value() ||
      !decoder_.idle() || !assembler_.idle() || !seq_buffer_.empty()) {
    return now;
  }
  // Undispatched MSHR entries retry every tick while the device accepts;
  // against a saturated device the retry only lands after a completion,
  // which the device's own event bound covers.
  if (mshrs_.has_undispatched() && device_->can_accept()) return now;
  // A non-zero push count resets on the tick after the MAQ drains (the
  // Fig. 12b fill-window restart) - observable state, so no skipping.
  if (maq_pushes_ != 0) return now;
  // Pending bypass-controller transitions happen on the very next tick.
  if (cfg_.enable_bypass_controller) {
    if (bypass_active_) {
      if (mshrs_.all_occupied()) return now;
    } else if (mshrs_.empty()) {
      // Everything before the MSHRs is empty here, so bypass activates.
      return now;
    }
  }
  Cycle bound = aggregator_.next_flush_deadline(now);
  // The occupancy-sample timer only records when streams are active; with
  // none active each firing is a pure re-arm, which fast_forward_to()
  // replays across a skip. With active streams the sample is observable,
  // so its deadline joins the bound.
  if (!aggregator_.empty()) bound = std::min(bound, next_occupancy_sample_);
  return std::max(bound, now);
}

std::string Pac::debug_json() const {
  std::ostringstream out;
  out << "{\"maq\": " << maq_.size()
      << ", \"mshrs_occupied\": " << mshrs_.occupied()
      << ", \"seq_buffer\": " << seq_buffer_.size()
      << ", \"pending_c0\": " << (pending_c0_.has_value() ? "true" : "false")
      << ", \"fence_draining\": " << (fence_draining_ ? "true" : "false")
      << ", \"bypass_active\": " << (bypass_active_ ? "true" : "false")
      << ", \"active_streams\": " << aggregator_.active_streams()
      << ", \"streams\": [";
  bool first = true;
  for (const CoalescingStream& s : aggregator_.streams()) {
    if (!s.valid) continue;
    out << (first ? "" : ", ") << "{\"ppn\": " << s.ppn
        << ", \"store\": " << (s.store ? "true" : "false")
        << ", \"count\": " << s.count
        << ", \"allocated_at\": " << s.allocated_at
        << ", \"blockmap_bits\": " << s.map.count() << ", \"blockmap\": \"";
    char buf[20];
    for (unsigned w = 0; w < 4; ++w) {
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(s.map.word(3 - w)));
      out << buf;
    }
    out << "\"}";
    first = false;
  }
  out << "]}";
  return out.str();
}

void Pac::fast_forward_to(Cycle target) {
  // Replay the occupancy-sample firings the skipped ticks would have run.
  // next_event_cycle() only ignored the sample deadline while no stream
  // was active, and nothing can activate one during a skip, so every
  // skipped firing sampled nothing and just re-armed `now + period` - the
  // same grid this loop reproduces. The tick at `target` itself then sees
  // the exact timer state the naive loop would have.
  while (next_occupancy_sample_ < target) {
    next_occupancy_sample_ += cfg_.occupancy_sample_period;
  }
}

void Pac::checkpoint_save(BinWriter& w) const {
  w.tag("PAC_");
  stats_.checkpoint_save(w);
  w.u64(next_device_id_);
  w.u64(last_tick_);
  w.b(fence_draining_);
  w.b(bypass_active_);
  w.u64(maq_push_times_.size());
  for (const Cycle c : maq_push_times_) w.u64(c);
  w.u64(maq_pushes_);
  w.u64(next_occupancy_sample_);
}

void Pac::checkpoint_load(BinReader& r) {
  r.tag("PAC_");
  stats_.checkpoint_load(r);
  next_device_id_ = r.u64();
  last_tick_ = r.u64();
  fence_draining_ = r.b();
  bypass_active_ = r.b();
  if (r.u64() != maq_push_times_.size()) {
    throw SnapshotError("pac maq ring size mismatch");
  }
  for (Cycle& c : maq_push_times_) c = r.u64();
  maq_pushes_ = r.u64();
  next_occupancy_sample_ = r.u64();
}

}  // namespace pacsim
