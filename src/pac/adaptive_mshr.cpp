#include "pac/adaptive_mshr.hpp"

#include <cassert>

namespace pacsim {

AdaptiveMshrFile::AdaptiveMshrFile(const PacConfig& cfg) : cfg_(cfg) {
  entries_.resize(cfg_.num_mshrs);
}

bool AdaptiveMshrFile::try_merge_into(AdaptiveMshrEntry& entry,
                                      const DeviceRequest& req) {
  if (!entry.valid) return false;
  if (entry.store || entry.atomic || req.store || req.atomic) return false;
  if (req.base < entry.base ||
      req.base + req.bytes > entry.base + entry.bytes) {
    return false;
  }
  // Each raw of the merged request may sit at a different granule of the
  // entry: derive the subentry index from the raw's own block, not from the
  // request base, so every subentry points at the data slice its raw waits
  // on.
  for (std::size_t i = 0; i < req.raw_ids.size(); ++i) {
    const Addr raw_addr =
        req.base + Addr{req.raw_block(i)} * cfg_.protocol.granule;
    entry.subentries.push_back(MshrSubentry{
        req.raw_ids[i],
        subentry_index(entry.base, raw_addr, cfg_.protocol.granule)});
  }
  return true;
}

bool AdaptiveMshrFile::try_merge(const DeviceRequest& req,
                                 std::uint64_t* comparisons) {
  // The OP bit is compared together with the address (section 3.1.3), so a
  // single comparator pass over the occupied entries covers both.
  for (auto& entry : entries_) {
    if (!entry.valid) continue;
    ++*comparisons;
    if (try_merge_into(entry, req)) return true;
  }
  return false;
}

AdaptiveMshrEntry& AdaptiveMshrFile::allocate(const DeviceRequest& req) {
  assert(has_free());
  for (auto& entry : entries_) {
    if (entry.valid) continue;
    entry.valid = true;
    entry.base = req.base;
    entry.bytes = req.bytes;
    entry.store = req.store;
    entry.atomic = req.atomic;
    entry.dispatched = false;
    entry.device_request_id = req.id;
    entry.created_at = req.created_at;
    entry.subentries.clear();
    for (std::size_t i = 0; i < req.raw_ids.size(); ++i) {
      entry.subentries.push_back(MshrSubentry{
          req.raw_ids[i], static_cast<std::uint8_t>(req.raw_block(i))});
    }
    ++occupied_;
    return entry;
  }
  assert(false && "has_free() lied");
  return entries_.front();
}

std::vector<std::uint64_t> AdaptiveMshrFile::on_response(
    std::uint64_t device_request_id, Cycle* created_at) {
  for (auto& entry : entries_) {
    if (!entry.valid || entry.device_request_id != device_request_id) continue;
    if (created_at != nullptr) *created_at = entry.created_at;
    std::vector<std::uint64_t> raws;
    raws.reserve(entry.subentries.size());
    for (const MshrSubentry& sub : entry.subentries) raws.push_back(sub.raw_id);
    entry.valid = false;
    entry.subentries.clear();
    --occupied_;
    return raws;
  }
  return {};
}

std::vector<AdaptiveMshrEntry*> AdaptiveMshrFile::undispatched() {
  std::vector<AdaptiveMshrEntry*> out;
  for (auto& entry : entries_) {
    if (entry.valid && !entry.dispatched) out.push_back(&entry);
  }
  return out;
}

bool AdaptiveMshrFile::has_undispatched() const {
  for (const auto& entry : entries_) {
    if (entry.valid && !entry.dispatched) return true;
  }
  return false;
}

AdaptiveMshrEntry* AdaptiveMshrFile::next_undispatched(std::size_t* cursor) {
  while (*cursor < entries_.size()) {
    AdaptiveMshrEntry& entry = entries_[(*cursor)++];
    if (entry.valid && !entry.dispatched) return &entry;
  }
  return nullptr;
}

}  // namespace pacsim
