// PAC-specific statistics on top of the common coalescer counters.
#pragma once

#include <cstdint>

#include "common/stats.hpp"
#include "pac/coalescer.hpp"

namespace pacsim {

struct PacStats {
  CoalescerStats base;

  // Flush accounting (stage 1).
  std::uint64_t flushed_streams = 0;
  std::uint64_t timeout_flushes = 0;
  std::uint64_t fence_flushes = 0;
  std::uint64_t full_chunk_flushes = 0;  ///< flush-on-full-chunk extension

  /// Raw requests whose stream held only one request (C bit = 0) and that
  /// therefore skipped stages 2-3 (paper Fig. 12c).
  std::uint64_t c0_bypass_requests = 0;
  /// Raw requests admitted while the network controller had the coalescing
  /// network disabled (section 3.2 bypass optimization).
  std::uint64_t controller_bypass_requests = 0;

  /// Fig. 2 probe: raw requests that were physically adjacent to a block
  /// buffered in a *different* page's coalescing stream — i.e. the only
  /// coalescing opportunities a cross-page scheme would add.
  std::uint64_t cross_page_adjacent = 0;

  /// Occupied coalescing streams, sampled every 16 cycles (Fig. 11b/c).
  Histogram stream_occupancy;

  /// Pipeline stage latencies in cycles (Fig. 12a).
  RunningStat stage2_latency;  ///< flush -> all sequences buffered
  RunningStat stage3_latency;  ///< sequence pop -> last request in MAQ

  /// Cycles for the MAQ to go from empty to full (Fig. 12b reports ns).
  RunningStat maq_fill_latency;

  /// Device-request latency in cycles, assembly -> response. Measured from
  /// the cycle the request was first built, so it includes time spent
  /// refused by a saturated device (back-pressure), unlike the device's own
  /// submit -> completion statistic.
  RunningStat request_latency;

  /// Secondary coalescing: device requests absorbed by an in-flight
  /// adaptive-MSHR entry covering the same blocks.
  std::uint64_t mshr_merges = 0;

  void checkpoint_save(BinWriter& w) const {
    base.checkpoint_save(w);
    w.u64(flushed_streams);
    w.u64(timeout_flushes);
    w.u64(fence_flushes);
    w.u64(full_chunk_flushes);
    w.u64(c0_bypass_requests);
    w.u64(controller_bypass_requests);
    w.u64(cross_page_adjacent);
    stream_occupancy.checkpoint_save(w);
    stage2_latency.checkpoint_save(w);
    stage3_latency.checkpoint_save(w);
    maq_fill_latency.checkpoint_save(w);
    request_latency.checkpoint_save(w);
    w.u64(mshr_merges);
  }
  void checkpoint_load(BinReader& r) {
    base.checkpoint_load(r);
    flushed_streams = r.u64();
    timeout_flushes = r.u64();
    fence_flushes = r.u64();
    full_chunk_flushes = r.u64();
    c0_bypass_requests = r.u64();
    controller_bypass_requests = r.u64();
    cross_page_adjacent = r.u64();
    stream_occupancy.checkpoint_load(r);
    stage2_latency.checkpoint_load(r);
    stage3_latency.checkpoint_load(r);
    maq_fill_latency.checkpoint_load(r);
    request_latency.checkpoint_load(r);
    mshr_merges = r.u64();
  }
};

}  // namespace pacsim
