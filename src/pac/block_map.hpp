// The block-map: one bit per coalescing block inside a 4 KB physical page
// (paper Fig. 5(a)). 64 bits suffice for the default 64 B granule; the
// fine-grained 16 B granule needs 256 bits, so the map is a fixed array of
// four words with only `blocks` bits active.
#pragma once

#include <array>
#include <cstdint>

#include "common/bitops.hpp"

namespace pacsim {

class BlockMap {
 public:
  static constexpr unsigned kMaxBlocks = 256;

  void set(unsigned block) {
    words_[block >> 6] |= (std::uint64_t{1} << (block & 63));
  }
  [[nodiscard]] bool test(unsigned block) const {
    return (words_[block >> 6] >> (block & 63)) & 1;
  }
  [[nodiscard]] bool any() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) != 0;
  }
  [[nodiscard]] unsigned count() const {
    unsigned n = 0;
    for (std::uint64_t w : words_) n += popcount64(w);
    return n;
  }

  /// Extract chunk `index` of `width` bits (width <= 16, chunks are aligned,
  /// so a chunk never straddles a word boundary for the supported widths).
  [[nodiscard]] std::uint16_t chunk(unsigned index, unsigned width) const {
    const unsigned bit = index * width;
    const std::uint64_t word = words_[bit >> 6];
    const std::uint64_t mask = (width >= 64) ? ~std::uint64_t{0}
                                             : (std::uint64_t{1} << width) - 1;
    return static_cast<std::uint16_t>((word >> (bit & 63)) & mask);
  }

  void clear() { words_.fill(0); }

  [[nodiscard]] std::uint64_t word(unsigned i) const { return words_[i]; }

  friend bool operator==(const BlockMap&, const BlockMap&) = default;

 private:
  std::array<std::uint64_t, kMaxBlocks / 64> words_{};
};

}  // namespace pacsim
