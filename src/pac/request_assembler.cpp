#include "pac/request_assembler.hpp"

#include <cassert>

namespace pacsim {

RequestAssembler::RequestAssembler(const PacConfig& cfg, PacStats* stats,
                                   const CoalescingTable* table,
                                   std::uint64_t* id_counter)
    : cfg_(cfg), stats_(stats), table_(table), id_counter_(id_counter) {}

DeviceRequest RequestAssembler::build_request(const Segment& segment,
                                              Cycle now) const {
  const BlockSequence& seq = *current_;
  const std::uint32_t granule = cfg_.protocol.granule;
  const unsigned chunk_base = seq.chunk_index * cfg_.protocol.chunk_blocks();
  const unsigned seg_lo = chunk_base + segment.offset;
  const unsigned seg_hi = seg_lo + segment.length - 1;

  DeviceRequest req;
  req.id = (*id_counter_)++;
  req.base = (seq.ppn << kPageShift) + static_cast<Addr>(seg_lo) * granule;
  req.bytes = segment.length * granule;
  req.store = seq.store;
  req.created_at = now;
  for (const RawRef& raw : seq.raws) {
    if (raw.first_block >= seg_lo && raw.first_block <= seg_hi) {
      req.add_raw(raw.id, static_cast<std::uint16_t>(raw.first_block - seg_lo));
    }
  }
  return req;
}

void RequestAssembler::tick(Cycle now, FixedQueue<BlockSequence>& in,
                            MaqSink& maq) {
  if (!current_.has_value()) {
    if (in.empty()) return;
    current_ = in.pop();
    popped_at_ = now;
    lookup_done_ = now + cfg_.table_lookup_cycles;
    segments_ = table_->segments(current_->bits);
    // Hardware performs one LUT reference per nibble of the sequence.
    assert(!segments_.empty());
    next_segment_ = 0;
    return;
  }
  if (now < lookup_done_) return;

  // Assemble one coalesced request per cycle; stall while the MAQ is full
  // (which in turn blocks the pipeline and ultimately the cache).
  if (next_segment_ < segments_.size()) {
    if (maq.maq_full()) return;
    DeviceRequest req = build_request(segments_[next_segment_], now);
    // A request covering k raw requests removes k-1 memory accesses.
    stats_->base.coalesced_away += req.raw_ids.empty()
                                       ? 0
                                       : req.raw_ids.size() - 1;
    const bool ok = maq.emit(std::move(req));
    assert(ok);
    (void)ok;
    ++next_segment_;
    if (next_segment_ < segments_.size()) return;
  }

  stats_->stage3_latency.add(static_cast<double>(now - popped_at_));
  current_.reset();
  segments_.clear();
  next_segment_ = 0;
}

}  // namespace pacsim
