// Adaptive MSHRs, paper section 3.1.3.
//
// Standard MSHRs extended two ways: (1) subentries carry a 2-bit block
// index so one entry can track misses to blocks N..N+3 of a wide coalesced
// request, and (2) an OP bit distinguishes loads from stores so the type
// comparison rides along with the address comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"
#include "pac/pac_config.hpp"

namespace pacsim {

/// A subentry: one raw miss attached to an entry, with its block index.
struct MshrSubentry {
  std::uint64_t raw_id = 0;
  std::uint8_t block_index = 0;  ///< 2-bit index: block N+index of the entry
};

struct AdaptiveMshrEntry {
  bool valid = false;
  Addr base = 0;            ///< granule-aligned base of the wide request
  std::uint32_t bytes = 0;
  bool store = false;       ///< the OP bit
  bool atomic = false;
  bool dispatched = false;  ///< request already sent to the device
  std::uint64_t device_request_id = 0;
  /// Cycle the device request was assembled. Retries after device
  /// back-pressure re-submit with this original cycle so request-latency
  /// accounting (Fig. 12) includes the refused time.
  Cycle created_at = 0;
  std::vector<MshrSubentry> subentries;
};

/// Derive the 2-bit subentry index for a raw address within an entry.
inline std::uint8_t subentry_index(Addr entry_base, Addr raw_addr,
                                   std::uint32_t granule) {
  return static_cast<std::uint8_t>((raw_addr - entry_base) / granule);
}

class AdaptiveMshrFile {
 public:
  explicit AdaptiveMshrFile(const PacConfig& cfg);

  /// Try to absorb `req` into an in-flight entry covering the same blocks
  /// (secondary coalescing; loads only - a store needs its own packet).
  /// Increments `comparisons` by the number of occupied entries examined.
  bool try_merge(const DeviceRequest& req, std::uint64_t* comparisons);

  /// Targeted variant: compare `req` against one specific entry (used when
  /// a newly allocated entry is checked against the waiting MAQ slots).
  bool try_merge_into(AdaptiveMshrEntry& entry, const DeviceRequest& req);

  /// Kroft check at coalescer entry: like try_merge but not billed to the
  /// comparison statistic (both designs perform this MSHR lookup).
  bool try_attach(const DeviceRequest& req) {
    for (auto& entry : entries_) {
      if (entry.valid && try_merge_into(entry, req)) return true;
    }
    return false;
  }

  /// Allocate a new entry for `req`. Pre: has_free().
  AdaptiveMshrEntry& allocate(const DeviceRequest& req);

  /// Release the entry owning `device_request_id`; returns the raw ids its
  /// subentries were waiting on. Entry may be absent (e.g. zero-subentry
  /// overfetch pieces): returns empty in that case. When the entry is found
  /// and `created_at` is non-null, it receives the cycle the request was
  /// assembled (for end-to-end request-latency accounting).
  std::vector<std::uint64_t> on_response(std::uint64_t device_request_id,
                                         Cycle* created_at = nullptr);

  [[nodiscard]] bool has_free() const { return occupied_ < entries_.size(); }
  [[nodiscard]] bool all_occupied() const {
    return occupied_ == entries_.size();
  }
  [[nodiscard]] unsigned occupied() const { return occupied_; }
  [[nodiscard]] bool empty() const { return occupied_ == 0; }
  [[nodiscard]] const std::vector<AdaptiveMshrEntry>& entries() const {
    return entries_;
  }
  /// Entries allocated but not yet dispatched to the device.
  std::vector<AdaptiveMshrEntry*> undispatched();

  /// True when some entry still awaits device admission: the allocation-free
  /// check the per-tick retry path and next_event_cycle() use.
  [[nodiscard]] bool has_undispatched() const;

  /// Cursor-style iteration over undispatched entries (allocation-free
  /// variant of undispatched() for the per-tick retry loop). Start with
  /// `cursor = 0`; returns nullptr when exhausted.
  AdaptiveMshrEntry* next_undispatched(std::size_t* cursor);

 private:
  PacConfig cfg_;
  std::vector<AdaptiveMshrEntry> entries_;
  unsigned occupied_ = 0;
};

}  // namespace pacsim
