// Stage 2: the block-map decoder, paper section 3.3.2.
//
// Partitions a flushed stream's block-map into chunk-width pieces (16 OR
// gates check the chunks in parallel; 2 cycles: decode + store) and writes
// the non-empty chunks sequentially into the shared block sequence buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fixed_queue.hpp"
#include "pac/coalescing_stream.hpp"
#include "pac/pac_config.hpp"
#include "pac/pac_stats.hpp"

namespace pacsim {

class BlockMapDecoder {
 public:
  BlockMapDecoder(const PacConfig& cfg, PacStats* stats);

  /// True when a new stream can enter stage 2 this cycle.
  [[nodiscard]] bool can_accept() const { return !current_.has_value(); }

  /// Begin decoding `stream` at `now`. Pre: can_accept().
  void accept(CoalescingStream stream, Cycle now);

  /// Advance; writes at most one sequence per cycle into `out` (the shared
  /// data bus of section 3.3.2). Stalls while `out` is full.
  void tick(Cycle now, FixedQueue<BlockSequence>& out);

  /// Associative duplicate check over the stage-2 registers: if the pending
  /// sequences already cover blocks [first, last] of (ppn, store), attach
  /// the raw id so it is serviced by the in-flight coalesced request.
  bool try_attach(Addr ppn, bool store, unsigned first_block,
                  unsigned last_block, std::uint64_t raw_id);

  [[nodiscard]] bool idle() const { return !current_.has_value(); }

 private:
  PacConfig cfg_;
  PacStats* stats_;
  std::optional<CoalescingStream> current_;
  Cycle decode_done_ = 0;            ///< cycle the parallel decode finishes
  std::vector<BlockSequence> pending_;  ///< decoded, awaiting buffer writes
  std::size_t next_write_ = 0;
};

}  // namespace pacsim
