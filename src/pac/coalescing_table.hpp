// The coalescing table: the look-up structure that stage 3 uses to turn a
// block sequence into coalesced request segments (paper section 3.3.3).
//
// For HMC's 4-bit sequences the table is an exact 16-entry LUT. Wider
// sequences (HBM rows, fine-grained mode) are handled the way section 4.1
// describes: nibble-wise lookups whose results are appended, merging runs
// that cross nibble boundaries — no change to the lookup logic itself.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "pac/protocol.hpp"

namespace pacsim {

/// One coalesced request inside a chunk: `offset` blocks from the chunk
/// base, `length` contiguous blocks.
using Segment = BitRun;

class CoalescingTable {
 public:
  explicit CoalescingTable(const CoalescingProtocol& protocol);

  /// Decompose a block-sequence `bits` (chunk of `chunk_blocks()` bits) into
  /// coalesced segments. Offsets are relative to the chunk base.
  [[nodiscard]] std::vector<Segment> segments(std::uint16_t bits) const;

  /// Number of table look-ups a hardware implementation performs for one
  /// sequence (1 for 4-bit chunks; one per nibble for wider chunks).
  [[nodiscard]] std::uint32_t lookups_per_sequence() const {
    return ceil_div(width_, 4);
  }

  [[nodiscard]] const CoalescingProtocol& protocol() const { return protocol_; }

 private:
  /// Split a run into power-of-two pieces when the protocol restricts
  /// request sizes (64/128/256 B), largest-first.
  void append_run(std::vector<Segment>& out, Segment run) const;

  CoalescingProtocol protocol_;
  std::uint32_t width_;  ///< chunk width in bits
  /// The 16-entry nibble LUT (index = 4-bit layout, value = its runs).
  std::array<std::vector<Segment>, 16> nibble_lut_;
};

}  // namespace pacsim
