// One coalescing stream: the stage-1 aggregation state for a single
// (physical page, request type) pair. Paper Fig. 4 / Fig. 5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "pac/block_map.hpp"

namespace pacsim {

/// A raw request recorded in a stream: which coalescing block it touched.
struct RawRef {
  std::uint16_t first_block = 0;  ///< first granule block covered
  std::uint16_t last_block = 0;   ///< last granule block covered (inclusive)
  std::uint64_t id = 0;           ///< raw MemRequest id
};

struct CoalescingStream {
  bool valid = false;
  Addr ppn = 0;        ///< physical page number tag
  bool store = false;  ///< T bit (load = 0 / store = 1)
  BlockMap map;        ///< block-map of requested granule blocks
  std::uint32_t count = 0;     ///< raw requests merged so far
  Cycle allocated_at = 0;      ///< for the timeout protocol
  Cycle flushed_at = 0;        ///< set when the stream leaves stage 1
  bool force_flush = false;    ///< fence encountered
  std::vector<RawRef> raws;

  /// C bit: streams with a single request bypass stages 2-3.
  [[nodiscard]] bool coalescing() const { return count >= 2; }

  void reset() {
    valid = false;
    store = false;
    ppn = 0;
    map.clear();
    count = 0;
    allocated_at = 0;
    flushed_at = 0;
    force_flush = false;
    raws.clear();
  }
};

/// One decoded block-sequence entry: a non-empty chunk of the block-map
/// headed to the request assembler.
struct BlockSequence {
  Addr ppn = 0;
  bool store = false;
  std::uint16_t chunk_index = 0;  ///< which chunk of the page
  std::uint16_t bits = 0;         ///< the chunk's bit pattern
  Cycle buffered_at = 0;          ///< entered the block sequence buffer
  std::vector<RawRef> raws;       ///< raw requests covered by this chunk
};

}  // namespace pacsim
