// Stage 3: the request assembler, paper section 3.3.3.
//
// Pops block sequences from the shared buffer in FIFO order, references the
// coalescing table (1 cycle per sequence) and assembles one coalesced
// device request per cycle into the MAQ.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fixed_queue.hpp"
#include "mem/request.hpp"
#include "pac/coalescing_stream.hpp"
#include "pac/coalescing_table.hpp"
#include "pac/pac_config.hpp"
#include "pac/pac_stats.hpp"

namespace pacsim {

/// Destination of assembled requests. The MAQ implementation performs the
/// paper's merge-on-insertion against the adaptive MSHRs, so emit() may
/// absorb a request without queueing it; it returns false only when the
/// MAQ is full (pipeline stall).
class MaqSink {
 public:
  virtual ~MaqSink() = default;
  [[nodiscard]] virtual bool emit(DeviceRequest&& request) = 0;
  [[nodiscard]] virtual bool maq_full() const = 0;
};

class RequestAssembler {
 public:
  RequestAssembler(const PacConfig& cfg, PacStats* stats,
                   const CoalescingTable* table, std::uint64_t* id_counter);

  /// Advance one cycle: consume from `in`, emit into `maq`.
  void tick(Cycle now, FixedQueue<BlockSequence>& in, MaqSink& maq);

  [[nodiscard]] bool idle() const { return !current_.has_value(); }

 private:
  DeviceRequest build_request(const Segment& segment, Cycle now) const;

  PacConfig cfg_;
  PacStats* stats_;
  const CoalescingTable* table_;
  std::uint64_t* id_counter_;

  std::optional<BlockSequence> current_;
  Cycle popped_at_ = 0;  ///< when the current sequence entered stage 3
  Cycle lookup_done_ = 0;
  std::vector<Segment> segments_;
  std::size_t next_segment_ = 0;
};

}  // namespace pacsim
