// Abstract interface shared by every coalescer the paper evaluates:
// PAC, the conventional MSHR-based DMC, and the no-coalescing controller.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/request.hpp"

namespace pacsim {

class Verifier;

/// Counters every coalescer reports; the evaluation metrics of sections
/// 5.3.1-5.3.2 are all derived from these.
struct CoalescerStats {
  std::uint64_t raw_requests = 0;      ///< accepted from the LLC path
  std::uint64_t coalesced_away = 0;    ///< raw requests that did not become
                                       ///< their own device request
  std::uint64_t issued_requests = 0;   ///< device requests dispatched
  std::uint64_t issued_payload_bytes = 0;
  std::uint64_t comparisons = 0;       ///< comparator operations performed
  std::uint64_t atomics = 0;
  std::uint64_t fences = 0;
  Histogram request_size_bytes;        ///< distribution of issued sizes

  /// Paper Eq. (1): reduced requests / total requests.
  [[nodiscard]] double coalescing_efficiency() const {
    return raw_requests == 0
               ? 0.0
               : static_cast<double>(coalesced_away) /
                     static_cast<double>(raw_requests);
  }

  void checkpoint_save(BinWriter& w) const {
    w.u64(raw_requests);
    w.u64(coalesced_away);
    w.u64(issued_requests);
    w.u64(issued_payload_bytes);
    w.u64(comparisons);
    w.u64(atomics);
    w.u64(fences);
    request_size_bytes.checkpoint_save(w);
  }
  void checkpoint_load(BinReader& r) {
    raw_requests = r.u64();
    coalesced_away = r.u64();
    issued_requests = r.u64();
    issued_payload_bytes = r.u64();
    comparisons = r.u64();
    atomics = r.u64();
    fences = r.u64();
    request_size_bytes.checkpoint_load(r);
  }
};

/// A coalescer sits between the LLC miss/write-back queues and the memory
/// device. The system feeds it raw requests, ticks it, and delivers device
/// responses back; the coalescer reports which raw requests are satisfied.
class Coalescer {
 public:
  virtual ~Coalescer() = default;

  /// Offer one raw request. Returns false when the coalescer cannot accept
  /// this cycle (back-pressure: the LLC stays blocked).
  virtual bool accept(const MemRequest& request, Cycle now) = 0;

  /// Advance internal pipelines; may submit device requests.
  virtual void tick(Cycle now) = 0;

  /// Deliver a completed device response.
  virtual void complete(const DeviceResponse& response, Cycle now) = 0;

  /// Move the raw request ids satisfied since the last drain into `out`
  /// (cleared first). Buffer-based so the per-cycle loop reuses one
  /// allocation.
  virtual void drain_satisfied_into(std::vector<std::uint64_t>& out) = 0;

  /// Convenience wrapper for tests and examples (allocates per call).
  std::vector<std::uint64_t> drain_satisfied() {
    std::vector<std::uint64_t> out;
    drain_satisfied_into(out);
    return out;
  }

  /// Lower bound on the first cycle >= `now` at which tick() can change any
  /// state or statistic, assuming no accept()/complete() happens in between.
  /// `now` means "must tick every cycle"; kNeverCycle means "purely
  /// demand-driven: only a device completion wakes this coalescer" (the
  /// device's own bound covers that, since complete() runs before tick()
  /// within a step). System::run() fast-forwards to the minimum bound.
  [[nodiscard]] virtual Cycle next_event_cycle(Cycle now) const = 0;

  /// Called when the system fast-forwards to `target` (exclusive of the
  /// tick that runs at `target` itself): replay any internal timers whose
  /// skipped firings were provable no-ops, so their re-arm grid matches the
  /// naive per-cycle loop exactly. Default: nothing to replay.
  virtual void fast_forward_to(Cycle target) { (void)target; }

  /// True when no raw request is buffered anywhere inside the coalescer.
  [[nodiscard]] virtual bool idle() const = 0;

  [[nodiscard]] virtual const CoalescerStats& stats() const = 0;

  /// Install the runtime verifier (nullptr = verification off, the default).
  /// Implementations report merge and fence events through it.
  void set_verifier(Verifier* verifier) { verifier_ = verifier; }

  /// One-line JSON object describing internal occupancy, for forensics
  /// dumps. Default: no interesting state.
  [[nodiscard]] virtual std::string debug_json() const { return "{}"; }

  /// Persist / restore state that survives a quiescent point (no buffered
  /// raw requests, idle() true): statistics, id allocators, and any timer
  /// grids that outlive idleness. Defaults are no-ops so minimal test
  /// coalescers (and the coalescer_factory hook) keep working; every real
  /// controller overrides them.
  virtual void checkpoint_save(BinWriter& w) const { (void)w; }
  virtual void checkpoint_load(BinReader& r) { (void)r; }

 protected:
  Verifier* verifier_ = nullptr;
};

}  // namespace pacsim
