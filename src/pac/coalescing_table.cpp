#include "pac/coalescing_table.hpp"

#include <cassert>

namespace pacsim {

CoalescingTable::CoalescingTable(const CoalescingProtocol& protocol)
    : protocol_(protocol), width_(protocol.chunk_blocks()) {
  assert(width_ >= 1 && width_ <= 16);
  for (std::uint16_t pattern = 0; pattern < 16; ++pattern) {
    nibble_lut_[pattern] = bit_runs(pattern, 4);
  }
}

void CoalescingTable::append_run(std::vector<Segment>& out, Segment run) const {
  if (!protocol_.pow2_sizes_only) {
    out.push_back(run);
    return;
  }
  // Largest power-of-two pieces first, e.g. a 3-block run becomes 2+1.
  while (run.length > 0) {
    unsigned piece = 1;
    while (piece * 2 <= run.length) piece *= 2;
    out.push_back(Segment{run.offset, piece});
    run.offset += piece;
    run.length -= piece;
  }
}

std::vector<Segment> CoalescingTable::segments(std::uint16_t bits) const {
  std::vector<Segment> out;
  if (width_ <= 4) {
    // Single LUT reference, exactly as in Fig. 5(b) stage 3.
    for (const Segment& run : nibble_lut_[bits & ((1u << width_) - 1)]) {
      append_run(out, run);
    }
    return out;
  }

  // Wide sequences: look up each nibble and append, merging runs that span
  // nibble boundaries (paper section 4.1: "appending four 16-entry
  // coalescing tables together").
  Segment open{0, 0};  // run currently being merged across nibbles
  bool has_open = false;
  const std::uint32_t nibbles = lookups_per_sequence();
  for (std::uint32_t n = 0; n < nibbles; ++n) {
    const std::uint16_t nib = static_cast<std::uint16_t>((bits >> (4 * n)) & 0xF);
    for (const Segment& run : nibble_lut_[nib]) {
      const unsigned abs_offset = run.offset + 4 * n;
      if (has_open && open.offset + open.length == abs_offset) {
        open.length += run.length;  // continues across the boundary
      } else {
        if (has_open) append_run(out, open);
        open = Segment{abs_offset, run.length};
        has_open = true;
      }
    }
  }
  if (has_open) append_run(out, open);
  return out;
}

}  // namespace pacsim
