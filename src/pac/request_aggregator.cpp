#include "pac/request_aggregator.hpp"

#include <algorithm>
#include <cassert>

namespace pacsim {

RequestAggregator::RequestAggregator(const PacConfig& cfg, PacStats* stats)
    : cfg_(cfg), stats_(stats) {
  streams_.resize(cfg_.num_streams);
}

unsigned RequestAggregator::active_streams() const {
  unsigned n = 0;
  for (const auto& s : streams_) n += s.valid ? 1 : 0;
  return n;
}

namespace {
/// First and last granule block covered by a raw request within its page.
struct BlockSpan {
  unsigned first;
  unsigned last;
};

BlockSpan block_span(const MemRequest& request, const CoalescingProtocol& p) {
  const unsigned shift = p.granule_shift();
  return BlockSpan{
      static_cast<unsigned>(page_offset(request.paddr) >> shift),
      static_cast<unsigned>(page_offset(request.paddr + request.bytes - 1) >>
                            shift)};
}
}  // namespace

CoalescingStream* RequestAggregator::find_match(const MemRequest& request) {
  assert(request.op == MemOp::kLoad || request.op == MemOp::kStore);

  const Addr ppn = request.ppn();
  const bool store = request.is_store();
  const BlockSpan span = block_span(request, cfg_.protocol);

  CoalescingStream* match = nullptr;
  for (auto& s : streams_) {
    if (!s.valid) continue;
    // Fig. 2 probe: physically adjacent to another page's buffered block?
    if (!s.force_flush && s.store == store) {
      if (s.ppn + 1 == ppn && span.first == 0 &&
          s.map.test(cfg_.protocol.blocks_per_page() - 1)) {
        ++stats_->cross_page_adjacent;
      } else if (s.ppn == ppn + 1 &&
                 span.last == cfg_.protocol.blocks_per_page() - 1 &&
                 s.map.test(0)) {
        ++stats_->cross_page_adjacent;
      }
    }
    if (s.ppn == ppn && s.store == store && !s.force_flush &&
        match == nullptr) {
      match = &s;
    }
  }
  return match;
}

void RequestAggregator::merge(CoalescingStream& stream,
                              const MemRequest& request) {
  const BlockSpan span = block_span(request, cfg_.protocol);
  for (unsigned b = span.first; b <= span.last; ++b) stream.map.set(b);
  ++stream.count;
  stream.raws.push_back(RawRef{static_cast<std::uint16_t>(span.first),
                               static_cast<std::uint16_t>(span.last),
                               request.id});
}

bool RequestAggregator::allocate(const MemRequest& request, Cycle now) {
  for (auto& s : streams_) {
    if (s.valid) continue;
    const BlockSpan span = block_span(request, cfg_.protocol);
    s.reset();
    s.valid = true;
    s.ppn = request.ppn();
    s.store = request.is_store();
    s.count = 1;
    s.allocated_at = now;
    for (unsigned b = span.first; b <= span.last; ++b) s.map.set(b);
    s.raws.push_back(RawRef{static_cast<std::uint16_t>(span.first),
                            static_cast<std::uint16_t>(span.last),
                            request.id});
    return true;
  }
  return false;
}

RequestAggregator::InsertResult RequestAggregator::insert(
    const MemRequest& request, Cycle now) {
  if (CoalescingStream* match = find_match(request)) {
    merge(*match, request);
    return InsertResult::kMerged;
  }
  return allocate(request, now) ? InsertResult::kAllocated
                                : InsertResult::kNoStream;
}

bool RequestAggregator::flush_due(const CoalescingStream& s, Cycle now) const {
  if (!s.valid) return false;
  if (s.force_flush) return true;
  if (now - s.allocated_at >= cfg_.timeout) return true;
  if (cfg_.flush_on_full_chunk) {
    const unsigned width = cfg_.protocol.chunk_blocks();
    const std::uint16_t full = static_cast<std::uint16_t>((1u << width) - 1);
    for (unsigned c = 0; c < cfg_.protocol.chunks_per_page(); ++c) {
      if (s.map.chunk(c, width) == full) return true;
    }
  }
  return false;
}

namespace {
bool class_matches(const CoalescingStream& s,
                   RequestAggregator::FlushClass cls) {
  switch (cls) {
    case RequestAggregator::FlushClass::kAny: return true;
    case RequestAggregator::FlushClass::kSingle: return !s.coalescing();
    case RequestAggregator::FlushClass::kCoalescing: return s.coalescing();
  }
  return true;
}
}  // namespace

bool RequestAggregator::has_flushable(Cycle now, FlushClass cls) const {
  for (const auto& s : streams_) {
    if (flush_due(s, now) && class_matches(s, cls)) return true;
  }
  return false;
}

std::optional<CoalescingStream> RequestAggregator::take_flushable(
    Cycle now, FlushClass cls) {
  CoalescingStream* oldest = nullptr;
  for (auto& s : streams_) {
    if (flush_due(s, now) && class_matches(s, cls) &&
        (oldest == nullptr || s.allocated_at < oldest->allocated_at)) {
      oldest = &s;
    }
  }
  if (oldest == nullptr) return std::nullopt;

  if (oldest->force_flush) {
    ++stats_->fence_flushes;
  } else if (now - oldest->allocated_at >= cfg_.timeout) {
    ++stats_->timeout_flushes;
  } else {
    ++stats_->full_chunk_flushes;
  }
  ++stats_->flushed_streams;

  CoalescingStream out = std::move(*oldest);
  out.flushed_at = now;
  oldest->reset();
  return out;
}

Cycle RequestAggregator::next_flush_deadline(Cycle now) const {
  Cycle bound = kNeverCycle;
  for (const auto& s : streams_) {
    if (!s.valid) continue;
    // flush_due() is monotone in `now`: once due, a stream stays due until
    // taken. Already-due streams (force flush, expired timeout, full chunk)
    // pin the bound to `now`; the rest become due exactly at timeout expiry.
    bound = std::min(bound, flush_due(s, now)
                                ? now
                                : s.allocated_at + cfg_.timeout);
  }
  return std::max(bound, now);
}

void RequestAggregator::force_flush_all() {
  for (auto& s : streams_) {
    if (s.valid) s.force_flush = true;
  }
}

}  // namespace pacsim
