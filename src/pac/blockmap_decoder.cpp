#include "pac/blockmap_decoder.hpp"

#include <cassert>

namespace pacsim {

BlockMapDecoder::BlockMapDecoder(const PacConfig& cfg, PacStats* stats)
    : cfg_(cfg), stats_(stats) {}

void BlockMapDecoder::accept(CoalescingStream stream, Cycle now) {
  assert(can_accept());
  decode_done_ = now + cfg_.decode_cycles;
  pending_.clear();
  next_write_ = 0;

  const unsigned width = cfg_.protocol.chunk_blocks();
  for (unsigned c = 0; c < cfg_.protocol.chunks_per_page(); ++c) {
    const std::uint16_t bits = stream.map.chunk(c, width);
    if (bits == 0) continue;
    BlockSequence seq;
    seq.ppn = stream.ppn;
    seq.store = stream.store;
    seq.chunk_index = static_cast<std::uint16_t>(c);
    seq.bits = bits;
    const unsigned chunk_lo = c * width;
    const unsigned chunk_hi = chunk_lo + width - 1;
    for (const RawRef& raw : stream.raws) {
      // A raw reference is owned by the chunk holding its first block, so
      // every raw id lands in exactly one downstream device request.
      if (raw.first_block >= chunk_lo && raw.first_block <= chunk_hi) {
        seq.raws.push_back(raw);
      }
    }
    pending_.push_back(std::move(seq));
  }
  current_ = std::move(stream);
}

bool BlockMapDecoder::try_attach(Addr ppn, bool store, unsigned first_block,
                                 unsigned last_block, std::uint64_t raw_id) {
  if (!current_.has_value()) return false;
  const unsigned width = cfg_.protocol.chunk_blocks();
  for (std::size_t i = next_write_; i < pending_.size(); ++i) {
    BlockSequence& seq = pending_[i];
    if (seq.ppn != ppn || seq.store != store) continue;
    const unsigned chunk_lo = seq.chunk_index * width;
    if (first_block < chunk_lo || last_block >= chunk_lo + width) continue;
    bool covered = true;
    for (unsigned b = first_block; b <= last_block && covered; ++b) {
      covered = (seq.bits >> (b - chunk_lo)) & 1;
    }
    if (!covered) continue;
    seq.raws.push_back(RawRef{static_cast<std::uint16_t>(first_block),
                              static_cast<std::uint16_t>(last_block), raw_id});
    return true;
  }
  return false;
}

void BlockMapDecoder::tick(Cycle now, FixedQueue<BlockSequence>& out) {
  if (!current_.has_value() || now < decode_done_) return;
  // Sequential writes over the shared data bus: one chunk per cycle.
  if (next_write_ < pending_.size()) {
    if (out.full()) return;  // buffer back-pressure stalls stage 2
    BlockSequence seq = std::move(pending_[next_write_]);
    seq.buffered_at = now;
    const bool ok = out.push(std::move(seq));
    assert(ok);
    (void)ok;
    ++next_write_;
    if (next_write_ < pending_.size()) return;
  }
  // All chunks written: stage-2 latency is flush -> last buffer write.
  stats_->stage2_latency.add(static_cast<double>(now - current_->flushed_at));
  current_.reset();
  pending_.clear();
  next_write_ = 0;
}

}  // namespace pacsim
