// Coalescing protocol descriptors: how PAC adapts to a target 3D-stacked
// memory device (paper section 4.1, "Applicability").
//
// PAC is retargeted by changing only the coalescing granule and the maximum
// request size; the pipeline logic is untouched. The chunk width (blocks per
// maximal request) determines the block-sequence width: 4 bits for HMC 2.1,
// 16 bits for HBM-row or fine-grained coalescing.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bitops.hpp"
#include "common/types.hpp"

namespace pacsim {

struct CoalescingProtocol {
  std::string_view name = "hmc2";
  std::uint32_t granule = 64;        ///< coalescing block size in bytes
  std::uint32_t max_request = 256;   ///< maximal device request in bytes
  bool pow2_sizes_only = false;      ///< restrict requests to 64/128/256 B

  /// Blocks per maximal request == width of one block-sequence entry.
  [[nodiscard]] std::uint32_t chunk_blocks() const {
    return max_request / granule;
  }
  [[nodiscard]] std::uint32_t blocks_per_page() const {
    return static_cast<std::uint32_t>(kPageSize / granule);
  }
  [[nodiscard]] std::uint32_t chunks_per_page() const {
    return blocks_per_page() / chunk_blocks();
  }
  [[nodiscard]] unsigned granule_shift() const { return log2_exact(granule); }

  /// HMC 2.1: 64 B blocks, 256 B max packets (the paper's default target).
  static constexpr CoalescingProtocol hmc2() { return {"hmc2", 64, 256, false}; }
  /// HMC 1.0: max request limited to 128 B.
  static constexpr CoalescingProtocol hmc1() { return {"hmc1", 64, 128, false}; }
  /// HBM: 64 B blocks coalesced up to the 1 KB row (16-bit block sequence).
  static constexpr CoalescingProtocol hbm() { return {"hbm", 64, 1024, false}; }
  /// Fine-grained mode used for paper Fig. 10b: coalesce at the actual
  /// 16 B FLIT granularity instead of cache lines.
  static constexpr CoalescingProtocol hmc_fine() {
    return {"hmc-fine", 16, 256, false};
  }
};

}  // namespace pacsim
