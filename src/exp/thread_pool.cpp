#include "exp/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <utility>

namespace pacsim::exp {

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = std::max(1u, threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && running_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
    }
  }
}

unsigned default_jobs() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for(unsigned jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  ThreadPool pool(static_cast<unsigned>(
      std::min<std::size_t>(jobs, n)));
  std::mutex err_mu;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&, i] {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace pacsim::exp
