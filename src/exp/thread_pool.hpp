// Fixed-size thread pool for the sweep-execution subsystem.
//
// Deliberately minimal: a mutex/condvar-protected FIFO job queue drained by
// a fixed set of std::threads — no work stealing, no dynamic sizing, no
// external dependencies. Simulations are seconds-long, so queue contention
// is irrelevant next to determinism and auditability.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pacsim::exp {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(unsigned threads);
  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one job; any worker may pick it up.
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes workers on submit/stop
  std::condition_variable idle_cv_;  ///< wakes wait_idle when all quiesce
  unsigned running_ = 0;             ///< jobs currently executing
  bool stop_ = false;
};

/// Number of parallel jobs to run by default: the hardware concurrency,
/// never less than 1 (hardware_concurrency may legally return 0).
unsigned default_jobs();

/// Run `fn(0) .. fn(n-1)` across up to `jobs` pool threads and wait for all
/// of them. `jobs <= 1` runs serially on the calling thread (no threads are
/// spawned), preserving single-threaded behavior exactly. The first
/// exception thrown by any job is rethrown here after the pool drains.
void parallel_for(unsigned jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace pacsim::exp
