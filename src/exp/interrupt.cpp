#include "exp/interrupt.hpp"

#include <csignal>

#include <atomic>

namespace pacsim {
namespace {

std::atomic<bool> g_interrupted{false};
std::atomic<bool> g_installed{false};

extern "C" void pacsim_on_interrupt(int signum) {
  g_interrupted.store(true, std::memory_order_relaxed);
  // One chance at a graceful flush; the next signal kills the process.
  std::signal(signum, SIG_DFL);
}

}  // namespace

void install_interrupt_handler() {
  if (g_installed.exchange(true)) return;
  std::signal(SIGINT, &pacsim_on_interrupt);
  std::signal(SIGTERM, &pacsim_on_interrupt);
}

bool interrupt_requested() {
  return g_interrupted.load(std::memory_order_relaxed);
}

bool interrupt_handler_installed() {
  return g_installed.load(std::memory_order_relaxed);
}

void reset_interrupt_for_testing() {
  g_interrupted.store(false, std::memory_order_relaxed);
  if (g_installed.load(std::memory_order_relaxed)) {
    // raise() in a test resets the disposition to SIG_DFL; re-arm it.
    std::signal(SIGINT, &pacsim_on_interrupt);
    std::signal(SIGTERM, &pacsim_on_interrupt);
  }
}

}  // namespace pacsim
