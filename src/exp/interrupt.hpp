// Cooperative SIGINT/SIGTERM handling for the bench harnesses.
//
// A sweep interrupted at the terminal should not lose its artifact: the
// handler only sets an atomic flag, the sweep runner polls it, cancels the
// in-flight jobs cooperatively, and the harness flushes a partial report
// whose unfinished cells carry status "interrupted". The handler resets
// the disposition to SIG_DFL after the first signal, so a second Ctrl-C
// kills the process the ordinary way if the cooperative path wedges.
#pragma once

namespace pacsim {

/// Install the SIGINT/SIGTERM flag-setting handler (idempotent). Call once
/// from the harness before starting work.
void install_interrupt_handler();

/// True once SIGINT or SIGTERM has been received.
[[nodiscard]] bool interrupt_requested();

/// True once install_interrupt_handler() has run. The sweep runner uses
/// this to decide whether it must poll the flag.
[[nodiscard]] bool interrupt_handler_installed();

/// Clear the received-signal flag (the installed disposition is not
/// restored). Tests raise() a signal and must reset for later tests.
void reset_interrupt_for_testing();

}  // namespace pacsim
