#include "exp/sweep_runner.hpp"

#include <atomic>
#include <cassert>
#include <map>
#include <memory>
#include <mutex>

#include "exp/thread_pool.hpp"
#include "sim/runner.hpp"

namespace pacsim::exp {

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<RunResult> SweepRunner::run(const std::vector<SweepJob>& sweep,
                                        const WorkloadConfig& wcfg) const {
  // Per-suite shared trace state. The map is fully built before any worker
  // starts, so workers only ever read the map structure; the mapped values
  // are synchronized via call_once and the release/acquire counter.
  struct SuiteState {
    std::once_flag once;
    std::shared_ptr<const std::vector<Trace>> traces;
    std::atomic<std::size_t> remaining{0};
  };
  std::map<const Workload*, SuiteState> suites;
  for (const SweepJob& job : sweep) {
    assert(job.suite != nullptr && "SweepJob without a suite");
    suites[job.suite].remaining.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<RunResult> results(sweep.size());
  parallel_for(jobs_, sweep.size(), [&](std::size_t i) {
    const SweepJob& job = sweep[i];
    SuiteState& state = suites.at(job.suite);
    std::call_once(state.once, [&] {
      state.traces = std::make_shared<const std::vector<Trace>>(
          job.suite->generate(wcfg));
    });
    // Pin the traces for the duration of this simulation: the last job of
    // the suite drops the shared copy below, and this local reference keeps
    // the storage alive through our own simulate().
    const std::shared_ptr<const std::vector<Trace>> traces = state.traces;

    SystemConfig cfg = job.cfg;
    cfg.num_cores = wcfg.num_cores;
    results[i] = simulate(cfg, *traces);

    // Free the suite's traces as soon as its last simulation retires, so a
    // wide sweep never holds more trace sets than it has suites in flight.
    if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      state.traces.reset();
    }
  });
  return results;
}

}  // namespace pacsim::exp
