#include "exp/sweep_runner.hpp"

#include <atomic>
#include <cassert>
#include <map>
#include <memory>

#include "exp/thread_pool.hpp"
#include "sim/runner.hpp"

namespace pacsim::exp {

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<RunResult> SweepRunner::run(const std::vector<SweepJob>& sweep,
                                        const WorkloadConfig& wcfg,
                                        TraceStore* store) const {
  // The store deduplicates generation (its per-entry once_flag makes the
  // first job of each suite generate while the rest block and share). The
  // ephemeral fallback preserves the historical memory profile: entries
  // are released as soon as their last job retires.
  std::unique_ptr<TraceStore> ephemeral;
  if (store == nullptr) {
    ephemeral = std::make_unique<TraceStore>();
    store = ephemeral.get();
  }

  // Per-suite job counts, fully built before any worker starts, so workers
  // only ever read the map structure; the counters are atomic.
  struct SuiteState {
    std::atomic<std::size_t> remaining{0};
  };
  std::map<const Workload*, SuiteState> suites;
  for (const SweepJob& job : sweep) {
    assert(job.suite != nullptr && "SweepJob without a suite");
    suites[job.suite].remaining.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<RunResult> results(sweep.size());
  parallel_for(jobs_, sweep.size(), [&](std::size_t i) {
    const SweepJob& job = sweep[i];
    // The returned handle pins the traces for the duration of this
    // simulation even if the entry is released or evicted mid-run.
    const TraceStore::Acquired acquired =
        acquire_traces(store, *job.suite, wcfg);

    SystemConfig cfg = job.cfg;
    cfg.num_cores = wcfg.num_cores;
    results[i] = simulate(cfg, acquired.traces);
    results[i].throughput.gen_seconds = acquired.seconds;

    if (ephemeral &&
        suites.at(job.suite).remaining.fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      store->release(trace_key(*job.suite, wcfg));
    }
  });
  return results;
}

}  // namespace pacsim::exp
