#include "exp/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/concurrency.hpp"
#include "core/verifier.hpp"
#include "exp/interrupt.hpp"
#include "exp/thread_pool.hpp"
#include "sim/runner.hpp"

namespace pacsim::exp {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             SteadyClock::now().time_since_epoch())
      .count();
}

/// Per-job watchdog state. `deadline_ns` < 0 means "not running" (the
/// watchdog skips the slot); the worker publishes its deadline when the job
/// starts and retracts it when the job ends.
struct JobCtl {
  std::atomic<bool> cancel{false};
  std::atomic<std::int64_t> deadline_ns{-1};
};

}  // namespace

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

std::vector<JobOutcome> SweepRunner::run_isolated(
    const std::vector<SweepJob>& sweep, const WorkloadConfig& wcfg,
    const SweepOptions& opts, TraceStore* store) const {
  // The store deduplicates generation (its per-entry once_flag makes the
  // first job of each suite generate while the rest block and share). The
  // ephemeral fallback preserves the historical memory profile: entries
  // are released as soon as their last job retires - including failed ones.
  std::unique_ptr<TraceStore> ephemeral;
  if (store == nullptr) {
    ephemeral = std::make_unique<TraceStore>();
    store = ephemeral.get();
  }

  // Per-suite job counts, fully built before any worker starts, so workers
  // only ever read the map structure; the counters are atomic.
  struct SuiteState {
    std::atomic<std::size_t> remaining{0};
  };
  std::map<const Workload*, SuiteState> suites;
  for (const SweepJob& job : sweep) {
    assert(job.suite != nullptr && "SweepJob without a suite");
    suites[job.suite].remaining.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<JobOutcome> outcomes(sweep.size());
  std::vector<JobCtl> ctl(sweep.size());

  // The watchdog polls coarse deadlines instead of arming per-job timers:
  // simulations run seconds-to-minutes, so a (timeout/8, capped) poll
  // period costs nothing and keeps the design free of signal handling. The
  // same thread doubles as the interrupt broadcaster: once the harness's
  // SIGINT/SIGTERM flag is up, every in-flight job is cancelled so the
  // partial report can flush promptly.
  const bool timed = opts.job_timeout_seconds > 0.0;
  const bool watch_interrupt = interrupt_handler_installed();
  const auto timeout_ns = static_cast<std::int64_t>(
      opts.job_timeout_seconds * 1e9);
  std::atomic<bool> watchdog_stop{false};
  std::thread watchdog;
  if (timed || watch_interrupt) {
    watchdog = std::thread([&] {
      const auto poll = std::chrono::nanoseconds(
          timed ? std::clamp<std::int64_t>(timeout_ns / 8, 1'000'000,
                                           50'000'000)
                : 10'000'000);
      while (!watchdog_stop.load(std::memory_order_acquire)) {
        if (watch_interrupt && interrupt_requested()) {
          for (JobCtl& c : ctl) c.cancel.store(true, std::memory_order_release);
        }
        if (timed) {
          const std::int64_t t = now_ns();
          for (JobCtl& c : ctl) {
            const std::int64_t deadline =
                c.deadline_ns.load(std::memory_order_acquire);
            if (deadline >= 0 && t > deadline) {
              c.cancel.store(true, std::memory_order_release);
            }
          }
        }
        std::this_thread::sleep_for(poll);
      }
    });
  }

  // Run one job into `outcome`. Shared between the sweep proper and the
  // diagnostic verify=full re-runs; the trace-release bookkeeping stays in
  // the parallel_for wrapper so a re-run never double-releases an entry.
  auto execute = [&](std::size_t i, JobOutcome& outcome, bool verify_full) {
    const SweepJob& job = sweep[i];
    const auto start = SteadyClock::now();
    ctl[i].cancel.store(false, std::memory_order_release);
    if (timed) {
      ctl[i].deadline_ns.store(now_ns() + timeout_ns,
                               std::memory_order_release);
    }
    const auto classify = [&](const char* what) {
      if (ctl[i].cancel.load(std::memory_order_acquire)) {
        if (watch_interrupt && interrupt_requested()) {
          outcome.status = JobOutcome::Status::kInterrupted;
          outcome.error = std::string("interrupted: ") + what;
        } else {
          outcome.status = JobOutcome::Status::kTimeout;
          outcome.error = "exceeded job timeout of " +
                          std::to_string(opts.job_timeout_seconds) +
                          "s: " + what;
        }
      } else {
        outcome.status = JobOutcome::Status::kFailed;
        outcome.error = what;
      }
    };
    try {
      // The returned handle pins the traces for the duration of this
      // simulation even if the entry is released or evicted mid-run.
      const TraceStore::Acquired acquired =
          acquire_traces(store, *job.suite, wcfg);

      SystemConfig cfg = job.cfg;
      cfg.num_cores = wcfg.num_cores;
      if (verify_full) cfg.verify.level = VerifyLevel::kFull;
      if (timed || watch_interrupt) cfg.cancel = &ctl[i].cancel;
      outcome.result = simulate(cfg, acquired.traces);
      outcome.result.throughput.gen_seconds = acquired.seconds;
      outcome.status = JobOutcome::Status::kOk;
    } catch (const VerificationError& e) {
      outcome.exception = std::current_exception();
      outcome.forensics = e.forensics_path();
      classify(e.what());
    } catch (const std::exception& e) {
      outcome.exception = std::current_exception();
      classify(e.what());
    } catch (...) {
      outcome.exception = std::current_exception();
      outcome.status = JobOutcome::Status::kFailed;
      outcome.error = "unknown exception";
    }
    ctl[i].deadline_ns.store(-1, std::memory_order_release);
    outcome.wall_seconds =
        std::chrono::duration<double>(SteadyClock::now() - start).count();
  };

  // Register the sweep's parallelism so intra-run `threads=` requests in
  // the jobs clamp themselves against the remaining hardware budget.
  const ActiveJobsGuard jobs_guard(
      static_cast<unsigned>(std::min<std::size_t>(jobs_, sweep.size())));
  parallel_for(jobs_, sweep.size(), [&](std::size_t i) {
    const SweepJob& job = sweep[i];
    JobOutcome& outcome = outcomes[i];
    if (watch_interrupt && interrupt_requested()) {
      // Jobs that have not started yet are skipped outright so a Ctrl-C
      // drains the pool in one poll period instead of one sweep row.
      outcome.status = JobOutcome::Status::kInterrupted;
      outcome.error = "interrupted before start";
    } else {
      execute(i, outcome, /*verify_full=*/false);
    }

    if (ephemeral &&
        suites.at(job.suite).remaining.fetch_sub(
            1, std::memory_order_acq_rel) == 1) {
      store->release(trace_key(*job.suite, wcfg));
    }
  });

  // Diagnostic pass: re-run each failed / timed-out cell once with the
  // full runtime verifier so the report can say *why* it went wrong (or
  // that it did not reproduce). Serial on the calling thread - failures
  // are rare and the re-run is the expensive verify=full configuration.
  if (opts.diagnose_failures) {
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      JobOutcome& outcome = outcomes[i];
      if (outcome.ok()) continue;
      if (outcome.status == JobOutcome::Status::kInterrupted) continue;
      if (watch_interrupt && interrupt_requested()) break;
      JobOutcome second;
      execute(i, second, /*verify_full=*/true);
      outcome.diagnosed = true;
      if (second.ok()) {
        outcome.diagnosis =
            "re-run at verify=full completed cleanly "
            "(transient or timing-dependent failure)";
      } else {
        outcome.diagnosis = second.error;
        if (!second.forensics.empty()) outcome.forensics = second.forensics;
      }
    }
  }

  if (watchdog.joinable()) {
    watchdog_stop.store(true, std::memory_order_release);
    watchdog.join();
  }
  return outcomes;
}

std::vector<RunResult> SweepRunner::run(const std::vector<SweepJob>& sweep,
                                        const WorkloadConfig& wcfg,
                                        TraceStore* store) const {
  std::vector<JobOutcome> outcomes =
      run_isolated(sweep, wcfg, SweepOptions{}, store);
  std::vector<RunResult> results;
  results.reserve(outcomes.size());
  for (JobOutcome& outcome : outcomes) {
    if (!outcome.ok()) {
      // Propagate the first failure in job order (run() keeps the historic
      // all-or-nothing contract; run_isolated() is the tolerant variant).
      if (outcome.exception) std::rethrow_exception(outcome.exception);
      throw std::runtime_error(outcome.error);
    }
    results.push_back(std::move(outcome.result));
  }
  return results;
}

}  // namespace pacsim::exp
