// Sweep execution: run many independent (suite, SystemConfig) simulations
// across a fixed thread pool.
//
// Every figure-reproduction bench is a grid of independent `simulate()`
// calls — each builds its own System, so the only shared inputs are the
// immutable per-suite traces. The runner routes trace acquisition through
// one TraceStore shared by every worker, so each distinct suite's traces
// are generated exactly once per sweep regardless of how many coalescer
// kinds consume them, and returns the RunResults in job order, so every
// table printed from them is bit-identical to a serial run. `jobs = 1`
// executes inline on the calling thread.
#pragma once

#include <exception>
#include <string>
#include <vector>

#include "core/trace_store.hpp"
#include "sim/metrics.hpp"
#include "sim/system_config.hpp"
#include "workloads/workload.hpp"

namespace pacsim::exp {

/// One cell of a sweep grid: a suite simulated under a full SystemConfig.
/// The runner overrides `cfg.num_cores` with the workload's core count
/// (exactly as `run_suite` does); everything else is taken verbatim.
struct SweepJob {
  const Workload* suite = nullptr;
  SystemConfig cfg;
  std::string label;  ///< free-form name for tables / JSON reports
};

/// Hardened-execution options for run_isolated().
struct SweepOptions {
  /// Wall-clock budget per job, covering trace acquisition + simulation;
  /// 0 disables the watchdog. An over-budget job is cancelled cooperatively
  /// (SystemConfig::cancel) and reported as JobOutcome::Status::kTimeout.
  double job_timeout_seconds = 0.0;
  /// Re-run each failed / timed-out cell once at verify=full and record the
  /// verdict in JobOutcome::diagnosis. The re-run shares the same timeout
  /// budget; interrupted cells are never re-run.
  bool diagnose_failures = false;
};

/// What happened to one SweepJob under run_isolated().
struct JobOutcome {
  enum class Status { kOk, kFailed, kTimeout, kInterrupted };
  Status status = Status::kOk;
  RunResult result;       ///< valid only when status == kOk
  std::string error;      ///< diagnostic for kFailed / kTimeout
  double wall_seconds = 0.0;
  /// Original exception (kFailed / kTimeout), for callers that rethrow.
  std::exception_ptr exception;
  /// Verifier crash-dump path, when the failure was a VerificationError.
  std::string forensics;
  /// True when SweepOptions::diagnose_failures re-ran this cell.
  bool diagnosed = false;
  /// Outcome of the verify=full diagnostic re-run (empty if not diagnosed).
  std::string diagnosis;
  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

[[nodiscard]] constexpr const char* to_string(JobOutcome::Status s) {
  switch (s) {
    case JobOutcome::Status::kOk: return "ok";
    case JobOutcome::Status::kFailed: return "failed";
    case JobOutcome::Status::kTimeout: return "timeout";
    case JobOutcome::Status::kInterrupted: return "interrupted";
  }
  return "?";
}

class SweepRunner {
 public:
  /// `jobs = 0` selects the hardware concurrency.
  explicit SweepRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Execute every job; `results[i]` corresponds to `sweep[i]` regardless
  /// of the completion order. Trace acquisition goes through `store` when
  /// one is given (entries persist there for reuse by later sweeps or the
  /// warm tier); with `store == nullptr` an ephemeral store is used and
  /// each suite's traces are freed as soon as the last job using them
  /// finishes, so a wide sweep never holds more trace sets than it has
  /// suites in flight. Exceptions from any simulation propagate after the
  /// sweep drains.
  [[nodiscard]] std::vector<RunResult> run(const std::vector<SweepJob>& sweep,
                                           const WorkloadConfig& wcfg,
                                           TraceStore* store = nullptr) const;

  /// Fault-isolated variant: a throwing or hung job never takes the sweep
  /// down. Each job's exception is captured into its JobOutcome (status
  /// kFailed), and with `opts.job_timeout_seconds > 0` a watchdog thread
  /// cancels over-budget jobs cooperatively via SystemConfig::cancel
  /// (status kTimeout; a job hung inside trace generation is only reaped
  /// once the simulation starts checking the flag). When the harness has
  /// installed the interrupt handler (exp/interrupt.hpp), a SIGINT/SIGTERM
  /// cancels every in-flight job and marks unfinished cells kInterrupted so
  /// the caller can still flush a partial report. With
  /// `opts.diagnose_failures`, each failed / timed-out cell is re-run once
  /// at verify=full and the verdict lands in JobOutcome::diagnosis.
  /// Outcomes are in job order; completed jobs are bit-identical to run().
  [[nodiscard]] std::vector<JobOutcome> run_isolated(
      const std::vector<SweepJob>& sweep, const WorkloadConfig& wcfg,
      const SweepOptions& opts = {}, TraceStore* store = nullptr) const;

 private:
  unsigned jobs_;
};

}  // namespace pacsim::exp
