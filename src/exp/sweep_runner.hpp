// Sweep execution: run many independent (suite, SystemConfig) simulations
// across a fixed thread pool.
//
// Every figure-reproduction bench is a grid of independent `simulate()`
// calls — each builds its own System, so the only shared inputs are the
// immutable per-suite traces. The runner generates each distinct suite's
// traces exactly once (first job to need them wins, the rest reuse them),
// fans the simulations out over `jobs` threads, and returns the RunResults
// in job order, so every table printed from them is bit-identical to a
// serial run. `jobs = 1` executes inline on the calling thread.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/system_config.hpp"
#include "workloads/workload.hpp"

namespace pacsim::exp {

/// One cell of a sweep grid: a suite simulated under a full SystemConfig.
/// The runner overrides `cfg.num_cores` with the workload's core count
/// (exactly as `run_suite` does); everything else is taken verbatim.
struct SweepJob {
  const Workload* suite = nullptr;
  SystemConfig cfg;
  std::string label;  ///< free-form name for tables / JSON reports
};

class SweepRunner {
 public:
  /// `jobs = 0` selects the hardware concurrency.
  explicit SweepRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const { return jobs_; }

  /// Execute every job; `results[i]` corresponds to `sweep[i]` regardless
  /// of the completion order. Traces for each distinct Workload* are
  /// generated once from `wcfg` and freed as soon as the last job using
  /// them finishes. Exceptions from any simulation propagate after the
  /// sweep drains.
  [[nodiscard]] std::vector<RunResult> run(const std::vector<SweepJob>& sweep,
                                           const WorkloadConfig& wcfg) const;

 private:
  unsigned jobs_;
};

}  // namespace pacsim::exp
