#include "sim/sharded_system.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/concurrency.hpp"
#include "common/serialize.hpp"

namespace pacsim {
namespace {

constexpr char kSnapshotMagic[] = "PACSNAP";
constexpr std::uint32_t kSnapshotVersion = 1;

// Shard results are merged in ascending shard order, so every fold below is
// performed in a deterministic sequence and the merged doubles (RunningStat
// sums, energies) are bit-reproducible across runs and thread counts.

void merge(CoalescerStats& a, const CoalescerStats& b) {
  a.raw_requests += b.raw_requests;
  a.coalesced_away += b.coalesced_away;
  a.issued_requests += b.issued_requests;
  a.issued_payload_bytes += b.issued_payload_bytes;
  a.comparisons += b.comparisons;
  a.atomics += b.atomics;
  a.fences += b.fences;
  a.request_size_bytes.merge(b.request_size_bytes);
}

void merge(PacStats& a, const PacStats& b) {
  merge(a.base, b.base);
  a.flushed_streams += b.flushed_streams;
  a.timeout_flushes += b.timeout_flushes;
  a.fence_flushes += b.fence_flushes;
  a.full_chunk_flushes += b.full_chunk_flushes;
  a.c0_bypass_requests += b.c0_bypass_requests;
  a.controller_bypass_requests += b.controller_bypass_requests;
  a.cross_page_adjacent += b.cross_page_adjacent;
  a.stream_occupancy.merge(b.stream_occupancy);
  a.stage2_latency.merge(b.stage2_latency);
  a.stage3_latency.merge(b.stage3_latency);
  a.maq_fill_latency.merge(b.maq_fill_latency);
  a.request_latency.merge(b.request_latency);
  a.mshr_merges += b.mshr_merges;
}

void merge(BackendStats& a, const BackendStats& b) { a.merge(b); }

void merge(ResilienceStats& a, const ResilienceStats& b) {
  a.enabled = a.enabled || b.enabled;
  a.fault.link_errors += b.fault.link_errors;
  a.fault.response_drops += b.fault.response_drops;
  a.fault.vault_stalls += b.fault.vault_stalls;
  a.retry.retransmissions += b.retry.retransmissions;
  a.retry.nacks += b.retry.nacks;
  a.retry.timeout_fires += b.retry.timeout_fires;
  a.retry.spurious_timeouts += b.retry.spurious_timeouts;
  a.retry.retransmitted_bytes += b.retry.retransmitted_bytes;
  a.retry.max_retry_depth =
      std::max(a.retry.max_retry_depth, b.retry.max_retry_depth);
  a.retry.poisoned_completions += b.retry.poisoned_completions;
}

void merge(VerifyStats& a, const VerifyStats& b) {
  // enabled/level are config, identical across shards; keep shard 0's.
  a.issued += b.issued;
  a.accepted += b.accepted;
  a.merged += b.merged;
  a.device_requests += b.device_requests;
  a.dispatched_raws += b.dispatched_raws;
  a.responses += b.responses;
  a.responded_raws += b.responded_raws;
  a.retired += b.retired;
  a.fences += b.fences;
  a.nacks += b.nacks;
  a.retransmissions += b.retransmissions;
  a.poisoned += b.poisoned;
  a.violations += b.violations;
}

}  // namespace

ShardedSystem::ShardedSystem(const SystemConfig& cfg) : cfg_(cfg) {
  unsigned n = cfg.exec.shards != 0 ? cfg.exec.shards
                                    : std::max(1u, cfg.exec.threads);
  n = std::min(n, std::max(1u, cfg.num_cores));

  // Contiguous partition; the first (num_cores % n) shards get the extra
  // core, so the layout is a pure function of (num_cores, n).
  const std::uint32_t base = cfg.num_cores / n;
  const std::uint32_t rem = cfg.num_cores % n;
  shard_start_.reserve(n + 1);
  shard_start_.push_back(0);
  shards_.reserve(n);
  for (unsigned s = 0; s < n; ++s) {
    const std::uint32_t count = base + (s < rem ? 1 : 0);
    shard_start_.push_back(shard_start_.back() + count);

    SystemConfig scfg = cfg;
    scfg.num_cores = count;
    // Distinct deterministic streams per shard; XOR with the shard index
    // keeps shard 0 on the original seeds, so shards=1 reproduces the
    // classic single-System run bit-for-bit.
    scfg.page_table_seed ^= s;
    scfg.fault.seed ^= s;
    scfg.exec = ExecConfig{};  // shards never nest
    shards_.push_back(std::make_unique<System>(scfg));
  }
  loaded_.resize(cfg.num_cores);
}

void ShardedSystem::load_trace(std::uint32_t core, SharedTrace trace,
                               std::uint8_t process) {
  if (core >= cfg_.num_cores) {
    throw std::out_of_range("ShardedSystem::load_trace: core " +
                            std::to_string(core) + " of " +
                            std::to_string(cfg_.num_cores));
  }
  loaded_[core] = LoadedTrace{trace, process};
  const auto it =
      std::upper_bound(shard_start_.begin(), shard_start_.end(), core);
  const auto s = static_cast<std::size_t>(it - shard_start_.begin()) - 1;
  shards_[s]->load_trace(core - shard_start_[s], std::move(trace), process);
}

std::string ShardedSystem::snapshot_path(const std::string& dir,
                                         Cycle cycle) {
  return dir + "/ckpt-" + std::to_string(cycle) + ".pacsnap";
}

std::uint64_t ShardedSystem::trace_fingerprint() const {
  // Field-by-field (TraceOp has padding bytes a raw memory hash would read).
  const std::uint32_t cores = cfg_.num_cores;
  std::uint64_t h = fnv1a(&cores, sizeof(cores));
  for (const LoadedTrace& lt : loaded_) {
    h = fnv1a(&lt.process, sizeof(lt.process), h);
    if (lt.trace == nullptr) continue;
    for (const TraceOp& op : *lt.trace) {
      h = fnv1a(&op.vaddr, sizeof(op.vaddr), h);
      h = fnv1a(&op.arg, sizeof(op.arg), h);
      h = fnv1a(&op.kind, sizeof(op.kind), h);
    }
  }
  return h;
}

bool ShardedSystem::all_finished() const {
  for (const auto& s : shards_) {
    if (!s->is_finished()) return false;
  }
  return true;
}

void ShardedSystem::run_epoch(Cycle bound) {
  const std::size_t n = shards_.size();
  if (threads_effective_ <= 1 || n <= 1) {
    for (auto& s : shards_) {
      if (!s->is_finished()) s->run_until(bound);
    }
    return;
  }

  // Fork-join per epoch with dynamic shard claiming. Scheduling order is
  // irrelevant to the results (shards share no state), so work stealing
  // costs nothing in determinism and balances uneven shards.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(n);
  auto worker = [&]() {
    for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      if (shards_[i]->is_finished()) continue;
      try {
        shards_[i]->run_until(bound);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  const unsigned workers = std::min<unsigned>(
      threads_effective_, static_cast<unsigned>(n));
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (unsigned t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();

  // Rethrow the lowest-index failure so the surfaced error is deterministic
  // even when several shards fail in the same epoch.
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

void ShardedSystem::write_snapshot(Cycle bound) const {
  // checkpoint= mirrors jsondir=: the directory is created on demand so a
  // fresh path works without a prior mkdir.
  std::error_code ec;
  std::filesystem::create_directories(cfg_.exec.checkpoint_dir, ec);
  BinWriter w;
  w.str(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.u64(trace_fingerprint());
  w.u32(static_cast<std::uint32_t>(shards_.size()));
  w.u64(bound);
  for (const auto& s : shards_) {
    BinWriter shard;
    s->checkpoint_save(shard);
    w.str(shard.take());
  }
  write_file_atomic(snapshot_path(cfg_.exec.checkpoint_dir, bound),
                    w.take());
}

void ShardedSystem::maybe_checkpoint(Cycle bound) {
  if (cfg_.exec.checkpoint_every != 0 && bound < next_checkpoint_) return;
  for (const auto& s : shards_) {
    if (!s->quiescent()) {
      // Some shard has requests in flight across this boundary; the
      // attempt stays due and is retried at the next epoch.
      ++exec_.checkpoints_skipped;
      return;
    }
  }
  write_snapshot(bound);
  ++exec_.checkpoints_written;
  next_checkpoint_ = bound + cfg_.exec.checkpoint_every;
}

void ShardedSystem::restore_from(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SnapshotError("cannot open '" + path + "'");
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    throw SnapshotError("read error on '" + path + "'");
  }

  BinReader r(std::move(bytes));
  if (r.str() != kSnapshotMagic) throw SnapshotError("bad magic");
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    throw SnapshotError("unsupported snapshot version " +
                        std::to_string(version));
  }
  const std::uint64_t fp = r.u64();
  if (fp != trace_fingerprint()) {
    throw SnapshotError(
        "trace fingerprint mismatch (snapshot was taken with different "
        "workload traces or core count)");
  }
  if (r.u32() != shards_.size()) {
    throw SnapshotError("shard count mismatch");
  }
  bound_ = r.u64();
  for (auto& s : shards_) {
    BinReader shard(r.str());
    s->checkpoint_load(shard);
    if (!shard.exhausted()) {
      throw SnapshotError("trailing bytes in shard blob");
    }
  }
  if (!r.exhausted()) throw SnapshotError("trailing bytes in snapshot");

  exec_.restored = true;
  exec_.restore_cycle = bound_;
  exec_.restored_from = path;
}

RunResult ShardedSystem::run() {
  const auto wall_start = std::chrono::steady_clock::now();

  exec_.shards = static_cast<unsigned>(shards_.size());
  exec_.threads_requested = std::max(1u, cfg_.exec.threads);
  threads_effective_ = clamp_intra_run_threads(std::min<unsigned>(
      exec_.threads_requested, static_cast<unsigned>(shards_.size())));
  exec_.threads = threads_effective_;

  if (!cfg_.exec.restore_path.empty()) restore_from(cfg_.exec.restore_path);
  for (auto& s : shards_) s->begin_run();

  const Cycle epoch = std::max<Cycle>(1, cfg_.exec.epoch_cycles);
  const bool checkpointing = !cfg_.exec.checkpoint_dir.empty();
  next_checkpoint_ = bound_ + cfg_.exec.checkpoint_every;

  while (!all_finished()) {
    bound_ += epoch;
    run_epoch(bound_);
    ++exec_.epochs;
    if (checkpointing && !all_finished()) maybe_checkpoint(bound_);
  }

  RunResult out = merge_results();
  out.throughput.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  out.exec = exec_;
  return out;
}

RunResult ShardedSystem::merge_results() const {
  RunResult out = shards_.front()->collect_result();
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    const RunResult r = shards_[i]->collect_result();
    out.cycles = std::max(out.cycles, r.cycles);
    out.throughput.sim_cycles =
        std::max(out.throughput.sim_cycles, r.throughput.sim_cycles);
    out.throughput.fast_forward_jumps += r.throughput.fast_forward_jumps;
    out.throughput.skipped_cycles += r.throughput.skipped_cycles;
    merge(out.coal, r.coal);
    if (r.has_pac) {
      merge(out.pac, r.pac);
      out.has_pac = true;
    }
    merge(out.hmc, r.hmc);
    if (r.has_noc) {
      // Each shard owns a full fabric of identical layout; fold link-wise.
      out.noc.merge(r.noc);
      out.has_noc = true;
    }
    merge(out.resilience, r.resilience);
    merge(out.verification, r.verification);
    out.degradation.merge(r.degradation);
    for (std::size_t e = 0; e < out.energy.size(); ++e) {
      out.energy[e] += r.energy[e];
    }
    out.total_energy += r.total_energy;
    out.l1_hits += r.l1_hits;
    out.l1_misses += r.l1_misses;
    out.llc_hits += r.llc_hits;
    out.llc_misses += r.llc_misses;
    out.prefetches_issued += r.prefetches_issued;
    out.core_stall_cycles += r.core_stall_cycles;
    out.raw_trace.insert(out.raw_trace.end(), r.raw_trace.begin(),
                         r.raw_trace.end());
  }
  return out;
}

}  // namespace pacsim
