// Results of one full-system run and the derived evaluation metrics.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_injector.hpp"
#include "core/verifier.hpp"
#include "hmc/device_port.hpp"
#include "hmc/hmc_stats.hpp"
#include "hmc/power_model.hpp"
#include "mem/memory_backend.hpp"
#include "mem/packet.hpp"
#include "noc/noc_stats.hpp"
#include "pac/coalescer.hpp"
#include "pac/pac_stats.hpp"

namespace pacsim {

/// Fault-injection outcome of one run: what was injected (device side) and
/// what it cost to recover (requester-side retry port).
struct ResilienceStats {
  bool enabled = false;  ///< false = fault-free run, block omitted in JSON
  FaultStats fault;
  RetryStats retry;

  /// Degraded-bandwidth estimate: fraction of issued link payload that was
  /// useful (first-transmission) traffic. 1.0 when nothing was retransmitted.
  [[nodiscard]] double effective_payload_fraction(
      std::uint64_t issued_payload_bytes) const {
    const double total = static_cast<double>(issued_payload_bytes +
                                             retry.retransmitted_bytes);
    return total > 0.0 ? static_cast<double>(issued_payload_bytes) / total
                       : 1.0;
  }
};

/// Host-side performance of one run: how fast the simulator itself executed.
/// Wall-clock derived, so excluded from bit-identity comparisons between
/// fast-forward and naive runs.
struct SimThroughput {
  Cycle sim_cycles = 0;       ///< simulated cycles covered by the run
  double wall_seconds = 0.0;  ///< host wall-clock time inside System::run()
  /// Host wall-clock spent acquiring this run's traces: full generation on
  /// a TraceStore miss (or store-less run), the file load on a warm-tier
  /// hit, and 0.0 when the traces were already resident in memory. The
  /// generation-vs-simulation split of a sweep is sum(gen_seconds) vs
  /// sum(wall_seconds).
  double gen_seconds = 0.0;
  std::uint64_t fast_forward_jumps = 0;  ///< event-horizon jumps taken
  std::uint64_t skipped_cycles = 0;      ///< cycles covered by those jumps
  [[nodiscard]] double mcycles_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(sim_cycles) / 1e6 / wall_seconds
               : 0.0;
  }
};

/// How the run was executed: sharding, threading, epochs, and snapshot
/// provenance. Host-side like SimThroughput - excluded from bit-identity
/// comparisons except for `shards` (which changes the simulated topology)
/// and the restore provenance.
struct ExecStats {
  unsigned shards = 1;            ///< execution domains simulated
  unsigned threads = 1;           ///< effective worker threads used
  unsigned threads_requested = 1; ///< before the oversubscription clamp
  std::uint64_t epochs = 0;       ///< barrier synchronizations performed
  std::uint64_t checkpoints_written = 0;
  /// Checkpoint attempts skipped because a shard never reached a quiescent
  /// point before the next attempt came due.
  std::uint64_t checkpoints_skipped = 0;
  bool restored = false;          ///< run resumed from a snapshot
  Cycle restore_cycle = 0;        ///< max shard cycle in that snapshot
  std::string restored_from;      ///< snapshot path ("" when !restored)
};

struct RunResult {
  Cycle cycles = 0;  ///< total runtime in CPU cycles
  double ns_per_cycle = 0.5;

  SimThroughput throughput;  ///< host-side speed (not a simulated metric)
  ExecStats exec;            ///< sharding/threading/snapshot provenance

  CoalescerStats coal;
  PacStats pac;        ///< valid only when has_pac
  bool has_pac = false;

  /// Which substrate produced `hmc` (the field name predates the pluggable
  /// backends; it now holds whichever backend's BackendStats).
  BackendKind backend = BackendKind::kHmc;
  HmcStats hmc;
  /// Inter-cube fabric traffic (valid only when has_noc: the run executed
  /// on a MultiCubeBackend). Emitted as the JSON "interconnect" block.
  NocStats noc;
  bool has_noc = false;
  ResilienceStats resilience;
  /// Verifier counters (enabled=false on verify=off runs, block omitted in
  /// JSON). violations is always 0 here: a violating run throws instead of
  /// returning a RunResult.
  VerifyStats verification;
  std::array<PicoJoule, static_cast<std::size_t>(HmcOp::kCount)> energy{};
  PicoJoule total_energy = 0.0;

  /// Captured raw-request addresses (when SystemConfig::record_raw_trace).
  std::vector<Addr> raw_trace;

  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t llc_hits = 0, llc_misses = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t core_stall_cycles = 0;

  /// Paper Eq. (1).
  [[nodiscard]] double coalescing_efficiency() const {
    return coal.coalescing_efficiency();
  }
  /// Paper Eq. (2): payload over payload + per-transaction control bytes.
  [[nodiscard]] double transaction_eff() const {
    return transaction_efficiency(coal.issued_payload_bytes,
                                  coal.issued_requests);
  }
  /// Total bytes moved on the links (payload + control), for Fig. 10c.
  [[nodiscard]] std::uint64_t link_bytes() const {
    return coal.issued_payload_bytes +
           coal.issued_requests * kControlBytesPerTransaction;
  }
  [[nodiscard]] double runtime_ns() const {
    return static_cast<double>(cycles) * ns_per_cycle;
  }
  [[nodiscard]] double avg_hmc_latency_ns() const {
    return hmc.access_latency.mean() * ns_per_cycle;
  }
};

}  // namespace pacsim
