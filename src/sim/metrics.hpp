// Results of one full-system run and the derived evaluation metrics.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fault_injector.hpp"
#include "core/verifier.hpp"
#include "hmc/device_port.hpp"
#include "hmc/hmc_stats.hpp"
#include "hmc/power_model.hpp"
#include "mem/memory_backend.hpp"
#include "mem/packet.hpp"
#include "noc/noc_stats.hpp"
#include "pac/coalescer.hpp"
#include "pac/pac_stats.hpp"

namespace pacsim {

/// Fault-injection outcome of one run: what was injected (device side) and
/// what it cost to recover (requester-side retry port).
struct ResilienceStats {
  bool enabled = false;  ///< false = fault-free run, block omitted in JSON
  FaultStats fault;
  RetryStats retry;

  /// Degraded-bandwidth estimate: fraction of issued link payload that was
  /// useful (first-transmission) traffic. 1.0 when nothing was retransmitted.
  [[nodiscard]] double effective_payload_fraction(
      std::uint64_t issued_payload_bytes) const {
    const double total = static_cast<double>(issued_payload_bytes +
                                             retry.retransmitted_bytes);
    return total > 0.0 ? static_cast<double>(issued_payload_bytes) / total
                       : 1.0;
  }
};

/// Graceful-degradation outcome of a hard-failure timeline: integer-exact
/// capacity-availability integration, repair (MTTR) accounting, and the
/// sparing-based page-remap tallies. Only populated (enabled=true) when the
/// run carried a scheduled fault timeline.
struct DegradationStats {
  bool enabled = false;
  std::uint64_t events_fired = 0;  ///< scheduled events applied
  /// Capacity integral: one unit is one vault. `unit_cycles_total` is
  /// capacity_units x integrated cycles; `unit_cycles_lost` accumulates
  /// dead/unreachable units over the cycles they were out. Both are exact
  /// integers, so availability is bit-stable across FF/threaded runs.
  std::uint64_t capacity_units = 0;
  std::uint64_t unit_cycles_total = 0;
  std::uint64_t unit_cycles_lost = 0;
  std::uint64_t repairs = 0;              ///< link-up events on a dead link
  std::uint64_t repair_cycles_total = 0;  ///< summed down-time of repairs
  std::uint64_t pages_migrated = 0;       ///< sparing remaps performed
  std::uint64_t spares_used = 0;          ///< spare frames consumed
  std::uint64_t poisoned_raws = 0;        ///< raw requests declared lost
  /// Cycle the first scheduled event fired (kNeverCycle: none fired).
  Cycle first_failure_cycle = kNeverCycle;

  /// Fraction of vault-cycles that were available: 1.0 for a clean run.
  [[nodiscard]] double availability() const {
    return unit_cycles_total > 0
               ? 1.0 - static_cast<double>(unit_cycles_lost) /
                           static_cast<double>(unit_cycles_total)
               : 1.0;
  }
  /// Mean cycles from link-down to the matching link-up, over repairs.
  [[nodiscard]] double mttr_cycles() const {
    return repairs > 0 ? static_cast<double>(repair_cycles_total) /
                             static_cast<double>(repairs)
                       : 0.0;
  }

  /// Fold a shard's accounting in (integrals and tallies all sum).
  void merge(const DegradationStats& o) {
    enabled = enabled || o.enabled;
    events_fired += o.events_fired;
    capacity_units += o.capacity_units;
    unit_cycles_total += o.unit_cycles_total;
    unit_cycles_lost += o.unit_cycles_lost;
    repairs += o.repairs;
    repair_cycles_total += o.repair_cycles_total;
    pages_migrated += o.pages_migrated;
    spares_used += o.spares_used;
    poisoned_raws += o.poisoned_raws;
    first_failure_cycle = std::min(first_failure_cycle, o.first_failure_cycle);
  }
};

/// Host-side performance of one run: how fast the simulator itself executed.
/// Wall-clock derived, so excluded from bit-identity comparisons between
/// fast-forward and naive runs.
struct SimThroughput {
  Cycle sim_cycles = 0;       ///< simulated cycles covered by the run
  double wall_seconds = 0.0;  ///< host wall-clock time inside System::run()
  /// Host wall-clock spent acquiring this run's traces: full generation on
  /// a TraceStore miss (or store-less run), the file load on a warm-tier
  /// hit, and 0.0 when the traces were already resident in memory. The
  /// generation-vs-simulation split of a sweep is sum(gen_seconds) vs
  /// sum(wall_seconds).
  double gen_seconds = 0.0;
  std::uint64_t fast_forward_jumps = 0;  ///< event-horizon jumps taken
  std::uint64_t skipped_cycles = 0;      ///< cycles covered by those jumps
  [[nodiscard]] double mcycles_per_sec() const {
    return wall_seconds > 0.0
               ? static_cast<double>(sim_cycles) / 1e6 / wall_seconds
               : 0.0;
  }
};

/// How the run was executed: sharding, threading, epochs, and snapshot
/// provenance. Host-side like SimThroughput - excluded from bit-identity
/// comparisons except for `shards` (which changes the simulated topology)
/// and the restore provenance.
struct ExecStats {
  unsigned shards = 1;            ///< execution domains simulated
  unsigned threads = 1;           ///< effective worker threads used
  unsigned threads_requested = 1; ///< before the oversubscription clamp
  std::uint64_t epochs = 0;       ///< barrier synchronizations performed
  std::uint64_t checkpoints_written = 0;
  /// Checkpoint attempts skipped because a shard never reached a quiescent
  /// point before the next attempt came due.
  std::uint64_t checkpoints_skipped = 0;
  bool restored = false;          ///< run resumed from a snapshot
  Cycle restore_cycle = 0;        ///< max shard cycle in that snapshot
  std::string restored_from;      ///< snapshot path ("" when !restored)
};

struct RunResult {
  Cycle cycles = 0;  ///< total runtime in CPU cycles
  double ns_per_cycle = 0.5;

  SimThroughput throughput;  ///< host-side speed (not a simulated metric)
  ExecStats exec;            ///< sharding/threading/snapshot provenance

  CoalescerStats coal;
  PacStats pac;        ///< valid only when has_pac
  bool has_pac = false;

  /// Which substrate produced `hmc` (the field name predates the pluggable
  /// backends; it now holds whichever backend's BackendStats).
  BackendKind backend = BackendKind::kHmc;
  HmcStats hmc;
  /// Inter-cube fabric traffic (valid only when has_noc: the run executed
  /// on a MultiCubeBackend). Emitted as the JSON "interconnect" block.
  NocStats noc;
  bool has_noc = false;
  ResilienceStats resilience;
  /// Hard-failure availability/MTTR/sparing accounting (schema v9
  /// "degradation" block, omitted when no timeline was configured).
  DegradationStats degradation;
  /// Verifier counters (enabled=false on verify=off runs, block omitted in
  /// JSON). violations is always 0 here: a violating run throws instead of
  /// returning a RunResult.
  VerifyStats verification;
  std::array<PicoJoule, static_cast<std::size_t>(HmcOp::kCount)> energy{};
  PicoJoule total_energy = 0.0;

  /// Captured raw-request addresses (when SystemConfig::record_raw_trace).
  std::vector<Addr> raw_trace;

  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t llc_hits = 0, llc_misses = 0;
  std::uint64_t prefetches_issued = 0;
  std::uint64_t core_stall_cycles = 0;

  /// Paper Eq. (1).
  [[nodiscard]] double coalescing_efficiency() const {
    return coal.coalescing_efficiency();
  }
  /// Paper Eq. (2): payload over payload + per-transaction control bytes.
  [[nodiscard]] double transaction_eff() const {
    return transaction_efficiency(coal.issued_payload_bytes,
                                  coal.issued_requests);
  }
  /// Total bytes moved on the links (payload + control), for Fig. 10c.
  [[nodiscard]] std::uint64_t link_bytes() const {
    return coal.issued_payload_bytes +
           coal.issued_requests * kControlBytesPerTransaction;
  }
  [[nodiscard]] double runtime_ns() const {
    return static_cast<double>(cycles) * ns_per_cycle;
  }
  [[nodiscard]] double avg_hmc_latency_ns() const {
    return hmc.access_latency.mean() * ns_per_cycle;
  }
};

}  // namespace pacsim
