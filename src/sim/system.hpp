// The full simulated system: trace-driven cores -> private L1s -> shared
// LLC (+ stream prefetcher) -> miss/write-back queues -> coalescer (PAC,
// MSHR-DMC or direct controller) -> memory backend (HMC cube by default;
// backend=hbm|ddr swap the substrate). Paper Fig. 3.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "cache/prefetcher.hpp"
#include "common/fixed_queue.hpp"
#include "core/fault_injector.hpp"
#include "core/trace.hpp"
#include "core/verifier.hpp"
#include "hmc/device_port.hpp"
#include "mem/memory_backend.hpp"
#include "mem/page_table.hpp"
#include "pac/coalescer.hpp"
#include "pac/pac.hpp"
#include "sim/metrics.hpp"
#include "sim/system_config.hpp"

namespace pacsim {

class MultiCubeBackend;

class System {
 public:
  explicit System(const SystemConfig& cfg);

  /// Install the trace `core` executes; `process` selects the address space
  /// (multiprocessing experiments give core groups distinct processes).
  /// This overload takes ownership of the given trace (no further copies).
  void load_trace(std::uint32_t core, Trace trace, std::uint8_t process = 0);

  /// Zero-copy variant: the core executes directly out of the shared
  /// immutable trace (TraceStore handles, aliases into a SharedTraceSet, or
  /// non-owning aliases of caller-kept storage that must outlive run()).
  /// A null handle loads an empty trace.
  void load_trace(std::uint32_t core, SharedTrace trace,
                  std::uint8_t process = 0);

  /// Run to completion (all traces executed, all misses drained).
  RunResult run();

  // --- Bounded execution (sharded epoch scheduler; see ShardedSystem). ---
  // run() is exactly begin_run(); run_until(kNeverCycle); collect_result().
  // The split lets a scheduler advance the System in epochs: run_until(b)
  // executes the identical per-cycle sequence as run(), with fast-forward
  // jumps additionally clamped to `b` - a clamp that cannot perturb results
  // because jumps are analytically exact for any target within the event
  // horizon, so state at every cycle matches the unbounded loop.

  /// Reset per-run accounting (done-core count, wall-clock start). Call
  /// once before the first run_until().
  void begin_run();
  /// Advance until finished() or now() >= bound. Returns finished().
  bool run_until(Cycle bound);
  /// Harvest the RunResult at the current cycle (normally after finishing).
  [[nodiscard]] RunResult collect_result() const;
  [[nodiscard]] bool is_finished() const { return finished(); }

  // --- Checkpoint/restore (quiescent points only). ---
  /// True when no raw request is buffered or in flight anywhere on the
  /// memory path: the state capture below is complete at such a cycle
  /// (cores may still be mid-compute; their state is a few scalars).
  [[nodiscard]] bool quiescent() const { return !has_outstanding_work(); }
  /// Serialize the full simulation state. Pre: quiescent(). Restoring into
  /// a freshly constructed System with the same config and loaded traces
  /// resumes the run bit-identically.
  void checkpoint_save(BinWriter& w) const;
  /// Restore state saved by checkpoint_save. Call after load_trace (the
  /// traces themselves are not in the snapshot) and before begin_run.
  void checkpoint_load(BinReader& r);

  [[nodiscard]] const Coalescer& coalescer() const { return *coalescer_; }
  [[nodiscard]] const MemoryBackend& device() const { return *device_; }
  [[nodiscard]] const DevicePort& port() const { return *port_; }
  [[nodiscard]] Cycle now() const { return now_; }

 private:
  struct CoreState {
    SharedTrace trace;  ///< never null once System's constructor ran
    std::size_t pc = 0;
    std::uint8_t process = 0;
    Cycle ready_at = 0;
    std::uint32_t outstanding_loads = 0;
    std::uint64_t stall_cycles = 0;
    bool done = false;
  };

  struct MissInfo {
    std::uint8_t core = 0;
    bool demand_load = false;  ///< holds a scoreboard slot until satisfied
    bool primary_fill = false; ///< the request that fills the LLC line
    Addr block = 0;
  };

  void step();  ///< advance one cycle
  void step_core(std::uint32_t i);
  void feed_coalescer();
  void on_satisfied(std::uint64_t raw_id);
  /// Fire due scheduled fault events: commit the availability integral with
  /// the old dead-unit count, apply the events, recompute fabric routes,
  /// and refresh the dead-unit count. Called from step() when due.
  void apply_fault_events();
  /// Recount currently-unavailable capacity units (vaults) from the
  /// injector's dead/unreachable sets.
  void refresh_dead_units();
  /// Commit the availability integral up to `now` (exact integers).
  void integrate_degradation(Cycle now);
  /// True when physical frame `pfn` sits on dead/unreachable hardware
  /// (sparing predicate; checks the frame's cube and every block's vault).
  [[nodiscard]] bool frame_dead(std::uint64_t pfn) const;
  /// Install an L1 victim into the LLC (full line present, no memory fetch).
  void l2_install_dirty(Addr block);
  void issue_prefetches(std::uint32_t core, Addr block);
  [[nodiscard]] bool finished() const;
  MemRequest make_raw(Addr paddr, MemOp op, std::uint8_t core,
                      std::uint32_t bytes);
  void record_raw_trace(const MemRequest& req);
  /// True while any raw request is buffered or in flight anywhere on the
  /// memory path. Unlike finished(), this includes the scoreboard
  /// (inflight_misses_): a dropped retirement leaves the system "finished"
  /// from the queues' view while a core waits forever - exactly what the
  /// no-progress watchdog must see as outstanding work.
  [[nodiscard]] bool has_outstanding_work() const;
  /// Per-component occupancy snapshot as a JSON object (forensics dumps).
  [[nodiscard]] std::string verifier_components_json() const;

  /// Event horizon: the earliest cycle >= now_ at which step() can do
  /// anything beyond the per-cycle no-op (see core_stalled_steady). now_
  /// when some component must run every cycle; run() jumps to the minimum.
  [[nodiscard]] Cycle next_event_cycle() const;
  /// True when step_core(i) at now_ would provably do nothing but
  /// ++stall_cycles (a pure re-check of the stall paths; only meaningful
  /// while both feed queues are empty). Such cores are credited their stall
  /// cycles analytically across a fast-forward jump.
  [[nodiscard]] bool core_stalled_steady(std::uint32_t i) const;

  SystemConfig cfg_;
  PowerModel power_;
  std::unique_ptr<FaultInjector> fault_;  ///< null when faults disabled
  std::unique_ptr<Verifier> verifier_;    ///< null when verify.level == kOff
  std::unique_ptr<MemoryBackend> device_;  ///< backend-factory built
  MultiCubeBackend* noc_ = nullptr;  ///< non-null when device_ is multi-cube
  std::unique_ptr<DevicePort> port_;  ///< retry buffer in front of device_
  std::unique_ptr<Coalescer> coalescer_;
  Pac* pac_ = nullptr;  ///< non-null when coalescer_ is a Pac

  std::vector<CoreState> cores_;
  std::vector<Cache> l1_;
  Cache l2_;
  StreamPrefetcher prefetcher_;
  PageTable page_table_;

  FixedQueue<MemRequest> miss_queue_;
  FixedQueue<MemRequest> wb_queue_;
  std::unordered_map<std::uint64_t, MissInfo> inflight_misses_;
  /// LLC lines allocated but still being filled from memory. An access from
  /// another core during this window emits a raw request of its own - which
  /// the coalescers merge (MSHR subentry behaviour) and the no-coalescing
  /// controller sends as a redundant transaction, exactly the effect the
  /// paper's DMC baselines exploit.
  std::unordered_set<Addr> llc_inflight_;

  std::vector<Addr> raw_trace_;

  /// Reusable drain buffers: step() swaps these with the component-internal
  /// vectors each cycle, so the steady-state hot loop allocates nothing.
  std::vector<DeviceResponse> completed_buf_;
  std::vector<std::uint64_t> satisfied_buf_;

  /// Raw ids named by a poisoned completion this cycle: on_satisfied routes
  /// them to Verifier::on_poisoned (declared losses) instead of on_retired.
  /// Drained within the same step, so empty at every quiescent point.
  std::unordered_set<std::uint64_t> poisoned_raws_;
  std::uint64_t poisoned_raw_count_ = 0;

  // Hard-failure degradation accounting (active iff cfg_.fault.hard_enabled).
  bool hard_failures_ = false;
  std::uint32_t capacity_units_ = 0;   ///< cubes x vaults (config-derived)
  std::uint32_t dead_units_now_ = 0;   ///< derived from the injector state
  Cycle degrade_last_cycle_ = 0;       ///< last integral commit point
  std::uint64_t degrade_lost_units_ = 0;  ///< committed unit-cycles lost
  Cycle first_failure_cycle_ = kNeverCycle;

  Cycle now_ = 0;
  std::uint64_t next_raw_id_ = 1;
  std::uint64_t prefetch_count_ = 0;
  std::uint32_t done_cores_ = 0;  ///< running count of CoreState::done
  bool feed_from_wb_first_ = false;
  bool raw_trace_active_ = false;  ///< capture enabled and limit not reached
  std::uint64_t ff_jumps_ = 0;
  std::uint64_t ff_skipped_cycles_ = 0;
  bool fast_forward_ = true;  ///< resolved by begin_run (cfg + env override)
  double wall_seconds_ = 0.0; ///< accumulated across run_until calls
};

}  // namespace pacsim
