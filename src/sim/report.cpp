#include "sim/report.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/atomic_file.hpp"

namespace pacsim {
namespace {

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string num(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Inline {"count", "mean", "min", "max"} object for a RunningStat.
std::string stat_json(const RunningStat& s) {
  std::ostringstream out;
  out << "{\"count\": " << s.count() << ", \"mean\": " << num(s.mean())
      << ", \"min\": " << num(s.min()) << ", \"max\": " << num(s.max())
      << "}";
  return out.str();
}

/// Inline {"<bucket>": count, ...} object for a Histogram.
std::string hist_json(const Histogram& h) {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [bucket, count] : h.buckets()) {
    if (!first) out << ", ";
    out << "\"" << bucket << "\": " << count;
    first = false;
  }
  out << "}";
  return out.str();
}

/// Prefix every line of a rendered JSON object with `prefix` (for nesting
/// pre-rendered run objects inside the sweep report's "runs" array).
std::string indent_lines(const std::string& json, const std::string& prefix) {
  std::string out;
  std::size_t start = 0;
  while (start < json.size()) {
    std::size_t end = json.find('\n', start);
    if (end == std::string::npos) end = json.size();
    if (end > start) out += prefix + json.substr(start, end - start);
    if (end < json.size()) out += '\n';
    start = end + 1;
  }
  return out;
}

}  // namespace

std::string run_report_json(const std::string& label, CoalescerKind kind,
                            const RunResult& r, bool include_throughput) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"label\": \"" << escape(label) << "\",\n";
  out << "  \"coalescer\": \"" << to_string(kind) << "\",\n";
  out << "  \"status\": \"ok\",\n";
  out << "  \"cycles\": " << r.cycles << ",\n";
  out << "  \"runtime_ns\": " << num(r.runtime_ns()) << ",\n";
  if (include_throughput) {
    out << "  \"sim_throughput\": {\"sim_cycles\": "
        << r.throughput.sim_cycles
        << ", \"wall_seconds\": " << num(r.throughput.wall_seconds)
        << ", \"gen_seconds\": " << num(r.throughput.gen_seconds)
        << ", \"mcycles_per_sec\": " << num(r.throughput.mcycles_per_sec())
        << ", \"fast_forward_jumps\": " << r.throughput.fast_forward_jumps
        << ", \"skipped_cycles\": " << r.throughput.skipped_cycles << "},\n";
    // Host-side like sim_throughput (thread counts and epoch cadence do not
    // change simulated results), so it shares the include_throughput gate:
    // bit-identity comparisons exclude both blocks.
    out << "  \"execution\": {\"shards\": " << r.exec.shards
        << ", \"threads\": " << r.exec.threads
        << ", \"threads_requested\": " << r.exec.threads_requested
        << ", \"epochs\": " << r.exec.epochs
        << ", \"checkpoints_written\": " << r.exec.checkpoints_written
        << ", \"checkpoints_skipped\": " << r.exec.checkpoints_skipped
        << ", \"restored\": " << (r.exec.restored ? "true" : "false");
    if (r.exec.restored) {
      out << ", \"restore_cycle\": " << r.exec.restore_cycle
          << ", \"restored_from\": \"" << escape(r.exec.restored_from)
          << "\"";
    }
    out << "},\n";
  }
  out << "  \"raw_requests\": " << r.coal.raw_requests << ",\n";
  out << "  \"issued_requests\": " << r.coal.issued_requests << ",\n";
  out << "  \"issued_payload_bytes\": " << r.coal.issued_payload_bytes
      << ",\n";
  out << "  \"coalescing_efficiency\": " << num(r.coalescing_efficiency())
      << ",\n";
  out << "  \"transaction_efficiency\": " << num(r.transaction_eff())
      << ",\n";
  out << "  \"link_bytes\": " << r.link_bytes() << ",\n";
  out << "  \"comparisons\": " << r.coal.comparisons << ",\n";
  out << "  \"atomics\": " << r.coal.atomics << ",\n";
  out << "  \"fences\": " << r.coal.fences << ",\n";
  out << "  \"backend\": {\"kind\": \"" << to_string(r.backend)
      << "\", \"row_hits\": " << r.hmc.row_hits
      << ", \"row_misses\": " << r.hmc.row_misses
      << ", \"conflict_wait_cycles\": " << r.hmc.conflict_wait_cycles
      << ", \"device_requests\": " << r.hmc.requests << "},\n";
  out << "  \"bank_conflicts\": " << r.hmc.bank_conflicts << ",\n";
  out << "  \"row_accesses\": " << r.hmc.row_accesses << ",\n";
  out << "  \"refreshes\": " << r.hmc.refreshes << ",\n";
  out << "  \"local_routes\": " << r.hmc.local_routes << ",\n";
  out << "  \"remote_routes\": " << r.hmc.remote_routes << ",\n";
  out << "  \"avg_hmc_latency_ns\": " << num(r.avg_hmc_latency_ns()) << ",\n";
  out << "  \"hmc_latency_cycles\": " << stat_json(r.hmc.access_latency)
      << ",\n";
  out << "  \"l1_hits\": " << r.l1_hits << ",\n";
  out << "  \"l1_misses\": " << r.l1_misses << ",\n";
  out << "  \"llc_hits\": " << r.llc_hits << ",\n";
  out << "  \"llc_misses\": " << r.llc_misses << ",\n";
  out << "  \"prefetches\": " << r.prefetches_issued << ",\n";
  out << "  \"energy_pj\": {\n";
  for (std::size_t op = 0; op < r.energy.size(); ++op) {
    // HMC-only energy classes (vault SRAM slots, vault controller, link
    // routing) have no physical meaning on the HBM/DDR substrates: emit
    // null rather than a misleading 0.0, while keeping every key present
    // so downstream consumers see a stable schema.
    const bool hmc_only = op <= static_cast<std::size_t>(HmcOp::kLinkRemoteRoute);
    const bool nulled = hmc_only && r.backend != BackendKind::kHmc;
    out << "    \"" << to_string(static_cast<HmcOp>(op))
        << "\": " << (nulled ? "null" : num(r.energy[op]));
    out << (op + 1 < r.energy.size() ? ",\n" : "\n");
  }
  out << "  },\n";
  out << "  \"total_energy_pj\": " << num(r.total_energy) << ",\n";
  out << "  \"request_size_histogram\": {";
  bool first = true;
  for (const auto& [bytes, count] : r.coal.request_size_bytes.buckets()) {
    if (!first) out << ", ";
    out << "\"" << bytes << "\": " << count;
    first = false;
  }
  out << "}";
  if (r.has_noc) {
    const NocStats& n = r.noc;
    out << ",\n  \"interconnect\": {\n";
    out << "    \"cubes\": " << n.cubes << ",\n";
    out << "    \"topology\": \"" << escape(n.topology) << "\",\n";
    out << "    \"req_packets\": " << n.req_packets << ",\n";
    out << "    \"rsp_packets\": " << n.rsp_packets << ",\n";
    out << "    \"nack_packets\": " << n.nack_packets << ",\n";
    out << "    \"link_crc_nacks\": " << n.link_crc_nacks << ",\n";
    out << "    \"ingress_retries\": " << n.ingress_retries << ",\n";
    out << "    \"route_recomputes\": " << n.route_recomputes << ",\n";
    out << "    \"dropped_packets\": " << n.dropped_packets << ",\n";
    out << "    \"cube_requests\": [";
    for (std::size_t c = 0; c < n.cube_requests.size(); ++c) {
      out << (c == 0 ? "" : ", ") << n.cube_requests[c];
    }
    out << "],\n";
    out << "    \"links\": [";
    for (std::size_t i = 0; i < n.links.size(); ++i) {
      const LinkStats& l = n.links[i];
      const double occupancy =
          r.cycles > 0
              ? static_cast<double>(l.busy_cycles) / static_cast<double>(r.cycles)
              : 0.0;
      out << (i == 0 ? "\n" : ",\n");
      out << "      {\"label\": \"" << escape(l.label)
          << "\", \"packets\": " << l.packets << ", \"bytes\": " << l.bytes
          << ", \"busy_cycles\": " << l.busy_cycles
          << ", \"occupancy\": " << num(occupancy)
          << ", \"queued_packets\": " << l.queued_packets
          << ", \"max_queue_delay\": " << l.max_queue_delay
          << ", \"up\": " << (l.up ? "true" : "false")
          << ", \"queue_delay_histogram\": " << hist_json(l.queue_delay)
          << "}";
    }
    out << (n.links.empty() ? "]" : "\n    ]") << "\n";
    out << "  }";
  }
  if (r.has_pac) {
    out << ",\n  \"pac\": {\n";
    out << "    \"c0_bypass_requests\": " << r.pac.c0_bypass_requests
        << ",\n";
    out << "    \"controller_bypass_requests\": "
        << r.pac.controller_bypass_requests << ",\n";
    out << "    \"mshr_merges\": " << r.pac.mshr_merges << ",\n";
    out << "    \"timeout_flushes\": " << r.pac.timeout_flushes << ",\n";
    out << "    \"fence_flushes\": " << r.pac.fence_flushes << ",\n";
    out << "    \"cross_page_adjacent\": " << r.pac.cross_page_adjacent
        << ",\n";
    out << "    \"avg_stream_occupancy\": "
        << num(r.pac.stream_occupancy.mean()) << ",\n";
    out << "    \"stream_occupancy_histogram\": "
        << hist_json(r.pac.stream_occupancy) << ",\n";
    out << "    \"stage2_latency_cycles\": "
        << num(r.pac.stage2_latency.mean()) << ",\n";
    out << "    \"stage3_latency_cycles\": "
        << num(r.pac.stage3_latency.mean()) << ",\n";
    out << "    \"maq_fill_latency_cycles\": "
        << num(r.pac.maq_fill_latency.mean()) << ",\n";
    out << "    \"request_latency_cycles\": "
        << stat_json(r.pac.request_latency) << "\n";
    out << "  }";
  }
  if (r.verification.enabled) {
    const VerifyStats& v = r.verification;
    out << ",\n  \"verification\": {\n";
    out << "    \"level\": \"" << to_string(v.level) << "\",\n";
    out << "    \"issued\": " << v.issued << ",\n";
    out << "    \"accepted\": " << v.accepted << ",\n";
    out << "    \"merged\": " << v.merged << ",\n";
    out << "    \"device_requests\": " << v.device_requests << ",\n";
    out << "    \"dispatched_raws\": " << v.dispatched_raws << ",\n";
    out << "    \"responses\": " << v.responses << ",\n";
    out << "    \"responded_raws\": " << v.responded_raws << ",\n";
    out << "    \"retired\": " << v.retired << ",\n";
    out << "    \"fences\": " << v.fences << ",\n";
    out << "    \"poisoned\": " << v.poisoned << ",\n";
    out << "    \"nacks\": " << v.nacks << ",\n";
    out << "    \"retransmissions\": " << v.retransmissions << ",\n";
    out << "    \"violations\": " << v.violations << "\n";
    out << "  }";
  }
  if (r.resilience.enabled) {
    const FaultStats& f = r.resilience.fault;
    const RetryStats& rt = r.resilience.retry;
    out << ",\n  \"resilience\": {\n";
    out << "    \"injected_link_errors\": " << f.link_errors << ",\n";
    out << "    \"injected_response_drops\": " << f.response_drops << ",\n";
    out << "    \"injected_vault_stalls\": " << f.vault_stalls << ",\n";
    out << "    \"nacks\": " << rt.nacks << ",\n";
    out << "    \"retransmissions\": " << rt.retransmissions << ",\n";
    out << "    \"timeout_fires\": " << rt.timeout_fires << ",\n";
    out << "    \"spurious_timeouts\": " << rt.spurious_timeouts << ",\n";
    out << "    \"max_retry_depth\": " << rt.max_retry_depth << ",\n";
    out << "    \"retransmitted_bytes\": " << rt.retransmitted_bytes << ",\n";
    out << "    \"poisoned_completions\": " << rt.poisoned_completions
        << ",\n";
    out << "    \"effective_payload_fraction\": "
        << num(r.resilience.effective_payload_fraction(
               r.coal.issued_payload_bytes))
        << "\n";
    out << "  }";
  }
  if (r.degradation.enabled) {
    const DegradationStats& d = r.degradation;
    out << ",\n  \"degradation\": {\n";
    out << "    \"events_fired\": " << d.events_fired << ",\n";
    out << "    \"capacity_units\": " << d.capacity_units << ",\n";
    out << "    \"unit_cycles_total\": " << d.unit_cycles_total << ",\n";
    out << "    \"unit_cycles_lost\": " << d.unit_cycles_lost << ",\n";
    out << "    \"availability\": " << num(d.availability()) << ",\n";
    out << "    \"repairs\": " << d.repairs << ",\n";
    out << "    \"repair_cycles_total\": " << d.repair_cycles_total << ",\n";
    out << "    \"mttr_cycles\": " << num(d.mttr_cycles()) << ",\n";
    out << "    \"pages_migrated\": " << d.pages_migrated << ",\n";
    out << "    \"spares_used\": " << d.spares_used << ",\n";
    out << "    \"poisoned_raws\": " << d.poisoned_raws << ",\n";
    out << "    \"first_failure_cycle\": ";
    if (d.first_failure_cycle == kNeverCycle) {
      out << "null";
    } else {
      out << d.first_failure_cycle;
    }
    out << "\n  }";
  }
  out << "\n}\n";
  return out.str();
}

void write_run_report(const std::string& path, const std::string& label,
                      CoalescerKind kind, const RunResult& result) {
  write_file_atomic(path, run_report_json(label, kind, result));
}

SweepReport::SweepReport(std::string bench) : bench_(std::move(bench)) {}

void SweepReport::add(const std::string& label, CoalescerKind kind,
                      const RunResult& result) {
  std::string rendered = run_report_json(label, kind, result);
  while (!rendered.empty() && rendered.back() == '\n') rendered.pop_back();
  entries_.push_back(indent_lines(rendered, "    "));
  generation_seconds_ += result.throughput.gen_seconds;
  simulation_seconds_ += result.throughput.wall_seconds;
}

void SweepReport::add_failure(const std::string& label,
                              const std::string& status,
                              const std::string& error, double wall_seconds,
                              const std::string& forensics,
                              const std::string& diagnosis) {
  std::ostringstream entry;
  entry << "{\n";
  entry << "  \"label\": \"" << escape(label) << "\",\n";
  entry << "  \"status\": \"" << escape(status) << "\",\n";
  entry << "  \"error\": \"" << escape(error) << "\",\n";
  if (!forensics.empty()) {
    entry << "  \"forensics\": \"" << escape(forensics) << "\",\n";
  }
  if (!diagnosis.empty()) {
    entry << "  \"diagnosis\": \"" << escape(diagnosis) << "\",\n";
  }
  entry << "  \"wall_seconds\": " << num(wall_seconds) << "\n";
  entry << "}";
  entries_.push_back(indent_lines(entry.str(), "    "));
  simulation_seconds_ += wall_seconds;
}

void SweepReport::set_trace_store(const TraceStoreStats& stats) {
  store_stats_ = stats;
  has_store_stats_ = true;
}

void SweepReport::set_extra(const std::string& key, const std::string& json) {
  for (auto& [k, v] : extras_) {
    if (k == key) {
      v = json;
      return;
    }
  }
  extras_.emplace_back(key, json);
}

std::string SweepReport::json() const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"" << escape(bench_) << "\",\n";
  out << "  \"schema_version\": " << kJsonSchemaVersion << ",\n";
  out << "  \"wall_time\": {\"generation_seconds\": "
      << num(generation_seconds_)
      << ", \"simulation_seconds\": " << num(simulation_seconds_) << "},\n";
  if (has_store_stats_) {
    out << "  \"trace_store\": {\"hits\": " << store_stats_.hits
        << ", \"warm_hits\": " << store_stats_.warm_hits
        << ", \"misses\": " << store_stats_.misses
        << ", \"evictions\": " << store_stats_.evictions
        << ", \"bytes_resident\": " << store_stats_.bytes_resident
        << ", \"generation_seconds\": " << num(store_stats_.generation_seconds)
        << ", \"warm_load_seconds\": " << num(store_stats_.warm_load_seconds)
        << "},\n";
  }
  for (const auto& [key, value] : extras_) {
    out << "  \"" << escape(key) << "\": " << value << ",\n";
  }
  out << "  \"runs\": [";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << entries_[i];
  }
  out << (entries_.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

std::string SweepReport::write(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("cannot create report dir " + dir + ": " +
                             ec.message());
  }
  const std::string path =
      (std::filesystem::path(dir) / (bench_ + ".json")).string();
  // Temp-file + rename: a crash, interrupt, or concurrent reader mid-write
  // never observes a truncated artifact.
  write_file_atomic(path, json());
  return path;
}

}  // namespace pacsim
