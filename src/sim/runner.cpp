#include "sim/runner.hpp"

namespace pacsim {

RunResult simulate(const SystemConfig& cfg, const std::vector<Trace>& traces,
                   const std::vector<std::uint8_t>& processes) {
  System system(cfg);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    const Trace& trace =
        core < traces.size() ? traces[core] : Trace{};
    const std::uint8_t process =
        core < processes.size() ? processes[core] : std::uint8_t{0};
    system.load_trace(core, trace, process);
  }
  return system.run();
}

RunResult run_suite(const Workload& suite, CoalescerKind kind,
                    const WorkloadConfig& wcfg, SystemConfig cfg) {
  cfg.coalescer = kind;
  cfg.num_cores = wcfg.num_cores;
  const std::vector<Trace> traces = suite.generate(wcfg);
  return simulate(cfg, traces);
}

RunResult run_multiprocess(const Workload& first, const Workload& second,
                           CoalescerKind kind, const WorkloadConfig& wcfg,
                           SystemConfig cfg) {
  cfg.coalescer = kind;
  cfg.num_cores = wcfg.num_cores;

  WorkloadConfig half = wcfg;
  half.num_cores = wcfg.num_cores / 2;

  WorkloadConfig other = half;
  other.seed = wcfg.seed ^ 0x0DD5EEDULL;

  const std::vector<Trace> t1 = first.generate(half);
  const std::vector<Trace> t2 = second.generate(other);

  std::vector<Trace> traces;
  std::vector<std::uint8_t> processes;
  traces.reserve(wcfg.num_cores);
  for (const Trace& t : t1) {
    traces.push_back(t);
    processes.push_back(0);
  }
  for (const Trace& t : t2) {
    traces.push_back(t);
    processes.push_back(1);
  }
  return simulate(cfg, traces, processes);
}

}  // namespace pacsim
