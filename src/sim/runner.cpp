#include "sim/runner.hpp"

#include <cassert>

namespace pacsim {

RunResult simulate(const SystemConfig& cfg, const std::vector<Trace>& traces,
                   const std::vector<std::uint8_t>& processes) {
  System system(cfg);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    const Trace& trace =
        core < traces.size() ? traces[core] : Trace{};
    const std::uint8_t process =
        core < processes.size() ? processes[core] : std::uint8_t{0};
    system.load_trace(core, trace, process);
  }
  return system.run();
}

RunResult run_suite(const Workload& suite, CoalescerKind kind,
                    const WorkloadConfig& wcfg, SystemConfig cfg) {
  cfg.coalescer = kind;
  cfg.num_cores = wcfg.num_cores;
  const std::vector<Trace> traces = suite.generate(wcfg);
  return simulate(cfg, traces);
}

MultiprocessSetup build_multiprocess_traces(const Workload& first,
                                            const Workload& second,
                                            const WorkloadConfig& wcfg) {
  // An odd core count gives the remainder core to the first workload:
  // integer halving both ways would silently leave one core traceless.
  WorkloadConfig half = wcfg;
  half.num_cores = wcfg.num_cores - wcfg.num_cores / 2;

  WorkloadConfig other = wcfg;
  other.num_cores = wcfg.num_cores / 2;
  other.seed = wcfg.seed ^ 0x0DD5EEDULL;

  const std::vector<Trace> t1 = first.generate(half);
  const std::vector<Trace> t2 = second.generate(other);

  MultiprocessSetup setup;
  setup.traces.reserve(wcfg.num_cores);
  for (const Trace& t : t1) {
    setup.traces.push_back(t);
    setup.processes.push_back(0);
  }
  for (const Trace& t : t2) {
    setup.traces.push_back(t);
    setup.processes.push_back(1);
  }
  return setup;
}

RunResult run_multiprocess(const Workload& first, const Workload& second,
                           CoalescerKind kind, const WorkloadConfig& wcfg,
                           SystemConfig cfg) {
  cfg.coalescer = kind;
  cfg.num_cores = wcfg.num_cores;

  MultiprocessSetup setup = build_multiprocess_traces(first, second, wcfg);
  assert(setup.traces.size() == cfg.num_cores);
  return simulate(cfg, setup.traces, setup.processes);
}

}  // namespace pacsim
