#include "sim/runner.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "sim/sharded_system.hpp"

namespace pacsim {

RunResult simulate(const SystemConfig& cfg,
                   const std::vector<SharedTrace>& traces,
                   const std::vector<std::uint8_t>& processes) {
  if (traces.size() < cfg.num_cores) {
    // Legal (the extra cores idle on empty traces) but almost always a
    // core-count mismatch between WorkloadConfig and SystemConfig; the
    // multiprocess builder always supplies exactly num_cores traces.
    std::fprintf(stderr,
                 "[pacsim] simulate: %zu trace(s) for %u cores; cores "
                 "%zu..%u will run empty traces\n",
                 traces.size(), cfg.num_cores, traces.size(),
                 cfg.num_cores - 1);
  }
  if (cfg.exec.sharded()) {
    // threads=/shards=/checkpoint=/restore= select the sharded epoch
    // scheduler; everything else stays on the classic single-System path.
    ShardedSystem system(cfg);
    for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
      const std::uint8_t process =
          core < processes.size() ? processes[core] : std::uint8_t{0};
      system.load_trace(core,
                        core < traces.size() ? traces[core] : SharedTrace{},
                        process);
    }
    return system.run();
  }
  System system(cfg);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    const std::uint8_t process =
        core < processes.size() ? processes[core] : std::uint8_t{0};
    system.load_trace(core,
                      core < traces.size() ? traces[core] : SharedTrace{},
                      process);
  }
  return system.run();
}

RunResult simulate(const SystemConfig& cfg, const SharedTraceSet& traces,
                   const std::vector<std::uint8_t>& processes) {
  std::vector<SharedTrace> shared;
  if (traces) {
    shared.reserve(traces->size());
    // Aliasing handles: each core's pointer shares ownership of the whole
    // set, so the set lives for as long as any core (or caller) needs it.
    for (const Trace& t : *traces) shared.emplace_back(traces, &t);
  }
  return simulate(cfg, shared, processes);
}

RunResult simulate(const SystemConfig& cfg, const std::vector<Trace>& traces,
                   const std::vector<std::uint8_t>& processes) {
  std::vector<SharedTrace> shared;
  shared.reserve(traces.size());
  // Non-owning aliases: the caller's vector outlives this call, so the
  // cores can execute directly out of it without any copy.
  for (const Trace& t : traces) shared.emplace_back(SharedTrace{}, &t);
  return simulate(cfg, shared, processes);
}

RunResult run_suite(const Workload& suite, CoalescerKind kind,
                    const WorkloadConfig& wcfg, SystemConfig cfg,
                    TraceStore* store) {
  cfg.coalescer = kind;
  cfg.num_cores = wcfg.num_cores;
  const TraceStore::Acquired acquired = acquire_traces(store, suite, wcfg);
  RunResult result = simulate(cfg, acquired.traces);
  result.throughput.gen_seconds = acquired.seconds;
  return result;
}

MultiprocessSetup build_multiprocess_traces(const Workload& first,
                                            const Workload& second,
                                            const WorkloadConfig& wcfg,
                                            TraceStore* store) {
  // An odd core count gives the remainder core to the first workload:
  // integer halving both ways would silently leave one core traceless.
  WorkloadConfig half = wcfg;
  half.num_cores = wcfg.num_cores - wcfg.num_cores / 2;

  WorkloadConfig other = wcfg;
  other.num_cores = wcfg.num_cores / 2;
  other.seed = wcfg.seed ^ 0x0DD5EEDULL;

  const TraceStore::Acquired t1 = acquire_traces(store, first, half);
  const TraceStore::Acquired t2 = acquire_traces(store, second, other);

  // A generator that returns the wrong trace count would leave cores with
  // empty traces (or mis-assign processes) and the run would quietly
  // produce garbage - or never finish. Fail loudly here instead.
  const auto check = [](const Workload& suite, const WorkloadConfig& want,
                        const SharedTraceSet& got) {
    const std::size_t n = got ? got->size() : 0;
    if (n != want.num_cores) {
      throw std::runtime_error(
          "build_multiprocess_traces: suite '" + std::string(suite.name()) +
          "' generated " + std::to_string(n) + " trace(s) for " +
          std::to_string(want.num_cores) + " core(s)");
    }
  };
  check(first, half, t1.traces);
  check(second, other, t2.traces);

  MultiprocessSetup setup;
  setup.gen_seconds = t1.seconds + t2.seconds;
  setup.traces.reserve(wcfg.num_cores);
  setup.processes.reserve(wcfg.num_cores);
  for (const Trace& t : *t1.traces) {
    setup.traces.emplace_back(t1.traces, &t);
    setup.processes.push_back(0);
  }
  for (const Trace& t : *t2.traces) {
    setup.traces.emplace_back(t2.traces, &t);
    setup.processes.push_back(1);
  }
  return setup;
}

RunResult run_multiprocess(const Workload& first, const Workload& second,
                           CoalescerKind kind, const WorkloadConfig& wcfg,
                           SystemConfig cfg, TraceStore* store) {
  cfg.coalescer = kind;
  cfg.num_cores = wcfg.num_cores;

  const MultiprocessSetup setup =
      build_multiprocess_traces(first, second, wcfg, store);
  if (setup.traces.size() != cfg.num_cores) {
    throw std::runtime_error(
        "run_multiprocess: assembled " + std::to_string(setup.traces.size()) +
        " trace(s) for " + std::to_string(cfg.num_cores) + " core(s) (" +
        std::string(first.name()) + " + " + std::string(second.name()) +
        ")");
  }
  RunResult result = simulate(cfg, setup.traces, setup.processes);
  result.throughput.gen_seconds = setup.gen_seconds;
  return result;
}

}  // namespace pacsim
