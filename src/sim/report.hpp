// Machine-readable run reports: serialize a RunResult (plus the headline
// derived metrics) as JSON for downstream tooling and plotting scripts.
#pragma once

#include <string>

#include "sim/metrics.hpp"
#include "sim/system_config.hpp"

namespace pacsim {

/// JSON object describing one run. `label` names the run (suite +
/// coalescer); pretty-printed with two-space indentation.
std::string run_report_json(const std::string& label, CoalescerKind kind,
                            const RunResult& result);

/// Write a report to a file; throws std::runtime_error on I/O failure.
void write_run_report(const std::string& path, const std::string& label,
                      CoalescerKind kind, const RunResult& result);

}  // namespace pacsim
