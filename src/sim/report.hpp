// Machine-readable run reports: serialize a RunResult (plus the headline
// derived metrics) as JSON for downstream tooling and plotting scripts.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/trace_store.hpp"
#include "sim/metrics.hpp"
#include "sim/system_config.hpp"

namespace pacsim {

/// Version stamped into every SweepReport envelope ("schema_version").
/// Bump together with a new entry in the schema history below.
inline constexpr int kJsonSchemaVersion = 10;

/// JSON object describing one run. `label` names the run (suite +
/// coalescer); pretty-printed with two-space indentation. Serializes the
/// headline RunResult metrics plus the PacStats / HmcStats detail,
/// including histogram buckets and latency summaries. Pass
/// `include_throughput = false` to omit the host-side sim_throughput block
/// (wall-clock derived, so it differs between otherwise bit-identical runs
/// - identity comparisons in tests must exclude it).
std::string run_report_json(const std::string& label, CoalescerKind kind,
                            const RunResult& result,
                            bool include_throughput = true);

/// Write a report to a file; throws std::runtime_error on I/O failure.
void write_run_report(const std::string& path, const std::string& label,
                      CoalescerKind kind, const RunResult& result);

/// Accumulates the labelled runs of one bench into a single JSON artifact:
///
///   { "bench": "<name>", "schema_version": 10,
///     "wall_time": { "generation_seconds": g, "simulation_seconds": s },
///     "trace_store": { "hits": ..., ... },   // when set_trace_store()d
///     "soak": { ... },                       // when set_extra()d
///     "runs": [ <run>, ... ] }
///
/// Schema history: v10 added optional envelope-level extra blocks via
/// set_extra() - bench_soak emits a "soak" campaign summary ({"seed",
/// "cases", "clean", "divergences", "violations", "crashes", "hangs",
/// "skipped", "minimized", "repro_files"}); v9 added the per-run
/// "degradation" block on runs with a
/// scheduled hard-failure timeline ({"events_fired", "capacity_units",
/// "unit_cycles_total", "unit_cycles_lost", "availability", "repairs",
/// "mttr_cycles", "pages_migrated", "spares_used", "poisoned_raws",
/// "first_failure_cycle" or null when no event fired}), the
/// "poisoned_completions" counter in "resilience", the "poisoned" counter
/// in "verification", and "route_recomputes"/"dropped_packets" plus the
/// per-link "up" liveness flag in "interconnect"; v8 added the per-run
/// "interconnect" block on multi-cube
/// runs ({"cubes", "topology", "req_packets", "rsp_packets",
/// "nack_packets", "link_crc_nacks", "ingress_retries", "cube_requests"
/// per-cube submission counts, and a "links" array whose elements carry
/// {"label", "packets", "bytes", "busy_cycles", "occupancy",
/// "queued_packets", "max_queue_delay", "queue_delay_histogram" with
/// log2-bucketed waits}}; simulated data, so present regardless of the
/// include_throughput gate); v7 added the per-run "execution" block
/// (sharded-run
/// provenance: "shards", effective and requested "threads", epoch-barrier
/// count, "checkpoints_written"/"checkpoints_skipped", "restored" plus
/// "restore_cycle"/"restored_from" on resumed runs; host-side like
/// "sim_throughput" and emitted under the same include_throughput gate);
/// v6 added the per-run "backend" block ({"kind":
/// "hmc"|"hbm"|"ddr", "row_hits", "row_misses", "conflict_wait_cycles",
/// "device_requests"} - open-page hit/miss counters are zero on the
/// closed-page HMC substrate) and made the HMC-only "energy_pj" classes
/// (VAULT-RQST-SLOT, VAULT-RSP-SLOT, VAULT-CTRL, LINK-LOCAL-ROUTE,
/// LINK-REMOTE-ROUTE) serialize as null on non-HMC backends (keys stay
/// present; DRAM-* classes remain numeric on every backend); v5 added the
/// optional per-run "verification" block
/// (runtime-verifier lifecycle counters and violation count; present only
/// when the run executed with verify=counters or verify=full), the
/// "interrupted" failure status (SIGINT/SIGTERM flushed a partial report),
/// and the optional "forensics" / "diagnosis" fields on failure entries
/// (path of the verifier's crash dump; outcome of the automatic
/// verify=full re-run of a failed cell); v4 added per-run "status" ("ok"
/// for completed runs),
/// structured failure entries from add_failure() ({"label", "status":
/// "failed"|"timeout", "error", "wall_seconds"}), and the optional per-run
/// "resilience" block (fault-injection counters, retransmissions, timeout
/// fires, max retry depth and the effective_payload_fraction degraded-
/// bandwidth estimate; present only in fault-injected runs); v3 added the
/// envelope's "wall_time" split (generation vs simulation host seconds,
/// summed over the runs), the optional "trace_store" effectiveness block
/// (hits / warm_hits / misses / evictions / bytes_resident /
/// generation_seconds / warm_load_seconds) and the per-run "gen_seconds"
/// inside "sim_throughput"; v2 added the per-run "sim_throughput" block
/// (host-side simulation speed); v1 was the initial envelope.
///
/// where each element of "runs" is a run_report_json object. The benches
/// write one such file per binary to `results/<bench>.json`, making the
/// whole evaluation pipeline machine-readable alongside the printed tables.
class SweepReport {
 public:
  explicit SweepReport(std::string bench);

  /// Append one run (kept in insertion order).
  void add(const std::string& label, CoalescerKind kind,
           const RunResult& result);

  /// Append a structured failure entry for a job that threw, timed out, or
  /// was interrupted (`status` is "failed", "timeout" or "interrupted"):
  /// hardened sweeps report partial results instead of losing the artifact
  /// to one bad job. `forensics` (optional) is the verifier dump path;
  /// `diagnosis` (optional) summarises the automatic verify=full re-run.
  void add_failure(const std::string& label, const std::string& status,
                   const std::string& error, double wall_seconds,
                   const std::string& forensics = "",
                   const std::string& diagnosis = "");

  /// Attach the effectiveness counters of the TraceStore that fed these
  /// runs; emitted as the envelope's "trace_store" object. Call after the
  /// last run, right before json()/write().
  void set_trace_store(const TraceStoreStats& stats);

  /// Attach an envelope-level block emitted as `"<key>": <json>` right
  /// before "runs". `json` must be a pre-rendered JSON value (the caller
  /// owns its validity); repeated keys overwrite. bench_soak uses this for
  /// its "soak" campaign summary.
  void set_extra(const std::string& key, const std::string& json);

  [[nodiscard]] std::size_t runs() const { return entries_.size(); }
  [[nodiscard]] std::string json() const;

  /// Write `<dir>/<bench>.json`, creating `dir` if needed; returns the
  /// path. Throws std::runtime_error on I/O failure.
  std::string write(const std::string& dir) const;

 private:
  std::string bench_;
  std::vector<std::string> entries_;  ///< pre-rendered run objects
  double generation_seconds_ = 0.0;   ///< summed run gen_seconds
  double simulation_seconds_ = 0.0;   ///< summed run wall_seconds
  TraceStoreStats store_stats_;
  bool has_store_stats_ = false;
  /// Envelope-level extra blocks, in insertion order (key, rendered JSON).
  std::vector<std::pair<std::string, std::string>> extras_;
};

}  // namespace pacsim
