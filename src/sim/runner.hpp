// Convenience drivers used by the benches, examples and integration tests:
// generate a suite's traces once and simulate them under any coalescer.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace pacsim {

/// Simulate pre-generated traces. `processes[i]` is the address space of
/// core i (defaults to a single shared process).
RunResult simulate(const SystemConfig& cfg, const std::vector<Trace>& traces,
                   const std::vector<std::uint8_t>& processes = {});

/// Generate + simulate one suite under `kind`.
RunResult run_suite(const Workload& suite, CoalescerKind kind,
                    const WorkloadConfig& wcfg, SystemConfig cfg);

/// Paper Fig. 6b multiprocessing mode: two suites pinned to disjoint core
/// halves with distinct processes (distinct page tables).
RunResult run_multiprocess(const Workload& first, const Workload& second,
                           CoalescerKind kind, const WorkloadConfig& wcfg,
                           SystemConfig cfg);

}  // namespace pacsim
