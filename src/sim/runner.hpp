// Convenience drivers used by the benches, examples and integration tests:
// generate a suite's traces once and simulate them under any coalescer.
#pragma once

#include <string>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace pacsim {

/// Simulate pre-generated traces. `processes[i]` is the address space of
/// core i (defaults to a single shared process).
RunResult simulate(const SystemConfig& cfg, const std::vector<Trace>& traces,
                   const std::vector<std::uint8_t>& processes = {});

/// Generate + simulate one suite under `kind`.
RunResult run_suite(const Workload& suite, CoalescerKind kind,
                    const WorkloadConfig& wcfg, SystemConfig cfg);

/// Paper Fig. 6b multiprocessing mode: two suites pinned to disjoint core
/// halves with distinct processes (distinct page tables).
RunResult run_multiprocess(const Workload& first, const Workload& second,
                           CoalescerKind kind, const WorkloadConfig& wcfg,
                           SystemConfig cfg);

/// The trace/process layout behind run_multiprocess: `first` owns cores
/// [0, ceil(n/2)) as process 0, `second` the rest as process 1. An odd
/// core count gives the remainder core to `first` so no core is left with
/// an empty trace; traces.size() == wcfg.num_cores always holds.
struct MultiprocessSetup {
  std::vector<Trace> traces;            ///< one per core
  std::vector<std::uint8_t> processes;  ///< owning process per core
};
MultiprocessSetup build_multiprocess_traces(const Workload& first,
                                            const Workload& second,
                                            const WorkloadConfig& wcfg);

}  // namespace pacsim
