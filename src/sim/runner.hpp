// Convenience drivers used by the benches, examples and integration tests:
// acquire a suite's traces (optionally memoized through a TraceStore) and
// simulate them under any coalescer. All entry points hand shared immutable
// traces to the System - a trace set is never copied per core or per run.
#pragma once

#include <string>
#include <vector>

#include "core/trace_store.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "workloads/workload.hpp"

namespace pacsim {

/// Simulate pre-generated traces given as per-core shared handles.
/// `processes[i]` is the address space of core i (defaults to a single
/// shared process). Fewer traces than cfg.num_cores pads the remaining
/// cores with empty traces and logs a warning - only the multiprocess
/// builder below is expected to assemble partial-core trace layouts, and
/// it always produces exactly num_cores entries.
RunResult simulate(const SystemConfig& cfg,
                   const std::vector<SharedTrace>& traces,
                   const std::vector<std::uint8_t>& processes = {});

/// Simulate a whole shared trace set (e.g. a TraceStore handle): each core
/// aliases its trace inside the set, copying nothing.
RunResult simulate(const SystemConfig& cfg, const SharedTraceSet& traces,
                   const std::vector<std::uint8_t>& processes = {});

/// Back-compat convenience for caller-owned trace vectors. The traces are
/// lent to the System via non-owning aliases (zero-copy); the vector only
/// needs to outlive this call, which it trivially does.
RunResult simulate(const SystemConfig& cfg, const std::vector<Trace>& traces,
                   const std::vector<std::uint8_t>& processes = {});

/// Acquire + simulate one suite under `kind`. With a TraceStore the suite's
/// traces are memoized across calls (and across processes when the store
/// has a warm directory); without one they are generated fresh. The
/// result's throughput.gen_seconds reports the acquisition cost.
RunResult run_suite(const Workload& suite, CoalescerKind kind,
                    const WorkloadConfig& wcfg, SystemConfig cfg,
                    TraceStore* store = nullptr);

/// Paper Fig. 6b multiprocessing mode: two suites pinned to disjoint core
/// halves with distinct processes (distinct page tables).
RunResult run_multiprocess(const Workload& first, const Workload& second,
                           CoalescerKind kind, const WorkloadConfig& wcfg,
                           SystemConfig cfg, TraceStore* store = nullptr);

/// The trace/process layout behind run_multiprocess: `first` owns cores
/// [0, ceil(n/2)) as process 0, `second` the rest as process 1. An odd
/// core count gives the remainder core to `first` so no core is left with
/// an empty trace; traces.size() == wcfg.num_cores always holds. Each
/// per-core handle aliases into the generating suite's shared set - the
/// assembly copies no trace data.
struct MultiprocessSetup {
  std::vector<SharedTrace> traces;      ///< one per core
  std::vector<std::uint8_t> processes;  ///< owning process per core
  double gen_seconds = 0.0;             ///< trace acquisition wall time
};
MultiprocessSetup build_multiprocess_traces(const Workload& first,
                                            const Workload& second,
                                            const WorkloadConfig& wcfg,
                                            TraceStore* store = nullptr);

}  // namespace pacsim
