// Full-system configuration (paper Table 1 defaults).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "baseline/direct_controller.hpp"
#include "baseline/mshr_dmc.hpp"
#include "baseline/sorting_coalescer.hpp"
#include "cache/cache.hpp"
#include "cache/prefetcher.hpp"
#include "core/fault_injector.hpp"
#include "core/verifier.hpp"
#include "hmc/ddr_config.hpp"
#include "hmc/device_port.hpp"
#include "hmc/hbm_config.hpp"
#include "hmc/hmc_config.hpp"
#include "hmc/power_model.hpp"
#include "mem/memory_backend.hpp"
#include "noc/noc_config.hpp"
#include "pac/pac_config.hpp"

namespace pacsim {

enum class CoalescerKind : std::uint8_t {
  kDirect = 0,  ///< standard HMC controller, no request aggregation
  kMshrDmc,     ///< conventional MSHR-based DMC
  kPac,         ///< paged adaptive coalescer
  kSortingDmc,  ///< sorting-network DMC (Wang et al., ICPP'18)
};

constexpr std::string_view to_string(CoalescerKind k) {
  switch (k) {
    case CoalescerKind::kDirect: return "direct";
    case CoalescerKind::kMshrDmc: return "mshr-dmc";
    case CoalescerKind::kPac: return "pac";
    case CoalescerKind::kSortingDmc: return "sorting-dmc";
  }
  return "?";
}

/// Sharded-execution and checkpoint/restore knobs (DESIGN.md "Sharded
/// execution"). A run is partitioned into `shards` independent execution
/// domains - each owning a disjoint subset of cores with its own
/// controller, retry port, and memory device - advanced in deterministic
/// epochs by up to `threads` worker threads. Because shards never interact,
/// results are bit-identical to running the same shards serially, at any
/// thread count.
struct ExecConfig {
  /// Worker threads for the intra-run epoch scheduler. <= 1 runs every
  /// shard on the calling thread. Clamped against hardware concurrency
  /// (and any active sweep jobs= parallelism) at run start.
  unsigned threads = 1;
  /// Execution domains. 0 derives the shard count from `threads`; 1 with
  /// threads <= 1 selects the classic single-System path.
  unsigned shards = 0;
  /// Epoch length in cycles: shards synchronize (and checkpoints can be
  /// taken) on this grid. Purely a scheduling/checkpoint alignment knob -
  /// results are epoch-length-invariant.
  Cycle epoch_cycles = 1 << 18;
  /// Directory for checkpoint snapshots ("" disables checkpointing).
  std::string checkpoint_dir;
  /// Cycles between snapshot attempts (0 with checkpoint_dir set = one
  /// snapshot attempt per epoch boundary).
  Cycle checkpoint_every = 0;
  /// Path of a snapshot to resume from ("" starts fresh).
  std::string restore_path;

  /// True when this config needs the sharded run path at all.
  [[nodiscard]] bool sharded() const {
    return threads > 1 || shards > 1 || !checkpoint_dir.empty() ||
           !restore_path.empty();
  }
};

/// Deterministic test-only perturbation hooks for the chaos-soak fuzzer
/// (src/fuzz/, DESIGN.md "Chaos-soak fuzzing"). Each knob plants a specific,
/// deliberate bug in the run loop so the soak harness's differential oracles
/// can be proven to catch (and minimize) real divergence. All defaults are
/// inert: a default PerturbConfig changes nothing.
struct PerturbConfig {
  /// Planted bug: fast-forward jumps this many cycles PAST the proven
  /// event horizon, violating next_event_cycle()'s "nothing happens before
  /// the bound" contract. The naive loop is unaffected, so the ff-vs-naive
  /// oracle must flag the divergence.
  Cycle ff_overshoot = 0;
  /// Planted bug: next_event_cycle() skips the fault-timeline clamp, so
  /// fast-forward can jump over a scheduled hard-failure cycle and fire the
  /// event late.
  bool skip_timeline_clamp = false;

  [[nodiscard]] bool active() const {
    return ff_overshoot != 0 || skip_timeline_clamp;
  }
};

struct SystemConfig {
  std::uint32_t num_cores = 8;        ///< Table 1: 8 RV64 cores @ 2 GHz
  CacheConfig l1{16 * 1024, 8, 64, 2};        ///< 16 KB, 8-way
  CacheConfig l2{8ULL << 20, 8, 64, 12};      ///< 8 MB shared LLC, 8-way

  bool enable_prefetch = true;
  PrefetcherConfig prefetch{};

  std::uint32_t miss_queue_entries = 32;
  std::uint32_t wb_queue_entries = 32;
  /// Demand-load scoreboard depth per core (the memory-level parallelism a
  /// core can expose; see DESIGN.md "Concurrency source").
  std::uint32_t max_outstanding_loads = 8;

  std::uint64_t page_table_seed = 0xA11CEULL;
  std::uint64_t phys_pages = 2ULL << 20;  ///< 8 GB of 4 KB frames
  /// Identity paging: vaddr == paddr, no frame shuffle. The multi-cube
  /// traffic front-end needs it so an address's cube bits survive
  /// translation (frame scatter would undo the Zipf cube targeting).
  bool identity_paging = false;

  /// Which memory substrate the system drives (backend=hmc|hbm|ddr); only
  /// the matching config block below is consulted.
  BackendKind backend = BackendKind::kHmc;
  HmcConfig hmc{};
  HbmConfig hbm{};
  DdrConfig ddr{};
  PowerConfig power{};

  /// Multi-cube sharding (cubes=/topology=/linkhop=/linkbw= knobs): when
  /// active(), System builds `noc.cubes` instances of `backend` behind a
  /// MultiCubeBackend with a routed inter-cube link fabric (src/noc/).
  NocConfig noc{};

  /// Deterministic link/vault fault injection; all-zero rates (default)
  /// disable the subsystem entirely and keep runs bit-identical to a build
  /// without it.
  FaultConfig fault{};
  /// Requester-side retry buffer (active only when `fault.enabled()`).
  RetryConfig retry{};

  CoalescerKind coalescer = CoalescerKind::kPac;
  PacConfig pac{};
  MshrDmcConfig mshr_dmc{};
  DirectControllerConfig direct{};
  SortingCoalescerConfig sorting_dmc{};

  /// Test hook: when set, System builds its coalescer from this factory
  /// instead of `coalescer`. Lets the verifier tests inject deliberately
  /// broken controllers without widening CoalescerKind.
  std::function<std::unique_ptr<Coalescer>(DevicePort*)> coalescer_factory;

  /// Runtime verification (request-lifetime ledger, invariant checks,
  /// no-progress watchdog). level = kOff constructs no Verifier: every hook
  /// site is one untaken null check, runs stay bit-identical.
  VerifyConfig verify{};

  /// Test-only planted-bug hooks for the soak fuzzer; inert by default.
  PerturbConfig perturb{};

  Cycle max_cycles = 500'000'000;  ///< deadlock watchdog

  /// Cooperative cancellation (unowned, may be null): System::run() throws
  /// once the pointee becomes true. The sweep harness's wall-clock watchdog
  /// uses this to reap hung jobs without killing the process.
  const std::atomic<bool>* cancel = nullptr;

  /// Event-horizon fast-forwarding: System::run() jumps over cycle
  /// stretches where every component proves it has nothing to do. Results
  /// are bit-identical to the naive per-cycle loop; disable here (or via
  /// the PACSIM_NO_FASTFORWARD environment variable) to force the naive
  /// loop for differential testing.
  bool enable_fast_forward = true;

  /// Optional raw-request address capture (Figs. 8-9 clustering input):
  /// physical addresses of load/store requests entering the coalescer.
  bool record_raw_trace = false;
  Cycle raw_trace_start = 0;          ///< begin capturing at this cycle
  std::uint64_t raw_trace_limit = 10'000;

  /// Sharded execution + checkpoint/restore (threads=/shards=/epochlen=/
  /// checkpoint=/checkpointevery=/restore= knobs).
  ExecConfig exec{};

  double cpu_ghz = 2.0;
  [[nodiscard]] double ns_per_cycle() const { return 1.0 / cpu_ghz; }
};

}  // namespace pacsim
