#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "baseline/direct_controller.hpp"
#include "baseline/mshr_dmc.hpp"
#include "common/serialize.hpp"
#include "hmc/backend_factory.hpp"
#include "noc/multi_cube_backend.hpp"

namespace pacsim {
namespace {

/// Shared placeholder for cores without an installed trace: keeps
/// CoreState::trace dereferenceable without per-System allocations.
const SharedTrace& empty_trace() {
  static const SharedTrace kEmpty = std::make_shared<const Trace>();
  return kEmpty;
}

/// Build the memory substrate: a single backend, or cfg.noc.cubes of them
/// sharded behind the multi-cube fabric. All cubes share the power model
/// (energies aggregate) and the fault injector (one deterministic stream
/// across the whole substrate).
std::unique_ptr<MemoryBackend> make_device(const SystemConfig& cfg,
                                           PowerModel* power,
                                           FaultInjector* fault) {
  if (!cfg.noc.active()) {
    return make_backend(cfg.backend, cfg.hmc, cfg.hbm, cfg.ddr, power, fault);
  }
  std::vector<std::unique_ptr<MemoryBackend>> cubes;
  cubes.reserve(cfg.noc.cubes);
  for (std::uint32_t c = 0; c < cfg.noc.cubes; ++c) {
    cubes.push_back(
        make_backend(cfg.backend, cfg.hmc, cfg.hbm, cfg.ddr, power, fault));
  }
  const AddressMapConfig& map = cfg.backend == BackendKind::kHmc ? cfg.hmc.map
                                : cfg.backend == BackendKind::kHbm
                                    ? cfg.hbm.map
                                    : cfg.ddr.map;
  return std::make_unique<MultiCubeBackend>(cfg.noc, map, std::move(cubes),
                                            fault);
}

}  // namespace

System::System(const SystemConfig& cfg)
    : cfg_(cfg),
      power_(cfg.power),
      fault_(cfg.fault.enabled() ? std::make_unique<FaultInjector>(cfg.fault)
                                 : nullptr),
      verifier_(cfg.verify.level != VerifyLevel::kOff
                    ? std::make_unique<Verifier>(cfg.verify)
                    : nullptr),
      device_(make_device(cfg, &power_, fault_.get())),
      port_(std::make_unique<DevicePort>(device_.get(), cfg.retry,
                                         /*tracking=*/fault_ != nullptr,
                                         fault_.get())),
      l2_(cfg.l2),
      prefetcher_(cfg.num_cores, cfg.prefetch),
      page_table_(cfg.phys_pages, cfg.page_table_seed, cfg.identity_paging),
      miss_queue_(cfg.miss_queue_entries),
      wb_queue_(cfg.wb_queue_entries) {
  if (cfg.noc.active()) {
    noc_ = static_cast<MultiCubeBackend*>(device_.get());
  }
  cores_.resize(cfg.num_cores);
  for (CoreState& core : cores_) core.trace = empty_trace();
  l1_.reserve(cfg.num_cores);
  for (std::uint32_t i = 0; i < cfg.num_cores; ++i) l1_.emplace_back(cfg.l1);

  raw_trace_active_ = cfg.record_raw_trace && cfg.raw_trace_limit > 0;
  if (raw_trace_active_) raw_trace_.reserve(cfg.raw_trace_limit);

  if (cfg.coalescer_factory) {
    coalescer_ = cfg.coalescer_factory(port_.get());
  } else {
    switch (cfg.coalescer) {
      case CoalescerKind::kPac: {
        auto pac = std::make_unique<Pac>(cfg.pac, port_.get());
        pac_ = pac.get();
        coalescer_ = std::move(pac);
        break;
      }
      case CoalescerKind::kMshrDmc:
        coalescer_ = std::make_unique<MshrDmc>(cfg.mshr_dmc, port_.get());
        break;
      case CoalescerKind::kDirect:
        coalescer_ =
            std::make_unique<DirectController>(cfg.direct, port_.get());
        break;
      case CoalescerKind::kSortingDmc:
        coalescer_ =
            std::make_unique<SortingCoalescer>(cfg.sorting_dmc, port_.get());
        break;
    }
  }

  hard_failures_ = fault_ != nullptr && cfg.fault.hard_enabled();
  if (hard_failures_) {
    capacity_units_ =
        (cfg.noc.active() ? cfg.noc.cubes : 1) *
        device_->address_map().num_vaults();
    if (cfg.fault.spare_pages > 0) {
      page_table_.enable_sparing(
          cfg.fault.spare_pages,
          [this](std::uint64_t pfn) { return frame_dead(pfn); });
    }
  }

  if (verifier_ != nullptr) {
    coalescer_->set_verifier(verifier_.get());
    port_->set_verifier(verifier_.get());
    device_->set_verifier(verifier_.get());
    verifier_->set_state_provider(
        [this] { return verifier_components_json(); });
  }
}

bool System::frame_dead(std::uint64_t pfn) const {
  if (fault_ == nullptr || !fault_->any_dead()) return false;
  const AddressMap& map = device_->address_map();
  const Addr base = pfn << kPageShift;
  const std::uint32_t cube = map.cube_of(base);
  if (fault_->cube_dead(cube) || fault_->cube_unreachable(cube)) return true;
  if (fault_->dead_vaults().empty()) return false;
  // Vault interleaving scatters a 4 KB page across vaults at row
  // granularity; probe every cache block so any dead-vault overlap counts.
  for (Addr a = base; a < base + kPageSize; a += kCacheBlockSize) {
    if (fault_->vault_dead(cube, map.decode(a).vault)) return true;
  }
  return false;
}

void System::integrate_degradation(Cycle now) {
  degrade_lost_units_ +=
      static_cast<std::uint64_t>(dead_units_now_) * (now - degrade_last_cycle_);
  degrade_last_cycle_ = now;
}

void System::refresh_dead_units() {
  const std::uint32_t vaults = device_->address_map().num_vaults();
  const std::uint32_t cubes = cfg_.noc.active() ? cfg_.noc.cubes : 1;
  std::uint32_t dead = 0;
  for (std::uint32_t c = 0; c < cubes; ++c) {
    if (fault_->cube_dead(c) || fault_->cube_unreachable(c)) {
      dead += vaults;
      continue;
    }
    for (std::uint32_t v = 0; v < vaults; ++v) {
      if (fault_->vault_dead(c, v)) ++dead;
    }
  }
  dead_units_now_ = dead;
}

void System::apply_fault_events() {
  // Commit the availability integral with the pre-event dead-unit count,
  // then apply the events and re-derive routes and capacity from the new
  // state. poll() fires exactly at the scheduled cycle because
  // next_event_cycle() clamps fast-forward jumps to the timeline.
  integrate_degradation(now_);
  fault_->poll(now_);
  if (noc_ != nullptr) noc_->on_fault_state_changed(now_);
  refresh_dead_units();
  if (first_failure_cycle_ == kNeverCycle) first_failure_cycle_ = now_;
}

void System::load_trace(std::uint32_t core, Trace trace, std::uint8_t process) {
  load_trace(core, std::make_shared<const Trace>(std::move(trace)), process);
}

void System::load_trace(std::uint32_t core, SharedTrace trace,
                        std::uint8_t process) {
  assert(core < cores_.size());
  cores_[core].trace = trace ? std::move(trace) : empty_trace();
  cores_[core].process = process;
  cores_[core].done = cores_[core].trace->empty();
}

MemRequest System::make_raw(Addr paddr, MemOp op, std::uint8_t core,
                            std::uint32_t bytes) {
  MemRequest req;
  req.id = next_raw_id_++;
  req.paddr = paddr;
  req.bytes = bytes;
  req.op = op;
  req.core = core;
  req.process = cores_[core].process;
  req.created_at = now_;
  if (verifier_ != nullptr) verifier_->on_issued(req, now_);
  return req;
}

void System::l2_install_dirty(Addr block) {
  const CacheAccess acc = l2_.access(block, true);
  if (acc.writeback) {
    // A write-back slot was reserved by the caller's capacity pre-check.
    const bool ok = wb_queue_.push(
        make_raw(acc.victim_addr, MemOp::kStore, 0, cfg_.l2.line_bytes));
    assert(ok);
    (void)ok;
  }
}

void System::issue_prefetches(std::uint32_t core, Addr block) {
  if (!cfg_.enable_prefetch) return;
  for (Addr target : prefetcher_.on_miss(core, block)) {
    if (miss_queue_.full() || wb_queue_.full()) break;
    // Skip lines that are valid or already being filled: the prefetcher
    // shares the MSHRs' visibility of outstanding fills.
    if (l2_.probe(target)) continue;
    const CacheAccess acc = l2_.fill(target);
    if (acc.writeback) {
      const bool ok = wb_queue_.push(
          make_raw(acc.victim_addr, MemOp::kStore, 0, cfg_.l2.line_bytes));
      assert(ok);
      (void)ok;
    }
    llc_inflight_.insert(target);
    MemRequest req =
        make_raw(target, MemOp::kLoad,
                 static_cast<std::uint8_t>(core), cfg_.l2.line_bytes);
    inflight_misses_.emplace(req.id, MissInfo{static_cast<std::uint8_t>(core),
                                              /*demand_load=*/false,
                                              /*primary_fill=*/true, target});
    const bool ok = miss_queue_.push(std::move(req));
    assert(ok);
    (void)ok;
    ++prefetch_count_;
  }
}

void System::step_core(std::uint32_t i) {
  CoreState& c = cores_[i];
  if (c.done) return;
  if (now_ < c.ready_at) return;
  if (c.pc >= c.trace->size()) {
    c.done = true;
    ++done_cores_;
    return;
  }

  const TraceOp& op = (*c.trace)[c.pc];
  switch (op.kind) {
    case OpKind::kCompute:
      c.ready_at = now_ + op.arg;
      ++c.pc;
      return;

    case OpKind::kFence: {
      if (miss_queue_.full()) {
        ++c.stall_cycles;
        return;
      }
      const bool ok = miss_queue_.push(make_raw(0, MemOp::kFence,
                                                static_cast<std::uint8_t>(i), 0));
      assert(ok);
      (void)ok;
      c.ready_at = now_ + 1;
      ++c.pc;
      return;
    }

    case OpKind::kAtomic: {
      if (c.outstanding_loads >= cfg_.max_outstanding_loads ||
          miss_queue_.full()) {
        ++c.stall_cycles;
        return;
      }
      const Addr paddr = page_table_.translate(c.process, op.vaddr);
      if (page_table_.consume_migration()) {
        // Sparing remap: charge the migration latency and retry the access
        // (the mapping now points at the spare frame).
        c.ready_at = now_ + cfg_.fault.page_migrate_cycles;
        return;
      }
      MemRequest req = make_raw(paddr, MemOp::kAtomic,
                                static_cast<std::uint8_t>(i), op.arg);
      inflight_misses_.emplace(
          req.id, MissInfo{static_cast<std::uint8_t>(i), /*demand_load=*/true});
      const bool ok = miss_queue_.push(std::move(req));
      assert(ok);
      (void)ok;
      ++c.outstanding_loads;
      c.ready_at = now_ + 1;
      ++c.pc;
      return;
    }

    case OpKind::kLoad:
    case OpKind::kStore: {
      const bool is_store = op.kind == OpKind::kStore;
      const Addr paddr = page_table_.translate(c.process, op.vaddr);
      if (page_table_.consume_migration()) {
        c.ready_at = now_ + cfg_.fault.page_migrate_cycles;
        return;
      }
      const Addr block = block_base(paddr);

      if (l1_[i].probe(block)) {
        l1_[i].access(block, is_store);
        c.ready_at = now_ + (is_store ? 1 : cfg_.l1.hit_latency);
        ++c.pc;
        return;
      }

      // Cross-core access to an LLC line still being filled: the line's
      // tag is present but its data is not, so a raw request is emitted
      // and merged (or duplicated) below the LLC.
      if (llc_inflight_.contains(block)) {
        if (miss_queue_.full() || wb_queue_.full()) {
          ++c.stall_cycles;
          return;
        }
        if (!is_store && c.outstanding_loads >= cfg_.max_outstanding_loads) {
          ++c.stall_cycles;
          return;
        }
        const CacheAccess a1 = l1_[i].access(block, is_store);
        MemRequest req = make_raw(block, MemOp::kLoad,
                                  static_cast<std::uint8_t>(i),
                                  cfg_.l2.line_bytes);
        inflight_misses_.emplace(
            req.id, MissInfo{static_cast<std::uint8_t>(i),
                             /*demand_load=*/!is_store,
                             /*primary_fill=*/false, block});
        const bool ok = miss_queue_.push(std::move(req));
        assert(ok);
        (void)ok;
        if (!is_store) ++c.outstanding_loads;
        if (a1.writeback) l2_install_dirty(a1.victim_addr);
        // Keep the prefetch stream trained: demand catching up with its
        // prefetches is the steady state of a bandwidth-bound loop.
        issue_prefetches(i, block);
        c.ready_at = now_ + 1;
        ++c.pc;
        return;
      }

      // L1 miss. Worst case needs: one miss-queue slot and two write-back
      // slots (L2 demand victim + L1 victim's install victim).
      const bool l2_hit = l2_.probe(block);
      if (!l2_hit) {
        if (miss_queue_.full() || wb_queue_.free_slots() < 2) {
          ++c.stall_cycles;
          return;
        }
        if (!is_store && c.outstanding_loads >= cfg_.max_outstanding_loads) {
          ++c.stall_cycles;
          return;
        }
      } else if (wb_queue_.full()) {
        ++c.stall_cycles;  // the L1 victim install may still evict from L2
        return;
      }

      // Commit point: no stalls past here.
      const CacheAccess a1 = l1_[i].access(block, is_store);

      if (l2_hit) {
        const CacheAccess a2 = l2_.access(block, false);  // LRU touch
        // First demand hit on a prefetched line keeps the stream trained.
        if (a2.prefetched_hit) issue_prefetches(i, block);
        c.ready_at = now_ + cfg_.l2.hit_latency;
      } else {
        const CacheAccess a2 = l2_.access(block, false);
        if (a2.writeback) {
          const bool ok = wb_queue_.push(make_raw(
              a2.victim_addr, MemOp::kStore, 0, cfg_.l2.line_bytes));
          assert(ok);
          (void)ok;
        }
        MemRequest req = make_raw(block, MemOp::kLoad,
                                  static_cast<std::uint8_t>(i),
                                  cfg_.l2.line_bytes);
        inflight_misses_.emplace(
            req.id, MissInfo{static_cast<std::uint8_t>(i),
                             /*demand_load=*/!is_store,
                             /*primary_fill=*/true, block});
        llc_inflight_.insert(block);
        const bool ok = miss_queue_.push(std::move(req));
        assert(ok);
        (void)ok;
        if (!is_store) ++c.outstanding_loads;
        issue_prefetches(i, block);
        // The scoreboard hides the miss: the core issues on (in-order cores
        // would stall at first use; the scoreboard depth models the MLP a
        // real core + prefetcher exposes below the LLC).
        c.ready_at = now_ + 1;
      }

      if (a1.writeback) l2_install_dirty(a1.victim_addr);
      ++c.pc;
      return;
    }
  }
}

void System::feed_coalescer() {
  // One raw request enters the coalescer per cycle (the PRA compares one
  // input against all streams per cycle); miss and WB queues alternate.
  FixedQueue<MemRequest>* first = feed_from_wb_first_ ? &wb_queue_ : &miss_queue_;
  FixedQueue<MemRequest>* second = feed_from_wb_first_ ? &miss_queue_ : &wb_queue_;
  feed_from_wb_first_ = !feed_from_wb_first_;
  for (FixedQueue<MemRequest>* q : {first, second}) {
    if (q->empty()) continue;
    // MSHR/tag lookup at the head of the miss queue: a duplicate request
    // whose line has finished filling while it waited is satisfied from the
    // now-valid LLC line instead of being injected (all coalescer configs
    // see the same policy).
    if (q == &miss_queue_) {
      const MemRequest& head = q->front();
      if (head.op == MemOp::kLoad) {
        auto it = inflight_misses_.find(head.id);
        if (it != inflight_misses_.end() && !it->second.primary_fill &&
            !llc_inflight_.contains(block_base(head.paddr))) {
          on_satisfied(head.id);
          q->pop();
          return;
        }
      }
    }
    if (coalescer_->accept(q->front(), now_)) {
      if (verifier_ != nullptr) verifier_->on_accepted(q->front(), now_);
      if (raw_trace_active_) record_raw_trace(q->front());
      q->pop();
    }
    return;  // at most one attempt per cycle
  }
}

void System::record_raw_trace(const MemRequest& req) {
  // raw_trace_active_ pre-gates this call: the common no-capture run pays a
  // single branch per accepted request instead of the full condition chain.
  if (now_ < cfg_.raw_trace_start) return;
  if (req.op != MemOp::kLoad && req.op != MemOp::kStore) return;
  raw_trace_.push_back(req.paddr);
  if (raw_trace_.size() >= cfg_.raw_trace_limit) raw_trace_active_ = false;
}

void System::on_satisfied(std::uint64_t raw_id) {
  // Raws named by a poisoned completion are declared losses, not
  // retirements; raws merged into the same device request after its submit
  // snapshot retire normally (each raw resolves exactly once either way).
  if (!poisoned_raws_.empty() && poisoned_raws_.erase(raw_id) > 0) {
    ++poisoned_raw_count_;
    if (verifier_ != nullptr) verifier_->on_poisoned(raw_id, now_);
  } else if (verifier_ != nullptr) {
    verifier_->on_retired(raw_id, now_);
  }
  auto it = inflight_misses_.find(raw_id);
  if (it == inflight_misses_.end()) return;  // write-backs are untracked
  if (it->second.demand_load) {
    CoreState& c = cores_[it->second.core];
    assert(c.outstanding_loads > 0);
    --c.outstanding_loads;
  }
  if (it->second.primary_fill) llc_inflight_.erase(it->second.block);
  inflight_misses_.erase(it);
}

bool System::finished() const {
  return done_cores_ == cores_.size() && miss_queue_.empty() &&
         wb_queue_.empty() && coalescer_->idle() && device_->idle() &&
         port_->idle();
}

bool System::has_outstanding_work() const {
  return !miss_queue_.empty() || !wb_queue_.empty() ||
         !inflight_misses_.empty() || !coalescer_->idle() || !port_->idle() ||
         !device_->idle();
}

std::string System::verifier_components_json() const {
  std::ostringstream out;
  std::uint32_t stalled_loads = 0;
  std::uint32_t waiting_cores = 0;
  for (const CoreState& c : cores_) {
    stalled_loads += c.outstanding_loads;
    if (!c.done) ++waiting_cores;
  }
  out << "{\"cycle\": " << now_ << ", \"miss_queue\": " << miss_queue_.size()
      << ", \"wb_queue\": " << wb_queue_.size()
      << ", \"inflight_misses\": " << inflight_misses_.size()
      << ", \"llc_inflight_lines\": " << llc_inflight_.size()
      << ", \"cores_not_done\": " << waiting_cores
      << ", \"outstanding_loads\": " << stalled_loads
      << ", \"coalescer\": " << coalescer_->debug_json()
      << ", \"port\": " << port_->debug_json()
      << ", \"device\": " << device_->debug_json() << "}";
  return out.str();
}

bool System::core_stalled_steady(std::uint32_t i) const {
  const CoreState& c = cores_[i];
  if (c.pc >= c.trace->size()) return false;  // would transition to done
  const TraceOp& op = (*c.trace)[c.pc];
  switch (op.kind) {
    case OpKind::kCompute:
      return false;

    case OpKind::kFence:
      return miss_queue_.full();

    case OpKind::kAtomic:
      return c.outstanding_loads >= cfg_.max_outstanding_loads ||
             miss_queue_.full();

    case OpKind::kLoad:
    case OpKind::kStore: {
      const bool is_store = op.kind == OpKind::kStore;
      // The executed attempt that first stalled this op already
      // demand-paged it, so the mapping exists; a missing mapping means no
      // attempt ran yet - report progress so the cycle executes for real.
      const std::optional<Addr> paddr =
          page_table_.lookup(c.process, op.vaddr);
      if (!paddr.has_value()) return false;
      const Addr block = block_base(*paddr);
      // Mirror of step_core's stall conditions, all side-effect-free.
      if (l1_[i].probe(block)) return false;  // would hit and retire
      if (llc_inflight_.contains(block)) {
        if (miss_queue_.full() || wb_queue_.full()) return true;
        return !is_store &&
               c.outstanding_loads >= cfg_.max_outstanding_loads;
      }
      if (!l2_.probe(block)) {
        if (miss_queue_.full() || wb_queue_.free_slots() < 2) return true;
        return !is_store &&
               c.outstanding_loads >= cfg_.max_outstanding_loads;
      }
      return wb_queue_.full();
    }
  }
  return false;
}

Cycle System::next_event_cycle() const {
  // Feed attempts happen every cycle while anything is queued - and even a
  // refused accept() has observable effects (e.g. PAC's cross-page
  // adjacency probe) - so queued work pins the simulation to per-cycle
  // stepping.
  if (!miss_queue_.empty() || !wb_queue_.empty()) return now_;
  // Cheapest bounds first: a busy device or coalescer pins per-cycle
  // stepping, and bailing out before the per-core stall scan keeps failed
  // jump attempts nearly free during bandwidth-bound phases.
  Cycle bound = device_->next_event_cycle(now_);
  if (bound == now_) return now_;
  // Scheduled hard-failure events fire at exact cycles: clamp jumps so
  // poll() runs on precisely the scheduled cycle. perturb.skip_timeline_clamp
  // is the soak fuzzer's planted bug: omitting the clamp lets fast-forward
  // leap over a scheduled event and fire it late.
  if (hard_failures_ && !cfg_.perturb.skip_timeline_clamp) {
    bound = std::min(bound, fault_->next_timeline_cycle(now_));
    if (bound == now_) return now_;
  }
  // Pending retry timers (NACK backoff, response deadlines) bound the jump
  // in fault-injected runs; passthrough reports kNeverCycle.
  bound = std::min(bound, port_->next_event_cycle(now_));
  if (bound == now_) return now_;
  bound = std::min(bound, coalescer_->next_event_cycle(now_));
  if (bound == now_) return now_;
  for (std::uint32_t i = 0; i < cores_.size(); ++i) {
    const CoreState& c = cores_[i];
    if (c.done) continue;
    if (c.ready_at > now_) {
      bound = std::min(bound, c.ready_at);
      continue;
    }
    if (!core_stalled_steady(i)) return now_;
    // A steadily stalled core imposes no bound: its per-cycle stall count
    // is credited analytically when run() jumps.
  }
  return std::max(bound, now_);
}

void System::step() {
  if (hard_failures_ && fault_->next_timeline_cycle(now_) <= now_) {
    apply_fault_events();
  }
  device_->tick(now_);
  port_->tick(now_);  // retries/timeouts; passthrough no-op without faults
  port_->drain_completed_into(completed_buf_);
  for (const DeviceResponse& rsp : completed_buf_) {
    if (rsp.poisoned) {
      for (const std::uint64_t raw : rsp.raw_ids) poisoned_raws_.insert(raw);
    }
    if (verifier_ != nullptr) verifier_->on_response(rsp, now_);
    coalescer_->complete(rsp, now_);
  }
  coalescer_->tick(now_);
  coalescer_->drain_satisfied_into(satisfied_buf_);
  for (std::uint64_t raw : satisfied_buf_) on_satisfied(raw);
  feed_coalescer();
  for (std::uint32_t i = 0; i < cores_.size(); ++i) step_core(i);
  ++now_;
}

void System::begin_run() {
  wall_seconds_ = 0.0;
  fast_forward_ = cfg_.enable_fast_forward &&
                  std::getenv("PACSIM_NO_FASTFORWARD") == nullptr;
  done_cores_ = 0;
  for (const CoreState& c : cores_) done_cores_ += c.done ? 1 : 0;
}

bool System::run_until(Cycle bound) {
  const auto wall_start = std::chrono::steady_clock::now();

  while (!finished() && now_ < bound) {
    if (cfg_.cancel != nullptr &&
        cfg_.cancel->load(std::memory_order_relaxed)) {
      throw std::runtime_error("System::run cancelled at cycle " +
                               std::to_string(now_) +
                               " (sweep watchdog timeout)");
    }
    step();
    if (verifier_ != nullptr) {
      if (verifier_->watchdog_due(now_)) {
        if (has_outstanding_work()) {
          verifier_->watchdog_fire(
              now_, "no lifecycle event for " +
                        std::to_string(verifier_->config().watchdog_cycles) +
                        " cycles with requests outstanding");
        } else {
          // Idle is progress: cores computing (or all done but the final
          // finished() check pending) must not trip the watchdog.
          verifier_->note_progress(now_);
        }
      }
      if (verifier_->age_check_due(now_)) verifier_->check_ages(now_);
    }
    if (now_ > cfg_.max_cycles) {
      if (verifier_ != nullptr) {
        verifier_->watchdog_fire(
            now_, "exceeded max_cycles=" + std::to_string(cfg_.max_cycles) +
                      " (outstanding=" + std::to_string(device_->outstanding()) +
                      ", inflight=" +
                      std::to_string(inflight_misses_.size()) + ")");
      }
      throw std::runtime_error(
          "System::run exceeded max_cycles watchdog (outstanding=" +
          std::to_string(device_->outstanding()) +
          ", inflight=" + std::to_string(inflight_misses_.size()) + ")");
    }
    if (!fast_forward_ || finished()) continue;

    // Event horizon: jump straight to the next cycle where step() can do
    // real work. Clamped to max_cycles so the watchdog fires on exactly the
    // same cycle as the naive loop, to the verifier's next deadline so no
    // jump can leap over a due watchdog or age scan, and to the caller's
    // bound (the epoch barrier). The bound clamp cannot perturb results:
    // jumps are analytically exact for any target within the event horizon,
    // so stopping early and re-deriving the remaining jump later lands in
    // the identical state.
    Cycle horizon = next_event_cycle();
    if (cfg_.perturb.ff_overshoot != 0 && horizon > now_ &&
        horizon != kNeverCycle) {
      // Planted bug (soak fuzzer): overshoot the proven event horizon. The
      // naive loop never jumps, so the ff-vs-naive oracle must catch this.
      horizon += cfg_.perturb.ff_overshoot;
    }
    Cycle target = std::min({horizon, cfg_.max_cycles, bound});
    if (verifier_ != nullptr) {
      target = std::min(target, verifier_->next_deadline(now_));
    }
    if (target <= now_) continue;
    const Cycle skipped = target - now_;
    // Every skipped cycle is a proven no-op except for two per-cycle
    // artifacts the jump replays analytically: steadily stalled cores count
    // one stall cycle each, and feed_coalescer flips its arbitration
    // toggle.
    for (CoreState& c : cores_) {
      if (!c.done && c.ready_at <= now_) c.stall_cycles += skipped;
    }
    if ((skipped & 1) != 0) feed_from_wb_first_ = !feed_from_wb_first_;
    coalescer_->fast_forward_to(target);
    now_ = target;
    ++ff_jumps_;
    ff_skipped_cycles_ += skipped;
  }

  const bool done = finished();
  if (done && verifier_ != nullptr) verifier_->final_check(now_);
  wall_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return done;
}

RunResult System::run() {
  begin_run();
  run_until(kNeverCycle);
  return collect_result();
}

RunResult System::collect_result() const {
  RunResult r;
  r.cycles = now_;
  r.throughput.sim_cycles = now_;
  r.throughput.fast_forward_jumps = ff_jumps_;
  r.throughput.skipped_cycles = ff_skipped_cycles_;
  r.throughput.wall_seconds = wall_seconds_;
  r.ns_per_cycle = cfg_.ns_per_cycle();
  r.coal = coalescer_->stats();
  if (pac_ != nullptr) {
    r.pac = pac_->pac_stats();
    r.has_pac = true;
  }
  r.backend = cfg_.backend;
  r.hmc = device_->stats();
  if (noc_ != nullptr) {
    r.noc = noc_->noc_stats();
    r.has_noc = true;
  }
  if (fault_ != nullptr) {
    r.resilience.enabled = true;
    r.resilience.fault = fault_->stats();
    r.resilience.retry = port_->stats();
  }
  if (hard_failures_) {
    DegradationStats& d = r.degradation;
    d.enabled = true;
    d.events_fired = fault_->timeline_fired();
    d.capacity_units = capacity_units_;
    d.unit_cycles_total = static_cast<std::uint64_t>(capacity_units_) * now_;
    // Commit the open integration interval without mutating state (collect
    // may run mid-campaign from a const context).
    d.unit_cycles_lost =
        degrade_lost_units_ + static_cast<std::uint64_t>(dead_units_now_) *
                                  (now_ - degrade_last_cycle_);
    d.repairs = fault_->repairs();
    d.repair_cycles_total = fault_->repair_cycles_total();
    d.pages_migrated = page_table_.pages_migrated();
    d.spares_used = page_table_.spares_used();
    d.poisoned_raws = poisoned_raw_count_;
    d.first_failure_cycle = first_failure_cycle_;
  }
  if (verifier_ != nullptr) r.verification = verifier_->stats_snapshot();
  for (std::size_t i = 0; i < r.energy.size(); ++i) {
    r.energy[i] = power_.energy(static_cast<HmcOp>(i));
  }
  r.total_energy = power_.total();
  for (const Cache& l1 : l1_) {
    r.l1_hits += l1.hits();
    r.l1_misses += l1.misses();
  }
  r.llc_hits = l2_.hits();
  r.llc_misses = l2_.misses();
  r.prefetches_issued = prefetch_count_;
  for (const CoreState& c : cores_) r.core_stall_cycles += c.stall_cycles;
  r.raw_trace = raw_trace_;
  return r;
}

void System::checkpoint_save(BinWriter& w) const {
  if (!quiescent()) {
    throw SnapshotError("checkpoint_save requires a quiescent system");
  }
  w.tag("SYST");
  w.u64(now_);
  w.u64(next_raw_id_);
  w.u64(prefetch_count_);
  w.b(feed_from_wb_first_);
  w.b(raw_trace_active_);
  w.u64(ff_jumps_);
  w.u64(ff_skipped_cycles_);
  // Hard-failure accounting (zeros when no timeline is configured). The
  // dead-unit count and poisoned_raws_ set are derived/transient: the
  // former is recomputed after restore, the latter empty at quiescence.
  w.u64(poisoned_raw_count_);
  w.u64(degrade_last_cycle_);
  w.u64(degrade_lost_units_);
  w.u64(first_failure_cycle_);
  // Cores: everything except the trace contents (restored via load_trace).
  w.u64(cores_.size());
  for (const CoreState& c : cores_) {
    w.u64(c.pc);
    w.u8(c.process);
    w.u64(c.ready_at);
    w.u32(c.outstanding_loads);
    w.u64(c.stall_cycles);
    w.b(c.done);
  }
  w.u64(raw_trace_.size());
  for (const Addr a : raw_trace_) w.u64(a);
  for (const Cache& l1 : l1_) l1.checkpoint_save(w);
  l2_.checkpoint_save(w);
  prefetcher_.checkpoint_save(w);
  page_table_.checkpoint_save(w);
  power_.checkpoint_save(w);
  w.b(fault_ != nullptr);
  if (fault_ != nullptr) fault_->checkpoint_save(w);
  w.b(verifier_ != nullptr);
  if (verifier_ != nullptr) verifier_->checkpoint_save(w);
  port_->checkpoint_save(w);
  device_->checkpoint_save(w);
  coalescer_->checkpoint_save(w);
}

void System::checkpoint_load(BinReader& r) {
  r.tag("SYST");
  now_ = r.u64();
  next_raw_id_ = r.u64();
  prefetch_count_ = r.u64();
  feed_from_wb_first_ = r.b();
  raw_trace_active_ = r.b();
  ff_jumps_ = r.u64();
  ff_skipped_cycles_ = r.u64();
  poisoned_raw_count_ = r.u64();
  degrade_last_cycle_ = r.u64();
  degrade_lost_units_ = r.u64();
  first_failure_cycle_ = r.u64();
  poisoned_raws_.clear();
  if (r.u64() != cores_.size()) {
    throw SnapshotError("core count mismatch");
  }
  for (CoreState& c : cores_) {
    c.pc = r.u64();
    c.process = r.u8();
    c.ready_at = r.u64();
    c.outstanding_loads = r.u32();
    c.stall_cycles = r.u64();
    c.done = r.b();
    if (c.pc > c.trace->size()) {
      throw SnapshotError("core pc beyond loaded trace (wrong trace?)");
    }
  }
  raw_trace_.resize(r.u64());
  for (Addr& a : raw_trace_) a = r.u64();
  for (Cache& l1 : l1_) l1.checkpoint_load(r);
  l2_.checkpoint_load(r);
  prefetcher_.checkpoint_load(r);
  page_table_.checkpoint_load(r);
  power_.checkpoint_load(r);
  if (r.b() != (fault_ != nullptr)) {
    throw SnapshotError("fault-injection config mismatch");
  }
  if (fault_ != nullptr) fault_->checkpoint_load(r);
  if (r.b() != (verifier_ != nullptr)) {
    throw SnapshotError("verifier config mismatch");
  }
  if (verifier_ != nullptr) verifier_->checkpoint_load(r);
  port_->checkpoint_load(r);
  device_->checkpoint_load(r);
  coalescer_->checkpoint_load(r);
  // The injector replayed its timeline prefix and the fabric re-derived
  // routes (pushing the unreachable set); recount capacity from that state.
  if (hard_failures_) refresh_dead_units();
}

}  // namespace pacsim
