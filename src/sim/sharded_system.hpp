// Deterministic sharded execution: the run is partitioned into independent
// execution domains ("shards"), each owning a disjoint contiguous subset of
// cores with its own private L1s, shared-within-shard LLC, page table,
// coalescer, retry port, and memory device. Shards never interact, so
// advancing them on worker threads under an epoch-barrier scheduler is
// bit-identical to advancing the same shards serially - at any thread
// count, in any scheduling order (DESIGN.md "Sharded execution").
//
// The epoch grid does double duty: it is also where checkpoints are taken.
// At an epoch boundary every shard sits at exactly the same cycle; when all
// shards are additionally quiescent (no raw request buffered or in flight),
// the whole simulation state is a few counters per component, and a
// versioned snapshot is written via write_file_atomic. Restoring that
// snapshot into a freshly built ShardedSystem with the same config and
// traces resumes the run bit-identically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/trace.hpp"
#include "sim/metrics.hpp"
#include "sim/system.hpp"
#include "sim/system_config.hpp"

namespace pacsim {

class ShardedSystem {
 public:
  /// Builds `exec.shards` Systems (0 derives the count from exec.threads),
  /// clamped to one shard per core. Shard s receives cfg with num_cores =
  /// its partition size and fault/page-table seeds XORed with s (shard 0
  /// keeps the original seeds, so a 1-shard run is bit-identical to the
  /// classic System path).
  explicit ShardedSystem(const SystemConfig& cfg);

  /// Install the trace for global core index `core`; routed to the owning
  /// shard's local core slot.
  void load_trace(std::uint32_t core, SharedTrace trace,
                  std::uint8_t process = 0);

  /// Restore (when exec.restore_path is set), then advance all shards in
  /// epochs until every shard finishes, writing checkpoints on the way when
  /// exec.checkpoint_dir is set. Returns the shard results merged into one
  /// RunResult (counters summed, distributions merged in shard order,
  /// cycles = max over shards) with ExecStats provenance filled in.
  RunResult run();

  [[nodiscard]] unsigned shard_count() const {
    return static_cast<unsigned>(shards_.size());
  }
  [[nodiscard]] const System& shard(std::size_t i) const {
    return *shards_[i];
  }

  /// Snapshot filename for a given cycle ("<dir>/ckpt-<cycle>.pacsnap").
  static std::string snapshot_path(const std::string& dir, Cycle cycle);

 private:
  struct LoadedTrace {
    SharedTrace trace;  ///< never null once load_trace ran (empty otherwise)
    std::uint8_t process = 0;
  };

  void run_epoch(Cycle bound);
  void maybe_checkpoint(Cycle bound);
  void write_snapshot(Cycle bound) const;
  void restore_from(const std::string& path);
  /// Order- and padding-independent hash of the loaded traces + processes;
  /// snapshot headers carry it so a restore against different workload data
  /// fails fast instead of silently diverging.
  [[nodiscard]] std::uint64_t trace_fingerprint() const;
  [[nodiscard]] bool all_finished() const;
  [[nodiscard]] RunResult merge_results() const;

  SystemConfig cfg_;
  std::vector<std::unique_ptr<System>> shards_;
  std::vector<std::uint32_t> shard_start_;  ///< size shards+1, global cores
  std::vector<LoadedTrace> loaded_;         ///< per global core
  unsigned threads_effective_ = 1;

  Cycle bound_ = 0;             ///< last epoch boundary every shard reached
  Cycle next_checkpoint_ = 0;   ///< next cycle a snapshot attempt is due
  ExecStats exec_;
};

}  // namespace pacsim
