// Graph analytics suites: GAPBS-style BFS and SSCA#2.
#include <queue>

#include "workloads/kernel_support.hpp"
#include "workloads/suites.hpp"

namespace pacsim::suites {
namespace {

/// CSR graph built deterministically from a seed.
struct CsrGraph {
  std::uint64_t num_vertices = 0;
  std::vector<std::uint64_t> row_ptr;
  std::vector<std::uint32_t> col;
};

/// Uniform random graph: destination vertices are spread over the whole
/// vertex range, so the visited/parent accesses of BFS scatter across
/// physical pages - the worst case for any coalescer (paper Fig. 8).
CsrGraph make_uniform_graph(std::uint64_t v, std::uint64_t e,
                            std::uint64_t seed) {
  CsrGraph g;
  g.num_vertices = v;
  std::vector<std::uint32_t> src(e), dst(e);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < e; ++i) {
    src[i] = static_cast<std::uint32_t>(rng.below(v));
    dst[i] = static_cast<std::uint32_t>(rng.below(v));
  }
  g.row_ptr.assign(v + 1, 0);
  for (std::uint64_t i = 0; i < e; ++i) ++g.row_ptr[src[i] + 1];
  for (std::uint64_t i = 0; i < v; ++i) g.row_ptr[i + 1] += g.row_ptr[i];
  g.col.resize(e);
  std::vector<std::uint64_t> cursor(g.row_ptr.begin(), g.row_ptr.end() - 1);
  for (std::uint64_t i = 0; i < e; ++i) g.col[cursor[src[i]]++] = dst[i];
  return g;
}

/// R-MAT graph (a=0.57, b=c=0.19): skewed degree distribution with
/// community structure, the SSCA#2 input class.
CsrGraph make_rmat_graph(std::uint64_t scale_log2, std::uint64_t e,
                         std::uint64_t seed) {
  const std::uint64_t v = std::uint64_t{1} << scale_log2;
  CsrGraph g;
  g.num_vertices = v;
  std::vector<std::uint32_t> src(e), dst(e);
  Rng rng(seed);
  for (std::uint64_t i = 0; i < e; ++i) {
    std::uint64_t u = 0, w = 0;
    for (std::uint64_t bit = 0; bit < scale_log2; ++bit) {
      const double p = rng.uniform();
      // Quadrant probabilities 0.57 / 0.19 / 0.19 / 0.05.
      const bool ubit = p >= 0.57 + 0.19;
      const bool wbit = (p >= 0.57 && p < 0.57 + 0.19) || p >= 0.57 + 2 * 0.19;
      u = (u << 1) | (ubit ? 1 : 0);
      w = (w << 1) | (wbit ? 1 : 0);
    }
    src[i] = static_cast<std::uint32_t>(u);
    dst[i] = static_cast<std::uint32_t>(w);
  }
  g.row_ptr.assign(v + 1, 0);
  for (std::uint64_t i = 0; i < e; ++i) ++g.row_ptr[src[i] + 1];
  for (std::uint64_t i = 0; i < v; ++i) g.row_ptr[i + 1] += g.row_ptr[i];
  g.col.resize(e);
  std::vector<std::uint64_t> cursor(g.row_ptr.begin(), g.row_ptr.end() - 1);
  for (std::uint64_t i = 0; i < e; ++i) g.col[cursor[src[i]]++] = dst[i];
  return g;
}

/// GAPBS-style level-synchronous BFS. Frontier slices are partitioned
/// across cores per level; visited-flag probes and parent stores scatter
/// over megabytes of per-vertex state.
class BfsWorkload final : public Workload {
 public:
  std::string_view name() const override { return "bfs"; }
  std::string_view description() const override {
    return "level-synchronous BFS on a uniform random graph";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t v = scaled(1ULL << 20, cfg.scale, 1 << 14);
    const std::uint64_t e = v * 8;
    const CsrGraph g = make_uniform_graph(v, e, cfg.seed ^ 0xBF5ULL);

    VirtualArena arena;
    const Addr row_ptr = arena.alloc((v + 1) * 8);
    const Addr col = arena.alloc(e * 4);
    const Addr visited = arena.alloc(v);      // 1 byte per vertex
    const Addr parent = arena.alloc(v * 8);
    const Addr frontier_buf = arena.alloc(v * 4);

    // Host-side BFS computes the level structure once; every core then
    // replays the accesses for its slice of each level. GAPBS-style
    // direction optimization: large next-frontiers are produced bottom-up
    // (a sequential scan over all vertices), small ones top-down.
    std::vector<std::vector<std::uint32_t>> levels;
    constexpr std::uint32_t kUnvisited = 0xFFFFFFFF;
    std::vector<std::uint32_t> depth(v, kUnvisited);
    {
      std::vector<std::uint32_t> frontier{0};
      depth[0] = 0;
      std::uint32_t d = 0;
      while (!frontier.empty()) {
        levels.push_back(frontier);
        std::vector<std::uint32_t> next;
        for (std::uint32_t u : frontier) {
          for (std::uint64_t idx = g.row_ptr[u]; idx < g.row_ptr[u + 1];
               ++idx) {
            const std::uint32_t w = g.col[idx];
            if (depth[w] == kUnvisited) {
              depth[w] = d + 1;
              next.push_back(w);
            }
          }
        }
        frontier = std::move(next);
        // GAPBS builds the next frontier in roughly ascending vertex order.
        std::sort(frontier.begin(), frontier.end());
        ++d;
      }
    }
    const std::uint64_t bottom_up_threshold = v / 32;

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      for (;;) {
        for (std::uint32_t d = 0; d + 1 < levels.size(); ++d) {
          if (levels[d + 1].size() >= bottom_up_threshold) {
            // Bottom-up step: scan the whole vertex range sequentially,
            // looking for unvisited vertices with a parent in level d.
            const Range slice = core_partition(v, core, cfg.num_cores);
            for (std::uint64_t u = slice.begin; u < slice.end; ++u) {
              rec.load(visited + u, 1);  // sequential visited scan
              if (depth[u] <= d) continue;
              rec.load(row_ptr + u * 8);
              const std::uint64_t deg = g.row_ptr[u + 1] - g.row_ptr[u];
              // Scan neighbors until a level-d parent is found (bounded
              // for vertices that stay unvisited this step).
              const std::uint64_t limit =
                  depth[u] == d + 1 ? deg : std::min<std::uint64_t>(deg, 4);
              for (std::uint64_t k = 0; k < limit; ++k) {
                const std::uint32_t w = g.col[g.row_ptr[u] + k];
                rec.load(col + (g.row_ptr[u] + k) * 4, 4);
                rec.load(visited + w, 1);  // scattered parent probe
                rec.compute(1);
                if (depth[u] == d + 1 && depth[w] == d) {
                  rec.store(parent + u * 8);   // sequential parent store
                  rec.store(visited + u, 1);
                  break;
                }
              }
            }
          } else {
            // Top-down step over the (small) frontier.
            const auto& level = levels[d];
            const Range slice =
                core_partition(level.size(), core, cfg.num_cores);
            for (std::uint64_t f = slice.begin; f < slice.end; ++f) {
              const std::uint32_t u = level[f];
              rec.load(frontier_buf + f * 4, 4);
              rec.load(row_ptr + static_cast<Addr>(u) * 8);
              for (std::uint64_t idx = g.row_ptr[u]; idx < g.row_ptr[u + 1];
                   ++idx) {
                const std::uint32_t w = g.col[idx];
                rec.load(col + idx * 4, 4);
                rec.load(visited + w, 1);  // scattered probe
                rec.compute(2);
                if (depth[w] == d + 1) {
                  rec.store(visited + w, 1);
                  rec.store(parent + static_cast<Addr>(w) * 8);
                }
              }
            }
          }
        }
      }
    });
  }
};

/// SSCA#2 kernels 2 and 3: classify-large-edges (sequential edge scan with
/// scattered endpoint reads) and subgraph extraction (bounded-depth
/// expansion from random seeds). R-MAT communities give the modest spatial
/// locality the paper measures (~36% coalescing efficiency).
class Sscav2Workload final : public Workload {
 public:
  std::string_view name() const override { return "sscav2"; }
  std::string_view description() const override {
    return "SSCA#2 K2 edge classification + K3 subgraph extraction";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t scale_log2 = scaled(18, cfg.scale, 12);
    const std::uint64_t v = std::uint64_t{1} << scale_log2;
    const std::uint64_t e = v * 8;
    const CsrGraph g = make_rmat_graph(scale_log2, e, cfg.seed ^ 0x55CAULL);

    VirtualArena arena;
    const Addr row_ptr = arena.alloc((v + 1) * 8);
    const Addr col = arena.alloc(e * 4);
    const Addr weight = arena.alloc(e * 4);
    const Addr vprop = arena.alloc(v * 8);
    const Addr marks = arena.alloc(v);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      Rng rng(cfg.seed ^ (0x2CAULL << 20) ^ core);
      const Range edges = core_partition(e, core, cfg.num_cores);
      for (;;) {
        // K2: scan the edge list, reading endpoint properties.
        for (std::uint64_t i = edges.begin; i < edges.end; ++i) {
          rec.load(col + i * 4, 4);
          rec.load(weight + i * 4, 4);
          rec.load(vprop + static_cast<Addr>(g.col[i]) * 8);
          rec.compute(2);
        }
        // K3: extract depth-2 subgraphs around random seeds.
        for (int s = 0; s < 64; ++s) {
          const std::uint32_t seed_v =
              static_cast<std::uint32_t>(rng.below(v));
          rec.load(row_ptr + static_cast<Addr>(seed_v) * 8);
          const std::uint64_t deg_cap = 16;
          std::uint64_t visited_count = 0;
          for (std::uint64_t idx = g.row_ptr[seed_v];
               idx < g.row_ptr[seed_v + 1] && visited_count < deg_cap;
               ++idx, ++visited_count) {
            const std::uint32_t w = g.col[idx];
            rec.load(col + idx * 4, 4);
            rec.store(marks + w, 1);
            rec.load(row_ptr + static_cast<Addr>(w) * 8);
            for (std::uint64_t j = g.row_ptr[w];
                 j < std::min<std::uint64_t>(g.row_ptr[w + 1],
                                             g.row_ptr[w] + 4);
                 ++j) {
              rec.load(col + j * 4, 4);
              rec.load(vprop + static_cast<Addr>(g.col[j]) * 8);
              rec.compute(1);
            }
          }
        }
      }
    });
  }
};

}  // namespace

const Workload* bfs() {
  static const BfsWorkload w;
  return &w;
}
const Workload* sscav2() {
  static const Sscav2Workload w;
  return &w;
}

}  // namespace pacsim::suites
