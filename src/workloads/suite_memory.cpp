// Memory benchmarks: STREAM and Gather/Scatter.
#include "workloads/kernel_support.hpp"
#include "workloads/suites.hpp"

namespace pacsim::suites {
namespace {

/// McCalpin STREAM. The three working arrays are sized to (mostly) fit the
/// 8 MB LLC, matching the paper's observation that for STREAM "the majority
/// of memory accesses are sequential and satisfied by the multilevel cache":
/// only the cold pass and capacity evictions reach the coalescer, and those
/// misses are perfectly sequential.
class StreamWorkload final : public Workload {
 public:
  std::string_view name() const override { return "stream"; }
  std::string_view description() const override {
    return "STREAM copy/scale/add/triad over LLC-resident arrays";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t n = scaled(48 * 1024, cfg.scale, 4096);  // doubles
    VirtualArena arena;
    const Addr a = arena.alloc(n * 8);
    const Addr b = arena.alloc(n * 8);
    const Addr c = arena.alloc(n * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      const Range r = core_partition(n, core, cfg.num_cores);
      for (;;) {
        for (std::uint64_t i = r.begin; i < r.end; ++i) {  // copy: c = a
          rec.load(a + i * 8);
          rec.store(c + i * 8);
          rec.compute(1);
        }
        for (std::uint64_t i = r.begin; i < r.end; ++i) {  // scale: b = s*c
          rec.load(c + i * 8);
          rec.store(b + i * 8);
          rec.compute(2);
        }
        for (std::uint64_t i = r.begin; i < r.end; ++i) {  // add: c = a+b
          rec.load(a + i * 8);
          rec.load(b + i * 8);
          rec.store(c + i * 8);
          rec.compute(2);
        }
        for (std::uint64_t i = r.begin; i < r.end; ++i) {  // triad: a = b+s*c
          rec.load(b + i * 8);
          rec.load(c + i * 8);
          rec.store(a + i * 8);
          rec.compute(2);
        }
      }
    });
  }
};

/// Gather/Scatter with page-clustered indices: a random page of the table
/// is selected, then a burst of elements inside it is gathered. This is the
/// locality class of the TTU GS suite, and the in-page bursts are exactly
/// what a paged coalescer exploits (>70% efficiency in paper Fig. 6a).
class GatherScatterWorkload final : public Workload {
 public:
  std::string_view name() const override { return "gs"; }
  std::string_view description() const override {
    return "gather/scatter with page-clustered index bursts";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t table_elems =
        scaled(8ULL * 1024 * 1024, cfg.scale, 1 << 16);  // 64 MB of doubles
    const std::uint64_t burst = 48;  ///< contiguous elements per gather
    VirtualArena arena;
    const Addr table = arena.alloc(table_elems * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      Rng rng(cfg.seed * 0x9E37 + core);
      const std::uint64_t pages = table_elems * 8 / kPageSize;
      // Separate per-core index and output arrays (as MPI ranks would own).
      VirtualArena local(0x7000'0000ULL + core * 0x0800'0000ULL);
      const std::uint64_t out_elems = 1 << 18;
      const Addr idx = local.alloc(out_elems * 8);
      const Addr out = local.alloc(out_elems * 8);
      for (;;) {
        Addr gather_base = table;
        for (std::uint64_t i = 0; i < out_elems; ++i) {
          if (i % burst == 0) {
            // New contiguous vector segment at a random in-page offset of a
            // random page (unit-stride gather bursts, as in the GS suite).
            const std::uint64_t page = rng.below(pages);
            const std::uint64_t slot = rng.below(kPageSize / 8 - burst);
            gather_base = table + page * kPageSize + slot * 8;
          }
          rec.load(idx + i * 8);  // sequential index stream
          rec.load(gather_base + (i % burst) * 8);  // unit-stride gather
          rec.store(out + i * 8);  // sequential scatter target
          rec.compute(2);
        }
      }
    });
  }
};

}  // namespace

const Workload* stream() {
  static const StreamWorkload w;
  return &w;
}

const Workload* gs() {
  static const GatherScatterWorkload w;
  return &w;
}

}  // namespace pacsim::suites
