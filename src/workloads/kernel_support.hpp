// Shared helpers for workload kernels.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/trace.hpp"
#include "core/trace_recorder.hpp"
#include "workloads/workload.hpp"

namespace pacsim {

/// Bump allocator over the workload's virtual address space.
class VirtualArena {
 public:
  explicit VirtualArena(Addr base = 0x1000'0000ULL) : cursor_(base) {}

  /// Allocate `bytes`, aligned to `align` (pages by default so that array
  /// bases coincide with page boundaries, as malloc'd big arrays do).
  Addr alloc(std::uint64_t bytes, Addr align = kPageSize) {
    cursor_ = (cursor_ + align - 1) & ~(align - 1);
    const Addr base = cursor_;
    cursor_ += bytes;
    return base;
  }

  [[nodiscard]] Addr cursor() const { return cursor_; }

 private:
  Addr cursor_;
};

/// Run `kernel(rec, core)` for every core, honouring the op budget.
/// The kernel loops until TraceFull is thrown or it returns on its own.
template <typename Kernel>
std::vector<Trace> record_per_core(const WorkloadConfig& cfg, Kernel&& kernel) {
  std::vector<Trace> traces(cfg.num_cores);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    TraceRecorder rec(&traces[core], cfg.max_ops_per_core);
    rec.set_compute_scale(cfg.compute_scale);
    try {
      kernel(rec, core);
    } catch (const TraceRecorder::TraceFull&) {
      // Budget reached: the trace is complete as recorded.
    }
  }
  return traces;
}

/// Contiguous [begin, end) range of element indices owned by `core`.
struct Range {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};

inline Range core_partition(std::uint64_t n, std::uint32_t core,
                            std::uint32_t num_cores) {
  const std::uint64_t chunk = n / num_cores;
  const std::uint64_t rem = n % num_cores;
  const std::uint64_t begin = core * chunk + std::min<std::uint64_t>(core, rem);
  const std::uint64_t extra = core < rem ? 1 : 0;
  return Range{begin, begin + chunk + extra};
}

/// Scale a size, clamped to a minimum of `min_value`.
inline std::uint64_t scaled(std::uint64_t v, double scale,
                            std::uint64_t min_value = 1) {
  const auto s = static_cast<std::uint64_t>(static_cast<double>(v) * scale);
  return s < min_value ? min_value : s;
}

}  // namespace pacsim
