// Workload interface: each of the paper's 14 test suites is represented by
// a mini-kernel that executes its core loop over synthetic data and records
// the resulting per-core memory traces (see DESIGN.md substitution notes).
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "core/trace.hpp"
#include "core/trace_store.hpp"

namespace pacsim {

struct WorkloadConfig {
  std::uint32_t num_cores = 8;
  std::uint64_t seed = 42;
  std::size_t max_ops_per_core = 300'000;
  double scale = 1.0;  ///< dataset scale factor (1.0 = default sizes)
  /// Multiplier on every kernel compute() gap: models the non-memory
  /// instructions surrounding each recorded access (issue-width-1 in-order
  /// cores execute several ALU/branch ops per load/store).
  double compute_scale = 4.0;
};

class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual std::string_view description() const = 0;

  /// Produce one trace per core; deterministic in cfg.seed.
  [[nodiscard]] virtual std::vector<Trace> generate(
      const WorkloadConfig& cfg) const = 0;
};

/// Canonical 64-bit hash over every generation-relevant WorkloadConfig
/// field. Floating-point fields hash by bit pattern with -0.0 normalized to
/// +0.0, so configs that generate identical traces share a hash. Seeded
/// with a format tag: adding a WorkloadConfig field must bump the tag or
/// stale warm-tier files would be served for the wrong configuration.
[[nodiscard]] std::uint64_t workload_config_hash(const WorkloadConfig& cfg);

/// Content address of `suite.generate(cfg)` for TraceStore lookups.
[[nodiscard]] TraceKey trace_key(const Workload& suite,
                                 const WorkloadConfig& cfg);

/// Produce the suite's traces through `store` when one is given (memoized,
/// warm-tier aware) or freshly when `store` is null. Either way the result
/// reports where the traces came from and the wall seconds spent producing
/// them, and the returned set is byte-identical to suite.generate(cfg).
[[nodiscard]] TraceStore::Acquired acquire_traces(TraceStore* store,
                                                  const Workload& suite,
                                                  const WorkloadConfig& cfg);

/// All 14 suites in the paper's evaluation order.
const std::vector<const Workload*>& all_workloads();
/// Look a suite up by name (e.g. "bfs"); nullptr when unknown.
const Workload* find_workload(std::string_view name);
std::vector<std::string_view> workload_names();

}  // namespace pacsim
