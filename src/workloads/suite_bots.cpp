// BOTS-style task suites and remaining NAS kernels:
// SparseLU, Sort, FFT, EP, IS.
#include "workloads/kernel_support.hpp"
#include "workloads/suites.hpp"

namespace pacsim::suites {
namespace {

/// BOTS SparseLU: LU factorization over a block-sparse matrix whose
/// allocated blocks are dense 32x32 tiles (8 KB = 2 pages). All inner-loop
/// work streams tile memory, producing the dense in-page adjacency behind
/// SparseLU's 22% runtime gain in paper Fig. 15.
class SparseLuWorkload final : public Workload {
 public:
  std::string_view name() const override { return "sparselu"; }
  std::string_view description() const override {
    return "BOTS SparseLU over dense 32x32 blocks";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t nb = scaled(40, cfg.scale, 8);  // blocks per side
    const std::uint64_t bs = 32;                        // block dimension
    const std::uint64_t block_bytes = bs * bs * 8;

    // Deterministic sparsity pattern (~35% of blocks allocated, plus the
    // full diagonal), identical for every core.
    std::vector<std::uint8_t> present(nb * nb, 0);
    Rng pattern_rng(cfg.seed ^ 0x51ULL);
    for (std::uint64_t i = 0; i < nb; ++i) {
      for (std::uint64_t j = 0; j < nb; ++j) {
        present[i * nb + j] =
            (i == j || pattern_rng.uniform() < 0.35) ? 1 : 0;
      }
    }
    VirtualArena arena;
    std::vector<Addr> block(nb * nb, 0);
    for (std::uint64_t i = 0; i < nb * nb; ++i) {
      if (present[i]) block[i] = arena.alloc(block_bytes);
    }

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      // Dense block kernels (addresses only; the dataflow is the BOTS one).
      auto lu0 = [&](Addr b) {
        for (std::uint64_t k = 0; k < bs; ++k) {
          for (std::uint64_t i = k + 1; i < bs; ++i) {
            rec.load(b + (i * bs + k) * 8);
            rec.store(b + (i * bs + k) * 8);
            rec.compute(2);
          }
        }
      };
      auto bmod = [&](Addr row, Addr colb, Addr inner) {
        for (std::uint64_t i = 0; i < bs; ++i) {
          for (std::uint64_t k = 0; k < bs; k += 4) {
            rec.load(row + (i * bs + k) * 8);
            rec.load(colb + (k * bs) * 8);
            rec.load(inner + (i * bs + k) * 8);
            rec.store(inner + (i * bs + k) * 8);
            rec.compute(8);
          }
        }
      };
      for (;;) {
        for (std::uint64_t k = 0; k < nb; ++k) {
          if (core == k % cfg.num_cores) lu0(block[k * nb + k]);
          // Trailing block updates owned round-robin by (i+j).
          for (std::uint64_t i = k + 1; i < nb; ++i) {
            if (!present[i * nb + k]) continue;
            for (std::uint64_t j = k + 1; j < nb; ++j) {
              if (!present[k * nb + j] || !present[i * nb + j]) continue;
              if ((i + j) % cfg.num_cores != core) continue;
              bmod(block[i * nb + k], block[k * nb + j], block[i * nb + j]);
            }
          }
        }
      }
    });
  }
};

/// Parallel bottom-up mergesort over a 32 MB key array: every pass streams
/// two sorted runs and one output run - three perfectly sequential access
/// streams per core.
class SortWorkload final : public Workload {
 public:
  std::string_view name() const override { return "sort"; }
  std::string_view description() const override {
    return "bottom-up parallel mergesort (3 sequential streams)";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t n = scaled(4ULL << 20, cfg.scale, 1 << 14);  // keys
    VirtualArena arena;
    const Addr src = arena.alloc(n * 8);
    const Addr dst = arena.alloc(n * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      Rng rng(cfg.seed ^ 0x50ULL ^ core);
      for (;;) {
        Addr from = src, to = dst;
        for (std::uint64_t run = 1 << 10; run < n; run *= 2) {
          const std::uint64_t pairs = n / (2 * run);
          for (std::uint64_t p = core; p < pairs; p += cfg.num_cores) {
            std::uint64_t a = p * 2 * run;
            std::uint64_t b = a + run;
            const std::uint64_t a_end = b, b_end = b + run;
            std::uint64_t out = a;
            while (a < a_end && b < b_end) {
              rec.load(from + a * 8);
              rec.load(from + b * 8);
              rec.store(to + out * 8);
              rec.compute(3);
              // Branch decided pseudo-randomly (keys are synthetic).
              if (rng.next() & 1) {
                ++a;
              } else {
                ++b;
              }
              ++out;
            }
            for (; a < a_end; ++a, ++out) {
              rec.load(from + a * 8);
              rec.store(to + out * 8);
            }
            for (; b < b_end; ++b, ++out) {
              rec.load(from + b * 8);
              rec.store(to + out * 8);
            }
          }
          std::swap(from, to);
        }
      }
    });
  }
};

/// Iterative radix-2 FFT over 2^19 complex doubles: each pass runs two
/// synchronized sequential streams offset by the butterfly span.
class FftWorkload final : public Workload {
 public:
  std::string_view name() const override { return "fft"; }
  std::string_view description() const override {
    return "iterative radix-2 FFT butterflies";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t n = scaled(1ULL << 19, cfg.scale, 1 << 12);
    VirtualArena arena;
    const Addr re = arena.alloc(n * 8);
    const Addr im = arena.alloc(n * 8);
    const Addr tw = arena.alloc(n * 8);  // twiddle table

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      // One butterfly: two synchronized sequential streams offset by `span`.
      auto butterfly = [&](std::uint64_t i, std::uint64_t j, std::uint64_t k,
                           std::uint64_t span) {
        if (span > 4096) {
          rec.load(tw + k * 8);  // large per-stage table: streamed
        } else {
          rec.compute(2);  // small stages compute twiddles by recurrence
        }
        rec.load(re + i * 8);
        rec.load(im + i * 8);
        rec.load(re + j * 8);
        rec.load(im + j * 8);
        rec.store(re + i * 8);
        rec.store(im + i * 8);
        rec.store(re + j * 8);
        rec.store(im + j * 8);
        rec.compute(6);
      };
      for (;;) {
        for (std::uint64_t span = 1; span < n; span *= 2) {
          const std::uint64_t groups = n / (2 * span);
          if (groups >= cfg.num_cores) {
            // Many small groups: contiguous blocks of groups per core, so
            // each core works on a disjoint slice of the arrays (the
            // cache-friendly scheduling every parallel FFT uses).
            const Range gr = core_partition(groups, core, cfg.num_cores);
            for (std::uint64_t grp = gr.begin; grp < gr.end; ++grp) {
              const std::uint64_t base = grp * 2 * span;
              for (std::uint64_t k = 0; k < span; ++k) {
                butterfly(base + k, base + k + span, k, span);
              }
            }
          } else {
            // Few large groups: cores split each group's k-range, keeping
            // their data (and twiddle) streams disjoint.
            for (std::uint64_t grp = 0; grp < groups; ++grp) {
              const std::uint64_t base = grp * 2 * span;
              const Range ks = core_partition(span, core, cfg.num_cores);
              for (std::uint64_t k = ks.begin; k < ks.end; ++k) {
                butterfly(base + k, base + k + span, k, span);
              }
            }
          }
        }
      }
    });
  }
};

/// NAS EP: dominated by random-number computation; memory traffic is a
/// small sequential result log plus a tiny (always cached) histogram. The
/// few LLC misses it does produce are perfectly sequential.
class NasEpWorkload final : public Workload {
 public:
  std::string_view name() const override { return "ep"; }
  std::string_view description() const override {
    return "NAS EP: compute-bound Gaussian pair generation";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t pairs = scaled(1ULL << 22, cfg.scale, 1 << 12);
    VirtualArena arena;
    const Addr results = arena.alloc(pairs * 16);  // (x, y) per pair
    const Addr hist = arena.alloc(10 * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      const Range r = core_partition(pairs, core, cfg.num_cores);
      Rng rng(cfg.seed ^ 0xE9ULL ^ core);
      const std::uint64_t batch = 512;
      for (;;) {
        // EP generates batches of Gaussian pairs in registers (long pure
        // compute), then writes the accepted pairs out in one sequential
        // burst - its few memory requests are dense and perfectly adjacent.
        for (std::uint64_t i = r.begin; i < r.end; i += batch) {
          const std::uint64_t count = std::min(batch, r.end - i);
          rec.compute(static_cast<std::uint32_t>(24 * count));
          for (std::uint64_t p = 0; p < count; ++p) {
            rec.store(results + (i + p) * 16);
            rec.store(results + (i + p) * 16 + 8);
          }
          rec.load(hist + rng.below(10) * 8);
          rec.store(hist + rng.below(10) * 8);
        }
      }
    });
  }
};

/// NAS IS: counting sort of 32-bit keys. The counting pass streams keys and
/// scatters increments over a bucket table; the permutation pass scatters
/// full records across the output array.
class NasIsWorkload final : public Workload {
 public:
  std::string_view name() const override { return "is"; }
  std::string_view description() const override {
    return "NAS IS: integer counting sort";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t n = scaled(4ULL << 20, cfg.scale, 1 << 14);
    const std::uint64_t buckets = 1 << 15;
    VirtualArena arena;
    const Addr keys = arena.alloc(n * 4);
    const Addr count = arena.alloc(buckets * 4);
    const Addr out = arena.alloc(n * 4);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      Rng rng(cfg.seed ^ 0x15ULL ^ core);
      const Range r = core_partition(n, core, cfg.num_cores);
      for (;;) {
        // Counting pass.
        for (std::uint64_t i = r.begin; i < r.end; ++i) {
          rec.load(keys + i * 4, 4);
          const std::uint64_t b = rng.below(buckets);
          rec.load(count + b * 4, 4);
          rec.store(count + b * 4, 4);
          rec.compute(1);
        }
        // Permutation pass: scattered stores over the output.
        for (std::uint64_t i = r.begin; i < r.end; ++i) {
          rec.load(keys + i * 4, 4);
          const std::uint64_t pos = rng.below(n);
          rec.store(out + pos * 4, 4);
          rec.compute(1);
        }
      }
    });
  }
};

}  // namespace

const Workload* sparselu() {
  static const SparseLuWorkload w;
  return &w;
}
const Workload* sort() {
  static const SortWorkload w;
  return &w;
}
const Workload* fft() {
  static const FftWorkload w;
  return &w;
}
const Workload* nas_ep() {
  static const NasEpWorkload w;
  return &w;
}
const Workload* nas_is() {
  static const NasIsWorkload w;
  return &w;
}

}  // namespace pacsim::suites
