// Numerical solver suites: HPCG, NAS CG, NAS MG, NAS SP, and blocked LU.
#include "workloads/kernel_support.hpp"
#include "workloads/suites.hpp"

namespace pacsim::suites {
namespace {

/// HPCG-style conjugate gradient on a 27-point 3D stencil matrix in CSR.
/// The value/column streams are long sequential reads; the x[col] gathers
/// are stencil-local. This mixed locality yields the mid-range coalescing
/// efficiency the paper reports for HPCG.
class HpcgWorkload final : public Workload {
 public:
  std::string_view name() const override { return "hpcg"; }
  std::string_view description() const override {
    return "CG on a 27-point stencil (CSR SpMV + vector ops)";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t dim = scaled(32, cfg.scale, 8);  // dim^3 grid
    const std::uint64_t n = dim * dim * dim;
    VirtualArena arena;
    const Addr val = arena.alloc(n * 27 * 8);   // matrix values
    const Addr col = arena.alloc(n * 27 * 4);   // column indices
    const Addr x = arena.alloc(n * 8);
    const Addr y = arena.alloc(n * 8);
    const Addr p = arena.alloc(n * 8);
    const Addr r = arena.alloc(n * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      const Range rows = core_partition(n, core, cfg.num_cores);
      for (;;) {
        // SpMV: y = A * p.
        for (std::uint64_t i = rows.begin; i < rows.end; ++i) {
          const std::uint64_t iz = i / (dim * dim);
          const std::uint64_t iy = (i / dim) % dim;
          const std::uint64_t ix = i % dim;
          std::uint64_t nnz = 0;
          for (int dz = -1; dz <= 1; ++dz) {
            for (int dy = -1; dy <= 1; ++dy) {
              for (int dx = -1; dx <= 1; ++dx) {
                const std::int64_t jz = static_cast<std::int64_t>(iz) + dz;
                const std::int64_t jy = static_cast<std::int64_t>(iy) + dy;
                const std::int64_t jx = static_cast<std::int64_t>(ix) + dx;
                if (jz < 0 || jy < 0 || jx < 0 ||
                    jz >= static_cast<std::int64_t>(dim) ||
                    jy >= static_cast<std::int64_t>(dim) ||
                    jx >= static_cast<std::int64_t>(dim)) {
                  continue;
                }
                const std::uint64_t j =
                    (static_cast<std::uint64_t>(jz) * dim +
                     static_cast<std::uint64_t>(jy)) *
                        dim +
                    static_cast<std::uint64_t>(jx);
                rec.load(val + (i * 27 + nnz) * 8);
                rec.load(col + (i * 27 + nnz) * 4, 4);
                rec.load(x + j * 8);  // stencil-local gather
                rec.compute(2);
                ++nnz;
              }
            }
          }
          rec.store(y + i * 8);
        }
        // Vector updates: r = r - alpha*y ; p = r + beta*p (fused sweep).
        for (std::uint64_t i = rows.begin; i < rows.end; ++i) {
          rec.load(r + i * 8);
          rec.load(y + i * 8);
          rec.store(r + i * 8);
          rec.load(p + i * 8);
          rec.store(p + i * 8);
          rec.compute(4);
        }
      }
    });
  }
};

/// NAS CG: sparse matrix with uniformly random column positions. Unlike
/// HPCG, the x[col] gathers have no spatial structure at all.
class NasCgWorkload final : public Workload {
 public:
  std::string_view name() const override { return "cg"; }
  std::string_view description() const override {
    return "NAS CG: SpMV with uniformly random sparsity";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t n = scaled(96 * 1024, cfg.scale, 4096);
    const std::uint64_t nnz_per_row = 16;
    VirtualArena arena;
    const Addr val = arena.alloc(n * nnz_per_row * 8);
    const Addr col = arena.alloc(n * nnz_per_row * 4);
    const Addr x = arena.alloc(n * 8);
    const Addr y = arena.alloc(n * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      Rng rng(cfg.seed ^ (0xC6ULL << 32) ^ core);
      const Range rows = core_partition(n, core, cfg.num_cores);
      for (;;) {
        for (std::uint64_t i = rows.begin; i < rows.end; ++i) {
          for (std::uint64_t k = 0; k < nnz_per_row; ++k) {
            const std::uint64_t j = rng.below(n);  // random column
            rec.load(val + (i * nnz_per_row + k) * 8);
            rec.load(col + (i * nnz_per_row + k) * 4, 4);
            rec.load(x + j * 8);
            rec.compute(2);
          }
          rec.store(y + i * 8);
        }
      }
    });
  }
};

/// NAS MG: V-cycle multigrid. Relaxation sweeps stream the fine grid in x
/// (dense sequential runs) while touching +-1 plane neighbours.
class NasMgWorkload final : public Workload {
 public:
  std::string_view name() const override { return "mg"; }
  std::string_view description() const override {
    return "NAS MG: 3D multigrid relaxation + restriction";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t dim = scaled(96, cfg.scale, 16);
    VirtualArena arena;
    const Addr u = arena.alloc(dim * dim * dim * 8);
    const Addr rgrid = arena.alloc(dim * dim * dim * 8);
    const Addr coarse = arena.alloc((dim / 2) * (dim / 2) * (dim / 2) * 8);

    auto at = [dim](Addr base, std::uint64_t z, std::uint64_t y,
                    std::uint64_t x) {
      return base + ((z * dim + y) * dim + x) * 8;
    };

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      const Range zs = core_partition(dim - 2, core, cfg.num_cores);
      for (;;) {
        // Red-black relaxation: x-sweeps with 7-point neighbourhood.
        for (std::uint64_t z = zs.begin + 1; z < zs.end + 1; ++z) {
          for (std::uint64_t y = 1; y + 1 < dim; ++y) {
            for (std::uint64_t x = 1; x + 1 < dim; ++x) {
              rec.load(at(u, z, y, x - 1));
              rec.load(at(u, z, y, x + 1));
              rec.load(at(u, z, y - 1, x));
              rec.load(at(u, z, y + 1, x));
              rec.load(at(u, z - 1, y, x));
              rec.load(at(u, z + 1, y, x));
              rec.load(at(rgrid, z, y, x));
              rec.store(at(u, z, y, x));
              rec.compute(4);
            }
          }
        }
        // Restriction to the coarse grid (strided reads, sequential writes).
        const std::uint64_t half = dim / 2;
        for (std::uint64_t z = zs.begin / 2; z < zs.end / 2; ++z) {
          for (std::uint64_t y = 0; y < half; ++y) {
            for (std::uint64_t x = 0; x < half; ++x) {
              rec.load(at(u, 2 * z, 2 * y, 2 * x));
              rec.load(at(u, 2 * z, 2 * y, 2 * x + 1));
              rec.load(at(u, 2 * z, 2 * y + 1, 2 * x));
              rec.load(at(u, 2 * z + 1, 2 * y, 2 * x));
              rec.store(coarse + ((z * half + y) * half + x) * 8);
              rec.compute(3);
            }
          }
        }
      }
    });
  }
};

/// NAS SP: scalar penta-diagonal solver. Forward/backward line sweeps over
/// several 5-variable cell arrays; the x-direction sweeps are long unit
/// strides over a working set far larger than the LLC, which is why SP
/// moves the most data of all suites (paper Fig. 10c).
class NasSpWorkload final : public Workload {
 public:
  std::string_view name() const override { return "sp"; }
  std::string_view description() const override {
    return "NAS SP: penta-diagonal sweeps over 5-variable cells";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t dim = scaled(64, cfg.scale, 12);
    const std::uint64_t vars = 5;
    const std::uint64_t cells = dim * dim * dim;
    VirtualArena arena;
    const Addr lhs = arena.alloc(cells * vars * 8);
    const Addr rhs = arena.alloc(cells * vars * 8);
    const Addr us = arena.alloc(cells * vars * 8);

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      const Range planes = core_partition(dim, core, cfg.num_cores);
      auto cell = [&](Addr base, std::uint64_t idx, std::uint64_t v) {
        return base + (idx * vars + v) * 8;
      };
      for (;;) {
        // x-sweep: unit stride through the cell arrays.
        for (std::uint64_t z = planes.begin; z < planes.end; ++z) {
          for (std::uint64_t y = 0; y < dim; ++y) {
            for (std::uint64_t x = 1; x < dim; ++x) {
              const std::uint64_t i = (z * dim + y) * dim + x;
              for (std::uint64_t v = 0; v < vars; ++v) {
                rec.load(cell(lhs, i - 1, v));
                rec.load(cell(rhs, i, v));
                rec.store(cell(rhs, i, v));
                rec.compute(4);
              }
              rec.load(cell(us, i, 0));
            }
          }
        }
        // y-sweep: stride dim*vars*8 bytes between dependent cells.
        for (std::uint64_t z = planes.begin; z < planes.end; ++z) {
          for (std::uint64_t x = 0; x < dim; ++x) {
            for (std::uint64_t y = 1; y < dim; ++y) {
              const std::uint64_t i = (z * dim + y) * dim + x;
              const std::uint64_t prev = (z * dim + (y - 1)) * dim + x;
              for (std::uint64_t v = 0; v < vars; ++v) {
                rec.load(cell(lhs, prev, v));
                rec.store(cell(rhs, i, v));
                rec.compute(4);
              }
            }
          }
        }
      }
    });
  }
};

/// Blocked dense LU factorization: panel updates and trailing-submatrix
/// GEMMs stream dense rows, giving the dense-adjacency profile of the
/// paper's LU suite (>70% coalescing efficiency).
class NasLuWorkload final : public Workload {
 public:
  std::string_view name() const override { return "lu"; }
  std::string_view description() const override {
    return "blocked dense LU factorization";
  }

  std::vector<Trace> generate(const WorkloadConfig& cfg) const override {
    const std::uint64_t n = scaled(1024, cfg.scale, 128);  // matrix order
    VirtualArena arena;
    const Addr a = arena.alloc(n * n * 8);
    const std::uint64_t bs = 32;  // block size

    return record_per_core(cfg, [&](TraceRecorder& rec, std::uint32_t core) {
      auto elem = [&](std::uint64_t i, std::uint64_t j) {
        return a + (i * n + j) * 8;
      };
      for (;;) {
        for (std::uint64_t k = 0; k < n; k += bs) {
          // Trailing update: rows are partitioned across cores; each core
          // streams its rows (unit stride in j).
          for (std::uint64_t i = k + bs + core; i < n; i += cfg.num_cores) {
            for (std::uint64_t kk = k; kk < k + bs && kk < n; ++kk) {
              rec.load(elem(i, kk));  // multiplier column
              for (std::uint64_t j = kk + 1; j < std::min(n, kk + 1 + bs);
                   ++j) {
                rec.load(elem(kk, j));
                rec.load(elem(i, j));
                rec.store(elem(i, j));
                rec.compute(2);
              }
            }
          }
        }
      }
    });
  }
};

}  // namespace

const Workload* hpcg() {
  static const HpcgWorkload w;
  return &w;
}
const Workload* nas_cg() {
  static const NasCgWorkload w;
  return &w;
}
const Workload* nas_mg() {
  static const NasMgWorkload w;
  return &w;
}
const Workload* nas_sp() {
  static const NasSpWorkload w;
  return &w;
}
const Workload* nas_lu() {
  static const NasLuWorkload w;
  return &w;
}

}  // namespace pacsim::suites
