// Internal: accessors for the singleton instance of each suite.
#pragma once

#include "workloads/workload.hpp"

namespace pacsim::suites {

// Memory benchmarks.
const Workload* stream();   ///< McCalpin STREAM (copy/scale/add/triad)
const Workload* gs();       ///< gather/scatter with clustered indices

// Solvers.
const Workload* hpcg();     ///< 27-point CG (HPCG-style)
const Workload* nas_cg();   ///< NAS CG: random sparse matrix
const Workload* nas_mg();   ///< NAS MG: 3D multigrid V-cycle
const Workload* nas_sp();   ///< NAS SP: penta-diagonal line sweeps
const Workload* nas_lu();   ///< blocked dense LU (NAS LU class)

// Graph analytics.
const Workload* bfs();      ///< GAPBS-style BFS on a uniform random graph
const Workload* sscav2();   ///< SSCA#2 kernels on an R-MAT graph

// BOTS / NAS kernels.
const Workload* sparselu(); ///< BOTS SparseLU over dense blocks
const Workload* sort();     ///< BOTS-style parallel mergesort
const Workload* fft();      ///< iterative radix-2 FFT
const Workload* nas_ep();   ///< NAS EP: compute-bound random pairs
const Workload* nas_is();   ///< NAS IS: integer bucket sort

}  // namespace pacsim::suites
