#include "workloads/workload.hpp"

#include "workloads/suites.hpp"

namespace pacsim {

const std::vector<const Workload*>& all_workloads() {
  static const std::vector<const Workload*> all = {
      suites::stream(), suites::gs(),       suites::hpcg(),
      suites::nas_cg(), suites::nas_mg(),   suites::nas_sp(),
      suites::nas_lu(), suites::nas_ep(),   suites::nas_is(),
      suites::bfs(),    suites::sscav2(),   suites::sparselu(),
      suites::sort(),   suites::fft(),
  };
  return all;
}

const Workload* find_workload(std::string_view name) {
  for (const Workload* w : all_workloads()) {
    if (w->name() == name) return w;
  }
  return nullptr;
}

std::vector<std::string_view> workload_names() {
  std::vector<std::string_view> names;
  for (const Workload* w : all_workloads()) names.push_back(w->name());
  return names;
}

}  // namespace pacsim
