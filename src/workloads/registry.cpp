#include "workloads/workload.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <string>

#include "workloads/suites.hpp"

namespace pacsim {
namespace {

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t value) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (value >> (byte * 8)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  void mix(double value) {
    // Normalize -0.0 so bit-identical generators share a hash; any NaN
    // would be a configuration bug, but canonicalize it anyway.
    if (value == 0.0) value = 0.0;
    if (std::isnan(value)) value = std::numeric_limits<double>::quiet_NaN();
    mix(std::bit_cast<std::uint64_t>(value));
  }
  void mix(const char* tag) {
    for (const char* c = tag; *c != '\0'; ++c) {
      h ^= static_cast<std::uint8_t>(*c);
      h *= 1099511628211ULL;
    }
  }
};

}  // namespace

std::uint64_t workload_config_hash(const WorkloadConfig& cfg) {
  Fnv1a fnv;
  fnv.mix("pacsim-wcfg-v1");  // format tag: bump when fields change
  fnv.mix(static_cast<std::uint64_t>(cfg.num_cores));
  fnv.mix(cfg.seed);
  fnv.mix(static_cast<std::uint64_t>(cfg.max_ops_per_core));
  fnv.mix(cfg.scale);
  fnv.mix(cfg.compute_scale);
  return fnv.h;
}

TraceKey trace_key(const Workload& suite, const WorkloadConfig& cfg) {
  return TraceKey{std::string(suite.name()), workload_config_hash(cfg)};
}

TraceStore::Acquired acquire_traces(TraceStore* store, const Workload& suite,
                                    const WorkloadConfig& cfg) {
  if (store != nullptr) {
    return store->get(trace_key(suite, cfg),
                      [&suite, &cfg] { return suite.generate(cfg); });
  }
  const auto start = std::chrono::steady_clock::now();
  auto traces = std::make_shared<const TraceSet>(suite.generate(cfg));
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return TraceStore::Acquired{std::move(traces), seconds,
                              TraceStore::Source::kGenerated};
}

const std::vector<const Workload*>& all_workloads() {
  static const std::vector<const Workload*> all = {
      suites::stream(), suites::gs(),       suites::hpcg(),
      suites::nas_cg(), suites::nas_mg(),   suites::nas_sp(),
      suites::nas_lu(), suites::nas_ep(),   suites::nas_is(),
      suites::bfs(),    suites::sscav2(),   suites::sparselu(),
      suites::sort(),   suites::fft(),
  };
  return all;
}

const Workload* find_workload(std::string_view name) {
  for (const Workload* w : all_workloads()) {
    if (w->name() == name) return w;
  }
  return nullptr;
}

std::vector<std::string_view> workload_names() {
  std::vector<std::string_view> names;
  for (const Workload* w : all_workloads()) names.push_back(w->name());
  return names;
}

}  // namespace pacsim
