#include "baseline/mshr_dmc.hpp"

#include <cassert>
#include <sstream>
#include <utility>

#include "core/verifier.hpp"
#include "mem/packet.hpp"

namespace pacsim {

MshrDmc::MshrDmc(const MshrDmcConfig& cfg, DevicePort* device)
    : cfg_(cfg), device_(device) {
  entries_.resize(cfg_.num_mshrs);
}

bool MshrDmc::dispatch_entry(Entry& entry, Cycle now) {
  if (!device_->can_accept()) return false;
  DeviceRequest req;
  req.id = entry.device_request_id;
  req.base = entry.line;
  req.bytes = entry.atomic ? kFlitBytes : cfg_.line_bytes;
  req.store = entry.store;
  req.atomic = entry.atomic;
  req.created_at = now;
  req.raw_ids = entry.raw_ids;
  device_->submit(std::move(req), now);
  entry.dispatched = true;
  ++stats_.issued_requests;
  const std::uint32_t bytes = entry.atomic ? kFlitBytes : cfg_.line_bytes;
  stats_.issued_payload_bytes += bytes;
  stats_.request_size_bytes.add(bytes);
  return true;
}

bool MshrDmc::accept(const MemRequest& request, Cycle now) {
  if (request.op == MemOp::kFence) {
    // Requests dispatch as soon as they are buffered, so ordering at this
    // level is already preserved; the fence is a no-op for this baseline.
    ++stats_.fences;
    if (verifier_ != nullptr) verifier_->on_fence_passthrough(request.id, now);
    return true;
  }

  const Addr line = request.paddr & ~Addr{cfg_.line_bytes - 1};
  const bool store = request.is_store();
  const bool atomic = request.op == MemOp::kAtomic;

  // Comparator work of the associative search; committed only when the
  // request is actually accepted (stall-retries re-present the same
  // request and do not count as new comparison passes).
  const std::uint64_t scan_comparisons = occupied_;

  if (!atomic) {
    // Compare against every occupied MSHR (associative search).
    for (auto& entry : entries_) {
      if (!entry.valid) continue;
      if (entry.atomic || entry.store || store) continue;  // loads only
      if (entry.line == line) {
        entry.raw_ids.push_back(request.id);
        stats_.comparisons += scan_comparisons;
        ++stats_.raw_requests;
        ++stats_.coalesced_away;
        if (verifier_ != nullptr) verifier_->on_merged(request.id, now);
        return true;
      }
    }
  }

  if (occupied_ == entries_.size()) return false;  // cache blocks

  for (auto& entry : entries_) {
    if (entry.valid) continue;
    entry.valid = true;
    entry.line = atomic ? (request.paddr & ~Addr{kFlitBytes - 1}) : line;
    entry.store = store;
    entry.atomic = atomic;
    entry.dispatched = false;
    entry.device_request_id = next_device_id_++;
    entry.raw_ids.assign(1, request.id);
    ++occupied_;
    stats_.comparisons += scan_comparisons;
    ++stats_.raw_requests;
    if (atomic) ++stats_.atomics;
    // Immediate dispatch (section 2.2.2): "whenever a pending miss is merged
    // into a new MSHR entry, a new memory request is immediately dispatched".
    dispatch_entry(entry, now);
    return true;
  }
  assert(false);
  return false;
}

void MshrDmc::tick(Cycle now) {
  // Retry entries the device refused at allocation time.
  for (auto& entry : entries_) {
    if (entry.valid && !entry.dispatched) {
      if (!dispatch_entry(entry, now)) break;
    }
  }
}

void MshrDmc::complete(const DeviceResponse& response, Cycle now) {
  (void)now;
  for (auto& entry : entries_) {
    if (!entry.valid || entry.device_request_id != response.request_id) {
      continue;
    }
    satisfied_.insert(satisfied_.end(), entry.raw_ids.begin(),
                      entry.raw_ids.end());
    entry.valid = false;
    entry.raw_ids.clear();
    --occupied_;
    return;
  }
}

void MshrDmc::drain_satisfied_into(std::vector<std::uint64_t>& out) {
  out.clear();
  std::swap(out, satisfied_);
}

Cycle MshrDmc::next_event_cycle(Cycle now) const {
  for (const auto& entry : entries_) {
    if (entry.valid && !entry.dispatched) {
      // Retries fire every tick, but they only take effect while the device
      // accepts; a saturated device unblocks at its next completion, which
      // the device's own event bound covers.
      return device_->can_accept() ? now : kNeverCycle;
    }
  }
  return kNeverCycle;
}

bool MshrDmc::idle() const { return occupied_ == 0; }

std::string MshrDmc::debug_json() const {
  std::size_t undispatched = 0;
  for (const auto& entry : entries_) {
    if (entry.valid && !entry.dispatched) ++undispatched;
  }
  std::ostringstream out;
  out << "{\"mshrs_occupied\": " << occupied_
      << ", \"undispatched\": " << undispatched << "}";
  return out.str();
}

}  // namespace pacsim
