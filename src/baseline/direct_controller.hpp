// The no-coalescing baseline: a standard HMC controller that forwards every
// raw cache-line request unmodified (paper section 5.3.6 uses this as the
// performance baseline).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "hmc/device_port.hpp"
#include "pac/coalescer.hpp"

namespace pacsim {

struct DirectControllerConfig {
  std::uint32_t max_outstanding = 16;  ///< matched to the MSHR count
  std::uint32_t line_bytes = 64;
};

class DirectController final : public Coalescer {
 public:
  DirectController(const DirectControllerConfig& cfg, DevicePort* device);

  bool accept(const MemRequest& request, Cycle now) override;
  void tick(Cycle now) override;
  void complete(const DeviceResponse& response, Cycle now) override;
  void drain_satisfied_into(std::vector<std::uint64_t>& out) override;
  /// tick() is a no-op: dispatch happens at accept() and completions arrive
  /// through complete(), so there is never a scheduled wake-up.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
    (void)now;
    return kNeverCycle;
  }
  [[nodiscard]] bool idle() const override { return outstanding_.empty(); }
  [[nodiscard]] const CoalescerStats& stats() const override { return stats_; }
  [[nodiscard]] std::string debug_json() const override;

  void checkpoint_save(BinWriter& w) const override {
    w.tag("DRCT");
    stats_.checkpoint_save(w);
    w.u64(next_device_id_);
  }
  void checkpoint_load(BinReader& r) override {
    r.tag("DRCT");
    stats_.checkpoint_load(r);
    next_device_id_ = r.u64();
  }

 private:
  DirectControllerConfig cfg_;
  DevicePort* device_;
  CoalescerStats stats_;
  std::unordered_map<std::uint64_t, std::uint64_t> outstanding_;  ///< dev -> raw
  std::uint64_t next_device_id_ = 1;
  std::vector<std::uint64_t> satisfied_;
};

}  // namespace pacsim
