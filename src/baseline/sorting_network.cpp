#include "baseline/sorting_network.hpp"

#include <algorithm>
#include <cassert>

#include "common/bitops.hpp"

namespace pacsim {

SortingNetwork SortingNetwork::bitonic(std::uint32_t n) {
  assert(is_pow2(n));
  SortingNetwork net(n);
  // Classic iterative bitonic construction: for every (k, j) phase, wire i
  // pairs with i^j; direction follows bit k of i.
  for (std::uint32_t k = 2; k <= n; k <<= 1) {
    for (std::uint32_t j = k >> 1; j > 0; j >>= 1) {
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t l = i ^ j;
        if (l > i) {
          net.comparators_.push_back(Comparator{i, l, (i & k) == 0});
        }
      }
    }
  }
  return net;
}

namespace {
void oem_merge(std::vector<Comparator>& out, std::uint32_t lo, std::uint32_t n,
               std::uint32_t r) {
  const std::uint32_t m = r * 2;
  if (m < n) {
    oem_merge(out, lo, n, m);      // even subsequence
    oem_merge(out, lo + r, n, m);  // odd subsequence
    for (std::uint32_t i = lo + r; i + r < lo + n; i += m) {
      out.push_back(Comparator{i, i + r, true});
    }
  } else {
    out.push_back(Comparator{lo, lo + r, true});
  }
}

void oem_sort(std::vector<Comparator>& out, std::uint32_t lo, std::uint32_t n) {
  if (n <= 1) return;
  const std::uint32_t m = n / 2;
  oem_sort(out, lo, m);
  oem_sort(out, lo + m, m);
  oem_merge(out, lo, n, 1);
}
}  // namespace

SortingNetwork SortingNetwork::odd_even_merge(std::uint32_t n) {
  assert(is_pow2(n));
  SortingNetwork net(n);
  oem_sort(net.comparators_, 0, n);
  return net;
}

std::uint32_t SortingNetwork::depth() const {
  // Greedy layering: a comparator joins the earliest layer after the last
  // use of either of its wires.
  std::vector<std::uint32_t> wire_layer(n_, 0);
  std::uint32_t depth = 0;
  for (const Comparator& c : comparators_) {
    const std::uint32_t layer =
        std::max(wire_layer[c.lo], wire_layer[c.hi]) + 1;
    wire_layer[c.lo] = layer;
    wire_layer[c.hi] = layer;
    depth = std::max(depth, layer);
  }
  return depth;
}

}  // namespace pacsim
