// Conventional MSHR-based dynamic memory coalescing: the paper's primary
// baseline (sections 2.2.1 and 5.3.1).
//
// Misses to the same 64 B cache line merge as subentries of an existing
// MSHR; everything else allocates a new entry whose fixed-size cache-line
// request is dispatched to the memory device immediately. Because dispatch
// is immediate, an entry can never grow to a wider request - precisely the
// limitation PAC removes.
#pragma once

#include <cstdint>
#include <vector>

#include "hmc/device_port.hpp"
#include "pac/coalescer.hpp"

namespace pacsim {

struct MshrDmcConfig {
  std::uint32_t num_mshrs = 16;
  std::uint32_t line_bytes = 64;  ///< fixed coalesced request size
};

class MshrDmc final : public Coalescer {
 public:
  MshrDmc(const MshrDmcConfig& cfg, DevicePort* device);

  bool accept(const MemRequest& request, Cycle now) override;
  void tick(Cycle now) override;
  void complete(const DeviceResponse& response, Cycle now) override;
  void drain_satisfied_into(std::vector<std::uint64_t>& out) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] const CoalescerStats& stats() const override { return stats_; }
  [[nodiscard]] std::string debug_json() const override;

  [[nodiscard]] unsigned occupied() const { return occupied_; }

  void checkpoint_save(BinWriter& w) const override {
    w.tag("MSHR");
    stats_.checkpoint_save(w);
    w.u64(next_device_id_);
  }
  void checkpoint_load(BinReader& r) override {
    r.tag("MSHR");
    stats_.checkpoint_load(r);
    next_device_id_ = r.u64();
  }

 private:
  struct Entry {
    bool valid = false;
    Addr line = 0;   ///< line base address
    bool store = false;
    bool atomic = false;
    bool dispatched = false;
    std::uint64_t device_request_id = 0;
    std::vector<std::uint64_t> raw_ids;
  };

  bool dispatch_entry(Entry& entry, Cycle now);

  MshrDmcConfig cfg_;
  DevicePort* device_;
  CoalescerStats stats_;
  std::vector<Entry> entries_;
  unsigned occupied_ = 0;
  std::uint64_t next_device_id_ = 1;
  std::vector<std::uint64_t> satisfied_;
};

}  // namespace pacsim
