// Sorting-network-based dynamic memory coalescer, modelling the prior HMC
// coalescer of Wang et al. (ICPP'18) that paper section 2.2.2 and Fig. 11a
// compare PAC against.
//
// Raw requests are buffered into a fixed window; when the window fills (or
// the oldest entry times out) the whole window is run through a parallel
// bitonic sorting network keyed on physical address, then a linear merge
// pass fuses address-contiguous same-type neighbours into packets of up to
// `max_request` bytes. Every sort pays the full network's comparator count
// - the space/energy scaling problem PAC's paged streams avoid.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "baseline/sorting_network.hpp"
#include "hmc/device_port.hpp"
#include "pac/coalescer.hpp"

namespace pacsim {

struct SortingCoalescerConfig {
  std::uint32_t window = 16;        ///< sorting-network inputs
  std::uint32_t timeout = 16;       ///< cycles before a partial window sorts
  std::uint32_t max_request = 256;  ///< HMC 2.1 packet limit
  std::uint32_t line_bytes = 64;
  std::uint32_t max_outstanding = 16;  ///< device requests in flight
};

class SortingCoalescer final : public Coalescer {
 public:
  SortingCoalescer(const SortingCoalescerConfig& cfg, DevicePort* device);

  bool accept(const MemRequest& request, Cycle now) override;
  void tick(Cycle now) override;
  void complete(const DeviceResponse& response, Cycle now) override;
  void drain_satisfied_into(std::vector<std::uint64_t>& out) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] const CoalescerStats& stats() const override { return stats_; }
  [[nodiscard]] std::string debug_json() const override;

  [[nodiscard]] std::size_t window_occupancy() const { return window_.size(); }
  [[nodiscard]] const SortingNetwork& network() const { return network_; }

  void checkpoint_save(BinWriter& w) const override {
    w.tag("SORT");
    stats_.checkpoint_save(w);
    w.u64(next_device_id_);
    w.u64(sort_busy_until_);
  }
  void checkpoint_load(BinReader& r) override {
    r.tag("SORT");
    stats_.checkpoint_load(r);
    next_device_id_ = r.u64();
    sort_busy_until_ = r.u64();
  }

 private:
  struct Entry {
    Addr line = 0;
    bool store = false;
    std::uint64_t raw_id = 0;
    Cycle arrived = 0;
  };

  void sort_and_merge(Cycle now);
  void dispatch(Cycle now);

  SortingCoalescerConfig cfg_;
  DevicePort* device_;
  SortingNetwork network_;
  CoalescerStats stats_;

  std::vector<Entry> window_;
  /// Coalesced requests awaiting device admission.
  std::vector<DeviceRequest> ready_;
  Cycle sort_busy_until_ = 0;
  std::uint32_t outstanding_ = 0;
  std::uint64_t next_device_id_ = 1;
  std::vector<std::uint64_t> satisfied_;
};

}  // namespace pacsim
