#include "baseline/sorting_coalescer.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "core/verifier.hpp"
#include "mem/packet.hpp"

namespace pacsim {

SortingCoalescer::SortingCoalescer(const SortingCoalescerConfig& cfg,
                                   DevicePort* device)
    : cfg_(cfg),
      device_(device),
      network_(SortingNetwork::bitonic(cfg.window)) {
  window_.reserve(cfg_.window);
}

bool SortingCoalescer::accept(const MemRequest& request, Cycle now) {
  if (request.op == MemOp::kFence) {
    ++stats_.fences;
    if (verifier_ != nullptr) verifier_->on_fence_passthrough(request.id, now);
    // Force the partial window through the sorter immediately.
    if (!window_.empty()) sort_and_merge(now);
    return true;
  }
  if (request.op == MemOp::kAtomic) {
    if (outstanding_ >= cfg_.max_outstanding || !device_->can_accept()) {
      return false;
    }
    ++stats_.raw_requests;
    ++stats_.atomics;
    DeviceRequest req;
    req.id = next_device_id_++;
    req.base = request.paddr & ~Addr{kFlitBytes - 1};
    req.bytes = kFlitBytes;
    req.atomic = true;
    req.store = request.is_store();
    req.created_at = now;
    req.raw_ids.push_back(request.id);
    ++stats_.issued_requests;
    stats_.issued_payload_bytes += req.bytes;
    stats_.request_size_bytes.add(req.bytes);
    ++outstanding_;
    device_->submit(std::move(req), now);
    return true;
  }

  if (window_.size() >= cfg_.window || now < sort_busy_until_) return false;
  ++stats_.raw_requests;
  window_.push_back(Entry{request.paddr & ~Addr{cfg_.line_bytes - 1},
                          request.is_store(), request.id, now});
  return true;
}

void SortingCoalescer::sort_and_merge(Cycle now) {
  // The hardware runs the full bitonic network regardless of occupancy:
  // every comparator fires (this is the comparison cost of Fig. 7/11a).
  stats_.comparisons += network_.comparator_count();
  sort_busy_until_ = now + network_.depth();

  // Key: (address, store bit) - stores sort after loads at equal addresses.
  std::vector<std::pair<std::uint64_t, std::size_t>> keys(cfg_.window);
  for (std::size_t i = 0; i < cfg_.window; ++i) {
    if (i < window_.size()) {
      keys[i] = {(window_[i].line << 1) | (window_[i].store ? 1 : 0), i};
    } else {
      keys[i] = {~std::uint64_t{0}, i};  // padding sorts to the end
    }
  }
  network_.apply(std::span<std::pair<std::uint64_t, std::size_t>>(keys));

  // Linear merge pass over the sorted sequence.
  const std::size_t valid = window_.size();
  std::optional<DeviceRequest> open;
  auto flush_open = [&] {
    if (!open.has_value()) return;
    stats_.coalesced_away += open->raw_ids.size() - 1;
    ready_.push_back(std::move(*open));
    open.reset();
  };
  std::size_t seen = 0;
  for (const auto& [key, index] : keys) {
    if (seen++ >= valid) break;
    const Entry& e = window_[index];
    if (open.has_value() && open->store == e.store) {
      const Addr end = open->base + open->bytes;
      if (e.line == end - cfg_.line_bytes) {
        // Duplicate line: fold into the open request.
        open->raw_ids.push_back(e.raw_id);
        if (verifier_ != nullptr) verifier_->on_merged(e.raw_id, now);
        continue;
      }
      if (e.line == end && open->bytes + cfg_.line_bytes <= cfg_.max_request) {
        open->bytes += cfg_.line_bytes;
        open->raw_ids.push_back(e.raw_id);
        if (verifier_ != nullptr) verifier_->on_merged(e.raw_id, now);
        continue;
      }
    }
    flush_open();
    DeviceRequest req;
    req.id = next_device_id_++;
    req.base = e.line;
    req.bytes = cfg_.line_bytes;
    req.store = e.store;
    req.created_at = now;
    req.raw_ids.push_back(e.raw_id);
    open = std::move(req);
  }
  flush_open();
  window_.clear();
}

void SortingCoalescer::dispatch(Cycle now) {
  while (!ready_.empty() && outstanding_ < cfg_.max_outstanding &&
         device_->can_accept()) {
    DeviceRequest req = std::move(ready_.front());
    ready_.erase(ready_.begin());
    ++stats_.issued_requests;
    stats_.issued_payload_bytes += req.bytes;
    stats_.request_size_bytes.add(req.bytes);
    ++outstanding_;
    device_->submit(std::move(req), now);
  }
}

void SortingCoalescer::tick(Cycle now) {
  if (now >= sort_busy_until_ && !window_.empty()) {
    const bool full = window_.size() >= cfg_.window;
    const bool expired = now - window_.front().arrived >= cfg_.timeout;
    if (full || expired) sort_and_merge(now);
  }
  if (now >= sort_busy_until_) dispatch(now);
}

void SortingCoalescer::complete(const DeviceResponse& response, Cycle now) {
  (void)now;
  satisfied_.insert(satisfied_.end(), response.raw_ids.begin(),
                    response.raw_ids.end());
  if (outstanding_ > 0) --outstanding_;
}

void SortingCoalescer::drain_satisfied_into(std::vector<std::uint64_t>& out) {
  out.clear();
  std::swap(out, satisfied_);
}

Cycle SortingCoalescer::next_event_cycle(Cycle now) const {
  Cycle bound = kNeverCycle;
  if (!window_.empty()) {
    // The window sorts at the first cycle it is past the network's busy
    // time and either full or timed out.
    const Cycle due = window_.size() >= cfg_.window
                          ? now
                          : window_.front().arrived + cfg_.timeout;
    bound = std::min(bound, std::max(due, sort_busy_until_));
  }
  if (!ready_.empty()) {
    if (now < sort_busy_until_) {
      bound = std::min(bound, sort_busy_until_);
    } else if (outstanding_ < cfg_.max_outstanding && device_->can_accept()) {
      bound = std::min(bound, now);
    }
    // else: dispatch stays blocked until a completion frees a slot, which
    // the device's own event bound covers.
  }
  return std::max(bound, now);
}

bool SortingCoalescer::idle() const {
  return window_.empty() && ready_.empty() && outstanding_ == 0;
}

std::string SortingCoalescer::debug_json() const {
  std::ostringstream out;
  out << "{\"window\": " << window_.size() << ", \"ready\": " << ready_.size()
      << ", \"outstanding\": " << outstanding_
      << ", \"sort_busy_until\": " << sort_busy_until_ << "}";
  return out.str();
}

}  // namespace pacsim
