#include "baseline/direct_controller.hpp"

#include <sstream>
#include <utility>

#include "core/verifier.hpp"
#include "mem/packet.hpp"

namespace pacsim {

DirectController::DirectController(const DirectControllerConfig& cfg,
                                   DevicePort* device)
    : cfg_(cfg), device_(device) {}

bool DirectController::accept(const MemRequest& request, Cycle now) {
  if (request.op == MemOp::kFence) {
    ++stats_.fences;
    if (verifier_ != nullptr) verifier_->on_fence_passthrough(request.id, now);
    return true;  // in-order dispatch: nothing to drain
  }
  if (outstanding_.size() >= cfg_.max_outstanding) return false;
  if (!device_->can_accept()) return false;

  const bool atomic = request.op == MemOp::kAtomic;
  DeviceRequest req;
  req.id = next_device_id_++;
  req.base = atomic ? (request.paddr & ~Addr{kFlitBytes - 1})
                    : (request.paddr & ~Addr{cfg_.line_bytes - 1});
  req.bytes = atomic ? kFlitBytes : cfg_.line_bytes;
  req.store = request.is_store();
  req.atomic = atomic;
  req.created_at = now;
  req.raw_ids.push_back(request.id);

  ++stats_.raw_requests;
  if (atomic) ++stats_.atomics;
  ++stats_.issued_requests;
  stats_.issued_payload_bytes += req.bytes;
  stats_.request_size_bytes.add(req.bytes);

  outstanding_.emplace(req.id, request.id);
  device_->submit(std::move(req), now);
  return true;
}

void DirectController::tick(Cycle now) { (void)now; }

void DirectController::complete(const DeviceResponse& response, Cycle now) {
  (void)now;
  auto it = outstanding_.find(response.request_id);
  if (it == outstanding_.end()) return;
  satisfied_.push_back(it->second);
  outstanding_.erase(it);
}

void DirectController::drain_satisfied_into(std::vector<std::uint64_t>& out) {
  out.clear();
  std::swap(out, satisfied_);
}

std::string DirectController::debug_json() const {
  std::ostringstream out;
  out << "{\"outstanding\": " << outstanding_.size() << "}";
  return out.str();
}

}  // namespace pacsim
