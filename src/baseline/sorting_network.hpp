// Parallel sorting networks used by prior DMC hardware (Wang et al., ICPP'18)
// and compared against PAC in paper Fig. 11a.
//
// Both classic constructions are provided: Batcher's bitonic sorter and his
// odd-even merge sorter. The networks are built explicitly (comparator
// lists), so the comparator counts the paper quotes (672 and 543 at N = 64)
// are measured, not assumed, and the networks can actually sort - which the
// tests verify.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pacsim {

/// One compare-exchange element.
struct Comparator {
  std::uint32_t lo = 0;  ///< wire receiving the smaller value (if ascending)
  std::uint32_t hi = 0;
  bool ascending = true;
};

class SortingNetwork {
 public:
  /// Batcher bitonic sorter for n inputs (n must be a power of two).
  static SortingNetwork bitonic(std::uint32_t n);
  /// Batcher odd-even merge sorter for n inputs (n must be a power of two).
  static SortingNetwork odd_even_merge(std::uint32_t n);

  [[nodiscard]] std::uint32_t inputs() const { return n_; }
  [[nodiscard]] std::size_t comparator_count() const {
    return comparators_.size();
  }
  /// Pipeline depth: number of dependent comparator layers.
  [[nodiscard]] std::uint32_t depth() const;

  /// Run the network over `values` in place (values.size() == inputs()).
  template <typename T>
  void apply(std::span<T> values) const {
    for (const Comparator& c : comparators_) {
      T& a = values[c.lo];
      T& b = values[c.hi];
      const bool swap_needed = c.ascending ? (b < a) : (a < b);
      if (swap_needed) std::swap(a, b);
    }
  }

  [[nodiscard]] const std::vector<Comparator>& comparators() const {
    return comparators_;
  }

  /// Buffer bytes a pipelined hardware realization needs: each comparator
  /// latches one 4 B address tag (model used for the Fig. 11a comparison).
  [[nodiscard]] std::size_t buffer_bytes() const {
    return comparators_.size() * 4;
  }

 private:
  explicit SortingNetwork(std::uint32_t n) : n_(n) {}

  std::uint32_t n_ = 0;
  std::vector<Comparator> comparators_;
};

/// PAC's space overheads for N coalescing streams, for the same comparison:
/// one comparator per stream, an 8 B block-map and a 16 B request buffer per
/// stream (paper section 5.3.3: 16 streams -> 384 B total).
struct PacSpaceModel {
  std::uint32_t streams = 16;
  [[nodiscard]] std::size_t comparator_count() const { return streams; }
  [[nodiscard]] std::size_t blockmap_bytes() const { return streams * 8; }
  [[nodiscard]] std::size_t request_buffer_bytes() const {
    return streams * 16;
  }
  [[nodiscard]] std::size_t buffer_bytes() const {
    return blockmap_bytes() + request_buffer_bytes();
  }
};

}  // namespace pacsim
