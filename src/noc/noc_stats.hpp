// Interconnect statistics: per-link occupancy/queueing plus fabric-level
// packet counters, reported in the JSON schema v8 "interconnect" block.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace pacsim {

/// Counters of one directed inter-cube link.
struct LinkStats {
  std::string label;                 ///< e.g. "c0->c1"
  std::uint64_t packets = 0;         ///< packets serialized onto the link
  std::uint64_t bytes = 0;           ///< header + payload bytes moved
  std::uint64_t busy_cycles = 0;     ///< cycles the link was serializing
  std::uint64_t queued_packets = 0;  ///< packets that waited for the link
  Cycle max_queue_delay = 0;         ///< worst wait, cycles
  /// Liveness snapshot at report time (false once a scheduled link-down
  /// fired without a matching link-up). Derived, not checkpointed.
  bool up = true;
  /// Wait-for-link cycles per packet, log2-bucketed (bucket b covers
  /// [2^(b-1), 2^b); bucket 0 is zero wait). total() == packets.
  Histogram queue_delay;

  /// Fold another link's counters in (sharded runs merge per link index).
  void merge(const LinkStats& o) {
    packets += o.packets;
    bytes += o.bytes;
    busy_cycles += o.busy_cycles;
    queued_packets += o.queued_packets;
    max_queue_delay = std::max(max_queue_delay, o.max_queue_delay);
    queue_delay.merge(o.queue_delay);
    up = up && o.up;
  }

  void checkpoint_save(BinWriter& w) const {
    w.str(label);
    w.u64(packets);
    w.u64(bytes);
    w.u64(busy_cycles);
    w.u64(queued_packets);
    w.u64(max_queue_delay);
    queue_delay.checkpoint_save(w);
  }
  void checkpoint_load(BinReader& r) {
    label = r.str();
    packets = r.u64();
    bytes = r.u64();
    busy_cycles = r.u64();
    queued_packets = r.u64();
    max_queue_delay = r.u64();
    queue_delay.checkpoint_load(r);
  }
};

/// Fabric-level view of one run's interconnect traffic.
struct NocStats {
  std::uint32_t cubes = 1;
  std::string topology = "chain";
  std::uint64_t req_packets = 0;    ///< requests that left the host port
  std::uint64_t rsp_packets = 0;    ///< responses routed back over links
  std::uint64_t nack_packets = 0;   ///< NACKs routed back over links
  std::uint64_t link_crc_nacks = 0; ///< injected inter-cube CRC errors
  /// Deliveries deferred because the destination cube was full (each retry
  /// re-attempts next cycle).
  std::uint64_t ingress_retries = 0;
  /// Route-around recomputes triggered by scheduled link events.
  std::uint64_t route_recomputes = 0;
  /// Responses/NACKs dropped because their source cube lost every route
  /// home (the DevicePort timeout recovers or poisons the request).
  std::uint64_t dropped_packets = 0;
  std::vector<std::uint64_t> cube_requests;  ///< submissions per target cube
  std::vector<LinkStats> links;

  /// Fold another fabric's counters in. Topology/cube count are config and
  /// identical across shards; link vectors merge by index.
  void merge(const NocStats& o) {
    req_packets += o.req_packets;
    rsp_packets += o.rsp_packets;
    nack_packets += o.nack_packets;
    link_crc_nacks += o.link_crc_nacks;
    ingress_retries += o.ingress_retries;
    route_recomputes += o.route_recomputes;
    dropped_packets += o.dropped_packets;
    if (cube_requests.size() < o.cube_requests.size()) {
      cube_requests.resize(o.cube_requests.size(), 0);
    }
    for (std::size_t i = 0; i < o.cube_requests.size(); ++i) {
      cube_requests[i] += o.cube_requests[i];
    }
    if (links.size() < o.links.size()) links.resize(o.links.size());
    for (std::size_t i = 0; i < o.links.size(); ++i) {
      if (links[i].label.empty()) links[i].label = o.links[i].label;
      links[i].merge(o.links[i]);
    }
  }
};

}  // namespace pacsim
