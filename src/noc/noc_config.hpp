// Configuration of the multi-cube interconnect (src/noc/).
//
// HMC supports chaining cubes behind one host port; Hadidi et al.
// ("Performance Implications of NoCs on 3D-Stacked Memories") show the
// inter-cube network - not the vault controllers - dominates once aggregate
// traffic exceeds one cube's bandwidth. The NocConfig describes how N cube
// backends are wired: a linear chain (host -> c0 -> c1 -> ...) or a 2D mesh
// with XY routing, with per-link serialization bandwidth and per-hop router
// latency.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pacsim {

/// Inter-cube wiring (topology=chain|mesh).
enum class Topology : std::uint8_t {
  kChain = 0,  ///< linear daisy chain, host attached to cube 0
  kMesh,       ///< 2D mesh, XY (x-then-y) dimension-ordered routing
};

constexpr std::string_view to_string(Topology t) {
  switch (t) {
    case Topology::kChain: return "chain";
    case Topology::kMesh: return "mesh";
  }
  return "?";
}

/// Parse a topology= CLI value; throws std::invalid_argument otherwise.
inline Topology parse_topology(const std::string& name) {
  if (name == "chain") return Topology::kChain;
  if (name == "mesh") return Topology::kMesh;
  throw std::invalid_argument("unknown topology '" + name +
                              "' (expected chain or mesh)");
}

struct NocConfig {
  /// Cube count the physical address space is sharded across (cubes=1..8).
  std::uint32_t cubes = 1;
  Topology topology = Topology::kChain;

  /// Router + SERDES latency per hop, cycles (one cube-to-cube traversal
  /// beyond link serialization). HMC 2.1 measures ~4-6 ns per chained hop;
  /// 8 cycles at the 2 GHz reference clock.
  std::uint32_t hop_cycles = 8;
  /// Link serialization bandwidth, bytes per cycle (a full-width 16-lane
  /// 32 Gb/s HMC link moves 64 GB/s each way = 32 B per 2 GHz cycle).
  std::uint32_t link_bytes_per_cycle = 32;
  /// Per-packet header/CRC charged on every link traversal, bytes.
  std::uint32_t control_bytes = 16;
  /// Admission limit across the whole fabric (requests submitted and not
  /// yet answered or NACKed).
  std::uint32_t max_outstanding = 4096;

  /// Test hook: build the MultiCubeBackend wrapper even at cubes == 1. The
  /// single-cube wrapper is pure passthrough (no link events, no extra
  /// fault draws), which is what the cubes=1 differential suite proves
  /// bit-identical to the bare backend.
  bool wrap_single = false;

  /// True when the multi-cube path is needed at all.
  [[nodiscard]] bool active() const { return cubes > 1 || wrap_single; }
};

}  // namespace pacsim
