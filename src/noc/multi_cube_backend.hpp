// Multi-cube address-space sharding behind the MemoryBackend interface.
//
// The physical address space is sharded across N cube backends by the
// address's cube bits (AddressMap::cube_of); the host port attaches at cube
// 0 and reaches the others over a routed inter-cube link fabric (chain or
// 2D mesh of NocLink occupancy queues with per-hop router latency). The
// wrapper is itself a MemoryBackend, so every coalescer, the DevicePort
// retry machinery, the verifier, fast-forwarding and checkpoint/restore
// compose with multi-cube configurations unchanged.
//
// Event model: link traversals are charged analytically at injection time
// (each packet's delivery cycle is exact when it enters the fabric), and a
// priority queue of in-transit packets delivers them at tick(). That keeps
// next_event_cycle() exact - the event-horizon fast-forward contract - with
// zero per-cycle cost while the fabric is quiet.
//
// Faults: a multi-hop request rolls the link-CRC model once on fabric
// ingress (inter-cube links are additional CRC exposure); the resulting
// NACK travels back over the reverse path, so the requester-side DevicePort
// retry machinery recovers it exactly like an intra-cube CRC error. Child
// NACKs and responses are likewise routed home over the fabric with their
// full link delay.
//
// Hard failures: when the injector carries a scheduled fault timeline, the
// fabric builds the topology's full physical adjacency (every neighbor
// link, both directions) instead of the lazy route-only link set, and
// recomputes routes with a deterministic BFS from the host corner whenever
// a scheduled link event fires. A mesh routes around a non-cut link loss;
// a chain (no redundancy) reports the cubes beyond the cut unreachable.
// The unreachable set is pushed into the FaultInjector, where the
// DevicePort's dead-destination check turns new submissions into poisoned
// completions (failpolicy=contain) instead of wedging. In-transit packets
// keep their already-charged delivery times; a response whose source cube
// lost every route home is dropped (dropped_packets) and recovered by the
// port's response timeout. Configs without a timeline build the legacy
// link set, so their routes, stats layout and reports stay bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mem/memory_backend.hpp"
#include "noc/link.hpp"
#include "noc/noc_config.hpp"
#include "noc/noc_stats.hpp"

namespace pacsim {

class FaultInjector;

class MultiCubeBackend final : public MemoryBackend {
 public:
  /// `children` holds one backend per cfg.cubes, each modelling one cube of
  /// the per-cube capacity in `map_cfg` (whose num_cubes field is
  /// overridden with cfg.cubes to form the full sharded map). `fault`
  /// (optional, unowned) adds the inter-cube link CRC model; the children
  /// were typically built against the same injector.
  MultiCubeBackend(const NocConfig& cfg, AddressMapConfig map_cfg,
                   std::vector<std::unique_ptr<MemoryBackend>> children,
                   FaultInjector* fault = nullptr);

  [[nodiscard]] BackendKind kind() const override;
  [[nodiscard]] bool can_accept() const override;
  void submit(DeviceRequest req, Cycle now) override;
  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  void drain_completed_into(std::vector<DeviceResponse>& out) override;
  void drain_nacks_into(std::vector<DeviceNack>& out) override;
  [[nodiscard]] bool in_flight(std::uint64_t id) const override;
  void forget(std::uint64_t id) override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] std::uint32_t outstanding() const override;
  [[nodiscard]] const BackendStats& stats() const override;
  [[nodiscard]] const AddressMap& address_map() const override;
  void set_verifier(Verifier* verifier) override;
  [[nodiscard]] std::string debug_json() const override;
  void checkpoint_save(BinWriter& w) const override;
  void checkpoint_load(BinReader& r) override;

  /// Fabric counters plus a snapshot of every link's stats.
  [[nodiscard]] NocStats noc_stats() const;
  [[nodiscard]] std::uint32_t cube_count() const {
    return static_cast<std::uint32_t>(children_.size());
  }
  [[nodiscard]] const MemoryBackend& cube(std::uint32_t c) const {
    return *children_[c];
  }

  /// Called by the System when scheduled fault events fired: recompute
  /// routes around dead links and refresh the injector's unreachable set.
  /// No-op unless the config carries a hard-failure timeline.
  void on_fault_state_changed(Cycle now);
  /// True when cube `c` currently has a route from the host.
  [[nodiscard]] bool cube_reachable(std::uint32_t c) const {
    return !hard_ || reachable_[c];
  }

 private:
  /// Where a tracked request currently is, for in_flight()'s slow-vs-lost
  /// distinction: on the fabric (always in flight) or inside a cube
  /// (delegate, so an injected response drop surfaces as not-in-flight).
  enum class Phase : std::uint8_t { kReqTransit, kInChild, kRspTransit };
  struct Tracking {
    std::uint32_t cube = 0;
    std::uint32_t rsp_bytes = 0;  ///< response size for the return links
    Phase phase = Phase::kReqTransit;
  };

  enum class TransitKind : std::uint8_t { kRequest, kResponse, kNack };
  struct Transit {
    Cycle deliver = 0;
    std::uint64_t seq = 0;  ///< insertion order tie-break (determinism)
    TransitKind kind = TransitKind::kRequest;
    std::uint32_t cube = 0;
    DeviceRequest req;
    DeviceResponse rsp;
    DeviceNack nack;
  };
  struct TransitAfter {
    bool operator()(const Transit& a, const Transit& b) const {
      if (a.deliver != b.deliver) return a.deliver > b.deliver;
      return a.seq > b.seq;
    }
  };

  void build_topology();
  /// Hard-failure mode: full physical adjacency + BFS routes (all links up).
  void build_adjacency();
  /// Deterministic BFS from cube 0 over currently-alive links; fills
  /// req_path_/rsp_path_/reachable_ and pushes the unreachable set into the
  /// injector. `count` increments stats_.route_recomputes.
  void recompute_routes(bool count);
  std::uint32_t link_between(std::uint32_t from, std::uint32_t to);
  void push_transit(Transit ev);
  void deliver_due(Cycle now);
  void route_response(std::uint32_t cube, DeviceResponse rsp, Cycle now);
  void route_nack(std::uint32_t cube, DeviceNack nack, Cycle now);

  NocConfig cfg_;
  AddressMap map_;  ///< full sharded map (cube bits + per-cube geometry)
  std::vector<std::unique_ptr<MemoryBackend>> children_;
  FaultInjector* fault_;
  bool passthrough_;  ///< cubes == 1: pure delegation, no fabric events
  bool hard_ = false; ///< hard-failure timeline configured: BFS routing

  std::vector<NocLink> links_;
  /// Directed endpoints of links_[i] (for liveness + reverse lookup).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> link_ends_;
  /// Hard mode: per-cube sorted (neighbor, out-link index) adjacency.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
      adjacency_;
  std::vector<bool> reachable_;  ///< hard mode: route-from-host exists
  /// Link indices from the host (cube 0) to each cube, in traversal order.
  std::vector<std::vector<std::uint32_t>> req_path_;
  /// Link indices from each cube back to the host, in traversal order.
  std::vector<std::vector<std::uint32_t>> rsp_path_;

  std::priority_queue<Transit, std::vector<Transit>, TransitAfter> transit_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, Tracking> tracking_;

  std::vector<DeviceResponse> completed_;  ///< arrived at the host port
  std::vector<DeviceNack> nacks_;
  std::vector<DeviceResponse> child_rsp_buf_;  ///< reusable drain buffers
  std::vector<DeviceNack> child_nack_buf_;

  NocStats stats_;
  mutable BackendStats agg_;  ///< children folded in cube order, see stats()
};

}  // namespace pacsim
