// Multi-cube address-space sharding behind the MemoryBackend interface.
//
// The physical address space is sharded across N cube backends by the
// address's cube bits (AddressMap::cube_of); the host port attaches at cube
// 0 and reaches the others over a routed inter-cube link fabric (chain or
// 2D mesh of NocLink occupancy queues with per-hop router latency). The
// wrapper is itself a MemoryBackend, so every coalescer, the DevicePort
// retry machinery, the verifier, fast-forwarding and checkpoint/restore
// compose with multi-cube configurations unchanged.
//
// Event model: link traversals are charged analytically at injection time
// (each packet's delivery cycle is exact when it enters the fabric), and a
// priority queue of in-transit packets delivers them at tick(). That keeps
// next_event_cycle() exact - the event-horizon fast-forward contract - with
// zero per-cycle cost while the fabric is quiet.
//
// Faults: a multi-hop request rolls the link-CRC model once on fabric
// ingress (inter-cube links are additional CRC exposure); the resulting
// NACK travels back over the reverse path, so the requester-side DevicePort
// retry machinery recovers it exactly like an intra-cube CRC error. Child
// NACKs and responses are likewise routed home over the fabric with their
// full link delay.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/memory_backend.hpp"
#include "noc/link.hpp"
#include "noc/noc_config.hpp"
#include "noc/noc_stats.hpp"

namespace pacsim {

class FaultInjector;

class MultiCubeBackend final : public MemoryBackend {
 public:
  /// `children` holds one backend per cfg.cubes, each modelling one cube of
  /// the per-cube capacity in `map_cfg` (whose num_cubes field is
  /// overridden with cfg.cubes to form the full sharded map). `fault`
  /// (optional, unowned) adds the inter-cube link CRC model; the children
  /// were typically built against the same injector.
  MultiCubeBackend(const NocConfig& cfg, AddressMapConfig map_cfg,
                   std::vector<std::unique_ptr<MemoryBackend>> children,
                   FaultInjector* fault = nullptr);

  [[nodiscard]] BackendKind kind() const override;
  [[nodiscard]] bool can_accept() const override;
  void submit(DeviceRequest req, Cycle now) override;
  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  void drain_completed_into(std::vector<DeviceResponse>& out) override;
  void drain_nacks_into(std::vector<DeviceNack>& out) override;
  [[nodiscard]] bool in_flight(std::uint64_t id) const override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] std::uint32_t outstanding() const override;
  [[nodiscard]] const BackendStats& stats() const override;
  [[nodiscard]] const AddressMap& address_map() const override;
  void set_verifier(Verifier* verifier) override;
  [[nodiscard]] std::string debug_json() const override;
  void checkpoint_save(BinWriter& w) const override;
  void checkpoint_load(BinReader& r) override;

  /// Fabric counters plus a snapshot of every link's stats.
  [[nodiscard]] NocStats noc_stats() const;
  [[nodiscard]] std::uint32_t cube_count() const {
    return static_cast<std::uint32_t>(children_.size());
  }
  [[nodiscard]] const MemoryBackend& cube(std::uint32_t c) const {
    return *children_[c];
  }

 private:
  /// Where a tracked request currently is, for in_flight()'s slow-vs-lost
  /// distinction: on the fabric (always in flight) or inside a cube
  /// (delegate, so an injected response drop surfaces as not-in-flight).
  enum class Phase : std::uint8_t { kReqTransit, kInChild, kRspTransit };
  struct Tracking {
    std::uint32_t cube = 0;
    std::uint32_t rsp_bytes = 0;  ///< response size for the return links
    Phase phase = Phase::kReqTransit;
  };

  enum class TransitKind : std::uint8_t { kRequest, kResponse, kNack };
  struct Transit {
    Cycle deliver = 0;
    std::uint64_t seq = 0;  ///< insertion order tie-break (determinism)
    TransitKind kind = TransitKind::kRequest;
    std::uint32_t cube = 0;
    DeviceRequest req;
    DeviceResponse rsp;
    DeviceNack nack;
  };
  struct TransitAfter {
    bool operator()(const Transit& a, const Transit& b) const {
      if (a.deliver != b.deliver) return a.deliver > b.deliver;
      return a.seq > b.seq;
    }
  };

  void build_topology();
  std::uint32_t link_between(std::uint32_t from, std::uint32_t to);
  void push_transit(Transit ev);
  void deliver_due(Cycle now);
  void route_response(std::uint32_t cube, DeviceResponse rsp, Cycle now);
  void route_nack(std::uint32_t cube, DeviceNack nack, Cycle now);

  NocConfig cfg_;
  AddressMap map_;  ///< full sharded map (cube bits + per-cube geometry)
  std::vector<std::unique_ptr<MemoryBackend>> children_;
  FaultInjector* fault_;
  bool passthrough_;  ///< cubes == 1: pure delegation, no fabric events

  std::vector<NocLink> links_;
  /// Link indices from the host (cube 0) to each cube, in traversal order.
  std::vector<std::vector<std::uint32_t>> req_path_;
  /// Link indices from each cube back to the host, in traversal order.
  std::vector<std::vector<std::uint32_t>> rsp_path_;

  std::priority_queue<Transit, std::vector<Transit>, TransitAfter> transit_;
  std::uint64_t next_seq_ = 0;
  std::unordered_map<std::uint64_t, Tracking> tracking_;

  std::vector<DeviceResponse> completed_;  ///< arrived at the host port
  std::vector<DeviceNack> nacks_;
  std::vector<DeviceResponse> child_rsp_buf_;  ///< reusable drain buffers
  std::vector<DeviceNack> child_nack_buf_;

  NocStats stats_;
  mutable BackendStats agg_;  ///< children folded in cube order, see stats()
};

}  // namespace pacsim
