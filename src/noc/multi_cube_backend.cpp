#include "noc/multi_cube_backend.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/fault_injector.hpp"

namespace pacsim {
namespace {

AddressMapConfig with_cubes(AddressMapConfig cfg, std::uint32_t cubes) {
  cfg.num_cubes = cubes;
  return cfg;
}

}  // namespace

MultiCubeBackend::MultiCubeBackend(
    const NocConfig& cfg, AddressMapConfig map_cfg,
    std::vector<std::unique_ptr<MemoryBackend>> children, FaultInjector* fault)
    : cfg_(cfg),
      map_(with_cubes(map_cfg, cfg.cubes)),
      children_(std::move(children)),
      fault_(fault),
      passthrough_(children_.size() == 1) {
  if (children_.empty() || children_.size() != cfg_.cubes) {
    throw std::invalid_argument("MultiCubeBackend: need one child per cube");
  }
  stats_.cubes = cfg_.cubes;
  stats_.topology = std::string(to_string(cfg_.topology));
  stats_.cube_requests.assign(cfg_.cubes, 0);
  hard_ = fault_ != nullptr && fault_->hard_active() && !passthrough_;
  reachable_.assign(cfg_.cubes, true);
  if (hard_) {
    build_adjacency();
    recompute_routes(/*count=*/false);
  } else {
    build_topology();
  }
}

std::uint32_t MultiCubeBackend::link_between(std::uint32_t from,
                                             std::uint32_t to) {
  // build_topology walks paths in a fixed order, so link indices (and with
  // them the stats/report layout) are a pure function of the config.
  links_.emplace_back("c" + std::to_string(from) + "->" + std::to_string(to),
                      cfg_.link_bytes_per_cycle);
  link_ends_.emplace_back(from, to);
  return static_cast<std::uint32_t>(links_.size() - 1);
}

void MultiCubeBackend::build_adjacency() {
  // Full physical link set of the topology, both directions per edge, in a
  // deterministic enumeration order (link indices stay a pure function of
  // the config). The legacy lazy build only creates links the initial
  // routes touch; route-around needs every neighbor edge available.
  const std::uint32_t n = cfg_.cubes;
  adjacency_.assign(n, {});
  auto add_edge = [&](std::uint32_t a, std::uint32_t b) {
    const std::uint32_t fwd = link_between(a, b);
    const std::uint32_t rev = link_between(b, a);
    adjacency_[a].emplace_back(b, fwd);
    adjacency_[b].emplace_back(a, rev);
  };
  if (cfg_.topology == Topology::kChain) {
    for (std::uint32_t c = 0; c + 1 < n; ++c) add_edge(c, c + 1);
  } else {
    const auto w = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    for (std::uint32_t c = 0; c < n; ++c) {
      if ((c + 1) % w != 0 && c + 1 < n) add_edge(c, c + 1);
      if (c + w < n) add_edge(c, c + w);
    }
  }
  for (auto& nbrs : adjacency_) std::sort(nbrs.begin(), nbrs.end());
}

void MultiCubeBackend::recompute_routes(bool count) {
  const std::uint32_t n = cfg_.cubes;
  const auto kNoParent = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> parent(n, kNoParent);
  std::vector<std::uint32_t> parent_link(n, 0);  // link parent -> node
  std::deque<std::uint32_t> frontier;
  parent[0] = 0;
  frontier.push_back(0);
  // BFS with ascending-neighbor expansion: shortest alive routes with a
  // deterministic tie-break, so every run (serial, threaded, restored)
  // derives identical paths from identical fault state.
  while (!frontier.empty()) {
    const std::uint32_t c = frontier.front();
    frontier.pop_front();
    for (const auto& [nbr, link] : adjacency_[c]) {
      if (parent[nbr] != kNoParent) continue;
      if (fault_->link_dead(c, nbr)) continue;
      parent[nbr] = c;
      parent_link[nbr] = link;
      frontier.push_back(nbr);
    }
  }
  req_path_.assign(n, {});
  rsp_path_.assign(n, {});
  std::vector<std::uint32_t> unreachable;
  for (std::uint32_t c = 0; c < n; ++c) {
    reachable_[c] = parent[c] != kNoParent;
    if (!reachable_[c]) {
      unreachable.push_back(c);
      continue;
    }
    if (c == 0) continue;
    // Walk the parent chain home, collecting forward links (reversed into
    // host->cube order) and the reverse-direction link of each hop.
    std::vector<std::uint32_t> fwd;
    std::vector<std::uint32_t> rev;
    for (std::uint32_t node = c; node != 0; node = parent[node]) {
      fwd.push_back(parent_link[node]);
      for (const auto& [nbr, link] : adjacency_[node]) {
        if (nbr == parent[node]) {
          rev.push_back(link);
          break;
        }
      }
    }
    req_path_[c].assign(fwd.rbegin(), fwd.rend());
    rsp_path_[c] = std::move(rev);
  }
  fault_->set_unreachable(std::move(unreachable));
  if (count) ++stats_.route_recomputes;
}

void MultiCubeBackend::on_fault_state_changed(Cycle now) {
  (void)now;
  if (!hard_) return;
  recompute_routes(/*count=*/true);
}

void MultiCubeBackend::build_topology() {
  const std::uint32_t n = cfg_.cubes;
  req_path_.assign(n, {});
  rsp_path_.assign(n, {});
  if (n == 1) return;

  // Deduplicate shared link segments: (from, to) -> link index.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> dir;
  auto link_of = [&](std::uint32_t from, std::uint32_t to) {
    auto [it, inserted] = dir.try_emplace({from, to}, 0);
    if (inserted) it->second = link_between(from, to);
    return it->second;
  };

  if (cfg_.topology == Topology::kChain) {
    // Host -> c0 -> c1 -> ...; cube c is reached over links 0..c-1.
    for (std::uint32_t c = 1; c < n; ++c) {
      req_path_[c] = req_path_[c - 1];
      req_path_[c].push_back(link_of(c - 1, c));
      rsp_path_[c].push_back(link_of(c, c - 1));
      rsp_path_[c].insert(rsp_path_[c].end(), rsp_path_[c - 1].begin(),
                          rsp_path_[c - 1].end());
    }
    return;
  }

  // 2D mesh, XY dimension-ordered routing from the host corner (0, 0):
  // walk x along row 0, then y up the destination column. Cube id c sits at
  // (c % w, c / w); every intermediate node exists because ids are dense.
  const auto w = static_cast<std::uint32_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  for (std::uint32_t c = 1; c < n; ++c) {
    const std::uint32_t cx = c % w;
    const std::uint32_t cy = c / w;
    std::vector<std::uint32_t> fwd;
    std::vector<std::uint32_t> rev;
    for (std::uint32_t x = 0; x < cx; ++x) {
      fwd.push_back(link_of(x, x + 1));
      rev.push_back(link_of(x + 1, x));
    }
    for (std::uint32_t y = 0; y < cy; ++y) {
      fwd.push_back(link_of(y * w + cx, (y + 1) * w + cx));
      rev.push_back(link_of((y + 1) * w + cx, y * w + cx));
    }
    req_path_[c] = std::move(fwd);
    rsp_path_[c].assign(rev.rbegin(), rev.rend());
  }
}

BackendKind MultiCubeBackend::kind() const { return children_[0]->kind(); }

bool MultiCubeBackend::can_accept() const {
  // Single-cube delegates exactly so dispatch timing stays bit-identical to
  // the bare backend; multi-cube admits into the fabric and lets ingress
  // retries absorb a momentarily full destination cube.
  if (passthrough_) return children_[0]->can_accept();
  return tracking_.size() < cfg_.max_outstanding;
}

void MultiCubeBackend::push_transit(Transit ev) {
  ev.seq = next_seq_++;
  transit_.push(std::move(ev));
}

void MultiCubeBackend::submit(DeviceRequest req, Cycle now) {
  const std::uint32_t cube = passthrough_ ? 0 : map_.cube_of(req.base);
  ++stats_.cube_requests[cube];
  if (passthrough_) {
    children_[0]->submit(std::move(req), now);
    return;
  }

  if (hard_ && !reachable_[cube]) {
    // Belt-and-braces: the DevicePort intercepts dead destinations before
    // they reach the fabric. A request that arrives anyway must not route
    // over an empty (stale) path into the void: complete it poisoned
    // (contain) or abort, same contract as the port.
    if (fault_->config().fail_policy != FailPolicy::kContain) {
      throw std::runtime_error(
          "MultiCubeBackend: request " + std::to_string(req.id) +
          " addressed to unreachable cube " + std::to_string(cube) +
          " under failpolicy=abort");
    }
    DeviceResponse rsp;
    rsp.request_id = req.id;
    rsp.completed_at = now;
    rsp.raw_ids = std::move(req.raw_ids);
    rsp.poisoned = true;
    completed_.push_back(std::move(rsp));
    return;
  }

  Tracking& tr = tracking_[req.id];
  tr.cube = cube;
  // Loads and atomics carry the payload home; stores only an ack header.
  tr.rsp_bytes = cfg_.control_bytes +
                 (req.store && !req.atomic ? 0 : req.bytes);
  tr.phase = Phase::kReqTransit;

  const std::vector<std::uint32_t>& path = req_path_[cube];
  if (path.empty()) {
    // Host-attached cube: submit directly so cube-0 traffic keeps the exact
    // single-cube timing (a same-cycle transit hop would deliver a cycle
    // late because tick() already ran).
    if (children_[cube]->can_accept()) {
      tr.phase = Phase::kInChild;
      children_[cube]->submit(std::move(req), now);
    } else {
      ++stats_.ingress_retries;
      Transit ev;
      ev.deliver = now + 1;
      ev.kind = TransitKind::kRequest;
      ev.cube = cube;
      ev.req = std::move(req);
      push_transit(std::move(ev));
    }
    return;
  }

  ++stats_.req_packets;
  const std::uint32_t req_bytes =
      cfg_.control_bytes + (req.store || req.atomic ? req.bytes : 0);
  if (fault_ != nullptr && fault_->corrupt_request()) {
    // Link CRC hit: the packet burns its first hop, then a NACK header
    // returns over the last reverse link. The DevicePort retransmits.
    ++stats_.link_crc_nacks;
    Cycle t = links_[path.front()].traverse(now, req_bytes) + cfg_.hop_cycles;
    t = links_[rsp_path_[cube].back()].traverse(t, cfg_.control_bytes) +
        cfg_.hop_cycles;
    tr.phase = Phase::kRspTransit;
    Transit ev;
    ev.deliver = t;
    ev.kind = TransitKind::kNack;
    ev.nack = DeviceNack{req.id, t};
    push_transit(std::move(ev));
    return;
  }

  // Store-and-forward: serialize onto each link in turn, one router
  // latency per hop.
  Cycle t = now;
  for (const std::uint32_t link : path) {
    t = links_[link].traverse(t, req_bytes) + cfg_.hop_cycles;
  }
  Transit ev;
  ev.deliver = t;
  ev.kind = TransitKind::kRequest;
  ev.cube = cube;
  ev.req = std::move(req);
  push_transit(std::move(ev));
}

void MultiCubeBackend::deliver_due(Cycle now) {
  while (!transit_.empty() && transit_.top().deliver <= now) {
    // priority_queue exposes only a const top(); moving out before pop() is
    // safe because the element is removed immediately after.
    Transit ev = std::move(const_cast<Transit&>(transit_.top()));
    transit_.pop();
    switch (ev.kind) {
      case TransitKind::kRequest: {
        MemoryBackend& child = *children_[ev.cube];
        if (!child.can_accept()) {
          ++stats_.ingress_retries;
          ev.deliver = now + 1;
          push_transit(std::move(ev));
          break;
        }
        const auto it = tracking_.find(ev.req.id);
        if (it != tracking_.end()) it->second.phase = Phase::kInChild;
        child.submit(std::move(ev.req), now);
        break;
      }
      case TransitKind::kResponse:
        tracking_.erase(ev.rsp.request_id);
        completed_.push_back(std::move(ev.rsp));
        break;
      case TransitKind::kNack:
        tracking_.erase(ev.nack.request_id);
        nacks_.push_back(ev.nack);
        break;
    }
  }
}

void MultiCubeBackend::route_response(std::uint32_t cube, DeviceResponse rsp,
                                      Cycle now) {
  if (hard_ && !reachable_[cube]) {
    // The source cube lost every route home: the response cannot be
    // delivered. Drop it; the requester-side port timeout recovers (and,
    // seeing the destination unreachable, poisons under contain).
    ++stats_.dropped_packets;
    tracking_.erase(rsp.request_id);
    return;
  }
  const std::vector<std::uint32_t>& path = rsp_path_[cube];
  if (path.empty()) {
    tracking_.erase(rsp.request_id);
    completed_.push_back(std::move(rsp));
    return;
  }
  ++stats_.rsp_packets;
  std::uint32_t bytes = cfg_.control_bytes;
  const auto it = tracking_.find(rsp.request_id);
  if (it != tracking_.end()) {
    bytes = it->second.rsp_bytes;
    it->second.phase = Phase::kRspTransit;
  }
  Cycle t = now;
  for (const std::uint32_t link : path) {
    t = links_[link].traverse(t, bytes) + cfg_.hop_cycles;
  }
  rsp.completed_at = t;  // the host sees the response when it arrives
  Transit ev;
  ev.deliver = t;
  ev.kind = TransitKind::kResponse;
  ev.cube = cube;
  ev.rsp = std::move(rsp);
  push_transit(std::move(ev));
}

void MultiCubeBackend::route_nack(std::uint32_t cube, DeviceNack nack,
                                  Cycle now) {
  if (hard_ && !reachable_[cube]) {
    ++stats_.dropped_packets;
    tracking_.erase(nack.request_id);
    return;
  }
  const std::vector<std::uint32_t>& path = rsp_path_[cube];
  if (path.empty()) {
    tracking_.erase(nack.request_id);
    nacks_.push_back(nack);
    return;
  }
  ++stats_.nack_packets;
  const auto it = tracking_.find(nack.request_id);
  if (it != tracking_.end()) it->second.phase = Phase::kRspTransit;
  Cycle t = now;
  for (const std::uint32_t link : path) {
    t = links_[link].traverse(t, cfg_.control_bytes) + cfg_.hop_cycles;
  }
  nack.nacked_at = t;
  Transit ev;
  ev.deliver = t;
  ev.kind = TransitKind::kNack;
  ev.cube = cube;
  ev.nack = nack;
  push_transit(std::move(ev));
}

void MultiCubeBackend::tick(Cycle now) {
  for (auto& child : children_) child->tick(now);
  if (passthrough_) return;
  deliver_due(now);
  for (std::uint32_t c = 0; c < children_.size(); ++c) {
    children_[c]->drain_completed_into(child_rsp_buf_);
    for (DeviceResponse& rsp : child_rsp_buf_) {
      route_response(c, std::move(rsp), now);
    }
    children_[c]->drain_nacks_into(child_nack_buf_);
    for (const DeviceNack& nack : child_nack_buf_) route_nack(c, nack, now);
  }
}

Cycle MultiCubeBackend::next_event_cycle(Cycle now) const {
  if (passthrough_) return children_[0]->next_event_cycle(now);
  // Unlike a leaf device's completion buffer (always drained later in the
  // same step), arrivals can sit in completed_/nacks_ across a step, so
  // they pin the horizon at `now` until the port drains them.
  if (!completed_.empty() || !nacks_.empty()) return now;
  Cycle bound = kNeverCycle;
  if (!transit_.empty()) {
    bound = transit_.top().deliver > now ? transit_.top().deliver : now;
  }
  for (const auto& child : children_) {
    const Cycle b = child->next_event_cycle(now);
    if (b < bound) bound = b;
  }
  return bound;
}

void MultiCubeBackend::drain_completed_into(std::vector<DeviceResponse>& out) {
  if (passthrough_) {
    children_[0]->drain_completed_into(out);
    return;
  }
  out.clear();
  std::swap(out, completed_);
}

void MultiCubeBackend::drain_nacks_into(std::vector<DeviceNack>& out) {
  if (passthrough_) {
    children_[0]->drain_nacks_into(out);
    return;
  }
  out.clear();
  std::swap(out, nacks_);
}

bool MultiCubeBackend::in_flight(std::uint64_t id) const {
  if (passthrough_) return children_[0]->in_flight(id);
  const auto it = tracking_.find(id);
  if (it == tracking_.end()) return false;
  // Inside a cube the child is authoritative: an injected response drop
  // must surface as not-in-flight so the port timeout retransmits.
  if (it->second.phase == Phase::kInChild) {
    return children_[it->second.cube]->in_flight(id);
  }
  return true;
}

void MultiCubeBackend::forget(std::uint64_t id) {
  if (passthrough_) {
    children_[0]->forget(id);
    return;
  }
  // Poisoning only happens once the request is physically gone (the child
  // retired a dropped response internally, or a NACK already cleaned up),
  // so at most a stale tracking entry remains; dropping it keeps idle()
  // honest. No transit packet can exist for the id - in_flight() reports
  // kReqTransit/kRspTransit phases as live, which blocks the poison paths.
  tracking_.erase(id);
}

bool MultiCubeBackend::idle() const {
  // Must match checkpoint_save's quiescence precondition exactly: packets in
  // flight, undelivered arrivals, or tracked requests all mean "not idle".
  if (!transit_.empty() || !tracking_.empty() || !completed_.empty() ||
      !nacks_.empty()) {
    return false;
  }
  for (const auto& child : children_) {
    if (!child->idle()) return false;
  }
  return true;
}

std::uint32_t MultiCubeBackend::outstanding() const {
  std::uint32_t sum = 0;
  for (const auto& child : children_) sum += child->outstanding();
  if (!passthrough_) {
    sum += static_cast<std::uint32_t>(transit_.size());
  }
  return sum;
}

const BackendStats& MultiCubeBackend::stats() const {
  agg_ = BackendStats{};
  for (const auto& child : children_) agg_.merge(child->stats());
  return agg_;
}

const AddressMap& MultiCubeBackend::address_map() const { return map_; }

void MultiCubeBackend::set_verifier(Verifier* verifier) {
  for (auto& child : children_) child->set_verifier(verifier);
}

std::string MultiCubeBackend::debug_json() const {
  std::ostringstream out;
  out << "{\"cubes\": " << children_.size() << ", \"in_transit\": "
      << transit_.size() << ", \"tracked\": " << tracking_.size()
      << ", \"buffered_responses\": " << completed_.size()
      << ", \"buffered_nacks\": " << nacks_.size() << ", \"children\": [";
  for (std::size_t c = 0; c < children_.size(); ++c) {
    if (c != 0) out << ", ";
    out << children_[c]->debug_json();
  }
  out << "]}";
  return out.str();
}

void MultiCubeBackend::checkpoint_save(BinWriter& w) const {
  if (!transit_.empty() || !tracking_.empty() || !completed_.empty() ||
      !nacks_.empty()) {
    throw SnapshotError("multi-cube fabric not quiescent");
  }
  w.tag("NOCB");
  w.u32(static_cast<std::uint32_t>(children_.size()));
  w.u64(next_seq_);
  w.u64(stats_.req_packets);
  w.u64(stats_.rsp_packets);
  w.u64(stats_.nack_packets);
  w.u64(stats_.link_crc_nacks);
  w.u64(stats_.ingress_retries);
  w.u64(stats_.route_recomputes);
  w.u64(stats_.dropped_packets);
  for (const std::uint64_t n : stats_.cube_requests) w.u64(n);
  w.u32(static_cast<std::uint32_t>(links_.size()));
  for (const NocLink& link : links_) link.checkpoint_save(w);
  for (const auto& child : children_) child->checkpoint_save(w);
}

void MultiCubeBackend::checkpoint_load(BinReader& r) {
  r.tag("NOCB");
  if (r.u32() != children_.size()) {
    throw SnapshotError("multi-cube cube count mismatch");
  }
  next_seq_ = r.u64();
  stats_.req_packets = r.u64();
  stats_.rsp_packets = r.u64();
  stats_.nack_packets = r.u64();
  stats_.link_crc_nacks = r.u64();
  stats_.ingress_retries = r.u64();
  stats_.route_recomputes = r.u64();
  stats_.dropped_packets = r.u64();
  for (std::uint64_t& n : stats_.cube_requests) n = r.u64();
  if (r.u32() != links_.size()) {
    throw SnapshotError("multi-cube link count mismatch");
  }
  for (NocLink& link : links_) link.checkpoint_load(r);
  for (auto& child : children_) child->checkpoint_load(r);
  // Derive routes/reachability from the restored injector state (the FLTI
  // section loads before NOCB): the same fault set always yields the same
  // BFS, so a restored run continues on identical paths.
  if (hard_) recompute_routes(/*count=*/false);
}

NocStats MultiCubeBackend::noc_stats() const {
  NocStats out = stats_;
  out.links.reserve(links_.size());
  for (std::size_t i = 0; i < links_.size(); ++i) {
    LinkStats ls = links_[i].stats();
    if (hard_) {
      ls.up = !fault_->link_dead(link_ends_[i].first, link_ends_[i].second);
    }
    out.links.push_back(std::move(ls));
  }
  return out;
}

}  // namespace pacsim
