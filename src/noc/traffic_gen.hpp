// Open-loop skewed traffic front-end for the multi-cube sweeps.
//
// bench_multicube needs traffic whose cube distribution is controlled, not
// emergent: a Zipfian cube picker (zipf= skew) concentrates load on one hot
// cube so the sweep can show the hot shard's ingress links saturating while
// a uniform sweep (zipf=0) shows aggregate bandwidth scaling with the cube
// count. The generator emits ordinary per-core Traces (sequential cache
// block bursts inside a picked page, short compute gaps for open-loop
// pacing), addressed in the identity-paged physical space so a vaddr's cube
// bits survive translation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/trace.hpp"

namespace pacsim {

/// Deterministic Zipf-distributed cube selector. Rank r (0 = hottest) gets
/// weight 1/(r+1)^skew; rank r maps to cube (hot_cube + r) % cubes, so the
/// hot cube defaults to the one farthest from the host (worst-case link
/// path). skew = 0 degenerates to the uniform distribution.
class ZipfPicker {
 public:
  ZipfPicker(std::uint32_t cubes, double skew, std::uint32_t hot_cube);

  /// Draw one cube index using the caller's xoshiro stream.
  [[nodiscard]] std::uint32_t pick(Rng& rng) const;

  /// P(rank r is chosen); exposed for the skew-monotonicity tests.
  [[nodiscard]] double rank_probability(std::uint32_t rank) const;
  [[nodiscard]] std::uint32_t cube_of_rank(std::uint32_t rank) const {
    return (hot_cube_ + rank) % cubes_;
  }

 private:
  std::uint32_t cubes_;
  std::uint32_t hot_cube_;
  std::vector<double> cdf_;  ///< cumulative rank probabilities
};

struct TrafficConfig {
  std::uint32_t cubes = 1;
  /// Zipf skew over cubes: 0 = uniform, ~1.2 = one clearly hot shard.
  double zipf = 0.0;
  /// Hot cube index; default (when left at UINT32_MAX) is cubes - 1, the
  /// cube with the longest link path from the host.
  std::uint32_t hot_cube = UINT32_MAX;
  std::uint64_t seed = 0x70AFF1CULL;
  std::uint32_t num_cores = 8;
  std::uint32_t ops_per_core = 20'000;
  /// Fraction of bursts that store instead of load, percent.
  std::uint32_t store_percent = 20;
  /// Per-cube capacity; a cube's address window is [c * cap, (c+1) * cap).
  std::uint64_t cube_capacity_bytes = 8ULL << 30;
  /// Pages touched per cube (bounds the footprint the page table must hold).
  std::uint32_t pages_per_cube = 512;
  /// Sequential cache blocks per burst (coalescing opportunity).
  std::uint32_t burst_blocks = 8;
  /// Compute-gap cycles between bursts (open-loop issue pacing); the gap is
  /// uniform in [min, max].
  std::uint32_t gap_min_cycles = 1;
  std::uint32_t gap_max_cycles = 8;
  /// Every Nth burst gap is stretched to quiesce_gap_cycles (0 = never):
  /// long drain windows wide enough for the system to go fully quiescent,
  /// so epoch boundaries can land where checkpoint attempts capture. The
  /// soak fuzzer needs these phases or its checkpoint-restore oracle
  /// (quiescent points only) would be perpetually skipped.
  std::uint32_t quiesce_every_bursts = 0;
  std::uint32_t quiesce_gap_cycles = 2'000;
};

/// Generate one deterministic trace per core. Core c draws from its own
/// seed-derived stream, so a trace set is reproducible per (config, core)
/// independent of generation order.
[[nodiscard]] TraceSet generate_traffic(const TrafficConfig& cfg);

}  // namespace pacsim
