#include "noc/traffic_gen.hpp"

#include <cmath>
#include <stdexcept>

#include "common/types.hpp"

namespace pacsim {

ZipfPicker::ZipfPicker(std::uint32_t cubes, double skew,
                       std::uint32_t hot_cube)
    : cubes_(cubes), hot_cube_(hot_cube % (cubes ? cubes : 1)) {
  if (cubes == 0) throw std::invalid_argument("ZipfPicker: cubes == 0");
  if (skew < 0.0) throw std::invalid_argument("ZipfPicker: negative skew");
  cdf_.resize(cubes);
  double total = 0.0;
  for (std::uint32_t r = 0; r < cubes; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cdf_[r] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

std::uint32_t ZipfPicker::pick(Rng& rng) const {
  const double u = rng.uniform();
  // cubes <= 8: a linear CDF scan beats binary search and is branch-cheap.
  std::uint32_t rank = 0;
  while (rank + 1 < cubes_ && u >= cdf_[rank]) ++rank;
  return cube_of_rank(rank);
}

double ZipfPicker::rank_probability(std::uint32_t rank) const {
  if (rank >= cubes_) return 0.0;
  return cdf_[rank] - (rank == 0 ? 0.0 : cdf_[rank - 1]);
}

TraceSet generate_traffic(const TrafficConfig& cfg) {
  if (cfg.cubes == 0) throw std::invalid_argument("traffic: cubes == 0");
  const std::uint32_t hot =
      cfg.hot_cube == UINT32_MAX ? cfg.cubes - 1 : cfg.hot_cube;
  const ZipfPicker picker(cfg.cubes, cfg.zipf, hot);
  const std::uint32_t burst = cfg.burst_blocks ? cfg.burst_blocks : 1;
  const std::uint32_t gap_lo = cfg.gap_min_cycles;
  const std::uint32_t gap_hi =
      cfg.gap_max_cycles > gap_lo ? cfg.gap_max_cycles : gap_lo;

  TraceSet traces;
  traces.reserve(cfg.num_cores);
  for (std::uint32_t core = 0; core < cfg.num_cores; ++core) {
    // Per-core streams: trace c is a function of (seed, c) alone.
    Rng rng(cfg.seed ^ (0x9E3779B97F4A7C15ULL * (core + 1)));
    Trace t;
    t.reserve(cfg.ops_per_core);
    std::size_t emitted = 0;
    std::uint64_t bursts = 0;
    while (emitted < cfg.ops_per_core) {
      ++bursts;
      const std::uint32_t cube = picker.pick(rng);
      const std::uint64_t page = rng.below(cfg.pages_per_cube);
      const bool store = rng.below(100) < cfg.store_percent;
      const Addr base = static_cast<Addr>(cube) * cfg.cube_capacity_bytes +
                        (page << kPageShift);
      // Sequential blocks within one page: classic coalescing shape, and
      // the whole burst targets a single cube.
      const std::uint64_t blocks_in_page = kPageSize / kCacheBlockSize;
      const std::uint64_t start = rng.below(blocks_in_page - burst + 1);
      for (std::uint32_t b = 0; b < burst && emitted < cfg.ops_per_core;
           ++b, ++emitted) {
        t.push_back({base + (start + b) * kCacheBlockSize, 8,
                     store ? OpKind::kStore : OpKind::kLoad});
      }
      if (emitted < cfg.ops_per_core) {
        std::uint32_t gap =
            gap_lo + static_cast<std::uint32_t>(
                         rng.below(gap_hi - gap_lo + 1));
        if (cfg.quiesce_every_bursts != 0 &&
            bursts % cfg.quiesce_every_bursts == 0) {
          gap = cfg.quiesce_gap_cycles;
        }
        t.push_back({0, gap, OpKind::kCompute});
        ++emitted;
      }
    }
    traces.push_back(std::move(t));
  }
  return traces;
}

}  // namespace pacsim
