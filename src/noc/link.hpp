// One directed inter-cube link: a serialization-bandwidth occupancy queue.
//
// The link is modeled analytically instead of per-cycle: a packet arriving
// at `arrival` starts serializing when the link frees up (busy_until_),
// occupies it for ceil(bytes / bytes_per_cycle) cycles, and the wait is the
// packet's queueing delay. Because every traversal is charged at submit /
// drain time with exact cycle arithmetic, the model composes with
// event-horizon fast-forwarding without pinning per-cycle stepping.
#pragma once

#include <bit>
#include <string>
#include <utility>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "noc/noc_stats.hpp"

namespace pacsim {

class NocLink {
 public:
  NocLink(std::string label, std::uint32_t bytes_per_cycle)
      : bytes_per_cycle_(bytes_per_cycle ? bytes_per_cycle : 1) {
    stats_.label = std::move(label);
  }

  /// Serialize `bytes` onto the link starting no earlier than `arrival`;
  /// returns the cycle the last byte leaves the link.
  Cycle traverse(Cycle arrival, std::uint32_t bytes) {
    const Cycle start = busy_until_ > arrival ? busy_until_ : arrival;
    const Cycle wait = start - arrival;
    const Cycle ser =
        (static_cast<Cycle>(bytes) + bytes_per_cycle_ - 1) / bytes_per_cycle_;
    busy_until_ = start + ser;
    ++stats_.packets;
    stats_.bytes += bytes;
    stats_.busy_cycles += ser;
    if (wait > 0) {
      ++stats_.queued_packets;
      stats_.max_queue_delay = std::max(stats_.max_queue_delay, wait);
    }
    stats_.queue_delay.add(static_cast<std::int64_t>(std::bit_width(wait)));
    return busy_until_;
  }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] Cycle busy_until() const { return busy_until_; }

  void checkpoint_save(BinWriter& w) const {
    w.u64(busy_until_);
    stats_.checkpoint_save(w);
  }
  void checkpoint_load(BinReader& r) {
    busy_until_ = r.u64();
    stats_.checkpoint_load(r);
  }

 private:
  std::uint32_t bytes_per_cycle_;
  Cycle busy_until_ = 0;  ///< cycle the in-progress serialization ends
  LinkStats stats_;
};

}  // namespace pacsim
