// Records the memory behaviour of a workload kernel into a Trace.
//
// Kernels call load()/store()/compute() as they execute over synthetic
// data; when the per-core budget is reached the recorder throws TraceFull,
// which the workload driver catches - this cleanly stops arbitrarily deep
// kernel recursion (FFT, sort) without threading status through every call.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/trace.hpp"

namespace pacsim {

class TraceRecorder {
 public:
  /// Thrown when the op budget is exhausted.
  struct TraceFull {};

  TraceRecorder(Trace* out, std::size_t max_ops)
      : out_(out), max_ops_(max_ops) {}

  void load(Addr vaddr, std::uint32_t bytes = 8) {
    push(TraceOp{vaddr, bytes, OpKind::kLoad});
  }
  void store(Addr vaddr, std::uint32_t bytes = 8) {
    push(TraceOp{vaddr, bytes, OpKind::kStore});
  }
  void atomic(Addr vaddr, std::uint32_t bytes = 8) {
    push(TraceOp{vaddr, bytes, OpKind::kAtomic});
  }
  void fence() { push(TraceOp{0, 0, OpKind::kFence}); }
  /// Model `cycles` of non-memory work (ALU/FPU/branches), scaled by the
  /// workload's compute multiplier.
  void compute(std::uint32_t cycles) {
    cycles = static_cast<std::uint32_t>(
        static_cast<double>(cycles) * compute_scale_ + 0.5);
    if (cycles == 0) return;
    // Merge adjacent compute into one op to keep traces compact.
    if (!out_->empty() && out_->back().kind == OpKind::kCompute) {
      out_->back().arg += cycles;
      return;
    }
    push(TraceOp{0, cycles, OpKind::kCompute});
  }

  void set_compute_scale(double scale) { compute_scale_ = scale; }

  [[nodiscard]] bool full() const { return out_->size() >= max_ops_; }
  [[nodiscard]] std::size_t size() const { return out_->size(); }

 private:
  void push(TraceOp op) {
    if (full()) throw TraceFull{};
    out_->push_back(op);
  }

  Trace* out_;
  std::size_t max_ops_;
  double compute_scale_ = 1.0;
};

}  // namespace pacsim
