// Per-request lifetime accounting for the runtime verification layer.
//
// The ledger is a dumb store: it records every open raw request's identity
// and event timeline (issued -> accepted -> merged -> dispatched -> ... ->
// retired) keyed by raw id, and answers queries about what is still
// outstanding. All policy - which transitions are legal, what a violation
// means, when to dump forensics - lives in the Verifier.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "mem/request.hpp"

namespace pacsim {

/// Lifecycle stages of one raw request, in nominal order. The names are
/// stable: they appear verbatim in forensics dumps.
enum class ReqStage : std::uint8_t {
  kIssued = 0,     ///< left the LLC (System::make_raw)
  kAccepted,       ///< admitted by the coalescer
  kMerged,         ///< coalesced into a stream / MSHR entry / open packet
  kFenceMark,      ///< fence observed by the controller (fence raws only)
  kDispatched,     ///< part of a device request submitted to the port
  kNacked,         ///< its device request was NACKed on the link
  kRetransmitted,  ///< its device request was retransmitted after a fault
  kResponseDropped,///< the device produced a response the link then lost
  kResponded,      ///< covered by a completed device response
  kRetired,        ///< satisfied back to the system scoreboard
  kPoisoned,       ///< declared lost via a poisoned completion (contain)
};

[[nodiscard]] const char* to_string(ReqStage stage);

struct ReqEvent {
  Cycle cycle = 0;
  ReqStage stage = ReqStage::kIssued;
  /// Stage-dependent detail: device request id for kDispatched/kNacked/
  /// kResponseDropped, retry attempt count for kRetransmitted, 0 otherwise.
  std::uint64_t aux = 0;
};

/// Everything remembered about one open (not yet retired) raw request.
struct ReqRecord {
  Addr paddr = 0;
  std::uint32_t bytes = 0;
  MemOp op = MemOp::kLoad;
  std::uint8_t core = 0;
  Cycle issued_at = 0;
  bool accepted = false;
  std::vector<ReqEvent> events;  ///< full timeline, in arrival order
};

class RequestLedger {
 public:
  using Map = std::unordered_map<std::uint64_t, ReqRecord>;

  /// Open a record for `req` (stage kIssued). Returns false when the id is
  /// already open - a duplicate issue the caller must flag.
  bool open(const MemRequest& req, Cycle now);

  /// Append an event to an open record. Returns the record, or nullptr when
  /// the id is unknown (never opened, or already retired).
  ReqRecord* note(std::uint64_t id, ReqStage stage, Cycle now,
                  std::uint64_t aux = 0);

  /// Close (retire) a record. Returns false when the id is not open.
  bool close(std::uint64_t id);

  [[nodiscard]] const ReqRecord* find(std::uint64_t id) const;
  [[nodiscard]] std::size_t outstanding() const { return open_.size(); }
  [[nodiscard]] const Map& open_requests() const { return open_; }

  /// The `k` oldest open records by issue cycle (ties by id), for forensics
  /// dumps: the stuck requests are almost always the oldest ones.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, const ReqRecord*>>
  oldest(std::size_t k) const;

 private:
  Map open_;
};

}  // namespace pacsim
