// Per-core operation traces: the interface between workload kernels and the
// trace-driven core model (the Spike substitution described in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pacsim {

enum class OpKind : std::uint8_t {
  kLoad = 0,
  kStore,
  kAtomic,
  kFence,
  kCompute,  ///< arg = busy cycles (models non-memory instructions)
};

struct TraceOp {
  Addr vaddr = 0;       ///< virtual address (unused for kCompute)
  std::uint32_t arg = 0;  ///< access bytes, or busy cycles for kCompute
  OpKind kind = OpKind::kCompute;
};

using Trace = std::vector<TraceOp>;

}  // namespace pacsim
