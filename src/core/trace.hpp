// Per-core operation traces: the interface between workload kernels and the
// trace-driven core model (the Spike substitution described in DESIGN.md).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"

namespace pacsim {

enum class OpKind : std::uint8_t {
  kLoad = 0,
  kStore,
  kAtomic,
  kFence,
  kCompute,  ///< arg = busy cycles (models non-memory instructions)
};

struct TraceOp {
  Addr vaddr = 0;       ///< virtual address (unused for kCompute)
  std::uint32_t arg = 0;  ///< access bytes, or busy cycles for kCompute
  OpKind kind = OpKind::kCompute;

  friend bool operator==(const TraceOp&, const TraceOp&) = default;
};

using Trace = std::vector<TraceOp>;
/// One trace per core: the unit Workload::generate() produces and the
/// TraceStore memoizes.
using TraceSet = std::vector<Trace>;

/// Immutable shared handles: multi-megabyte traces flow through the stack
/// (store -> runner -> System cores) by reference count, never by copy.
using SharedTrace = std::shared_ptr<const Trace>;
using SharedTraceSet = std::shared_ptr<const TraceSet>;

/// Payload bytes a trace set keeps resident (ops only, excluding vector
/// bookkeeping); the TraceStore accounts residency with this.
[[nodiscard]] inline std::uint64_t trace_set_bytes(const TraceSet& traces) {
  std::uint64_t bytes = 0;
  for (const Trace& t : traces) bytes += t.size() * sizeof(TraceOp);
  return bytes;
}

}  // namespace pacsim
