#include "core/fault_injector.hpp"

namespace pacsim {

FaultInjector::FaultInjector(const FaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {}

bool FaultInjector::decide(double rate, std::uint32_t& burst_left,
                           std::uint64_t& counter) {
  if (burst_left > 0) {
    --burst_left;
    ++counter;
    return true;
  }
  // A zero-rate category never draws, so enabling one fault kind does not
  // perturb the stream positions of the others' disabled categories.
  if (rate <= 0.0) return false;
  if (rng_.uniform() >= rate) return false;
  if (cfg_.burst_length > 1) burst_left = cfg_.burst_length - 1;
  ++counter;
  return true;
}

bool FaultInjector::corrupt_request() {
  return decide(cfg_.link_error_rate, link_burst_left_, stats_.link_errors);
}

bool FaultInjector::drop_response() {
  return decide(cfg_.response_drop_rate, drop_burst_left_,
                stats_.response_drops);
}

bool FaultInjector::stall_vault() {
  return decide(cfg_.vault_stall_rate, stall_burst_left_,
                stats_.vault_stalls);
}

}  // namespace pacsim
