#include "core/fault_injector.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pacsim {

const char* to_string(FaultEventKind kind) {
  switch (kind) {
    case FaultEventKind::kLinkDown: return "linkdown";
    case FaultEventKind::kLinkUp: return "linkup";
    case FaultEventKind::kVaultDown: return "vaultdown";
    case FaultEventKind::kCubeDown: return "cubedown";
  }
  return "?";
}

FailPolicy parse_fail_policy(const std::string& name) {
  if (name == "abort") return FailPolicy::kAbort;
  if (name == "contain") return FailPolicy::kContain;
  throw std::invalid_argument("failpolicy=" + name +
                              " (expected abort or contain)");
}

const char* to_string(FailPolicy policy) {
  return policy == FailPolicy::kContain ? "contain" : "abort";
}

namespace {

void check_rate(const char* knob, double rate) {
  if (rate < 0.0 || rate > 1.0) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s must be in [0, 1], got %g", knob,
                  rate);
    throw std::invalid_argument(buf);
  }
}

std::uint64_t parse_number(const std::string& knob, const std::string& tok) {
  std::size_t end = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(tok, &end);
  } catch (const std::exception&) {
    end = 0;
  }
  if (end != tok.size() || tok.empty()) {
    throw std::invalid_argument(knob + ": bad number '" + tok + "'");
  }
  return v;
}

}  // namespace

void validate_fault_config(const FaultConfig& cfg) {
  check_rate("faultrate= (link_error_rate)", cfg.link_error_rate);
  check_rate("faultdrop= (response_drop_rate)", cfg.response_drop_rate);
  check_rate("faultstall= (vault_stall_rate)", cfg.vault_stall_rate);
  if (cfg.burst_length == 0) {
    throw std::invalid_argument(
        "burstlen= (burst_length) must be >= 1, got 0");
  }
  for (const FaultEvent& e : cfg.timeline) {
    if ((e.kind == FaultEventKind::kLinkDown ||
         e.kind == FaultEventKind::kLinkUp) &&
        e.a == e.b) {
      std::ostringstream os;
      os << to_string(e.kind) << "= self-link " << e.a << "-" << e.b
         << " at cycle " << e.cycle << " is malformed";
      throw std::invalid_argument(os.str());
    }
  }
}

std::vector<FaultEvent> parse_fault_events(const std::string& knob,
                                           FaultEventKind kind,
                                           const std::string& spec) {
  std::vector<FaultEvent> events;
  std::stringstream ss(spec);
  std::string entry;
  while (std::getline(ss, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument(knob + "=" + entry +
                                  " (expected CYCLE:OPERANDS)");
    }
    FaultEvent e;
    e.kind = kind;
    e.cycle = parse_number(knob + "=" + entry, entry.substr(0, colon));
    const std::string ops = entry.substr(colon + 1);
    switch (kind) {
      case FaultEventKind::kLinkDown:
      case FaultEventKind::kLinkUp: {
        const std::size_t dash = ops.find('-');
        if (dash == std::string::npos) {
          throw std::invalid_argument(knob + "=" + entry +
                                      " (expected CYCLE:CUBE-CUBE)");
        }
        e.a = static_cast<std::uint32_t>(
            parse_number(knob + "=" + entry, ops.substr(0, dash)));
        e.b = static_cast<std::uint32_t>(
            parse_number(knob + "=" + entry, ops.substr(dash + 1)));
        break;
      }
      case FaultEventKind::kVaultDown: {
        const std::size_t dot = ops.find('.');
        if (dot == std::string::npos) {
          throw std::invalid_argument(knob + "=" + entry +
                                      " (expected CYCLE:CUBE.VAULT)");
        }
        e.a = static_cast<std::uint32_t>(
            parse_number(knob + "=" + entry, ops.substr(0, dot)));
        e.b = static_cast<std::uint32_t>(
            parse_number(knob + "=" + entry, ops.substr(dot + 1)));
        break;
      }
      case FaultEventKind::kCubeDown:
        e.a = static_cast<std::uint32_t>(
            parse_number(knob + "=" + entry, ops));
        break;
    }
    events.push_back(e);
  }
  return events;
}

std::vector<FaultEvent> parse_fault_plan(const std::string& text) {
  std::vector<FaultEvent> events;
  std::stringstream ss(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::stringstream ls(line);
    std::string cycle_tok;
    std::string kind_tok;
    if (!(ls >> cycle_tok)) continue;  // blank / comment-only line
    const std::string where = "faultplan line " + std::to_string(lineno);
    if (!(ls >> kind_tok)) {
      throw std::invalid_argument(where + ": missing event kind");
    }
    FaultEvent e;
    e.cycle = parse_number(where, cycle_tok);
    std::string a_tok;
    std::string b_tok;
    if (kind_tok == "linkdown" || kind_tok == "linkup") {
      e.kind = kind_tok == "linkdown" ? FaultEventKind::kLinkDown
                                      : FaultEventKind::kLinkUp;
      if (!(ls >> a_tok >> b_tok)) {
        throw std::invalid_argument(where + ": expected '" + kind_tok +
                                    " A B'");
      }
      e.a = static_cast<std::uint32_t>(parse_number(where, a_tok));
      e.b = static_cast<std::uint32_t>(parse_number(where, b_tok));
    } else if (kind_tok == "vaultdown") {
      e.kind = FaultEventKind::kVaultDown;
      if (!(ls >> a_tok >> b_tok)) {
        throw std::invalid_argument(where + ": expected 'vaultdown CUBE "
                                            "VAULT'");
      }
      e.a = static_cast<std::uint32_t>(parse_number(where, a_tok));
      e.b = static_cast<std::uint32_t>(parse_number(where, b_tok));
    } else if (kind_tok == "cubedown") {
      e.kind = FaultEventKind::kCubeDown;
      if (!(ls >> a_tok)) {
        throw std::invalid_argument(where + ": expected 'cubedown CUBE'");
      }
      e.a = static_cast<std::uint32_t>(parse_number(where, a_tok));
    } else {
      throw std::invalid_argument(where + ": unknown event kind '" +
                                  kind_tok + "'");
    }
    std::string extra;
    if (ls >> extra) {
      throw std::invalid_argument(where + ": trailing token '" + extra +
                                  "'");
    }
    // Plans are an authored timeline, so hold them to authoring standards:
    // cycles must be non-decreasing and an event may appear only once.
    // (The injector would stable_sort a shuffled plan into *some* order,
    // but silently reordering or double-firing is never what the author
    // meant - found while scoping the soak sampler domains.)
    if (!events.empty() && e.cycle < events.back().cycle) {
      throw std::invalid_argument(
          where + ": out-of-order event (cycle " + std::to_string(e.cycle) +
          " after cycle " + std::to_string(events.back().cycle) + ")");
    }
    const auto normalized = [](FaultEvent ev) {
      const bool link = ev.kind == FaultEventKind::kLinkDown ||
                        ev.kind == FaultEventKind::kLinkUp;
      if (link && ev.b < ev.a) std::swap(ev.a, ev.b);  // links are undirected
      return ev;
    };
    const FaultEvent key = normalized(e);
    for (const FaultEvent& prev : events) {
      const FaultEvent p = normalized(prev);
      if (p.cycle == key.cycle && p.kind == key.kind && p.a == key.a &&
          p.b == key.b) {
        throw std::invalid_argument(where + ": duplicate event");
      }
    }
    events.push_back(e);
  }
  return events;
}

FaultInjector::FaultInjector(const FaultConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed) {
  validate_fault_config(cfg_);
  // Stable sort: same-cycle events keep their configured order, so a
  // timeline is deterministic however the knobs spelled it.
  std::stable_sort(cfg_.timeline.begin(), cfg_.timeline.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.cycle < y.cycle;
                   });
}

bool FaultInjector::decide(double rate, std::uint32_t& burst_left,
                           std::uint64_t& counter) {
  if (burst_left > 0) {
    --burst_left;
    ++counter;
    return true;
  }
  // A zero-rate category never draws, so enabling one fault kind does not
  // perturb the stream positions of the others' disabled categories.
  if (rate <= 0.0) return false;
  if (rng_.uniform() >= rate) return false;
  if (cfg_.burst_length > 1) burst_left = cfg_.burst_length - 1;
  ++counter;
  return true;
}

bool FaultInjector::corrupt_request() {
  return decide(cfg_.link_error_rate, link_burst_left_, stats_.link_errors);
}

bool FaultInjector::drop_response() {
  return decide(cfg_.response_drop_rate, drop_burst_left_,
                stats_.response_drops);
}

bool FaultInjector::stall_vault() {
  return decide(cfg_.vault_stall_rate, stall_burst_left_,
                stats_.vault_stalls);
}

void FaultInjector::apply_event(const FaultEvent& e) {
  switch (e.kind) {
    case FaultEventKind::kLinkDown: {
      const auto key = norm_link(e.a, e.b);
      if (dead_links_.insert(key).second) {
        link_down_since_.emplace_back(key, e.cycle);
      }
      break;
    }
    case FaultEventKind::kLinkUp: {
      const auto key = norm_link(e.a, e.b);
      if (dead_links_.erase(key) != 0) {
        for (auto it = link_down_since_.begin();
             it != link_down_since_.end(); ++it) {
          if (it->first == key) {
            ++repairs_;
            repair_cycles_total_ += e.cycle - it->second;
            link_down_since_.erase(it);
            break;
          }
        }
      }
      break;
    }
    case FaultEventKind::kVaultDown:
      dead_vaults_.insert({e.a, e.b});
      break;
    case FaultEventKind::kCubeDown:
      dead_cubes_.insert(e.a);
      break;
  }
}

bool FaultInjector::poll(Cycle now) {
  bool fired = false;
  while (timeline_idx_ < cfg_.timeline.size() &&
         cfg_.timeline[timeline_idx_].cycle <= now) {
    apply_event(cfg_.timeline[timeline_idx_]);
    ++timeline_idx_;
    fired = true;
  }
  return fired;
}

Cycle FaultInjector::next_timeline_cycle(Cycle now) const {
  if (timeline_idx_ >= cfg_.timeline.size()) return kNeverCycle;
  return std::max(cfg_.timeline[timeline_idx_].cycle, now);
}

void FaultInjector::checkpoint_save(BinWriter& w) const {
  w.tag("FLTI");
  w.u64(stats_.link_errors);
  w.u64(stats_.response_drops);
  w.u64(stats_.vault_stalls);
  const Rng::State st = rng_.state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.u32(link_burst_left_);
  w.u32(drop_burst_left_);
  w.u32(stall_burst_left_);
  w.u64(timeline_idx_);
}

void FaultInjector::checkpoint_load(BinReader& r) {
  r.tag("FLTI");
  stats_.link_errors = r.u64();
  stats_.response_drops = r.u64();
  stats_.vault_stalls = r.u64();
  Rng::State st{};
  for (std::uint64_t& word : st.s) word = r.u64();
  rng_.set_state(st);
  link_burst_left_ = r.u32();
  drop_burst_left_ = r.u32();
  stall_burst_left_ = r.u32();
  const std::uint64_t fired = r.u64();
  if (fired > cfg_.timeline.size()) {
    throw SnapshotError("FLTI: timeline index exceeds configured timeline");
  }
  // Rebuild derived dead-state by replaying the already-fired prefix;
  // events carry their scheduled cycles, so MTTR accounting is exact.
  timeline_idx_ = 0;
  dead_links_.clear();
  dead_vaults_.clear();
  dead_cubes_.clear();
  link_down_since_.clear();
  repairs_ = 0;
  repair_cycles_total_ = 0;
  while (timeline_idx_ < fired) {
    apply_event(cfg_.timeline[timeline_idx_]);
    ++timeline_idx_;
  }
}

}  // namespace pacsim
