// Deterministic fault injection for the coalescer <-> HMC boundary.
//
// The injector owns a single xoshiro256** stream seeded from
// FaultConfig::seed, and every fault decision is one draw made at a
// deterministic point in the simulation's event order (request link
// traversal, response completion, vault dispatch). Two runs with the same
// workload seed and the same fault seed therefore inject the identical
// fault pattern - the property the resilience acceptance tests rely on.
//
// On top of the stochastic transient model sits a deterministic hard-failure
// timeline: a sorted list of scheduled FaultEvents (link-down, link-up,
// vault-down, cube-down) that fire at exact cycles via poll(). The injector
// is the system-wide holder of hard failure state - dead links, dead vaults,
// dead cubes, and the fabric-reported unreachable set - which DevicePort,
// MultiCubeBackend and PageTable all query. next_timeline_cycle() keeps
// event-horizon fast-forwarding exact across scheduled events, and the
// timeline fire index is checkpointed so a restored run replays the same
// failure history bit-identically.
//
// A default-constructed FaultConfig has every rate at zero and an empty
// timeline; components hold a `FaultInjector*` that is simply null in that
// case, so the fault-free configuration pays no RNG draws and stays
// bit-identical to a build without the subsystem.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

/// Scheduled hard-failure event kinds. Links repair (kLinkUp); vault and
/// cube deaths are permanent for the remainder of the run.
enum class FaultEventKind : std::uint8_t {
  kLinkDown = 0,  ///< the bidirectional link between cubes a and b dies
  kLinkUp = 1,    ///< a previously-dead link comes back (repair)
  kVaultDown = 2, ///< vault b of cube a dies
  kCubeDown = 3,  ///< cube a dies (no new requests admitted)
};

[[nodiscard]] const char* to_string(FaultEventKind kind);

/// One scheduled hard event. `a`/`b` are kind-dependent operands: link
/// events use (cube a, cube b); vault-down uses (cube, vault); cube-down
/// uses (cube, unused).
struct FaultEvent {
  Cycle cycle = 0;
  FaultEventKind kind = FaultEventKind::kLinkDown;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// What happens when a request cannot be delivered (retry exhaustion, dead
/// vault/cube, unreachable destination).
enum class FailPolicy : std::uint8_t {
  kAbort = 0,    ///< legacy behavior: verifier violation / std::runtime_error
  kContain = 1,  ///< synthesize a poisoned completion; the run continues
};

[[nodiscard]] FailPolicy parse_fail_policy(const std::string& name);
[[nodiscard]] const char* to_string(FailPolicy policy);

/// Error model for the SerDes links and vault controllers. Rates are
/// per-decision probabilities in [0, 1].
struct FaultConfig {
  /// P(request packet fails its link CRC) per submitted packet. The device
  /// NACKs the packet after its link traversal; the requester retransmits.
  double link_error_rate = 0.0;
  /// P(response packet is lost) per completed request. The requester only
  /// notices via its response timeout ("poisoned response" drop).
  double response_drop_rate = 0.0;
  /// P(transient vault stall) per vault dispatch attempt: the vault
  /// controller goes dark for `vault_stall_cycles` (models ECC scrubs and
  /// vault-local retry storms; adds latency but loses nothing).
  double vault_stall_rate = 0.0;
  /// Consecutive faults injected once a fault fires (burst errors): a CRC
  /// hit of burst_length 3 also corrupts the next two packets on the path.
  std::uint32_t burst_length = 1;
  Cycle vault_stall_cycles = 64;
  std::uint64_t seed = 0xFA017ULL;

  /// Scheduled hard failures, fired in cycle order (stable for ties).
  std::vector<FaultEvent> timeline;
  /// Undeliverable-request policy (only meaningful once hard events or
  /// retry exhaustion can occur).
  FailPolicy fail_policy = FailPolicy::kAbort;
  /// Spare frames reserved for sparing-based page remap once a vault or
  /// cube dies (see PageTable::enable_sparing).
  std::uint64_t spare_pages = 4096;
  /// Modeled cost of migrating one page to the spare region: the touching
  /// core stalls this many cycles before the access retries.
  Cycle page_migrate_cycles = 512;

  [[nodiscard]] bool enabled() const {
    return link_error_rate > 0.0 || response_drop_rate > 0.0 ||
           vault_stall_rate > 0.0 || hard_enabled();
  }
  /// True when a hard-failure timeline is configured.
  [[nodiscard]] bool hard_enabled() const { return !timeline.empty(); }
};

/// Throws std::invalid_argument (one line, naming the offending knob) when
/// a rate is outside [0, 1], burst_length is 0, or a timeline event is
/// malformed (link a == b). Called by the FaultInjector constructor and by
/// the bench CLI front-end.
void validate_fault_config(const FaultConfig& cfg);

/// Parse a comma-separated CLI event list, e.g. `linkdown=1000:0-1,5000:1-2`,
/// `vaultdown=2000:1.3` (cube 1, vault 3), `cubedown=4000:2`,
/// `linkup=9000:0-1`. Throws std::invalid_argument naming `knob` on any
/// malformed entry.
[[nodiscard]] std::vector<FaultEvent> parse_fault_events(
    const std::string& knob, FaultEventKind kind, const std::string& spec);

/// Parse a faultplan file body: one event per line,
/// `CYCLE linkdown|linkup A B` / `CYCLE vaultdown CUBE VAULT` /
/// `CYCLE cubedown CUBE`, with '#' comments and blank lines ignored.
/// Throws std::invalid_argument naming the line number.
[[nodiscard]] std::vector<FaultEvent> parse_fault_plan(
    const std::string& text);

struct FaultStats {
  std::uint64_t link_errors = 0;     ///< request packets NACKed
  std::uint64_t response_drops = 0;  ///< response packets lost
  std::uint64_t vault_stalls = 0;    ///< transient vault stalls injected
  [[nodiscard]] std::uint64_t total() const {
    return link_errors + response_drops + vault_stalls;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg);

  /// Roll the link-CRC model for one submitted request packet.
  [[nodiscard]] bool corrupt_request();
  /// Roll the response-loss model for one completed request.
  [[nodiscard]] bool drop_response();
  /// Roll the transient-stall model for one vault dispatch attempt.
  [[nodiscard]] bool stall_vault();

  [[nodiscard]] Cycle stall_cycles() const { return cfg_.vault_stall_cycles; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  // --- hard-failure timeline ---

  /// Fire every scheduled event with cycle <= now (in timeline order).
  /// Returns true when at least one event fired this call, so the caller
  /// can recompute routes / degradation accounting.
  bool poll(Cycle now);
  /// Exact cycle of the next unfired scheduled event (clamped to >= now),
  /// or kNeverCycle - the fast-forward bound that keeps poll() exact.
  [[nodiscard]] Cycle next_timeline_cycle(Cycle now) const;

  [[nodiscard]] bool hard_active() const { return cfg_.hard_enabled(); }
  /// True once any hard state exists (cheap pre-check for hot paths).
  [[nodiscard]] bool any_dead() const {
    return !dead_links_.empty() || !dead_vaults_.empty() ||
           !dead_cubes_.empty() || !unreachable_.empty();
  }
  /// Link liveness is direction-agnostic: a SerDes link dies whole.
  [[nodiscard]] bool link_dead(std::uint32_t a, std::uint32_t b) const {
    return dead_links_.count(norm_link(a, b)) != 0;
  }
  [[nodiscard]] bool cube_dead(std::uint32_t cube) const {
    return dead_cubes_.count(cube) != 0;
  }
  [[nodiscard]] bool vault_dead(std::uint32_t cube,
                                std::uint32_t vault) const {
    return dead_vaults_.count({cube, vault}) != 0;
  }
  /// Fabric-reported: cube alive but no surviving route from the host.
  [[nodiscard]] bool cube_unreachable(std::uint32_t cube) const {
    return unreachable_.count(cube) != 0;
  }
  /// Installed by the fabric after each route recompute (and after
  /// checkpoint restore); not itself checkpointed.
  void set_unreachable(std::vector<std::uint32_t> cubes) {
    unreachable_ = std::set<std::uint32_t>(cubes.begin(), cubes.end());
  }

  [[nodiscard]] std::uint64_t timeline_fired() const { return timeline_idx_; }
  [[nodiscard]] std::uint64_t repairs() const { return repairs_; }
  [[nodiscard]] std::uint64_t repair_cycles_total() const {
    return repair_cycles_total_;
  }
  [[nodiscard]] const std::set<std::pair<std::uint32_t, std::uint32_t>>&
  dead_links() const {
    return dead_links_;
  }
  [[nodiscard]] const std::set<std::pair<std::uint32_t, std::uint32_t>>&
  dead_vaults() const {
    return dead_vaults_;
  }
  [[nodiscard]] const std::set<std::uint32_t>& dead_cubes() const {
    return dead_cubes_;
  }
  [[nodiscard]] const std::set<std::uint32_t>& unreachable_cubes() const {
    return unreachable_;
  }

  /// Mid-stream RNG position, counters, burst state and the timeline fire
  /// index all persist, so a restored run draws the identical fault pattern
  /// (and replays the identical failure history) the uninterrupted run
  /// would have from this point on. Derived dead-state is rebuilt by
  /// replaying timeline[0, idx) - events carry their own cycles, so repair
  /// accounting restores exactly.
  void checkpoint_save(BinWriter& w) const;
  void checkpoint_load(BinReader& r);

 private:
  static std::pair<std::uint32_t, std::uint32_t> norm_link(std::uint32_t a,
                                                           std::uint32_t b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  /// One decision: either continue an active burst or roll `rate`. A fresh
  /// fault arms `burst_left` so the next `burst_length - 1` decisions of
  /// the same kind fault without rolling.
  bool decide(double rate, std::uint32_t& burst_left, std::uint64_t& counter);

  /// Apply one timeline event's effect on the derived dead-state.
  void apply_event(const FaultEvent& e);

  FaultConfig cfg_;
  FaultStats stats_;
  Rng rng_;
  std::uint32_t link_burst_left_ = 0;
  std::uint32_t drop_burst_left_ = 0;
  std::uint32_t stall_burst_left_ = 0;

  std::uint64_t timeline_idx_ = 0;  ///< events fired so far
  std::set<std::pair<std::uint32_t, std::uint32_t>> dead_links_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> dead_vaults_;
  std::set<std::uint32_t> dead_cubes_;
  std::set<std::uint32_t> unreachable_;  ///< fabric-reported, not saved
  /// Cycle each currently-dead link went down (for MTTR on repair).
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>, Cycle>>
      link_down_since_;
  std::uint64_t repairs_ = 0;
  std::uint64_t repair_cycles_total_ = 0;
};

}  // namespace pacsim
