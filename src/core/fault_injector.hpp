// Deterministic fault injection for the coalescer <-> HMC boundary.
//
// The injector owns a single xoshiro256** stream seeded from
// FaultConfig::seed, and every fault decision is one draw made at a
// deterministic point in the simulation's event order (request link
// traversal, response completion, vault dispatch). Two runs with the same
// workload seed and the same fault seed therefore inject the identical
// fault pattern - the property the resilience acceptance tests rely on.
//
// A default-constructed FaultConfig has every rate at zero; components hold
// a `FaultInjector*` that is simply null in that case, so the fault-free
// configuration pays no RNG draws and stays bit-identical to a build
// without the subsystem.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

/// Error model for the SerDes links and vault controllers. Rates are
/// per-decision probabilities in [0, 1].
struct FaultConfig {
  /// P(request packet fails its link CRC) per submitted packet. The device
  /// NACKs the packet after its link traversal; the requester retransmits.
  double link_error_rate = 0.0;
  /// P(response packet is lost) per completed request. The requester only
  /// notices via its response timeout ("poisoned response" drop).
  double response_drop_rate = 0.0;
  /// P(transient vault stall) per vault dispatch attempt: the vault
  /// controller goes dark for `vault_stall_cycles` (models ECC scrubs and
  /// vault-local retry storms; adds latency but loses nothing).
  double vault_stall_rate = 0.0;
  /// Consecutive faults injected once a fault fires (burst errors): a CRC
  /// hit of burst_length 3 also corrupts the next two packets on the path.
  std::uint32_t burst_length = 1;
  Cycle vault_stall_cycles = 64;
  std::uint64_t seed = 0xFA017ULL;

  [[nodiscard]] bool enabled() const {
    return link_error_rate > 0.0 || response_drop_rate > 0.0 ||
           vault_stall_rate > 0.0;
  }
};

struct FaultStats {
  std::uint64_t link_errors = 0;     ///< request packets NACKed
  std::uint64_t response_drops = 0;  ///< response packets lost
  std::uint64_t vault_stalls = 0;    ///< transient vault stalls injected
  [[nodiscard]] std::uint64_t total() const {
    return link_errors + response_drops + vault_stalls;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& cfg);

  /// Roll the link-CRC model for one submitted request packet.
  [[nodiscard]] bool corrupt_request();
  /// Roll the response-loss model for one completed request.
  [[nodiscard]] bool drop_response();
  /// Roll the transient-stall model for one vault dispatch attempt.
  [[nodiscard]] bool stall_vault();

  [[nodiscard]] Cycle stall_cycles() const { return cfg_.vault_stall_cycles; }
  [[nodiscard]] const FaultConfig& config() const { return cfg_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// Mid-stream RNG position, counters, and burst state all persist, so a
  /// restored run draws the identical fault pattern the uninterrupted run
  /// would have from this point on.
  void checkpoint_save(BinWriter& w) const {
    w.tag("FLTI");
    w.u64(stats_.link_errors);
    w.u64(stats_.response_drops);
    w.u64(stats_.vault_stalls);
    const Rng::State st = rng_.state();
    for (const std::uint64_t word : st.s) w.u64(word);
    w.u32(link_burst_left_);
    w.u32(drop_burst_left_);
    w.u32(stall_burst_left_);
  }
  void checkpoint_load(BinReader& r) {
    r.tag("FLTI");
    stats_.link_errors = r.u64();
    stats_.response_drops = r.u64();
    stats_.vault_stalls = r.u64();
    Rng::State st{};
    for (std::uint64_t& word : st.s) word = r.u64();
    rng_.set_state(st);
    link_burst_left_ = r.u32();
    drop_burst_left_ = r.u32();
    stall_burst_left_ = r.u32();
  }

 private:
  /// One decision: either continue an active burst or roll `rate`. A fresh
  /// fault arms `burst_left` so the next `burst_length - 1` decisions of
  /// the same kind fault without rolling.
  bool decide(double rate, std::uint32_t& burst_left, std::uint64_t& counter);

  FaultConfig cfg_;
  FaultStats stats_;
  Rng rng_;
  std::uint32_t link_burst_left_ = 0;
  std::uint32_t drop_burst_left_ = 0;
  std::uint32_t stall_burst_left_ = 0;
};

}  // namespace pacsim
