#include "core/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"

namespace pacsim {
namespace {

constexpr char kMagic[8] = {'P', 'A', 'C', 'T', 'R', 'C', 'E', '1'};

template <typename T>
void put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace file truncated");
  return value;
}

}  // namespace

void save_traces(const std::string& path, const std::vector<Trace>& traces) {
  // Render to memory, then temp-file + rename: a warm-tier trace file is
  // read concurrently by parallel sweep workers, so a partially written
  // file must never be visible under the final name.
  std::ostringstream out(std::ios::binary);
  out.write(kMagic, sizeof(kMagic));
  put<std::uint32_t>(out, static_cast<std::uint32_t>(traces.size()));
  for (const Trace& trace : traces) {
    put<std::uint64_t>(out, trace.size());
    for (const TraceOp& op : trace) {
      put<std::uint64_t>(out, op.vaddr);
      put<std::uint32_t>(out, op.arg);
      put<std::uint8_t>(out, static_cast<std::uint8_t>(op.kind));
    }
  }
  write_file_atomic(path, out.str());
}

std::vector<Trace> load_traces(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("not a pacsim trace file: " + path);
  }
  const auto cores = get<std::uint32_t>(in);
  if (cores > 4096) throw std::runtime_error("implausible core count");
  std::vector<Trace> traces(cores);
  for (Trace& trace : traces) {
    const auto count = get<std::uint64_t>(in);
    if (count > (1ULL << 32)) throw std::runtime_error("implausible trace");
    trace.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      TraceOp op;
      op.vaddr = get<std::uint64_t>(in);
      op.arg = get<std::uint32_t>(in);
      const auto kind = get<std::uint8_t>(in);
      if (kind > static_cast<std::uint8_t>(OpKind::kCompute)) {
        throw std::runtime_error("bad op kind in trace file");
      }
      op.kind = static_cast<OpKind>(kind);
      trace.push_back(op);
    }
  }
  return traces;
}

}  // namespace pacsim
