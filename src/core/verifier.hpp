// Runtime verification layer: online protocol invariant checking over the
// raw-request lifecycle.
//
// The paper's correctness claim is that coalescing is lossless - every LLC
// miss/write-back is answered exactly once, with fences and atomics ordered
// correctly (section 3). The Verifier makes that claim checkable on every
// run: lightweight hooks in the System, the four controllers, the retry
// port and the device feed it lifecycle events, and it enforces
//
//   - conservation:     every issued raw retires exactly once (fences
//                       retire at accept); no duplicate or unknown
//                       retirements; dispatched packets cover the raw
//                       addresses they claim to carry,
//   - bounded latency:  no open request older than a configurable budget,
//   - fence ordering:   nothing is accepted while a PAC fence drains,
//   - atomic sanity:    an atomic packet carries exactly one raw,
//   - retry sanity:     a request past retrymax is a structured failure,
//
// plus a no-progress watchdog driven from System::run (no lifecycle event
// for N cycles while work is outstanding = livelock/deadlock).
//
// Levels: kOff compiles in but costs nothing (the System never constructs a
// Verifier, so every hook site is a single null check); kCounters keeps
// aggregate counters and the watchdog (<5% throughput); kFull adds the
// per-request ledger, timelines and the byte-coverage/age scans.
//
// On any violation the Verifier writes a forensics dump - stuck request
// timelines, per-component queue occupancies, active stream/block-map state
// - crash-safely (temp file + rename) and throws VerificationError carrying
// the dump path.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "core/request_ledger.hpp"
#include "mem/request.hpp"

namespace pacsim {

enum class VerifyLevel : std::uint8_t { kOff = 0, kCounters, kFull };

[[nodiscard]] const char* to_string(VerifyLevel level);
/// Parse "off" / "counters" / "full"; throws std::invalid_argument on
/// anything else (a typoed verify= knob must never silently disable).
[[nodiscard]] VerifyLevel parse_verify_level(const std::string& name);

struct VerifyConfig {
  VerifyLevel level = VerifyLevel::kOff;
  /// No-progress watchdog: fail when no lifecycle event happens for this
  /// many cycles while requests are outstanding. 0 disables. The default
  /// clears the worst legitimate quiet stretch (a retry ladder's capped
  /// backoff, 2^20 cycles) with margin.
  Cycle watchdog_cycles = 4'000'000;
  /// Bounded-latency budget (kFull): fail when an open request is older
  /// than this. 0 disables. The default covers a full retry ladder
  /// (8 doubling response timeouts from 8192) with margin.
  Cycle max_request_age = 16'000'000;
  /// How often the kFull age scan runs (it is O(outstanding)).
  Cycle age_check_period = 1'000'000;
  /// Where forensics dumps land (created on demand).
  std::string forensics_dir = "results/forensics";
  /// How many stuck-request timelines a dump includes (oldest first).
  std::size_t forensics_timeline_limit = 8;
};

/// Aggregate lifecycle counters of one run; RunResult carries a snapshot
/// and the report writes it as the "verification" JSON block.
struct VerifyStats {
  bool enabled = false;
  VerifyLevel level = VerifyLevel::kOff;
  std::uint64_t issued = 0;           ///< raw requests created
  std::uint64_t accepted = 0;         ///< admitted by the coalescer
  std::uint64_t merged = 0;           ///< merge events (a raw may merge once)
  std::uint64_t device_requests = 0;  ///< packets submitted to the port
  std::uint64_t dispatched_raws = 0;  ///< raw ids carried by those packets
  std::uint64_t responses = 0;        ///< device responses delivered
  std::uint64_t responded_raws = 0;   ///< raw ids covered by responses
  std::uint64_t retired = 0;          ///< raws satisfied back to the system
  std::uint64_t fences = 0;           ///< fence raws (retire at accept)
  std::uint64_t nacks = 0;            ///< link NACKs observed
  std::uint64_t retransmissions = 0;  ///< packet retransmits observed
  /// Raws declared lost via poisoned completions (failpolicy=contain).
  /// These close the conservation equation as an explicit loss term:
  /// issued == retired + fences + poisoned.
  std::uint64_t poisoned = 0;
  std::uint64_t violations = 0;       ///< 0 on any run that returned
};

/// Thrown on any invariant violation; `forensics_path()` names the dump
/// written just before the throw ("" when the dump itself failed).
class VerificationError : public std::runtime_error {
 public:
  VerificationError(const std::string& what, std::string forensics_path)
      : std::runtime_error(what),
        forensics_path_(std::move(forensics_path)) {}
  [[nodiscard]] const std::string& forensics_path() const {
    return forensics_path_;
  }

 private:
  std::string forensics_path_;
};

class Verifier {
 public:
  explicit Verifier(const VerifyConfig& cfg);

  // --- Lifecycle hooks (every hook counts as watchdog progress). ---
  void on_issued(const MemRequest& req, Cycle now);
  void on_accepted(const MemRequest& req, Cycle now);
  void on_merged(std::uint64_t raw_id, Cycle now);
  void on_dispatched(const DeviceRequest& req, Cycle now);
  void on_nack(const DeviceRequest& req, Cycle now);
  void on_retransmit(const DeviceRequest& req, std::uint32_t attempts,
                     Cycle now);
  void on_response_dropped(const DeviceRequest& req, Cycle now);
  void on_response(const DeviceResponse& rsp, Cycle now);
  void on_retired(std::uint64_t raw_id, Cycle now);
  /// A raw carried by a poisoned completion is declared lost instead of
  /// retired (failpolicy=contain): counted separately so the conservation
  /// equation closes without a spurious violation.
  void on_poisoned(std::uint64_t raw_id, Cycle now);

  // --- Fence ordering. ---
  /// PAC's drain window: begin at fence accept, end when the drain clears.
  /// Any non-fence accept inside the window is a violation.
  void on_fence_begin(std::uint64_t fence_raw_id, Cycle now);
  void on_fence_end(Cycle now);
  /// Controllers whose dispatch is immediate/in-order (the baselines) mark
  /// the fence without opening a window.
  void on_fence_passthrough(std::uint64_t fence_raw_id, Cycle now);

  // --- Retry-buffer sanity: always a structured failure. ---
  [[noreturn]] void on_retry_exhausted(const DeviceRequest& req,
                                       std::uint32_t attempts,
                                       std::uint32_t max_retries, Cycle now);

  // --- Watchdog / periodic scans, driven from System::run. ---
  [[nodiscard]] bool watchdog_due(Cycle now) const {
    return cfg_.watchdog_cycles != 0 &&
           now >= last_progress_ + cfg_.watchdog_cycles;
  }
  /// Called when the watchdog was due but no work is outstanding: an idle
  /// system is progress by definition (keeps fast-forward jumps bounded
  /// without ever looping on a stale deadline).
  void note_progress(Cycle now) { last_progress_ = now; }
  [[noreturn]] void watchdog_fire(Cycle now, const std::string& reason);
  [[nodiscard]] bool age_check_due(Cycle now) const {
    return next_age_check_ != kNeverCycle && now >= next_age_check_;
  }
  void check_ages(Cycle now);
  /// Clamp for event-horizon jumps: the earliest cycle a watchdog or age
  /// check must observe. Always > `now` right after the due checks ran.
  [[nodiscard]] Cycle next_deadline(Cycle now) const;

  /// End-of-run invariants: conservation equation, empty ledger, closed
  /// fence window. Throws VerificationError on any failure.
  void final_check(Cycle now);

  /// The System installs a provider that renders per-component occupancy
  /// state as a JSON object for forensics dumps.
  void set_state_provider(std::function<std::string()> provider) {
    state_provider_ = std::move(provider);
  }

  [[nodiscard]] VerifyStats stats_snapshot() const { return stats_; }
  [[nodiscard]] const VerifyConfig& config() const { return cfg_; }
  [[nodiscard]] const RequestLedger& ledger() const { return ledger_; }
  [[nodiscard]] bool fence_active() const { return fence_active_; }

  /// Checkpoints are taken at quiescent points (no outstanding requests),
  /// so the ledger's open-request map is empty by construction; only the
  /// counters, the kFull retired-id set, and the watchdog/age-check clocks
  /// persist. The fence window is closed at quiescence too.
  void checkpoint_save(BinWriter& w) const {
    w.tag("VRFY");
    w.u64(stats_.issued);
    w.u64(stats_.accepted);
    w.u64(stats_.merged);
    w.u64(stats_.device_requests);
    w.u64(stats_.dispatched_raws);
    w.u64(stats_.responses);
    w.u64(stats_.responded_raws);
    w.u64(stats_.retired);
    w.u64(stats_.fences);
    w.u64(stats_.nacks);
    w.u64(stats_.retransmissions);
    w.u64(stats_.poisoned);
    std::vector<std::uint64_t> retired(retired_ids_.begin(),
                                       retired_ids_.end());
    std::sort(retired.begin(), retired.end());
    w.u64(retired.size());
    for (const std::uint64_t id : retired) w.u64(id);
    w.u64(last_progress_);
    w.u64(next_age_check_);
  }
  void checkpoint_load(BinReader& r) {
    r.tag("VRFY");
    stats_.issued = r.u64();
    stats_.accepted = r.u64();
    stats_.merged = r.u64();
    stats_.device_requests = r.u64();
    stats_.dispatched_raws = r.u64();
    stats_.responses = r.u64();
    stats_.responded_raws = r.u64();
    stats_.retired = r.u64();
    stats_.fences = r.u64();
    stats_.nacks = r.u64();
    stats_.retransmissions = r.u64();
    stats_.poisoned = r.u64();
    retired_ids_.clear();
    const std::uint64_t n = r.u64();
    retired_ids_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) retired_ids_.insert(r.u64());
    last_progress_ = r.u64();
    next_age_check_ = r.u64();
  }

 private:
  /// Record the violation, write the forensics dump, throw.
  [[noreturn]] void fail(const std::string& kind, const std::string& message,
                         Cycle now);
  [[nodiscard]] std::string render_forensics(const std::string& kind,
                                             const std::string& message,
                                             Cycle now) const;

  VerifyConfig cfg_;
  bool full_;  ///< cfg_.level == kFull (ledger active)
  VerifyStats stats_;
  RequestLedger ledger_;
  /// kFull only: retired ids, to tell a duplicate retirement apart from a
  /// retirement of a never-issued id.
  std::unordered_set<std::uint64_t> retired_ids_;
  bool fence_active_ = false;
  std::uint64_t fence_raw_ = 0;
  Cycle last_progress_ = 0;
  Cycle next_age_check_ = kNeverCycle;
  std::function<std::string()> state_provider_;
};

}  // namespace pacsim
