// Binary trace files: persist per-core op traces so externally generated
// streams (e.g. from a real Spike run) can drive the simulated system, and
// expensive trace generation can be cached across bench runs.
//
// Format (little-endian):
//   8 bytes magic "PACTRCE1"
//   u32 core count
//   per core: u64 op count, then ops as { u64 vaddr, u32 arg, u8 kind }.
#pragma once

#include <string>
#include <vector>

#include "core/trace.hpp"

namespace pacsim {

/// Write `traces` to `path`; throws std::runtime_error on I/O failure.
void save_traces(const std::string& path, const std::vector<Trace>& traces);

/// Read traces written by save_traces; throws std::runtime_error on I/O
/// failure or malformed content.
std::vector<Trace> load_traces(const std::string& path);

}  // namespace pacsim
