// Shared immutable trace store: content-addressed memoization of workload
// trace generation. The paper's evaluation simulates the same (suite,
// WorkloadConfig) trace set under several coalescer configurations; the
// store guarantees each distinct key is generated exactly once per process
// (and, with a warm directory, once per machine) while every consumer holds
// a zero-copy std::shared_ptr<const TraceSet> handle.
//
// Thread safety: get()/release()/stats() may be called concurrently from
// any thread. Concurrent get()s of the same key block on a per-entry
// once_flag, so exactly one caller runs the generator; the rest reuse the
// freshly published set and are counted as hits.
//
// Tiers:
//   memory  - resident entries, optionally LRU-capped by max_resident_bytes
//             (evicted entries stay alive for any outstanding handles);
//   warm    - optional on-disk tier in Options::warm_dir using the trace_io
//             binary format, keyed by TraceKey::filename(). A miss checks
//             the warm file before generating and persists fresh results
//             (atomic tmp+rename), so repeated process invocations skip
//             generation entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/trace.hpp"

namespace pacsim {

/// Content address of one generated trace set: the suite's name plus a
/// canonical hash over every generation-relevant WorkloadConfig field
/// (see workload_config_hash in workloads/workload.hpp).
struct TraceKey {
  std::string suite;
  std::uint64_t config_hash = 0;

  friend bool operator==(const TraceKey&, const TraceKey&) = default;

  /// Warm-tier file name: "<suite>-<16 hex digits>.pactrace".
  [[nodiscard]] std::string filename() const;
};

struct TraceKeyHash {
  [[nodiscard]] std::size_t operator()(const TraceKey& key) const;
};

/// Effectiveness counters, all monotonically increasing except
/// bytes_resident (current residency).
struct TraceStoreStats {
  std::uint64_t hits = 0;       ///< served from resident memory
  std::uint64_t warm_hits = 0;  ///< loaded from the on-disk warm tier
  std::uint64_t misses = 0;     ///< ran the generator
  std::uint64_t evictions = 0;  ///< entries dropped (LRU cap or release())
  std::uint64_t bytes_resident = 0;  ///< trace payload bytes held right now
  double generation_seconds = 0.0;   ///< wall time inside generators
  double warm_load_seconds = 0.0;    ///< wall time loading warm-tier files
};

class TraceStore {
 public:
  struct Options {
    std::string warm_dir;  ///< on-disk warm tier directory ("" disables)
    /// LRU residency cap in bytes (0 = unlimited). A single entry larger
    /// than the cap stays resident until a later insertion displaces it.
    std::uint64_t max_resident_bytes = 0;
  };

  /// Where an acquired trace set came from, in increasing cost order.
  enum class Source { kMemory, kWarmTier, kGenerated };

  struct Acquired {
    SharedTraceSet traces;
    /// Wall seconds spent generating or warm-loading; 0.0 on a memory hit.
    double seconds = 0.0;
    Source source = Source::kMemory;
  };

  TraceStore() = default;
  explicit TraceStore(Options opts) : opts_(std::move(opts)) {}

  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  /// Return the trace set for `key`, running `generate` (or loading the
  /// warm-tier file) only if no resident entry exists. `generate` must be
  /// a pure function of the key - the differential tests enforce that
  /// cached results are byte-identical to fresh generation.
  [[nodiscard]] Acquired get(const TraceKey& key,
                             const std::function<TraceSet()>& generate);

  /// Drop the resident entry for `key` (no-op when absent). Outstanding
  /// handles keep the storage alive; a later get() regenerates.
  void release(const TraceKey& key);

  [[nodiscard]] TraceStoreStats stats() const;
  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  struct Entry {
    std::once_flag once;
    SharedTraceSet traces;  ///< published exactly once under `once`
    std::uint64_t bytes = 0;
    std::uint64_t last_use = 0;
    Source origin = Source::kGenerated;
  };

  /// Evict least-recently-used entries until the cap holds, never touching
  /// `keep` (the entry just inserted). Caller holds mu_.
  void enforce_cap_locked(const TraceKey& keep);

  Options opts_;
  mutable std::mutex mu_;
  std::unordered_map<TraceKey, std::shared_ptr<Entry>, TraceKeyHash> entries_;
  TraceStoreStats stats_;
  std::uint64_t use_clock_ = 0;
};

}  // namespace pacsim
