#include "core/request_ledger.hpp"

#include <algorithm>

namespace pacsim {

const char* to_string(ReqStage stage) {
  switch (stage) {
    case ReqStage::kIssued: return "issued";
    case ReqStage::kAccepted: return "accepted";
    case ReqStage::kMerged: return "merged";
    case ReqStage::kFenceMark: return "fence-mark";
    case ReqStage::kDispatched: return "dispatched";
    case ReqStage::kNacked: return "nacked";
    case ReqStage::kRetransmitted: return "retransmitted";
    case ReqStage::kResponseDropped: return "response-dropped";
    case ReqStage::kResponded: return "responded";
    case ReqStage::kRetired: return "retired";
    case ReqStage::kPoisoned: return "poisoned";
  }
  return "?";
}

bool RequestLedger::open(const MemRequest& req, Cycle now) {
  auto [it, inserted] = open_.try_emplace(req.id);
  if (!inserted) return false;
  ReqRecord& rec = it->second;
  rec.paddr = req.paddr;
  rec.bytes = req.bytes;
  rec.op = req.op;
  rec.core = req.core;
  rec.issued_at = now;
  rec.events.push_back(ReqEvent{now, ReqStage::kIssued, 0});
  return true;
}

ReqRecord* RequestLedger::note(std::uint64_t id, ReqStage stage, Cycle now,
                               std::uint64_t aux) {
  auto it = open_.find(id);
  if (it == open_.end()) return nullptr;
  it->second.events.push_back(ReqEvent{now, stage, aux});
  return &it->second;
}

bool RequestLedger::close(std::uint64_t id) { return open_.erase(id) != 0; }

const ReqRecord* RequestLedger::find(std::uint64_t id) const {
  auto it = open_.find(id);
  return it == open_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::uint64_t, const ReqRecord*>> RequestLedger::oldest(
    std::size_t k) const {
  std::vector<std::pair<std::uint64_t, const ReqRecord*>> all;
  all.reserve(open_.size());
  for (const auto& [id, rec] : open_) all.emplace_back(id, &rec);
  const std::size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(take),
                    all.end(), [](const auto& a, const auto& b) {
                      return a.second->issued_at != b.second->issued_at
                                 ? a.second->issued_at < b.second->issued_at
                                 : a.first < b.first;
                    });
  all.resize(take);
  return all;
}

}  // namespace pacsim
