#include "core/trace_store.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <limits>
#include <utility>

#include "core/trace_io.hpp"

namespace pacsim {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

std::string TraceKey::filename() const {
  char hash_hex[17];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(config_hash));
  return suite + "-" + hash_hex + ".pactrace";
}

std::size_t TraceKeyHash::operator()(const TraceKey& key) const {
  // FNV-1a over the suite name, then mix in the config hash.
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : key.suite) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h ^= key.config_hash;
  h *= 1099511628211ULL;
  return static_cast<std::size_t>(h);
}

TraceStore::Acquired TraceStore::get(
    const TraceKey& key, const std::function<TraceSet()>& generate) {
  std::shared_ptr<Entry> entry;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::shared_ptr<Entry>& slot = entries_[key];
    if (!slot) slot = std::make_shared<Entry>();
    slot->last_use = ++use_clock_;
    entry = slot;
  }

  bool filled_here = false;
  double seconds = 0.0;
  std::call_once(entry->once, [&] {
    filled_here = true;
    const Clock::time_point start = Clock::now();
    TraceSet traces;
    bool from_warm = false;
    const std::string warm_path =
        opts_.warm_dir.empty()
            ? std::string{}
            : (std::filesystem::path(opts_.warm_dir) / key.filename())
                  .string();
    if (!warm_path.empty() && std::filesystem::exists(warm_path)) {
      try {
        traces = load_traces(warm_path);
        from_warm = true;
      } catch (const std::exception& e) {
        // A corrupt or stale warm file must never poison results: fall
        // back to fresh generation and overwrite it below.
        std::fprintf(stderr,
                     "[trace_store] warm-tier file %s unusable (%s); "
                     "regenerating\n",
                     warm_path.c_str(), e.what());
      }
    }
    if (!from_warm) {
      traces = generate();
      if (!warm_path.empty()) {
        try {
          std::filesystem::create_directories(opts_.warm_dir);
          const std::string tmp = warm_path + ".tmp";
          save_traces(tmp, traces);
          std::filesystem::rename(tmp, warm_path);
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "[trace_store] cannot persist warm-tier file %s: %s\n",
                       warm_path.c_str(), e.what());
        }
      }
    }
    seconds = seconds_since(start);
    // Publish under mu_: release()/enforce_cap_locked() read these fields
    // from other threads while holding the lock.
    const std::lock_guard<std::mutex> lock(mu_);
    entry->bytes = trace_set_bytes(traces);
    entry->origin = from_warm ? Source::kWarmTier : Source::kGenerated;
    entry->traces = std::make_shared<const TraceSet>(std::move(traces));
  });

  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (filled_here) {
      if (entry->origin == Source::kWarmTier) {
        ++stats_.warm_hits;
        stats_.warm_load_seconds += seconds;
      } else {
        ++stats_.misses;
        stats_.generation_seconds += seconds;
      }
      // The entry may have been release()d while we generated; only count
      // residency (and trigger the cap) when the map still points at it.
      const auto it = entries_.find(key);
      if (it != entries_.end() && it->second == entry) {
        stats_.bytes_resident += entry->bytes;
        enforce_cap_locked(key);
      }
    } else {
      ++stats_.hits;
    }
  }
  return Acquired{entry->traces, filled_here ? seconds : 0.0,
                  filled_here ? entry->origin : Source::kMemory};
}

void TraceStore::enforce_cap_locked(const TraceKey& keep) {
  if (opts_.max_resident_bytes == 0) return;
  while (stats_.bytes_resident > opts_.max_resident_bytes) {
    auto victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep || !it->second->traces) continue;
      if (it->second->last_use < oldest) {
        oldest = it->second->last_use;
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing evictable but `keep`
    stats_.bytes_resident -= victim->second->bytes;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

void TraceStore::release(const TraceKey& key) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  if (it->second->traces) {
    stats_.bytes_resident -= it->second->bytes;
    ++stats_.evictions;
  }
  entries_.erase(it);
}

TraceStoreStats TraceStore::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pacsim
