#include "core/verifier.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <utility>

#include "common/atomic_file.hpp"

namespace pacsim {
namespace {

std::string hex_addr(Addr a) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, static_cast<std::uint64_t>(a));
  return buf;
}

const char* op_name(MemOp op) {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kAtomic: return "atomic";
    case MemOp::kFence: return "fence";
  }
  return "?";
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

const char* to_string(VerifyLevel level) {
  switch (level) {
    case VerifyLevel::kOff: return "off";
    case VerifyLevel::kCounters: return "counters";
    case VerifyLevel::kFull: return "full";
  }
  return "?";
}

VerifyLevel parse_verify_level(const std::string& name) {
  if (name == "off") return VerifyLevel::kOff;
  if (name == "counters") return VerifyLevel::kCounters;
  if (name == "full") return VerifyLevel::kFull;
  throw std::invalid_argument("unknown verify level '" + name +
                              "' (expected off, counters or full)");
}

Verifier::Verifier(const VerifyConfig& cfg)
    : cfg_(cfg), full_(cfg.level == VerifyLevel::kFull) {
  stats_.enabled = cfg_.level != VerifyLevel::kOff;
  stats_.level = cfg_.level;
  if (full_ && cfg_.max_request_age != 0) {
    next_age_check_ = cfg_.age_check_period;
  }
}

void Verifier::on_issued(const MemRequest& req, Cycle now) {
  ++stats_.issued;
  last_progress_ = now;
  if (!full_) return;
  if (!ledger_.open(req, now)) {
    fail("conservation", "duplicate issue of raw id " + std::to_string(req.id),
         now);
  }
}

void Verifier::on_accepted(const MemRequest& req, Cycle now) {
  ++stats_.accepted;
  last_progress_ = now;
  const bool is_fence = req.op == MemOp::kFence;
  if (is_fence) ++stats_.fences;
  if (fence_active_ && !is_fence) {
    fail("fence_ordering",
         "raw id " + std::to_string(req.id) +
             " accepted while fence raw id " + std::to_string(fence_raw_) +
             " is still draining",
         now);
  }
  if (!full_) return;
  ReqRecord* rec = ledger_.note(req.id, ReqStage::kAccepted, now);
  if (rec == nullptr) {
    fail("conservation",
         "accept of unknown raw id " + std::to_string(req.id), now);
  }
  if (rec->accepted) {
    fail("conservation",
         "raw id " + std::to_string(req.id) + " accepted twice", now);
  }
  rec->accepted = true;
  // A fence's lifecycle ends at accept: it produces no device traffic and
  // the system never satisfies it, so its record closes here.
  if (is_fence) {
    ledger_.close(req.id);
    retired_ids_.insert(req.id);
  }
}

void Verifier::on_merged(std::uint64_t raw_id, Cycle now) {
  ++stats_.merged;
  last_progress_ = now;
  if (full_) ledger_.note(raw_id, ReqStage::kMerged, now);
}

void Verifier::on_fence_begin(std::uint64_t fence_raw_id, Cycle now) {
  last_progress_ = now;
  fence_active_ = true;
  fence_raw_ = fence_raw_id;
  if (full_) ledger_.note(fence_raw_id, ReqStage::kFenceMark, now);
}

void Verifier::on_fence_end(Cycle now) {
  last_progress_ = now;
  fence_active_ = false;
}

void Verifier::on_fence_passthrough(std::uint64_t fence_raw_id, Cycle now) {
  last_progress_ = now;
  if (full_) ledger_.note(fence_raw_id, ReqStage::kFenceMark, now);
}

void Verifier::on_dispatched(const DeviceRequest& req, Cycle now) {
  ++stats_.device_requests;
  stats_.dispatched_raws += req.raw_ids.size();
  last_progress_ = now;
  if (req.atomic && req.raw_ids.size() != 1) {
    fail("atomic_ordering",
         "atomic device request " + std::to_string(req.id) + " carries " +
             std::to_string(req.raw_ids.size()) + " raws (must be exactly 1)",
         now);
  }
  if (!full_) return;
  for (std::size_t i = 0; i < req.raw_ids.size(); ++i) {
    const std::uint64_t raw = req.raw_ids[i];
    ReqRecord* rec = ledger_.note(raw, ReqStage::kDispatched, now, req.id);
    if (rec == nullptr) {
      fail("conservation",
           "device request " + std::to_string(req.id) +
               " dispatches unknown/retired raw id " + std::to_string(raw),
           now);
    }
    // Byte coverage: the packet must carry the raw's address range (the
    // block-map bits that produced the packet are a subset of the
    // dispatched bytes). Atomics are sub-granule, so only the start
    // address is checked for them.
    const Addr end = req.base + req.bytes;
    const bool start_ok = rec->paddr >= req.base && rec->paddr < end;
    const bool range_ok =
        rec->op == MemOp::kAtomic ||
        (start_ok && rec->paddr + rec->bytes <= end);
    if (!start_ok || !range_ok) {
      fail("conservation",
           "device request " + std::to_string(req.id) + " [" +
               hex_addr(req.base) + ", " + hex_addr(end) +
               ") does not cover raw id " + std::to_string(raw) + " at " +
               hex_addr(rec->paddr) + "+" + std::to_string(rec->bytes),
           now);
    }
    // The declared block-map offset must be consistent with an integral
    // granule: offset bytes = raw_block * granule for some granule.
    const std::uint16_t block = req.raw_block(i);
    const Addr offset = rec->paddr - req.base;
    if (block != 0 && offset % block != 0) {
      fail("conservation",
           "device request " + std::to_string(req.id) + " stamps raw id " +
               std::to_string(raw) + " with block offset " +
               std::to_string(block) + " inconsistent with byte offset " +
               std::to_string(offset),
           now);
    }
  }
}

void Verifier::on_nack(const DeviceRequest& req, Cycle now) {
  ++stats_.nacks;
  last_progress_ = now;
  if (!full_) return;
  for (std::uint64_t raw : req.raw_ids) {
    ledger_.note(raw, ReqStage::kNacked, now, req.id);
  }
}

void Verifier::on_retransmit(const DeviceRequest& req, std::uint32_t attempts,
                             Cycle now) {
  ++stats_.retransmissions;
  last_progress_ = now;
  if (!full_) return;
  for (std::uint64_t raw : req.raw_ids) {
    ledger_.note(raw, ReqStage::kRetransmitted, now, attempts);
  }
}

void Verifier::on_response_dropped(const DeviceRequest& req, Cycle now) {
  last_progress_ = now;
  if (!full_) return;
  for (std::uint64_t raw : req.raw_ids) {
    ledger_.note(raw, ReqStage::kResponseDropped, now, req.id);
  }
}

void Verifier::on_response(const DeviceResponse& rsp, Cycle now) {
  ++stats_.responses;
  stats_.responded_raws += rsp.raw_ids.size();
  last_progress_ = now;
  if (!full_) return;
  for (std::uint64_t raw : rsp.raw_ids) {
    if (ledger_.note(raw, ReqStage::kResponded, now, rsp.request_id) ==
        nullptr) {
      fail("conservation",
           "response for device request " + std::to_string(rsp.request_id) +
               " covers unknown/retired raw id " + std::to_string(raw),
           now);
    }
  }
}

void Verifier::on_retired(std::uint64_t raw_id, Cycle now) {
  ++stats_.retired;
  last_progress_ = now;
  if (!full_) return;
  ReqRecord* rec = ledger_.note(raw_id, ReqStage::kRetired, now);
  if (rec == nullptr) {
    const bool dup = retired_ids_.count(raw_id) != 0;
    fail("conservation",
         std::string(dup ? "duplicate retirement of raw id "
                         : "retirement of never-issued raw id ") +
             std::to_string(raw_id),
         now);
  }
  ledger_.close(raw_id);
  retired_ids_.insert(raw_id);
}

void Verifier::on_poisoned(std::uint64_t raw_id, Cycle now) {
  ++stats_.poisoned;
  last_progress_ = now;
  if (!full_) return;
  ReqRecord* rec = ledger_.note(raw_id, ReqStage::kPoisoned, now);
  if (rec == nullptr) {
    const bool dup = retired_ids_.count(raw_id) != 0;
    fail("conservation",
         std::string(dup ? "duplicate poisoning of raw id "
                         : "poisoning of never-issued raw id ") +
             std::to_string(raw_id),
         now);
  }
  ledger_.close(raw_id);
  retired_ids_.insert(raw_id);
}

void Verifier::on_retry_exhausted(const DeviceRequest& req,
                                  std::uint32_t attempts,
                                  std::uint32_t max_retries, Cycle now) {
  fail("retry_exhausted",
       "device request " + std::to_string(req.id) + " (" +
           std::to_string(req.raw_ids.size()) + " raws, base " +
           hex_addr(req.base) + ") exceeded retrymax=" +
           std::to_string(max_retries) + " after " +
           std::to_string(attempts) + " attempts; link unrecoverable",
       now);
}

void Verifier::watchdog_fire(Cycle now, const std::string& reason) {
  fail("no_progress", reason, now);
}

void Verifier::check_ages(Cycle now) {
  next_age_check_ = now + cfg_.age_check_period;
  if (cfg_.max_request_age == 0) return;
  for (const auto& [id, rec] : ledger_.open_requests()) {
    if (now - rec.issued_at > cfg_.max_request_age) {
      fail("bounded_latency",
           "raw id " + std::to_string(id) + " (" + op_name(rec.op) + " at " +
               hex_addr(rec.paddr) + ") issued at cycle " +
               std::to_string(rec.issued_at) + " is " +
               std::to_string(now - rec.issued_at) +
               " cycles old (budget " +
               std::to_string(cfg_.max_request_age) + ")",
           now);
    }
  }
}

Cycle Verifier::next_deadline(Cycle now) const {
  Cycle bound = kNeverCycle;
  if (cfg_.watchdog_cycles != 0) {
    bound = last_progress_ + cfg_.watchdog_cycles;
  }
  if (next_age_check_ != kNeverCycle) {
    bound = std::min(bound, next_age_check_);
  }
  return std::max(bound, now);
}

void Verifier::final_check(Cycle now) {
  if (fence_active_) {
    fail("fence_ordering",
         "run finished with fence raw id " + std::to_string(fence_raw_) +
             " still draining",
         now);
  }
  // Poisoned raws are declared losses (failpolicy=contain), not silent
  // ones: they close the equation as their own term.
  if (stats_.retired + stats_.fences + stats_.poisoned != stats_.issued) {
    fail("conservation",
         "conservation equation failed: issued=" +
             std::to_string(stats_.issued) +
             " != retired=" + std::to_string(stats_.retired) + " + fences=" +
             std::to_string(stats_.fences) + " + poisoned=" +
             std::to_string(stats_.poisoned) + " (" +
             std::to_string(stats_.issued - stats_.retired - stats_.fences -
                            stats_.poisoned) +
             " raw requests lost)",
         now);
  }
  if (full_ && ledger_.outstanding() != 0) {
    fail("conservation",
         std::to_string(ledger_.outstanding()) +
             " raw requests never retired (oldest timelines in dump)",
         now);
  }
}

std::string Verifier::render_forensics(const std::string& kind,
                                       const std::string& message,
                                       Cycle now) const {
  std::ostringstream out;
  out << "{\n";
  out << "  \"kind\": \"" << escape(kind) << "\",\n";
  out << "  \"message\": \"" << escape(message) << "\",\n";
  out << "  \"cycle\": " << now << ",\n";
  out << "  \"level\": \"" << to_string(cfg_.level) << "\",\n";
  out << "  \"counters\": {\"issued\": " << stats_.issued
      << ", \"accepted\": " << stats_.accepted
      << ", \"merged\": " << stats_.merged
      << ", \"device_requests\": " << stats_.device_requests
      << ", \"dispatched_raws\": " << stats_.dispatched_raws
      << ", \"responses\": " << stats_.responses
      << ", \"responded_raws\": " << stats_.responded_raws
      << ", \"retired\": " << stats_.retired
      << ", \"fences\": " << stats_.fences
      << ", \"nacks\": " << stats_.nacks
      << ", \"retransmissions\": " << stats_.retransmissions
      << ", \"poisoned\": " << stats_.poisoned << "},\n";
  out << "  \"fence_active\": " << (fence_active_ ? "true" : "false") << ",\n";
  out << "  \"last_progress_cycle\": " << last_progress_ << ",\n";
  out << "  \"components\": "
      << (state_provider_ ? state_provider_() : std::string("{}")) << ",\n";
  out << "  \"outstanding_requests\": " << ledger_.outstanding() << ",\n";
  out << "  \"stuck_requests\": [";
  const auto oldest = ledger_.oldest(cfg_.forensics_timeline_limit);
  for (std::size_t i = 0; i < oldest.size(); ++i) {
    const auto& [id, rec] = oldest[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"id\": " << id << ", \"op\": \"" << op_name(rec->op)
        << "\", \"paddr\": \"" << hex_addr(rec->paddr)
        << "\", \"bytes\": " << rec->bytes
        << ", \"core\": " << static_cast<unsigned>(rec->core)
        << ", \"issued_at\": " << rec->issued_at
        << ", \"age\": " << (now - rec->issued_at) << ", \"timeline\": [";
    for (std::size_t e = 0; e < rec->events.size(); ++e) {
      const ReqEvent& ev = rec->events[e];
      out << (e == 0 ? "" : ", ") << "{\"cycle\": " << ev.cycle
          << ", \"stage\": \"" << to_string(ev.stage) << "\", \"aux\": "
          << ev.aux << "}";
    }
    out << "]}";
  }
  out << (oldest.empty() ? "]" : "\n  ]") << "\n}\n";
  return out.str();
}

void Verifier::fail(const std::string& kind, const std::string& message,
                    Cycle now) {
  ++stats_.violations;
  std::string path;
  try {
    static std::atomic<std::uint64_t> dump_counter{0};
    std::filesystem::create_directories(cfg_.forensics_dir);
    path = (std::filesystem::path(cfg_.forensics_dir) /
            ("forensics_" + std::to_string(static_cast<long>(::getpid())) +
             "_" + std::to_string(dump_counter.fetch_add(1)) + ".json"))
               .string();
    write_file_atomic(path, render_forensics(kind, message, now));
  } catch (const std::exception&) {
    path.clear();  // the violation still throws, just without a dump
  }
  throw VerificationError(
      "verification failed [" + kind + "] at cycle " + std::to_string(now) +
          ": " + message +
          (path.empty() ? std::string("") : "; forensics: " + path),
      path);
}

}  // namespace pacsim
