#include "hmc/hbm_device.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <utility>

#include "common/bitops.hpp"
#include "core/verifier.hpp"

namespace pacsim {

HbmDevice::HbmDevice(const HbmConfig& cfg, PowerModel* power,
                     FaultInjector* fault)
    : cfg_(cfg),
      map_(cfg.map),
      power_(power),
      fault_(fault),
      next_refresh_(cfg.t_refi) {
  assert(cfg_.map.num_vaults <= 64 && "active_channels_ is a 64-bit mask");
  banks_.resize(cfg_.map.num_vaults);
  for (auto& channel : banks_) channel.resize(cfg_.map.banks_per_vault);
  channel_queue_.resize(cfg_.map.num_vaults);
}

void HbmDevice::schedule(Cycle cycle, EventKind kind, RowTxn* txn,
                         Request* request) {
  events_.push(Event{cycle, next_seq_++, kind, txn, request});
}

HbmDevice::Request* HbmDevice::acquire_request() {
  if (free_requests_.empty()) {
    request_pool_.push_back(std::make_unique<Request>());
    return request_pool_.back().get();
  }
  Request* request = free_requests_.back();
  free_requests_.pop_back();
  return request;
}

HbmDevice::RowTxn* HbmDevice::acquire_row() {
  if (free_rows_.empty()) {
    row_pool_.push_back(std::make_unique<RowTxn>());
    return row_pool_.back().get();
  }
  RowTxn* txn = free_rows_.back();
  free_rows_.pop_back();
  return txn;
}

void HbmDevice::release_request(Request* request) {
  for (RowTxn* row : request->rows) free_rows_.push_back(row);
  request->rows.clear();
  free_requests_.push_back(request);
}

void HbmDevice::submit(DeviceRequest req, Cycle now) {
  assert(can_accept());
  ++outstanding_;

  Request* request = acquire_request();
  request->req = std::move(req);
  request->submit_cycle = now;
  request->last_data_ready = 0;
  request->pending_rows = 0;

  const DeviceRequest& r = request->req;
  auto [slot, inserted] = inflight_.try_emplace(r.id, request);
  assert(inserted && "duplicate DeviceRequest id");
  (void)slot;
  (void)inserted;

  // Injected interface CRC failure: the packet occupied the ingress path
  // for its latency but never reaches a channel. The NACK retires it; the
  // requester-side retry port retransmits.
  if (fault_ != nullptr && fault_->corrupt_request()) {
    schedule(now + cfg_.interface_cycles, EventKind::kNack, nullptr, request);
    return;
  }

  ++stats_.requests;
  stats_.payload_bytes += r.bytes;

  // Decompose into per-row column accesses; rows interleave across the
  // channels (the AddressMap's vault axis).
  const std::uint32_t row_bytes = cfg_.map.row_bytes;
  Addr cursor = r.base;
  const Addr end = r.base + r.bytes;
  while (cursor < end) {
    const Addr row_end = (cursor | (row_bytes - 1)) + 1;
    const std::uint32_t payload =
        static_cast<std::uint32_t>(std::min<Addr>(row_end, end) - cursor);

    RowTxn* txn = acquire_row();
    txn->parent = request;
    txn->loc = map_.decode(cursor);
    txn->payload = payload;
    txn->channel_enqueue = 0;
    txn->data_ready = 0;
    txn->conflict_counted = false;

    schedule(now + cfg_.interface_cycles, EventKind::kChannelArrive, txn,
             request);

    ++request->pending_rows;
    request->rows.push_back(txn);
    cursor = row_end;
  }
}

void HbmDevice::tick(Cycle now) {
  // Rotating all-bank refresh per channel; closes the channel's open rows.
  if (cfg_.enable_refresh && now >= next_refresh_) {
    const std::uint32_t channel = refresh_channel_++ % cfg_.map.num_vaults;
    for (HbmBank& bank : banks_[channel]) {
      bank.busy_until = std::max(bank.busy_until, now + cfg_.t_rfc);
      bank.row_open = false;
      power_->add(HmcOp::kDramRefresh, 1.0);
    }
    ++stats_.refreshes;
    next_refresh_ = now + cfg_.t_refi;
  }

  while (!events_.empty() && events_.top().cycle <= now) {
    const Event ev = events_.top();
    events_.pop();
    switch (ev.kind) {
      case EventKind::kChannelArrive: {
        ev.txn->channel_enqueue = ev.cycle;
        channel_queue_[ev.txn->loc.vault].push_back(ev.txn);
        active_channels_ |= (std::uint64_t{1} << ev.txn->loc.vault);
        break;
      }
      case EventKind::kDataReady:
        on_data_ready(*ev.txn, ev.cycle);
        break;
      case EventKind::kComplete: {
        Request& request = *ev.request;
        if (fault_ == nullptr || !fault_->drop_response()) {
          completed_.push_back(DeviceResponse{request.req.id, ev.cycle,
                                              std::move(request.req.raw_ids)});
        } else if (verifier_ != nullptr) {
          verifier_->on_response_dropped(request.req, ev.cycle);
        }
        stats_.access_latency.add(
            static_cast<double>(ev.cycle - request.submit_cycle));
        --outstanding_;
        inflight_.erase(request.req.id);
        release_request(&request);
        break;
      }
      case EventKind::kNack: {
        Request& request = *ev.request;
        nacks_.push_back(DeviceNack{request.req.id, ev.cycle});
        --outstanding_;
        inflight_.erase(request.req.id);
        release_request(&request);
        break;
      }
    }
  }

  // One dispatch attempt per channel per cycle (FIFO order).
  std::uint64_t mask = active_channels_;
  while (mask != 0) {
    const std::uint32_t channel =
        static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    channel_dispatch(channel, now);
  }
}

void HbmDevice::channel_dispatch(std::uint32_t channel, Cycle now) {
  auto& queue = channel_queue_[channel];
  if (queue.empty()) {
    active_channels_ &= ~(std::uint64_t{1} << channel);
    return;
  }
  RowTxn* txn = queue.front();
  HbmBank& bank = banks_[channel][txn->loc.bank];
  // Transient channel stall (reuses the vault-stall fault class): the head
  // txn's bank is held busy for the stall window.
  if (fault_ != nullptr && !bank.busy(now) && fault_->stall_vault()) {
    bank.busy_until = std::max(bank.busy_until, now + fault_->stall_cycles());
  }
  if (bank.busy(now)) {
    if (!txn->conflict_counted) {
      ++stats_.bank_conflicts;
      txn->conflict_counted = true;
    }
    ++stats_.conflict_wait_cycles;
    return;  // head-of-line: retry next cycle
  }

  queue.pop_front();
  if (queue.empty()) active_channels_ &= ~(std::uint64_t{1} << channel);

  // Open-page timing. The burst moves granule-quantized payload over the
  // channel bus; the bank stays busy through its own burst.
  const std::uint32_t granules = static_cast<std::uint32_t>(
      ceil_div(txn->payload, cfg_.access_granule));
  const Cycle burst = std::max<Cycle>(
      1, ceil_div(granules * cfg_.access_granule,
                  cfg_.channel_bytes_per_cycle));

  Cycle data_ready;
  if (bank.row_open && bank.open_row == txn->loc.row) {
    ++stats_.row_hits;
    data_ready = now + cfg_.t_cas + burst;
  } else if (!bank.row_open) {
    ++stats_.row_misses;
    data_ready = now + cfg_.t_rcd + cfg_.t_cas + burst;
    bank.ras_until = now + cfg_.t_ras;
    power_->add(HmcOp::kDramAccess, 1.0);
  } else {
    // Row conflict: precharge (not before t_ras expires), then activate.
    ++stats_.row_misses;
    const Cycle pre_start = std::max(now, bank.ras_until);
    const Cycle act_start = pre_start + cfg_.t_rp;
    data_ready = act_start + cfg_.t_rcd + cfg_.t_cas + burst;
    bank.ras_until = act_start + cfg_.t_ras;
    power_->add(HmcOp::kDramAccess, 1.0);
  }
  bank.row_open = true;
  bank.open_row = txn->loc.row;
  bank.busy_until = data_ready;

  ++stats_.row_accesses;
  power_->add(HmcOp::kDramData,
              static_cast<double>(granules * cfg_.access_granule));
  schedule(data_ready, EventKind::kDataReady, txn, txn->parent);
}

void HbmDevice::on_data_ready(RowTxn& txn, Cycle now) {
  txn.data_ready = now;
  Request& request = *txn.parent;
  request.last_data_ready = std::max(request.last_data_ready, now);
  assert(request.pending_rows > 0);
  if (--request.pending_rows == 0) {
    // All row shares arrived at the controller: the response crosses the
    // interface once.
    schedule(request.last_data_ready + cfg_.interface_cycles,
             EventKind::kComplete, nullptr, &request);
  }
}

void HbmDevice::drain_completed_into(std::vector<DeviceResponse>& out) {
  out.clear();
  std::swap(out, completed_);
}

void HbmDevice::drain_nacks_into(std::vector<DeviceNack>& out) {
  out.clear();
  std::swap(out, nacks_);
}

Cycle HbmDevice::next_event_cycle(Cycle now) const {
  // A non-empty channel queue dispatches (or retries and counts
  // conflict-wait cycles) every cycle: no skipping while any channel holds
  // work.
  if (active_channels_ != 0) return now;
  Cycle bound = kNeverCycle;
  if (!events_.empty()) bound = std::min(bound, events_.top().cycle);
  if (cfg_.enable_refresh) bound = std::min(bound, next_refresh_);
  return std::max(bound, now);
}

std::string HbmDevice::debug_json() const {
  std::size_t queued_rows = 0;
  for (const auto& queue : channel_queue_) queued_rows += queue.size();
  std::ostringstream out;
  out << "{\"outstanding\": " << outstanding_
      << ", \"scheduled_events\": " << events_.size()
      << ", \"queued_row_txns\": " << queued_rows
      << ", \"active_channels\": " << std::popcount(active_channels_)
      << ", \"buffered_responses\": " << completed_.size()
      << ", \"buffered_nacks\": " << nacks_.size() << "}";
  return out.str();
}

}  // namespace pacsim
