// Historical name for the backend statistics block. The HMC device was the
// only substrate when this header was introduced; the struct now lives in
// mem/backend_stats.hpp and is shared by every MemoryBackend.
#pragma once

#include "mem/backend_stats.hpp"

namespace pacsim {

using HmcStats = BackendStats;

}  // namespace pacsim
