// Aggregate statistics reported by the HMC device model.
#pragma once

#include <cstdint>

#include "common/stats.hpp"

namespace pacsim {

struct HmcStats {
  std::uint64_t requests = 0;         ///< device requests accepted
  std::uint64_t row_accesses = 0;     ///< per-row DRAM accesses performed
  std::uint64_t bank_conflicts = 0;   ///< accesses that found their bank busy
  std::uint64_t conflict_wait_cycles = 0;
  std::uint64_t refreshes = 0;        ///< per-vault refresh events performed
  std::uint64_t local_routes = 0;     ///< packets routed to quadrant-local vaults
  std::uint64_t remote_routes = 0;
  std::uint64_t request_flits = 0;
  std::uint64_t response_flits = 0;
  std::uint64_t payload_bytes = 0;
  RunningStat access_latency;         ///< submit -> completion, cycles
};

}  // namespace pacsim
