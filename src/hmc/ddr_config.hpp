// Structural and timing configuration of the simulated DDR channel pair
// (ramulator-lite: FR-FCFS scheduling, open-page banks, tREFI/tRFC refresh,
// tCAS/tRCD/tRP/tRAS state machines - no command-bus modeling).
//
// Timing values are CPU cycles at the 2 GHz reference clock of Table 1
// (0.5 ns / cycle); defaults approximate DDR4-2400.
#pragma once

#include <cstdint>

#include "mem/address_map.hpp"

namespace pacsim {

struct DdrConfig {
  /// 2 channels x 16 banks, 2 KB rows, 8 GB. The AddressMap's "vault" axis
  /// is the channel index.
  AddressMapConfig map{2, 16, 2048, 8ULL << 30};

  std::uint32_t interface_cycles = 20;  ///< off-chip path, each direction
  /// Shared per-channel data bus (64-bit DDR4-2400 ~ 19 GB/s = 8 B per
  /// 2 GHz CPU cycle); bursts from different banks serialize on it.
  std::uint32_t channel_bytes_per_cycle = 8;

  std::uint32_t t_rcd = 28;  ///< activate to column command (14 ns)
  std::uint32_t t_cas = 28;  ///< column access latency (14 ns)
  std::uint32_t t_rp = 28;   ///< precharge (14 ns)
  std::uint32_t t_ras = 64;  ///< activate to precharge minimum (32 ns)

  std::uint32_t max_outstanding = 64;  ///< controller queue depth

  // All-bank refresh per channel on the tREFI grid; closes open rows.
  bool enable_refresh = true;
  std::uint32_t t_refi = 15600;  ///< refresh interval (7.8 us)
  std::uint32_t t_rfc = 700;     ///< refresh cycle time (350 ns)
};

}  // namespace pacsim
