// Structural and timing configuration of the simulated HBM stack.
//
// Timing values are CPU cycles at the 2 GHz reference clock of Table 1
// (0.5 ns / cycle). The stack sits on an interposer next to the CPU: no
// SERDES links, no crossbar - a fixed PHY/controller latency each way and
// wide per-channel DRAM buses. Rows are 1 KB (paper section 4.1: the HBM
// protocol descriptor coalesces up to a 16-block sequence at 64 B per
// block), accessed open-page at a 32 B granule.
#pragma once

#include <cstdint>

#include "mem/address_map.hpp"

namespace pacsim {

struct HbmConfig {
  /// 8 independent channels x 16 banks, 1 KB rows, 8 GB stack. The
  /// AddressMap's "vault" axis is the channel index.
  AddressMapConfig map{8, 16, 1024, 8ULL << 30};

  std::uint32_t interface_cycles = 16;  ///< PHY + controller, each direction
  std::uint32_t access_granule = 32;    ///< minimum column access, bytes
  /// Per-channel burst bandwidth (128-bit DDR channel ~ 32 GB/s = 16 B per
  /// 2 GHz CPU cycle).
  std::uint32_t channel_bytes_per_cycle = 16;

  // Open-page DRAM timing: a row hit pays t_cas only; a miss adds t_rcd;
  // a row conflict precharges first (t_rp, honoring t_ras since activate).
  std::uint32_t t_rcd = 28;  ///< activate to column command (14 ns)
  std::uint32_t t_cas = 28;  ///< column access latency (14 ns)
  std::uint32_t t_rp = 28;   ///< precharge (14 ns)
  std::uint32_t t_ras = 66;  ///< activate to precharge minimum (33 ns)

  std::uint32_t max_outstanding = 256;  ///< device-side admission limit

  // All-bank refresh, channels refreshed in rotation; a refresh closes the
  // channel's open rows.
  bool enable_refresh = true;
  std::uint32_t t_refi = 7800;  ///< cycles between per-channel slots (3.9 us)
  std::uint32_t t_rfc = 520;    ///< refresh cycle time (260 ns)
};

}  // namespace pacsim
