// Structural and timing configuration of the simulated HMC device.
//
// Timing values are CPU cycles at the 2 GHz reference clock of Table 1
// (0.5 ns / cycle). Defaults are chosen so that the average loaded access
// latency lands near the 93 ns the paper reports for its HMC-Sim setup.
#pragma once

#include <cstdint>

#include "mem/address_map.hpp"

namespace pacsim {

struct HmcConfig {
  AddressMapConfig map;       ///< 32 vaults x 16 banks, 256 B rows, 8 GB

  std::uint32_t num_links = 4;
  std::uint32_t cycles_per_flit = 2;   ///< SERDES serialization per 16 B FLIT
  std::uint32_t xbar_local_cycles = 10;  ///< link -> quadrant-local vault
  std::uint32_t xbar_remote_cycles = 30; ///< link -> remote-quadrant vault
  std::uint32_t vault_dispatch_cycles = 2;

  // Closed-page DRAM timing (paper section 2.2.2: every access opens and
  // closes its row). Calibrated so the loaded average access latency lands
  // near the 93 ns of paper Table 1.
  std::uint32_t t_rcd = 34;  ///< activate to column command (17 ns)
  std::uint32_t t_cl = 34;   ///< column access latency (17 ns)
  std::uint32_t t_rp = 30;   ///< precharge (15 ns)
  std::uint32_t bank_bytes_per_cycle = 32;  ///< TSV burst bandwidth

  std::uint32_t max_outstanding = 256;  ///< device-side admission limit

  // Refresh: vaults are refreshed in rotation; all banks of the selected
  // vault are busy for t_rfc. With 32 vaults and the default spacing every
  // vault is refreshed every 32 * t_refi cycles (= 8 us at 2 GHz).
  bool enable_refresh = true;
  std::uint32_t t_refi = 500;  ///< cycles between per-vault refresh slots
  std::uint32_t t_rfc = 280;   ///< refresh cycle time (140 ns)

  /// Vaults are partitioned into quadrants; a link is local to the vaults of
  /// its own quadrant (HMC 2.1 quadrant organization).
  [[nodiscard]] bool is_local(std::uint32_t link, std::uint32_t vault) const {
    const std::uint32_t vaults_per_link = map.num_vaults / num_links;
    return vault / vaults_per_link == link;
  }
};

}  // namespace pacsim
