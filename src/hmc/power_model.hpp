// Event-based energy accounting for the HMC device.
//
// The five operation classes match paper Fig. 13: VAULT-RQST-SLOT,
// VAULT-RSP-SLOT, VAULT-CTRL, LINK-LOCAL-ROUTE and LINK-REMOTE-ROUTE; DRAM
// core energy is tracked separately. Constants are order-of-magnitude pJ
// figures from public HMC characterizations; the paper's comparisons (and
// ours) are relative savings, which depend only on the event-count ratios.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/serialize.hpp"
#include "common/types.hpp"

namespace pacsim {

enum class HmcOp : std::uint8_t {
  kVaultRqstSlot = 0,  ///< holding a valid packet in a vault request slot
  kVaultRspSlot,       ///< holding a valid packet in a vault response slot
  kVaultCtrl,          ///< vault controller queuing/dispatch work
  kLinkLocalRoute,     ///< SERDES + crossbar routing to a local vault
  kLinkRemoteRoute,    ///< SERDES + crossbar routing to a remote vault
  kDramAccess,         ///< row activate + precharge energy
  kDramData,           ///< per-byte burst energy
  kDramRefresh,        ///< per-bank refresh energy
  kCount,
};

constexpr std::string_view to_string(HmcOp op) {
  switch (op) {
    case HmcOp::kVaultRqstSlot: return "VAULT-RQST-SLOT";
    case HmcOp::kVaultRspSlot: return "VAULT-RSP-SLOT";
    case HmcOp::kVaultCtrl: return "VAULT-CTRL";
    case HmcOp::kLinkLocalRoute: return "LINK-LOCAL-ROUTE";
    case HmcOp::kLinkRemoteRoute: return "LINK-REMOTE-ROUTE";
    case HmcOp::kDramAccess: return "DRAM-ACCESS";
    case HmcOp::kDramData: return "DRAM-DATA";
    case HmcOp::kDramRefresh: return "DRAM-REFRESH";
    case HmcOp::kCount: break;
  }
  return "?";
}

struct PowerConfig {
  PicoJoule vault_rqst_slot_cycle = 2.0;  ///< per occupied slot-cycle
  PicoJoule vault_rsp_slot_cycle = 2.0;
  PicoJoule vault_ctrl_request = 18.0;    ///< per dispatched request
  PicoJoule vault_ctrl_wait_cycle = 1.0;  ///< per cycle a request waits
  /// Crossbar routing is charged per packet (the fully connected crossbar
  /// traversal of paper section 2.1.2), plus a small per-FLIT SERDES cost.
  PicoJoule link_packet_local = 55.0;
  PicoJoule link_packet_remote = 160.0;
  PicoJoule link_flit_serdes = 1.2;
  PicoJoule dram_access = 240.0;          ///< activate+precharge per access
  PicoJoule dram_byte = 0.3;              ///< per payload byte moved
  PicoJoule dram_refresh_bank = 120.0;    ///< per bank-refresh event
};

class PowerModel {
 public:
  explicit PowerModel(const PowerConfig& cfg = {}) : cfg_(cfg) {}

  void add(HmcOp op, double quantity);

  /// Queuing-delay energy, billed to the VAULT-CTRL class.
  void add_ctrl_wait(double cycles) {
    energy_[static_cast<std::size_t>(HmcOp::kVaultCtrl)] +=
        cfg_.vault_ctrl_wait_cycle * cycles;
  }

  /// One routed packet of `flits` FLITs: crossbar traversal per packet plus
  /// SERDES energy per FLIT, billed to the LINK-*-ROUTE class.
  void add_link_packet(bool local, double flits) {
    const std::size_t op = static_cast<std::size_t>(
        local ? HmcOp::kLinkLocalRoute : HmcOp::kLinkRemoteRoute);
    energy_[op] += (local ? cfg_.link_packet_local : cfg_.link_packet_remote) +
                   cfg_.link_flit_serdes * flits;
  }

  [[nodiscard]] PicoJoule energy(HmcOp op) const {
    return energy_[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] PicoJoule total() const;
  [[nodiscard]] const PowerConfig& config() const { return cfg_; }

  void reset() { energy_.fill(0.0); }

  void checkpoint_save(BinWriter& w) const {
    w.tag("POWR");
    for (const PicoJoule e : energy_) w.f64(e);
  }
  void checkpoint_load(BinReader& r) {
    r.tag("POWR");
    for (PicoJoule& e : energy_) e = r.f64();
  }

 private:
  PowerConfig cfg_;
  std::array<PicoJoule, static_cast<std::size_t>(HmcOp::kCount)> energy_{};
};

}  // namespace pacsim
