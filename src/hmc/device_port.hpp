// Requester-side resilience layer between a coalescer and the memory
// backend.
//
// Real HMC links run CRC-protected packet retry; the coalescers should not
// each reimplement it. The port wraps a MemoryBackend with one shared retry
// buffer: every submitted request is remembered (with a retransmittable
// copy) until its response arrives, a NACKed packet is retransmitted after
// an exponential backoff, and a response that never arrives (injected
// "poisoned response" drop) is recovered by a response timeout that also
// backs off exponentially per attempt. A request that exhausts
// RetryConfig::max_retries throws - an unrecoverable link - unless
// failpolicy=contain turns it (and any request addressed to a dead vault,
// dead cube, or unreachable shard on the hard-failure timeline) into a
// structured poisoned completion: the raws it carried are declared lost,
// counted in RetryStats::poisoned_completions, and the run continues.
//
// In passthrough mode (fault injection disabled) every call forwards
// straight to the device: no copies, no timers, no draws - the fault-free
// configuration stays bit-identical to pre-resilience builds.
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/serialize.hpp"
#include "mem/memory_backend.hpp"

namespace pacsim {

class FaultInjector;
class Verifier;

struct RetryConfig {
  /// Cycles after a submit (or retransmit) before a missing response is
  /// declared lost. Doubles per attempt, capped by `backoff_cap` below the
  /// growth (never below the base value).
  Cycle response_timeout = 8192;
  /// Retransmissions allowed per request before the run aborts.
  std::uint32_t max_retries = 8;
  /// First NACK-retransmit delay; doubles per attempt up to `backoff_cap`.
  Cycle backoff_base = 64;
  Cycle backoff_cap = 1 << 20;
};

/// Exponential backoff `base << attempts`, saturated at `cap` (but never
/// below `base`). Overflow-safe: a base large enough that the shift would
/// wrap 64 bits saturates at the cap instead of wrapping to a short (or
/// zero) delay.
[[nodiscard]] Cycle backoff_cycles(Cycle base, std::uint32_t attempts,
                                   Cycle cap);

struct RetryStats {
  std::uint64_t retransmissions = 0;  ///< packets re-submitted to the device
  std::uint64_t nacks = 0;            ///< link NACKs received
  std::uint64_t timeout_fires = 0;    ///< timeouts that found a lost response
  /// Timeouts that fired while the request was genuinely still in flight
  /// (device slower than the timeout); the deadline re-arms, no retransmit.
  std::uint64_t spurious_timeouts = 0;
  std::uint64_t retransmitted_bytes = 0;  ///< payload re-sent on the link
  std::uint32_t max_retry_depth = 0;      ///< worst attempts for one request
  /// failpolicy=contain: undeliverable requests completed as structured
  /// per-request failures (their raws declared lost, not retired).
  std::uint64_t poisoned_completions = 0;
};

class DevicePort {
 public:
  /// `tracking = false` selects passthrough mode. The port never owns the
  /// device. `fault` (optional) supplies the hard-failure state and the
  /// fail policy; dead-destination checks only run in tracking mode.
  DevicePort(MemoryBackend* device, const RetryConfig& cfg, bool tracking,
             FaultInjector* fault = nullptr);

  [[nodiscard]] bool can_accept() const { return device_->can_accept(); }

  /// Admit a request at `now`. Pre: can_accept(). Tracking mode keeps a
  /// retransmittable copy and arms the response deadline.
  void submit(DeviceRequest req, Cycle now);

  /// Process NACKs, completions, and due retry timers. Call once per cycle
  /// after the device's own tick. Throws std::runtime_error when a request
  /// exhausts max_retries.
  void tick(Cycle now);

  /// Move responses received since the last drain into `out` (cleared
  /// first). Passthrough forwards the device buffer directly.
  void drain_completed_into(std::vector<DeviceResponse>& out);

  /// Earliest cycle >= `now` at which tick() can act: buffered responses
  /// pin `now`; otherwise the earliest armed retry/deadline timer. Stale
  /// heap entries may report an early bound - harmless, since tick() pops
  /// them - but never a late one, so fast-forward jumps stay correct under
  /// pending retry timers.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const;

  /// True when no request is awaiting a response or a retransmit slot.
  [[nodiscard]] bool idle() const {
    return !tracking_ || (pending_.empty() && responses_.empty());
  }

  [[nodiscard]] const RetryStats& stats() const { return stats_; }
  [[nodiscard]] const RetryConfig& config() const { return cfg_; }
  [[nodiscard]] MemoryBackend* device() const { return device_; }

  /// Install the runtime verifier (nullptr = off). The port reports
  /// dispatches, NACKs, retransmissions, and retry exhaustion through it.
  void set_verifier(Verifier* verifier) { verifier_ = verifier; }

  /// One-line JSON object describing retry-buffer occupancy, for forensics.
  [[nodiscard]] std::string debug_json() const;

  /// Serializes the stats plus the live retry buffer: every pending entry
  /// (its retransmittable request copy, attempt count, resend flag) and the
  /// cycle its single live timer is armed for, so a snapshot taken while
  /// retries are in flight restores with the same backoff timers firing at
  /// the same cycles. Stale entries in the lazy-invalidation timer heap are
  /// dropped by a restore; they carry no live state (their generation was
  /// already bumped past), only an early-but-harmless next-event bound.
  /// Undrained responses may not cross a snapshot (SnapshotError).
  void checkpoint_save(BinWriter& w) const;
  void checkpoint_load(BinReader& r);

 private:
  struct Pending {
    DeviceRequest req;            ///< retransmittable copy
    std::uint32_t attempts = 0;   ///< retransmissions so far
    std::uint64_t timer_gen = 0;  ///< invalidates stale heap entries
    bool awaiting_resend = false; ///< armed timer is a retransmit slot
    Cycle timer_cycle = 0;        ///< cycle the live timer is armed for
  };

  struct Timer {
    Cycle cycle;
    std::uint64_t id;
    std::uint64_t gen;
    bool operator>(const Timer& other) const {
      return cycle != other.cycle ? cycle > other.cycle : id > other.id;
    }
  };

  /// Re-arm `p`'s single live timer for `cycle` (lazy invalidation: the
  /// generation bump strands any previous heap entry).
  void arm(std::uint64_t id, Pending& p, Cycle cycle);
  /// backoff_cycles() against this port's cap.
  [[nodiscard]] Cycle expo(Cycle base, std::uint32_t attempts) const {
    return backoff_cycles(base, attempts, cfg_.backoff_cap);
  }
  /// Count a retry attempt. Past max_retries: under failpolicy=contain the
  /// entry is poisoned and erased (returns true - the caller must not touch
  /// `p` again); under abort it throws.
  bool bump_attempts(std::uint64_t id, Pending& p, Cycle now);
  void retransmit(std::uint64_t id, Pending& p, Cycle now);

  /// True when `addr` targets a dead vault, a dead cube, or a cube the
  /// fabric reports unreachable (hard-failure timeline state).
  [[nodiscard]] bool dead_destination(Addr addr) const;
  [[nodiscard]] bool contain() const;
  /// Synthesize a poisoned completion for `req` (buffered like any other
  /// response; the raws it names are declared lost downstream).
  void push_poisoned(const DeviceRequest& req, Cycle now);
  /// Abort-policy structured failure for an undeliverable destination.
  [[noreturn]] void fail_undeliverable(const DeviceRequest& req, Cycle now);

  MemoryBackend* device_;
  RetryConfig cfg_;
  bool tracking_;
  RetryStats stats_;
  Verifier* verifier_ = nullptr;
  FaultInjector* fault_ = nullptr;

  std::unordered_map<std::uint64_t, Pending> pending_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::vector<DeviceResponse> responses_;  ///< tracking-mode drain buffer
  std::vector<DeviceResponse> device_buf_;
  std::vector<DeviceNack> nack_buf_;
};

}  // namespace pacsim
