// Cycle-approximate conventional-DRAM model (backend=ddr, ramulator-lite).
//
// The substrate the die-stacked devices are compared against: few channels,
// narrow shared buses, large rows, and a scheduler that works for its
// locality instead of getting it from the topology:
//   - FR-FCFS per-channel scheduling: the oldest ready row HIT is issued
//     first, then the oldest request whose bank is free (first-ready,
//     first-come-first-served),
//   - open-page banks with tCAS/tRCD/tRP/tRAS timing state machines,
//   - one shared data bus per channel - bursts serialize on it,
//   - tREFI/tRFC all-bank refresh that closes the channel's open rows.
//
// Energy accounting only touches the DRAM classes; the HMC link/vault
// classes stay zero (the JSON report nulls them out explicitly).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/fault_injector.hpp"
#include "hmc/ddr_config.hpp"
#include "hmc/power_model.hpp"
#include "mem/address_map.hpp"
#include "mem/backend_stats.hpp"
#include "mem/memory_backend.hpp"
#include "mem/request.hpp"

namespace pacsim {

class Verifier;

class DdrDevice final : public MemoryBackend {
 public:
  DdrDevice(const DdrConfig& cfg, PowerModel* power,
            FaultInjector* fault = nullptr);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kDdr;
  }
  [[nodiscard]] bool can_accept() const override {
    return outstanding_ < cfg_.max_outstanding;
  }
  void submit(DeviceRequest req, Cycle now) override;
  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  void drain_completed_into(std::vector<DeviceResponse>& out) override;
  void drain_nacks_into(std::vector<DeviceNack>& out) override;
  [[nodiscard]] bool in_flight(std::uint64_t id) const override {
    return inflight_.count(id) != 0;
  }
  [[nodiscard]] bool idle() const override { return outstanding_ == 0; }
  [[nodiscard]] std::uint32_t outstanding() const override {
    return outstanding_;
  }
  [[nodiscard]] const BackendStats& stats() const override { return stats_; }
  [[nodiscard]] const DdrConfig& config() const { return cfg_; }
  [[nodiscard]] const AddressMap& address_map() const override {
    return map_;
  }
  void set_verifier(Verifier* verifier) override { verifier_ = verifier; }
  [[nodiscard]] std::string debug_json() const override;

  /// Quiescent-point state: stats, sequence allocator, refresh grid, bus
  /// busy horizons, and per-bank open-row / timing state.
  void checkpoint_save(BinWriter& w) const override {
    w.tag("DDRD");
    stats_.checkpoint_save(w);
    w.u64(next_seq_);
    w.u64(next_refresh_);
    w.u32(refresh_channel_);
    w.u64(bus_busy_.size());
    for (const Cycle c : bus_busy_) w.u64(c);
    w.u64(banks_.size());
    w.u64(banks_.empty() ? 0 : banks_[0].size());
    for (const auto& channel : banks_) {
      for (const DdrBank& bank : channel) {
        w.u64(bank.busy_until);
        w.u64(bank.ras_until);
        w.u64(bank.open_row);
        w.b(bank.row_open);
      }
    }
  }
  void checkpoint_load(BinReader& r) override {
    r.tag("DDRD");
    stats_.checkpoint_load(r);
    next_seq_ = r.u64();
    next_refresh_ = r.u64();
    refresh_channel_ = r.u32();
    if (r.u64() != bus_busy_.size()) {
      throw SnapshotError("ddr channel count mismatch");
    }
    for (Cycle& c : bus_busy_) c = r.u64();
    if (r.u64() != banks_.size() ||
        r.u64() != (banks_.empty() ? 0 : banks_[0].size())) {
      throw SnapshotError("ddr bank geometry mismatch");
    }
    for (auto& channel : banks_) {
      for (DdrBank& bank : channel) {
        bank.busy_until = r.u64();
        bank.ras_until = r.u64();
        bank.open_row = r.u64();
        bank.row_open = r.b();
      }
    }
  }

 private:
  struct Request;

  struct RowTxn {
    Request* parent = nullptr;
    DramLocation loc;  ///< loc.vault is the channel index
    std::uint32_t payload = 0;
    Cycle channel_enqueue = 0;
    Cycle data_ready = 0;
    bool conflict_counted = false;
  };

  struct Request {
    DeviceRequest req;
    Cycle submit_cycle = 0;
    Cycle last_data_ready = 0;
    std::uint32_t pending_rows = 0;
    std::vector<RowTxn*> rows;
  };

  struct DdrBank {
    Cycle busy_until = 0;
    Cycle ras_until = 0;
    std::uint64_t open_row = 0;
    bool row_open = false;
    [[nodiscard]] bool busy(Cycle now) const { return now < busy_until; }
  };

  enum class EventKind : std::uint8_t {
    kChannelArrive,
    kDataReady,
    kComplete,
    kNack,
  };

  struct Event {
    Cycle cycle;
    std::uint64_t seq;
    EventKind kind;
    RowTxn* txn;
    Request* request;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.cycle != b.cycle ? a.cycle > b.cycle : a.seq > b.seq;
    }
  };

  void schedule(Cycle cycle, EventKind kind, RowTxn* txn, Request* request);
  void channel_dispatch(std::uint32_t channel, Cycle now);
  void issue(RowTxn* txn, std::uint32_t channel, Cycle now, bool row_hit);
  void on_data_ready(RowTxn& txn, Cycle now);

  Request* acquire_request();
  RowTxn* acquire_row();
  void release_request(Request* request);

  DdrConfig cfg_;
  AddressMap map_;
  PowerModel* power_;
  FaultInjector* fault_;
  Verifier* verifier_ = nullptr;
  BackendStats stats_;

  std::uint32_t outstanding_ = 0;
  std::uint64_t next_seq_ = 0;
  Cycle next_refresh_ = 0;
  std::uint32_t refresh_channel_ = 0;

  std::vector<std::vector<DdrBank>> banks_;        ///< [channel][bank]
  /// FR-FCFS scheduler queue (arrival order = age order; the scheduler
  /// scans it for the first ready row hit).
  std::vector<std::deque<RowTxn*>> channel_queue_;
  std::vector<Cycle> bus_busy_;  ///< per-channel shared data bus
  std::uint64_t active_channels_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_map<std::uint64_t, Request*> inflight_;
  std::vector<DeviceResponse> completed_;
  std::vector<DeviceNack> nacks_;

  std::vector<std::unique_ptr<Request>> request_pool_;
  std::vector<Request*> free_requests_;
  std::vector<std::unique_ptr<RowTxn>> row_pool_;
  std::vector<RowTxn*> free_rows_;
};

}  // namespace pacsim
