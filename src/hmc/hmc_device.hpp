// Cycle-approximate Hybrid Memory Cube device model.
//
// The model captures the HMC behaviours the PAC paper depends on:
//   - packetized FLIT interface with per-transaction control overhead,
//   - round-robin dispatch of requests over the SERDES links,
//   - crossbar routing with distinct local/remote vault cost,
//   - vault controllers with request/response slot occupancy,
//   - closed-page DRAM banks (every access is a full row cycle),
//   - event-based energy accounting (PowerModel).
//
// Requests wider than one DRAM row are decomposed into per-row accesses that
// fan out across vaults (row interleave) and complete as a single response.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/fault_injector.hpp"
#include "hmc/bank.hpp"
#include "hmc/hmc_config.hpp"
#include "hmc/hmc_stats.hpp"
#include "hmc/power_model.hpp"
#include "mem/address_map.hpp"
#include "mem/memory_backend.hpp"
#include "mem/request.hpp"

namespace pacsim {

class Verifier;

class HmcDevice final : public MemoryBackend {
 public:
  /// `fault` (optional, unowned) injects link/vault errors; null keeps the
  /// device on its fault-free paths with zero overhead.
  HmcDevice(const HmcConfig& cfg, PowerModel* power,
            FaultInjector* fault = nullptr);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kHmc;
  }

  /// True when the device can admit another request this cycle.
  [[nodiscard]] bool can_accept() const override {
    return outstanding_ < cfg_.max_outstanding;
  }

  /// Admit a request at `now`. Pre: can_accept().
  void submit(DeviceRequest req, Cycle now) override;

  /// Advance device state to cycle `now` (monotonically increasing).
  void tick(Cycle now) override;

  /// Earliest cycle >= `now` at which tick() can change any state or
  /// statistic: the top of the event queue, the next refresh slot, or `now`
  /// itself while any vault queue holds work (per-cycle dispatch retries and
  /// their conflict-wait accounting). kNeverCycle when fully drained with
  /// refresh disabled. System::run() fast-forwards to the minimum of these
  /// bounds across components.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;

  /// Move the responses completed since the last drain into `out` (cleared
  /// first). Buffer-based so the per-cycle loop reuses one allocation.
  void drain_completed_into(std::vector<DeviceResponse>& out) override;

  /// Move the NACKs raised since the last drain into `out` (cleared first).
  /// Only fault-injected runs ever produce NACKs.
  void drain_nacks_into(std::vector<DeviceNack>& out) override;

  /// True while `id` is still being serviced (or serialized) inside the
  /// device. The retry port uses this to tell a slow response apart from a
  /// dropped one when a response timeout fires.
  [[nodiscard]] bool in_flight(std::uint64_t id) const override {
    return inflight_.count(id) != 0;
  }

  [[nodiscard]] bool idle() const override { return outstanding_ == 0; }
  [[nodiscard]] std::uint32_t outstanding() const override {
    return outstanding_;
  }
  [[nodiscard]] const HmcStats& stats() const override { return stats_; }
  [[nodiscard]] const HmcConfig& config() const { return cfg_; }
  [[nodiscard]] const AddressMap& address_map() const override {
    return map_;
  }

  /// Install the runtime verifier (nullptr = off). The device reports
  /// injected response drops through it, so a kFull ledger can tell a lost
  /// response apart from a request that never completed.
  void set_verifier(Verifier* verifier) override { verifier_ = verifier; }

  /// One-line JSON object describing device occupancy, for forensics.
  [[nodiscard]] std::string debug_json() const override;

  /// At a quiescent point (idle(): outstanding_ == 0) the event queue, the
  /// vault queues, and the in-flight map are all empty and the pools are
  /// fully recycled, so the snapshot carries stats, allocators, link/bank
  /// busy horizons, and the refresh grid.
  void checkpoint_save(BinWriter& w) const override {
    w.tag("HMCD");
    stats_.checkpoint_save(w);
    w.u32(rr_link_);
    w.u64(next_seq_);
    w.u64(next_refresh_);
    w.u32(refresh_vault_);
    w.u64(link_req_busy_.size());
    for (const Cycle c : link_req_busy_) w.u64(c);
    for (const Cycle c : link_rsp_busy_) w.u64(c);
    w.u64(banks_.size());
    w.u64(banks_.empty() ? 0 : banks_[0].size());
    for (const auto& vault : banks_) {
      for (const Bank& bank : vault) {
        w.u64(bank.busy_until());
        w.u64(bank.accesses());
      }
    }
  }
  void checkpoint_load(BinReader& r) override {
    r.tag("HMCD");
    stats_.checkpoint_load(r);
    rr_link_ = r.u32();
    next_seq_ = r.u64();
    next_refresh_ = r.u64();
    refresh_vault_ = r.u32();
    if (r.u64() != link_req_busy_.size()) {
      throw SnapshotError("hmc link count mismatch");
    }
    for (Cycle& c : link_req_busy_) c = r.u64();
    for (Cycle& c : link_rsp_busy_) c = r.u64();
    if (r.u64() != banks_.size() ||
        r.u64() != (banks_.empty() ? 0 : banks_[0].size())) {
      throw SnapshotError("hmc bank geometry mismatch");
    }
    for (auto& vault : banks_) {
      for (Bank& bank : vault) {
        const Cycle busy = r.u64();
        bank.restore(busy, r.u64());
      }
    }
  }

 private:
  struct Request;  // a device request in flight

  /// One per-row DRAM access belonging to a Request.
  struct RowTxn {
    Request* parent = nullptr;
    DramLocation loc;
    std::uint32_t payload = 0;   ///< bytes of this request within the row
    bool local = false;          ///< vault local to the ingress link
    Cycle vault_enqueue = 0;
    Cycle data_ready = 0;
    bool conflict_counted = false;
  };

  struct Request {
    DeviceRequest req;
    std::uint32_t link = 0;
    Cycle submit_cycle = 0;
    std::uint32_t pending_rows = 0;
    std::vector<RowTxn*> rows;  ///< pool-owned, returned on completion
  };

  enum class EventKind : std::uint8_t {
    kVaultArrive,
    kDataReady,
    kComplete,
    kNack,  ///< CRC failure detected at the end of request serialization
  };

  struct Event {
    Cycle cycle;
    std::uint64_t seq;  ///< tie-break for determinism
    EventKind kind;
    RowTxn* txn;
    Request* request;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.cycle != b.cycle ? a.cycle > b.cycle : a.seq > b.seq;
    }
  };

  void schedule(Cycle cycle, EventKind kind, RowTxn* txn, Request* request);
  void vault_dispatch(std::uint32_t vault, Cycle now);
  void on_data_ready(RowTxn& txn, Cycle now);
  void finish_request(Request& request, Cycle now);

  // Request/RowTxn objects live in stable pool storage and recycle through
  // free lists, so steady-state submits allocate nothing. Events and vault
  // queues hold raw pointers into the pools; a request's storage is only
  // reused after its kComplete event retires it.
  Request* acquire_request();
  RowTxn* acquire_row();
  void release_request(Request* request);

  HmcConfig cfg_;
  AddressMap map_;
  PowerModel* power_;
  FaultInjector* fault_;  ///< unowned; null disables fault injection
  Verifier* verifier_ = nullptr;  ///< unowned; null disables verification
  HmcStats stats_;

  std::uint32_t outstanding_ = 0;
  std::uint32_t rr_link_ = 0;
  std::uint64_t next_seq_ = 0;
  Cycle next_refresh_ = 0;
  std::uint32_t refresh_vault_ = 0;

  std::vector<Cycle> link_req_busy_;  ///< per-link request-side serialization
  std::vector<Cycle> link_rsp_busy_;  ///< per-link response-side serialization
  std::vector<std::vector<Bank>> banks_;           ///< [vault][bank]
  std::vector<std::deque<RowTxn*>> vault_queue_;   ///< request slots
  std::uint64_t active_vaults_ = 0;                ///< bitmask of non-empty queues

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_map<std::uint64_t, Request*> inflight_;
  std::vector<DeviceResponse> completed_;
  std::vector<DeviceNack> nacks_;

  std::vector<std::unique_ptr<Request>> request_pool_;
  std::vector<Request*> free_requests_;
  std::vector<std::unique_ptr<RowTxn>> row_pool_;
  std::vector<RowTxn*> free_rows_;
};

}  // namespace pacsim
