#include "hmc/hmc_device.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <utility>

#include "core/verifier.hpp"
#include "mem/packet.hpp"

namespace pacsim {

HmcDevice::HmcDevice(const HmcConfig& cfg, PowerModel* power,
                     FaultInjector* fault)
    : cfg_(cfg),
      map_(cfg.map),
      power_(power),
      fault_(fault),
      next_refresh_(cfg.t_refi) {
  link_req_busy_.assign(cfg_.num_links, 0);
  link_rsp_busy_.assign(cfg_.num_links, 0);
  banks_.resize(cfg_.map.num_vaults);
  for (auto& vault : banks_) vault.resize(cfg_.map.banks_per_vault);
  vault_queue_.resize(cfg_.map.num_vaults);
}

void HmcDevice::schedule(Cycle cycle, EventKind kind, RowTxn* txn,
                         Request* request) {
  events_.push(Event{cycle, next_seq_++, kind, txn, request});
}

HmcDevice::Request* HmcDevice::acquire_request() {
  if (free_requests_.empty()) {
    request_pool_.push_back(std::make_unique<Request>());
    return request_pool_.back().get();
  }
  Request* request = free_requests_.back();
  free_requests_.pop_back();
  return request;
}

HmcDevice::RowTxn* HmcDevice::acquire_row() {
  if (free_rows_.empty()) {
    row_pool_.push_back(std::make_unique<RowTxn>());
    return row_pool_.back().get();
  }
  RowTxn* txn = free_rows_.back();
  free_rows_.pop_back();
  return txn;
}

void HmcDevice::release_request(Request* request) {
  for (RowTxn* row : request->rows) free_rows_.push_back(row);
  request->rows.clear();
  free_requests_.push_back(request);
}

void HmcDevice::submit(DeviceRequest req, Cycle now) {
  assert(can_accept());
  ++outstanding_;

  Request* request = acquire_request();
  request->req = std::move(req);
  request->link = rr_link_++ % cfg_.num_links;  // round-robin link dispatch
  request->submit_cycle = now;
  request->pending_rows = 0;

  const DeviceRequest& r = request->req;
  const std::uint32_t req_flits = request_flits(r.bytes, r.store);
  stats_.request_flits += req_flits;

  // Serialize the full request packet onto the chosen SERDES link.
  const Cycle ser_start = std::max(now, link_req_busy_[request->link]);
  const Cycle ser_end = ser_start + Cycle{req_flits} * cfg_.cycles_per_flit;
  link_req_busy_[request->link] = ser_end;

  auto [slot, inserted] = inflight_.try_emplace(r.id, request);
  assert(inserted && "duplicate DeviceRequest id");
  (void)slot;
  (void)inserted;

  // Link CRC check at the end of serialization: a corrupted packet occupied
  // the link for its full traversal but never reaches a vault. The NACK
  // retires it; the requester-side retry port retransmits.
  if (fault_ != nullptr && fault_->corrupt_request()) {
    schedule(ser_end, EventKind::kNack, nullptr, request);
    return;
  }

  ++stats_.requests;
  stats_.payload_bytes += r.bytes;

  // Decompose into per-row accesses (one row for every HMC-sized request;
  // several for HBM-style wide requests).
  const std::uint32_t row_bytes = cfg_.map.row_bytes;
  Addr cursor = r.base;
  const Addr end = r.base + r.bytes;
  while (cursor < end) {
    const Addr row_end = (cursor | (row_bytes - 1)) + 1;
    const std::uint32_t payload =
        static_cast<std::uint32_t>(std::min<Addr>(row_end, end) - cursor);

    RowTxn* txn = acquire_row();
    txn->parent = request;
    txn->loc = map_.decode(cursor);
    txn->payload = payload;
    txn->local = cfg_.is_local(request->link, txn->loc.vault);
    txn->vault_enqueue = 0;
    txn->data_ready = 0;
    txn->conflict_counted = false;

    // Request-direction routing cost and energy for this row's share.
    const std::uint32_t route_flits =
        1 + (r.store ? static_cast<std::uint32_t>(
                           ceil_div(payload, kFlitBytes))
                     : 0);
    if (txn->local) {
      ++stats_.local_routes;
    } else {
      ++stats_.remote_routes;
    }
    power_->add_link_packet(txn->local, route_flits);

    const Cycle xbar =
        txn->local ? cfg_.xbar_local_cycles : cfg_.xbar_remote_cycles;
    schedule(ser_end + xbar, EventKind::kVaultArrive, txn, request);

    ++request->pending_rows;
    request->rows.push_back(txn);
    cursor = row_end;
  }
}

void HmcDevice::tick(Cycle now) {
  // Rotating per-vault refresh (closed-page DRAM still refreshes).
  if (cfg_.enable_refresh && now >= next_refresh_) {
    const std::uint32_t vault = refresh_vault_++ % cfg_.map.num_vaults;
    for (Bank& bank : banks_[vault]) {
      bank.occupy_until(now + cfg_.t_rfc);
      power_->add(HmcOp::kDramRefresh, 1.0);
    }
    ++stats_.refreshes;
    next_refresh_ = now + cfg_.t_refi;
  }

  // Deliver every event due at or before `now`.
  while (!events_.empty() && events_.top().cycle <= now) {
    const Event ev = events_.top();
    events_.pop();
    switch (ev.kind) {
      case EventKind::kVaultArrive: {
        ev.txn->vault_enqueue = ev.cycle;
        vault_queue_[ev.txn->loc.vault].push_back(ev.txn);
        active_vaults_ |= (std::uint64_t{1} << ev.txn->loc.vault);
        break;
      }
      case EventKind::kDataReady:
        on_data_ready(*ev.txn, ev.cycle);
        break;
      case EventKind::kComplete: {
        Request& request = *ev.request;
        // An injected response drop loses the packet on the return link:
        // the device-side bookkeeping retires normally, but the requester
        // never hears back and must recover via its response timeout.
        if (fault_ == nullptr || !fault_->drop_response()) {
          completed_.push_back(DeviceResponse{request.req.id, ev.cycle,
                                              std::move(request.req.raw_ids)});
        } else if (verifier_ != nullptr) {
          verifier_->on_response_dropped(request.req, ev.cycle);
        }
        stats_.access_latency.add(
            static_cast<double>(ev.cycle - request.submit_cycle));
        --outstanding_;
        inflight_.erase(request.req.id);
        release_request(&request);
        break;
      }
      case EventKind::kNack: {
        Request& request = *ev.request;
        nacks_.push_back(DeviceNack{request.req.id, ev.cycle});
        --outstanding_;
        inflight_.erase(request.req.id);
        release_request(&request);
        break;
      }
    }
  }

  // Each vault controller attempts one dispatch per cycle (FIFO order:
  // head-of-line blocking is exactly the bank-conflict cost PAC removes).
  std::uint64_t mask = active_vaults_;
  while (mask != 0) {
    const std::uint32_t vault =
        static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    vault_dispatch(vault, now);
  }
}

void HmcDevice::vault_dispatch(std::uint32_t vault, Cycle now) {
  auto& queue = vault_queue_[vault];
  if (queue.empty()) {
    active_vaults_ &= ~(std::uint64_t{1} << vault);
    return;
  }
  RowTxn* txn = queue.front();
  Bank& bank = banks_[vault][txn->loc.bank];
  // Transient vault stall: the controller goes dark for a window (modelled
  // as the head txn's bank being held busy), then dispatch resumes. The
  // head-of-line wait is charged through the normal conflict accounting.
  if (fault_ != nullptr && !bank.busy(now) && fault_->stall_vault()) {
    bank.occupy_until(now + fault_->stall_cycles());
  }
  if (bank.busy(now)) {
    if (!txn->conflict_counted) {
      ++stats_.bank_conflicts;
      txn->conflict_counted = true;
    }
    ++stats_.conflict_wait_cycles;
    return;  // head-of-line: retry next cycle
  }

  queue.pop_front();
  if (queue.empty()) active_vaults_ &= ~(std::uint64_t{1} << vault);

  // Request-slot occupancy and controller energy.
  const Cycle waited = now - txn->vault_enqueue;
  power_->add(HmcOp::kVaultRqstSlot, static_cast<double>(waited + 1));
  power_->add(HmcOp::kVaultCtrl, 1.0);
  power_->add_ctrl_wait(static_cast<double>(waited));

  const Cycle dispatch_done = now + cfg_.vault_dispatch_cycles;
  const Cycle data_ready = bank.start_access(dispatch_done, txn->payload, cfg_);
  ++stats_.row_accesses;
  power_->add(HmcOp::kDramAccess, 1.0);
  power_->add(HmcOp::kDramData, static_cast<double>(txn->payload));
  schedule(data_ready, EventKind::kDataReady, txn, txn->parent);
}

void HmcDevice::on_data_ready(RowTxn& txn, Cycle now) {
  txn.data_ready = now;
  Request& request = *txn.parent;
  assert(request.pending_rows > 0);
  if (--request.pending_rows == 0) finish_request(request, now);
}

void HmcDevice::finish_request(Request& request, Cycle now) {
  const DeviceRequest& r = request.req;
  const std::uint32_t rsp_flits = response_flits(r.bytes, r.store);
  stats_.response_flits += rsp_flits;

  // Response-direction routing energy, charged per row share.
  Cycle xbar_back = cfg_.xbar_local_cycles;
  for (const RowTxn* row : request.rows) {
    const std::uint32_t route_flits =
        1 + (r.store ? 0
                     : static_cast<std::uint32_t>(
                           ceil_div(row->payload, kFlitBytes)));
    power_->add_link_packet(row->local, route_flits);
    if (!row->local) xbar_back = cfg_.xbar_remote_cycles;
  }

  const Cycle ser_start =
      std::max(now + xbar_back, link_rsp_busy_[request.link]);
  const Cycle ser_end = ser_start + Cycle{rsp_flits} * cfg_.cycles_per_flit;
  link_rsp_busy_[request.link] = ser_end;

  // Response-slot occupancy: each row's data waits in the vault response
  // slots until the response packet starts serializing.
  for (const RowTxn* row : request.rows) {
    const Cycle held = ser_start > row->data_ready
                           ? ser_start - row->data_ready
                           : Cycle{1};
    power_->add(HmcOp::kVaultRspSlot, static_cast<double>(held));
  }

  schedule(ser_end, EventKind::kComplete, nullptr, &request);
}

void HmcDevice::drain_completed_into(std::vector<DeviceResponse>& out) {
  // Swap instead of copy: the drained buffer's capacity ping-pongs back on
  // the next drain, so the steady state allocates nothing.
  out.clear();
  std::swap(out, completed_);
}

void HmcDevice::drain_nacks_into(std::vector<DeviceNack>& out) {
  out.clear();
  std::swap(out, nacks_);
}

Cycle HmcDevice::next_event_cycle(Cycle now) const {
  // A non-empty vault queue dispatches (or retries and counts conflict-wait
  // cycles) every cycle: no skipping while any vault holds work.
  if (active_vaults_ != 0) return now;
  Cycle bound = kNeverCycle;
  if (!events_.empty()) bound = std::min(bound, events_.top().cycle);
  // Refresh mutates stats/energy/bank state at exactly next_refresh_, so it
  // must stay inside the bound to keep the t_refi grid identical.
  if (cfg_.enable_refresh) bound = std::min(bound, next_refresh_);
  return std::max(bound, now);
}

std::string HmcDevice::debug_json() const {
  std::size_t queued_rows = 0;
  for (const auto& queue : vault_queue_) queued_rows += queue.size();
  std::ostringstream out;
  out << "{\"outstanding\": " << outstanding_
      << ", \"scheduled_events\": " << events_.size()
      << ", \"queued_row_txns\": " << queued_rows
      << ", \"active_vaults\": " << std::popcount(active_vaults_)
      << ", \"buffered_responses\": " << completed_.size()
      << ", \"buffered_nacks\": " << nacks_.size() << "}";
  return out.str();
}

}  // namespace pacsim
