#include "hmc/device_port.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/verifier.hpp"

namespace pacsim {

DevicePort::DevicePort(MemoryBackend* device, const RetryConfig& cfg,
                       bool tracking)
    : device_(device), cfg_(cfg), tracking_(tracking) {}

Cycle backoff_cycles(Cycle base, std::uint32_t attempts, Cycle cap) {
  if (base == 0) base = 1;
  if (cap < base) cap = base;
  // `base << shift` would silently wrap for shift >= 64 - attempts is
  // unbounded under long fault storms. Saturate at the cap whenever the
  // exact product would exceed it, without ever evaluating the overflow.
  const unsigned shift = std::min<std::uint32_t>(attempts, 63);
  if (base > (cap >> shift)) return cap;
  return base << shift;
}

void DevicePort::arm(std::uint64_t id, Pending& p, Cycle cycle) {
  ++p.timer_gen;
  timers_.push(Timer{cycle, id, p.timer_gen});
}

void DevicePort::bump_attempts(std::uint64_t id, Pending& p, Cycle now) {
  ++p.attempts;
  stats_.max_retry_depth = std::max(stats_.max_retry_depth, p.attempts);
  if (p.attempts > cfg_.max_retries) {
    if (verifier_ != nullptr) {
      verifier_->on_retry_exhausted(p.req, p.attempts, cfg_.max_retries, now);
    }
    throw std::runtime_error("DevicePort: request " + std::to_string(id) +
                             " exceeded retrymax=" +
                             std::to_string(cfg_.max_retries) +
                             " retransmissions; link unrecoverable");
  }
}

void DevicePort::submit(DeviceRequest req, Cycle now) {
  if (verifier_ != nullptr) verifier_->on_dispatched(req, now);
  if (!tracking_) {
    device_->submit(std::move(req), now);
    return;
  }
  auto [it, inserted] = pending_.try_emplace(req.id);
  assert(inserted && "duplicate DeviceRequest id at the port");
  (void)inserted;
  Pending& p = it->second;
  p.req = req;  // retransmittable copy (the device consumes the original)
  p.attempts = 0;
  p.awaiting_resend = false;
  arm(req.id, p, now + expo(cfg_.response_timeout, 0));
  device_->submit(std::move(req), now);
}

void DevicePort::retransmit(std::uint64_t id, Pending& p, Cycle now) {
  ++stats_.retransmissions;
  stats_.retransmitted_bytes += p.req.bytes;
  if (verifier_ != nullptr) verifier_->on_retransmit(p.req, p.attempts, now);
  p.awaiting_resend = false;
  device_->submit(p.req, now);  // copy: the entry may retransmit again
  arm(id, p, now + expo(cfg_.response_timeout, p.attempts));
}

void DevicePort::tick(Cycle now) {
  if (!tracking_) return;

  // 1. Link NACKs: count the attempt and schedule the retransmit after the
  //    per-attempt exponential backoff.
  device_->drain_nacks_into(nack_buf_);
  for (const DeviceNack& nack : nack_buf_) {
    auto it = pending_.find(nack.request_id);
    assert(it != pending_.end() && "NACK for an unknown request");
    Pending& p = it->second;
    ++stats_.nacks;
    if (verifier_ != nullptr) verifier_->on_nack(p.req, now);
    bump_attempts(nack.request_id, p, now);
    p.awaiting_resend = true;
    arm(nack.request_id, p, now + expo(cfg_.backoff_base, p.attempts - 1));
  }

  // 2. Completions: retire the pending entries, buffer the responses for
  //    the system-side drain.
  device_->drain_completed_into(device_buf_);
  for (DeviceResponse& rsp : device_buf_) {
    const std::size_t erased = pending_.erase(rsp.request_id);
    assert(erased == 1 && "response for an unknown request");
    (void)erased;
    responses_.push_back(std::move(rsp));
  }
  device_buf_.clear();

  // 3. Due timers. A timeout that retransmits re-arms at `now`, so the
  //    retransmit itself happens later in this same loop (subject to
  //    device_->can_accept()).
  while (!timers_.empty() && timers_.top().cycle <= now) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = pending_.find(t.id);
    if (it == pending_.end() || it->second.timer_gen != t.gen) {
      continue;  // stale: superseded by a newer arm() or already completed
    }
    Pending& p = it->second;
    if (p.awaiting_resend) {
      if (!device_->can_accept()) {
        arm(t.id, p, now + 1);  // device full: retry next cycle
        continue;
      }
      retransmit(t.id, p, now);
      continue;
    }
    // Response deadline fired.
    if (device_->in_flight(t.id)) {
      // Device is just slow (vault stalls, refresh storms): no retransmit,
      // push the deadline out by the next backoff step.
      ++stats_.spurious_timeouts;
      arm(t.id, p, now + expo(cfg_.response_timeout, p.attempts));
      continue;
    }
    // Not in flight and never answered: the response was dropped.
    ++stats_.timeout_fires;
    bump_attempts(t.id, p, now);
    p.awaiting_resend = true;
    arm(t.id, p, now);
  }
}

void DevicePort::drain_completed_into(std::vector<DeviceResponse>& out) {
  if (!tracking_) {
    device_->drain_completed_into(out);
    return;
  }
  out.clear();
  std::swap(out, responses_);
}

Cycle DevicePort::next_event_cycle(Cycle now) const {
  if (!tracking_) return kNeverCycle;
  if (!responses_.empty()) return now;
  if (!timers_.empty()) return std::max(timers_.top().cycle, now);
  return kNeverCycle;
}

std::string DevicePort::debug_json() const {
  std::size_t awaiting_resend = 0;
  std::uint32_t worst_attempts = 0;
  for (const auto& [id, p] : pending_) {
    if (p.awaiting_resend) ++awaiting_resend;
    worst_attempts = std::max(worst_attempts, p.attempts);
  }
  std::ostringstream out;
  out << "{\"tracking\": " << (tracking_ ? "true" : "false")
      << ", \"pending\": " << pending_.size()
      << ", \"awaiting_resend\": " << awaiting_resend
      << ", \"worst_attempts\": " << worst_attempts
      << ", \"buffered_responses\": " << responses_.size()
      << ", \"armed_timers\": " << timers_.size() << "}";
  return out.str();
}

}  // namespace pacsim
