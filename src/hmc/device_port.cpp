#include "hmc/device_port.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/fault_injector.hpp"
#include "core/verifier.hpp"

namespace pacsim {

DevicePort::DevicePort(MemoryBackend* device, const RetryConfig& cfg,
                       bool tracking, FaultInjector* fault)
    : device_(device), cfg_(cfg), tracking_(tracking), fault_(fault) {}

Cycle backoff_cycles(Cycle base, std::uint32_t attempts, Cycle cap) {
  if (base == 0) base = 1;
  if (cap < base) cap = base;
  // `base << shift` would silently wrap for shift >= 64 - attempts is
  // unbounded under long fault storms. Saturate at the cap whenever the
  // exact product would exceed it, without ever evaluating the overflow.
  const unsigned shift = std::min<std::uint32_t>(attempts, 63);
  if (base > (cap >> shift)) return cap;
  return base << shift;
}

void DevicePort::arm(std::uint64_t id, Pending& p, Cycle cycle) {
  ++p.timer_gen;
  p.timer_cycle = cycle;
  timers_.push(Timer{cycle, id, p.timer_gen});
}

bool DevicePort::contain() const {
  return fault_ != nullptr &&
         fault_->config().fail_policy == FailPolicy::kContain;
}

bool DevicePort::dead_destination(Addr addr) const {
  if (fault_ == nullptr || !fault_->any_dead()) return false;
  const AddressMap& map = device_->address_map();
  const std::uint32_t cube = map.cube_of(addr);
  if (fault_->cube_dead(cube) || fault_->cube_unreachable(cube)) return true;
  return fault_->vault_dead(cube, map.decode(addr).vault);
}

void DevicePort::push_poisoned(const DeviceRequest& req, Cycle now) {
  ++stats_.poisoned_completions;
  // The request is being declared lost: scrub any residual routing-layer
  // bookkeeping (the multi-cube fabric may still track an id whose child
  // retired a dropped response internally) so the device can reach idle().
  device_->forget(req.id);
  DeviceResponse rsp;
  rsp.request_id = req.id;
  rsp.completed_at = now;
  rsp.raw_ids = req.raw_ids;
  rsp.poisoned = true;
  responses_.push_back(std::move(rsp));
}

void DevicePort::fail_undeliverable(const DeviceRequest& req, Cycle now) {
  if (verifier_ != nullptr) {
    verifier_->on_retry_exhausted(req, 0, cfg_.max_retries, now);
  }
  throw std::runtime_error(
      "DevicePort: request " + std::to_string(req.id) +
      " addressed to a dead/unreachable destination under failpolicy=abort");
}

bool DevicePort::bump_attempts(std::uint64_t id, Pending& p, Cycle now) {
  ++p.attempts;
  stats_.max_retry_depth = std::max(stats_.max_retry_depth, p.attempts);
  if (p.attempts > cfg_.max_retries) {
    if (contain()) {
      // Declare the request lost instead of wedging the run: its raws ride
      // home on a poisoned completion and retire as declared losses.
      push_poisoned(p.req, now);
      pending_.erase(id);
      return true;
    }
    if (verifier_ != nullptr) {
      verifier_->on_retry_exhausted(p.req, p.attempts, cfg_.max_retries, now);
    }
    throw std::runtime_error("DevicePort: request " + std::to_string(id) +
                             " exceeded retrymax=" +
                             std::to_string(cfg_.max_retries) +
                             " retransmissions; link unrecoverable");
  }
  return false;
}

void DevicePort::submit(DeviceRequest req, Cycle now) {
  if (verifier_ != nullptr) verifier_->on_dispatched(req, now);
  if (!tracking_) {
    device_->submit(std::move(req), now);
    return;
  }
  if (dead_destination(req.base)) {
    if (!contain()) fail_undeliverable(req, now);
    push_poisoned(req, now);
    return;
  }
  auto [it, inserted] = pending_.try_emplace(req.id);
  assert(inserted && "duplicate DeviceRequest id at the port");
  (void)inserted;
  Pending& p = it->second;
  p.req = req;  // retransmittable copy (the device consumes the original)
  p.attempts = 0;
  p.awaiting_resend = false;
  arm(req.id, p, now + expo(cfg_.response_timeout, 0));
  device_->submit(std::move(req), now);
}

void DevicePort::retransmit(std::uint64_t id, Pending& p, Cycle now) {
  ++stats_.retransmissions;
  stats_.retransmitted_bytes += p.req.bytes;
  if (verifier_ != nullptr) verifier_->on_retransmit(p.req, p.attempts, now);
  p.awaiting_resend = false;
  device_->submit(p.req, now);  // copy: the entry may retransmit again
  arm(id, p, now + expo(cfg_.response_timeout, p.attempts));
}

void DevicePort::tick(Cycle now) {
  if (!tracking_) return;

  // 1. Link NACKs: count the attempt and schedule the retransmit after the
  //    per-attempt exponential backoff.
  device_->drain_nacks_into(nack_buf_);
  for (const DeviceNack& nack : nack_buf_) {
    auto it = pending_.find(nack.request_id);
    assert(it != pending_.end() && "NACK for an unknown request");
    Pending& p = it->second;
    ++stats_.nacks;
    if (verifier_ != nullptr) verifier_->on_nack(p.req, now);
    if (bump_attempts(nack.request_id, p, now)) continue;  // contained
    p.awaiting_resend = true;
    arm(nack.request_id, p, now + expo(cfg_.backoff_base, p.attempts - 1));
  }

  // 2. Completions: retire the pending entries, buffer the responses for
  //    the system-side drain.
  device_->drain_completed_into(device_buf_);
  for (DeviceResponse& rsp : device_buf_) {
    const std::size_t erased = pending_.erase(rsp.request_id);
    assert(erased == 1 && "response for an unknown request");
    (void)erased;
    responses_.push_back(std::move(rsp));
  }
  device_buf_.clear();

  // 3. Due timers. A timeout that retransmits re-arms at `now`, so the
  //    retransmit itself happens later in this same loop (subject to
  //    device_->can_accept()).
  while (!timers_.empty() && timers_.top().cycle <= now) {
    const Timer t = timers_.top();
    timers_.pop();
    auto it = pending_.find(t.id);
    if (it == pending_.end() || it->second.timer_gen != t.gen) {
      continue;  // stale: superseded by a newer arm() or already completed
    }
    Pending& p = it->second;
    if (p.awaiting_resend) {
      // A destination that died while the request was backing off can
      // never be reached again: resolve it now instead of resubmitting.
      if (dead_destination(p.req.base)) {
        if (!contain()) fail_undeliverable(p.req, now);
        push_poisoned(p.req, now);
        pending_.erase(it);
        continue;
      }
      if (!device_->can_accept()) {
        arm(t.id, p, now + 1);  // device full: retry next cycle
        continue;
      }
      retransmit(t.id, p, now);
      continue;
    }
    // Response deadline fired.
    if (device_->in_flight(t.id)) {
      // Device is just slow (vault stalls, refresh storms): no retransmit,
      // push the deadline out by the next backoff step.
      ++stats_.spurious_timeouts;
      arm(t.id, p, now + expo(cfg_.response_timeout, p.attempts));
      continue;
    }
    // Not in flight and never answered: the response was dropped.
    ++stats_.timeout_fires;
    if (bump_attempts(t.id, p, now)) continue;  // contained
    p.awaiting_resend = true;
    arm(t.id, p, now);
  }
}

void DevicePort::drain_completed_into(std::vector<DeviceResponse>& out) {
  if (!tracking_) {
    device_->drain_completed_into(out);
    return;
  }
  out.clear();
  std::swap(out, responses_);
}

Cycle DevicePort::next_event_cycle(Cycle now) const {
  if (!tracking_) return kNeverCycle;
  if (!responses_.empty()) return now;
  if (!timers_.empty()) return std::max(timers_.top().cycle, now);
  return kNeverCycle;
}

void DevicePort::checkpoint_save(BinWriter& w) const {
  w.tag("PORT");
  w.u64(stats_.retransmissions);
  w.u64(stats_.nacks);
  w.u64(stats_.timeout_fires);
  w.u64(stats_.spurious_timeouts);
  w.u64(stats_.retransmitted_bytes);
  w.u32(stats_.max_retry_depth);
  w.u64(stats_.poisoned_completions);
  if (!responses_.empty()) {
    throw SnapshotError("PORT: undrained responses at checkpoint");
  }
  // Pending retries in deterministic (id) order; each entry restores with
  // its timer re-armed for the identical cycle.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, p] : pending_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  w.u64(ids.size());
  for (const std::uint64_t id : ids) {
    const Pending& p = pending_.at(id);
    w.u32(p.attempts);
    w.b(p.awaiting_resend);
    w.u64(p.timer_cycle);
    w.u64(p.req.id);
    w.u64(p.req.base);
    w.u32(p.req.bytes);
    w.b(p.req.store);
    w.b(p.req.atomic);
    w.u64(p.req.created_at);
    w.u64(p.req.raw_ids.size());
    for (const std::uint64_t raw : p.req.raw_ids) w.u64(raw);
    w.u64(p.req.raw_blocks.size());
    for (const std::uint16_t blk : p.req.raw_blocks) w.u32(blk);
  }
}

void DevicePort::checkpoint_load(BinReader& r) {
  r.tag("PORT");
  stats_.retransmissions = r.u64();
  stats_.nacks = r.u64();
  stats_.timeout_fires = r.u64();
  stats_.spurious_timeouts = r.u64();
  stats_.retransmitted_bytes = r.u64();
  stats_.max_retry_depth = r.u32();
  stats_.poisoned_completions = r.u64();
  pending_.clear();
  timers_ = {};
  responses_.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    Pending p;
    p.attempts = r.u32();
    p.awaiting_resend = r.b();
    const Cycle timer_cycle = r.u64();
    p.req.id = r.u64();
    p.req.base = r.u64();
    p.req.bytes = r.u32();
    p.req.store = r.b();
    p.req.atomic = r.b();
    p.req.created_at = r.u64();
    const std::uint64_t raws = r.u64();
    p.req.raw_ids.reserve(raws);
    for (std::uint64_t j = 0; j < raws; ++j) p.req.raw_ids.push_back(r.u64());
    const std::uint64_t blocks = r.u64();
    p.req.raw_blocks.reserve(blocks);
    for (std::uint64_t j = 0; j < blocks; ++j) {
      p.req.raw_blocks.push_back(static_cast<std::uint16_t>(r.u32()));
    }
    const std::uint64_t id = p.req.id;
    auto [it, inserted] = pending_.emplace(id, std::move(p));
    if (!inserted) throw SnapshotError("PORT: duplicate pending id");
    arm(id, it->second, timer_cycle);
  }
}

std::string DevicePort::debug_json() const {
  std::size_t awaiting_resend = 0;
  std::uint32_t worst_attempts = 0;
  for (const auto& [id, p] : pending_) {
    if (p.awaiting_resend) ++awaiting_resend;
    worst_attempts = std::max(worst_attempts, p.attempts);
  }
  std::ostringstream out;
  out << "{\"tracking\": " << (tracking_ ? "true" : "false")
      << ", \"pending\": " << pending_.size()
      << ", \"awaiting_resend\": " << awaiting_resend
      << ", \"worst_attempts\": " << worst_attempts
      << ", \"buffered_responses\": " << responses_.size()
      << ", \"armed_timers\": " << timers_.size() << "}";
  return out.str();
}

}  // namespace pacsim
