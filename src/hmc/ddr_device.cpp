#include "hmc/ddr_device.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <sstream>
#include <utility>

#include "common/bitops.hpp"
#include "core/verifier.hpp"

namespace pacsim {

DdrDevice::DdrDevice(const DdrConfig& cfg, PowerModel* power,
                     FaultInjector* fault)
    : cfg_(cfg),
      map_(cfg.map),
      power_(power),
      fault_(fault),
      next_refresh_(cfg.t_refi) {
  assert(cfg_.map.num_vaults <= 64 && "active_channels_ is a 64-bit mask");
  banks_.resize(cfg_.map.num_vaults);
  for (auto& channel : banks_) channel.resize(cfg_.map.banks_per_vault);
  channel_queue_.resize(cfg_.map.num_vaults);
  bus_busy_.assign(cfg_.map.num_vaults, 0);
}

void DdrDevice::schedule(Cycle cycle, EventKind kind, RowTxn* txn,
                         Request* request) {
  events_.push(Event{cycle, next_seq_++, kind, txn, request});
}

DdrDevice::Request* DdrDevice::acquire_request() {
  if (free_requests_.empty()) {
    request_pool_.push_back(std::make_unique<Request>());
    return request_pool_.back().get();
  }
  Request* request = free_requests_.back();
  free_requests_.pop_back();
  return request;
}

DdrDevice::RowTxn* DdrDevice::acquire_row() {
  if (free_rows_.empty()) {
    row_pool_.push_back(std::make_unique<RowTxn>());
    return row_pool_.back().get();
  }
  RowTxn* txn = free_rows_.back();
  free_rows_.pop_back();
  return txn;
}

void DdrDevice::release_request(Request* request) {
  for (RowTxn* row : request->rows) free_rows_.push_back(row);
  request->rows.clear();
  free_requests_.push_back(request);
}

void DdrDevice::submit(DeviceRequest req, Cycle now) {
  assert(can_accept());
  ++outstanding_;

  Request* request = acquire_request();
  request->req = std::move(req);
  request->submit_cycle = now;
  request->last_data_ready = 0;
  request->pending_rows = 0;

  const DeviceRequest& r = request->req;
  auto [slot, inserted] = inflight_.try_emplace(r.id, request);
  assert(inserted && "duplicate DeviceRequest id");
  (void)slot;
  (void)inserted;

  // Injected bus CRC failure: the packet occupied the command path but
  // never reaches a channel queue.
  if (fault_ != nullptr && fault_->corrupt_request()) {
    schedule(now + cfg_.interface_cycles, EventKind::kNack, nullptr, request);
    return;
  }

  ++stats_.requests;
  stats_.payload_bytes += r.bytes;

  const std::uint32_t row_bytes = cfg_.map.row_bytes;
  Addr cursor = r.base;
  const Addr end = r.base + r.bytes;
  while (cursor < end) {
    const Addr row_end = (cursor | (row_bytes - 1)) + 1;
    const std::uint32_t payload =
        static_cast<std::uint32_t>(std::min<Addr>(row_end, end) - cursor);

    RowTxn* txn = acquire_row();
    txn->parent = request;
    txn->loc = map_.decode(cursor);
    txn->payload = payload;
    txn->channel_enqueue = 0;
    txn->data_ready = 0;
    txn->conflict_counted = false;

    schedule(now + cfg_.interface_cycles, EventKind::kChannelArrive, txn,
             request);

    ++request->pending_rows;
    request->rows.push_back(txn);
    cursor = row_end;
  }
}

void DdrDevice::tick(Cycle now) {
  // tREFI grid: all banks of the selected channel refresh for t_rfc and
  // lose their open rows.
  if (cfg_.enable_refresh && now >= next_refresh_) {
    const std::uint32_t channel = refresh_channel_++ % cfg_.map.num_vaults;
    for (DdrBank& bank : banks_[channel]) {
      bank.busy_until = std::max(bank.busy_until, now + cfg_.t_rfc);
      bank.row_open = false;
      power_->add(HmcOp::kDramRefresh, 1.0);
    }
    ++stats_.refreshes;
    next_refresh_ = now + cfg_.t_refi;
  }

  while (!events_.empty() && events_.top().cycle <= now) {
    const Event ev = events_.top();
    events_.pop();
    switch (ev.kind) {
      case EventKind::kChannelArrive: {
        ev.txn->channel_enqueue = ev.cycle;
        channel_queue_[ev.txn->loc.vault].push_back(ev.txn);
        active_channels_ |= (std::uint64_t{1} << ev.txn->loc.vault);
        break;
      }
      case EventKind::kDataReady:
        on_data_ready(*ev.txn, ev.cycle);
        break;
      case EventKind::kComplete: {
        Request& request = *ev.request;
        if (fault_ == nullptr || !fault_->drop_response()) {
          completed_.push_back(DeviceResponse{request.req.id, ev.cycle,
                                              std::move(request.req.raw_ids)});
        } else if (verifier_ != nullptr) {
          verifier_->on_response_dropped(request.req, ev.cycle);
        }
        stats_.access_latency.add(
            static_cast<double>(ev.cycle - request.submit_cycle));
        --outstanding_;
        inflight_.erase(request.req.id);
        release_request(&request);
        break;
      }
      case EventKind::kNack: {
        Request& request = *ev.request;
        nacks_.push_back(DeviceNack{request.req.id, ev.cycle});
        --outstanding_;
        inflight_.erase(request.req.id);
        release_request(&request);
        break;
      }
    }
  }

  // One FR-FCFS issue attempt per channel per cycle.
  std::uint64_t mask = active_channels_;
  while (mask != 0) {
    const std::uint32_t channel =
        static_cast<std::uint32_t>(std::countr_zero(mask));
    mask &= mask - 1;
    channel_dispatch(channel, now);
  }
}

void DdrDevice::channel_dispatch(std::uint32_t channel, Cycle now) {
  auto& queue = channel_queue_[channel];
  if (queue.empty()) {
    active_channels_ &= ~(std::uint64_t{1} << channel);
    return;
  }
  // Transient channel stall (reuses the vault-stall fault class): the
  // oldest txn's bank is held busy for the stall window.
  if (fault_ != nullptr) {
    DdrBank& head_bank = banks_[channel][queue.front()->loc.bank];
    if (!head_bank.busy(now) && fault_->stall_vault()) {
      head_bank.busy_until =
          std::max(head_bank.busy_until, now + fault_->stall_cycles());
    }
  }

  // FR-FCFS: the oldest ready row hit wins; otherwise the oldest request
  // whose bank is free (which activates its row). Arrival order in the
  // deque is age order.
  auto hit_it = queue.end();
  auto ready_it = queue.end();
  for (auto it = queue.begin(); it != queue.end(); ++it) {
    const RowTxn& txn = **it;
    const DdrBank& bank = banks_[channel][txn.loc.bank];
    if (bank.busy(now)) continue;
    if (bank.row_open && bank.open_row == txn.loc.row) {
      hit_it = it;
      break;  // oldest ready hit: nothing older can beat it
    }
    if (ready_it == queue.end()) ready_it = it;
  }
  const auto chosen = hit_it != queue.end() ? hit_it : ready_it;
  if (chosen == queue.end()) {
    // Every queued txn's bank is busy: charge the head-of-line wait, same
    // accounting as the FIFO controllers.
    RowTxn* head = queue.front();
    if (!head->conflict_counted) {
      ++stats_.bank_conflicts;
      head->conflict_counted = true;
    }
    ++stats_.conflict_wait_cycles;
    return;
  }

  RowTxn* txn = *chosen;
  const bool row_hit = chosen == hit_it;
  queue.erase(chosen);
  if (queue.empty()) active_channels_ &= ~(std::uint64_t{1} << channel);
  issue(txn, channel, now, row_hit);
}

void DdrDevice::issue(RowTxn* txn, std::uint32_t channel, Cycle now,
                      bool row_hit) {
  DdrBank& bank = banks_[channel][txn->loc.bank];
  const Cycle burst = std::max<Cycle>(
      1, ceil_div(txn->payload, cfg_.channel_bytes_per_cycle));

  // Column data cannot start before CAS resolves, nor before the channel's
  // shared data bus frees up; the burst then occupies both.
  Cycle col_start;  // cycle the column command's data window opens
  if (row_hit) {
    ++stats_.row_hits;
    col_start = now + cfg_.t_cas;
  } else if (!bank.row_open) {
    ++stats_.row_misses;
    col_start = now + cfg_.t_rcd + cfg_.t_cas;
    bank.ras_until = now + cfg_.t_ras;
    power_->add(HmcOp::kDramAccess, 1.0);
  } else {
    ++stats_.row_misses;
    const Cycle pre_start = std::max(now, bank.ras_until);
    const Cycle act_start = pre_start + cfg_.t_rp;
    col_start = act_start + cfg_.t_rcd + cfg_.t_cas;
    bank.ras_until = act_start + cfg_.t_ras;
    power_->add(HmcOp::kDramAccess, 1.0);
  }
  const Cycle data_start = std::max(col_start, bus_busy_[channel]);
  const Cycle data_ready = data_start + burst;
  bus_busy_[channel] = data_ready;
  bank.row_open = true;
  bank.open_row = txn->loc.row;
  bank.busy_until = data_ready;

  ++stats_.row_accesses;
  power_->add(HmcOp::kDramData, static_cast<double>(txn->payload));
  schedule(data_ready, EventKind::kDataReady, txn, txn->parent);
}

void DdrDevice::on_data_ready(RowTxn& txn, Cycle now) {
  txn.data_ready = now;
  Request& request = *txn.parent;
  request.last_data_ready = std::max(request.last_data_ready, now);
  assert(request.pending_rows > 0);
  if (--request.pending_rows == 0) {
    schedule(request.last_data_ready + cfg_.interface_cycles,
             EventKind::kComplete, nullptr, &request);
  }
}

void DdrDevice::drain_completed_into(std::vector<DeviceResponse>& out) {
  out.clear();
  std::swap(out, completed_);
}

void DdrDevice::drain_nacks_into(std::vector<DeviceNack>& out) {
  out.clear();
  std::swap(out, nacks_);
}

Cycle DdrDevice::next_event_cycle(Cycle now) const {
  // A non-empty scheduler queue attempts an issue (or counts conflict-wait
  // cycles) every cycle.
  if (active_channels_ != 0) return now;
  Cycle bound = kNeverCycle;
  if (!events_.empty()) bound = std::min(bound, events_.top().cycle);
  if (cfg_.enable_refresh) bound = std::min(bound, next_refresh_);
  return std::max(bound, now);
}

std::string DdrDevice::debug_json() const {
  std::size_t queued_rows = 0;
  for (const auto& queue : channel_queue_) queued_rows += queue.size();
  std::ostringstream out;
  out << "{\"outstanding\": " << outstanding_
      << ", \"scheduled_events\": " << events_.size()
      << ", \"queued_row_txns\": " << queued_rows
      << ", \"active_channels\": " << std::popcount(active_channels_)
      << ", \"buffered_responses\": " << completed_.size()
      << ", \"buffered_nacks\": " << nacks_.size() << "}";
  return out.str();
}

}  // namespace pacsim
