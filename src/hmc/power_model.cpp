#include "hmc/power_model.hpp"

namespace pacsim {

void PowerModel::add(HmcOp op, double quantity) {
  PicoJoule unit = 0.0;
  switch (op) {
    case HmcOp::kVaultRqstSlot: unit = cfg_.vault_rqst_slot_cycle; break;
    case HmcOp::kVaultRspSlot: unit = cfg_.vault_rsp_slot_cycle; break;
    case HmcOp::kVaultCtrl: unit = cfg_.vault_ctrl_request; break;
    case HmcOp::kLinkLocalRoute: unit = cfg_.link_packet_local; break;
    case HmcOp::kLinkRemoteRoute: unit = cfg_.link_packet_remote; break;
    case HmcOp::kDramAccess: unit = cfg_.dram_access; break;
    case HmcOp::kDramData: unit = cfg_.dram_byte; break;
    case HmcOp::kDramRefresh: unit = cfg_.dram_refresh_bank; break;
    case HmcOp::kCount: return;
  }
  energy_[static_cast<std::size_t>(op)] += unit * quantity;
}

PicoJoule PowerModel::total() const {
  PicoJoule sum = 0.0;
  for (PicoJoule e : energy_) sum += e;
  return sum;
}

}  // namespace pacsim
