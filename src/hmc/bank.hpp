// A single DRAM bank operating under the HMC closed-page policy.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "hmc/hmc_config.hpp"

namespace pacsim {

/// Closed-page bank: every access activates its row, bursts the data, and
/// precharges. The bank is busy for the full row cycle; data becomes
/// available before the precharge completes.
class Bank {
 public:
  [[nodiscard]] bool busy(Cycle now) const { return now < busy_until_; }
  [[nodiscard]] Cycle busy_until() const { return busy_until_; }

  /// Begin an access of `payload_bytes` at `now` (bank must be free).
  /// Returns the cycle the data burst completes (response can depart).
  Cycle start_access(Cycle now, std::uint32_t payload_bytes,
                     const HmcConfig& cfg) {
    const Cycle burst =
        (payload_bytes + cfg.bank_bytes_per_cycle - 1) / cfg.bank_bytes_per_cycle;
    const Cycle data_ready = now + cfg.t_rcd + cfg.t_cl + burst;
    busy_until_ = data_ready + cfg.t_rp;
    ++accesses_;
    return data_ready;
  }

  /// Hold the bank busy through `until` (refresh or maintenance).
  void occupy_until(Cycle until) {
    if (until > busy_until_) busy_until_ = until;
  }

  [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

  /// Checkpoint restore: reinstate the busy horizon and access count.
  void restore(Cycle busy_until, std::uint64_t accesses) {
    busy_until_ = busy_until;
    accesses_ = accesses;
  }

 private:
  Cycle busy_until_ = 0;
  std::uint64_t accesses_ = 0;
};

}  // namespace pacsim
