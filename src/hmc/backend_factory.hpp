// Config-driven construction of the memory substrate (backend=hmc|hbm|ddr).
#pragma once

#include <memory>

#include "hmc/ddr_config.hpp"
#include "hmc/hbm_config.hpp"
#include "hmc/hmc_config.hpp"
#include "mem/memory_backend.hpp"

namespace pacsim {

class PowerModel;
class FaultInjector;

/// Build the backend selected by `kind` from its config block. `power` is
/// required; `fault` (optional, unowned) enables fault injection.
std::unique_ptr<MemoryBackend> make_backend(BackendKind kind,
                                            const HmcConfig& hmc,
                                            const HbmConfig& hbm,
                                            const DdrConfig& ddr,
                                            PowerModel* power,
                                            FaultInjector* fault = nullptr);

}  // namespace pacsim
