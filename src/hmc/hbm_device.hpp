// Cycle-approximate HBM stack model (backend=hbm).
//
// Shares the event-driven skeleton of HmcDevice but models the substrate
// the paper's HBM protocol descriptor targets:
//   - on-interposer interface: fixed PHY/controller latency each way
//     instead of SERDES serialization and crossbar routing,
//   - 8 independent channels with per-channel FIFO dispatch,
//   - open-page banks with 1 KB rows: hits pay t_cas, misses add t_rcd,
//     conflicts precharge first (honoring t_ras),
//   - 32 B access granule on wide channel buses,
//   - all-bank refresh per channel that closes the open rows.
//
// Energy accounting only touches the DRAM classes (DRAM-ACCESS, DRAM-DATA,
// DRAM-REFRESH): the HMC link/vault classes do not exist on this substrate
// and stay zero (the JSON report nulls them out explicitly).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "core/fault_injector.hpp"
#include "hmc/hbm_config.hpp"
#include "hmc/power_model.hpp"
#include "mem/address_map.hpp"
#include "mem/backend_stats.hpp"
#include "mem/memory_backend.hpp"
#include "mem/request.hpp"

namespace pacsim {

class Verifier;

class HbmDevice final : public MemoryBackend {
 public:
  HbmDevice(const HbmConfig& cfg, PowerModel* power,
            FaultInjector* fault = nullptr);

  [[nodiscard]] BackendKind kind() const override {
    return BackendKind::kHbm;
  }
  [[nodiscard]] bool can_accept() const override {
    return outstanding_ < cfg_.max_outstanding;
  }
  void submit(DeviceRequest req, Cycle now) override;
  void tick(Cycle now) override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  void drain_completed_into(std::vector<DeviceResponse>& out) override;
  void drain_nacks_into(std::vector<DeviceNack>& out) override;
  [[nodiscard]] bool in_flight(std::uint64_t id) const override {
    return inflight_.count(id) != 0;
  }
  [[nodiscard]] bool idle() const override { return outstanding_ == 0; }
  [[nodiscard]] std::uint32_t outstanding() const override {
    return outstanding_;
  }
  [[nodiscard]] const BackendStats& stats() const override { return stats_; }
  [[nodiscard]] const HbmConfig& config() const { return cfg_; }
  [[nodiscard]] const AddressMap& address_map() const override {
    return map_;
  }
  void set_verifier(Verifier* verifier) override { verifier_ = verifier; }
  [[nodiscard]] std::string debug_json() const override;

  /// Quiescent-point state: stats, sequence allocator, refresh grid, and
  /// per-bank open-row / busy-horizon state (open pages persist across
  /// idleness and change future hit/miss outcomes).
  void checkpoint_save(BinWriter& w) const override {
    w.tag("HBMD");
    stats_.checkpoint_save(w);
    w.u64(next_seq_);
    w.u64(next_refresh_);
    w.u32(refresh_channel_);
    w.u64(banks_.size());
    w.u64(banks_.empty() ? 0 : banks_[0].size());
    for (const auto& channel : banks_) {
      for (const HbmBank& bank : channel) {
        w.u64(bank.busy_until);
        w.u64(bank.ras_until);
        w.u64(bank.open_row);
        w.b(bank.row_open);
      }
    }
  }
  void checkpoint_load(BinReader& r) override {
    r.tag("HBMD");
    stats_.checkpoint_load(r);
    next_seq_ = r.u64();
    next_refresh_ = r.u64();
    refresh_channel_ = r.u32();
    if (r.u64() != banks_.size() ||
        r.u64() != (banks_.empty() ? 0 : banks_[0].size())) {
      throw SnapshotError("hbm bank geometry mismatch");
    }
    for (auto& channel : banks_) {
      for (HbmBank& bank : channel) {
        bank.busy_until = r.u64();
        bank.ras_until = r.u64();
        bank.open_row = r.u64();
        bank.row_open = r.b();
      }
    }
  }

 private:
  struct Request;

  /// One per-row column access belonging to a Request.
  struct RowTxn {
    Request* parent = nullptr;
    DramLocation loc;  ///< loc.vault is the channel index
    std::uint32_t payload = 0;
    Cycle channel_enqueue = 0;
    Cycle data_ready = 0;
    bool conflict_counted = false;
  };

  struct Request {
    DeviceRequest req;
    Cycle submit_cycle = 0;
    Cycle last_data_ready = 0;
    std::uint32_t pending_rows = 0;
    std::vector<RowTxn*> rows;
  };

  /// Open-page bank: tracks the open row and the earliest legal precharge.
  struct HbmBank {
    Cycle busy_until = 0;
    Cycle ras_until = 0;  ///< activate + t_ras (precharge not before this)
    std::uint64_t open_row = 0;
    bool row_open = false;
    [[nodiscard]] bool busy(Cycle now) const { return now < busy_until; }
  };

  enum class EventKind : std::uint8_t {
    kChannelArrive,
    kDataReady,
    kComplete,
    kNack,  ///< injected interface CRC failure
  };

  struct Event {
    Cycle cycle;
    std::uint64_t seq;
    EventKind kind;
    RowTxn* txn;
    Request* request;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      return a.cycle != b.cycle ? a.cycle > b.cycle : a.seq > b.seq;
    }
  };

  void schedule(Cycle cycle, EventKind kind, RowTxn* txn, Request* request);
  void channel_dispatch(std::uint32_t channel, Cycle now);
  void on_data_ready(RowTxn& txn, Cycle now);

  Request* acquire_request();
  RowTxn* acquire_row();
  void release_request(Request* request);

  HbmConfig cfg_;
  AddressMap map_;
  PowerModel* power_;
  FaultInjector* fault_;
  Verifier* verifier_ = nullptr;
  BackendStats stats_;

  std::uint32_t outstanding_ = 0;
  std::uint64_t next_seq_ = 0;
  Cycle next_refresh_ = 0;
  std::uint32_t refresh_channel_ = 0;

  std::vector<std::vector<HbmBank>> banks_;        ///< [channel][bank]
  std::vector<std::deque<RowTxn*>> channel_queue_;
  std::uint64_t active_channels_ = 0;

  std::priority_queue<Event, std::vector<Event>, EventLater> events_;
  std::unordered_map<std::uint64_t, Request*> inflight_;
  std::vector<DeviceResponse> completed_;
  std::vector<DeviceNack> nacks_;

  std::vector<std::unique_ptr<Request>> request_pool_;
  std::vector<Request*> free_requests_;
  std::vector<std::unique_ptr<RowTxn>> row_pool_;
  std::vector<RowTxn*> free_rows_;
};

}  // namespace pacsim
