#include "hmc/backend_factory.hpp"

#include "hmc/ddr_device.hpp"
#include "hmc/hbm_device.hpp"
#include "hmc/hmc_device.hpp"

namespace pacsim {

std::unique_ptr<MemoryBackend> make_backend(BackendKind kind,
                                            const HmcConfig& hmc,
                                            const HbmConfig& hbm,
                                            const DdrConfig& ddr,
                                            PowerModel* power,
                                            FaultInjector* fault) {
  switch (kind) {
    case BackendKind::kHmc:
      return std::make_unique<HmcDevice>(hmc, power, fault);
    case BackendKind::kHbm:
      return std::make_unique<HbmDevice>(hbm, power, fault);
    case BackendKind::kDdr:
      return std::make_unique<DdrDevice>(ddr, power, fault);
  }
  return nullptr;  // unreachable: the enum is exhaustive
}

}  // namespace pacsim
