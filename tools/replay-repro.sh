#!/usr/bin/env sh
# Replay a chaos-soak reproducer file (written by bench_soak or downloaded
# from a CI soak artifact) through the full differential oracle stack.
#
# Usage:
#   tools/replay-repro.sh <repro-file> [build-dir]
#
# Exits with bench_soak's replay status: 0 when the case is now clean,
# 1 when it still fails (verdict printed), 2 when the file cannot be
# loaded. The build directory defaults to ./build; pass a sanitizer build
# dir (e.g. build-asan) to replay under instrumentation.
set -eu

if [ "$#" -lt 1 ]; then
  echo "usage: $0 <repro-file> [build-dir]" >&2
  exit 2
fi

repro=$1
build=${2:-build}
bench="$build/bench/bench_soak"

if [ ! -f "$repro" ]; then
  echo "replay-repro: no such reproducer file: $repro" >&2
  exit 2
fi
if [ ! -x "$bench" ]; then
  echo "replay-repro: $bench not built (cmake --build $build --target bench_soak)" >&2
  exit 2
fi

exec "$bench" "repro=$repro"
