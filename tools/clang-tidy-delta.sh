#!/usr/bin/env sh
# Run clang-tidy (config: .clang-tidy at the repo root) over the simulator
# sources, using the compile_commands.json that CMake exports.
#
# Usage:
#   tools/clang-tidy-delta.sh [build-dir] [file...]
#
# With no files, checks every .cpp under src/ (the default CI sweep). Pass
# explicit files to check just a delta, e.g. the files touched by a branch:
#   tools/clang-tidy-delta.sh build $(git diff --name-only main -- '*.cpp')
#
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call from environments that lack the tool.
set -eu

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy-delta: clang-tidy not installed, skipping" >&2
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "clang-tidy-delta: $BUILD_DIR/compile_commands.json missing;" \
       "configure with 'cmake -B $BUILD_DIR -S .' first" >&2
  exit 1
fi

if [ "$#" -gt 0 ]; then
  FILES="$*"
else
  FILES=$(find src -name '*.cpp' | sort)
fi

STATUS=0
for f in $FILES; do
  case "$f" in
    *.cpp) ;;
    *) continue ;;
  esac
  [ -f "$f" ] || continue
  echo "clang-tidy-delta: $f" >&2
  clang-tidy -p "$BUILD_DIR" --quiet "$f" || STATUS=1
done
exit $STATUS
