// TraceStore: memoization, warm tier, eviction, concurrency, and the
// differential proof that store-fed runs are byte-identical to fresh
// generation for every coalescer kind, the multiprocess path, and sweeps.
#include "core/trace_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "exp/sweep_runner.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "workloads/workload.hpp"

namespace pacsim {
namespace {

WorkloadConfig small_wcfg() {
  WorkloadConfig wcfg;
  wcfg.num_cores = 2;
  wcfg.max_ops_per_core = 1500;
  wcfg.scale = 0.25;
  return wcfg;
}

TraceSet tiny_set(std::uint64_t salt, std::size_t ops = 4) {
  TraceSet traces(2);
  for (std::size_t core = 0; core < traces.size(); ++core) {
    for (std::size_t i = 0; i < ops; ++i) {
      traces[core].push_back(
          {salt * 0x1000 + core * 0x100 + i * 64, 8, OpKind::kLoad});
    }
  }
  return traces;
}

struct TempDir {
  std::filesystem::path path;
  explicit TempDir(const char* name)
      : path(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(path);
  }
  ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(TraceKeyTest, HashCoversEveryGenerationField) {
  const WorkloadConfig base = small_wcfg();
  const std::uint64_t h0 = workload_config_hash(base);
  EXPECT_EQ(h0, workload_config_hash(base)) << "hash must be deterministic";

  WorkloadConfig w = base;
  w.num_cores = 4;
  EXPECT_NE(workload_config_hash(w), h0);
  w = base;
  w.seed = 43;
  EXPECT_NE(workload_config_hash(w), h0);
  w = base;
  w.max_ops_per_core = 1501;
  EXPECT_NE(workload_config_hash(w), h0);
  w = base;
  w.scale = 0.5;
  EXPECT_NE(workload_config_hash(w), h0);
  w = base;
  w.compute_scale = 2.0;
  EXPECT_NE(workload_config_hash(w), h0);
}

TEST(TraceKeyTest, DistinguishesSuitesAndNamesFiles) {
  const WorkloadConfig wcfg = small_wcfg();
  const TraceKey a = trace_key(*find_workload("stream"), wcfg);
  const TraceKey b = trace_key(*find_workload("gs"), wcfg);
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.suite, "stream");
  EXPECT_NE(a.filename().find("stream-"), std::string::npos);
  EXPECT_NE(a.filename().find(".pactrace"), std::string::npos);
}

TEST(TraceStoreTest, MemoizesGenerationPerKey) {
  TraceStore store;
  std::atomic<int> calls{0};
  const TraceKey key{"synthetic", 1};
  const auto gen = [&calls] {
    ++calls;
    return tiny_set(1);
  };

  const TraceStore::Acquired first = store.get(key, gen);
  EXPECT_EQ(first.source, TraceStore::Source::kGenerated);
  EXPECT_GT(first.traces->size(), 0u);

  const TraceStore::Acquired second = store.get(key, gen);
  EXPECT_EQ(second.source, TraceStore::Source::kMemory);
  EXPECT_EQ(second.seconds, 0.0);
  EXPECT_EQ(first.traces.get(), second.traces.get())
      << "hits must share the same immutable storage";
  EXPECT_EQ(calls.load(), 1);

  const TraceStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.bytes_resident, trace_set_bytes(*first.traces));
}

TEST(TraceStoreTest, DistinctKeysGenerateIndependently) {
  TraceStore store;
  std::atomic<int> calls{0};
  const auto gen = [&calls] {
    ++calls;
    return tiny_set(2);
  };
  (void)store.get(TraceKey{"a", 1}, gen);
  (void)store.get(TraceKey{"a", 2}, gen);  // same suite, other config
  (void)store.get(TraceKey{"b", 1}, gen);
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(store.stats().misses, 3u);
}

TEST(TraceStoreTest, ReleaseDropsResidencyButKeepsHandlesAlive) {
  TraceStore store;
  const TraceKey key{"released", 7};
  const TraceStore::Acquired held =
      store.get(key, [] { return tiny_set(7); });
  store.release(key);

  TraceStoreStats stats = store.stats();
  EXPECT_EQ(stats.bytes_resident, 0u);
  EXPECT_EQ(stats.evictions, 1u);
  // The outstanding handle still reads valid data.
  EXPECT_EQ(*held.traces, tiny_set(7));

  // The next get regenerates.
  const TraceStore::Acquired again =
      store.get(key, [] { return tiny_set(7); });
  EXPECT_EQ(again.source, TraceStore::Source::kGenerated);
  EXPECT_EQ(store.stats().misses, 2u);
  EXPECT_EQ(*again.traces, *held.traces);
}

TEST(TraceStoreTest, CapacityEvictsLeastRecentlyUsed) {
  TraceStore::Options opts;
  opts.max_resident_bytes = trace_set_bytes(tiny_set(0)) + 8;
  TraceStore store(opts);

  const TraceStore::Acquired a =
      store.get(TraceKey{"lru-a", 1}, [] { return tiny_set(1); });
  const TraceStore::Acquired b =
      store.get(TraceKey{"lru-b", 2}, [] { return tiny_set(2); });
  const TraceStoreStats stats = store.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes_resident, opts.max_resident_bytes);
  // Evicted entries stay alive through outstanding handles.
  EXPECT_EQ(*a.traces, tiny_set(1));
  EXPECT_EQ(*b.traces, tiny_set(2));
  // "lru-a" was evicted, so re-acquiring it is a fresh miss.
  const TraceStore::Acquired a2 =
      store.get(TraceKey{"lru-a", 1}, [] { return tiny_set(1); });
  EXPECT_EQ(a2.source, TraceStore::Source::kGenerated);
}

TEST(TraceStoreTest, WarmTierPersistsAcrossStores) {
  TempDir dir("pacsim_warm_tier");
  TraceStore::Options opts;
  opts.warm_dir = dir.path.string();

  const TraceKey key{"warm", 0xBEEF};
  std::atomic<int> calls{0};
  const auto gen = [&calls] {
    ++calls;
    return tiny_set(3, 64);
  };

  TraceStore cold(opts);
  const TraceStore::Acquired generated = cold.get(key, gen);
  EXPECT_EQ(generated.source, TraceStore::Source::kGenerated);
  EXPECT_TRUE(std::filesystem::exists(dir.path / key.filename()));

  // A brand-new store (fresh process, conceptually) loads from disk.
  TraceStore warm(opts);
  const TraceStore::Acquired loaded = warm.get(key, gen);
  EXPECT_EQ(loaded.source, TraceStore::Source::kWarmTier);
  EXPECT_EQ(calls.load(), 1) << "warm hit must not regenerate";
  EXPECT_EQ(*loaded.traces, *generated.traces)
      << "warm tier must round-trip traces byte-identically";
  EXPECT_EQ(warm.stats().warm_hits, 1u);
  EXPECT_EQ(warm.stats().misses, 0u);
}

TEST(TraceStoreTest, CorruptWarmFileFallsBackToGeneration) {
  TempDir dir("pacsim_warm_corrupt");
  TraceStore::Options opts;
  opts.warm_dir = dir.path.string();
  const TraceKey key{"corrupt", 5};

  std::filesystem::create_directories(dir.path);
  {
    std::ofstream out(dir.path / key.filename(), std::ios::binary);
    out << "THIS IS NOT A TRACE FILE";
  }

  TraceStore store(opts);
  const TraceStore::Acquired got =
      store.get(key, [] { return tiny_set(5); });
  EXPECT_EQ(got.source, TraceStore::Source::kGenerated);
  EXPECT_EQ(*got.traces, tiny_set(5));

  // The corrupt file was replaced by a valid one.
  TraceStore reread(opts);
  const TraceStore::Acquired fixed =
      store.get(key, [] { return tiny_set(5); });  // memory hit
  const TraceStore::Acquired from_disk =
      reread.get(key, [] { return tiny_set(5); });
  EXPECT_EQ(from_disk.source, TraceStore::Source::kWarmTier);
  EXPECT_EQ(*from_disk.traces, *fixed.traces);
}

TEST(TraceStoreTest, ConcurrentGetsGenerateExactlyOnce) {
  TraceStore store;
  std::atomic<int> calls{0};
  const TraceKey key{"concurrent", 9};

  constexpr int kThreads = 8;
  std::vector<SharedTraceSet> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      seen[i] = store
                    .get(key,
                         [&calls] {
                           ++calls;
                           return tiny_set(9, 256);
                         })
                    .traces;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(calls.load(), 1);
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[i].get(), seen[0].get());
  }
  const TraceStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
}

// ---------------------------------------------------------------------------
// Differential proofs: store-fed runs vs fresh generation.

constexpr CoalescerKind kAllKinds[] = {
    CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
    CoalescerKind::kSortingDmc, CoalescerKind::kPac};

std::string report_of(const std::string& label, CoalescerKind kind,
                      const RunResult& r) {
  // The serialized report covers every metric a table could print; the
  // sim_throughput block is wall-clock derived and legitimately differs.
  return run_report_json(label, kind, r, /*include_throughput=*/false);
}

TEST(TraceStoreDifferential, StoreTracesMatchFreshGeneration) {
  const WorkloadConfig wcfg = small_wcfg();
  TraceStore store;
  for (const char* name : {"stream", "gs", "bfs"}) {
    const Workload* suite = find_workload(name);
    const TraceStore::Acquired acquired =
        acquire_traces(&store, *suite, wcfg);
    EXPECT_EQ(*acquired.traces, suite->generate(wcfg))
        << name << ": memoized traces must be byte-identical";
  }
}

TEST(TraceStoreDifferential, RunSuiteMatchesFreshForEveryKind) {
  const WorkloadConfig wcfg = small_wcfg();
  const Workload* suite = find_workload("stream");

  TempDir dir("pacsim_diff_warm");
  TraceStore::Options opts;
  opts.warm_dir = dir.path.string();
  TraceStore store(opts);

  for (CoalescerKind kind : kAllKinds) {
    const std::string label =
        "stream/" + std::string(to_string(kind));
    const RunResult fresh =
        run_suite(*suite, kind, wcfg, SystemConfig{}, nullptr);
    const RunResult cached =
        run_suite(*suite, kind, wcfg, SystemConfig{}, &store);
    EXPECT_EQ(report_of(label, kind, fresh), report_of(label, kind, cached))
        << label << ": store-fed run diverged from fresh generation";
  }
  // All four kinds consumed one trace set: exactly one generation.
  EXPECT_EQ(store.stats().misses, 1u);
  EXPECT_EQ(store.stats().hits, 3u);

  // Warm tier: a fresh store in the same directory loads from disk and
  // still produces identical results.
  TraceStore warm(opts);
  const RunResult from_disk = run_suite(*suite, CoalescerKind::kPac, wcfg,
                                        SystemConfig{}, &warm);
  const RunResult fresh = run_suite(*suite, CoalescerKind::kPac, wcfg,
                                    SystemConfig{}, nullptr);
  EXPECT_EQ(warm.stats().warm_hits, 1u);
  EXPECT_EQ(report_of("warm", CoalescerKind::kPac, from_disk),
            report_of("warm", CoalescerKind::kPac, fresh));
}

TEST(TraceStoreDifferential, MultiprocessMatchesFresh) {
  WorkloadConfig wcfg = small_wcfg();
  wcfg.num_cores = 3;  // odd split exercises the remainder-core path
  const Workload* first = find_workload("stream");
  const Workload* second = find_workload("gs");

  TraceStore store;
  for (CoalescerKind kind : {CoalescerKind::kPac, CoalescerKind::kMshrDmc}) {
    const RunResult fresh = run_multiprocess(*first, *second, kind, wcfg,
                                             SystemConfig{}, nullptr);
    const RunResult cached = run_multiprocess(*first, *second, kind, wcfg,
                                              SystemConfig{}, &store);
    EXPECT_EQ(report_of("mp", kind, fresh), report_of("mp", kind, cached))
        << to_string(kind) << ": multiprocess store run diverged";
  }
  // Two half-configs, each generated once across both kinds.
  EXPECT_EQ(store.stats().misses, 2u);
  EXPECT_EQ(store.stats().hits, 2u);
}

TEST(TraceStoreDifferential, SweepGeneratesEachTraceSetExactlyOnce) {
  const WorkloadConfig wcfg = small_wcfg();
  std::vector<exp::SweepJob> sweep;
  std::size_t unique_suites = 0;
  for (const char* name : {"stream", "bfs"}) {
    ++unique_suites;
    for (CoalescerKind kind : kAllKinds) {
      exp::SweepJob job;
      job.suite = find_workload(name);
      job.cfg.coalescer = kind;
      job.label = std::string(name) + "/" + std::string(to_string(kind));
      sweep.push_back(std::move(job));
    }
  }

  TraceStore store;
  const std::vector<RunResult> shared =
      exp::SweepRunner(4).run(sweep, wcfg, &store);
  const std::vector<RunResult> ephemeral =
      exp::SweepRunner(4).run(sweep, wcfg, nullptr);
  const std::vector<RunResult> serial =
      exp::SweepRunner(1).run(sweep, wcfg, nullptr);

  const TraceStoreStats stats = store.stats();
  EXPECT_EQ(stats.misses, unique_suites)
      << "each sweep point must generate its trace set exactly once";
  EXPECT_EQ(stats.hits, sweep.size() - unique_suites);
  EXPECT_EQ(stats.evictions, 0u) << "external stores keep entries resident";

  ASSERT_EQ(shared.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const std::string want =
        report_of(sweep[i].label, sweep[i].cfg.coalescer, serial[i]);
    EXPECT_EQ(report_of(sweep[i].label, sweep[i].cfg.coalescer, shared[i]),
              want)
        << sweep[i].label << ": shared-store sweep diverged from serial";
    EXPECT_EQ(report_of(sweep[i].label, sweep[i].cfg.coalescer, ephemeral[i]),
              want)
        << sweep[i].label << ": ephemeral-store sweep diverged from serial";
  }
}

TEST(TraceStoreDifferential, SharedTraceSetSimulateMatchesVectorPath) {
  const WorkloadConfig wcfg = small_wcfg();
  const Workload* suite = find_workload("gs");
  const TraceSet traces = suite->generate(wcfg);
  SystemConfig cfg;
  cfg.num_cores = wcfg.num_cores;

  const RunResult by_vector = simulate(cfg, traces);
  const RunResult by_set = simulate(
      cfg, std::make_shared<const TraceSet>(suite->generate(wcfg)));
  EXPECT_EQ(report_of("gs", cfg.coalescer, by_vector),
            report_of("gs", cfg.coalescer, by_set));
}

}  // namespace
}  // namespace pacsim
