#include "pac/request_aggregator.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

MemRequest req(std::uint64_t id, Addr paddr, MemOp op = MemOp::kLoad,
               std::uint32_t bytes = 64) {
  MemRequest r;
  r.id = id;
  r.paddr = paddr;
  r.bytes = bytes;
  r.op = op;
  return r;
}

Addr addr(Addr ppn, unsigned block) {
  return (ppn << kPageShift) | (static_cast<Addr>(block) << 6);
}

struct AggregatorTest : ::testing::Test {
  PacConfig cfg;
  PacStats stats;
  RequestAggregator agg{cfg, &stats};
};

TEST_F(AggregatorTest, AllocatesOnFirstRequest) {
  EXPECT_EQ(agg.insert(req(1, addr(9, 1)), 0),
            RequestAggregator::InsertResult::kAllocated);
  EXPECT_EQ(agg.active_streams(), 1u);
  const CoalescingStream& s = agg.streams()[0];
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.ppn, 9u);
  EXPECT_TRUE(s.map.test(1));
  EXPECT_FALSE(s.coalescing());  // C bit stays 0 with one request
}

TEST_F(AggregatorTest, MergesSamePageSameType) {
  agg.insert(req(1, addr(9, 1)), 0);
  EXPECT_EQ(agg.insert(req(2, addr(9, 2)), 1),
            RequestAggregator::InsertResult::kMerged);
  EXPECT_EQ(agg.active_streams(), 1u);
  const CoalescingStream& s = agg.streams()[0];
  EXPECT_TRUE(s.coalescing());  // C bit set (paper: >= 2 requests)
  EXPECT_TRUE(s.map.test(1));
  EXPECT_TRUE(s.map.test(2));
  EXPECT_EQ(s.raws.size(), 2u);
}

TEST_F(AggregatorTest, LoadsAndStoresNeverShareAStream) {
  // Paper Fig 5(b): request 2 (write) is not merged into the read stream.
  agg.insert(req(1, addr(9, 1), MemOp::kLoad), 0);
  EXPECT_EQ(agg.insert(req(2, addr(9, 3), MemOp::kStore), 0),
            RequestAggregator::InsertResult::kAllocated);
  EXPECT_EQ(agg.active_streams(), 2u);
}

TEST_F(AggregatorTest, DistinctPagesAllocateSeparateStreams) {
  agg.insert(req(1, addr(9, 1)), 0);
  agg.insert(req(2, addr(10, 1)), 0);
  EXPECT_EQ(agg.active_streams(), 2u);
}

TEST_F(AggregatorTest, NoStreamWhenAllBusy) {
  for (std::uint32_t i = 0; i < cfg.num_streams; ++i) {
    ASSERT_EQ(agg.insert(req(i + 1, addr(100 + i, 0)), 0),
              RequestAggregator::InsertResult::kAllocated);
  }
  EXPECT_EQ(agg.insert(req(99, addr(999, 0)), 0),
            RequestAggregator::InsertResult::kNoStream);
}

TEST_F(AggregatorTest, TimeoutFlush) {
  agg.insert(req(1, addr(9, 1)), 0);
  EXPECT_FALSE(agg.has_flushable(cfg.timeout - 1));
  EXPECT_TRUE(agg.has_flushable(cfg.timeout));
  auto s = agg.take_flushable(cfg.timeout);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ppn, 9u);
  EXPECT_EQ(agg.active_streams(), 0u);
  EXPECT_EQ(stats.timeout_flushes, 1u);
}

TEST_F(AggregatorTest, OldestStreamFlushedFirst) {
  agg.insert(req(1, addr(1, 0)), 0);
  agg.insert(req(2, addr(2, 0)), 5);
  auto s = agg.take_flushable(100);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ppn, 1u);
}

TEST_F(AggregatorTest, FlushClassFiltering) {
  agg.insert(req(1, addr(1, 0)), 0);  // single (C=0)
  agg.insert(req(2, addr(2, 0)), 0);
  agg.insert(req(3, addr(2, 1)), 0);  // coalescing (C=1)
  EXPECT_TRUE(
      agg.has_flushable(100, RequestAggregator::FlushClass::kSingle));
  EXPECT_TRUE(
      agg.has_flushable(100, RequestAggregator::FlushClass::kCoalescing));
  auto c = agg.take_flushable(100, RequestAggregator::FlushClass::kCoalescing);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->ppn, 2u);
  auto s = agg.take_flushable(100, RequestAggregator::FlushClass::kSingle);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->ppn, 1u);
  EXPECT_FALSE(agg.take_flushable(100).has_value());
}

TEST_F(AggregatorTest, FenceForcesImmediateFlush) {
  agg.insert(req(1, addr(1, 0)), 0);
  agg.insert(req(2, addr(2, 0)), 0);
  agg.force_flush_all();
  EXPECT_TRUE(agg.has_flushable(1));  // well before the timeout
  EXPECT_TRUE(agg.take_flushable(1).has_value());
  EXPECT_TRUE(agg.take_flushable(1).has_value());
  EXPECT_EQ(stats.fence_flushes, 2u);
}

TEST_F(AggregatorTest, ForceFlushedStreamRefusesMerges) {
  agg.insert(req(1, addr(9, 1)), 0);
  agg.force_flush_all();
  // A new request to the same page must not join the fenced stream.
  EXPECT_EQ(agg.insert(req(2, addr(9, 2)), 1),
            RequestAggregator::InsertResult::kAllocated);
  EXPECT_EQ(agg.active_streams(), 2u);
}

TEST_F(AggregatorTest, AggregatorDoesNotBillComparisonsItself) {
  // Comparison accounting lives in Pac::accept (one pass per accepted
  // request); the aggregator's match/allocate primitives stay free so that
  // stall retries are not double-billed.
  agg.insert(req(1, addr(1, 0)), 0);
  agg.insert(req(2, addr(2, 0)), 0);
  agg.insert(req(3, addr(3, 0)), 0);
  EXPECT_EQ(stats.base.comparisons, 0u);
  EXPECT_EQ(agg.active_streams(), 3u);
}

TEST_F(AggregatorTest, CrossPageProbeDetectsBoundaryAdjacency) {
  // Last block of page 5, then block 0 of page 6: physically adjacent but
  // in different pages - the Fig 2 opportunity counter must tick.
  agg.insert(req(1, addr(5, 63)), 0);
  agg.insert(req(2, addr(6, 0)), 1);
  EXPECT_EQ(stats.cross_page_adjacent, 1u);
  // And the reverse direction.
  agg.insert(req(3, addr(8, 0)), 2);
  agg.insert(req(4, addr(7, 63)), 3);
  EXPECT_EQ(stats.cross_page_adjacent, 2u);
}

TEST_F(AggregatorTest, CrossPageProbeIgnoresNonAdjacent) {
  agg.insert(req(1, addr(5, 10)), 0);
  agg.insert(req(2, addr(6, 0)), 1);
  EXPECT_EQ(stats.cross_page_adjacent, 0u);
}

TEST_F(AggregatorTest, FullChunkFlushExtension) {
  cfg.flush_on_full_chunk = true;
  RequestAggregator ext(cfg, &stats);
  for (unsigned b = 0; b < 4; ++b) {
    ext.insert(req(b + 1, addr(9, b)), 0);
  }
  // Chunk 0 (blocks 0-3) is complete: flush due well before the timeout.
  EXPECT_TRUE(ext.has_flushable(1));
}

TEST_F(AggregatorTest, FineGranularityMultiBlockRaw) {
  cfg.protocol = CoalescingProtocol::hmc_fine();
  RequestAggregator fine(cfg, &stats);
  // An 8 B access straddling a 16 B boundary covers two fine blocks.
  MemRequest r = req(1, (42ULL << kPageShift) + 12, MemOp::kLoad, 8);
  fine.insert(r, 0);
  const CoalescingStream& s = fine.streams()[0];
  EXPECT_TRUE(s.map.test(0));
  EXPECT_TRUE(s.map.test(1));
  EXPECT_EQ(s.map.count(), 2u);
}

}  // namespace
}  // namespace pacsim
