// Parameterized checks over all 14 workload suites.
#include "workloads/workload.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/trace_recorder.hpp"

namespace pacsim {
namespace {

WorkloadConfig small_cfg() {
  WorkloadConfig cfg;
  cfg.num_cores = 4;
  cfg.max_ops_per_core = 5000;
  cfg.scale = 0.25;
  cfg.seed = 123;
  return cfg;
}

class AllSuites : public ::testing::TestWithParam<const Workload*> {};

TEST_P(AllSuites, ProducesOneTracePerCore) {
  const auto traces = GetParam()->generate(small_cfg());
  ASSERT_EQ(traces.size(), 4u);
  for (const Trace& t : traces) {
    EXPECT_FALSE(t.empty());
    EXPECT_LE(t.size(), 5000u);
  }
}

TEST_P(AllSuites, DeterministicForSameSeed) {
  const auto a = GetParam()->generate(small_cfg());
  const auto b = GetParam()->generate(small_cfg());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
    for (std::size_t i = 0; i < a[c].size(); ++i) {
      EXPECT_EQ(a[c][i].vaddr, b[c][i].vaddr);
      EXPECT_EQ(a[c][i].arg, b[c][i].arg);
      EXPECT_EQ(a[c][i].kind, b[c][i].kind);
    }
  }
}

TEST_P(AllSuites, ContainsMemoryTraffic) {
  const auto traces = GetParam()->generate(small_cfg());
  std::uint64_t loads = 0, stores = 0, computes = 0;
  for (const Trace& t : traces) {
    for (const TraceOp& op : t) {
      loads += op.kind == OpKind::kLoad;
      stores += op.kind == OpKind::kStore;
      computes += op.kind == OpKind::kCompute;
    }
  }
  EXPECT_GT(loads + stores, 0u);
  EXPECT_GT(computes, 0u) << "kernels must model non-memory work";
}

TEST_P(AllSuites, AccessSizesAreReasonable) {
  const auto traces = GetParam()->generate(small_cfg());
  for (const Trace& t : traces) {
    for (const TraceOp& op : t) {
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore ||
          op.kind == OpKind::kAtomic) {
        EXPECT_GE(op.arg, 1u);
        EXPECT_LE(op.arg, 64u);
      }
    }
  }
}

TEST_P(AllSuites, AddressesAboveArenaBase) {
  const auto traces = GetParam()->generate(small_cfg());
  for (const Trace& t : traces) {
    for (const TraceOp& op : t) {
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
        EXPECT_GE(op.vaddr, 0x1000'0000u);
        EXPECT_LT(op.vaddr, 1ULL << 40);
      }
    }
  }
}

TEST_P(AllSuites, ComputeScaleStretchesGaps) {
  WorkloadConfig base = small_cfg();
  base.compute_scale = 1.0;
  WorkloadConfig wide = small_cfg();
  wide.compute_scale = 8.0;
  auto total_compute = [](const std::vector<Trace>& traces) {
    std::uint64_t sum = 0;
    for (const Trace& t : traces) {
      for (const TraceOp& op : t) {
        if (op.kind == OpKind::kCompute) sum += op.arg;
      }
    }
    return sum;
  };
  const auto a = total_compute(GetParam()->generate(base));
  const auto b = total_compute(GetParam()->generate(wide));
  EXPECT_GT(b, a);
}

INSTANTIATE_TEST_SUITE_P(Suites, AllSuites,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& info) {
                           return std::string(info.param->name());
                         });

TEST(WorkloadRegistry, FourteenSuites) {
  EXPECT_EQ(all_workloads().size(), 14u);
}

TEST(WorkloadRegistry, NamesAreUnique) {
  std::set<std::string_view> names;
  for (const Workload* w : all_workloads()) {
    EXPECT_TRUE(names.insert(w->name()).second) << w->name();
    EXPECT_FALSE(w->description().empty());
  }
}

TEST(WorkloadRegistry, FindByName) {
  EXPECT_NE(find_workload("bfs"), nullptr);
  EXPECT_EQ(find_workload("bfs")->name(), "bfs");
  EXPECT_EQ(find_workload("nonexistent"), nullptr);
  EXPECT_EQ(workload_names().size(), 14u);
}

TEST(TraceRecorder, StopsAtBudget) {
  Trace out;
  TraceRecorder rec(&out, 3);
  rec.load(0x100);
  rec.store(0x200);
  rec.load(0x300);
  EXPECT_TRUE(rec.full());
  EXPECT_THROW(rec.load(0x400), TraceRecorder::TraceFull);
  EXPECT_EQ(out.size(), 3u);
}

TEST(TraceRecorder, MergesAdjacentCompute) {
  Trace out;
  TraceRecorder rec(&out, 10);
  rec.compute(2);
  rec.compute(3);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arg, 5u);
  rec.load(0x100);
  rec.compute(1);
  EXPECT_EQ(out.size(), 3u);
}

TEST(TraceRecorder, ComputeScaleRounds) {
  Trace out;
  TraceRecorder rec(&out, 10);
  rec.set_compute_scale(2.5);
  rec.compute(2);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].arg, 5u);
}

TEST(TraceRecorder, ZeroComputeElided) {
  Trace out;
  TraceRecorder rec(&out, 10);
  rec.compute(0);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace pacsim
