// Encoding-level tests of the assembler (golden encodings cross-checked
// against the RISC-V spec) plus error handling and the workload adapter.
#include <gtest/gtest.h>

#include "riscv/assembler.hpp"
#include "riscv/riscv_workload.hpp"

namespace pacsim::rv {
namespace {

std::uint32_t word_at(const Program& p, std::size_t index) {
  std::uint32_t w = 0;
  for (int i = 0; i < 4; ++i) {
    w |= static_cast<std::uint32_t>(p.bytes.at(index * 4 + i)) << (8 * i);
  }
  return w;
}

TEST(RvAssembler, GoldenEncodings) {
  // Reference encodings produced with a known-good toolchain.
  const Program p = assemble(R"(
    addi a0, a1, -1
    add a0, a1, a2
    sub t0, t1, t2
    ld a3, 16(sp)
    sd a4, 24(sp)
    beq a0, a1, next
  next:
    jal ra, next
    lui a5, 0x12345
    slli a0, a0, 63
    srai a1, a1, 1
    mul a2, a3, a4
    ecall
  )");
  EXPECT_EQ(word_at(p, 0), 0xFFF58513u);   // addi a0, a1, -1
  EXPECT_EQ(word_at(p, 1), 0x00C58533u);   // add a0, a1, a2
  EXPECT_EQ(word_at(p, 2), 0x407302B3u);   // sub t0, t1, t2
  EXPECT_EQ(word_at(p, 3), 0x01013683u);   // ld a3, 16(sp)
  EXPECT_EQ(word_at(p, 4), 0x00E13C23u);   // sd a4, 24(sp)
  EXPECT_EQ(word_at(p, 5), 0x00B50263u);   // beq a0, a1, +4
  EXPECT_EQ(word_at(p, 6), 0x000000EFu);   // jal ra, +0
  EXPECT_EQ(word_at(p, 7), 0x123457B7u);   // lui a5, 0x12345
  EXPECT_EQ(word_at(p, 8), 0x03F51513u);   // slli a0, a0, 63
  EXPECT_EQ(word_at(p, 9), 0x4015D593u);   // srai a1, a1, 1
  EXPECT_EQ(word_at(p, 10), 0x02E68633u);  // mul a2, a3, a4
  EXPECT_EQ(word_at(p, 11), 0x00000073u);  // ecall
}

TEST(RvAssembler, BackwardBranchEncoding) {
  const Program p = assemble("loop: bne a0, zero, loop\n");
  EXPECT_EQ(word_at(p, 0), 0x00051063u & 0xFFFFF07Fu ? word_at(p, 0)
                                                     : word_at(p, 0));
  // Offset 0: imm fields all zero.
  EXPECT_EQ(word_at(p, 0), 0x00051063u);
}

TEST(RvAssembler, LabelsResolveForwardAndBackward) {
  const Program p = assemble(R"(
    j fwd
    nop
  fwd:
    j fwd
  )");
  EXPECT_EQ(p.label("fwd"), 0x1000u + 8);
  // First jump: +8; second: 0.
  EXPECT_EQ(word_at(p, 0) >> 7 & 0x1F, 0u);  // rd = zero (pseudo j)
}

TEST(RvAssembler, DataDirectives) {
  const Program p = assemble(R"(
    .dword 0x1122334455667788
    .word 0xAABBCCDD
    .space 8
  data_end:
  )");
  EXPECT_EQ(p.bytes.size(), 8u + 4u + 8u);
  EXPECT_EQ(p.bytes[0], 0x88u);
  EXPECT_EQ(p.bytes[7], 0x11u);
  EXPECT_EQ(p.bytes[8], 0xDDu);
  EXPECT_EQ(p.label("data_end"), 0x1000u + 20);
}

TEST(RvAssembler, LiExpandsToTwoInstructions) {
  const Program p = assemble("li a0, 0x12345678\n");
  EXPECT_EQ(p.bytes.size(), 8u);
}

TEST(RvAssembler, CommentsAndBlankLinesIgnored) {
  const Program p = assemble(R"(
    # full line comment

    nop  # trailing comment
  )");
  EXPECT_EQ(p.bytes.size(), 4u);
}

TEST(RvAssembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\n nop\n bogus a0, a1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(RvAssembler, RejectsBadRegister) {
  EXPECT_THROW(assemble("addi q0, zero, 1\n"), AsmError);
}

TEST(RvAssembler, RejectsOutOfRangeImmediate) {
  EXPECT_THROW(assemble("addi a0, zero, 5000\n"), AsmError);
  EXPECT_THROW(assemble("slli a0, a0, 64\n"), AsmError);
}

TEST(RvAssembler, RejectsUnknownLabel) {
  EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(RvWorkload, GeneratesPartitionedTraces) {
  // Each core strides over its own slice of a shared array - the canonical
  // kernel convention (a0 = core id, a1 = cores).
  const char* kKernel = R"(
    # a0 = core, a1 = cores. Sum 256 doubles of this core's slice.
    li t0, 0x100000      # array base
    li t1, 256           # elements per core
    mul t2, a0, t1       # first element index
    slli t2, t2, 3
    add t0, t0, t2       # slice base
    li t3, 0
  loop:
    ld t4, 0(t0)
    addi t0, t0, 8
    addi t3, t3, 1
    blt t3, t1, loop
    ecall
  )";
  RiscvProgramWorkload workload("rv-sum", "slice sum", kKernel);
  WorkloadConfig cfg;
  cfg.num_cores = 4;
  cfg.max_ops_per_core = 10'000;
  const auto traces = workload.generate(cfg);
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(workload.last_halt(), Halt::kEcall);

  for (std::uint32_t core = 0; core < 4; ++core) {
    std::uint64_t loads = 0;
    Addr lo = ~Addr{0}, hi = 0;
    for (const TraceOp& op : traces[core]) {
      if (op.kind != OpKind::kLoad) continue;
      ++loads;
      lo = std::min(lo, op.vaddr);
      hi = std::max(hi, op.vaddr);
    }
    EXPECT_EQ(loads, 256u);
    EXPECT_EQ(lo, 0x100000u + core * 256 * 8);
    EXPECT_EQ(hi, 0x100000u + (core + 1) * 256 * 8 - 8);
  }
}

TEST(RvWorkload, DeterministicAcrossCalls) {
  const char* kKernel = R"(
    li t0, 0x200000
    sd zero, 0(t0)
    ecall
  )";
  RiscvProgramWorkload w("rv-det", "determinism", kKernel);
  WorkloadConfig cfg;
  cfg.num_cores = 2;
  const auto a = w.generate(cfg);
  const auto b = w.generate(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
  }
}

}  // namespace
}  // namespace pacsim::rv
