#include "baseline/sorting_network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"

namespace pacsim {
namespace {

TEST(SortingNetwork, PaperComparatorCountsAt64) {
  // Paper Fig 11a: 672 comparators for the bitonic sorter, 543 for the
  // odd-even merge sorter at N = 64.
  EXPECT_EQ(SortingNetwork::bitonic(64).comparator_count(), 672u);
  EXPECT_EQ(SortingNetwork::odd_even_merge(64).comparator_count(), 543u);
}

TEST(SortingNetwork, BitonicClosedFormCount) {
  // n/2 * k(k+1)/2 comparators for n = 2^k.
  for (std::uint32_t k = 2; k <= 7; ++k) {
    const std::uint32_t n = 1u << k;
    EXPECT_EQ(SortingNetwork::bitonic(n).comparator_count(),
              static_cast<std::size_t>(n / 2) * k * (k + 1) / 2);
  }
}

TEST(SortingNetwork, KnownSmallCounts) {
  EXPECT_EQ(SortingNetwork::odd_even_merge(4).comparator_count(), 5u);
  EXPECT_EQ(SortingNetwork::odd_even_merge(8).comparator_count(), 19u);
  EXPECT_EQ(SortingNetwork::odd_even_merge(16).comparator_count(), 63u);
  EXPECT_EQ(SortingNetwork::bitonic(4).comparator_count(), 6u);
  EXPECT_EQ(SortingNetwork::bitonic(8).comparator_count(), 24u);
}

TEST(SortingNetwork, DepthIsLogSquaredOrder)
{
  // Both Batcher networks have depth k(k+1)/2 for n = 2^k.
  for (std::uint32_t k = 2; k <= 6; ++k) {
    const std::uint32_t n = 1u << k;
    EXPECT_EQ(SortingNetwork::bitonic(n).depth(), k * (k + 1) / 2);
    EXPECT_EQ(SortingNetwork::odd_even_merge(n).depth(), k * (k + 1) / 2);
  }
}

class NetworkSorts
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>> {};

TEST_P(NetworkSorts, SortsRandomInputs) {
  const auto [n, use_bitonic] = GetParam();
  const SortingNetwork net = use_bitonic ? SortingNetwork::bitonic(n)
                                         : SortingNetwork::odd_even_merge(n);
  Rng rng(n * 31 + use_bitonic);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint64_t> values(n);
    for (auto& v : values) v = rng.below(1000);
    std::vector<std::uint64_t> expected = values;
    std::sort(expected.begin(), expected.end());
    net.apply(std::span<std::uint64_t>(values));
    EXPECT_EQ(values, expected);
  }
}

TEST_P(NetworkSorts, SortsAdversarialPatterns) {
  const auto [n, use_bitonic] = GetParam();
  const SortingNetwork net = use_bitonic ? SortingNetwork::bitonic(n)
                                         : SortingNetwork::odd_even_merge(n);
  std::vector<std::vector<std::uint64_t>> patterns;
  std::vector<std::uint64_t> descending(n), equal(n, 7), alternating(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    descending[i] = n - i;
    alternating[i] = i % 2;
  }
  patterns = {descending, equal, alternating};
  for (auto values : patterns) {
    std::vector<std::uint64_t> expected = values;
    std::sort(expected.begin(), expected.end());
    net.apply(std::span<std::uint64_t>(values));
    EXPECT_EQ(values, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, NetworkSorts,
    ::testing::Combine(::testing::Values(4u, 8u, 16u, 32u, 64u),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(std::get<1>(info.param) ? "bitonic" : "oddEven") +
             std::to_string(std::get<0>(info.param));
    });

TEST(PacSpaceModel, PaperBufferNumbers) {
  // Section 5.3.3: 16 streams -> 384 B total (128 B block-maps + 256 B
  // request buffers) and one comparator per stream.
  const PacSpaceModel pac{16};
  EXPECT_EQ(pac.comparator_count(), 16u);
  EXPECT_EQ(pac.blockmap_bytes(), 128u);
  EXPECT_EQ(pac.request_buffer_bytes(), 256u);
  EXPECT_EQ(pac.buffer_bytes(), 384u);
}

TEST(PacSpaceModel, ScalesLinearly) {
  EXPECT_EQ(PacSpaceModel{64}.comparator_count(), 64u);
  EXPECT_EQ(PacSpaceModel{64}.buffer_bytes(), 4u * 384u);
}

}  // namespace
}  // namespace pacsim
