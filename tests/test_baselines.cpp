// Tests for the conventional MSHR-based DMC and the no-coalescing
// controller baselines.
#include <gtest/gtest.h>

#include <set>

#include "baseline/direct_controller.hpp"
#include "baseline/mshr_dmc.hpp"
#include "common/rng.hpp"
#include "hmc/hmc_device.hpp"

namespace pacsim {
namespace {

template <typename C>
struct Harness {
  HmcConfig hmc_cfg;
  PowerModel power;
  HmcDevice device{hmc_cfg, &power};
  DevicePort port{&device, RetryConfig{}, /*tracking=*/false};
  C coalescer;
  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> satisfied;

  template <typename Cfg>
  explicit Harness(Cfg cfg) : coalescer(cfg, &port) {}

  MemRequest make(Addr paddr, MemOp op = MemOp::kLoad) {
    MemRequest r;
    r.id = next_id++;
    r.paddr = paddr;
    r.op = op;
    return r;
  }

  void tick() {
    device.tick(now);
    for (const DeviceResponse& rsp : device.drain_completed()) {
      coalescer.complete(rsp, now);
    }
    coalescer.tick(now);
    for (auto id : coalescer.drain_satisfied()) satisfied.push_back(id);
    ++now;
  }

  std::uint64_t feed(Addr paddr, MemOp op = MemOp::kLoad) {
    MemRequest r = make(paddr, op);
    while (!coalescer.accept(r, now)) tick();
    return r.id;
  }

  void drain() {
    while (!(coalescer.idle() && device.idle())) tick();
  }
};

TEST(MshrDmc, FixedLineSizeRequests) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  h.feed(0x1234);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 1u);
  EXPECT_EQ(h.coalescer.stats().issued_payload_bytes, 64u);
}

TEST(MshrDmc, MergesSameLineLoads) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  const auto a = h.feed(0x1000);
  const auto b = h.feed(0x1008);  // same 64 B line
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 1u);
  EXPECT_EQ(h.coalescer.stats().coalesced_away, 1u);
  std::set<std::uint64_t> got(h.satisfied.begin(), h.satisfied.end());
  EXPECT_EQ(got, (std::set<std::uint64_t>{a, b}));
}

TEST(MshrDmc, AdjacentLinesNeverMerge) {
  // The fundamental limitation PAC removes (section 2.2.2): requests are
  // fixed at 64 B regardless of adjacency.
  Harness<MshrDmc> h{MshrDmcConfig{}};
  for (Addr b = 0; b < 4; ++b) h.feed(0x4000 + b * 64);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 4u);
  EXPECT_EQ(h.coalescer.stats().coalesced_away, 0u);
}

TEST(MshrDmc, StoresDoNotMergeWithLoads) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  h.feed(0x1000, MemOp::kLoad);
  h.feed(0x1000, MemOp::kStore);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 2u);
}

TEST(MshrDmc, StallsWhenAllMshrsBusy) {
  MshrDmcConfig cfg;
  cfg.num_mshrs = 2;
  Harness<MshrDmc> h{cfg};
  MemRequest a = h.make(0x0000);
  MemRequest b = h.make(0x1000);
  MemRequest c = h.make(0x2000);
  ASSERT_TRUE(h.coalescer.accept(a, h.now));
  ASSERT_TRUE(h.coalescer.accept(b, h.now));
  EXPECT_FALSE(h.coalescer.accept(c, h.now));
  h.drain();
  EXPECT_TRUE(h.coalescer.accept(c, h.now));
  h.drain();
  EXPECT_EQ(h.satisfied.size(), 3u);
}

TEST(MshrDmc, FenceIsNoOp) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  MemRequest f = h.make(0, MemOp::kFence);
  EXPECT_TRUE(h.coalescer.accept(f, h.now));
  EXPECT_EQ(h.coalescer.stats().fences, 1u);
  EXPECT_TRUE(h.coalescer.idle());
}

TEST(MshrDmc, AtomicsGetOwnEntries) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  h.feed(0x1000, MemOp::kAtomic);
  h.feed(0x1000, MemOp::kAtomic);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 2u);
  EXPECT_EQ(h.coalescer.stats().atomics, 2u);
}

TEST(MshrDmc, ComparisonsCountOccupiedEntries) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  h.feed(0x0000);
  h.feed(0x1000);
  h.feed(0x2000);
  EXPECT_EQ(h.coalescer.stats().comparisons, 0u + 1u + 2u);
  h.drain();
}

TEST(MshrDmc, ConservationUnderRandomTraffic) {
  Harness<MshrDmc> h{MshrDmcConfig{}};
  Rng rng(5);
  std::set<std::uint64_t> expected;
  for (int i = 0; i < 1500; ++i) {
    const Addr a = rng.below(256) * 64;
    expected.insert(
        h.feed(a, rng.below(4) == 0 ? MemOp::kStore : MemOp::kLoad));
    if (rng.below(4) == 0) h.tick();
  }
  h.drain();
  std::set<std::uint64_t> got;
  for (auto id : h.satisfied) EXPECT_TRUE(got.insert(id).second);
  EXPECT_EQ(got, expected);
}

TEST(DirectController, OneRequestPerRaw) {
  Harness<DirectController> h{DirectControllerConfig{}};
  for (Addr b = 0; b < 8; ++b) h.feed(0x8000 + b * 64);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 8u);
  EXPECT_EQ(h.coalescer.stats().coalesced_away, 0u);
  EXPECT_DOUBLE_EQ(h.coalescer.stats().coalescing_efficiency(), 0.0);
  EXPECT_EQ(h.satisfied.size(), 8u);
}

TEST(DirectController, DuplicatesAreDuplicated) {
  // The no-coalescing controller sends redundant same-line requests twice -
  // the redundant transactions coalescing eliminates (section 5.3.2).
  Harness<DirectController> h{DirectControllerConfig{}};
  h.feed(0x1000);
  h.feed(0x1000);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().issued_requests, 2u);
}

TEST(DirectController, RespectsOutstandingLimit) {
  DirectControllerConfig cfg;
  cfg.max_outstanding = 1;
  Harness<DirectController> h{cfg};
  MemRequest a = h.make(0x0000);
  MemRequest b = h.make(0x1000);
  ASSERT_TRUE(h.coalescer.accept(a, h.now));
  EXPECT_FALSE(h.coalescer.accept(b, h.now));
  h.drain();
  EXPECT_TRUE(h.coalescer.accept(b, h.now));
  h.drain();
}

TEST(DirectController, NoComparatorWork) {
  Harness<DirectController> h{DirectControllerConfig{}};
  for (Addr b = 0; b < 4; ++b) h.feed(b * 64);
  h.drain();
  EXPECT_EQ(h.coalescer.stats().comparisons, 0u);
}

}  // namespace
}  // namespace pacsim
