// Property-style stress tests: conservation and structural invariants of
// PAC's issued request stream under randomized traffic, swept across
// protocols and deliberately starved resource configurations.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "hmc/hmc_device.hpp"
#include "mem/packet.hpp"
#include "pac/pac.hpp"

namespace pacsim {
namespace {

struct Scenario {
  const char* name;
  PacConfig pac;
  std::uint32_t device_outstanding = 256;
  std::uint64_t hmc_row_bytes = 256;
};

Scenario base_scenario(const char* name) {
  Scenario s{name, {}, 256, 256};
  s.pac.enable_bypass_controller = false;
  return s;
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  out.push_back(base_scenario("hmc2_default"));

  Scenario hmc1 = base_scenario("hmc1");
  hmc1.pac.protocol = CoalescingProtocol::hmc1();
  out.push_back(hmc1);

  Scenario hbm = base_scenario("hbm");
  hbm.pac.protocol = CoalescingProtocol::hbm();
  hbm.hmc_row_bytes = 1024;
  out.push_back(hbm);

  Scenario fine = base_scenario("fine");
  fine.pac.protocol = CoalescingProtocol::hmc_fine();
  out.push_back(fine);

  Scenario pow2 = base_scenario("pow2_only");
  pow2.pac.protocol.pow2_sizes_only = true;
  out.push_back(pow2);

  Scenario tiny = base_scenario("tiny_queues");
  tiny.pac.num_streams = 2;
  tiny.pac.maq_entries = 2;
  tiny.pac.num_mshrs = 2;
  tiny.pac.seq_buffer_entries = 2;
  out.push_back(tiny);

  Scenario starved = base_scenario("starved_device");
  starved.device_outstanding = 1;
  out.push_back(starved);

  Scenario bypass = base_scenario("with_bypass");
  bypass.pac.enable_bypass_controller = true;
  out.push_back(bypass);

  Scenario flush_full = base_scenario("flush_on_full_chunk");
  flush_full.pac.flush_on_full_chunk = true;
  out.push_back(flush_full);

  Scenario long_timeout = base_scenario("timeout64");
  long_timeout.pac.timeout = 64;
  out.push_back(long_timeout);

  return out;
}

class PacProperty : public ::testing::TestWithParam<Scenario> {};

TEST_P(PacProperty, ConservationAndInvariantsUnderRandomTraffic) {
  const Scenario& sc = GetParam();
  HmcConfig hmc_cfg;
  hmc_cfg.max_outstanding = sc.device_outstanding;
  hmc_cfg.map.row_bytes = static_cast<std::uint32_t>(sc.hmc_row_bytes);
  PowerModel power;
  HmcDevice device(hmc_cfg, &power);
  DevicePort port(&device, RetryConfig{}, /*tracking=*/false);
  Pac pac(sc.pac, &port);

  const CoalescingProtocol& protocol = sc.pac.protocol;
  Rng rng(0xC0FFEE ^ sc.pac.num_streams ^ protocol.max_request);

  Cycle now = 0;
  std::uint64_t next_id = 1;
  std::set<std::uint64_t> expected;
  std::set<std::uint64_t> satisfied;

  auto tick = [&] {
    device.tick(now);
    for (const DeviceResponse& rsp : device.drain_completed()) {
      pac.complete(rsp, now);
    }
    pac.tick(now);
    for (std::uint64_t id : pac.drain_satisfied()) {
      EXPECT_TRUE(satisfied.insert(id).second)
          << "raw id satisfied twice: " << id;
    }
    ++now;
  };

  for (int i = 0; i < 2500; ++i) {
    MemRequest r;
    r.id = next_id++;
    const Addr page = rng.below(24);
    const std::uint64_t block = rng.below(protocol.blocks_per_page());
    r.paddr = (page << kPageShift) + block * protocol.granule;
    r.bytes = protocol.granule;
    const std::uint64_t dice = rng.below(20);
    r.op = dice == 0   ? MemOp::kAtomic
           : dice <= 4 ? MemOp::kStore
                       : MemOp::kLoad;
    while (!pac.accept(r, now)) tick();
    expected.insert(r.id);
    if (rng.below(4) == 0) tick();
  }

  const Cycle start = now;
  while (!(pac.idle() && device.idle())) {
    tick();
    ASSERT_LT(now - start, 2'000'000u) << "drain did not converge";
  }

  EXPECT_EQ(satisfied, expected);

  // Structural invariants of the issued stream.
  const CoalescerStats& s = pac.stats();
  EXPECT_EQ(s.raw_requests, expected.size());
  EXPECT_GE(s.raw_requests, s.issued_requests);
  for (const auto& [bytes, count] : s.request_size_bytes.buckets()) {
    EXPECT_GT(bytes, 0);
    EXPECT_LE(bytes, protocol.max_request);
    if (bytes != kFlitBytes) {  // atomics are 16 B packets
      EXPECT_EQ(bytes % protocol.granule, 0)
          << "issued size " << bytes << " not a granule multiple";
    }
    if (protocol.pow2_sizes_only && bytes != kFlitBytes) {
      EXPECT_TRUE(is_pow2(static_cast<std::uint64_t>(bytes) /
                          protocol.granule))
          << "pow2-only protocol issued " << bytes << " bytes";
    }
  }
  // Efficiency within [0, 1).
  EXPECT_GE(s.coalescing_efficiency(), 0.0);
  EXPECT_LT(s.coalescing_efficiency(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, PacProperty,
                         ::testing::ValuesIn(scenarios()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace pacsim
