// Tests for the sweep-execution subsystem: the fixed thread pool, the
// parallel SweepRunner (results must be bit-identical to a serial run),
// and the per-bench JSON sweep report.
#include "exp/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#include "exp/thread_pool.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace pacsim {
namespace {

TEST(ThreadPool, RunsEverySubmittedJob) {
  exp::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) pool.submit([&counter] { ++counter; });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, WaitIdleCanBeReused) {
  exp::ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    exp::ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(97);
  exp::parallel_for(4, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForWithOneJobRunsInline) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  exp::parallel_for(1, seen.size(), [&seen](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(exp::parallel_for(4, 16,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

std::vector<exp::SweepJob> small_sweep() {
  std::vector<exp::SweepJob> sweep;
  for (const char* name : {"stream", "gs", "bfs"}) {
    for (CoalescerKind kind : {CoalescerKind::kDirect, CoalescerKind::kPac}) {
      exp::SweepJob job;
      job.suite = find_workload(name);
      job.cfg.coalescer = kind;
      job.label = std::string(name) + "/" + std::string(to_string(kind));
      sweep.push_back(std::move(job));
    }
  }
  return sweep;
}

WorkloadConfig small_wcfg() {
  WorkloadConfig wcfg;
  wcfg.num_cores = 2;
  wcfg.max_ops_per_core = 1500;
  wcfg.scale = 0.25;
  return wcfg;
}

TEST(SweepRunner, ParallelResultsMatchSerialBitExactly) {
  const std::vector<exp::SweepJob> sweep = small_sweep();
  const WorkloadConfig wcfg = small_wcfg();
  const std::vector<RunResult> serial = exp::SweepRunner(1).run(sweep, wcfg);
  const std::vector<RunResult> parallel =
      exp::SweepRunner(4).run(sweep, wcfg);
  ASSERT_EQ(serial.size(), sweep.size());
  ASSERT_EQ(parallel.size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    // The serialized report covers every metric a table could print, so
    // byte-equality here means byte-identical tables. The sim_throughput
    // block is host wall-clock and legitimately differs between runs.
    EXPECT_EQ(run_report_json(sweep[i].label, sweep[i].cfg.coalescer,
                              serial[i], /*include_throughput=*/false),
              run_report_json(sweep[i].label, sweep[i].cfg.coalescer,
                              parallel[i], /*include_throughput=*/false))
        << "job " << i << " (" << sweep[i].label << ") diverged";
  }
}

TEST(SweepRunner, MatchesRunSuite) {
  const WorkloadConfig wcfg = small_wcfg();
  exp::SweepJob job;
  job.suite = find_workload("stream");
  job.cfg.coalescer = CoalescerKind::kPac;
  job.label = "stream/pac";
  const std::vector<RunResult> got = exp::SweepRunner(2).run({job}, wcfg);
  const RunResult want =
      run_suite(*job.suite, CoalescerKind::kPac, wcfg, SystemConfig{});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(run_report_json(job.label, CoalescerKind::kPac, got[0],
                            /*include_throughput=*/false),
            run_report_json(job.label, CoalescerKind::kPac, want,
                            /*include_throughput=*/false));
}

RunResult tiny_result() {
  RunResult r;
  r.cycles = 10;
  r.coal.raw_requests = 4;
  r.coal.issued_requests = 2;
  return r;
}

TEST(SweepReport, JsonHasEnvelopeAndEveryRun) {
  SweepReport report("bench_test");
  report.add("a/direct", CoalescerKind::kDirect, tiny_result());
  report.add("b/pac", CoalescerKind::kPac, tiny_result());
  EXPECT_EQ(report.runs(), 2u);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"bench\": \"bench_test\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": " +
                      std::to_string(kJsonSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
  // v7: execution provenance rides inside the throughput-gated host block.
  EXPECT_NE(json.find("\"execution\""), std::string::npos);
  EXPECT_NE(json.find("\"checkpoints_written\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_time\""), std::string::npos);
  EXPECT_NE(json.find("\"generation_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"simulation_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_throughput\""), std::string::npos);
  EXPECT_NE(json.find("\"gen_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"a/direct\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"b/pac\""), std::string::npos);
  // The trace_store block only appears once stats are attached.
  EXPECT_EQ(json.find("\"trace_store\""), std::string::npos);
}

TEST(SweepReport, JsonCarriesTraceStoreStatsWhenSet) {
  SweepReport report("bench_store");
  report.add("a/pac", CoalescerKind::kPac, tiny_result());
  TraceStoreStats stats;
  stats.hits = 6;
  stats.warm_hits = 1;
  stats.misses = 2;
  stats.evictions = 3;
  stats.bytes_resident = 4096;
  stats.generation_seconds = 1.5;
  report.set_trace_store(stats);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"trace_store\": {\"hits\": 6, \"warm_hits\": 1, "
                      "\"misses\": 2, \"evictions\": 3, "
                      "\"bytes_resident\": 4096"),
            std::string::npos);
}

TEST(SweepReport, WallTimeSumsRunThroughput) {
  SweepReport report("bench_walltime");
  RunResult r = tiny_result();
  r.throughput.wall_seconds = 2.0;
  r.throughput.gen_seconds = 0.5;
  report.add("a", CoalescerKind::kPac, r);
  report.add("b", CoalescerKind::kPac, r);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"wall_time\": {\"generation_seconds\": 1, "
                      "\"simulation_seconds\": 4}"),
            std::string::npos);
}

TEST(SweepReport, JsonIsBalancedEvenWhenEmpty) {
  for (int runs = 0; runs <= 2; ++runs) {
    SweepReport report("bench_balance");
    for (int i = 0; i < runs; ++i) {
      report.add("r" + std::to_string(i), CoalescerKind::kPac, tiny_result());
    }
    const std::string json = report.json();
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
      const char c = json[i];
      if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
      if (in_string) continue;
      depth += c == '{';
      depth -= c == '}';
      ASSERT_GE(depth, 0) << "runs=" << runs;
    }
    EXPECT_EQ(depth, 0) << "runs=" << runs;
    EXPECT_FALSE(in_string) << "runs=" << runs;
  }
}

TEST(SweepReport, WriteCreatesDirectoryAndFile) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "pacsim_sweep_report_test";
  std::filesystem::remove_all(dir);
  SweepReport report("bench_write");
  report.add("x", CoalescerKind::kDirect, tiny_result());
  const std::string path = report.write(dir.string());
  EXPECT_EQ(path, (dir / "bench_write.json").string());
  std::ifstream in(path);
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(content, report.json());
  std::filesystem::remove_all(dir);
}

TEST(SweepReport, WriteRejectsUnwritableDirectory) {
  SweepReport report("bench_bad");
  EXPECT_THROW((void)report.write("/proc/pacsim-definitely-unwritable"),
               std::runtime_error);
}

}  // namespace
}  // namespace pacsim
