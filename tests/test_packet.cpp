#include "mem/packet.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

TEST(Packet, ReadRequestIsSingleControlFlit) {
  EXPECT_EQ(request_flits(64, /*store=*/false), 1u);
  EXPECT_EQ(request_flits(256, false), 1u);
}

TEST(Packet, WriteRequestCarriesPayload) {
  EXPECT_EQ(request_flits(64, true), 1u + 4u);
  EXPECT_EQ(request_flits(256, true), 1u + 16u);
  EXPECT_EQ(request_flits(16, true), 2u);
}

TEST(Packet, ReadResponseCarriesPayload) {
  EXPECT_EQ(response_flits(64, false), 1u + 4u);
  EXPECT_EQ(response_flits(128, false), 1u + 8u);
}

TEST(Packet, WriteResponseIsSingleFlit) {
  EXPECT_EQ(response_flits(256, true), 1u);
}

TEST(Packet, PartialFlitRoundsUp) {
  EXPECT_EQ(request_flits(17, true), 1u + 2u);
  EXPECT_EQ(response_flits(1, false), 1u + 1u);
}

TEST(Packet, TransactionBytesSymmetricInDirection) {
  // A 64 B read and a 64 B write move the same total bytes on the links:
  // one direction carries the payload, the other a bare control FLIT.
  EXPECT_EQ(transaction_bytes(64, false), transaction_bytes(64, true));
  EXPECT_EQ(transaction_bytes(64, false), (1u + 4u + 1u) * 16u);
}

TEST(Packet, TransactionEfficiencyMatchesPaperBaseline) {
  // Paper section 5.3.2: a raw 64 B request has 32 B of control overhead,
  // i.e. 64 / 96 = 66.66% transaction efficiency.
  EXPECT_NEAR(transaction_efficiency(64, 1), 0.6666, 1e-3);
  // And a fully coalesced 256 B request reaches 256 / 288 = 88.9%.
  EXPECT_NEAR(transaction_efficiency(256, 1), 0.8888, 1e-3);
}

TEST(Packet, TransactionEfficiencyZeroWhenNoTraffic) {
  EXPECT_DOUBLE_EQ(transaction_efficiency(0, 0), 0.0);
}

TEST(Packet, ControlOverheadConstant) {
  EXPECT_EQ(kControlBytesPerTransaction, 32u);
  EXPECT_EQ(kFlitBytes, 16u);
}

}  // namespace
}  // namespace pacsim
