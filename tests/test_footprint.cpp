#include "analysis/footprint.hpp"

#include <gtest/gtest.h>

namespace pacsim {
namespace {

Addr blk(std::uint64_t page, std::uint64_t block) {
  return (page << kPageShift) | (block << kCacheBlockShift);
}

TEST(Footprint, EmptyStream) {
  const FootprintStats s = analyze_footprint({});
  EXPECT_EQ(s.requests, 0u);
  EXPECT_DOUBLE_EQ(s.in_page_fraction(), 0.0);
}

TEST(Footprint, SequentialStreamIsFullyInPageAdjacent) {
  std::vector<Addr> stream;
  for (std::uint64_t b = 0; b < 32; ++b) stream.push_back(blk(5, b));
  const FootprintStats s = analyze_footprint(stream);
  EXPECT_EQ(s.requests, 32u);
  EXPECT_EQ(s.distinct_pages, 1u);
  EXPECT_EQ(s.distinct_blocks, 32u);
  // Every request after the first neighbours the previous block.
  EXPECT_EQ(s.in_page_adjacent, 31u);
  EXPECT_EQ(s.cross_page_adjacent, 0u);
  EXPECT_GE(s.same_chunk, 24u);
}

TEST(Footprint, ScatteredStreamHasNoAdjacency) {
  std::vector<Addr> stream;
  for (std::uint64_t p = 0; p < 64; ++p) stream.push_back(blk(p * 7 + 1, 3));
  const FootprintStats s = analyze_footprint(stream);
  EXPECT_EQ(s.in_page_adjacent, 0u);
  EXPECT_EQ(s.cross_page_adjacent, 0u);
  EXPECT_EQ(s.distinct_pages, 64u);
}

TEST(Footprint, CrossPageBoundaryDetected) {
  // Block 63 of page 9 then block 0 of page 10: physically adjacent blocks
  // in different pages.
  const FootprintStats s =
      analyze_footprint({blk(9, 63), blk(10, 0)});
  EXPECT_EQ(s.in_page_adjacent, 0u);
  EXPECT_EQ(s.cross_page_adjacent, 1u);
}

TEST(Footprint, WindowLimitsVisibility) {
  // Adjacent blocks separated by more than `window` other requests are not
  // coalescable by a windowed design.
  std::vector<Addr> stream;
  stream.push_back(blk(1, 0));
  for (std::uint64_t p = 100; p < 120; ++p) stream.push_back(blk(p, 9));
  stream.push_back(blk(1, 1));
  const FootprintStats near = analyze_footprint(stream, /*window=*/4);
  EXPECT_EQ(near.in_page_adjacent, 0u);
  const FootprintStats wide = analyze_footprint(stream, /*window=*/64);
  EXPECT_EQ(wide.in_page_adjacent, 1u);
}

TEST(Footprint, RequestsPerPageHistogram) {
  std::vector<Addr> stream = {blk(1, 0), blk(1, 5), blk(1, 9), blk(2, 0)};
  const FootprintStats s = analyze_footprint(stream);
  EXPECT_EQ(s.requests_per_page.at(3), 1u);  // page 1: 3 requests
  EXPECT_EQ(s.requests_per_page.at(1), 1u);  // page 2: 1 request
}

TEST(Footprint, DuplicateBlocksCountOncePerSet) {
  const FootprintStats s =
      analyze_footprint({blk(4, 2), blk(4, 2), blk(4, 2)});
  EXPECT_EQ(s.distinct_blocks, 1u);
  EXPECT_EQ(s.in_page_adjacent, 0u);  // same block is not "adjacent"
}

}  // namespace
}  // namespace pacsim
