// Instruction-semantics tests for the RV64IMA interpreter, driven through
// the assembler (so encodings and semantics are verified together).
#include <gtest/gtest.h>

#include "riscv/assembler.hpp"
#include "riscv/interpreter.hpp"
#include "riscv/memory.hpp"

namespace pacsim::rv {
namespace {

struct Machine {
  Memory memory;
  Interpreter cpu{&memory};

  /// Assemble + load + run until ecall/ebreak; asserts a clean halt.
  Halt run(const std::string& source, std::uint64_t max_steps = 100'000) {
    const Program program = assemble(source, 0x1000);
    memory.write_block(program.base, program.bytes.data(),
                       program.bytes.size());
    cpu.set_pc(program.base);
    return cpu.run(max_steps);
  }

  std::uint64_t reg(const std::string& name) const {
    return cpu.reg(static_cast<unsigned>(reg_index(name)));
  }
};

TEST(RvInterpreter, AddiAndEcall) {
  Machine m;
  EXPECT_EQ(m.run("addi a0, zero, 42\n ecall\n"), Halt::kEcall);
  EXPECT_EQ(m.reg("a0"), 42u);
  EXPECT_EQ(m.cpu.stats().instructions, 2u);
}

TEST(RvInterpreter, X0IsHardwiredZero) {
  Machine m;
  m.run("addi zero, zero, 5\n mv a0, zero\n ecall\n");
  EXPECT_EQ(m.reg("a0"), 0u);
}

TEST(RvInterpreter, ArithmeticAndLogic) {
  Machine m;
  m.run(R"(
    li t0, 100
    li t1, 7
    add a0, t0, t1
    sub a1, t0, t1
    and a2, t0, t1
    or  a3, t0, t1
    xor a4, t0, t1
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 107u);
  EXPECT_EQ(m.reg("a1"), 93u);
  EXPECT_EQ(m.reg("a2"), 100u & 7u);
  EXPECT_EQ(m.reg("a3"), 100u | 7u);
  EXPECT_EQ(m.reg("a4"), 100u ^ 7u);
}

TEST(RvInterpreter, SetLessThan) {
  Machine m;
  m.run(R"(
    li t0, -5
    li t1, 3
    slt a0, t0, t1
    sltu a1, t0, t1
    slti a2, t0, 0
    sltiu a3, t1, 10
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 1u);  // -5 < 3 signed
  EXPECT_EQ(m.reg("a1"), 0u);  // huge unsigned not < 3
  EXPECT_EQ(m.reg("a2"), 1u);
  EXPECT_EQ(m.reg("a3"), 1u);
}

TEST(RvInterpreter, ShiftsSixtyFourBit) {
  Machine m;
  m.run(R"(
    li t0, 1
    slli a0, t0, 40
    li t1, -8
    srai a1, t1, 1
    srli a2, t1, 60
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 1ULL << 40);
  EXPECT_EQ(m.reg("a1"), static_cast<std::uint64_t>(-4));
  EXPECT_EQ(m.reg("a2"), 15u);
}

TEST(RvInterpreter, WordFormsSignExtend) {
  Machine m;
  m.run(R"(
    li t0, 0x7FFFFFFF
    addiw a0, t0, 1
    li t1, 1
    addw a1, t0, t1
    slliw a2, t1, 31
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 0xFFFFFFFF80000000ULL);
  EXPECT_EQ(m.reg("a1"), 0xFFFFFFFF80000000ULL);
  EXPECT_EQ(m.reg("a2"), 0xFFFFFFFF80000000ULL);
}

TEST(RvInterpreter, MulDivRem) {
  Machine m;
  m.run(R"(
    li t0, -6
    li t1, 4
    mul a0, t0, t1
    div a1, t0, t1
    rem a2, t0, t1
    divu a3, t1, t1
    li t2, 0
    div a4, t0, t2
    rem a5, t0, t2
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), static_cast<std::uint64_t>(-24));
  EXPECT_EQ(m.reg("a1"), static_cast<std::uint64_t>(-1));
  EXPECT_EQ(m.reg("a2"), static_cast<std::uint64_t>(-2));
  EXPECT_EQ(m.reg("a3"), 1u);
  EXPECT_EQ(m.reg("a4"), ~std::uint64_t{0});  // div by zero -> -1
  EXPECT_EQ(m.reg("a5"), static_cast<std::uint64_t>(-6));
}

TEST(RvInterpreter, MulHighVariants) {
  Machine m;
  m.run(R"(
    li t0, -1
    li t1, 2
    mulh a0, t0, t1
    mulhu a1, t0, t1
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), ~std::uint64_t{0});  // (-1*2) >> 64 = -1
  EXPECT_EQ(m.reg("a1"), 1u);                 // (2^64-1)*2 >> 64 = 1
}

TEST(RvInterpreter, LoadsStoreWidthsAndSigns) {
  Machine m;
  m.run(R"(
    li t0, 0x10000
    li t1, -1
    sd t1, 0(t0)
    lb a0, 0(t0)
    lbu a1, 0(t0)
    lh a2, 0(t0)
    lhu a3, 0(t0)
    lw a4, 0(t0)
    lwu a5, 0(t0)
    ld a6, 0(t0)
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), ~std::uint64_t{0});
  EXPECT_EQ(m.reg("a1"), 0xFFu);
  EXPECT_EQ(m.reg("a2"), ~std::uint64_t{0});
  EXPECT_EQ(m.reg("a3"), 0xFFFFu);
  EXPECT_EQ(m.reg("a4"), ~std::uint64_t{0});
  EXPECT_EQ(m.reg("a5"), 0xFFFFFFFFu);
  EXPECT_EQ(m.reg("a6"), ~std::uint64_t{0});
}

TEST(RvInterpreter, PartialStores) {
  Machine m;
  m.run(R"(
    li t0, 0x20000
    li t1, 0x11223344
    sw t1, 0(t0)
    li t2, 0xAB
    sb t2, 1(t0)
    lwu a0, 0(t0)
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 0x1122AB44u);
}

TEST(RvInterpreter, BranchesAndLoop) {
  Machine m;
  // Sum 1..10 with a loop.
  m.run(R"(
    li a0, 0
    li t0, 1
    li t1, 11
  loop:
    add a0, a0, t0
    addi t0, t0, 1
    blt t0, t1, loop
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 55u);
  EXPECT_GE(m.cpu.stats().branches_taken, 9u);
}

TEST(RvInterpreter, JalAndRet) {
  Machine m;
  m.run(R"(
    li a0, 5
    call double_it
    ecall
  double_it:
    add a0, a0, a0
    ret
  )");
  EXPECT_EQ(m.reg("a0"), 10u);
}

TEST(RvInterpreter, AuipcIsPcRelative) {
  Machine m;
  m.run("auipc a0, 1\n ecall\n");
  EXPECT_EQ(m.reg("a0"), 0x1000u + 0x1000u);
}

TEST(RvInterpreter, AmoAddAndSwap) {
  Machine m;
  m.run(R"(
    li t0, 0x30000
    li t1, 10
    sd t1, 0(t0)
    li t2, 5
    amoadd.d a0, t2, (t0)
    ld a1, 0(t0)
    li t3, 99
    amoswap.d a2, t3, (t0)
    ld a3, 0(t0)
    ecall
  )");
  EXPECT_EQ(m.reg("a0"), 10u);  // old value
  EXPECT_EQ(m.reg("a1"), 15u);
  EXPECT_EQ(m.reg("a2"), 15u);
  EXPECT_EQ(m.reg("a3"), 99u);
  EXPECT_EQ(m.cpu.stats().amos, 2u);
}

TEST(RvInterpreter, IllegalInstructionHalts) {
  Machine m;
  Memory& memory = m.memory;
  memory.store(0x1000, 0xFFFFFFFFu, 4);
  m.cpu.set_pc(0x1000);
  EXPECT_EQ(m.cpu.run(10), Halt::kIllegal);
}

TEST(RvInterpreter, MaxStepsHalts) {
  Machine m;
  EXPECT_EQ(m.run("loop: j loop\n", 100), Halt::kMaxSteps);
}

TEST(RvInterpreter, TraceRecorderCapturesMemoryOps) {
  Machine m;
  Trace trace;
  TraceRecorder rec(&trace, 1000);
  m.cpu.attach_recorder(&rec);
  m.run(R"(
    li t0, 0x40000
    ld a0, 0(t0)
    sd a0, 64(t0)
    fence
    ecall
  )");
  // Expect: compute ops (li etc), a load, a store, a fence.
  int loads = 0, stores = 0, fences = 0;
  for (const TraceOp& op : trace) {
    loads += op.kind == OpKind::kLoad;
    stores += op.kind == OpKind::kStore;
    fences += op.kind == OpKind::kFence;
    if (op.kind == OpKind::kLoad) {
      EXPECT_EQ(op.vaddr, 0x40000u);
      EXPECT_EQ(op.arg, 8u);
    }
    if (op.kind == OpKind::kStore) EXPECT_EQ(op.vaddr, 0x40040u);
  }
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(stores, 1);
  EXPECT_EQ(fences, 1);
}

TEST(RvInterpreter, TraceBudgetHaltsCleanly) {
  Machine m;
  Trace trace;
  TraceRecorder rec(&trace, 8);
  m.cpu.attach_recorder(&rec);
  const Halt h = m.run(R"(
    li t0, 0x50000
  loop:
    ld a0, 0(t0)
    j loop
  )");
  EXPECT_EQ(h, Halt::kTraceFull);
  EXPECT_EQ(trace.size(), 8u);
}

TEST(RvInterpreter, RegIndexNames) {
  EXPECT_EQ(reg_index("zero"), 0);
  EXPECT_EQ(reg_index("ra"), 1);
  EXPECT_EQ(reg_index("sp"), 2);
  EXPECT_EQ(reg_index("a0"), 10);
  EXPECT_EQ(reg_index("t6"), 31);
  EXPECT_EQ(reg_index("fp"), 8);
  EXPECT_EQ(reg_index("x17"), 17);
  EXPECT_EQ(reg_index("x32"), -1);
  EXPECT_EQ(reg_index("bogus"), -1);
}

TEST(RvMemory, ZeroInitializedAndByteAddressable) {
  Memory mem;
  EXPECT_EQ(mem.load(0x1234, 8), 0u);
  mem.store(0x1234, 0xDEADBEEFCAFEF00DULL, 8);
  EXPECT_EQ(mem.load(0x1234, 8), 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(mem.load(0x1238, 4), 0xDEADBEEFu);
  // Cross-page access.
  mem.store(0x1FFF, 0xABCD, 2);
  EXPECT_EQ(mem.load(0x1FFF, 2), 0xABCDu);
}

}  // namespace
}  // namespace pacsim::rv
