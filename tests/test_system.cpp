// Full-system integration tests: cores -> caches -> coalescer -> HMC.
#include "sim/system.hpp"

#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace pacsim {
namespace {

SystemConfig small_system(CoalescerKind kind) {
  SystemConfig cfg;
  cfg.coalescer = kind;
  cfg.num_cores = 4;
  cfg.max_cycles = 50'000'000;
  return cfg;
}

Trace sequential_trace(Addr base, std::size_t lines) {
  Trace t;
  for (std::size_t i = 0; i < lines; ++i) {
    t.push_back({base + i * 64, 8, OpKind::kLoad});
    t.push_back({0, 2, OpKind::kCompute});
  }
  return t;
}

class EveryCoalescer : public ::testing::TestWithParam<CoalescerKind> {};

TEST_P(EveryCoalescer, SequentialScanCompletes) {
  SystemConfig cfg = small_system(GetParam());
  System sys(cfg);
  for (std::uint32_t c = 0; c < cfg.num_cores; ++c) {
    sys.load_trace(c, sequential_trace(0x10000000 + c * 0x100000, 2000));
  }
  const RunResult r = sys.run();
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.llc_misses, 0u);
  EXPECT_GT(r.coal.raw_requests, 0u);
  EXPECT_EQ(r.coal.issued_requests, r.hmc.requests);
  EXPECT_GT(r.total_energy, 0.0);
}

TEST_P(EveryCoalescer, EmptyTracesFinishImmediately) {
  SystemConfig cfg = small_system(GetParam());
  System sys(cfg);
  const RunResult r = sys.run();
  EXPECT_EQ(r.coal.raw_requests, 0u);
  EXPECT_LE(r.cycles, 2u);
}

TEST_P(EveryCoalescer, StoresAndFencesComplete) {
  SystemConfig cfg = small_system(GetParam());
  System sys(cfg);
  Trace t;
  for (int i = 0; i < 500; ++i) {
    t.push_back({0x20000000 + static_cast<Addr>(i) * 64, 8, OpKind::kStore});
    if (i % 100 == 99) t.push_back({0, 0, OpKind::kFence});
  }
  sys.load_trace(0, t);
  const RunResult r = sys.run();
  EXPECT_GT(r.coal.raw_requests, 0u);
  if (GetParam() == CoalescerKind::kPac) {
    EXPECT_EQ(r.pac.base.fences, 5u);
  }
}

TEST_P(EveryCoalescer, AtomicsComplete) {
  SystemConfig cfg = small_system(GetParam());
  System sys(cfg);
  Trace t;
  for (int i = 0; i < 100; ++i) {
    t.push_back({0x30000000 + static_cast<Addr>(i) * 4096, 8, OpKind::kAtomic});
    t.push_back({0, 4, OpKind::kCompute});
  }
  sys.load_trace(0, t);
  const RunResult r = sys.run();
  EXPECT_EQ(r.coal.atomics, 100u);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EveryCoalescer,
                         ::testing::Values(CoalescerKind::kDirect,
                                           CoalescerKind::kMshrDmc,
                                           CoalescerKind::kSortingDmc,
                                           CoalescerKind::kPac),
                         [](const auto& info) {
                           std::string n(to_string(info.param));
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(System, CacheFiltersRepeatedAccesses) {
  SystemConfig cfg = small_system(CoalescerKind::kDirect);
  System sys(cfg);
  Trace t;
  for (int rep = 0; rep < 10; ++rep) {
    for (int i = 0; i < 64; ++i) {  // 4 KB working set: L1-resident
      t.push_back({0x40000000 + static_cast<Addr>(i) * 64, 8, OpKind::kLoad});
    }
  }
  sys.load_trace(0, t);
  const RunResult r = sys.run();
  EXPECT_GT(r.l1_hits, 500u);
  EXPECT_LE(r.llc_misses, 80u);  // only the cold pass misses
}

TEST(System, PacCoalescesSequentialMissStream) {
  SystemConfig pac_cfg = small_system(CoalescerKind::kPac);
  SystemConfig dir_cfg = small_system(CoalescerKind::kDirect);
  const Trace t = sequential_trace(0x50000000, 4000);
  System a(pac_cfg), b(dir_cfg);
  a.load_trace(0, t);
  b.load_trace(0, t);
  const RunResult rp = a.run();
  const RunResult rd = b.run();
  EXPECT_GT(rp.coalescing_efficiency(), 0.3);
  EXPECT_DOUBLE_EQ(rd.coalescing_efficiency(), 0.0);
  // PAC must also finish no slower and issue fewer device requests.
  EXPECT_LT(rp.coal.issued_requests, rd.coal.issued_requests);
  EXPECT_LE(rp.cycles, rd.cycles);
  EXPECT_GT(rp.transaction_eff(), rd.transaction_eff());
}

TEST(System, MultiprocessingKeepsAddressSpacesApart) {
  SystemConfig cfg = small_system(CoalescerKind::kPac);
  System sys(cfg);
  // Two processes touch the same virtual addresses; page tables must keep
  // them apart (no accidental sharing, all requests serviced).
  const Trace t = sequential_trace(0x60000000, 1000);
  sys.load_trace(0, t, 0);
  sys.load_trace(1, t, 1);
  const RunResult r = sys.run();
  // Both processes missed independently: roughly twice the lines.
  EXPECT_GE(r.llc_misses, 1900u);
}

TEST(System, SharedProcessSharesCache) {
  SystemConfig cfg = small_system(CoalescerKind::kPac);
  System sys(cfg);
  const Trace t = sequential_trace(0x60000000, 1000);
  sys.load_trace(0, t, 0);
  sys.load_trace(1, t, 0);  // same process: same physical pages
  const RunResult r = sys.run();
  // The second core largely hits lines (or merges misses) of the first.
  EXPECT_LT(r.llc_misses, 1600u);
}

TEST(System, RawTraceCaptureRespectsWindowAndLimit) {
  SystemConfig cfg = small_system(CoalescerKind::kPac);
  cfg.record_raw_trace = true;
  cfg.raw_trace_start = 100;
  cfg.raw_trace_limit = 50;
  System sys(cfg);
  sys.load_trace(0, sequential_trace(0x70000000, 2000));
  const RunResult r = sys.run();
  EXPECT_EQ(r.raw_trace.size(), 50u);
}

TEST(System, WatchdogThrowsOnImpossibleBudget) {
  SystemConfig cfg = small_system(CoalescerKind::kPac);
  cfg.max_cycles = 10;  // absurdly small
  System sys(cfg);
  sys.load_trace(0, sequential_trace(0x80000000, 1000));
  EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(Runner, RunSuiteProducesConsistentMetrics) {
  WorkloadConfig wcfg;
  wcfg.num_cores = 4;
  wcfg.max_ops_per_core = 4000;
  wcfg.scale = 0.25;
  const Workload* suite = find_workload("stream");
  const RunResult r = run_suite(*suite, CoalescerKind::kPac, wcfg,
                                SystemConfig{});
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GE(r.coalescing_efficiency(), 0.0);
  EXPECT_LE(r.coalescing_efficiency(), 1.0);
  EXPECT_GT(r.transaction_eff(), 0.0);
  EXPECT_LE(r.transaction_eff(), 1.0);
  EXPECT_TRUE(r.has_pac);
}

TEST(Runner, MultiprocessSplitsCores) {
  WorkloadConfig wcfg;
  wcfg.num_cores = 4;
  wcfg.max_ops_per_core = 3000;
  wcfg.scale = 0.25;
  const RunResult r =
      run_multiprocess(*find_workload("stream"), *find_workload("gs"),
                       CoalescerKind::kMshrDmc, wcfg, SystemConfig{});
  EXPECT_GT(r.coal.raw_requests, 0u);
  EXPECT_GT(r.cycles, 0u);
}

TEST(Runner, MultiprocessOddCoreCountLeavesNoCoreTraceless) {
  WorkloadConfig wcfg;
  wcfg.num_cores = 5;
  wcfg.max_ops_per_core = 2000;
  wcfg.scale = 0.25;
  const MultiprocessSetup setup = build_multiprocess_traces(
      *find_workload("stream"), *find_workload("gs"), wcfg);
  // The remainder core goes to the first workload: 3 + 2, never 2 + 2.
  ASSERT_EQ(setup.traces.size(), 5u);
  EXPECT_EQ(setup.processes,
            (std::vector<std::uint8_t>{0, 0, 0, 1, 1}));
  for (const SharedTrace& t : setup.traces) {
    ASSERT_NE(t, nullptr);
    EXPECT_FALSE(t->empty()) << "a core was left without a trace";
  }
  const RunResult r =
      run_multiprocess(*find_workload("stream"), *find_workload("gs"),
                       CoalescerKind::kPac, wcfg, SystemConfig{});
  EXPECT_GT(r.coal.raw_requests, 0u);
}

TEST(Runner, SimulateHandlesFewerTracesThanCores) {
  SystemConfig cfg;
  cfg.num_cores = 8;
  const std::vector<Trace> traces = {sequential_trace(0x10000000, 100)};
  const RunResult r = simulate(cfg, traces);
  EXPECT_GT(r.coal.raw_requests, 0u);
}

}  // namespace
}  // namespace pacsim
