// Hardened-harness tests: run_isolated() must contain a throwing job, the
// watchdog must reap an over-budget job as a structured timeout, and run()
// must keep its historic all-or-nothing contract on top of it.
#include "exp/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>

#include "exp/interrupt.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace pacsim {
namespace {

WorkloadConfig tiny_wcfg() {
  WorkloadConfig wcfg;
  wcfg.num_cores = 2;
  wcfg.max_ops_per_core = 1500;
  wcfg.scale = 0.25;
  return wcfg;
}

exp::SweepJob job_for(const char* suite, CoalescerKind kind) {
  exp::SweepJob job;
  job.suite = find_workload(suite);
  job.cfg.coalescer = kind;
  job.label = std::string(suite) + "/" + std::string(to_string(kind));
  return job;
}

/// A job guaranteed to throw: an always-corrupting link with a retry budget
/// of one exhausts DevicePort::max_retries on the first request.
exp::SweepJob poisoned_job() {
  exp::SweepJob job = job_for("stream", CoalescerKind::kPac);
  job.cfg.fault.link_error_rate = 1.0;
  job.cfg.retry.max_retries = 1;
  job.cfg.retry.backoff_base = 2;
  job.label = "stream/poisoned";
  return job;
}

TEST(RunIsolated, ContainsAThrowingJob) {
  std::vector<exp::SweepJob> sweep = {job_for("stream", CoalescerKind::kPac),
                                      poisoned_job(),
                                      job_for("gs", CoalescerKind::kPac)};
  const auto outcomes =
      exp::SweepRunner(2).run_isolated(sweep, tiny_wcfg());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_TRUE(outcomes[2].ok());
  EXPECT_EQ(outcomes[1].status, exp::JobOutcome::Status::kFailed);
  EXPECT_NE(outcomes[1].error.find("retrymax"), std::string::npos)
      << "error lost: " << outcomes[1].error;
  EXPECT_NE(outcomes[1].exception, nullptr);
  EXPECT_GT(outcomes[0].wall_seconds, 0.0);
  // The healthy neighbours are untouched by the failure.
  EXPECT_GT(outcomes[0].result.coal.raw_requests, 0u);
  EXPECT_GT(outcomes[2].result.coal.raw_requests, 0u);
}

TEST(RunIsolated, HealthyJobsMatchRun) {
  const std::vector<exp::SweepJob> sweep = {
      job_for("stream", CoalescerKind::kPac)};
  const WorkloadConfig wcfg = tiny_wcfg();
  const auto isolated =
      exp::SweepRunner(1).run_isolated(sweep, wcfg);
  const auto plain = exp::SweepRunner(1).run(sweep, wcfg);
  ASSERT_EQ(isolated.size(), 1u);
  ASSERT_TRUE(isolated[0].ok());
  EXPECT_EQ(run_report_json("x", CoalescerKind::kPac, isolated[0].result,
                            /*include_throughput=*/false),
            run_report_json("x", CoalescerKind::kPac, plain[0],
                            /*include_throughput=*/false));
}

TEST(RunIsolated, WatchdogReapsOverBudgetJob) {
  // A job that would run for a long while against a 20 ms budget. The
  // margins are deliberately loose: the test only requires that the
  // cancellation fires and is classified as a timeout, not any particular
  // latency.
  WorkloadConfig wcfg = tiny_wcfg();
  wcfg.max_ops_per_core = 400'000;
  wcfg.num_cores = 4;
  wcfg.scale = 1.0;
  exp::SweepOptions opts;
  opts.job_timeout_seconds = 0.02;
  const auto outcomes = exp::SweepRunner(1).run_isolated(
      {job_for("bfs", CoalescerKind::kDirect)}, wcfg, opts);
  ASSERT_EQ(outcomes.size(), 1u);
  ASSERT_EQ(outcomes[0].status, exp::JobOutcome::Status::kTimeout)
      << outcomes[0].error;
  EXPECT_NE(outcomes[0].error.find("timeout"), std::string::npos);
  EXPECT_LT(outcomes[0].wall_seconds, 60.0);
}

TEST(RunIsolated, ZeroTimeoutDisablesWatchdog) {
  exp::SweepOptions opts;
  opts.job_timeout_seconds = 0.0;
  const auto outcomes = exp::SweepRunner(1).run_isolated(
      {job_for("stream", CoalescerKind::kDirect)}, tiny_wcfg(), opts);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok());
}

TEST(SweepRunner, RunRethrowsTheFirstFailure) {
  const std::vector<exp::SweepJob> sweep = {
      job_for("stream", CoalescerKind::kPac), poisoned_job()};
  EXPECT_THROW((void)exp::SweepRunner(2).run(sweep, tiny_wcfg()),
               std::runtime_error);
}

TEST(SweepReport, FailureEntriesAreStructured) {
  SweepReport report("bench_failures");
  RunResult ok;
  ok.cycles = 5;
  report.add("good/pac", CoalescerKind::kPac, ok);
  report.add_failure("bad/pac", "timeout", "exceeded job timeout of 0.02s",
                     1.25);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"label\": \"bad/pac\""), std::string::npos);
  EXPECT_NE(json.find("\"status\": \"timeout\""), std::string::npos);
  EXPECT_NE(json.find("\"error\": \"exceeded job timeout of 0.02s\""),
            std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\": 1.25"), std::string::npos);
  // Failure wall time still counts toward the sweep's simulation seconds.
  EXPECT_NE(json.find("\"simulation_seconds\": 1.25"), std::string::npos);
}

TEST(JobOutcome, StatusNames) {
  EXPECT_STREQ(exp::to_string(exp::JobOutcome::Status::kOk), "ok");
  EXPECT_STREQ(exp::to_string(exp::JobOutcome::Status::kFailed), "failed");
  EXPECT_STREQ(exp::to_string(exp::JobOutcome::Status::kTimeout), "timeout");
  EXPECT_STREQ(exp::to_string(exp::JobOutcome::Status::kInterrupted),
               "interrupted");
}

TEST(RunIsolated, DiagnoseRerunsFailedCellAtVerifyFull) {
  // The poisoned job fails with verification off (plain retrymax throw from
  // the DevicePort); the diagnostic re-run upgrades it to verify=full, so
  // the reproduced failure is a VerificationError carrying a forensics dump.
  exp::SweepJob job = poisoned_job();
  job.cfg.verify.forensics_dir =
      (std::filesystem::path(::testing::TempDir()) / "pacsim_diag_forensics")
          .string();
  exp::SweepOptions opts;
  opts.diagnose_failures = true;
  const auto outcomes =
      exp::SweepRunner(1).run_isolated({job}, tiny_wcfg(), opts);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, exp::JobOutcome::Status::kFailed);
  EXPECT_TRUE(outcomes[0].diagnosed);
  EXPECT_NE(outcomes[0].diagnosis.find("retrymax"), std::string::npos)
      << "diagnosis lost: " << outcomes[0].diagnosis;
  ASSERT_FALSE(outcomes[0].forensics.empty())
      << "verify=full re-run produced no forensics dump";
  EXPECT_TRUE(std::filesystem::exists(outcomes[0].forensics));
}

TEST(RunIsolated, DiagnoseSkipsHealthyCells) {
  exp::SweepOptions opts;
  opts.diagnose_failures = true;
  const auto outcomes = exp::SweepRunner(1).run_isolated(
      {job_for("stream", CoalescerKind::kDirect)}, tiny_wcfg(), opts);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok());
  EXPECT_FALSE(outcomes[0].diagnosed);
  EXPECT_TRUE(outcomes[0].diagnosis.empty());
}

TEST(RunIsolated, InterruptSkipsUnstartedJobs) {
  install_interrupt_handler();
  std::raise(SIGINT);
  ASSERT_TRUE(interrupt_requested());
  const auto outcomes = exp::SweepRunner(2).run_isolated(
      {job_for("stream", CoalescerKind::kDirect),
       job_for("gs", CoalescerKind::kDirect)},
      tiny_wcfg());
  reset_interrupt_for_testing();
  ASSERT_EQ(outcomes.size(), 2u);
  for (const exp::JobOutcome& o : outcomes) {
    EXPECT_EQ(o.status, exp::JobOutcome::Status::kInterrupted);
    EXPECT_NE(o.error.find("interrupted"), std::string::npos) << o.error;
  }
}

TEST(RunIsolated, InterruptCancelsInFlightJobs) {
  install_interrupt_handler();
  reset_interrupt_for_testing();
  // Same long-running cell as the watchdog test; the signal lands while it
  // simulates, the broadcaster cancels it, and the outcome is classified
  // as interrupted rather than failed.
  WorkloadConfig wcfg = tiny_wcfg();
  wcfg.max_ops_per_core = 400'000;
  wcfg.num_cores = 4;
  wcfg.scale = 1.0;
  std::thread signaller([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::raise(SIGINT);
  });
  const auto outcomes = exp::SweepRunner(1).run_isolated(
      {job_for("bfs", CoalescerKind::kDirect)}, wcfg);
  signaller.join();
  reset_interrupt_for_testing();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, exp::JobOutcome::Status::kInterrupted)
      << outcomes[0].error;
}

}  // namespace
}  // namespace pacsim
