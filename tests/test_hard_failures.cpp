// Hard-failure model unit tests: FaultConfig validation and the CLI event
// grammars (timeline knobs, faultplan files), the scheduled-event timeline
// inside FaultInjector (exact firing cycles, repair/MTTR accounting, and
// checkpoint replay - including a snapshot taken inside a burst window),
// the DevicePort retry-buffer snapshot with in-flight retries (backoff
// timers fire at the same cycles after restore), and the PageTable sparing
// remap (migration penalties, dead-spare skipping, pool exhaustion).
#include "core/fault_injector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/serialize.hpp"
#include "common/types.hpp"
#include "hmc/device_port.hpp"
#include "hmc/hmc_device.hpp"
#include "mem/page_table.hpp"

namespace pacsim {
namespace {

// ---------------------------------------------------------------------------
// FaultConfig validation (strict CLI front-end contract): one-line errors
// naming the offending knob.

TEST(FaultConfigValidation, AcceptsDefaultsAndSaneConfigs) {
  EXPECT_NO_THROW(validate_fault_config(FaultConfig{}));
  FaultConfig cfg;
  cfg.link_error_rate = 0.5;
  cfg.response_drop_rate = 1.0;
  cfg.burst_length = 3;
  cfg.timeline.push_back({100, FaultEventKind::kLinkDown, 0, 1});
  EXPECT_NO_THROW(validate_fault_config(cfg));
}

TEST(FaultConfigValidation, RejectsRatesOutsideUnitInterval) {
  for (const char* knob : {"faultrate", "faultdrop", "faultstall"}) {
    FaultConfig cfg;
    if (std::string(knob) == "faultrate") cfg.link_error_rate = 1.5;
    if (std::string(knob) == "faultdrop") cfg.response_drop_rate = -0.1;
    if (std::string(knob) == "faultstall") cfg.vault_stall_rate = 2.0;
    try {
      validate_fault_config(cfg);
      FAIL() << knob << " out of range was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(knob), std::string::npos)
          << "error does not name the knob: " << e.what();
    }
  }
}

TEST(FaultConfigValidation, RejectsZeroBurstLength) {
  FaultConfig cfg;
  cfg.burst_length = 0;
  try {
    validate_fault_config(cfg);
    FAIL() << "burst_length=0 was accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("burstlen"), std::string::npos)
        << e.what();
  }
}

TEST(FaultConfigValidation, RejectsSelfLoopLinkEvents) {
  FaultConfig cfg;
  cfg.timeline.push_back({10, FaultEventKind::kLinkDown, 2, 2});
  EXPECT_THROW(validate_fault_config(cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CLI event grammars.

TEST(FaultEventParse, ParsesLinkVaultAndCubeSpecs) {
  const auto links = parse_fault_events("linkdown", FaultEventKind::kLinkDown,
                                        "1000:0-1,5000:1-2");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].cycle, 1000u);
  EXPECT_EQ(links[0].a, 0u);
  EXPECT_EQ(links[0].b, 1u);
  EXPECT_EQ(links[1].cycle, 5000u);
  EXPECT_EQ(links[1].kind, FaultEventKind::kLinkDown);

  const auto vaults = parse_fault_events(
      "vaultdown", FaultEventKind::kVaultDown, "2000:1.3");
  ASSERT_EQ(vaults.size(), 1u);
  EXPECT_EQ(vaults[0].a, 1u);
  EXPECT_EQ(vaults[0].b, 3u);

  const auto dead = parse_fault_events("cubedown", FaultEventKind::kCubeDown,
                                       "4000:2");
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0].a, 2u);
}

TEST(FaultEventParse, MalformedEntriesNameTheKnob) {
  // Note: an empty spec is a deliberate no-op (the knob parsed to nothing),
  // so it is not in this list.
  for (const std::string spec : {"abc", "1000", "1000:", "1000:0-",
                                 "1000:-1", "x:0-1"}) {
    try {
      (void)parse_fault_events("linkdown", FaultEventKind::kLinkDown, spec);
      FAIL() << "accepted malformed spec '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("linkdown"), std::string::npos)
          << e.what();
    }
  }
}

TEST(FaultPlanParse, ParsesFileBodyWithCommentsAndBlankLines) {
  const std::string body =
      "# chaos plan\n"
      "\n"
      "1000 linkdown 0 1\n"
      "2000 vaultdown 1 3   # vault 3 of cube 1\n"
      "3000 cubedown 2\n"
      "4000 linkup 0 1\n";
  const auto events = parse_fault_plan(body);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FaultEventKind::kLinkDown);
  EXPECT_EQ(events[1].kind, FaultEventKind::kVaultDown);
  EXPECT_EQ(events[2].kind, FaultEventKind::kCubeDown);
  EXPECT_EQ(events[3].kind, FaultEventKind::kLinkUp);
  EXPECT_EQ(events[3].cycle, 4000u);
}

TEST(FaultPlanParse, MalformedLineNamesItsLineNumber) {
  try {
    (void)parse_fault_plan("1000 linkdown 0 1\nbogus line here\n");
    FAIL() << "accepted a malformed plan";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(FaultPlanParse, OutOfOrderEventNamesItsLine) {
  try {
    (void)parse_fault_plan("2000 linkdown 0 1\n1000 cubedown 2\n");
    FAIL() << "accepted an out-of-order plan";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("out-of-order"), std::string::npos) << what;
    EXPECT_NE(what.find("1000"), std::string::npos) << what;
    EXPECT_NE(what.find("2000"), std::string::npos) << what;
  }
}

TEST(FaultPlanParse, DuplicateEventNamesItsLine) {
  try {
    (void)parse_fault_plan(
        "1000 linkdown 0 1\n"
        "2000 vaultdown 1 3\n"
        "2000 vaultdown 1 3\n");
    FAIL() << "accepted a duplicate event";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate"), std::string::npos) << what;
  }
}

TEST(FaultPlanParse, DuplicateDetectionNormalizesLinkEndpoints) {
  // "linkdown 1 0" and "linkdown 0 1" name the same physical link.
  EXPECT_THROW((void)parse_fault_plan("1000 linkdown 0 1\n1000 linkdown 1 0\n"),
               std::invalid_argument);
}

TEST(FaultPlanParse, SameCycleDistinctEventsAreLegal) {
  // Equal cycles are fine (not out-of-order) as long as the events differ.
  const auto events =
      parse_fault_plan("1000 linkdown 0 1\n1000 cubedown 2\n");
  ASSERT_EQ(events.size(), 2u);
  // A down/up pair on the same link at different cycles is also legal.
  EXPECT_NO_THROW(
      (void)parse_fault_plan("1000 linkdown 0 1\n2000 linkup 0 1\n"));
}

TEST(FailPolicyParse, RoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_fail_policy("abort"), FailPolicy::kAbort);
  EXPECT_EQ(parse_fail_policy("contain"), FailPolicy::kContain);
  EXPECT_STREQ(to_string(FailPolicy::kAbort), "abort");
  EXPECT_STREQ(to_string(FailPolicy::kContain), "contain");
  EXPECT_THROW((void)parse_fail_policy("explode"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Timeline mechanics inside the injector.

FaultConfig timeline_config() {
  FaultConfig cfg;
  cfg.timeline = {
      {100, FaultEventKind::kLinkDown, 0, 1},
      {200, FaultEventKind::kVaultDown, 1, 3},
      {300, FaultEventKind::kCubeDown, 2, 0},
      {450, FaultEventKind::kLinkUp, 0, 1},
  };
  return cfg;
}

TEST(FaultTimeline, FiresAtExactCyclesInOrder) {
  FaultInjector inj(timeline_config());
  EXPECT_TRUE(inj.hard_active());
  EXPECT_FALSE(inj.any_dead());
  EXPECT_EQ(inj.next_timeline_cycle(0), 100u);

  EXPECT_FALSE(inj.poll(99));
  EXPECT_FALSE(inj.any_dead());
  EXPECT_TRUE(inj.poll(100));
  EXPECT_TRUE(inj.link_dead(0, 1));
  EXPECT_TRUE(inj.link_dead(1, 0)) << "link death must be direction-agnostic";
  EXPECT_EQ(inj.timeline_fired(), 1u);
  EXPECT_EQ(inj.next_timeline_cycle(100), 200u);
  EXPECT_EQ(inj.next_timeline_cycle(250), 250u)
      << "an overdue unfired event must bind the horizon to now";

  // A late poll fires everything due, in order.
  EXPECT_TRUE(inj.poll(300));
  EXPECT_TRUE(inj.vault_dead(1, 3));
  EXPECT_FALSE(inj.vault_dead(1, 2));
  EXPECT_TRUE(inj.cube_dead(2));
  EXPECT_EQ(inj.timeline_fired(), 3u);

  EXPECT_TRUE(inj.poll(450));
  EXPECT_FALSE(inj.link_dead(0, 1)) << "linkup must repair the link";
  EXPECT_EQ(inj.repairs(), 1u);
  EXPECT_EQ(inj.repair_cycles_total(), 350u) << "MTTR = 450 - 100 exactly";
  EXPECT_EQ(inj.next_timeline_cycle(451), kNeverCycle);
  // Vault and cube deaths are permanent.
  EXPECT_TRUE(inj.vault_dead(1, 3));
  EXPECT_TRUE(inj.cube_dead(2));
}

TEST(FaultTimeline, UnreachableSetIsFabricOwned) {
  FaultInjector inj(timeline_config());
  EXPECT_FALSE(inj.cube_unreachable(3));
  inj.set_unreachable({2, 3});
  EXPECT_TRUE(inj.cube_unreachable(2));
  EXPECT_TRUE(inj.cube_unreachable(3));
  EXPECT_TRUE(inj.any_dead());
  inj.set_unreachable({});
  EXPECT_FALSE(inj.cube_unreachable(3));
}

TEST(FaultTimeline, CheckpointReplaysFiredPrefix) {
  FaultInjector inj(timeline_config());
  (void)inj.poll(250);  // linkdown + vaultdown fired, link still dead
  BinWriter w;
  inj.checkpoint_save(w);

  FaultInjector restored(timeline_config());
  BinReader r(w.take());
  restored.checkpoint_load(r);
  EXPECT_EQ(restored.timeline_fired(), 2u);
  EXPECT_TRUE(restored.link_dead(0, 1));
  EXPECT_TRUE(restored.vault_dead(1, 3));
  EXPECT_FALSE(restored.cube_dead(2));
  EXPECT_EQ(restored.next_timeline_cycle(250), 300u);

  // The replayed down-since record must yield the exact same MTTR when the
  // repair fires after the restore.
  EXPECT_TRUE(restored.poll(450));
  EXPECT_EQ(restored.repairs(), 1u);
  EXPECT_EQ(restored.repair_cycles_total(), 350u);
}

// ---------------------------------------------------------------------------
// Satellite: burst-fault carry-over across checkpoint/restore. A snapshot
// taken inside a burst_length=3 window must restore mid-burst: the next
// decisions continue the burst, then the RNG stream continues identically.

TEST(FaultBurst, CheckpointInsideBurstWindowRestoresBitIdentically) {
  FaultConfig cfg;
  cfg.link_error_rate = 0.05;
  cfg.burst_length = 3;
  FaultInjector inj(cfg);

  // Walk to a fresh fault: the injector now owes two more burst faults.
  int draws = 0;
  while (!inj.corrupt_request()) {
    ++draws;
    ASSERT_LT(draws, 10'000) << "rate 0.05 never fired";
  }
  BinWriter w;
  inj.checkpoint_save(w);

  // The uninterrupted stream: two burst continuations, then fresh rolls.
  std::vector<bool> expect;
  for (int i = 0; i < 500; ++i) expect.push_back(inj.corrupt_request());
  ASSERT_TRUE(expect[0] && expect[1]) << "burst carry-over missing";

  FaultConfig other = cfg;
  other.seed ^= 0xBADF00DULL;  // restore must fully override the seed
  FaultInjector restored(other);
  BinReader r(w.take());
  restored.checkpoint_load(r);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(restored.corrupt_request(), expect[i]) << "draw " << i;
  }
  EXPECT_EQ(restored.stats().link_errors, inj.stats().link_errors);
}

// ---------------------------------------------------------------------------
// Satellite: checkpoint/restore while the DevicePort retry buffer holds an
// in-flight retry. The armed backoff timer must survive restore and fire at
// the same cycle, producing the identical completion sequence.

struct PortStack {
  PowerModel power;
  std::unique_ptr<FaultInjector> fault;
  std::unique_ptr<HmcDevice> device;
  std::unique_ptr<DevicePort> port;

  explicit PortStack(const FaultConfig& fcfg, const RetryConfig& rcfg) {
    fault = std::make_unique<FaultInjector>(fcfg);
    device = std::make_unique<HmcDevice>(HmcConfig{}, &power, fault.get());
    port = std::make_unique<DevicePort>(device.get(), rcfg, /*tracking=*/true,
                                        fault.get());
  }

  void tick(Cycle now) {
    device->tick(now);
    port->tick(now);
  }
};

FaultConfig always_drop() {
  FaultConfig f;
  f.response_drop_rate = 1.0;  // every response is lost; timers drive all
  f.fail_policy = FailPolicy::kContain;
  return f;
}

RetryConfig tight_retry() {
  RetryConfig r;
  r.response_timeout = 256;
  r.max_retries = 2;
  r.backoff_base = 16;
  return r;
}

TEST(DevicePortCheckpoint, RetryTimersSurviveRestoreAndFireOnSchedule) {
  // Uninterrupted reference: one request whose responses always drop walks
  // timeout -> retransmit -> timeout -> ... -> poisoned completion, every
  // step scheduled purely by retry timers.
  PortStack ref(always_drop(), tight_retry());
  DeviceRequest req;
  req.id = 42;
  req.base = 0x4000;
  req.bytes = 64;
  req.raw_ids = {7, 8};
  ref.port->submit(req, 0);

  std::vector<DeviceResponse> buf;
  std::vector<std::pair<Cycle, bool>> ref_events;  // (cycle, poisoned)
  Cycle snap_cycle = 0;
  Cycle snap_next_event = kNeverCycle;
  std::string snapshot;
  for (Cycle now = 0; now < 100'000 && ref_events.empty(); ++now) {
    ref.tick(now);
    // Snapshot at the first cycle where the device has dropped the response
    // (idle) but the port still owes a retry: a timer is armed, mid-flight.
    if (snapshot.empty() && ref.port->stats().timeout_fires >= 1 &&
        ref.device->idle() && !ref.port->idle()) {
      snap_cycle = now;
      snap_next_event = ref.port->next_event_cycle(now);
      BinWriter w;
      ref.fault->checkpoint_save(w);
      ref.device->checkpoint_save(w);
      ref.port->checkpoint_save(w);
      snapshot = w.take();
    }
    ref.port->drain_completed_into(buf);
    for (const DeviceResponse& rsp : buf) {
      ref_events.emplace_back(now, rsp.poisoned);
      EXPECT_EQ(rsp.request_id, 42u);
      EXPECT_EQ(rsp.raw_ids, (std::vector<std::uint64_t>{7, 8}));
    }
  }
  ASSERT_EQ(ref_events.size(), 1u) << "request never resolved";
  ASSERT_TRUE(ref_events[0].second) << "always-drop must end poisoned";
  ASSERT_FALSE(snapshot.empty()) << "no mid-retry quiescent point found";
  ASSERT_GT(ref.port->stats().retransmissions, 0u)
      << "snapshot must cover a live retransmission schedule";

  // Restore into a fresh stack (different seed: state must fully override)
  // and drive from the snapshot cycle: the poisoned completion must arrive
  // at the identical cycle with identical stats.
  FaultConfig fcfg = always_drop();
  fcfg.seed ^= 0x5EEDULL;
  PortStack res(fcfg, tight_retry());
  BinReader r(snapshot);
  res.fault->checkpoint_load(r);
  res.device->checkpoint_load(r);
  res.port->checkpoint_load(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_FALSE(res.port->idle()) << "pending retry entry did not restore";
  EXPECT_EQ(res.port->next_event_cycle(snap_cycle), snap_next_event)
      << "restored timer must be armed for the same cycle";
  EXPECT_NE(snap_next_event, kNeverCycle)
      << "snapshot point must hold an armed backoff timer";

  std::vector<std::pair<Cycle, bool>> res_events;
  for (Cycle now = snap_cycle + 1; now < 100'000 && res_events.empty();
       ++now) {
    res.tick(now);
    res.port->drain_completed_into(buf);
    for (const DeviceResponse& rsp : buf) {
      res_events.emplace_back(now, rsp.poisoned);
    }
  }
  EXPECT_EQ(res_events, ref_events);
  EXPECT_EQ(res.port->stats().retransmissions,
            ref.port->stats().retransmissions);
  EXPECT_EQ(res.port->stats().timeout_fires, ref.port->stats().timeout_fires);
  EXPECT_EQ(res.port->stats().poisoned_completions,
            ref.port->stats().poisoned_completions);
  EXPECT_TRUE(res.port->idle());
}

// ---------------------------------------------------------------------------
// PageTable sparing remap.

constexpr std::uint64_t kPages = 4096;
constexpr std::uint64_t kSpares = 16;

TEST(PageTableSparing, IdentityModeMigratesDeadPagesToSpareRegion) {
  std::set<std::uint64_t> dead;
  PageTable pt(kPages, 1, /*identity=*/true);
  pt.enable_sparing(kSpares,
                    [&dead](std::uint64_t pfn) { return dead.count(pfn) > 0; });

  const Addr vaddr = 0x200 << kPageShift | 0x40;
  EXPECT_EQ(pt.translate(0, vaddr), vaddr) << "identity before any failure";
  EXPECT_FALSE(pt.consume_migration());

  // The page's frame dies: the established mapping migrates, with penalty.
  dead.insert(0x200);
  const Addr migrated = pt.translate(0, vaddr);
  EXPECT_TRUE(pt.consume_migration());
  EXPECT_FALSE(pt.consume_migration()) << "flag must be one-shot";
  const std::uint64_t spare_base = kPages - kSpares;
  EXPECT_EQ(migrated >> kPageShift, spare_base)
      << "first spare sits at the top of the physical capacity";
  EXPECT_EQ(migrated & (kPageSize - 1), vaddr & (kPageSize - 1))
      << "page offset must survive the remap";
  EXPECT_EQ(pt.pages_migrated(), 1u);
  EXPECT_EQ(pt.spares_used(), 1u);

  // Re-translate: stable spare mapping, no second migration.
  EXPECT_EQ(pt.translate(0, vaddr), migrated);
  EXPECT_FALSE(pt.consume_migration());

  // Identity mode keeps no per-page residency record, so every touch on a
  // dead frame is conservatively modeled as a migration (with penalty) -
  // unlike the pooled mode, where a genuinely fresh touch is penalty-free.
  dead.insert(0x201);
  const Addr next = pt.translate(0, Addr{0x201} << kPageShift);
  EXPECT_TRUE(pt.consume_migration());
  EXPECT_EQ(next >> kPageShift, spare_base + 1);
  EXPECT_EQ(pt.pages_migrated(), 2u);
  EXPECT_EQ(pt.spares_used(), 2u);
}

TEST(PageTableSparing, SkipsDeadSparesAndStopsWhenDry) {
  std::set<std::uint64_t> dead;
  PageTable pt(kPages, 1, /*identity=*/true);
  pt.enable_sparing(2, [&dead](std::uint64_t pfn) { return dead.count(pfn); });
  const std::uint64_t spare_base = kPages - 2;

  // The first spare frame itself sits on dead hardware: migration must
  // consume-and-skip it deterministically.
  dead.insert(spare_base);
  dead.insert(0x10);
  const Addr moved = pt.translate(0, Addr{0x10} << kPageShift);
  EXPECT_TRUE(pt.consume_migration());
  EXPECT_EQ(moved >> kPageShift, spare_base + 1);
  EXPECT_EQ(pt.spares_used(), 2u) << "dead spare consumed and skipped";
  EXPECT_EQ(pt.pages_migrated(), 1u);

  // Pool is dry now: a dead page keeps its identity translation (the
  // DevicePort resolves the access as a poisoned completion downstream).
  dead.insert(0x11);
  const Addr vaddr = Addr{0x11} << kPageShift;
  EXPECT_EQ(pt.translate(0, vaddr), vaddr);
  EXPECT_FALSE(pt.consume_migration());
  EXPECT_EQ(pt.pages_migrated(), 1u) << "a dry pool must not count a move";
}

TEST(PageTableSparing, PooledModeMigratesWithPenaltyAndCapsAllocation) {
  std::set<std::uint64_t> dead;
  PageTable pt(256, 7);  // shuffled pool
  pt.enable_sparing(8, [&dead](std::uint64_t pfn) { return dead.count(pfn); });

  const Addr vaddr = Addr{5} << kPageShift;
  const Addr first = pt.translate(0, vaddr);
  EXPECT_FALSE(pt.consume_migration());
  ASSERT_TRUE(pt.lookup(0, vaddr).has_value());

  dead.insert(first >> kPageShift);
  EXPECT_FALSE(pt.lookup(0, vaddr).has_value())
      << "a dead-framed mapping must read as not steadily translatable";
  const Addr second = pt.translate(0, vaddr);
  EXPECT_TRUE(pt.consume_migration());
  EXPECT_NE(second >> kPageShift, first >> kPageShift);
  EXPECT_EQ(pt.pages_migrated(), 1u);
  EXPECT_EQ(pt.lookup(0, vaddr), second);
}

TEST(PageTableSparing, RejectsLateEnableAndOversizedPool) {
  PageTable late(256, 7);
  (void)late.translate(0, 0x1000);
  EXPECT_THROW(late.enable_sparing(8, [](std::uint64_t) { return false; }),
               std::logic_error);

  PageTable fresh(256, 7);
  EXPECT_THROW(fresh.enable_sparing(256, [](std::uint64_t) { return false; }),
               std::invalid_argument);
}

TEST(PageTableSparing, SparingCursorsSurviveCheckpoint) {
  std::set<std::uint64_t> dead;
  PageTable pt(kPages, 1, /*identity=*/true);
  pt.enable_sparing(kSpares,
                    [&dead](std::uint64_t pfn) { return dead.count(pfn); });
  const Addr vaddr = Addr{0x30} << kPageShift;
  (void)pt.translate(0, vaddr);
  dead.insert(0x30);
  const Addr migrated = pt.translate(0, vaddr);
  (void)pt.consume_migration();

  BinWriter w;
  pt.checkpoint_save(w);
  PageTable restored(kPages, 1, /*identity=*/true);
  restored.enable_sparing(kSpares,
                          [&dead](std::uint64_t pfn) { return dead.count(pfn); });
  BinReader r(w.take());
  restored.checkpoint_load(r);
  EXPECT_EQ(restored.pages_migrated(), 1u);
  EXPECT_EQ(restored.spares_used(), 1u);
  EXPECT_EQ(restored.translate(0, vaddr), migrated)
      << "overlay mapping must survive the round-trip";
  EXPECT_FALSE(restored.consume_migration());
  // The next migration must take the NEXT spare, not reuse the first.
  dead.insert(0x31);
  (void)restored.translate(0, Addr{0x31} << kPageShift);
  EXPECT_EQ(restored.spares_used(), 2u);
}

}  // namespace
}  // namespace pacsim
