// Runtime-verification tests: the RequestLedger store, each Verifier
// invariant in isolation (fence window, atomic arity, byte coverage,
// duplicate/unknown retirement, bounded latency, watchdog, conservation),
// the system-level property that verify=full passes cleanly - and is purely
// observational - for every coalescer with and without fault injection, and
// the seeded-bug fixture: a controller that silently drops retirements must
// be caught by the no-progress watchdog with a forensics dump naming the
// stuck request timelines.
#include "core/verifier.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/atomic_file.hpp"
#include "pac/coalescer.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/system_config.hpp"
#include "workloads/workload.hpp"

namespace pacsim {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

VerifyConfig full_config(const char* dir_name) {
  VerifyConfig cfg;
  cfg.level = VerifyLevel::kFull;
  cfg.forensics_dir = temp_dir(dir_name);
  return cfg;
}

MemRequest raw(std::uint64_t id, Addr paddr, MemOp op = MemOp::kLoad) {
  MemRequest r;
  r.id = id;
  r.paddr = paddr;
  r.op = op;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------------------
// Atomic report writes

TEST(AtomicFile, WritesAndReplacesWithoutLeftovers) {
  const std::string dir = temp_dir("atomic_file");
  fs::create_directories(dir);
  const std::string path = (fs::path(dir) / "report.json").string();
  write_file_atomic(path, "first");
  write_file_atomic(path, "second");
  EXPECT_EQ(slurp(path), "second");
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u) << "temp file leaked beside the report";
}

TEST(AtomicFile, ThrowsOnUnwritablePath) {
  EXPECT_THROW(
      write_file_atomic("/nonexistent-dir-pacsim/report.json", "x"),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// RequestLedger

TEST(RequestLedger, TracksOpenNoteAndClose) {
  RequestLedger ledger;
  EXPECT_TRUE(ledger.open(raw(1, 0x1000), 5));
  EXPECT_FALSE(ledger.open(raw(1, 0x1000), 6)) << "duplicate open allowed";
  EXPECT_EQ(ledger.outstanding(), 1u);

  ReqRecord* rec = ledger.note(1, ReqStage::kAccepted, 7);
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->events.size(), 2u);  // kIssued from open() + kAccepted
  EXPECT_EQ(rec->events[0].stage, ReqStage::kIssued);
  EXPECT_EQ(rec->events[1].stage, ReqStage::kAccepted);
  EXPECT_EQ(rec->events[1].cycle, 7u);
  EXPECT_EQ(ledger.note(99, ReqStage::kAccepted, 7), nullptr);

  EXPECT_TRUE(ledger.close(1));
  EXPECT_FALSE(ledger.close(1));
  EXPECT_EQ(ledger.outstanding(), 0u);
  EXPECT_EQ(ledger.find(1), nullptr);
  EXPECT_EQ(ledger.note(1, ReqStage::kRetired, 8), nullptr) << "closed";
}

TEST(RequestLedger, OldestOrdersByIssueCycleThenId) {
  RequestLedger ledger;
  ledger.open(raw(3, 0x3000), 30);
  ledger.open(raw(1, 0x1000), 10);
  ledger.open(raw(5, 0x5000), 10);
  ledger.open(raw(2, 0x2000), 20);
  const auto top = ledger.oldest(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 5u);
  EXPECT_EQ(top[2].first, 2u);
  EXPECT_EQ(ledger.oldest(100).size(), 4u);
}

// ---------------------------------------------------------------------------
// Verify levels

TEST(VerifyLevel, ParsesAndRejects) {
  EXPECT_EQ(parse_verify_level("off"), VerifyLevel::kOff);
  EXPECT_EQ(parse_verify_level("counters"), VerifyLevel::kCounters);
  EXPECT_EQ(parse_verify_level("full"), VerifyLevel::kFull);
  EXPECT_THROW((void)parse_verify_level("fulll"), std::invalid_argument);
  EXPECT_THROW((void)parse_verify_level(""), std::invalid_argument);
  EXPECT_STREQ(to_string(VerifyLevel::kOff), "off");
  EXPECT_STREQ(to_string(VerifyLevel::kCounters), "counters");
  EXPECT_STREQ(to_string(VerifyLevel::kFull), "full");
}

// ---------------------------------------------------------------------------
// Individual invariants

TEST(Verifier, FenceWindowRejectsAcceptDuringDrain) {
  Verifier v(full_config("forensics_fence"));
  const MemRequest fence = raw(1, 0, MemOp::kFence);
  v.on_issued(fence, 10);
  v.on_fence_begin(1, 10);
  v.on_accepted(fence, 10);  // the fence itself is legal inside its window
  EXPECT_TRUE(v.fence_active());

  const MemRequest load = raw(2, 0x1000);
  v.on_issued(load, 11);
  try {
    v.on_accepted(load, 11);
    FAIL() << "fence window not enforced";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("fence"), std::string::npos)
        << e.what();
    ASSERT_FALSE(e.forensics_path().empty());
    EXPECT_TRUE(fs::exists(e.forensics_path()));
    EXPECT_NE(slurp(e.forensics_path()).find("\"kind\": \"fence_ordering\""),
              std::string::npos);
  }
}

TEST(Verifier, FenceEndReopensAcceptance) {
  Verifier v(full_config("forensics_fence_end"));
  const MemRequest fence = raw(1, 0, MemOp::kFence);
  v.on_issued(fence, 10);
  v.on_fence_begin(1, 10);
  v.on_accepted(fence, 10);
  v.on_fence_end(20);
  EXPECT_FALSE(v.fence_active());
  const MemRequest load = raw(2, 0x1000);
  v.on_issued(load, 21);
  EXPECT_NO_THROW(v.on_accepted(load, 21));
}

TEST(Verifier, AtomicPacketMustCarryExactlyOneRaw) {
  Verifier v(full_config("forensics_atomic"));
  v.on_issued(raw(1, 0x1000, MemOp::kAtomic), 0);
  v.on_issued(raw(2, 0x1010, MemOp::kAtomic), 0);
  v.on_accepted(raw(1, 0x1000, MemOp::kAtomic), 1);
  v.on_accepted(raw(2, 0x1010, MemOp::kAtomic), 1);
  DeviceRequest req;
  req.id = 7;
  req.base = 0x1000;
  req.bytes = 64;
  req.atomic = true;
  req.add_raw(1);
  req.add_raw(2);
  EXPECT_THROW(v.on_dispatched(req, 2), VerificationError);
}

TEST(Verifier, DispatchMustCoverRawAddresses) {
  Verifier v(full_config("forensics_coverage"));
  v.on_issued(raw(1, 0x1040), 0);
  v.on_accepted(raw(1, 0x1040), 1);
  DeviceRequest req;
  req.id = 3;
  req.base = 0x2000;  // does not contain 0x1040
  req.bytes = 256;
  req.add_raw(1);
  try {
    v.on_dispatched(req, 2);
    FAIL() << "byte coverage not enforced";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("does not cover"), std::string::npos)
        << e.what();
  }
}

TEST(Verifier, CoveringDispatchAndResponseRetireCleanly) {
  Verifier v(full_config("forensics_clean"));
  v.on_issued(raw(1, 0x1040), 0);
  v.on_accepted(raw(1, 0x1040), 1);
  DeviceRequest req;
  req.id = 3;
  req.base = 0x1000;
  req.bytes = 256;
  req.add_raw(1, 1);  // 64 B granule: block 1 = byte offset 64
  EXPECT_NO_THROW(v.on_dispatched(req, 2));
  DeviceResponse rsp;
  rsp.request_id = 3;
  rsp.raw_ids.push_back(1);
  EXPECT_NO_THROW(v.on_response(rsp, 10));
  EXPECT_NO_THROW(v.on_retired(1, 11));
  EXPECT_NO_THROW(v.final_check(12));
  const VerifyStats s = v.stats_snapshot();
  EXPECT_EQ(s.issued, 1u);
  EXPECT_EQ(s.retired, 1u);
  EXPECT_EQ(s.dispatched_raws, 1u);
  EXPECT_EQ(s.responded_raws, 1u);
  EXPECT_EQ(s.violations, 0u);
}

TEST(Verifier, DuplicateRetirementIsAViolation) {
  Verifier v(full_config("forensics_dup_retire"));
  v.on_issued(raw(1, 0x1000), 0);
  v.on_accepted(raw(1, 0x1000), 1);
  v.on_retired(1, 5);
  try {
    v.on_retired(1, 6);
    FAIL() << "duplicate retirement not detected";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate retirement"),
              std::string::npos)
        << e.what();
  }
}

TEST(Verifier, RetirementOfNeverIssuedIdIsAViolation) {
  Verifier v(full_config("forensics_unknown_retire"));
  try {
    v.on_retired(42, 1);
    FAIL() << "unknown retirement not detected";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("never-issued"), std::string::npos)
        << e.what();
  }
}

TEST(Verifier, AgeScanEnforcesLatencyBudget) {
  VerifyConfig cfg = full_config("forensics_age");
  cfg.max_request_age = 1000;
  cfg.age_check_period = 500;
  Verifier v(cfg);
  v.on_issued(raw(1, 0x1000), 0);
  v.on_accepted(raw(1, 0x1000), 1);
  EXPECT_TRUE(v.age_check_due(500));
  EXPECT_NO_THROW(v.check_ages(900));  // age 900, inside the budget
  EXPECT_FALSE(v.age_check_due(901)) << "scan did not re-arm";
  try {
    v.check_ages(5000);
    FAIL() << "latency budget not enforced";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("cycles old"), std::string::npos)
        << e.what();
  }
}

TEST(Verifier, WatchdogTracksProgressAndClampsFastForward) {
  VerifyConfig cfg = full_config("forensics_watchdog");
  cfg.watchdog_cycles = 100;
  cfg.age_check_period = 1000;
  Verifier v(cfg);
  EXPECT_FALSE(v.watchdog_due(99));
  EXPECT_TRUE(v.watchdog_due(100));
  v.note_progress(50);
  EXPECT_FALSE(v.watchdog_due(100));
  EXPECT_TRUE(v.watchdog_due(150));
  // Deadline = min(progress deadline, age scan); never behind `now`, so a
  // fast-forward jump can always move forward.
  EXPECT_EQ(v.next_deadline(60), 150u);
  EXPECT_EQ(v.next_deadline(400), 400u);
  try {
    v.watchdog_fire(150, "test reason");
    FAIL() << "watchdog_fire returned";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("test reason"), std::string::npos);
  }
}

TEST(Verifier, FinalCheckCatchesLostRequestAtCountersLevel) {
  VerifyConfig cfg;
  cfg.level = VerifyLevel::kCounters;
  cfg.forensics_dir = temp_dir("forensics_counters");
  Verifier v(cfg);
  v.on_issued(raw(1, 0x1000), 0);
  v.on_accepted(raw(1, 0x1000), 1);
  try {
    v.final_check(100);
    FAIL() << "conservation equation not enforced";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("conservation equation"),
              std::string::npos)
        << e.what();
  }
}

TEST(Verifier, FinalCheckPassesBalancedCounters) {
  VerifyConfig cfg;
  cfg.level = VerifyLevel::kCounters;
  cfg.forensics_dir = temp_dir("forensics_counters_ok");
  Verifier v(cfg);
  v.on_issued(raw(1, 0x1000), 0);
  v.on_accepted(raw(1, 0x1000), 1);
  v.on_retired(1, 5);
  v.on_issued(raw(2, 0, MemOp::kFence), 6);
  v.on_accepted(raw(2, 0, MemOp::kFence), 7);  // fences retire at accept
  EXPECT_NO_THROW(v.final_check(10));
  const VerifyStats s = v.stats_snapshot();
  EXPECT_TRUE(s.enabled);
  EXPECT_EQ(s.level, VerifyLevel::kCounters);
  EXPECT_EQ(s.issued, 2u);
  EXPECT_EQ(s.retired + s.fences, s.issued);
}

// ---------------------------------------------------------------------------
// System-level: verify=full over the controller x fault ladder

WorkloadConfig tiny_wcfg() {
  WorkloadConfig wcfg;
  wcfg.num_cores = 2;
  wcfg.max_ops_per_core = 1500;
  wcfg.scale = 0.25;
  return wcfg;
}

TEST(VerifierSystem, ConservationHoldsAcrossControllersAndFaults) {
  const Workload* suite = find_workload("stream");
  ASSERT_NE(suite, nullptr);
  // Backend axis: every controller's lifecycle accounting must balance on
  // every substrate (the verifier hooks live in the port/coalescer layer,
  // but NACK and drop notifications originate inside each backend).
  for (const BackendKind backend :
       {BackendKind::kHmc, BackendKind::kHbm, BackendKind::kDdr}) {
    for (const CoalescerKind kind :
         {CoalescerKind::kDirect, CoalescerKind::kMshrDmc,
          CoalescerKind::kPac, CoalescerKind::kSortingDmc}) {
      for (const double rate : {0.0, 1e-3}) {
        SCOPED_TRACE(std::string(to_string(backend)) + "/" +
                     std::string(to_string(kind)) + " fault_rate=" +
                     std::to_string(rate));
        SystemConfig cfg;
        cfg.backend = backend;
        cfg.fault.link_error_rate = rate;
        cfg.verify.level = VerifyLevel::kFull;
        cfg.verify.forensics_dir = temp_dir("forensics_ladder");
        const RunResult r = run_suite(*suite, kind, tiny_wcfg(), cfg);
        EXPECT_TRUE(r.verification.enabled);
        EXPECT_EQ(r.verification.level, VerifyLevel::kFull);
        EXPECT_EQ(r.verification.violations, 0u);
        EXPECT_GT(r.verification.issued, 0u);
        EXPECT_EQ(r.verification.issued,
                  r.verification.retired + r.verification.fences);
      }
    }
  }
}

TEST(VerifierSystem, FullVerificationIsObservational) {
  const Workload* suite = find_workload("stream");
  SystemConfig off_cfg;
  SystemConfig full_cfg_;
  full_cfg_.verify.level = VerifyLevel::kFull;
  full_cfg_.verify.forensics_dir = temp_dir("forensics_observational");
  const RunResult off =
      run_suite(*suite, CoalescerKind::kPac, tiny_wcfg(), off_cfg);
  RunResult full =
      run_suite(*suite, CoalescerKind::kPac, tiny_wcfg(), full_cfg_);
  EXPECT_FALSE(off.verification.enabled);
  EXPECT_EQ(full.verification.violations, 0u);
  // The verification counters are the one intentional delta; everything the
  // paper reports must be bit-identical to the unverified run.
  full.verification = VerifyStats{};
  EXPECT_EQ(run_report_json("x", CoalescerKind::kPac, off,
                            /*include_throughput=*/false),
            run_report_json("x", CoalescerKind::kPac, full,
                            /*include_throughput=*/false));
}

TEST(VerifierSystem, CountersLevelBalancesLifecycleTotals) {
  const Workload* suite = find_workload("gs");
  SystemConfig cfg;
  cfg.verify.level = VerifyLevel::kCounters;
  cfg.verify.forensics_dir = temp_dir("forensics_counters_run");
  const RunResult r =
      run_suite(*suite, CoalescerKind::kMshrDmc, tiny_wcfg(), cfg);
  EXPECT_TRUE(r.verification.enabled);
  EXPECT_EQ(r.verification.level, VerifyLevel::kCounters);
  EXPECT_EQ(r.verification.violations, 0u);
  EXPECT_GT(r.verification.issued, 0u);
  EXPECT_EQ(r.verification.issued,
            r.verification.retired + r.verification.fences);
  EXPECT_GE(r.verification.dispatched_raws, r.verification.device_requests);
}

// ---------------------------------------------------------------------------
// Seeded bug: a controller that drops retirements must be caught

/// Deliberately broken no-coalescing controller: the first `drops` device
/// completions are swallowed instead of reported satisfied, so their raw
/// requests pin the core scoreboard forever - exactly the class of silent
/// lost-request bug the watchdog + ledger exist to catch.
class DroppingController final : public Coalescer {
 public:
  DroppingController(DevicePort* device, std::size_t drops)
      : device_(device), drops_remaining_(drops) {}

  bool accept(const MemRequest& request, Cycle now) override {
    if (request.op == MemOp::kFence) {
      ++stats_.fences;
      if (verifier_ != nullptr) {
        verifier_->on_fence_passthrough(request.id, now);
      }
      return true;
    }
    if (!device_->can_accept()) return false;
    DeviceRequest req;
    req.id = next_id_++;
    req.base = request.paddr & ~Addr{63};
    req.bytes = 64;
    req.store = request.is_store();
    req.atomic = request.op == MemOp::kAtomic;
    req.created_at = now;
    req.add_raw(request.id);
    ++stats_.raw_requests;
    ++stats_.issued_requests;
    stats_.issued_payload_bytes += req.bytes;
    stats_.request_size_bytes.add(req.bytes);
    outstanding_.emplace(req.id, request.id);
    device_->submit(std::move(req), now);
    return true;
  }

  void tick(Cycle now) override { (void)now; }

  void complete(const DeviceResponse& response, Cycle now) override {
    (void)now;
    auto it = outstanding_.find(response.request_id);
    if (it == outstanding_.end()) return;
    if (drops_remaining_ > 0) {
      --drops_remaining_;  // the seeded bug: satisfied_ never hears of it
    } else {
      satisfied_.push_back(it->second);
    }
    outstanding_.erase(it);
  }

  void drain_satisfied_into(std::vector<std::uint64_t>& out) override {
    out.clear();
    std::swap(out, satisfied_);
  }

  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override {
    (void)now;
    return kNeverCycle;
  }
  [[nodiscard]] bool idle() const override { return outstanding_.empty(); }
  [[nodiscard]] const CoalescerStats& stats() const override {
    return stats_;
  }

 private:
  DevicePort* device_;
  std::size_t drops_remaining_;
  CoalescerStats stats_;
  std::unordered_map<std::uint64_t, std::uint64_t> outstanding_;
  std::uint64_t next_id_ = 1;
  std::vector<std::uint64_t> satisfied_;
};

TEST(VerifierSystem, WatchdogCatchesDroppedRetirementWithForensics) {
  SystemConfig cfg;
  cfg.num_cores = 1;
  cfg.enable_prefetch = false;
  // Scoreboard depth 2 and two dropped retirements: the core wedges with
  // both slots pinned, the system stays "busy" forever, and only the
  // no-progress watchdog can tell.
  cfg.max_outstanding_loads = 2;
  cfg.verify.level = VerifyLevel::kFull;
  cfg.verify.watchdog_cycles = 200'000;
  cfg.verify.forensics_dir = temp_dir("forensics_dropped");
  cfg.coalescer_factory = [](DevicePort* port) {
    return std::make_unique<DroppingController>(port, 2);
  };

  Trace trace;
  for (int i = 0; i < 8; ++i) {
    trace.push_back(TraceOp{static_cast<Addr>(0x10000 + i * 64), 8,
                            OpKind::kLoad});
  }
  try {
    (void)simulate(cfg, std::vector<Trace>{trace});
    FAIL() << "watchdog never fired on the dropped retirements";
  } catch (const VerificationError& e) {
    EXPECT_NE(std::string(e.what()).find("no lifecycle event"),
              std::string::npos)
        << e.what();
    ASSERT_FALSE(e.forensics_path().empty());
    ASSERT_TRUE(fs::exists(e.forensics_path()));
    const std::string dump = slurp(e.forensics_path());
    EXPECT_NE(dump.find("\"kind\": \"no_progress\""), std::string::npos);
    // The stuck timelines prove the responses arrived and retirement is
    // what went missing: issued -> accepted -> dispatched -> responded.
    EXPECT_NE(dump.find("\"stuck_requests\""), std::string::npos);
    EXPECT_NE(dump.find("\"stage\": \"responded\""), std::string::npos);
    EXPECT_EQ(dump.find("\"stage\": \"retired\""), std::string::npos);
    EXPECT_NE(dump.find("\"components\""), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Report plumbing

TEST(SweepReport, VerificationBlockIsEmitted) {
  SweepReport report("bench_verify");
  RunResult r;
  r.cycles = 10;
  r.verification.enabled = true;
  r.verification.level = VerifyLevel::kCounters;
  r.verification.issued = 42;
  r.verification.retired = 40;
  r.verification.fences = 2;
  report.add("stream/pac", CoalescerKind::kPac, r);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"verification\""), std::string::npos);
  EXPECT_NE(json.find("\"level\": \"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"issued\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"violations\": 0"), std::string::npos);
}

TEST(SweepReport, VerificationBlockAbsentWhenDisabled) {
  SweepReport report("bench_noverify");
  RunResult r;
  r.cycles = 10;
  report.add("stream/pac", CoalescerKind::kPac, r);
  EXPECT_EQ(report.json().find("\"verification\""), std::string::npos);
}

TEST(SweepReport, FailureForensicsAndDiagnosisFields) {
  SweepReport report("bench_forensics");
  report.add_failure("bad/pac", "failed", "boom", 0.5,
                     "/tmp/forensics_1.json", "reproduced at verify=full");
  report.add_failure("sad/pac", "interrupted", "signal", 0.1);
  const std::string json = report.json();
  EXPECT_NE(json.find("\"forensics\": \"/tmp/forensics_1.json\""),
            std::string::npos);
  EXPECT_NE(json.find("\"diagnosis\": \"reproduced at verify=full\""),
            std::string::npos);
  EXPECT_NE(json.find("\"status\": \"interrupted\""), std::string::npos);
  // Optional fields stay absent when empty.
  const std::size_t sad = json.find("\"label\": \"sad/pac\"");
  ASSERT_NE(sad, std::string::npos);
  EXPECT_EQ(json.find("\"forensics\"", sad), std::string::npos);
  EXPECT_EQ(json.find("\"diagnosis\"", sad), std::string::npos);
}

}  // namespace
}  // namespace pacsim
