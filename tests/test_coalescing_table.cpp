#include "pac/coalescing_table.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pacsim {
namespace {

TEST(CoalescingTable, PaperExample0110Gives128B) {
  // Fig 5(b) stage 3: sequence 0110 -> one 128 B request (2 blocks at
  // offset 1).
  const CoalescingTable table(CoalescingProtocol::hmc2());
  const auto segs = table.segments(0b0110);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{1, 2}));
}

TEST(CoalescingTable, AllSixteenNibblePatterns) {
  const CoalescingTable table(CoalescingProtocol::hmc2());
  for (std::uint16_t bits = 0; bits < 16; ++bits) {
    EXPECT_EQ(table.segments(bits), bit_runs(bits, 4)) << "bits=" << bits;
  }
}

TEST(CoalescingTable, FullChunkIs256B) {
  const CoalescingTable table(CoalescingProtocol::hmc2());
  const auto segs = table.segments(0b1111);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, 4}));
}

TEST(CoalescingTable, GapsSplitRequests) {
  const CoalescingTable table(CoalescingProtocol::hmc2());
  const auto segs = table.segments(0b1010);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{1, 1}));
  EXPECT_EQ(segs[1], (Segment{3, 1}));
}

TEST(CoalescingTable, LookupsPerSequence) {
  EXPECT_EQ(CoalescingTable(CoalescingProtocol::hmc2()).lookups_per_sequence(),
            1u);
  // Section 4.1: a 16-bit sequence appends four 16-entry tables.
  EXPECT_EQ(CoalescingTable(CoalescingProtocol::hbm()).lookups_per_sequence(),
            4u);
  EXPECT_EQ(
      CoalescingTable(CoalescingProtocol::hmc_fine()).lookups_per_sequence(),
      4u);
}

class WideTableMatchesRuns
    : public ::testing::TestWithParam<CoalescingProtocol> {};

TEST_P(WideTableMatchesRuns, NibbleCompositionEqualsDirectRunScan) {
  // Property: composing nibble LUT results (the hardware realization) must
  // equal a direct run decomposition of the whole sequence.
  const CoalescingTable table(GetParam());
  const unsigned width = GetParam().chunk_blocks();
  Rng rng(31);
  for (int i = 0; i < 4096; ++i) {
    const std::uint16_t bits =
        static_cast<std::uint16_t>(rng.next() & ((1u << width) - 1));
    EXPECT_EQ(table.segments(bits), bit_runs(bits, width)) << "bits=" << bits;
  }
}

TEST_P(WideTableMatchesRuns, SegmentsCoverExactlySetBits) {
  const CoalescingTable table(GetParam());
  const unsigned width = GetParam().chunk_blocks();
  Rng rng(32);
  for (int i = 0; i < 2048; ++i) {
    const std::uint16_t bits =
        static_cast<std::uint16_t>(rng.next() & ((1u << width) - 1));
    std::uint32_t rebuilt = 0;
    for (const Segment& s : table.segments(bits)) {
      ASSERT_GT(s.length, 0u);
      ASSERT_LE(s.offset + s.length, width);
      for (unsigned b = s.offset; b < s.offset + s.length; ++b) {
        ASSERT_EQ((rebuilt >> b) & 1u, 0u) << "overlapping segments";
        rebuilt |= 1u << b;
      }
    }
    EXPECT_EQ(rebuilt, bits);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, WideTableMatchesRuns,
                         ::testing::Values(CoalescingProtocol::hmc2(),
                                           CoalescingProtocol::hmc1(),
                                           CoalescingProtocol::hbm(),
                                           CoalescingProtocol::hmc_fine()),
                         [](const auto& info) {
                           std::string n(info.param.name);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST(CoalescingTable, Pow2ModeSplitsOddRuns) {
  CoalescingProtocol p = CoalescingProtocol::hmc2();
  p.pow2_sizes_only = true;
  const CoalescingTable table(p);
  const auto segs = table.segments(0b0111);  // run of 3 -> 2 + 1
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 2}));
  EXPECT_EQ(segs[1], (Segment{2, 1}));
}

TEST(CoalescingTable, Pow2ModeKeepsPow2Runs) {
  CoalescingProtocol p = CoalescingProtocol::hmc2();
  p.pow2_sizes_only = true;
  const CoalescingTable table(p);
  EXPECT_EQ(table.segments(0b1111).size(), 1u);
  EXPECT_EQ(table.segments(0b0011).size(), 1u);
}

TEST(CoalescingProtocol, DerivedQuantities) {
  const auto hmc2 = CoalescingProtocol::hmc2();
  EXPECT_EQ(hmc2.chunk_blocks(), 4u);
  EXPECT_EQ(hmc2.blocks_per_page(), 64u);
  EXPECT_EQ(hmc2.chunks_per_page(), 16u);
  EXPECT_EQ(hmc2.granule_shift(), 6u);

  const auto fine = CoalescingProtocol::hmc_fine();
  EXPECT_EQ(fine.chunk_blocks(), 16u);
  EXPECT_EQ(fine.blocks_per_page(), 256u);
  EXPECT_EQ(fine.chunks_per_page(), 16u);

  const auto hbm = CoalescingProtocol::hbm();
  EXPECT_EQ(hbm.chunk_blocks(), 16u);
  EXPECT_EQ(hbm.max_request, 1024u);
}

}  // namespace
}  // namespace pacsim
