#include "mem/page_table.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pacsim {
namespace {

TEST(PageTable, PreservesPageOffset) {
  PageTable pt(1024, 1);
  const Addr v = 0x12345'678;
  const Addr p = pt.translate(0, v);
  EXPECT_EQ(page_offset(p), page_offset(v));
}

TEST(PageTable, StableMapping) {
  PageTable pt(1024, 1);
  const Addr first = pt.translate(0, 0x4000);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(pt.translate(0, 0x4000 + i), first + i);
  }
}

TEST(PageTable, DeterministicAcrossInstances) {
  PageTable a(4096, 42), b(4096, 42);
  for (Addr v = 0; v < 64 * kPageSize; v += kPageSize) {
    EXPECT_EQ(a.translate(0, v), b.translate(0, v));
  }
}

TEST(PageTable, SeedChangesLayout) {
  PageTable a(4096, 1), b(4096, 2);
  int same = 0;
  for (Addr v = 0; v < 64 * kPageSize; v += kPageSize) {
    same += a.translate(0, v) == b.translate(0, v);
  }
  EXPECT_LT(same, 8);
}

TEST(PageTable, FramesAreDisjoint) {
  PageTable pt(4096, 7);
  std::set<Addr> frames;
  for (Addr v = 0; v < 512 * kPageSize; v += kPageSize) {
    EXPECT_TRUE(frames.insert(page_number(pt.translate(0, v))).second);
  }
}

TEST(PageTable, ProcessesGetDistinctFrames) {
  PageTable pt(4096, 7);
  const Addr p0 = pt.translate(0, 0x8000);
  const Addr p1 = pt.translate(1, 0x8000);
  EXPECT_NE(page_number(p0), page_number(p1));
}

TEST(PageTable, ContiguousVirtualPagesScatterPhysically) {
  // The property PAC's paged design rests on: virtually adjacent pages are
  // (almost) never physically adjacent on a fragmented free list.
  PageTable pt(1 << 16, 3);
  int adjacent = 0;
  Addr prev = pt.translate(0, 0);
  for (Addr v = kPageSize; v < 256 * kPageSize; v += kPageSize) {
    const Addr cur = pt.translate(0, v);
    adjacent += page_number(cur) == page_number(prev) + 1;
    prev = cur;
  }
  EXPECT_LT(adjacent, 4);
}

TEST(PageTable, ThrowsWhenOutOfFrames) {
  PageTable pt(4, 1);
  for (int i = 0; i < 4; ++i) {
    pt.translate(0, static_cast<Addr>(i) * kPageSize);
  }
  EXPECT_EQ(pt.allocated(), 4u);
  EXPECT_THROW(pt.translate(0, 100 * kPageSize), std::runtime_error);
}

}  // namespace
}  // namespace pacsim
