// The RV64 assembly kernel library: every kernel must assemble, execute,
// and produce the memory-access class its name promises.
#include "riscv/kernels.hpp"

#include <gtest/gtest.h>

#include <set>

#include "analysis/footprint.hpp"

namespace pacsim::rv {
namespace {

WorkloadConfig small() {
  WorkloadConfig cfg;
  cfg.num_cores = 2;
  cfg.max_ops_per_core = 8000;
  cfg.compute_scale = 1.0;
  return cfg;
}

class RvKernels : public ::testing::TestWithParam<const RiscvProgramWorkload*> {
};

TEST_P(RvKernels, AssemblesAndExecutes) {
  const auto traces = GetParam()->generate(small());
  ASSERT_EQ(traces.size(), 2u);
  for (const Trace& t : traces) EXPECT_FALSE(t.empty());
  // Clean end: either the kernel finished (ecall) or the budget filled.
  EXPECT_TRUE(GetParam()->last_halt() == Halt::kEcall ||
              GetParam()->last_halt() == Halt::kTraceFull);
}

TEST_P(RvKernels, Deterministic) {
  const auto a = GetParam()->generate(small());
  const auto b = GetParam()->generate(small());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t c = 0; c < a.size(); ++c) {
    ASSERT_EQ(a[c].size(), b[c].size());
    for (std::size_t i = 0; i < a[c].size(); ++i) {
      EXPECT_EQ(a[c][i].vaddr, b[c][i].vaddr);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, RvKernels,
                         ::testing::ValuesIn(rv_workloads()),
                         [](const auto& info) {
                           std::string n(info.param->name());
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

std::vector<Addr> data_addresses(const std::vector<Trace>& traces) {
  std::vector<Addr> out;
  for (const Trace& t : traces) {
    for (const TraceOp& op : t) {
      if (op.kind == OpKind::kLoad || op.kind == OpKind::kStore) {
        out.push_back(op.vaddr);
      }
    }
  }
  return out;
}

TEST(RvKernelClasses, StreamIsSequential) {
  const auto traces = find_rv_workload("rv-stream")->generate(small());
  const FootprintStats s = analyze_footprint(data_addresses(traces), 64);
  EXPECT_GT(s.in_page_fraction(), 0.5);
}

TEST(RvKernelClasses, RandomIsScattered) {
  const auto traces = find_rv_workload("rv-rand")->generate(small());
  const FootprintStats s = analyze_footprint(data_addresses(traces), 64);
  EXPECT_LT(s.in_page_fraction(), 0.1);
  EXPECT_GT(s.distinct_pages, 500u);
}

TEST(RvKernelClasses, GatherHasPageBursts) {
  const auto traces = find_rv_workload("rv-gs")->generate(small());
  const FootprintStats s = analyze_footprint(data_addresses(traces), 64);
  // Gather bursts of 32 contiguous doubles -> strong in-page adjacency.
  EXPECT_GT(s.in_page_fraction(), 0.4);
}

TEST(RvKernelClasses, HistogramUsesAtomics) {
  const auto traces = find_rv_workload("rv-hist")->generate(small());
  std::uint64_t atomics = 0;
  for (const Trace& t : traces) {
    for (const TraceOp& op : t) atomics += op.kind == OpKind::kAtomic;
  }
  EXPECT_GT(atomics, 100u);
}

TEST(RvKernelClasses, CoresPartitionStreamSlices) {
  const auto traces = find_rv_workload("rv-stream")->generate(small());
  // Core 0's store addresses and core 1's must be disjoint.
  std::set<Addr> stores0, stores1;
  for (const TraceOp& op : traces[0]) {
    if (op.kind == OpKind::kStore) stores0.insert(op.vaddr);
  }
  for (const TraceOp& op : traces[1]) {
    if (op.kind == OpKind::kStore) stores1.insert(op.vaddr);
  }
  for (Addr a : stores1) EXPECT_EQ(stores0.count(a), 0u);
}

TEST(RvRegistry, LookupByName) {
  EXPECT_EQ(rv_workloads().size(), 5u);
  EXPECT_NE(find_rv_workload("rv-stream"), nullptr);
  EXPECT_EQ(find_rv_workload("rv-nope"), nullptr);
}

}  // namespace
}  // namespace pacsim::rv
