#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace pacsim {
namespace {

TEST(BitRuns, Empty) { EXPECT_TRUE(bit_runs(0).empty()); }

TEST(BitRuns, SingleBit) {
  for (unsigned i = 0; i < 64; ++i) {
    const auto runs = bit_runs(std::uint64_t{1} << i);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0], (BitRun{i, 1}));
  }
}

TEST(BitRuns, FullWord) {
  const auto runs = bit_runs(~std::uint64_t{0});
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (BitRun{0, 64}));
}

TEST(BitRuns, TwoRuns) {
  const auto runs = bit_runs(0b1100'0110);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (BitRun{1, 2}));
  EXPECT_EQ(runs[1], (BitRun{6, 2}));
}

TEST(BitRuns, WidthMasksHighBits) {
  const auto runs = bit_runs(0b1111'0001, 4);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (BitRun{0, 1}));
}

TEST(BitRuns, PaperExample0110) {
  // Fig 5(b): sequence 0110 -> one 2-block run at offset 1 (128 B request).
  const auto runs = bit_runs(0b0110, 4);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (BitRun{1, 2}));
}

/// Reference implementation: linear scan.
std::vector<BitRun> naive_runs(std::uint64_t bits, unsigned width) {
  std::vector<BitRun> runs;
  unsigned start = 0;
  bool in_run = false;
  for (unsigned i = 0; i < width; ++i) {
    const bool set = (bits >> i) & 1;
    if (set && !in_run) {
      start = i;
      in_run = true;
    } else if (!set && in_run) {
      runs.push_back({start, i - start});
      in_run = false;
    }
  }
  if (in_run) runs.push_back({start, width - start});
  return runs;
}

TEST(BitRuns, ExhaustiveEightBit) {
  for (std::uint32_t bits = 0; bits < 256; ++bits) {
    EXPECT_EQ(bit_runs(bits, 8), naive_runs(bits, 8)) << "bits=" << bits;
  }
}

TEST(BitRuns, RandomSixtyFourBitAgainstReference) {
  Rng rng(123);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t bits = rng.next();
    EXPECT_EQ(bit_runs(bits), naive_runs(bits, 64));
  }
}

TEST(BitRuns, RunsCoverExactlySetBits) {
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t bits = rng.next() & rng.next();  // sparser
    std::uint64_t rebuilt = 0;
    unsigned last_end = 0;
    bool first = true;
    for (const BitRun& r : bit_runs(bits)) {
      ASSERT_GT(r.length, 0u);
      if (!first) EXPECT_GT(r.offset, last_end) << "runs must not touch";
      last_end = r.offset + r.length;
      first = false;
      for (unsigned b = r.offset; b < r.offset + r.length; ++b) {
        rebuilt |= std::uint64_t{1} << b;
      }
    }
    EXPECT_EQ(rebuilt, bits);
  }
}

TEST(IsPow2, Basics) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 16), 0u);
  EXPECT_EQ(ceil_div(1, 16), 1u);
  EXPECT_EQ(ceil_div(16, 16), 1u);
  EXPECT_EQ(ceil_div(17, 16), 2u);
  EXPECT_EQ(ceil_div(256, 16), 16u);
}

TEST(Log2Exact, Basics) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(4096), 12u);
}

TEST(Popcount, Basics) {
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(0xFF), 8u);
  EXPECT_EQ(popcount64(~std::uint64_t{0}), 64u);
}

}  // namespace
}  // namespace pacsim
